#ifndef DDC_BENCH_BENCH_COMMON_H_
#define DDC_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/clusterer.h"
#include "core/params.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace ddc {
namespace bench {

/// The five algorithm configurations of Section 8.1's evaluation:
///   "2d-semi-exact"  — Theorem 1 with rho = 0 (exact DBSCAN, insert-only)
///   "semi-approx"    — Theorem 1, ρ-approximate, insert-only
///   "2d-full-exact"  — Theorem 4 with rho = 0 (exact DBSCAN, fully dynamic)
///   "double-approx"  — Theorem 4, ρ-double-approximate, fully dynamic
///   "inc-dbscan"     — the IncDBSCAN baseline [8]
std::unique_ptr<Clusterer> MakeMethod(const std::string& name,
                                      DbscanParams params);

/// The paper's default parameters (Table 2): eps = eps_over_d * d,
/// MinPts = 10, rho = 0.001 for approximate methods (forced to 0 for the
/// exact ones inside MakeMethod).
DbscanParams PaperParams(int dim, double eps_over_d = 100.0,
                         double rho = 0.001);

/// A Section 8.1 workload: N updates at the given insertion fraction, one
/// C-group-by query (|Q| ~ U[2,100]) every `query_every` updates.
Workload PaperWorkload(int dim, int64_t n, double ins_fraction,
                       int64_t query_every, uint64_t seed);

/// Runs one (method, workload) pair under a time budget.
RunStats RunMethod(const std::string& method, const DbscanParams& params,
                   const Workload& workload, double budget_seconds,
                   int checkpoints = 10);

/// Formats a cost cell; "TIMEOUT(>x)" when the run did not finish.
std::string Cell(const RunStats& stats, double value);

/// Prints the per-checkpoint avgcost / maxupdcost series of several
/// finished runs (one row per method), in the style of Figures 8/9/12/13.
void PrintSeries(const std::string& title,
                 const std::vector<std::string>& method_names,
                 const std::vector<RunStats>& runs);

/// Prints a parameter-sweep table (one row per x value, one column per
/// method, cell = average workload cost), in the style of Figures 10/11/14/15.
void PrintSweep(const std::string& title, const std::string& x_label,
                const std::vector<std::string>& x_values,
                const std::vector<std::string>& method_names,
                const std::vector<std::vector<RunStats>>& cells);

/// Shared flag defaults for the figure benches.
struct BenchConfig {
  int64_t n;
  double budget_seconds;
  uint64_t seed;
  int64_t query_every;  // Derived: fqry fraction * n.

  static BenchConfig FromFlags(const Flags& flags, int64_t default_n);
};

}  // namespace bench
}  // namespace ddc

#endif  // DDC_BENCH_BENCH_COMMON_H_
