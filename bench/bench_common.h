#ifndef DDC_BENCH_BENCH_COMMON_H_
#define DDC_BENCH_BENCH_COMMON_H_

#include <string>

#include "common/flags.h"
#include "core/method_registry.h"
#include "core/params.h"
#include "telemetry/report.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace ddc {
namespace bench {

/// The method factory (MakeMethod / PaperParams) lives in
/// core/method_registry.h and the table / JSON reporting in
/// telemetry/report.h — both shared with tools/ddc_driver. What remains
/// here is the figure-bench glue: the paper workload preset, the
/// run-one-pair helper, and the shared flag defaults.

/// A Section 8.1 workload: N updates at the given insertion fraction, one
/// C-group-by query (|Q| ~ U[2,100]) every `query_every` updates.
Workload PaperWorkload(int dim, int64_t n, double ins_fraction,
                       int64_t query_every, uint64_t seed);

/// Runs one (method, workload) pair under a time budget.
RunStats RunMethod(const std::string& method, const DbscanParams& params,
                   const Workload& workload, double budget_seconds,
                   int checkpoints = 10);

/// Shared flag defaults for the figure benches.
struct BenchConfig {
  int64_t n;
  double budget_seconds;
  uint64_t seed;
  int64_t query_every;  // Derived: fqry fraction * n.

  static BenchConfig FromFlags(const Flags& flags, int64_t default_n);
};

}  // namespace bench
}  // namespace ddc

#endif  // DDC_BENCH_BENCH_COMMON_H_
