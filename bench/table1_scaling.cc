// Empirical check of Table 1's claimed complexities: the O~(1) update and
// O~(|Q|) query bounds of Theorems 1 and 4 predict per-operation costs that
// stay (near-)flat as n grows, while IncDBSCAN's per-update cost grows.
// Prints average update cost and average query cost at increasing N.
//
// Flags: --budget, --seed, --dim (default 3), --sizes (default
// "12500,25000,50000,100000").

#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const double budget = flags.GetDouble("budget", 20.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int dim = static_cast<int>(flags.GetInt("dim", 3));

  std::vector<int64_t> sizes;
  std::stringstream ss(flags.GetString("sizes", "12500,25000,50000,100000"));
  for (std::string tok; std::getline(ss, tok, ',');) sizes.push_back(std::stoll(tok));

  const ddc::DbscanParams params = ddc::PaperParams(dim);
  struct Scheme {
    const char* title;
    const char* method;
    double ins_fraction;
  };
  const Scheme schemes[] = {
      {"semi-dynamic (insertions only)", "semi-approx", 1.0},
      {"fully-dynamic (ins=5/6)", "double-approx", 5.0 / 6.0},
      {"IncDBSCAN (ins=5/6)", "inc-dbscan", 5.0 / 6.0},
  };

  std::printf("=== Table 1 scaling check (d=%d): per-op cost vs N ===\n", dim);
  std::printf("%-34s%10s%14s%14s%14s\n", "scheme", "N", "upd(us)", "qry(us)",
              "maxupd(us)");
  for (const Scheme& s : schemes) {
    for (const int64_t n : sizes) {
      const int64_t query_every = std::max<int64_t>(1, n / 100);
      const ddc::Workload w =
          ddc::bench::PaperWorkload(dim, n, s.ins_fraction, query_every, seed);
      const ddc::RunStats stats =
          ddc::bench::RunMethod(s.method, params, w, budget);
      if (stats.timed_out) {
        std::printf("%-34s%10lld%14s%14s%14s\n", s.title,
                    static_cast<long long>(n), "TIMEOUT", "-", "-");
      } else {
        std::printf("%-34s%10lld%14.2f%14.2f%14.1f\n", s.title,
                    static_cast<long long>(n), stats.avg_update_cost_us,
                    stats.avg_query_cost_us, stats.max_update_cost_us);
      }
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nFlat upd/qry columns for the semi/fully dynamic schemes support the\n"
      "O~(1) update / O~(|Q|) query bounds; IncDBSCAN's growth shows the\n"
      "contrast Table 1 formalizes.\n");
  return 0;
}
