#include "bench/bench_common.h"

#include <cstdio>

#include "common/check.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/incremental_dbscan.h"
#include "core/semi_dynamic_clusterer.h"

namespace ddc {
namespace bench {

std::unique_ptr<Clusterer> MakeMethod(const std::string& name,
                                      DbscanParams params) {
  if (name == "2d-semi-exact") {
    params.rho = 0;
    return std::make_unique<SemiDynamicClusterer>(params);
  }
  if (name == "semi-approx") {
    return std::make_unique<SemiDynamicClusterer>(params);
  }
  if (name == "2d-full-exact") {
    params.rho = 0;
    return std::make_unique<FullyDynamicClusterer>(params);
  }
  if (name == "double-approx") {
    return std::make_unique<FullyDynamicClusterer>(params);
  }
  if (name == "inc-dbscan") {
    params.rho = 0;
    return std::make_unique<IncrementalDbscan>(params);
  }
  DDC_CHECK(false && "unknown method");
  return nullptr;
}

DbscanParams PaperParams(int dim, double eps_over_d, double rho) {
  return DbscanParams{.dim = dim,
                      .eps = eps_over_d * dim,
                      .min_pts = 10,
                      .rho = rho};
}

Workload PaperWorkload(int dim, int64_t n, double ins_fraction,
                       int64_t query_every, uint64_t seed) {
  WorkloadConfig config;
  config.num_updates = n;
  config.insert_fraction = ins_fraction;
  config.query_every = query_every;
  config.spreader.dim = dim;
  config.seed = seed;
  return BuildWorkload(config);
}

RunStats RunMethod(const std::string& method, const DbscanParams& params,
                   const Workload& workload, double budget_seconds,
                   int checkpoints) {
  std::unique_ptr<Clusterer> clusterer = MakeMethod(method, params);
  RunOptions options;
  options.num_checkpoints = checkpoints;
  options.time_budget_seconds = budget_seconds;
  return RunWorkload(*clusterer, workload, options);
}

std::string Cell(const RunStats& stats, double value) {
  // The paper terminated IncDBSCAN after 3 hours in 5D/7D; a timed-out run
  // is reported the same way rather than with a misleading partial average.
  if (stats.timed_out) return "TIMEOUT";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

void PrintSeries(const std::string& title,
                 const std::vector<std::string>& method_names,
                 const std::vector<RunStats>& runs) {
  std::printf("\n=== %s ===\n", title.c_str());
  DDC_CHECK(method_names.size() == runs.size());

  // Checkpoint header from the longest finished run.
  size_t ref = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].checkpoint_ops.size() > runs[ref].checkpoint_ops.size()) {
      ref = i;
    }
  }
  std::printf("%-16s", "ops:");
  for (const int64_t t : runs[ref].checkpoint_ops) {
    std::printf("%12lld", static_cast<long long>(t));
  }
  std::printf("\n-- average cost per operation (microsec) --\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::printf("%-16s", method_names[i].c_str());
    for (const double v : runs[i].avg_cost_us) std::printf("%12.2f", v);
    if (runs[i].timed_out) std::printf("   [TIMEOUT]");
    std::printf("\n");
  }
  std::printf("-- maximum update cost (microsec) --\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::printf("%-16s", method_names[i].c_str());
    for (const double v : runs[i].max_upd_cost_us) std::printf("%12.1f", v);
    if (runs[i].timed_out) std::printf("   [TIMEOUT]");
    std::printf("\n");
  }
  std::fflush(stdout);
}

void PrintSweep(const std::string& title, const std::string& x_label,
                const std::vector<std::string>& x_values,
                const std::vector<std::string>& method_names,
                const std::vector<std::vector<RunStats>>& cells) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("-- average workload cost (microsec) --\n");
  std::printf("%-14s", x_label.c_str());
  for (const auto& m : method_names) std::printf("%16s", m.c_str());
  std::printf("\n");
  for (size_t r = 0; r < x_values.size(); ++r) {
    std::printf("%-14s", x_values[r].c_str());
    for (size_t c = 0; c < method_names.size(); ++c) {
      const RunStats& s = cells[r][c];
      std::printf("%16s", Cell(s, s.avg_workload_cost_us).c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

BenchConfig BenchConfig::FromFlags(const Flags& flags, int64_t default_n) {
  BenchConfig c;
  c.n = flags.GetInt("n", default_n);
  c.budget_seconds = flags.GetDouble("budget", 15.0);
  c.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const double fqry_frac = flags.GetDouble("fqry-frac", 0.01);
  c.query_every = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(c.n) * fqry_frac));
  return c;
}

}  // namespace bench
}  // namespace ddc
