#include "bench/bench_common.h"

#include <algorithm>
#include <memory>

#include "core/clusterer.h"

namespace ddc {
namespace bench {

Workload PaperWorkload(int dim, int64_t n, double ins_fraction,
                       int64_t query_every, uint64_t seed) {
  WorkloadConfig config;
  config.num_updates = n;
  config.insert_fraction = ins_fraction;
  config.query_every = query_every;
  config.spreader.dim = dim;
  config.seed = seed;
  return BuildWorkload(config);
}

RunStats RunMethod(const std::string& method, const DbscanParams& params,
                   const Workload& workload, double budget_seconds,
                   int checkpoints) {
  std::unique_ptr<Clusterer> clusterer = MakeMethod(method, params);
  RunOptions options;
  options.num_checkpoints = checkpoints;
  options.time_budget_seconds = budget_seconds;
  return RunWorkload(*clusterer, workload, options);
}

BenchConfig BenchConfig::FromFlags(const Flags& flags, int64_t default_n) {
  BenchConfig c;
  c.n = flags.GetInt("n", default_n);
  c.budget_seconds = flags.GetDouble("budget", 15.0);
  c.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const double fqry_frac = flags.GetDouble("fqry-frac", 0.01);
  c.query_every = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(c.n) * fqry_frac));
  return c;
}

}  // namespace bench
}  // namespace ddc
