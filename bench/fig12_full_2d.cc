// Reproduces Figure 12: fully-dynamic algorithms in 2D (average cost and
// max update cost vs time). Methods: 2d-Full-Exact, Double-Approx,
// IncDBSCAN; %ins = 5/6 (one deletion per five insertions on average).
//
// Flags: --n (default 50000), --budget, --seed, --fqry-frac, --ins-pct.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 50000);
  const double ins = flags.GetDouble("ins-pct", 5.0 / 6.0);
  const int dim = 2;

  const ddc::Workload w = ddc::bench::PaperWorkload(
      dim, config.n, ins, config.query_every, config.seed);
  const ddc::DbscanParams params = ddc::PaperParams(dim);

  const std::vector<std::string> methods = {"2d-full-exact", "double-approx",
                                            "inc-dbscan"};
  std::vector<ddc::RunStats> runs;
  for (const auto& m : methods) {
    std::printf("[fig12] running %s (N=%lld, ins=%.3f)...\n", m.c_str(),
                static_cast<long long>(config.n), ins);
    std::fflush(stdout);
    runs.push_back(
        ddc::bench::RunMethod(m, params, w, config.budget_seconds));
  }
  ddc::PrintSeries("Figure 12: fully-dynamic, d=2, ins=5/6", methods, runs);
  return 0;
}
