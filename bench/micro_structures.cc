// google-benchmark microbenchmarks of the individual substrates: union-find,
// Euler-tour forests, HDT connectivity, grid maintenance, emptiness queries,
// range counting, and the flat-hash / packed-coordinate layouts the hot
// paths run on. These are the per-operation costs the amortized analyses of
// Theorems 1 and 4 are built from.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/flat_hash.h"
#include "common/random.h"
#include "connectivity/hdt.h"
#include "core/emptiness.h"
#include "counting/approx_counter.h"
#include "geom/simd_kernels.h"
#include "grid/grid.h"
#include "unionfind/union_find.h"

namespace ddc {
namespace {

void BM_UnionFind_FindAfterUnions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  UnionFind uf(n);
  Rng rng(1);
  for (int i = 0; i < n / 2; ++i) {
    uf.Union(static_cast<int>(rng.NextBelow(n)),
             static_cast<int>(rng.NextBelow(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(uf.Find(static_cast<int>(rng.NextBelow(n))));
  }
}
BENCHMARK(BM_UnionFind_FindAfterUnions)->Arg(1024)->Arg(65536);

void BM_Ett_LinkCut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  EulerTourForest f;
  f.EnsureVertices(n);
  Rng rng(2);
  // A random spanning path to keep trees non-trivial.
  std::vector<EulerTourForest::ArcPair> arcs;
  for (int i = 0; i + 1 < n; ++i) arcs.push_back(f.Link(i, i + 1));
  for (auto _ : state) {
    const int i = static_cast<int>(rng.NextBelow(arcs.size()));
    f.Cut(arcs[i]);
    arcs[i] = f.Link(i, i + 1);
  }
}
BENCHMARK(BM_Ett_LinkCut)->Arg(1024)->Arg(16384);

void BM_Hdt_InsertDeleteMix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  HdtConnectivity c;
  c.EnsureVertices(n);
  Rng rng(3);
  std::vector<std::pair<int, int>> edges;
  std::set<std::pair<int, int>> present;
  for (auto _ : state) {
    const int u = static_cast<int>(rng.NextBelow(n));
    const int v = static_cast<int>(rng.NextBelow(n));
    if (u == v) continue;
    const auto key = std::minmax(u, v);
    if (present.count(key) == 0 &&
        (edges.size() < static_cast<size_t>(n) || rng.NextBernoulli(0.5))) {
      c.AddEdge(u, v);
      present.insert(key);
      edges.push_back(key);
    } else if (!edges.empty()) {
      const size_t i = rng.NextBelow(edges.size());
      if (present.count(edges[i])) {
        c.RemoveEdge(edges[i].first, edges[i].second);
        present.erase(edges[i]);
        edges[i] = edges.back();
        edges.pop_back();
      }
    }
  }
}
BENCHMARK(BM_Hdt_InsertDeleteMix)->Arg(512)->Arg(4096);

void BM_Hdt_ComponentId(benchmark::State& state) {
  const int n = 4096;
  HdtConnectivity c;
  c.EnsureVertices(n);
  Rng rng(4);
  for (int i = 0; i < 2 * n; ++i) {
    const int u = static_cast<int>(rng.NextBelow(n));
    const int v = static_cast<int>(rng.NextBelow(n));
    if (u != v && !c.Connected(u, v)) c.AddEdge(u, v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        c.ComponentId(static_cast<int>(rng.NextBelow(n))));
  }
}
BENCHMARK(BM_Hdt_ComponentId);

void BM_Grid_InsertDelete(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Grid grid(dim, 100.0 * dim);
  Rng rng(5);
  std::vector<PointId> alive;
  for (auto _ : state) {
    if (alive.size() < 10000 || rng.NextBernoulli(0.5)) {
      Point p;
      for (int i = 0; i < dim; ++i) p[i] = rng.NextDouble(0, 100000.0);
      alive.push_back(grid.Insert(p).id);
    } else {
      const size_t i = rng.NextBelow(alive.size());
      grid.Delete(alive[i]);
      alive[i] = alive.back();
      alive.pop_back();
    }
  }
}
BENCHMARK(BM_Grid_InsertDelete)->Arg(2)->Arg(3)->Arg(7);

void BM_Emptiness_Query(benchmark::State& state) {
  const bool subgrid = state.range(0) == 1;
  DbscanParams params{.dim = 3, .eps = 300.0, .min_pts = 10, .rho = 0.001};
  Grid grid(3, params.eps);
  auto s = MakeEmptinessStructure(
      subgrid ? EmptinessKind::kSubGrid : EmptinessKind::kBruteForce, &grid,
      params);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    Point p;
    for (int k = 0; k < 3; ++k) p[k] = rng.NextDouble(0, grid.side());
    s->Insert(grid.Insert(p).id);
  }
  for (auto _ : state) {
    Point q;
    for (int k = 0; k < 3; ++k) q[k] = rng.NextDouble(-300, 300 + grid.side());
    benchmark::DoNotOptimize(s->Query(q));
  }
}
BENCHMARK(BM_Emptiness_Query)->Arg(0)->Arg(1);

void BM_Counter_Count(benchmark::State& state) {
  const bool subgrid = state.range(0) == 1;
  DbscanParams params{.dim = 3, .eps = 300.0, .min_pts = 10, .rho = 0.001};
  Grid grid(3, params.eps);
  ApproxRangeCounter counter(
      &grid, params, subgrid ? CounterKind::kSubGrid : CounterKind::kExact);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    Point p;
    for (int k = 0; k < 3; ++k) p[k] = rng.NextDouble(0, 3000.0);
    const auto ins = grid.Insert(p);
    counter.OnInsert(ins.id, ins.cell);
  }
  for (auto _ : state) {
    Point q;
    for (int k = 0; k < 3; ++k) q[k] = rng.NextDouble(0, 3000.0);
    benchmark::DoNotOptimize(counter.Count(q, params.min_pts));
  }
}
BENCHMARK(BM_Counter_Count)->Arg(0)->Arg(1);

// --- Hash-table layout: FlatHashMap vs std::unordered_map -------------------
// The access pattern mirrors the clusterer hot paths: tables keyed by packed
// 64-bit pair keys, a churn of inserts and erases around a steady size, and
// lookups that mostly hit.

template <typename Map>
void HashChurn(benchmark::State& state, Map& map) {
  const int keyspace = static_cast<int>(state.range(0));
  Rng rng(8);
  for (auto _ : state) {
    const uint64_t key = rng.NextBelow(keyspace);
    if (rng.NextBernoulli(0.5)) {
      map[key] = static_cast<int64_t>(key);
    } else {
      map.erase(key);
    }
    benchmark::DoNotOptimize(map.find(key));
  }
}

/// Adapter so the std container and FlatHashMap share one benchmark body.
struct FlatMapShim {
  FlatHashMap<uint64_t, int64_t> m;
  int64_t& operator[](uint64_t k) { return m[k]; }
  void erase(uint64_t k) { m.Erase(k); }
  const int64_t* find(uint64_t k) const { return m.Find(k); }
};

void BM_FlatHashMap_Churn(benchmark::State& state) {
  FlatMapShim map;
  HashChurn(state, map);
}
BENCHMARK(BM_FlatHashMap_Churn)->Arg(1024)->Arg(65536);

void BM_StdUnorderedMap_Churn(benchmark::State& state) {
  std::unordered_map<uint64_t, int64_t> map;
  HashChurn(state, map);
}
BENCHMARK(BM_StdUnorderedMap_Churn)->Arg(1024)->Arg(65536);

void BM_FlatHashMap_LookupHit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FlatHashMap<uint64_t, int64_t> map;
  Rng rng(9);
  for (int i = 0; i < n; ++i) map[rng.NextBelow(4 * n)] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(rng.NextBelow(4 * n)));
  }
}
BENCHMARK(BM_FlatHashMap_LookupHit)->Arg(1024)->Arg(65536);

void BM_StdUnorderedMap_LookupHit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::unordered_map<uint64_t, int64_t> map;
  Rng rng(9);
  for (int i = 0; i < n; ++i) map[rng.NextBelow(4 * n)] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(rng.NextBelow(4 * n)));
  }
}
BENCHMARK(BM_StdUnorderedMap_LookupHit)->Arg(1024)->Arg(65536);

// CellKey-keyed tables are the hot case (cell index, sub-grid buckets): the
// key is 32 bytes, the hash is 8 mixes, and the flat table both caches the
// hash per slot and accepts it precomputed (FindHashed) the way the grid
// threads it through each operation.

std::vector<CellKey> CellKeyPool(int n) {
  std::vector<CellKey> keys;
  Rng rng(12);
  keys.reserve(n);
  for (int i = 0; i < n; ++i) {
    CellKey k;
    for (int d = 0; d < 3; ++d) {
      k[d] = static_cast<int32_t>(rng.NextBelow(64)) - 32;
    }
    keys.push_back(k);
  }
  return keys;
}

void BM_FlatHashMap_CellKeyLookup(benchmark::State& state) {
  const std::vector<CellKey> keys = CellKeyPool(4096);
  FlatHashMap<CellKey, int32_t, CellKeyHash> map;
  for (size_t i = 0; i < keys.size(); ++i) {
    map[keys[i]] = static_cast<int32_t>(i);
  }
  Rng rng(13);
  for (auto _ : state) {
    const CellKey& k = keys[rng.NextBelow(keys.size())];
    benchmark::DoNotOptimize(map.FindHashed(k.Hash(), k));
  }
}
BENCHMARK(BM_FlatHashMap_CellKeyLookup);

void BM_StdUnorderedMap_CellKeyLookup(benchmark::State& state) {
  const std::vector<CellKey> keys = CellKeyPool(4096);
  std::unordered_map<CellKey, int32_t, CellKeyHash> map;
  for (size_t i = 0; i < keys.size(); ++i) {
    map[keys[i]] = static_cast<int32_t>(i);
  }
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[rng.NextBelow(keys.size())]));
  }
}
BENCHMARK(BM_StdUnorderedMap_CellKeyLookup);

// --- ε-range scan layout: packed per-cell coords vs record indirection ------
// BM_Grid_RangeScan is the shipping path (ForEachPointInRange streaming each
// cell's packed coordinate array). BM_Grid_RangeScanIndirect walks the same
// cells but fetches every candidate through grid.point(id) — the pre-overhaul
// memory layout — to keep the cost of the pointer chase measurable.

Grid& RangeScanGrid(int dim) {
  static Grid* grids[kMaxDim + 1] = {};
  if (grids[dim] == nullptr) {
    grids[dim] = new Grid(dim, 100.0 * dim);
    Rng rng(10);
    for (int i = 0; i < 50000; ++i) {
      Point p;
      for (int k = 0; k < dim; ++k) p[k] = rng.NextDouble(0, 3000.0);
      grids[dim]->Insert(p);
    }
  }
  return *grids[dim];
}

void BM_Grid_RangeScan(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Grid& grid = RangeScanGrid(dim);
  Rng rng(11);
  for (auto _ : state) {
    Point q;
    for (int k = 0; k < dim; ++k) q[k] = rng.NextDouble(0, 3000.0);
    int64_t hits = 0;
    grid.ForEachPointInRange(q, grid.eps(), [&](PointId) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Grid_RangeScan)->Arg(2)->Arg(3)->Arg(7);

// --- Batch distance predicate: dispatched SIMD vs forced scalar -------------
// The innermost kernel of every ε-range scan / emptiness probe / capped
// count, on the packed per-cell layout: one query against n candidate rows.
// _Dispatched runs whatever the CPUID dispatcher picked (see simd_kernels.h;
// the per-run context line prints nothing about it, so compare against
// ActiveSimdLevel() when reading results); _Scalar pins the portable loop.
// items_processed = candidate rows, so the report's items/s is rows/s.

void BatchFilterBody(benchmark::State& state, FilterWithinFn kernel) {
  const int dim = static_cast<int>(state.range(0));
  constexpr int kRows = 1024;
  Rng rng(14);
  Point q;
  for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(0, 100.0);
  std::vector<double> rows;
  rows.reserve(static_cast<size_t>(kRows) * dim);
  for (int j = 0; j < kRows; ++j) {
    for (int i = 0; i < dim; ++i) {
      rows.push_back(q[i] + rng.NextDouble(-60.0, 60.0));
    }
  }
  // ~half the rows within range, like a dense ε-scan.
  const double r_sq = 45.0 * 45.0 * dim;
  uint8_t mask[kRows];
  for (auto _ : state) {
    kernel(q.data(), rows.data(), kRows, dim, r_sq, mask);
    benchmark::DoNotOptimize(mask);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}

void BM_BatchFilter_Dispatched(benchmark::State& state) {
  BatchFilterBody(state, simd_internal::ActiveFilterKernel());
}
BENCHMARK(BM_BatchFilter_Dispatched)->Arg(2)->Arg(3)->Arg(5)->Arg(7);

void BM_BatchFilter_Scalar(benchmark::State& state) {
  BatchFilterBody(state, FilterKernelForLevel(SimdLevel::kScalar));
}
BENCHMARK(BM_BatchFilter_Scalar)->Arg(2)->Arg(3)->Arg(5)->Arg(7);

void BM_Grid_RangeScanIndirect(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  Grid& grid = RangeScanGrid(dim);
  const double r_sq = grid.eps() * grid.eps();
  Rng rng(11);
  for (auto _ : state) {
    Point q;
    for (int k = 0; k < dim; ++k) q[k] = rng.NextDouble(0, 3000.0);
    int64_t hits = 0;
    grid.ForEachNearbyCell(q, [&](CellId c) {
      for (const PointId pid : grid.cell(c).points) {
        if (SquaredDistance(q, grid.point(pid), dim) <= r_sq) ++hits;
      }
    });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Grid_RangeScanIndirect)->Arg(2)->Arg(3)->Arg(7);

}  // namespace
}  // namespace ddc

BENCHMARK_MAIN();
