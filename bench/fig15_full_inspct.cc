// Reproduces Figure 15: fully-dynamic average workload cost vs the
// insertion percentage %ins ∈ {2/3, 4/5, 5/6, 8/9, 10/11}.
//
// Flags: --n (default 30000), --budget, --seed, --fqry-frac, --dims.

#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 30000);
  const std::vector<std::pair<const char*, double>> fractions = {
      {"2/3", 2.0 / 3.0},
      {"4/5", 4.0 / 5.0},
      {"5/6", 5.0 / 6.0},
      {"8/9", 8.0 / 9.0},
      {"10/11", 10.0 / 11.0}};

  std::vector<int> dims;
  std::stringstream ss(flags.GetString("dims", "2,3,5,7"));
  for (std::string tok; std::getline(ss, tok, ',');) dims.push_back(std::stoi(tok));

  for (const int dim : dims) {
    const ddc::DbscanParams params = ddc::PaperParams(dim);
    const std::vector<std::string> methods =
        dim == 2 ? std::vector<std::string>{"2d-full-exact", "double-approx",
                                            "inc-dbscan"}
                 : std::vector<std::string>{"double-approx", "inc-dbscan"};

    std::vector<std::string> x_values;
    std::vector<std::vector<ddc::RunStats>> cells;
    for (const auto& [label, ins] : fractions) {
      std::printf("[fig15] d=%d ins=%s...\n", dim, label);
      std::fflush(stdout);
      const ddc::Workload w = ddc::bench::PaperWorkload(
          dim, config.n, ins, config.query_every, config.seed);
      std::vector<ddc::RunStats> row;
      for (const auto& m : methods) {
        row.push_back(
            ddc::bench::RunMethod(m, params, w, config.budget_seconds));
      }
      x_values.push_back(label);
      cells.push_back(std::move(row));
    }
    std::ostringstream title;
    title << "Figure 15 (" << dim << "D): fully-dynamic cost vs %ins";
    ddc::PrintSweep(title.str(), "%ins", x_values, methods, cells);
  }
  return 0;
}
