// Reproduces Figure 8: semi-dynamic algorithms in 2D.
// (a) average cost per operation vs time; (b) max update cost vs time.
// Methods: 2d-Semi-Exact, Semi-Approx, IncDBSCAN; insertion-only workload.
//
// Flags: --n (updates, default 50000), --budget (seconds per run, default
// 15), --seed, --fqry-frac (query frequency as fraction of N, default 0.01).

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 50000);
  const int dim = 2;

  const ddc::Workload w = ddc::bench::PaperWorkload(
      dim, config.n, /*ins_fraction=*/1.0, config.query_every, config.seed);
  const ddc::DbscanParams params = ddc::PaperParams(dim);

  const std::vector<std::string> methods = {"2d-semi-exact", "semi-approx",
                                            "inc-dbscan"};
  std::vector<ddc::RunStats> runs;
  for (const auto& m : methods) {
    std::printf("[fig08] running %s (N=%lld)...\n", m.c_str(),
                static_cast<long long>(config.n));
    std::fflush(stdout);
    runs.push_back(
        ddc::bench::RunMethod(m, params, w, config.budget_seconds));
  }
  ddc::PrintSeries("Figure 8: semi-dynamic, d=2, insertion-only", methods,
                   runs);
  return 0;
}
