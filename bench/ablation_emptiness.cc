// Ablation: the per-cell emptiness structure (Section 4.2) and the range
// counter (Section 7.3). Brute-force scans exploit the don't-care band via
// early exit; the sub-grid variants collapse co-located points. Run at the
// paper's rho = 0.001 and at a coarse rho = 0.1.
//
// Flags: --n (default 40000), --seed, --fqry-frac, --ins-pct, --dim.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/semi_dynamic_clusterer.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 40000);
  const double ins = flags.GetDouble("ins-pct", 5.0 / 6.0);
  const int dim = static_cast<int>(flags.GetInt("dim", 3));

  std::printf("=== Ablation: emptiness / counter structures (d=%d) ===\n",
              dim);
  std::printf("%-10s%-14s%-12s%14s%14s\n", "rho", "clusterer", "structures",
              "avg(us)", "maxupd(us)");

  for (const double rho : {0.001, 0.1}) {
    const ddc::DbscanParams params = ddc::PaperParams(dim, 100.0, rho);

    // Semi-dynamic: emptiness structure choice.
    {
      const ddc::Workload w = ddc::bench::PaperWorkload(
          dim, config.n, 1.0, config.query_every, config.seed);
      for (const auto& [name, kind] :
           {std::pair<const char*, ddc::EmptinessKind>{
                "brute", ddc::EmptinessKind::kBruteForce},
            {"subgrid", ddc::EmptinessKind::kSubGrid}}) {
        ddc::SemiDynamicClusterer clusterer(params, kind);
        ddc::RunOptions run_options;
        run_options.time_budget_seconds = config.budget_seconds;
        const ddc::RunStats stats = ddc::RunWorkload(clusterer, w, run_options);
        std::printf("%-10.3f%-14s%-12s%14.2f%14.1f%s\n", rho, "semi", name,
                    stats.avg_workload_cost_us, stats.max_update_cost_us,
                    stats.timed_out ? "  [TIMEOUT]" : "");
        std::fflush(stdout);
      }
    }
    // Fully-dynamic: emptiness x counter choice.
    {
      const ddc::Workload w = ddc::bench::PaperWorkload(
          dim, config.n, ins, config.query_every, config.seed);
      struct Combo {
        const char* name;
        ddc::EmptinessKind emptiness;
        ddc::CounterKind counter;
      };
      for (const Combo& combo :
           {Combo{"brute+exact", ddc::EmptinessKind::kBruteForce,
                  ddc::CounterKind::kExact},
            Combo{"sub+sub", ddc::EmptinessKind::kSubGrid,
                  ddc::CounterKind::kSubGrid}}) {
        ddc::FullyDynamicClusterer::Options options;
        options.emptiness = combo.emptiness;
        options.counter = combo.counter;
        ddc::FullyDynamicClusterer clusterer(params, options);
        ddc::RunOptions run_options;
        run_options.time_budget_seconds = config.budget_seconds;
        const ddc::RunStats stats = ddc::RunWorkload(clusterer, w, run_options);
        std::printf("%-10.3f%-14s%-12s%14.2f%14.1f%s\n", rho, "full",
                    combo.name, stats.avg_workload_cost_us,
                    stats.max_update_cost_us,
                    stats.timed_out ? "  [TIMEOUT]" : "");
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
