// Reproduces Figure 11: semi-dynamic average workload cost vs query
// frequency f_qry ∈ {0.01N, ..., 0.1N} (a query every f_qry updates).
//
// Flags: --n (default 30000), --budget, --seed, --dims (default "2,3,5,7").

#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 30000);
  const std::vector<double> fractions = {0.01, 0.02, 0.04, 0.06, 0.08, 0.1};

  std::vector<int> dims;
  std::stringstream ss(flags.GetString("dims", "2,3,5,7"));
  for (std::string tok; std::getline(ss, tok, ',');) dims.push_back(std::stoi(tok));

  for (const int dim : dims) {
    const ddc::DbscanParams params = ddc::PaperParams(dim);
    const std::vector<std::string> methods =
        dim == 2 ? std::vector<std::string>{"2d-semi-exact", "semi-approx",
                                            "inc-dbscan"}
                 : std::vector<std::string>{"semi-approx", "inc-dbscan"};

    std::vector<std::string> x_values;
    std::vector<std::vector<ddc::RunStats>> cells;
    for (const double f : fractions) {
      const int64_t query_every = std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(config.n) * f));
      std::printf("[fig11] d=%d fqry=%.2fN...\n", dim, f);
      std::fflush(stdout);
      const ddc::Workload w = ddc::bench::PaperWorkload(
          dim, config.n, /*ins_fraction=*/1.0, query_every, config.seed);
      std::vector<ddc::RunStats> row;
      for (const auto& m : methods) {
        row.push_back(
            ddc::bench::RunMethod(m, params, w, config.budget_seconds));
      }
      char label[32];
      std::snprintf(label, sizeof(label), "%.2fN", f);
      x_values.push_back(label);
      cells.push_back(std::move(row));
    }
    std::ostringstream title;
    title << "Figure 11 (" << dim << "D): semi-dynamic cost vs query frequency";
    ddc::PrintSweep(title.str(), "fqry", x_values, methods, cells);
  }
  return 0;
}
