// Reproduces Figure 9: semi-dynamic algorithms in d = 3, 5, 7 dimensions
// (average cost and max update cost vs time; Semi-Approx vs IncDBSCAN).
//
// Flags: --n, --budget, --seed, --fqry-frac, --dims (comma list, default
// "3,5,7").

#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 50000);

  std::vector<int> dims;
  std::stringstream ss(flags.GetString("dims", "3,5,7"));
  for (std::string tok; std::getline(ss, tok, ',');) dims.push_back(std::stoi(tok));

  for (const int dim : dims) {
    const ddc::Workload w = ddc::bench::PaperWorkload(
        dim, config.n, /*ins_fraction=*/1.0, config.query_every, config.seed);
    const ddc::DbscanParams params = ddc::PaperParams(dim);

    const std::vector<std::string> methods = {"semi-approx", "inc-dbscan"};
    std::vector<ddc::RunStats> runs;
    for (const auto& m : methods) {
      std::printf("[fig09] running %s at d=%d...\n", m.c_str(), dim);
      std::fflush(stdout);
      runs.push_back(
          ddc::bench::RunMethod(m, params, w, config.budget_seconds));
    }
    std::ostringstream title;
    title << "Figure 9 (" << dim << "D): semi-dynamic, insertion-only";
    ddc::PrintSeries(title.str(), methods, runs);
  }
  return 0;
}
