// Reproduces Figure 13: fully-dynamic algorithms in d = 3, 5, 7 dimensions
// (Double-Approx vs IncDBSCAN; the paper terminated IncDBSCAN in 5D/7D
// after 3 hours — timed-out runs are reported the same way here).
//
// Flags: --n, --budget, --seed, --fqry-frac, --ins-pct, --dims.

#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 50000);
  const double ins = flags.GetDouble("ins-pct", 5.0 / 6.0);

  std::vector<int> dims;
  std::stringstream ss(flags.GetString("dims", "3,5,7"));
  for (std::string tok; std::getline(ss, tok, ',');) dims.push_back(std::stoi(tok));

  for (const int dim : dims) {
    const ddc::Workload w = ddc::bench::PaperWorkload(
        dim, config.n, ins, config.query_every, config.seed);
    const ddc::DbscanParams params = ddc::PaperParams(dim);

    const std::vector<std::string> methods = {"double-approx", "inc-dbscan"};
    std::vector<ddc::RunStats> runs;
    for (const auto& m : methods) {
      std::printf("[fig13] running %s at d=%d...\n", m.c_str(), dim);
      std::fflush(stdout);
      runs.push_back(
          ddc::bench::RunMethod(m, params, w, config.budget_seconds));
    }
    std::ostringstream title;
    title << "Figure 13 (" << dim << "D): fully-dynamic, ins=5/6";
    ddc::PrintSeries(title.str(), methods, runs);
  }
  return 0;
}
