// Ablation: the CC structure behind the fully-dynamic clusterer.
// HDT [14] gives O~(1) amortized updates (the structure Theorem 4 cites);
// BFS relabeling has no sublinear guarantee but low constants on the small,
// sparse grid graph. This bench quantifies the trade-off on the paper's
// workloads — average cost and worst-case update cost.
//
// Flags: --n (default 40000), --seed, --fqry-frac, --ins-pct, --dims.

#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"
#include "core/fully_dynamic_clusterer.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 40000);
  const double ins = flags.GetDouble("ins-pct", 5.0 / 6.0);

  std::vector<int> dims;
  std::stringstream ss(flags.GetString("dims", "2,3"));
  for (std::string tok; std::getline(ss, tok, ',');) dims.push_back(std::stoi(tok));

  std::printf("=== Ablation: HDT vs BFS connectivity (fully-dynamic) ===\n");
  std::printf("%-6s%-8s%14s%14s%14s\n", "d", "cc", "avg(us)", "maxupd(us)",
              "qry(us)");
  for (const int dim : dims) {
    const ddc::Workload w = ddc::bench::PaperWorkload(
        dim, config.n, ins, config.query_every, config.seed);
    const ddc::DbscanParams params = ddc::PaperParams(dim);

    for (const auto& [name, kind] :
         {std::pair<const char*, ddc::ConnectivityKind>{
              "hdt", ddc::ConnectivityKind::kHdt},
          {"bfs", ddc::ConnectivityKind::kBfs}}) {
      ddc::FullyDynamicClusterer::Options options;
      options.connectivity = kind;
      ddc::FullyDynamicClusterer clusterer(params, options);
      ddc::RunOptions run_options;
      run_options.time_budget_seconds = config.budget_seconds;
      const ddc::RunStats stats = ddc::RunWorkload(clusterer, w, run_options);
      std::printf("%-6d%-8s%14.2f%14.1f%14.2f%s\n", dim, name,
                  stats.avg_workload_cost_us, stats.max_update_cost_us,
                  stats.avg_query_cost_us, stats.timed_out ? "  [TIMEOUT]" : "");
      std::fflush(stdout);
    }
  }
  return 0;
}
