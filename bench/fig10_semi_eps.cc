// Reproduces Figure 10: semi-dynamic average workload cost vs ε.
// ε/d ∈ {50, 100, 200, 400, 800}; d = 2 runs all three semi-dynamic-capable
// methods, d ∈ {3, 5, 7} runs Semi-Approx vs IncDBSCAN.
//
// Flags: --n (default 30000), --budget, --seed, --fqry-frac, --dims.

#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);
  const auto config = ddc::bench::BenchConfig::FromFlags(flags, 30000);
  const std::vector<double> eps_over_d = {50, 100, 200, 400, 800};

  std::vector<int> dims;
  std::stringstream ss(flags.GetString("dims", "2,3,5,7"));
  for (std::string tok; std::getline(ss, tok, ',');) dims.push_back(std::stoi(tok));

  for (const int dim : dims) {
    const ddc::Workload w = ddc::bench::PaperWorkload(
        dim, config.n, /*ins_fraction=*/1.0, config.query_every, config.seed);
    const std::vector<std::string> methods =
        dim == 2 ? std::vector<std::string>{"2d-semi-exact", "semi-approx",
                                            "inc-dbscan"}
                 : std::vector<std::string>{"semi-approx", "inc-dbscan"};

    std::vector<std::string> x_values;
    std::vector<std::vector<ddc::RunStats>> cells;
    for (const double e : eps_over_d) {
      std::printf("[fig10] d=%d eps/d=%.0f...\n", dim, e);
      std::fflush(stdout);
      const ddc::DbscanParams params = ddc::PaperParams(dim, e);
      std::vector<ddc::RunStats> row;
      for (const auto& m : methods) {
        row.push_back(
            ddc::bench::RunMethod(m, params, w, config.budget_seconds));
      }
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f", e);
      x_values.push_back(label);
      cells.push_back(std::move(row));
    }
    std::ostringstream title;
    title << "Figure 10 (" << dim << "D): semi-dynamic cost vs eps/d";
    ddc::PrintSweep(title.str(), "eps/d", x_values, methods, cells);
  }
  return 0;
}
