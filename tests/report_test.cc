#include "telemetry/report.h"

#include <gtest/gtest.h>

namespace ddc {
namespace {

TEST(SanitizeForFilenameTest, PassesWhitelistedCharactersThrough) {
  EXPECT_EQ(SanitizeForFilename("paper-mixed"), "paper-mixed");
  EXPECT_EQ(SanitizeForFilename("Double_Approx.v2-1"), "Double_Approx.v2-1");
  EXPECT_EQ(SanitizeForFilename(""), "");
}

TEST(SanitizeForFilenameTest, RewritesSpecPunctuation) {
  // The historical cases: spec grammar punctuation.
  EXPECT_EQ(SanitizeForFilename("sharded-double-approx:shards=4,threads=4"),
            "sharded-double-approx-shards-4-threads-4");
}

TEST(SanitizeForFilenameTest, RewritesPathAndShellCharacters) {
  // Future knob values with path separators, spaces, or metacharacters must
  // not escape the output directory or break globbing.
  EXPECT_EQ(SanitizeForFilename("method:path=/etc/passwd"),
            "method-path--etc-passwd");
  EXPECT_EQ(SanitizeForFilename("a;b c|d*e?f"), "a-b-c-d-e-f");
  EXPECT_EQ(SanitizeForFilename("up:dir=../../x"), "up-dir-..-..-x");
  EXPECT_EQ(SanitizeForFilename("quo\"te'd`$(x)"), "quo-te-d---x-");
  // Non-ASCII bytes are rewritten too.
  EXPECT_EQ(SanitizeForFilename("caf\xc3\xa9"), "caf--");
}

TEST(SanitizeForFilenameTest, DotsAloneCannotEscapeADirectory) {
  // ".." survives the whitelist but path separators never do, so the result
  // is always a single path component.
  const std::string s = SanitizeForFilename("../escape");
  EXPECT_EQ(s.find('/'), std::string::npos);
  EXPECT_EQ(s, "..-escape");
}

}  // namespace
}  // namespace ddc
