#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/io.h"
#include "common/random.h"
#include "persist/fault_file.h"
#include "persist/wal.h"

namespace ddc {
namespace {

// On-disk geometry (see wal.h): segment header, then framed records.
constexpr size_t kHeaderBytes = 8 + 8 + 4;
constexpr size_t kFrameBytes = 4 + 4;
/// Frame size of a dim-2 insert record: header + (type+seq+id+dim+2 doubles).
constexpr size_t kInsert2Frame = kFrameBytes + 1 + 8 + 4 + 1 + 16;

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ddc_wal_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

WalOp InsertOp(PointId id, double x, double y) {
  WalOp op;
  op.type = WalOp::Type::kInsert;
  op.id = id;
  op.dim = 2;
  op.point[0] = x;
  op.point[1] = y;
  return op;
}

WalOp DeleteOp(PointId id) {
  WalOp op;
  op.type = WalOp::Type::kDelete;
  op.id = id;
  return op;
}

/// Writes `n` dim-2 inserts through a WalWriter; returns the ops with their
/// assigned seqs.
std::vector<WalOp> WriteLog(const std::string& dir, int n,
                            WalWriter::Options options = {}) {
  WalWriter writer(dir, options);
  EXPECT_TRUE(writer.ok()) << writer.error();
  std::vector<WalOp> ops;
  Rng rng(7);
  for (int i = 0; i < n; ++i) {
    WalOp op = InsertOp(i, rng.NextDouble(0, 100), rng.NextDouble(0, 100));
    EXPECT_TRUE(writer.Append(op)) << writer.error();
    ops.push_back(op);
  }
  EXPECT_TRUE(writer.Close()) << writer.error();
  return ops;
}

std::vector<WalOp> ReplayAll(const std::string& dir, WalReplayReport* report,
                             std::string* error) {
  std::vector<WalOp> got;
  const bool ok =
      ReplayWal(dir, [&](const WalOp& op) { got.push_back(op); }, report,
                error);
  if (!ok) got.clear();
  EXPECT_EQ(ok, error->empty());
  return got;
}

void Corrupt(const std::string& path, size_t offset, char xor_mask) {
  std::string data;
  std::string error;
  ASSERT_TRUE(ReadFileToString(path, &data, &error)) << error;
  ASSERT_LT(offset, data.size());
  data[offset] ^= xor_mask;
  ASSERT_TRUE(WriteFile(path, data, &error)) << error;
}

void Truncate(const std::string& path, size_t strip_bytes) {
  std::string data;
  std::string error;
  ASSERT_TRUE(ReadFileToString(path, &data, &error)) << error;
  ASSERT_LE(strip_bytes, data.size());
  data.resize(data.size() - strip_bytes);
  ASSERT_TRUE(WriteFile(path, data, &error)) << error;
}

TEST(WalOpTest, EncodeDecodeRoundTrip) {
  WalOp insert = InsertOp(42, -1.5, 1e300);
  insert.seq = 7;
  WalOp decoded;
  ASSERT_TRUE(DecodeWalOp(EncodeWalOp(insert), &decoded));
  EXPECT_TRUE(decoded == insert);

  WalOp del = DeleteOp(99);
  del.seq = 8;
  ASSERT_TRUE(DecodeWalOp(EncodeWalOp(del), &decoded));
  EXPECT_TRUE(decoded == del);
}

TEST(WalOpTest, RejectsMalformedPayloads) {
  WalOp op;
  EXPECT_FALSE(DecodeWalOp("", &op));
  EXPECT_FALSE(DecodeWalOp(std::string(13, '\x7f'), &op));  // Bad type.
  std::string insert = EncodeWalOp(InsertOp(1, 0, 0));
  insert[13] = static_cast<char>(kMaxDim + 1);  // dim out of range.
  EXPECT_FALSE(DecodeWalOp(insert, &op));
  insert[13] = 3;  // dim/length mismatch.
  EXPECT_FALSE(DecodeWalOp(insert, &op));
}

TEST(WalTest, WriteReplayRoundTrip) {
  const std::string dir = TempDir("roundtrip");
  std::vector<WalOp> ops;
  {
    WalWriter writer(dir, {});
    ASSERT_TRUE(writer.ok()) << writer.error();
    for (int i = 0; i < 20; ++i) {
      WalOp op = i % 3 == 2 ? DeleteOp(i - 1) : InsertOp(i, i * 1.5, -i);
      ASSERT_TRUE(writer.Append(op));
      EXPECT_EQ(op.seq, static_cast<uint64_t>(i + 1));  // Writer assigns.
      ops.push_back(op);
    }
    EXPECT_EQ(writer.next_seq(), 21u);
    ASSERT_TRUE(writer.Close());
  }
  WalReplayReport report;
  std::string error;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  ASSERT_EQ(got.size(), ops.size()) << error;
  for (size_t i = 0; i < ops.size(); ++i) EXPECT_TRUE(got[i] == ops[i]);
  EXPECT_EQ(report.records, 20);
  EXPECT_EQ(report.segments, 1);
  EXPECT_EQ(report.last_seq, 20u);
  EXPECT_FALSE(report.truncated);
}

TEST(WalTest, RotationKeepsSequenceContinuity) {
  const std::string dir = TempDir("rotation");
  WalWriter::Options options;
  options.segment_bytes = 200;  // A handful of records per segment.
  const std::vector<WalOp> ops = WriteLog(dir, 40, options);

  std::vector<std::string> segments;
  std::string error;
  ASSERT_TRUE(ListWalSegments(dir, &segments, &error)) << error;
  EXPECT_GT(segments.size(), 3u);

  WalReplayReport report;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  ASSERT_EQ(got.size(), ops.size()) << error;
  for (size_t i = 0; i < ops.size(); ++i) EXPECT_TRUE(got[i] == ops[i]);
  EXPECT_EQ(report.segments, static_cast<int>(segments.size()));
  EXPECT_EQ(report.last_seq, 40u);
}

TEST(WalTest, RefusesDirWithExistingSegments) {
  const std::string dir = TempDir("refuse");
  WriteLog(dir, 3);
  WalWriter second(dir, {});
  EXPECT_FALSE(second.ok());
  EXPECT_NE(second.error().find("refusing"), std::string::npos)
      << second.error();
}

TEST(WalTest, EmptyDirectoryReplaysZeroRecords) {
  const std::string dir = TempDir("empty");
  WalReplayReport report;
  std::string error;
  EXPECT_TRUE(ReplayWal(dir, [](const WalOp&) { FAIL(); }, &report, &error));
  EXPECT_EQ(report.records, 0);
  EXPECT_EQ(report.last_seq, 0u);
  EXPECT_FALSE(report.truncated);
  // Same for a directory that does not exist at all.
  EXPECT_TRUE(ReplayWal(dir + "/nonexistent", [](const WalOp&) { FAIL(); },
                        &report, &error));
  EXPECT_EQ(report.records, 0);
}

TEST(WalTest, TornTailIsTruncatedAtEveryCutPoint) {
  // Strip k bytes off the end for k = 1 .. one whole record + frame: every
  // cut must truncate to exactly the records still fully intact.
  for (size_t strip = 1; strip <= kInsert2Frame + 3; strip += 3) {
    const std::string dir = TempDir("torn" + std::to_string(strip));
    const std::vector<WalOp> ops = WriteLog(dir, 10);
    const std::string segment = dir + "/" + WalSegmentName(1);
    Truncate(segment, strip);

    WalReplayReport report;
    std::string error;
    const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
    ASSERT_TRUE(error.empty()) << "strip " << strip << ": " << error;
    EXPECT_TRUE(report.truncated) << "strip " << strip;
    EXPECT_EQ(report.truncated_file, segment);
    EXPECT_FALSE(report.truncation_reason.empty());
    const size_t expect_records =
        strip >= kInsert2Frame ? 8u : 9u;  // Last record (or last two) gone.
    ASSERT_EQ(got.size(), expect_records) << "strip " << strip;
    for (size_t i = 0; i < got.size(); ++i) EXPECT_TRUE(got[i] == ops[i]);
  }
}

TEST(WalTest, EmptyFinalSegmentIsACleanTail) {
  // Rotation creates a segment before appending into it; a crash right
  // there leaves a record-free file, which must truncate, not error.
  const std::string dir = TempDir("emptytail");
  const std::vector<WalOp> ops = WriteLog(dir, 5);
  ASSERT_TRUE(WriteFile(dir + "/" + WalSegmentName(6), ""));

  WalReplayReport report;
  std::string error;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  ASSERT_EQ(got.size(), 5u) << error;
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.truncation_reason, "torn segment header");
}

TEST(WalTest, BitFlipInFinalSegmentTruncatesAtTheRecord) {
  const std::string dir = TempDir("fliplast");
  const std::vector<WalOp> ops = WriteLog(dir, 10);
  const std::string segment = dir + "/" + WalSegmentName(1);
  // Flip a payload byte of record 6 (0-based): records 0..5 survive.
  Corrupt(segment, kHeaderBytes + 6 * kInsert2Frame + kFrameBytes + 2, 0x10);

  WalReplayReport report;
  std::string error;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  ASSERT_EQ(got.size(), 6u) << error;
  for (size_t i = 0; i < got.size(); ++i) EXPECT_TRUE(got[i] == ops[i]);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.truncation_reason, "payload CRC mismatch");
  EXPECT_EQ(report.truncated_offset,
            static_cast<int64_t>(kHeaderBytes + 6 * kInsert2Frame));
}

TEST(WalTest, CorruptionInNonFinalSegmentIsAHardError) {
  const std::string dir = TempDir("flipmid");
  WalWriter::Options options;
  options.segment_bytes = 200;
  WriteLog(dir, 40, options);
  std::vector<std::string> segments;
  std::string error;
  ASSERT_TRUE(ListWalSegments(dir, &segments, &error));
  ASSERT_GT(segments.size(), 2u);
  // A flipped payload byte in the FIRST segment: acknowledged data recovery
  // must refuse to skip.
  Corrupt(segments[0], kHeaderBytes + kFrameBytes + 2, 0x10);

  WalReplayReport report;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error.find("non-final segment"), std::string::npos) << error;
  EXPECT_NE(error.find(segments[0]), std::string::npos) << error;
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(WalTest, GarbageLengthFieldIsCaughtNotTrusted) {
  const std::string dir = TempDir("len");
  WriteLog(dir, 4);
  const std::string segment = dir + "/" + WalSegmentName(1);
  // Smash the length field of record 2 to ~4 GiB; a reader that trusted it
  // would allocate/seek absurdly instead of reporting corruption.
  for (size_t b = 0; b < 4; ++b) {
    Corrupt(segment, kHeaderBytes + 2 * kInsert2Frame + b, '\xff');
  }
  WalReplayReport report;
  std::string error;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  ASSERT_EQ(got.size(), 2u) << error;
  EXPECT_TRUE(report.truncated);
  EXPECT_NE(report.truncation_reason.find("exceeds maximum"),
            std::string::npos);
}

TEST(WalTest, ValidCrcWrongSeqIsAHardErrorEvenAtTheTail) {
  // A record that checksums clean but carries the wrong sequence number is
  // reordering/duplication, not a torn write — hard error even in the last
  // segment, where torn records would be forgiven.
  const std::string dir = TempDir("seq");
  std::string error;
  std::unique_ptr<WritableFile> f =
      DefaultFileFactory()(dir + "/" + WalSegmentName(1));
  std::string header;
  header.append("DDCWAL01", 8);
  AppendLe64(header, 1);
  AppendLe32(header, Crc32(header.data() + 8, 8));
  ASSERT_TRUE(f->Append(header));
  WalOp op = InsertOp(0, 1, 2);
  op.seq = 5;  // Header promised the stream starts at 1.
  ASSERT_TRUE(AppendWalRecord(*f, EncodeWalOp(op)));
  ASSERT_TRUE(f->Close());

  WalReplayReport report;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error.find("seq 5"), std::string::npos) << error;
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(WalTest, MissingMiddleSegmentIsAHardError) {
  const std::string dir = TempDir("gap");
  WalWriter::Options options;
  options.segment_bytes = 200;
  WriteLog(dir, 40, options);
  std::vector<std::string> segments;
  std::string error;
  ASSERT_TRUE(ListWalSegments(dir, &segments, &error));
  ASSERT_GT(segments.size(), 2u);
  std::filesystem::remove(segments[1]);

  WalReplayReport report;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error.find("expected"), std::string::npos) << error;
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
}

TEST(WalTest, DuplicatedSegmentIsAHardErrorNamingBothFiles) {
  // Two names that parse to the same first_seq (hex case differs): the
  // listing itself must refuse — picking either file silently would be
  // guessing about acknowledged data.
  const std::string dir = TempDir("dup");
  WalWriter::Options options;
  options.start_seq = 10;  // 0x...a, so the name has a hex letter to upcase.
  WriteLog(dir, 3, options);
  const std::string lower = dir + "/" + WalSegmentName(10);
  std::string upper = lower;
  upper.replace(upper.size() - 5, 1, "A");
  std::filesystem::copy_file(lower, upper);

  std::vector<std::string> segments;
  std::string error;
  EXPECT_FALSE(ListWalSegments(dir, &segments, &error));
  EXPECT_NE(error.find("duplicated"), std::string::npos) << error;
  EXPECT_NE(error.find("000000000000000a"), std::string::npos) << error;
  EXPECT_NE(error.find("000000000000000A"), std::string::npos) << error;

  WalReplayReport report;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  EXPECT_TRUE(got.empty());
}

TEST(WalTest, RenamedSegmentHeaderMismatchIsAHardError) {
  const std::string dir = TempDir("rename");
  WalWriter::Options options;
  options.segment_bytes = 200;
  WriteLog(dir, 40, options);
  std::vector<std::string> segments;
  std::string error;
  ASSERT_TRUE(ListWalSegments(dir, &segments, &error));
  ASSERT_GT(segments.size(), 2u);
  // Clobber segment 2 with a copy of segment 3: its header now contradicts
  // the continuity the name promises.
  std::filesystem::copy_file(segments[2], segments[1],
                             std::filesystem::copy_options::overwrite_existing);

  WalReplayReport report;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  EXPECT_TRUE(got.empty());
  EXPECT_NE(error.find("first_seq"), std::string::npos) << error;
}

TEST(WalTest, SingleFileOplogRoundTrip) {
  const std::string dir = TempDir("oplog");
  const std::string path = dir + "/oplog.log";
  std::vector<WalOp> ops;
  {
    std::unique_ptr<WalWriter> oplog = WalWriter::OpenSingleFile(path, {});
    ASSERT_TRUE(oplog->ok()) << oplog->error();
    for (int i = 0; i < 12; ++i) {
      WalOp op = i % 4 == 3 ? DeleteOp(i - 1) : InsertOp(i, i, i + 0.5);
      ASSERT_TRUE(oplog->Append(op));
      ops.push_back(op);
    }
    ASSERT_TRUE(oplog->Close());
  }
  WalReplayReport report;
  std::string error;
  std::vector<WalOp> got;
  ASSERT_TRUE(ReplayWalFile(path, 0, /*is_last=*/true,
                            [&](const WalOp& op) { got.push_back(op); },
                            &report, &error))
      << error;
  ASSERT_EQ(got.size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) EXPECT_TRUE(got[i] == ops[i]);
}

TEST(WalTest, GroupCommitSyncsEveryNRecords) {
  const std::string dir = TempDir("group");
  WalWriter::Options options;
  options.sync_every = 4;
  WalWriter writer(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 10; ++i) {
    WalOp op = InsertOp(i, i, i);
    ASSERT_TRUE(writer.Append(op));
  }
  ASSERT_TRUE(writer.Close());
  WalReplayReport report;
  std::string error;
  EXPECT_EQ(ReplayAll(dir, &report, &error).size(), 10u) << error;
}

TEST(WalTest, FaultInjectedWriterLatchesAndTailReplays) {
  // A writer whose storage dies mid-stream: Append starts failing, and the
  // bytes that made it to disk replay as a clean truncated prefix.
  const std::string dir = TempDir("fault");
  FaultPlan plan;
  plan.crash_after_bytes =
      static_cast<int64_t>(kHeaderBytes + 5 * kInsert2Frame + 7);
  FaultInjector injector(plan);
  WalWriter::Options options;
  options.factory = injector.WrapFactory(DefaultFileFactory());
  WalWriter writer(dir, options);
  ASSERT_TRUE(writer.ok());
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    WalOp op = InsertOp(i, i, i);
    if (!writer.Append(op)) break;
    ++accepted;
  }
  EXPECT_EQ(accepted, 5);
  EXPECT_TRUE(injector.crashed());
  EXPECT_FALSE(writer.ok());

  WalReplayReport report;
  std::string error;
  const std::vector<WalOp> got = ReplayAll(dir, &report, &error);
  ASSERT_EQ(got.size(), 5u) << error;
  EXPECT_TRUE(report.truncated);
}

}  // namespace
}  // namespace ddc
