#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/vicinity_tracker.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

// After any prefix of insertions, is_core and vicinity counts must match a
// brute-force recomputation.
class VicinityTrackerTest : public ::testing::TestWithParam<int> {};

TEST_P(VicinityTrackerTest, MatchesBruteForce) {
  const int dim = GetParam();
  DbscanParams params{.dim = dim, .eps = 1.0, .min_pts = 4, .rho = 0.0};
  Rng rng(1000 + dim);
  Grid grid(dim, params.eps);
  VicinityTracker tracker(&grid, params);

  std::vector<Point> pts = BlobPoints(rng, 250, dim, 6.0, 4, 0.8, 0.1);
  std::vector<int> core_events;

  for (int n = 0; n < static_cast<int>(pts.size()); ++n) {
    const auto ins = grid.Insert(pts[n]);
    tracker.OnInsert(ins.id, ins.cell,
                     [&](PointId q, CellId) { core_events.push_back(q); });

    if (n % 25 != 24) continue;
    // Brute-force verification over the current prefix.
    for (int i = 0; i <= n; ++i) {
      int count = 0;
      for (int j = 0; j <= n; ++j) {
        if (WithinDistance(pts[i], pts[j], dim, params.eps)) ++count;
      }
      const bool want_core = count >= params.min_pts;
      ASSERT_EQ(tracker.is_core(i), want_core) << "point " << i << " at n=" << n;
      if (!want_core) {
        ASSERT_EQ(tracker.vicinity_count(i), count) << "point " << i;
      }
    }
  }

  // Core transitions are permanent and unique.
  std::set<int> seen;
  for (const int q : core_events) {
    EXPECT_TRUE(seen.insert(q).second) << "duplicate core event for " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, VicinityTrackerTest, ::testing::Values(1, 2, 3, 5));

TEST(VicinityTrackerBasics, DenseCellPromotesResidents) {
  // MinPts points dropped into one tiny region: all must turn core exactly
  // when the threshold is crossed.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.0};
  Grid grid(2, params.eps);
  VicinityTracker tracker(&grid, params);
  std::vector<PointId> cores;
  auto cb = [&](PointId q, CellId) { cores.push_back(q); };

  auto insert = [&](double x, double y) {
    const auto ins = grid.Insert(Point{x, y});
    tracker.OnInsert(ins.id, ins.cell, cb);
    return ins.id;
  };

  insert(0.1, 0.1);
  insert(0.15, 0.1);
  EXPECT_TRUE(cores.empty());
  insert(0.1, 0.15);
  EXPECT_EQ(cores.size(), 3u);  // All three at once.
  insert(0.12, 0.12);
  EXPECT_EQ(cores.size(), 4u);  // Newcomer is instantly core.
}

TEST(VicinityTrackerBasics, CrossCellPromotion) {
  // Points in different cells within eps must count each other.
  DbscanParams params{.dim = 1, .eps = 1.0, .min_pts = 2, .rho = 0.0};
  Grid grid(1, params.eps);
  VicinityTracker tracker(&grid, params);
  std::vector<PointId> cores;
  auto cb = [&](PointId q, CellId) { cores.push_back(q); };

  auto a = grid.Insert(Point{0.0});
  tracker.OnInsert(a.id, a.cell, cb);
  EXPECT_TRUE(cores.empty());

  auto b = grid.Insert(Point{0.9});  // Different cell (side 1.0), within eps.
  tracker.OnInsert(b.id, b.cell, cb);
  EXPECT_EQ(cores.size(), 2u);

  auto c = grid.Insert(Point{5.0});  // Far away: isolated non-core.
  tracker.OnInsert(c.id, c.cell, cb);
  EXPECT_EQ(cores.size(), 2u);
  EXPECT_FALSE(tracker.is_core(c.id));
}

}  // namespace
}  // namespace ddc
