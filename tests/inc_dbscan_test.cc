#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/incremental_dbscan.h"
#include "core/static_dbscan.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

// IncDBSCAN maintains exact DBSCAN: after every checkpoint of a mixed
// insert/delete workload its full clustering must equal the static oracle.
struct IncCase {
  int dim;
  double eps;
  int min_pts;
  double p_insert;
};

class IncDbscanOracleTest : public ::testing::TestWithParam<IncCase> {};

TEST_P(IncDbscanOracleTest, MatchesOracleUnderMixedWorkload) {
  const auto [dim, eps, min_pts, p_insert] = GetParam();
  DbscanParams params{.dim = dim, .eps = eps, .min_pts = min_pts, .rho = 0.0};
  Rng rng(4242 + dim);
  IncrementalDbscan inc(params);
  std::vector<PointId> alive;

  for (int step = 0; step < 800; ++step) {
    if (alive.empty() || rng.NextBernoulli(p_insert)) {
      alive.push_back(inc.Insert(BlobPoints(rng, 1, dim, 7.0, 1, 1.2, 0.25)[0]));
    } else {
      const size_t i = rng.NextBelow(alive.size());
      inc.Delete(alive[i]);
      alive[i] = alive.back();
      alive.pop_back();
    }
    if (step % 60 != 59) continue;

    std::vector<PointId> ids = inc.AlivePoints();
    std::vector<Point> pts;
    for (const PointId id : ids) pts.push_back(inc.grid().point(id));
    auto got = inc.QueryAll();
    got.Canonicalize();
    const auto want = StaticDbscan(pts, params).ToGroups(ids);
    ASSERT_EQ(got, want) << "step " << step << " n=" << ids.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IncDbscanOracleTest,
    ::testing::Values(IncCase{2, 0.8, 4, 0.7}, IncCase{2, 0.8, 4, 0.45},
                      IncCase{3, 1.1, 5, 0.7}, IncCase{1, 0.4, 2, 0.6},
                      IncCase{5, 1.9, 3, 0.65}));

TEST(IncDbscanTest, SplitRelabelsCorrectly) {
  // A dumbbell: two blobs connected by a single chain point; deleting the
  // chain point must split the cluster into two.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.0};
  IncrementalDbscan inc(params);
  std::vector<PointId> left, right;
  for (int i = 0; i < 4; ++i) left.push_back(inc.Insert(Point{0.2 * i, 0.0}));
  for (int i = 0; i < 4; ++i) {
    right.push_back(inc.Insert(Point{1.8 + 0.2 * i, 0.0}));
  }
  const PointId mid = inc.Insert(Point{1.2, 0.0});

  auto r = inc.Query({left[0], right[0]});
  ASSERT_EQ(r.groups.size(), 1u);

  inc.Delete(mid);
  r = inc.Query({left[0], right[0]});
  ASSERT_EQ(r.groups.size(), 2u);
}

TEST(IncDbscanTest, RangeQueriesGrowWithDeletions) {
  // Deletions in a dense region issue many more range queries than
  // insertions — the drawback the paper's algorithms remove.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 5, .rho = 0.0};
  IncrementalDbscan inc(params);
  Rng rng(8);
  std::vector<PointId> ids;
  for (const Point& p : UniformPoints(rng, 300, 2, 4.0)) {
    ids.push_back(inc.Insert(p));
  }
  const int64_t after_inserts = inc.range_queries_issued();
  for (int i = 0; i < 100; ++i) inc.Delete(ids[i]);
  const int64_t delete_queries = inc.range_queries_issued() - after_inserts;
  EXPECT_GT(delete_queries, 100);  // More than one per deletion.
}

TEST(IncDbscanTest, RejectsApproximateParams) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.5};
  EXPECT_DEATH(IncrementalDbscan inc(params), "exact");
}

}  // namespace
}  // namespace ddc
