#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "counting/approx_counter.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

struct CounterCase {
  CounterKind kind;
  double rho;
};

class ApproxCounterTest : public ::testing::TestWithParam<CounterCase> {};

// The counting contract: |B(q,eps)| <= Count(q, cap) <= |B(q,(1+rho)eps)|,
// modulo truncation at cap.
TEST_P(ApproxCounterTest, ContractUnderMixedUpdates) {
  const auto [kind, rho] = GetParam();
  const int dim = 2;
  DbscanParams params{.dim = dim, .eps = 1.0, .min_pts = 5, .rho = rho};
  Rng rng(404);
  Grid grid(dim, params.eps);
  ApproxRangeCounter counter(&grid, params, kind);

  std::vector<PointId> alive;
  for (int step = 0; step < 1500; ++step) {
    if (alive.empty() || rng.NextBernoulli(0.65)) {
      const auto ins = grid.Insert(UniformPoints(rng, 1, dim, 5.0)[0]);
      counter.OnInsert(ins.id, ins.cell);
      alive.push_back(ins.id);
    } else {
      const size_t i = rng.NextBelow(alive.size());
      const PointId id = alive[i];
      const CellId cell = grid.Delete(id);
      counter.OnDelete(id, cell);
      alive[i] = alive.back();
      alive.pop_back();
    }

    if (step % 25 != 0) continue;
    for (int probe = 0; probe < 10; ++probe) {
      const Point q = UniformPoints(rng, 1, dim, 5.0)[0];
      int inner = 0, outer = 0;
      for (const PointId id : alive) {
        const double d = Distance(q, grid.point(id), dim);
        inner += d <= params.eps;
        outer += d <= params.eps_outer();
      }
      const int cap = 1000000;
      const int got = counter.Count(q, cap);
      ASSERT_GE(got, inner) << "step " << step;
      ASSERT_LE(got, outer) << "step " << step;
      // Truncated query: only the >= cap decision must be right.
      const int capped = counter.Count(q, params.min_pts);
      ASSERT_EQ(capped >= params.min_pts, got >= params.min_pts);
      ASSERT_LE(capped, params.min_pts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ApproxCounterTest,
    ::testing::Values(CounterCase{CounterKind::kExact, 0.0},
                      CounterCase{CounterKind::kExact, 0.3},
                      CounterCase{CounterKind::kSubGrid, 0.001},
                      CounterCase{CounterKind::kSubGrid, 0.1},
                      CounterCase{CounterKind::kSubGrid, 0.5}));

TEST(ApproxCounterTest, SubGridWithZeroRhoFallsBackToExact) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.0};
  Grid grid(2, 1.0);
  ApproxRangeCounter counter(&grid, params, CounterKind::kSubGrid);
  EXPECT_EQ(counter.kind(), CounterKind::kExact);
}

TEST(ApproxCounterTest, CountsSelf) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.1};
  Grid grid(2, 1.0);
  ApproxRangeCounter counter(&grid, params, CounterKind::kSubGrid);
  const auto ins = grid.Insert(Point{1, 1});
  counter.OnInsert(ins.id, ins.cell);
  EXPECT_EQ(counter.Count(Point{1, 1}, 10), 1);
}

}  // namespace
}  // namespace ddc
