#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/relaxed_core_tracker.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

/// Soundness of the relaxed predicate under mixed updates: a marked core
/// point must have |B(p,(1+ρ)ε)| >= MinPts, an unmarked one must have
/// |B(p,ε)| < MinPts — everything else is don't-care.
class RelaxedTrackerTest : public ::testing::TestWithParam<CounterKind> {};

TEST_P(RelaxedTrackerTest, StatusStaysInsideBand) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 4, .rho = 0.15};
  Rng rng(606);
  Grid grid(2, params.eps);
  ApproxRangeCounter counter(&grid, params, GetParam());
  RelaxedCoreTracker tracker(&grid, &counter, params);

  std::vector<PointId> alive;
  auto noop_promote = [&](PointId, CellId) {};
  auto noop_demote = [&](PointId, CellId) {};

  for (int step = 0; step < 1200; ++step) {
    if (alive.empty() || rng.NextBernoulli(0.6)) {
      const Point p = UniformPoints(rng, 1, 2, 4.0)[0];
      const auto ins = grid.Insert(p);
      counter.OnInsert(ins.id, ins.cell);
      tracker.OnInsert(ins.id, ins.cell, noop_promote);
      alive.push_back(ins.id);
    } else {
      const size_t i = rng.NextBelow(alive.size());
      const PointId id = alive[i];
      if (tracker.is_core(id)) tracker.ClearCore(id);
      const CellId cell = grid.Delete(id);
      counter.OnDelete(id, cell);
      tracker.OnDelete(id, cell, noop_demote);
      alive[i] = alive.back();
      alive.pop_back();
    }

    if (step % 30 != 0) continue;
    for (const PointId p : alive) {
      int inner = 0, outer = 0;
      for (const PointId q : alive) {
        const double d = Distance(grid.point(p), grid.point(q), 2);
        inner += d <= params.eps;
        outer += d <= params.eps_outer();
      }
      if (tracker.is_core(p)) {
        ASSERT_GE(outer, params.min_pts) << "core point outside band";
      } else {
        ASSERT_LT(inner, params.min_pts) << "non-core point outside band";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Counters, RelaxedTrackerTest,
                         ::testing::Values(CounterKind::kExact,
                                           CounterKind::kSubGrid));

TEST(RelaxedTrackerTest, PromotionsAndDemotionsFire) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.0};
  Grid grid(2, params.eps);
  ApproxRangeCounter counter(&grid, params, CounterKind::kExact);
  RelaxedCoreTracker tracker(&grid, &counter, params);

  std::vector<PointId> promoted, demoted;
  auto on_promote = [&](PointId p, CellId) { promoted.push_back(p); };
  auto on_demote = [&](PointId p, CellId) { demoted.push_back(p); };

  std::vector<PointId> ids;
  for (const double x : {0.0, 0.1, 0.2}) {
    const auto ins = grid.Insert(Point{x, 0});
    counter.OnInsert(ins.id, ins.cell);
    tracker.OnInsert(ins.id, ins.cell, on_promote);
    ids.push_back(ins.id);
  }
  EXPECT_EQ(promoted.size(), 3u);  // All three turn core together.

  // Delete one: the remaining two must demote.
  if (tracker.is_core(ids[0])) tracker.ClearCore(ids[0]);
  const CellId cell = grid.Delete(ids[0]);
  counter.OnDelete(ids[0], cell);
  tracker.OnDelete(ids[0], cell, on_demote);
  EXPECT_EQ(demoted.size(), 2u);
  EXPECT_FALSE(tracker.is_core(ids[1]));
  EXPECT_FALSE(tracker.is_core(ids[2]));
}

}  // namespace
}  // namespace ddc
