#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/semi_dynamic_clusterer.h"
#include "core/static_dbscan.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

// With rho == 0 the semi-dynamic clusterer is exact DBSCAN: after every
// prefix of insertions its full clustering must equal the static oracle.
struct ExactCase {
  int dim;
  double eps;
  int min_pts;
};

class SemiExactTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(SemiExactTest, MatchesOracleAtEveryPrefix) {
  const auto [dim, eps, min_pts] = GetParam();
  Rng rng(500 + dim * 31 + min_pts);
  const auto pts = BlobPoints(rng, 220, dim, 7.0, 4, 0.9, 0.12);
  DbscanParams params{.dim = dim, .eps = eps, .min_pts = min_pts, .rho = 0.0};

  SemiDynamicClusterer clusterer(params);
  for (int n = 0; n < static_cast<int>(pts.size()); ++n) {
    clusterer.Insert(pts[n]);
    if (n % 20 != 19 && n + 1 != static_cast<int>(pts.size())) continue;
    auto got = clusterer.QueryAll();
    got.Canonicalize();
    const std::vector<Point> prefix(pts.begin(), pts.begin() + n + 1);
    const auto want = OracleGroups(prefix, params);
    ASSERT_EQ(got, want) << "prefix " << n + 1 << " dim=" << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SemiExactTest,
    ::testing::Values(ExactCase{1, 0.6, 3}, ExactCase{2, 0.7, 4},
                      ExactCase{2, 0.7, 1}, ExactCase{3, 0.9, 4},
                      ExactCase{3, 1.5, 10}, ExactCase{5, 1.8, 4},
                      ExactCase{7, 2.5, 3}));

// With rho > 0, every prefix must satisfy the sandwich guarantee.
struct ApproxCase {
  int dim;
  double rho;
  EmptinessKind kind;
};

class SemiSandwichTest : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(SemiSandwichTest, SandwichAtEveryPrefix) {
  const auto [dim, rho, kind] = GetParam();
  Rng rng(900 + dim);
  const auto pts = BlobPoints(rng, 200, dim, 7.0, 4, 0.9, 0.12);
  DbscanParams params{.dim = dim, .eps = 0.9, .min_pts = 4, .rho = rho};

  SemiDynamicClusterer clusterer(params, kind);
  for (int n = 0; n < static_cast<int>(pts.size()); ++n) {
    clusterer.Insert(pts[n]);
    if (n % 40 != 39 && n + 1 != static_cast<int>(pts.size())) continue;
    auto got = clusterer.QueryAll();
    got.Canonicalize();
    const std::vector<Point> prefix(pts.begin(), pts.begin() + n + 1);
    const auto lower = OracleGroups(prefix, params);
    const auto upper = OracleGroupsOuter(prefix, params);
    std::string why;
    ASSERT_TRUE(CheckSandwich(lower, got, upper, &why))
        << why << " at prefix " << n + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SemiSandwichTest,
    ::testing::Values(ApproxCase{2, 0.001, EmptinessKind::kBruteForce},
                      ApproxCase{2, 0.5, EmptinessKind::kBruteForce},
                      ApproxCase{3, 0.25, EmptinessKind::kBruteForce},
                      ApproxCase{3, 0.25, EmptinessKind::kSubGrid},
                      ApproxCase{5, 0.1, EmptinessKind::kSubGrid}));

TEST(SemiDynamicTest, FigureOneScenario) {
  // The paper's Figure 1: insertions create a connection path that merges
  // two clusters.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.0};
  SemiDynamicClusterer c(params);
  std::vector<PointId> left, right;
  for (int i = 0; i < 5; ++i) left.push_back(c.Insert(Point{0.3 * i, 0.0}));
  for (int i = 0; i < 5; ++i) right.push_back(c.Insert(Point{6 + 0.3 * i, 0.0}));

  auto r = c.Query({left[0], right[0]});
  r.Canonicalize();
  ASSERT_EQ(r.groups.size(), 2u);  // Separate clusters.

  // Bridge them.
  c.Insert(Point{2.0, 0});
  c.Insert(Point{2.9, 0});
  c.Insert(Point{3.8, 0});
  c.Insert(Point{4.7, 0});
  c.Insert(Point{5.4, 0});
  r = c.Query({left[0], right[0]});
  r.Canonicalize();
  ASSERT_EQ(r.groups.size(), 1u);  // Merged.
  EXPECT_EQ(r.groups[0].size(), 2u);
}

TEST(SemiDynamicTest, QuerySubsetConsistentWithFullClustering) {
  Rng rng(321);
  DbscanParams params{.dim = 2, .eps = 0.8, .min_pts = 4, .rho = 0.0};
  SemiDynamicClusterer c(params);
  const auto pts = BlobPoints(rng, 150, 2, 6.0, 3, 0.8, 0.1);
  for (const auto& p : pts) c.Insert(p);

  auto full = c.QueryAll();
  full.Canonicalize();

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PointId> q;
    for (PointId i = 0; i < 150; ++i) {
      if (rng.NextBernoulli(0.2)) q.push_back(i);
    }
    auto sub = c.Query(q);
    sub.Canonicalize();

    // Expected: restriction of the full groups to q.
    CGroupByResult want;
    std::set<PointId> qs(q.begin(), q.end());
    for (const auto& g : full.groups) {
      std::vector<PointId> inter;
      for (PointId p : g) {
        if (qs.count(p)) inter.push_back(p);
      }
      if (!inter.empty()) want.groups.push_back(inter);
    }
    for (PointId p : full.noise) {
      if (qs.count(p)) want.noise.push_back(p);
    }
    want.Canonicalize();
    ASSERT_EQ(sub, want) << "trial " << trial;
  }
}

TEST(SemiDynamicTest, DeleteAborts) {
  DbscanParams params{.dim = 2, .eps = 1, .min_pts = 2, .rho = 0.0};
  SemiDynamicClusterer c(params);
  const PointId id = c.Insert(Point{0, 0});
  EXPECT_DEATH(c.Delete(id), "insertions only");
}

TEST(SemiDynamicTest, QueryIgnoresUnknownIds) {
  DbscanParams params{.dim = 2, .eps = 1, .min_pts = 1, .rho = 0.0};
  SemiDynamicClusterer c(params);
  c.Insert(Point{0, 0});
  auto r = c.Query({0, 57});  // 57 never inserted.
  r.Canonicalize();
  EXPECT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.noise.empty());
}

TEST(SemiDynamicTest, EdgeCountStaysSparse) {
  // The grid graph has O(#cells) edges; sanity-check the bound loosely.
  Rng rng(11);
  DbscanParams params{.dim = 2, .eps = 0.7, .min_pts = 3, .rho = 0.0};
  SemiDynamicClusterer c(params);
  for (const auto& p : BlobPoints(rng, 400, 2, 8.0, 5, 1.0, 0.1)) c.Insert(p);
  EXPECT_LE(c.num_graph_edges(),
            static_cast<int64_t>(c.grid().num_cells()) * 25);
}

}  // namespace
}  // namespace ddc
