#include <atomic>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/shard_map.h"
#include "engine/stitch.h"
#include "engine/thread_pool.h"
#include "geom/point.h"

namespace ddc {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 30; ++i) {
    pool.Submit(i % 3, [&count] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPoolTest, TasksOnOneWorkerRunInSubmissionOrder) {
  // The per-shard ordering guarantee the engine relies on: FIFO per worker,
  // even under many tasks and a single thread shared by "several shards".
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    pool.Submit(0, [&order, i] { order.push_back(i); });
  }
  pool.Drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DrainIsABarrierForWorkerWrites) {
  ThreadPool pool(4);
  std::vector<int64_t> sums(4, 0);
  for (int round = 0; round < 10; ++round) {
    for (int w = 0; w < 4; ++w) {
      pool.Submit(w, [&sums, w] { sums[w] += w + 1; });
    }
    pool.Drain();
    // Post-drain reads see every write of the drained tasks.
    for (int w = 0; w < 4; ++w) EXPECT_EQ(sums[w], (w + 1) * (round + 1));
  }
}

TEST(ThreadPoolTest, DestructorRunsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit(i % 2, [&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

// ---------------------------------------------------------------------------
// ShardMap

Point P2(double x, double y) { return Point{x, y}; }

TEST(ShardMapTest, PicksSpreadMaximizingDimension) {
  ShardMap map(4, 2, /*halo=*/10.0);
  // Spread 100 on dim 0, 1000 on dim 1: slabs must split dim 1.
  std::vector<Point> sample = {P2(0, 0), P2(100, 1000), P2(50, 500)};
  map.InitFromSample(sample);
  EXPECT_EQ(map.split_dim(), 1);
  EXPECT_DOUBLE_EQ(map.lo(), 0);
  EXPECT_DOUBLE_EQ(map.slab_width(), 250);
  EXPECT_EQ(map.OwnerOf(P2(0, 10)), 0);
  EXPECT_EQ(map.OwnerOf(P2(0, 260)), 1);
  EXPECT_EQ(map.OwnerOf(P2(0, 999)), 3);
}

TEST(ShardMapTest, EndSlabsAbsorbOutliers) {
  ShardMap map(4, 1, 5.0);
  std::vector<Point> sample = {Point{0}, Point{400}};
  map.InitFromSample(sample);
  EXPECT_EQ(map.OwnerOf(Point{-1e9}), 0);
  EXPECT_EQ(map.OwnerOf(Point{1e9}), 3);
  const ShardMap::Range r = map.HoldersOf(Point{-1e9});
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.last, 0);
}

TEST(ShardMapTest, HoldersCoverTheHalo) {
  ShardMap map(4, 1, 10.0);
  std::vector<Point> sample = {Point{0}, Point{400}};  // width 100
  map.InitFromSample(sample);

  // Interior point far from boundaries: owner only.
  ShardMap::Range r = map.HoldersOf(Point{150});
  EXPECT_EQ(r.first, 1);
  EXPECT_EQ(r.last, 1);
  EXPECT_FALSE(map.NearBoundary(Point{150}, 1));

  // Within halo of the 100 boundary: shards 0 and 1.
  r = map.HoldersOf(Point{95});
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.last, 1);
  EXPECT_TRUE(map.NearBoundary(Point{95}, 0));
  r = map.HoldersOf(Point{105});
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.last, 1);
  EXPECT_TRUE(map.NearBoundary(Point{105}, 1));

  // The invariant the halo exists for: every point within halo distance of
  // a point owned by shard s is held by shard s.
  for (double x = -50; x <= 450; x += 0.5) {
    const int owner = map.OwnerOf(Point{x});
    for (double dx = -10; dx <= 10; dx += 0.5) {
      const ShardMap::Range h = map.HoldersOf(Point{x + dx});
      EXPECT_LE(h.first, owner);
      EXPECT_GE(h.last, owner);
    }
  }
}

TEST(ShardMapTest, MinimumSlabWidthBoundsReplication) {
  // The sample spread asks for slabs of width 20, far below the halo; the
  // map must widen them to 2·halo so no point replicates into more than two
  // shards (an unrepresentative warmup sample degrades toward fewer
  // effective shards, never toward all-pairs replication).
  ShardMap map(8, 1, /*halo=*/100.0);
  std::vector<Point> sample = {Point{0}, Point{160}};
  map.InitFromSample(sample);
  EXPECT_DOUBLE_EQ(map.slab_width(), 200.0);
  for (double x = -300; x <= 2000; x += 7) {
    const ShardMap::Range r = map.HoldersOf(Point{x});
    EXPECT_LE(r.last - r.first + 1, 2) << "x=" << x;
    const int owner = map.OwnerOf(Point{x});
    EXPECT_LE(r.first, owner);
    EXPECT_GE(r.last, owner);
  }
}

TEST(ShardMapTest, SingleShardNeverReplicatesOrStitches) {
  ShardMap map(1, 3, 100.0);
  map.InitFromSample({Point{1, 2, 3}, Point{4, 5, 6}});
  const Point p{2, 3, 4};
  EXPECT_EQ(map.OwnerOf(p), 0);
  const ShardMap::Range r = map.HoldersOf(p);
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.last, 0);
  EXPECT_FALSE(map.NearBoundary(p, 0));
}

TEST(ShardMapTest, EmptySampleStillInitializes) {
  ShardMap map(4, 2, 1.0);
  map.InitFromSample({});
  EXPECT_TRUE(map.initialized());
  const Point p{3.5, 0};
  const int owner = map.OwnerOf(p);
  EXPECT_GE(owner, 0);
  EXPECT_LT(owner, 4);
  const ShardMap::Range r = map.HoldersOf(p);
  EXPECT_LE(r.first, owner);
  EXPECT_GE(r.last, owner);
}

TEST(ShardMapTest, EmptySampleStillAppliesTheWidthFloor) {
  // Degenerate initialization (Flush before any insert) must not bypass the
  // 2·halo minimum slab width: otherwise every later point would replicate
  // into all shards.
  ShardMap map(8, 2, /*halo=*/110.0);
  map.InitFromSample({});
  EXPECT_GE(map.slab_width(), 220.0);
  for (double x = -500; x <= 500; x += 11) {
    const ShardMap::Range r = map.HoldersOf(P2(x, 0));
    EXPECT_LE(r.last - r.first + 1, 2) << "x=" << x;
  }
}

TEST(ShardMapTest, SplitSlabShiftsOwnersAndKeepsHaloCoverage) {
  ShardMap map(4, 1, /*halo=*/10.0);
  map.InitFromSample({Point{0}, Point{400}});  // cuts 100, 200, 300

  ASSERT_TRUE(map.CanSplitAt(1, 150.0));
  map.SplitSlab(1, 150.0);
  EXPECT_EQ(map.shards(), 5);
  const std::vector<double> want = {100, 150, 200, 300};
  EXPECT_EQ(map.cuts(), want);

  // The split children partition the old slab; everything above shifted.
  EXPECT_EQ(map.OwnerOf(Point{120}), 1);
  EXPECT_EQ(map.OwnerOf(Point{160}), 2);
  EXPECT_EQ(map.OwnerOf(Point{250}), 3);
  EXPECT_EQ(map.OwnerOf(Point{350}), 4);
  EXPECT_EQ(map.OwnerOf(Point{50}), 0);

  // Halo coverage survives the reshape: every point within halo of an
  // owned point is held by the owner, and contiguity bounds replication.
  for (double x = -50; x <= 450; x += 0.5) {
    const int owner = map.OwnerOf(Point{x});
    for (double dx = -10; dx <= 10; dx += 0.5) {
      const ShardMap::Range h = map.HoldersOf(Point{x + dx});
      EXPECT_LE(h.first, owner);
      EXPECT_GE(h.last, owner);
      EXPECT_LE(h.last - h.first + 1, 2);
    }
  }
}

TEST(ShardMapTest, CanSplitAtEnforcesTheTwoHaloMargins) {
  ShardMap map(4, 1, /*halo=*/10.0);
  map.InitFromSample({Point{0}, Point{400}});  // cuts 100, 200, 300

  // Interior slab [100, 200): both children need >= 2*halo = 20 of width.
  EXPECT_TRUE(map.CanSplitAt(1, 120.0));
  EXPECT_TRUE(map.CanSplitAt(1, 180.0));
  EXPECT_FALSE(map.CanSplitAt(1, 119.0));  // Left child too narrow.
  EXPECT_FALSE(map.CanSplitAt(1, 181.0));  // Right child too narrow.
  EXPECT_FALSE(map.CanSplitAt(1, 90.0));   // Outside the slab entirely.

  // End slabs are unbounded on one side: only the finite edge constrains.
  EXPECT_TRUE(map.CanSplitAt(0, 80.0));
  EXPECT_TRUE(map.CanSplitAt(0, -1000.0));
  EXPECT_FALSE(map.CanSplitAt(0, 81.0));

  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(map.CanSplitAt(0, -inf));
  EXPECT_FALSE(map.CanSplitAt(3, inf));
}

TEST(ShardMapTest, MergeSlabsIsTheInverseOfSplit) {
  ShardMap map(4, 1, /*halo=*/10.0);
  map.InitFromSample({Point{0}, Point{400}});
  const std::vector<double> original = map.cuts();

  map.SplitSlab(2, 250.0);
  EXPECT_EQ(map.shards(), 5);
  map.MergeSlabs(2);
  EXPECT_EQ(map.shards(), 4);
  EXPECT_EQ(map.cuts(), original);

  // Merging the first pair erases the lowest cut; owners shift down.
  map.MergeSlabs(0);
  EXPECT_EQ(map.shards(), 3);
  EXPECT_EQ(map.OwnerOf(Point{50}), 0);
  EXPECT_EQ(map.OwnerOf(Point{150}), 0);
  EXPECT_EQ(map.OwnerOf(Point{250}), 1);
  EXPECT_EQ(map.OwnerOf(Point{350}), 2);
}

// ---------------------------------------------------------------------------
// BoundaryStitcher

using LabelKey = BoundaryStitcher::LabelKey;

TEST(BoundaryStitcherTest, EdgesRequireCrossShardAndProximity) {
  BoundaryStitcher stitch(2, /*eps=*/10.0);
  stitch.AddCore(0, 1, P2(0, 0));
  stitch.AddCore(0, 2, P2(5, 0));    // Same shard: no edge.
  stitch.AddCore(1, 3, P2(8, 0));    // Cross shard, within 10: edge to 1 & 2.
  stitch.AddCore(1, 4, P2(100, 0));  // Too far: no edge.
  EXPECT_EQ(stitch.num_points(), 4);
  EXPECT_EQ(stitch.num_edges(), 2);
  EXPECT_EQ(stitch.boundary_count(0), 2);
  EXPECT_EQ(stitch.boundary_count(1), 2);

  stitch.RemoveCore(3);
  EXPECT_EQ(stitch.num_edges(), 0);
  EXPECT_EQ(stitch.num_points(), 3);
  EXPECT_FALSE(stitch.Contains(3));

  // Re-adding rediscovers the edges symmetrically.
  stitch.AddCore(1, 3, P2(8, 0));
  EXPECT_EQ(stitch.num_edges(), 2);
}

TEST(BoundaryStitcherTest, RebuildUnionsAcrossEdgesAndSamePoint) {
  BoundaryStitcher stitch(2, 10.0);
  stitch.AddCore(0, 1, P2(0, 0));
  stitch.AddCore(1, 2, P2(6, 0));   // Edge 1-2 across shards 0/1.
  stitch.AddCore(2, 3, P2(50, 0));  // Isolated in shard 2.

  stitch.Rebuild([](PointId gid, std::vector<LabelKey>* out) {
    // Owner labels 10*gid; point 1 is additionally locally core in shard 1
    // under that shard's label 77 (the same-point rule must merge it).
    if (gid == 1) {
      out->push_back({0, 10});
      out->push_back({1, 77});
    } else if (gid == 2) {
      out->push_back({1, 20});
    } else {
      out->push_back({2, 30});
    }
  });

  const ClusterLabel a = stitch.Resolve(0, 10);
  EXPECT_EQ(a.shard, ClusterLabel::kStitchedShard);
  // Edge rule: shard 0's component 10 and shard 1's component 20 merge.
  EXPECT_EQ(stitch.Resolve(1, 20), a);
  // Same-point rule: shard 1's component 77 contains point 1 too.
  EXPECT_EQ(stitch.Resolve(1, 77), a);
  // Shard 2's component is interned but alone.
  const ClusterLabel c = stitch.Resolve(2, 30);
  EXPECT_NE(c, a);
  // Labels never seen by the stitch resolve to themselves.
  const ClusterLabel raw = stitch.Resolve(3, 99);
  EXPECT_EQ(raw.shard, 3);
  EXPECT_EQ(raw.id, 99u);
  EXPECT_NE(raw, a);
  EXPECT_NE(raw, c);
}

TEST(BoundaryStitcherTest, RebuildTracksCurrentEdgesOnly) {
  BoundaryStitcher stitch(2, 10.0);
  stitch.AddCore(0, 1, P2(0, 0));
  stitch.AddCore(1, 2, P2(6, 0));
  auto labels = [](PointId gid, std::vector<LabelKey>* out) {
    out->push_back({gid == 1 ? 0 : 1, static_cast<uint64_t>(gid * 10)});
  };
  stitch.Rebuild(labels);
  EXPECT_EQ(stitch.Resolve(0, 10), stitch.Resolve(1, 20));

  stitch.RemoveCore(2);
  stitch.Rebuild([](PointId, std::vector<LabelKey>* out) {
    out->push_back({0, 10});
  });
  // The old union is gone: shard 1's label is raw again.
  EXPECT_EQ(stitch.Resolve(1, 20).shard, 1);
}

}  // namespace
}  // namespace ddc
