#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fully_dynamic_clusterer.h"
#include "engine/sharded_clusterer.h"
#include "scenario/scenario.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace ddc {
namespace {

ShardedClusterer::Options SmallOptions(int shards) {
  ShardedClusterer::Options options;
  options.shards = shards;
  options.threads = shards;
  options.batch = 16;
  options.warmup = 64;
  return options;
}

/// shards=1 must be the unsharded engine verbatim: same op stream, no
/// ghosts, no stitching — identical structures make identical don't-care
/// decisions, so Query results match exactly (not just up to the sandwich).
/// This is acceptance criterion #3 of the engine.
TEST(ShardedClustererTest, SingleShardIsVerbatimDoubleApprox) {
  const Workload w =
      BuildScenarioWorkload("paper-mixed:n=800,dim=2,extent=2500,qevery=0",
                            17);
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5,
                            .rho = 0.001};

  FullyDynamicClusterer plain(params);
  ShardedClusterer sharded(params, SmallOptions(1));
  std::vector<PointId> plain_ids(w.points.size(), kInvalidPoint);
  std::vector<PointId> sharded_ids(w.points.size(), kInvalidPoint);

  int64_t updates = 0;
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    ApplyOp(plain, w, op, plain_ids);
    ApplyOp(sharded, w, op, sharded_ids);
    if (++updates % 100 != 0 && updates != w.num_updates) continue;

    const std::vector<PointId> alive = AliveInsertionIndices(plain_ids);
    std::vector<PointId> plain_q, sharded_q;
    for (const PointId k : alive) {
      plain_q.push_back(plain_ids[k]);
      sharded_q.push_back(sharded_ids[k]);
    }
    const CGroupByResult a =
        RemapToInsertionIndex(plain.Query(plain_q), plain_ids);
    const CGroupByResult b =
        RemapToInsertionIndex(sharded.Query(sharded_q), sharded_ids);
    ASSERT_EQ(a, b) << "diverged at update " << updates;
  }
  EXPECT_EQ(sharded.size(), plain.size());
}

/// A core chain laid across every slab boundary: the cross-shard stitch must
/// report one cluster end to end, through ClusterIdOf and SameCluster.
TEST(ShardedClustererTest, StitchConnectsChainAcrossAllBoundaries) {
  const DbscanParams params{.dim = 2, .eps = 6.0, .min_pts = 2, .rho = 0.001};
  ShardedClusterer engine(params, SmallOptions(4));

  // x = 0, 5, ..., 40: adjacent points within eps, so the whole chain is
  // one cluster. The slab partition [0, 40] / 4 puts boundaries at 10, 20
  // and 30, each crossed by chain links.
  std::vector<PointId> ids;
  for (int i = 0; i <= 8; ++i) {
    ids.push_back(engine.Insert(Point{5.0 * i, 0.0}));
  }
  engine.Flush();
  ASSERT_TRUE(engine.shard_map().initialized());
  EXPECT_EQ(engine.shard_map().shards(), 4);

  const ClusterLabel head = engine.ClusterIdOf(ids.front());
  ASSERT_TRUE(head.valid());
  for (const PointId id : ids) {
    EXPECT_EQ(engine.ClusterIdOf(id), head);
    EXPECT_TRUE(engine.SameCluster(ids.front(), id));
  }
  EXPECT_GT(engine.num_boundary_points(), 0);
  EXPECT_GT(engine.num_boundary_edges(), 0);

  const CGroupByResult all = engine.QueryAll();
  ASSERT_EQ(all.groups.size(), 1u);
  EXPECT_EQ(all.groups[0].size(), ids.size());
  EXPECT_TRUE(all.noise.empty());

  // A far-away singleton (inserted after the partition is fixed) is noise.
  const PointId lonely = engine.Insert(Point{1000.0, 1000.0});
  EXPECT_EQ(engine.ClusterIdOf(lonely), kNoCluster);
  EXPECT_FALSE(engine.SameCluster(lonely, ids.front()));
  EXPECT_EQ(engine.size(), static_cast<int64_t>(ids.size()) + 1);

  // Splitting the chain at a boundary splits the stitched cluster.
  engine.Delete(ids[4]);  // x = 20, on a slab edge.
  EXPECT_FALSE(engine.SameCluster(ids.front(), ids.back()));
  EXPECT_TRUE(engine.SameCluster(ids[0], ids[3]));
  EXPECT_TRUE(engine.SameCluster(ids[5], ids[8]));
  EXPECT_EQ(engine.ClusterIdOf(lonely), kNoCluster);
}

TEST(ShardedClustererTest, DeletesAndAlivePointsStayConsistent) {
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5,
                            .rho = 0.001};
  const Workload w = BuildScenarioWorkload(
      "hotspot:n=500,clusters=3,cold=3,band=0.2,dim=2,extent=2500,qevery=0",
      23);
  ShardedClusterer engine(params, SmallOptions(4));
  std::vector<PointId> ids(w.points.size(), kInvalidPoint);
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    ApplyOp(engine, w, op, ids);
  }
  engine.Flush();
  EXPECT_EQ(engine.size(), w.num_inserts - w.num_deletes);
  EXPECT_EQ(static_cast<int64_t>(engine.AlivePoints().size()), engine.size());
  EXPECT_EQ(static_cast<int64_t>(AliveInsertionIndices(ids).size()),
            engine.size());
}

/// Telemetry invariants, and the point of the hotspot scenario: the slab
/// holding the hot band owns the bulk of the stream. Occupancy now lands in
/// the process metrics registry as engine.shard.NN.* gauges.
TEST(ShardedClustererTest, TelemetryExposesHotspotImbalance) {
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5,
                            .rho = 0.001};
  const Workload w = BuildScenarioWorkload(
      "hotspot:n=600,hot=0.9,band=0.1,clusters=3,cold=3,dim=2,extent=2500,"
      "qevery=0",
      29);
  ShardedClusterer engine(params, SmallOptions(4));
  std::vector<PointId> ids(w.points.size(), kInvalidPoint);
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    ApplyOp(engine, w, op, ids);
  }

  engine.PublishShardMetrics();
  const MetricsRegistry& registry = MetricsRegistry::Instance();
  ASSERT_EQ(registry.ValueOf("engine.shards", -1), 4);
  int64_t owned = 0, ops = 0, max_owned = 0;
  for (int s = 0; s < 4; ++s) {
    const int64_t shard_owned =
        registry.ValueOf(ShardedClusterer::ShardMetricName(s, "owned"), -1);
    EXPECT_GE(registry.ValueOf(
                  ShardedClusterer::ShardMetricName(s, "ghosts"), -1),
              0);
    EXPECT_GE(registry.ValueOf(ShardedClusterer::ShardMetricName(s, "core"),
                               -1),
              0);
    owned += shard_owned;
    ops += registry.ValueOf(
        ShardedClusterer::ShardMetricName(s, "ops_applied"), -1);
    max_owned = std::max(max_owned, shard_owned);
  }
  // Owned replicas partition the alive set; ops include ghost replication.
  EXPECT_EQ(owned, engine.size());
  EXPECT_GE(ops, w.num_updates);
  // 90% of inserts land in a 10%-wide band: the hot slab dominates.
  EXPECT_GT(max_owned, engine.size() / 2);
}

/// Batched ingest must survive interleaved flushes at every shard count
/// (covers publish/drain paths at batch boundaries and mid-batch).
TEST(ShardedClustererTest, InterleavedFlushesMatchOracleAtEveryShardCount) {
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5, .rho = 0};
  const Workload w = BuildScenarioWorkload(
      "paper-mixed:n=300,dim=2,extent=2500,qevery=0", 31);
  for (const int shards : {2, 8}) {
    SCOPED_TRACE(shards);
    ShardedClusterer engine(params, SmallOptions(shards));
    std::vector<PointId> ids(w.points.size(), kInvalidPoint);
    int64_t updates = 0;
    for (const Operation& op : w.ops) {
      if (op.type == Operation::Type::kQuery) continue;
      ApplyOp(engine, w, op, ids);
      if (++updates % 37 == 0) engine.Flush();
      if (updates % 75 != 0 && updates != w.num_updates) continue;
      // rho == 0: the sharded result must equal exact DBSCAN verbatim.
      const CGroupByResult reported =
          RemapToInsertionIndex(engine.QueryAll(), ids);
      const CGroupByResult oracle = OracleOverAlive(w.points, ids, params);
      ASSERT_EQ(reported, oracle) << "at update " << updates;
    }
  }
}

}  // namespace
}  // namespace ddc
