#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "connectivity/dynamic_connectivity.h"
#include "connectivity/hdt.h"
#include "unionfind/union_find.h"

namespace ddc {
namespace {

class ConnectivityTest : public ::testing::TestWithParam<ConnectivityKind> {
 protected:
  std::unique_ptr<DynamicConnectivity> Make() {
    return MakeConnectivity(GetParam());
  }
};

TEST_P(ConnectivityTest, EmptyGraph) {
  auto c = Make();
  c->EnsureVertices(3);
  EXPECT_TRUE(c->Connected(1, 1));
  EXPECT_FALSE(c->Connected(0, 2));
  EXPECT_NE(c->ComponentId(0), c->ComponentId(2));
}

TEST_P(ConnectivityTest, TriangleSurvivesOneRemoval) {
  auto c = Make();
  c->EnsureVertices(3);
  c->AddEdge(0, 1);
  c->AddEdge(1, 2);
  c->AddEdge(2, 0);
  EXPECT_TRUE(c->Connected(0, 2));
  // Removing any one edge of a cycle keeps the component intact.
  c->RemoveEdge(0, 1);
  EXPECT_TRUE(c->Connected(0, 1));
  EXPECT_EQ(c->ComponentId(0), c->ComponentId(1));
  c->RemoveEdge(1, 2);
  EXPECT_FALSE(c->Connected(1, 0));
  EXPECT_TRUE(c->Connected(0, 2));
}

TEST_P(ConnectivityTest, BridgeSplit) {
  // Two triangles joined by a bridge; deleting the bridge splits exactly
  // along it.
  auto c = Make();
  c->EnsureVertices(6);
  c->AddEdge(0, 1);
  c->AddEdge(1, 2);
  c->AddEdge(2, 0);
  c->AddEdge(3, 4);
  c->AddEdge(4, 5);
  c->AddEdge(5, 3);
  c->AddEdge(2, 3);  // Bridge.
  EXPECT_TRUE(c->Connected(0, 5));
  c->RemoveEdge(2, 3);
  EXPECT_FALSE(c->Connected(0, 5));
  EXPECT_TRUE(c->Connected(0, 2));
  EXPECT_TRUE(c->Connected(3, 5));
  EXPECT_NE(c->ComponentId(0), c->ComponentId(3));
}

TEST_P(ConnectivityTest, ComponentIdsPartitionCorrectly) {
  auto c = Make();
  c->EnsureVertices(8);
  c->AddEdge(0, 1);
  c->AddEdge(2, 3);
  c->AddEdge(4, 5);
  c->AddEdge(0, 2);
  // Components: {0,1,2,3}, {4,5}, {6}, {7}.
  std::map<uint64_t, std::set<int>> by_id;
  for (int v = 0; v < 8; ++v) by_id[c->ComponentId(v)].insert(v);
  ASSERT_EQ(by_id.size(), 4u);
  std::set<std::set<int>> groups;
  for (auto& [id, s] : by_id) groups.insert(s);
  EXPECT_TRUE(groups.count({0, 1, 2, 3}));
  EXPECT_TRUE(groups.count({4, 5}));
  EXPECT_TRUE(groups.count({6}));
  EXPECT_TRUE(groups.count({7}));
}

TEST_P(ConnectivityTest, GrowUniverseOnTheFly) {
  auto c = Make();
  c->EnsureVertices(2);
  c->AddEdge(0, 1);
  c->EnsureVertices(5);
  c->AddEdge(3, 4);
  EXPECT_TRUE(c->Connected(3, 4));
  EXPECT_FALSE(c->Connected(0, 4));
  EXPECT_EQ(c->num_vertices(), 5);
}

// Randomized insert/delete fuzz against union-find recomputation. This is
// the main correctness driver for the HDT level hierarchy (replacement
// search, edge promotion) and for the BFS relabeling.
TEST_P(ConnectivityTest, FuzzAgainstRecomputation) {
  const int n = 50;
  Rng rng(555 + static_cast<int>(GetParam()));
  auto c = Make();
  c->EnsureVertices(n);
  std::set<std::pair<int, int>> edges;

  auto oracle = [&]() {
    UnionFind uf(n);
    for (const auto& [a, b] : edges) uf.Union(a, b);
    return uf;
  };

  for (int step = 0; step < 4000; ++step) {
    const int u = static_cast<int>(rng.NextBelow(n));
    const int v = static_cast<int>(rng.NextBelow(n));
    if (u == v) continue;
    const auto e = std::minmax(u, v);
    const std::pair<int, int> key{e.first, e.second};
    // Dense phases early, sparse phases late, to exercise both split-heavy
    // and merge-heavy regimes.
    const double p_insert = step < 2000 ? 0.65 : 0.35;
    if (edges.count(key) == 0 && rng.NextBernoulli(p_insert)) {
      c->AddEdge(u, v);
      edges.insert(key);
    } else if (edges.count(key) == 1) {
      c->RemoveEdge(u, v);
      edges.erase(key);
    }

    if (step % 40 == 0) {
      UnionFind uf = oracle();
      for (int probe = 0; probe < 40; ++probe) {
        const int a = static_cast<int>(rng.NextBelow(n));
        const int b = static_cast<int>(rng.NextBelow(n));
        ASSERT_EQ(c->Connected(a, b), uf.Connected(a, b))
            << "step " << step << " pair (" << a << "," << b << ")";
        ASSERT_EQ(c->ComponentId(a) == c->ComponentId(b), uf.Connected(a, b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ConnectivityTest,
                         ::testing::Values(ConnectivityKind::kHdt,
                                           ConnectivityKind::kBfs));

TEST(HdtTest, LevelsStayLogarithmic) {
  const int n = 128;
  Rng rng(9);
  HdtConnectivity c;
  c.EnsureVertices(n);
  std::set<std::pair<int, int>> edges;
  for (int step = 0; step < 20000; ++step) {
    const int u = static_cast<int>(rng.NextBelow(n));
    const int v = static_cast<int>(rng.NextBelow(n));
    if (u == v) continue;
    const auto e = std::minmax(u, v);
    const std::pair<int, int> key{e.first, e.second};
    if (edges.count(key) == 0 && rng.NextBernoulli(0.5)) {
      c.AddEdge(u, v);
      edges.insert(key);
    } else if (edges.count(key) == 1) {
      c.RemoveEdge(u, v);
      edges.erase(key);
    }
  }
  // The HDT invariant bounds levels by log2(n) = 7.
  EXPECT_LE(c.max_level(), 8);
  EXPECT_EQ(c.num_edges(), static_cast<int64_t>(edges.size()));
}

}  // namespace
}  // namespace ddc
