#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "telemetry/histogram.h"
#include "telemetry/report.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace ddc {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("burst");
  w.Key("n").Int(200000);
  w.Key("dup").Double(0.3);
  w.Key("timed_out").Bool(false);
  w.Key("nothing").Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"name":"burst","n":200000,"dup":0.3,"timed_out":false,)"
            R"("nothing":null})");
}

TEST(JsonWriterTest, NestedContainersAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").BeginArray();
  w.Int(1);
  w.BeginArray().EndArray();
  w.BeginObject().Key("b").Int(2).EndObject();
  w.EndArray();
  w.Key("c").BeginObject().EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":[1,[],{"b":2}],"c":{}})");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  JsonWriter w;
  w.String("a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(JsonWriterTest, Utf8PassesThrough) {
  JsonWriter w;
  w.String("ρ-approximate ε=2.5µs");
  EXPECT_EQ(w.str(), "\"ρ-approximate ε=2.5µs\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, DoublesRoundTripExactly) {
  for (const double v : {0.1, 1e-300, 123456.789, -2.5e17,
                         0.30000000000000004}) {
    JsonWriter w;
    w.Double(v);
    const auto parsed = JsonParse(w.str());
    ASSERT_TRUE(parsed.has_value()) << w.str();
    EXPECT_EQ(parsed->number_value, v) << w.str();
  }
}

TEST(JsonParseTest, Scalars) {
  EXPECT_EQ(JsonParse("null")->type, JsonValue::Type::kNull);
  EXPECT_TRUE(JsonParse("true")->bool_value);
  EXPECT_FALSE(JsonParse("false")->bool_value);
  EXPECT_DOUBLE_EQ(JsonParse("-12.5e2")->number_value, -1250);
  EXPECT_EQ(JsonParse("\"hi\"")->string_value, "hi");
  EXPECT_EQ(JsonParse("  42 ")->number_value, 42);
}

TEST(JsonParseTest, StringEscapes) {
  const auto v = JsonParse(R"("a\"b\\c\/d\n\t\u0041\u00e9")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value, "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(JsonParseTest, SurrogatePairDecodesToUtf8) {
  const auto v = JsonParse(R"("\ud83d\ude00")");  // 😀 U+1F600
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string_value, "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, ObjectLookupAndOrder) {
  const auto v = JsonParse(R"({"b":1,"a":[true,{"x":"y"}]})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->members.size(), 2u);
  EXPECT_EQ(v->members[0].first, "b");  // Document order kept.
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 2u);
  EXPECT_EQ(a->items[1].Find("x")->string_value, "y");
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, MalformedInputsAreRejectedWithError) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1.2.3", "[1] x",
        "\"unterminated", "\"\\u12g4\"", "\"\\ud83d\"", "{'a':1}",
        "\"raw\ncontrol\""}) {
    std::string error;
    EXPECT_FALSE(JsonParse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonRoundTripTest, WriterOutputParsesBackIdentically) {
  JsonWriter w;
  w.BeginObject();
  w.Key("weird \"key\"\n").String("value\twith\\escapes");
  w.Key("nums").BeginArray().Int(-7).Double(0.25).EndArray();
  w.EndObject();
  const auto v = JsonParse(w.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->members[0].first, "weird \"key\"\n");
  EXPECT_EQ(v->Find("weird \"key\"\n")->string_value, "value\twith\\escapes");
  EXPECT_DOUBLE_EQ(v->Find("nums")->items[1].number_value, 0.25);
}

TEST(BenchJsonTest, SchemaValidatesAndCarriesLatencies) {
  // An end-to-end BENCH document from synthetic stats must satisfy the same
  // validator ddc_driver runs before writing files.
  Workload w;
  w.dim = 2;
  w.num_updates = 10;
  w.num_inserts = 8;
  w.num_deletes = 2;
  RunStats stats;
  stats.ops_executed = 10;
  stats.updates_executed = 10;
  stats.total_seconds = 0.5;
  stats.checkpoint_ops = {5, 10};
  stats.avg_cost_us = {1.0, 2.0};
  stats.max_upd_cost_us = {3.0, 4.0};
  for (int i = 1; i <= 8; ++i) stats.insert_latency_us.Record(i);
  stats.delete_latency_us.Record(2.0);

  BenchRecord record;
  record.scenario = "burst";
  record.scenario_spec = "burst:n=10";
  record.method = "double-approx";
  record.params = DbscanParams{.dim = 2, .eps = 200, .min_pts = 10,
                               .rho = 0.001};
  record.seed = 7;
  record.peak_rss_bytes = 12345;
  record.workload = &w;
  record.stats = &stats;

  const std::string json = BenchJson(record);
  std::string why;
  EXPECT_TRUE(ValidateBenchJson(json, &why)) << why;

  const auto doc = JsonParse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("schema_version")->number_value, kBenchSchemaVersion);
  EXPECT_EQ(doc->Find("scenario")->string_value, "burst");
  const JsonValue* insert = doc->Find("latency_us")->Find("insert");
  EXPECT_EQ(insert->Find("count")->number_value, 8);
  EXPECT_DOUBLE_EQ(insert->Find("max")->number_value, 8.0);
  // Query histogram is present (schema-stable) even with zero samples.
  EXPECT_EQ(doc->Find("latency_us")->Find("query")->Find("count")
                ->number_value,
            0);
  EXPECT_EQ(doc->Find("checkpoints")->Find("ops")->items.size(), 2u);
  EXPECT_DOUBLE_EQ(doc->Find("run")->Find("throughput_ops_per_sec")
                       ->number_value,
                   20.0);
  // Rendering is pure: the RSS figure is the record's, not a live /proc
  // sample taken inside BenchJson.
  EXPECT_EQ(doc->Find("run")->Find("peak_rss_bytes")->number_value, 12345);
}

TEST(BenchJsonTest, ValidatorRejectsBrokenDocuments) {
  std::string why;
  EXPECT_FALSE(ValidateBenchJson("not json", &why));
  EXPECT_FALSE(ValidateBenchJson("{}", &why));
  EXPECT_FALSE(ValidateBenchJson(R"({"schema_version":99})", &why));
}

}  // namespace
}  // namespace ddc
