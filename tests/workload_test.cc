#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/semi_dynamic_clusterer.h"
#include "workload/runner.h"
#include "workload/seed_spreader.h"
#include "workload/workload.h"

namespace ddc {
namespace {

TEST(SeedSpreaderTest, CountsAndBounds) {
  Rng rng(1);
  SeedSpreaderConfig config;
  config.dim = 3;
  config.num_points = 5000;
  const auto pts = GenerateSeedSpreader(config, rng);
  ASSERT_EQ(pts.size(), 5000u);
  // Noise points are inside the data space; cluster points can stray only a
  // little beyond (spreader stations wander by steps of 50).
  for (const Point& p : pts) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_GT(p[i], -50000.0);
      EXPECT_LT(p[i], 150000.0);
    }
  }
}

TEST(SeedSpreaderTest, ProducesTightClusters) {
  // Most consecutive (pre-shuffle) cluster points are within one ball
  // diameter of each other.
  Rng rng(2);
  SeedSpreaderConfig config;
  config.dim = 2;
  config.num_points = 2000;
  const auto pts = GenerateSeedSpreader(config, rng);
  int close = 0;
  const int64_t cluster_pts = 2000 - 1;  // noise_fraction * 2000 ≈ 0.
  for (int64_t i = 1; i < cluster_pts; ++i) {
    close += Distance(pts[i - 1], pts[i], 2) <= 2 * config.ball_radius;
  }
  EXPECT_GT(close, cluster_pts * 0.8);
}

TEST(SeedSpreaderTest, UniformInBallStaysInBall) {
  Rng rng(3);
  const Point c{10, -5, 3, 1, 0};
  for (int i = 0; i < 500; ++i) {
    const Point p = UniformInBall(c, 7.0, 5, rng);
    EXPECT_LE(Distance(p, c, 5), 7.0 * (1 + 1e-12));
  }
}

TEST(BuildWorkloadTest, SemiDynamicShape) {
  WorkloadConfig config;
  config.num_updates = 2000;
  config.insert_fraction = 1.0;
  config.query_every = 100;
  config.spreader.dim = 2;
  config.spreader.num_points = 0;  // Overridden.
  config.seed = 7;
  const Workload w = BuildWorkload(config);
  EXPECT_EQ(w.num_inserts, 2000);
  EXPECT_EQ(w.num_deletes, 0);
  EXPECT_EQ(w.points.size(), 2000u);
  EXPECT_NEAR(w.num_queries, 19, 2);  // One per 100 updates.
}

TEST(BuildWorkloadTest, PrefixesNeverOverdraw) {
  WorkloadConfig config;
  config.num_updates = 3000;
  config.insert_fraction = 2.0 / 3.0;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.seed = 8;
  const Workload w = BuildWorkload(config);
  EXPECT_EQ(w.num_inserts + w.num_deletes, 3000);

  std::set<int64_t> alive;
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kInsert) {
      EXPECT_TRUE(alive.insert(op.target).second);
    } else if (op.type == Operation::Type::kDelete) {
      // Deleting only alive points — the good-prefix condition.
      ASSERT_EQ(alive.erase(op.target), 1u);
    }
  }
}

TEST(BuildWorkloadTest, QueriesReferenceAlivePoints) {
  WorkloadConfig config;
  config.num_updates = 2000;
  config.insert_fraction = 5.0 / 6.0;
  config.query_every = 50;
  config.spreader.dim = 2;
  config.seed = 9;
  const Workload w = BuildWorkload(config);
  EXPECT_GT(w.num_queries, 0);

  std::set<int64_t> alive;
  for (const Operation& op : w.ops) {
    switch (op.type) {
      case Operation::Type::kInsert:
        alive.insert(op.target);
        break;
      case Operation::Type::kDelete:
        alive.erase(op.target);
        break;
      case Operation::Type::kQuery:
        ASSERT_GE(op.query.size(), 2u);
        ASSERT_LE(op.query.size(), 100u);
        for (const int64_t idx : op.query) {
          ASSERT_TRUE(alive.count(idx)) << "query references dead point";
        }
        // No duplicates.
        ASSERT_EQ(std::set<int64_t>(op.query.begin(), op.query.end()).size(),
                  op.query.size());
        break;
    }
  }
}

TEST(BuildWorkloadTest, DeterministicGivenSeed) {
  WorkloadConfig config;
  config.num_updates = 500;
  config.insert_fraction = 0.8;
  config.spreader.dim = 2;
  config.seed = 11;
  const Workload a = BuildWorkload(config);
  const Workload b = BuildWorkload(config);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.ops[i].type), static_cast<int>(b.ops[i].type));
    EXPECT_EQ(a.ops[i].target, b.ops[i].target);
  }
}

TEST(RunnerTest, ExecutesFullWorkload) {
  WorkloadConfig config;
  config.num_updates = 1500;
  config.insert_fraction = 5.0 / 6.0;
  config.query_every = 100;
  config.spreader.dim = 2;
  config.spreader.extent = 2000.0;  // Dense enough for clusters to form.
  config.seed = 12;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 2, .eps = 100.0, .min_pts = 10, .rho = 0.001};
  FullyDynamicClusterer clusterer(params);
  const RunStats stats = RunWorkload(clusterer, w, RunOptions{});

  EXPECT_EQ(stats.ops_executed, static_cast<int64_t>(w.ops.size()));
  EXPECT_EQ(stats.updates_executed, 1500);
  EXPECT_FALSE(stats.timed_out);
  EXPECT_GT(stats.avg_workload_cost_us, 0);
  EXPECT_GE(stats.max_update_cost_us, stats.avg_update_cost_us);
  EXPECT_FALSE(stats.checkpoint_ops.empty());
  EXPECT_EQ(stats.checkpoint_ops.back(), stats.ops_executed);
  // The clusterer ends with exactly the alive points.
  EXPECT_EQ(clusterer.size(), w.num_inserts - w.num_deletes);
}

TEST(RunnerTest, PopulatesPerOpLatencyHistograms) {
  WorkloadConfig config;
  config.num_updates = 1200;
  config.insert_fraction = 5.0 / 6.0;
  config.query_every = 100;
  config.spreader.dim = 2;
  config.spreader.extent = 2000.0;
  config.seed = 14;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 2, .eps = 100.0, .min_pts = 10, .rho = 0.001};
  FullyDynamicClusterer clusterer(params);
  const RunStats stats = RunWorkload(clusterer, w, RunOptions{});

  // Histogram counts tie out exactly with the executed op counts.
  EXPECT_EQ(stats.insert_latency_us.count(), w.num_inserts);
  EXPECT_EQ(stats.delete_latency_us.count(), w.num_deletes);
  EXPECT_EQ(stats.query_latency_us.count(), stats.queries_executed);
  EXPECT_EQ(stats.insert_latency_us.count() +
                stats.delete_latency_us.count(),
            stats.updates_executed);
  // And with the aggregate timings: the max over both update histograms is
  // the max update cost, the query histogram mean is the query average.
  EXPECT_DOUBLE_EQ(std::max(stats.insert_latency_us.max(),
                            stats.delete_latency_us.max()),
                   stats.max_update_cost_us);
  EXPECT_NEAR(stats.query_latency_us.mean(), stats.avg_query_cost_us, 1e-9);
  EXPECT_GT(stats.insert_latency_us.Quantile(0.5), 0);
  EXPECT_LE(stats.insert_latency_us.Quantile(0.5),
            stats.insert_latency_us.Quantile(0.999));
}

TEST(RunnerTest, TimeBudgetAborts) {
  WorkloadConfig config;
  config.num_updates = 200000;
  config.insert_fraction = 1.0;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.seed = 13;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 2, .eps = 100.0, .min_pts = 10, .rho = 0.001};
  SemiDynamicClusterer clusterer(params);
  RunOptions options;
  options.time_budget_seconds = 0.05;
  const RunStats stats = RunWorkload(clusterer, w, options);
  EXPECT_TRUE(stats.timed_out);
  EXPECT_LT(stats.ops_executed, static_cast<int64_t>(w.ops.size()));

  // A truncated run still ends with a terminal checkpoint at ops_executed,
  // so the series covers exactly the executed prefix.
  ASSERT_FALSE(stats.checkpoint_ops.empty());
  EXPECT_EQ(stats.checkpoint_ops.back(), stats.ops_executed);
  EXPECT_EQ(stats.avg_cost_us.size(), stats.checkpoint_ops.size());
  EXPECT_EQ(stats.max_upd_cost_us.size(), stats.checkpoint_ops.size());
  EXPECT_NEAR(stats.avg_cost_us.back(), stats.avg_workload_cost_us, 1e-9);
}

}  // namespace
}  // namespace ddc
