#include "common/flat_hash.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace ddc {
namespace {

TEST(FlatHashMapTest, EmptyMap) {
  FlatHashMap<int, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42), nullptr);
  EXPECT_FALSE(m.Contains(42));
  EXPECT_FALSE(m.Erase(42));
  EXPECT_EQ(m.begin(), m.end());
  int visits = 0;
  m.ForEach([&](int, int) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<int, std::string> m;
  auto [v, inserted] = m.Emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, "one");
  // Emplace on an existing key leaves the stored value untouched.
  auto [v2, inserted2] = m.Emplace(1, "uno");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, "one");
  m[2] = "two";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.Find(1), "one");
  EXPECT_EQ(*m.Find(2), "two");
  EXPECT_EQ(m.Find(3), nullptr);

  EXPECT_TRUE(m.Erase(1));
  EXPECT_FALSE(m.Erase(1));
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(2), "two");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, OperatorBracketDefaultConstructs) {
  FlatHashMap<int, int> m;
  EXPECT_EQ(m[7], 0);
  m[7] += 5;
  EXPECT_EQ(m[7], 5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, GrowthRehashPreservesEntries) {
  FlatHashMap<int, int> m;
  const int n = 10000;
  for (int i = 0; i < n; ++i) m[i] = i * i;
  EXPECT_EQ(m.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i * i);
  }
  EXPECT_EQ(m.Find(n), nullptr);
}

TEST(FlatHashMapTest, ReserveAvoidsGrowth) {
  FlatHashMap<int, int> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  EXPECT_GE(cap, 1000u);
  for (int i = 0; i < 1000; ++i) m[i] = i;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatHashMapTest, ClearResets) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i;
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(5), nullptr);
  m[5] = 50;
  EXPECT_EQ(*m.Find(5), 50);
}

/// All keys land on the same home slot: probing, erase and lookup must
/// handle maximal clustering (and, with home slot == capacity - 1, the
/// wraparound of every probe chain across the end of the table).
struct CollidingHash {
  size_t operator()(int) const { return static_cast<size_t>(-1); }
};

TEST(FlatHashMapTest, CollisionChainsAndWraparound) {
  FlatHashMap<int, int, CollidingHash> m;
  for (int i = 0; i < 20; ++i) m[i] = 100 + i;
  EXPECT_EQ(m.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(*m.Find(i), 100 + i);
  EXPECT_EQ(m.Find(99), nullptr);

  // Erase from the middle of the chain; the backward shift must keep every
  // remaining key reachable.
  for (int i = 0; i < 20; i += 2) EXPECT_TRUE(m.Erase(i));
  EXPECT_EQ(m.size(), 10u);
  for (int i = 0; i < 20; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(m.Find(i), nullptr) << i;
    } else {
      ASSERT_NE(m.Find(i), nullptr) << i;
      EXPECT_EQ(*m.Find(i), 100 + i);
    }
  }
  // Head-of-chain and tail-of-chain erases.
  EXPECT_TRUE(m.Erase(1));
  EXPECT_TRUE(m.Erase(19));
  for (int i = 3; i < 19; i += 2) EXPECT_EQ(*m.Find(i), 100 + i);
}

TEST(FlatHashMapTest, EraseDuringGrowthChurn) {
  // Interleaves erases with the inserts that trigger growth, so rehashes
  // run on tables whose chains have been compacted by backward shifts.
  FlatHashMap<int, int> m;
  std::unordered_map<int, int> ref;
  for (int i = 0; i < 5000; ++i) {
    m[i] = i;
    ref[i] = i;
    if (i % 3 == 0) {
      const int victim = i / 2;
      EXPECT_EQ(m.Erase(victim), ref.erase(victim) == 1) << victim;
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    EXPECT_EQ(*m.Find(k), v);
  }
}

TEST(FlatHashMapTest, ForEachVisitsEveryEntryOnce) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 257; ++i) m[i] = -i;
  std::map<int, int> seen;
  m.ForEach([&](const int& k, int& v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate visit of " << k;
  });
  EXPECT_EQ(seen.size(), 257u);
  for (const auto& [k, v] : seen) EXPECT_EQ(v, -k);
}

TEST(FlatHashMapTest, ForEachCanMutateValues) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 64; ++i) m[i] = i;
  m.ForEach([](const int&, int& v) { v *= 2; });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(*m.Find(i), 2 * i);
}

TEST(FlatHashMapTest, IteratorCoversAllEntries) {
  FlatHashMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i + 1;
  std::map<int, int> seen;
  for (const auto& [k, v] : m) {
    EXPECT_TRUE(seen.emplace(k, v).second);
  }
  EXPECT_EQ(seen.size(), 100u);
  for (const auto& [k, v] : seen) EXPECT_EQ(v, k + 1);
}

TEST(FlatHashMapTest, HashedEntryPointsAgreeWithPlainOnes) {
  FlatHashMap<int, int> m;
  const int key = 1234;
  const uint64_t h = m.HashOf(key);
  EXPECT_TRUE(m.EmplaceHashed(h, key, 5).second);
  EXPECT_EQ(m.FindHashed(h, key), m.Find(key));
  EXPECT_EQ(*m.FindHashed(h, key), 5);
  EXPECT_TRUE(m.EraseHashed(h, key));
  EXPECT_EQ(m.Find(key), nullptr);
}

TEST(FlatHashMapTest, MoveOnlyishValuesSurviveRehash) {
  // Vector values exercise the move path of growth and backward shift.
  FlatHashMap<int, std::vector<int>> m;
  for (int i = 0; i < 1000; ++i) m[i] = std::vector<int>(3, i);
  for (int i = 0; i < 1000; i += 2) m.Erase(i);
  for (int i = 1; i < 1000; i += 2) {
    ASSERT_NE(m.Find(i), nullptr);
    EXPECT_EQ((*m.Find(i))[0], i);
    EXPECT_EQ(m.Find(i)->size(), 3u);
  }
}

TEST(FlatHashSetTest, InsertContainsErase) {
  FlatHashSet<int64_t> s;
  EXPECT_TRUE(s.Insert(10));
  EXPECT_FALSE(s.Insert(10));
  EXPECT_TRUE(s.Insert(20));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_FALSE(s.Contains(30));
  EXPECT_TRUE(s.Erase(10));
  EXPECT_FALSE(s.Erase(10));
  EXPECT_FALSE(s.Contains(10));
  EXPECT_TRUE(s.Contains(20));
}

TEST(FlatHashSetTest, IterationAndForEach) {
  FlatHashSet<int> s;
  for (int i = 0; i < 500; ++i) s.Insert(i * 3);
  std::unordered_set<int> via_foreach;
  s.ForEach([&](const int& k) { EXPECT_TRUE(via_foreach.insert(k).second); });
  std::unordered_set<int> via_iter(s.begin(), s.end());
  EXPECT_EQ(via_foreach.size(), 500u);
  EXPECT_EQ(via_foreach, via_iter);
}

TEST(FlatHashSetTest, WraparoundProbes) {
  FlatHashSet<int, CollidingHash> s;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.Insert(i));
  for (int i = 9; i >= 0; --i) EXPECT_TRUE(s.Contains(i));
  EXPECT_TRUE(s.Erase(0));  // Head of the wrapped chain.
  for (int i = 1; i < 10; ++i) EXPECT_TRUE(s.Contains(i));
}

TEST(FlatHashDifferentialTest, RandomOpsMatchStdUnorderedMap) {
  // Randomized differential run: every operation's result and, at regular
  // intervals, the full table contents must match std::unordered_map.
  Rng rng(20240727);
  FlatHashMap<uint32_t, int> flat;
  std::unordered_map<uint32_t, int> ref;
  for (int step = 0; step < 200000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.NextBelow(2048));
    switch (rng.NextBelow(4)) {
      case 0: {  // Insert-if-absent.
        const auto [it, ref_inserted] = ref.emplace(key, step);
        const auto [v, flat_inserted] = flat.Emplace(key, step);
        ASSERT_EQ(flat_inserted, ref_inserted);
        ASSERT_EQ(*v, it->second);
        break;
      }
      case 1: {  // Overwrite.
        ref[key] = step;
        flat[key] = step;
        break;
      }
      case 2: {  // Erase.
        ASSERT_EQ(flat.Erase(key), ref.erase(key) == 1);
        break;
      }
      case 3: {  // Lookup.
        const auto it = ref.find(key);
        int* v = flat.Find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v != nullptr) ASSERT_EQ(*v, it->second);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
    if (step % 20000 == 0) {
      std::unordered_map<uint32_t, int> snapshot;
      flat.ForEach([&](const uint32_t& k, const int& v) {
        ASSERT_TRUE(snapshot.emplace(k, v).second);
      });
      ASSERT_EQ(snapshot.size(), ref.size());
      for (const auto& [k, v] : ref) {
        const auto it = snapshot.find(k);
        ASSERT_NE(it, snapshot.end()) << k;
        ASSERT_EQ(it->second, v);
      }
    }
  }
}

TEST(FlatHashDifferentialTest, SetMatchesStdUnorderedSet) {
  Rng rng(7);
  FlatHashSet<int> flat;
  std::unordered_set<int> ref;
  for (int step = 0; step < 100000; ++step) {
    const int key = static_cast<int>(rng.NextBelow(1024));
    switch (rng.NextBelow(3)) {
      case 0:
        ASSERT_EQ(flat.Insert(key), ref.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(flat.Erase(key), ref.erase(key) == 1);
        break;
      case 2:
        ASSERT_EQ(flat.Contains(key), ref.count(key) == 1);
        break;
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
}

}  // namespace
}  // namespace ddc
