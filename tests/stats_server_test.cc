#include "telemetry/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "engine/sharded_clusterer.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/watchdog.h"

namespace ddc {
namespace {

// The registry is process-global: tests that poison it (the stall
// injection latches watchdog.stalls forever) run LAST — gtest executes
// same-file tests in declaration order.

/// Raw POSIX one-shot HTTP client: connect, send, read to EOF (the server
/// closes after one response).
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// Structural check of Prometheus text exposition: every line is a #
/// comment or "name[{labels}] value"; histogram buckets are cumulative and
/// consistent with _count.
void ValidatePrometheusText(const std::string& text) {
  int64_t last_bucket = -1;
  std::string bucket_metric;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;

    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no value in: " << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    EXPECT_NE(name.find("ddc_"), std::string::npos) << line;

    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      const std::string base = name.substr(0, brace);
      ASSERT_NE(base.find("_bucket"), std::string::npos) << line;
      const int64_t cumulative = std::stoll(value);
      if (base == bucket_metric) {
        EXPECT_GE(cumulative, last_bucket) << "non-cumulative: " << line;
      } else {
        bucket_metric = base;
      }
      last_bucket = cumulative;
    }
  }
}

TEST(StatsServerTest, HealthStartsOk) {
  const HealthReport report = EvaluateHealth();
  EXPECT_EQ(report.state, HealthReport::State::kOk);
  EXPECT_TRUE(report.cause.empty());
}

TEST(StatsServerTest, EphemeralPortBindsAndServes) {
  StatsServer server(StatsServer::Options{.port = 0, .build_info = "test"},
                     nullptr);
  ASSERT_TRUE(server.Start()) << server.error();
  EXPECT_GT(server.port(), 0);

  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
}

TEST(StatsServerTest, UnknownPathIs404AndVarzParses) {
  StatsSampler sampler(StatsSampler::Options{.interval_ms = 1000});
  sampler.Start();
  StatsServer server(StatsServer::Options{.port = 0, .build_info = "test"},
                     &sampler);
  ASSERT_TRUE(server.Start()) << server.error();

  EXPECT_NE(HttpGet(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  // Routing without sockets, too.
  EXPECT_NE(server.HandleRequest("POST /metrics HTTP/1.1\r\n\r\n")
                .find("404"),
            std::string::npos);

  const std::string varz = BodyOf(HttpGet(server.port(), "/varz"));
  std::string error;
  const std::optional<JsonValue> doc = JsonParse(varz, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->type, JsonValue::Type::kObject);
  EXPECT_NE(doc->Find("metrics"), nullptr);
  EXPECT_NE(doc->Find("process"), nullptr);
  EXPECT_NE(doc->Find("sampler"), nullptr);
}

TEST(StatsServerTest, ScrapeDuringLiveShardedUpdates) {
  const DbscanParams params{.dim = 2, .eps = 50.0, .min_pts = 4,
                            .rho = 0.001};
  ShardedClusterer::Options options;
  options.shards = 4;
  options.threads = 4;
  options.batch = 16;
  options.warmup = 64;

  StatsServer server(StatsServer::Options{.port = 0, .build_info = "test"},
                     nullptr);
  ASSERT_TRUE(server.Start()) << server.error();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    ShardedClusterer engine(params, options);
    std::vector<PointId> ids;
    for (int i = 0; i < 4000; ++i) {
      ids.push_back(engine.Insert(Point{static_cast<double>(i % 200) * 10,
                                        static_cast<double>(i / 200) * 10}));
      if (i % 512 == 0) engine.Flush();
      if (i % 7 == 0) engine.Delete(ids[static_cast<size_t>(i) / 2]);
    }
    engine.Flush();
    done.store(true);
  });

  // Scrape continuously while the engine applies updates: every response
  // must be a complete 200 with structurally valid exposition text.
  int scrapes = 0;
  while (!done.load()) {
    const std::string response = HttpGet(server.port(), "/metrics");
    ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    ValidatePrometheusText(BodyOf(response));
    ++scrapes;
  }
  writer.join();
  EXPECT_GT(scrapes, 0);

  // The shard batches left histogram samples behind; the final scrape
  // must expose them with le-buckets.
  const std::string text = BodyOf(HttpGet(server.port(), "/metrics"));
  EXPECT_NE(text.find("# TYPE ddc_engine_shard_batch_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ddc_engine_shard_batch_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ddc_engine_snapshot_publish_us_count"),
            std::string::npos);
}

// Poisons the registry (watchdog.stalls latches) — keep this test LAST.
TEST(StatsServerTest, HealthzFlipsToStalledUnderInjectedStall) {
  StatsServer server(StatsServer::Options{.port = 0, .build_info = "test"},
                     nullptr);
  ASSERT_TRUE(server.Start()) << server.error();

  WorkerHealth health;
  health.Beat();
  health.queue_depth.store(1);  // Backlog, and no further beats: a stall.
  {
    Watchdog::Options options;
    options.deadline_ms = 50;
    options.poll_ms = 10;
    Watchdog watchdog({&health}, {"injected"}, options, nullptr);

    // The watchdog needs a few polls to notice; wait for the flip.
    HealthReport report;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    do {
      report = EvaluateHealth();
      if (report.state == HealthReport::State::kStalled) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } while (std::chrono::steady_clock::now() < deadline);
    EXPECT_EQ(report.state, HealthReport::State::kStalled);
    EXPECT_NE(report.cause.find("quiet past deadline"), std::string::npos);

    const std::string response = HttpGet(server.port(), "/healthz");
    EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos);
    EXPECT_NE(response.find("\"state\":\"stalled\""), std::string::npos);
  }

  // Watchdog destroyed: nobody is stalled *now*, but the episode counter
  // persists — degraded, not ok.
  const HealthReport after = EvaluateHealth();
  EXPECT_EQ(after.state, HealthReport::State::kDegraded);
  EXPECT_NE(after.cause.find("stall episode"), std::string::npos);
  const std::string response = HttpGet(server.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"state\":\"degraded\""), std::string::npos);
}

}  // namespace
}  // namespace ddc
