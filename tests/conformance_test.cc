#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/clusterer.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/incremental_dbscan.h"
#include "core/semi_dynamic_clusterer.h"
#include "core/static_dbscan.h"
#include "engine/sharded_clusterer.h"
#include "scenario/scenario.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// Cross-cutting conformance harness: every Clusterer implementation ×
/// every FullyDynamicClusterer::Options combination runs the same seeded
/// workloads, and at every checkpoint the reported clustering must satisfy
/// the paper's sandwich guarantee (Theorem 3) against the static exact
/// oracle — refined by exact DBSCAN at ε and refining exact DBSCAN at
/// (1+ρ)ε — with exact equality when rho == 0.

/// One clusterer configuration under test.
struct Combo {
  std::string name;
  bool supports_delete;
  std::function<std::unique_ptr<Clusterer>(const DbscanParams&)> make;
};

/// All configurations valid at the given rho: every SemiDynamicClusterer
/// emptiness kind, every FullyDynamicClusterer options stack (from the
/// shared enumeration in test_util.h), and — since IncDBSCAN maintains exact
/// DBSCAN — the baseline at rho == 0.
std::vector<Combo> AllCombos(double rho) {
  std::vector<Combo> combos;
  for (const auto& [kind, name] : EmptinessKinds(rho)) {
    combos.push_back({std::string("semi/") + name, false,
                      [kind = kind](const DbscanParams& p) {
                        return std::make_unique<SemiDynamicClusterer>(p, kind);
                      }});
  }
  for (const NamedOptions& stack : FullyDynamicOptionStacks(rho)) {
    combos.push_back({"full/" + stack.name, true,
                      [options = stack.options](const DbscanParams& p) {
                        return std::make_unique<FullyDynamicClusterer>(
                            p, options);
                      }});
  }
  if (rho == 0) {
    combos.push_back({"inc", true, [](const DbscanParams& p) {
                        return std::make_unique<IncrementalDbscan>(p);
                      }});
  }
  // The sharded engine at every acceptance shard count. Small batches and a
  // short warmup so the tiny workloads exercise the buffered-prefix replay,
  // steady-state batching, ghost replication and the cross-shard stitch
  // rather than degenerating into one giant batch.
  for (const int shards : {1, 2, 4, 8}) {
    ShardedClusterer::Options options;
    options.shards = shards;
    options.threads = shards;
    options.batch = 16;
    options.warmup = 64;
    combos.push_back({"sharded/s" + std::to_string(shards), true,
                      [options](const DbscanParams& p) {
                        return std::make_unique<ShardedClusterer>(p, options);
                      }});
  }
  // The sharded engine with live rebalancing turned all the way up: a
  // one-epoch trigger streak, no cooldown and a tiny activation floor, so
  // the small conformance workloads cross split and merge epochs and the
  // sandwich is checked on either side of every routing-map swap.
  {
    ShardedClusterer::Options options;
    options.shards = 4;
    options.threads = 4;
    options.batch = 16;
    options.warmup = 64;
    options.rebalance.enabled = true;
    options.rebalance.split_imbalance = 1.3;
    options.rebalance.epochs = 1;
    options.rebalance.cooldown = 0;
    options.rebalance.min_points = 32;
    combos.push_back({"sharded/s4-rebalance", true,
                      [options](const DbscanParams& p) {
                        return std::make_unique<ShardedClusterer>(p, options);
                      }});
  }
  return combos;
}

/// The two oracle clusterings bounding a checkpoint: exact DBSCAN at ε
/// (lower) and at (1+ρ)ε (upper), in insertion-index space.
struct CheckpointOracles {
  CGroupByResult lower;
  CGroupByResult upper;
};

/// Queries `c` over all alive points and checks the sandwich bounds (and
/// exact equality with the ε oracle when rho == 0) in insertion-index space.
void ExpectSandwichHolds(Clusterer& c, const std::vector<PointId>& ids,
                         double rho, const CheckpointOracles& oracles) {
  const std::vector<PointId> alive = AliveInsertionIndices(ids);
  std::vector<PointId> alive_pids;
  alive_pids.reserve(alive.size());
  for (const PointId k : alive) alive_pids.push_back(ids[k]);

  const CGroupByResult reported =
      RemapToInsertionIndex(c.Query(alive_pids), ids);
  std::string why;
  EXPECT_TRUE(CheckSandwich(oracles.lower, reported, oracles.upper, &why))
      << why;
  if (rho == 0) {
    EXPECT_EQ(reported, oracles.lower)
        << "rho == 0 must reproduce exact DBSCAN verbatim";
  }
}

/// Drives every combo through the workload, checkpointing every
/// `check_every` updates and after the final update. The alive set at each
/// checkpoint is combo-independent, so the static oracles are computed once
/// (replaying the ops without a clusterer) and shared across all combos.
void RunConformance(const Workload& w, const DbscanParams& params,
                    int64_t check_every) {
  std::vector<CheckpointOracles> oracles;
  {
    std::vector<PointId> ids(w.points.size(), kInvalidPoint);
    int64_t updates = 0;
    for (const Operation& op : w.ops) {
      if (op.type == Operation::Type::kQuery) continue;
      // The alive/dead pattern is all OracleOverAlive reads, so the
      // insertion index itself stands in for a live PointId.
      ids[op.target] = op.type == Operation::Type::kInsert
                           ? static_cast<PointId>(op.target)
                           : kInvalidPoint;
      ++updates;
      if (updates % check_every == 0 || updates == w.num_updates) {
        CheckpointOracles cp;
        cp.lower = OracleOverAlive(w.points, ids, params);
        if (params.rho == 0) {
          cp.upper = cp.lower;
        } else {
          DbscanParams outer = params;
          outer.eps = params.eps_outer();
          outer.rho = 0;
          cp.upper = OracleOverAlive(w.points, ids, outer);
        }
        oracles.push_back(std::move(cp));
      }
    }
  }

  for (const Combo& combo : AllCombos(params.rho)) {
    if (!combo.supports_delete && w.num_deletes > 0) continue;
    SCOPED_TRACE(combo.name);
    std::unique_ptr<Clusterer> c = combo.make(params);
    std::vector<PointId> ids(w.points.size(), kInvalidPoint);
    int64_t updates = 0;
    size_t checkpoint = 0;
    for (const Operation& op : w.ops) {
      if (op.type == Operation::Type::kQuery) continue;
      ApplyOp(*c, w, op, ids);
      ++updates;
      if (updates % check_every == 0 || updates == w.num_updates) {
        ExpectSandwichHolds(*c, ids, params.rho, oracles[checkpoint++]);
        if (::testing::Test::HasFailure()) {
          return;  // One broken combo is enough signal; stop early.
        }
      }
    }
    EXPECT_EQ(c->size(), w.num_inserts - w.num_deletes);
  }
}

Workload MakeWorkload(double insert_fraction, uint64_t seed) {
  WorkloadConfig config;
  config.num_updates = 360;
  config.insert_fraction = insert_fraction;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.spreader.extent = 2500.0;
  config.seed = seed;
  return BuildWorkload(config);
}

DbscanParams MakeParams(double rho) {
  return DbscanParams{.dim = 2, .eps = 110.0, .min_pts = 5, .rho = rho};
}

class ConformanceTest : public ::testing::TestWithParam<double> {};

TEST_P(ConformanceTest, InsertOnlyWorkload) {
  RunConformance(MakeWorkload(1.0, 7), MakeParams(GetParam()), 120);
}

TEST_P(ConformanceTest, DeleteHeavyWorkload) {
  RunConformance(MakeWorkload(0.55, 8), MakeParams(GetParam()), 120);
}

TEST_P(ConformanceTest, MixedWorkload) {
  RunConformance(MakeWorkload(0.75, 9), MakeParams(GetParam()), 120);
}

/// rho == 0 exercises the exact configurations (plus IncDBSCAN and the
/// exact-equality assertion); the larger rho widens the don't-care band so
/// the sandwich is checked where approximate and exact genuinely diverge.
INSTANTIATE_TEST_SUITE_P(Rho, ConformanceTest,
                         ::testing::Values(0.0, 0.001, 0.1),
                         [](const auto& info) {
                           return info.param == 0.0     ? "Exact"
                                  : info.param == 0.001 ? "TinyRho"
                                                        : "WideRho";
                         });

/// The scenario library runs through the same sandwich harness: every
/// generator, tiny sizes, dim=2 so the MakeParams geometry applies, at the
/// driver's production rho values {0, 0.001}. Correctness is
/// geometry-independent (the oracle sees the same points), so this pins
/// down the update-stream shapes — FIFO expiry, delete waves, bridge
/// oscillation — against every clusterer stack.
struct ScenarioCase {
  const char* label;
  const char* spec;
};

class ScenarioConformanceTest
    : public ::testing::TestWithParam<std::tuple<ScenarioCase, double>> {};

TEST_P(ScenarioConformanceTest, SandwichHoldsOnScenarioWorkload) {
  const auto& [scenario, rho] = GetParam();
  const Workload w = BuildScenarioWorkload(scenario.spec, 21);
  RunConformance(w, MakeParams(rho), 120);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioConformanceTest,
    ::testing::Combine(
        ::testing::Values(
            ScenarioCase{"PaperMixed",
                         "paper-mixed:n=360,dim=2,extent=2500,qevery=0"},
            ScenarioCase{"SlidingWindow",
                         "sliding-window:n=360,window=120,dim=2,extent=2500,"
                         "qevery=0"},
            ScenarioCase{"Burst",
                         "burst:n=360,burst=60,dup=0.4,clusters=4,dim=2,"
                         "extent=2500,qevery=0"},
            ScenarioCase{"Zipf",
                         "zipf:n=360,clusters=6,ins=0.8,dim=2,extent=2500,"
                         "qevery=0"},
            ScenarioCase{"Drift",
                         "drift:n=360,clusters=4,window=120,drift=1.0,dim=2,"
                         "extent=2500,qevery=0"},
            ScenarioCase{"Hotspot",
                         "hotspot:n=360,clusters=3,cold=3,band=0.15,dim=2,"
                         "extent=2500,qevery=0"},
            ScenarioCase{"HotspotMigrate",
                         "hotspot-migrate:n=360,period=90,clusters=3,cold=3,"
                         "band=0.12,dim=2,extent=2500,qevery=0"},
            ScenarioCase{"QueryStorm",
                         "query-storm:n=360,clusters=3,dim=2,extent=2500,"
                         "qevery=0"},
            ScenarioCase{"SplitMerge",
                         "split-merge:n=360,eps=110,blob=40,dim=2,qevery=0"}),
        ::testing::Values(0.0, 0.001)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).label) +
             (std::get<1>(info.param) == 0.0 ? "_Exact" : "_TinyRho");
    });

}  // namespace
}  // namespace ddc
