#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/method_registry.h"
#include "engine/sharded_clusterer.h"

namespace ddc {
namespace {

DbscanParams TestParams() {
  return DbscanParams{.dim = 2, .eps = 100.0, .min_pts = 5, .rho = 0.001};
}

TEST(MethodRegistryTest, EveryInfoIsConsistent) {
  for (const MethodInfo& info : AllMethodInfos()) {
    EXPECT_TRUE(IsMethod(info.name));
    EXPECT_TRUE(ValidateMethodSpec(info.name, nullptr)) << info.name;
    EXPECT_EQ(MethodSupportsDeletes(info.name), info.supports_deletes);
    const DbscanParams effective = EffectiveParams(info.name, TestParams());
    EXPECT_EQ(effective.rho, info.forces_exact ? 0.0 : 0.001) << info.name;
    // MethodHelp names every method and knob (it is the error message).
    EXPECT_NE(MethodHelp().find(info.name), std::string::npos);
    for (const MethodKnob& knob : info.knobs) {
      EXPECT_NE(MethodHelp().find(knob.key), std::string::npos);
    }
  }
  EXPECT_EQ(MethodNames().size(), AllMethodInfos().size());
}

TEST(MethodRegistryTest, SpecGrammarAndKnobValidation) {
  std::string why;
  EXPECT_TRUE(ValidateMethodSpec("sharded-double-approx", &why)) << why;
  EXPECT_TRUE(ValidateMethodSpec(
      "sharded-double-approx:shards=8,threads=4,batch=128,warmup=0", &why))
      << why;

  EXPECT_FALSE(ValidateMethodSpec("no-such-method", &why));
  EXPECT_NE(why.find("unknown method"), std::string::npos);

  EXPECT_FALSE(ValidateMethodSpec("double-approx:shards=4", &why));
  EXPECT_NE(why.find("no knob"), std::string::npos);

  EXPECT_FALSE(ValidateMethodSpec("sharded-double-approx:sharsd=4", &why));
  EXPECT_NE(why.find("no knob 'sharsd'"), std::string::npos);

  EXPECT_FALSE(ValidateMethodSpec("sharded-double-approx:shards=none", &why));
  EXPECT_NE(why.find("not an integer"), std::string::npos);

  EXPECT_FALSE(ValidateMethodSpec("sharded-double-approx:shards=0", &why));
  EXPECT_NE(why.find("out of range"), std::string::npos);
  EXPECT_FALSE(ValidateMethodSpec("sharded-double-approx:shards=65", &why));
  EXPECT_FALSE(ValidateMethodSpec("sharded-double-approx:shards", &why));
  EXPECT_NE(why.find("key=value"), std::string::npos);
  EXPECT_FALSE(ValidateMethodSpec("", &why));
  EXPECT_FALSE(ValidateMethodSpec(":shards=2", &why));
}

TEST(MethodRegistryTest, SpecAwareHelpers) {
  EXPECT_TRUE(IsMethod("sharded-double-approx:shards=2"));
  EXPECT_FALSE(IsMethod("nope:shards=2"));
  EXPECT_TRUE(MethodSupportsDeletes("sharded-double-approx:shards=2"));
  EXPECT_FALSE(MethodSupportsDeletes("semi-approx"));
  // Exact methods force rho to 0, spec suffix or not.
  EXPECT_EQ(EffectiveParams("2d-full-exact", TestParams()).rho, 0);
  EXPECT_EQ(EffectiveParams("double-approx", TestParams()).rho, 0.001);
  EXPECT_EQ(EffectiveParams("sharded-double-approx:shards=2", TestParams())
                .rho,
            0.001);
}

TEST(MethodRegistryTest, MakeMethodBuildsTheShardedEngine) {
  std::unique_ptr<Clusterer> c =
      MakeMethod("sharded-double-approx:shards=2,threads=2,batch=8,warmup=4",
                 TestParams());
  auto* sharded = dynamic_cast<ShardedClusterer*>(c.get());
  ASSERT_NE(sharded, nullptr);
  // Smoke: a dense blob clusters; the engine answers through the interface.
  std::vector<PointId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(c->Insert(Point{static_cast<double>(i), 0.0}));
  }
  const CGroupByResult r = c->Query(ids);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].size(), 10u);
  c->Delete(ids[0]);
  EXPECT_EQ(c->size(), 9);
}

TEST(MethodRegistryDeathTest, UnknownMethodDiesListingTheRegistry) {
  // The abort message must enumerate every registered method, so a typo
  // comes back with the full menu.
  EXPECT_DEATH(MakeMethod("not-a-method", TestParams()),
               "unknown method 'not-a-method'.*registered methods"
               ".*double-approx.*sharded-double-approx");
}

TEST(MethodRegistryDeathTest, UnknownKnobDiesListingTheKnobs) {
  EXPECT_DEATH(MakeMethod("sharded-double-approx:bogus=1", TestParams()),
               "no knob 'bogus'.*shards.*threads.*batch.*warmup");
}

TEST(MethodRegistryDeathTest, OutOfRangeKnobDies) {
  EXPECT_DEATH(MakeMethod("sharded-double-approx:shards=1000", TestParams()),
               "out of range");
}

TEST(MethodRegistryDeathTest, KnobOnKnoblessMethodDies) {
  EXPECT_DEATH(MakeMethod("inc-dbscan:shards=2", TestParams()),
               "no knob 'shards'.*it takes none");
}

}  // namespace
}  // namespace ddc
