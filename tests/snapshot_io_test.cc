#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/io.h"
#include "core/clusterer.h"
#include "core/method_registry.h"
#include "persist/snapshot_io.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ddc_snap_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A clusterer with a realistic mix of blobs, noise, and deletions — dead
/// ids, noise points, and multi-cluster structure all exercised.
std::unique_ptr<Clusterer> BuildClusterer(const std::string& spec,
                                          const DbscanParams& params, int n,
                                          uint64_t seed) {
  std::unique_ptr<Clusterer> c = MakeMethod(spec, params);
  Rng rng(seed);
  const std::vector<Point> pts =
      BlobPoints(rng, n, params.dim, 100.0, 4, 2.5);
  std::vector<PointId> ids;
  for (const Point& p : pts) ids.push_back(c->Insert(p));
  for (size_t i = 0; i < ids.size(); i += 7) c->Delete(ids[i]);
  c->Flush();
  return c;
}

/// Asserts `loaded` answers queries bit-identically to `original` — the
/// full id universe, random subsets, and per-id alive bits.
void ExpectBitIdentical(const ClusterSnapshot& original,
                        const ClusterSnapshot& loaded, PointId max_id,
                        uint64_t seed) {
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.epoch(), original.epoch());
  std::vector<PointId> all;
  for (PointId id = 0; id < max_id; ++id) {
    EXPECT_EQ(loaded.alive(id), original.alive(id)) << "id " << id;
    all.push_back(id);
  }
  // Ids past the end of the dataset must be handled, not trusted.
  all.push_back(max_id + 1000);

  CGroupByResult want = original.Query(all);
  CGroupByResult got = loaded.Query(all);
  want.Canonicalize();
  got.Canonicalize();
  ASSERT_TRUE(want == got) << "full-universe query diverged";

  Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<PointId> subset;
    for (PointId id = 0; id < max_id; ++id) {
      if (rng.NextBernoulli(0.3)) subset.push_back(id);
    }
    want = original.Query(subset);
    got = loaded.Query(subset);
    want.Canonicalize();
    got.Canonicalize();
    ASSERT_TRUE(want == got) << "subset query " << trial << " diverged";
  }
}

TEST(SnapshotIoTest, GridRoundTripIsBitIdentical) {
  DbscanParams params;
  params.dim = 2;
  params.eps = 2.0;
  params.min_pts = 5;
  params.rho = 0.001;
  const int n = 400;
  std::unique_ptr<Clusterer> c = BuildClusterer("double-approx", params, n, 11);
  std::shared_ptr<const ClusterSnapshot> snap = c->Snapshot();

  const std::string path = TempDir("grid") + "/" + SnapshotFileName(123);
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*snap, c->params(), 123, path, &error)) << error;

  SnapshotMeta meta;
  std::shared_ptr<const ClusterSnapshot> loaded =
      LoadSnapshot(path, &meta, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(meta.format_version, kSnapshotFormatVersion);
  EXPECT_EQ(meta.kind, "grid");
  EXPECT_EQ(meta.last_seq, 123u);
  EXPECT_EQ(meta.epoch, snap->epoch());
  ExpectBitIdentical(*snap, *loaded, n, 21);
}

TEST(SnapshotIoTest, ShardedRoundTripAcrossShardCounts) {
  DbscanParams params;
  params.dim = 2;
  params.eps = 2.0;
  params.min_pts = 5;
  params.rho = 0.001;
  const int n = 600;
  for (int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const std::string spec = "sharded-double-approx:shards=" +
                             std::to_string(shards) + ",threads=2";
    std::unique_ptr<Clusterer> c = BuildClusterer(spec, params, n, 13);
    std::shared_ptr<const ClusterSnapshot> snap = c->Snapshot();

    const std::string path =
        TempDir("sharded" + std::to_string(shards)) + "/" + SnapshotFileName(9);
    std::string error;
    ASSERT_TRUE(SaveSnapshot(*snap, c->params(), 9, path, &error)) << error;

    SnapshotMeta meta;
    std::shared_ptr<const ClusterSnapshot> loaded =
        LoadSnapshot(path, &meta, &error);
    ASSERT_NE(loaded, nullptr) << error;
    EXPECT_EQ(meta.kind, "sharded");
    ExpectBitIdentical(*snap, *loaded, n, 31);
  }
}

TEST(SnapshotIoTest, ParamsRoundTripBitExactly) {
  // eps/rho travel through the JSON manifest; awkward doubles must come
  // back bit-for-bit, not via decimal round trip.
  DbscanParams params;
  params.dim = 3;
  params.eps = 0.1;  // Not exactly representable.
  params.min_pts = 4;
  params.rho = 1e-17;
  std::unique_ptr<Clusterer> c = BuildClusterer("double-approx", params, 60, 5);
  const std::string path = TempDir("params") + "/" + SnapshotFileName(1);
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*c->Snapshot(), c->params(), 1, path, &error))
      << error;
  SnapshotMeta meta;
  ASSERT_NE(LoadSnapshot(path, &meta, &error), nullptr) << error;
  EXPECT_EQ(std::bit_cast<uint64_t>(meta.params.eps),
            std::bit_cast<uint64_t>(params.eps));
  EXPECT_EQ(std::bit_cast<uint64_t>(meta.params.rho),
            std::bit_cast<uint64_t>(params.rho));
  EXPECT_EQ(meta.params.dim, 3);
  EXPECT_EQ(meta.params.min_pts, 4);
}

/// Writes a small valid snapshot and returns its path.
std::string WriteValidSnapshot(const std::string& dir, uint64_t last_seq) {
  DbscanParams params;
  params.eps = 2.0;
  params.min_pts = 5;
  params.rho = 0;
  std::unique_ptr<Clusterer> c =
      BuildClusterer("double-approx", params, 80, last_seq);
  const std::string path = dir + "/" + SnapshotFileName(last_seq);
  std::string error;
  EXPECT_TRUE(SaveSnapshot(*c->Snapshot(), c->params(), last_seq, path, &error))
      << error;
  return path;
}

TEST(SnapshotIoTest, BadMagicIsRejectedAtOffsetZero) {
  const std::string dir = TempDir("magic");
  const std::string path = dir + "/" + SnapshotFileName(1);
  ASSERT_TRUE(WriteFile(path, "XXXXXXXXnot a snapshot at all............"));
  std::string error;
  EXPECT_EQ(LoadSnapshot(path, nullptr, &error), nullptr);
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("at offset 0"), std::string::npos) << error;
}

TEST(SnapshotIoTest, TruncatedFileIsRejectedWithOffset) {
  const std::string dir = TempDir("trunc");
  const std::string path = WriteValidSnapshot(dir, 1);
  std::string data, error;
  ASSERT_TRUE(ReadFileToString(path, &data, &error));
  for (size_t keep : {size_t{10}, size_t{40}, data.size() - 5}) {
    std::string cut = data.substr(0, keep);
    ASSERT_TRUE(WriteFile(path, cut, &error));
    std::string why;
    EXPECT_EQ(LoadSnapshot(path, nullptr, &why), nullptr) << "keep " << keep;
    EXPECT_NE(why.find(path), std::string::npos) << why;
    EXPECT_NE(why.find("offset"), std::string::npos) << why;
  }
}

TEST(SnapshotIoTest, FlippedManifestBitIsRejected) {
  const std::string dir = TempDir("manifest");
  const std::string path = WriteValidSnapshot(dir, 1);
  std::string data, error;
  ASSERT_TRUE(ReadFileToString(path, &data, &error));
  data[20] ^= 0x04;  // Inside the JSON manifest.
  ASSERT_TRUE(WriteFile(path, data, &error));
  EXPECT_EQ(LoadSnapshot(path, nullptr, &error), nullptr);
  EXPECT_NE(error.find("corrupt snapshot manifest"), std::string::npos)
      << error;
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(SnapshotIoTest, FlippedSectionBitNamesTheSection) {
  const std::string dir = TempDir("section");
  const std::string path = WriteValidSnapshot(dir, 1);
  std::string data, error;
  ASSERT_TRUE(ReadFileToString(path, &data, &error));
  data[data.size() - 3] ^= 0x40;  // Inside the last binary section.
  ASSERT_TRUE(WriteFile(path, data, &error));
  EXPECT_EQ(LoadSnapshot(path, nullptr, &error), nullptr);
  EXPECT_NE(error.find("section"), std::string::npos) << error;
  EXPECT_NE(error.find("CRC32 check"), std::string::npos) << error;
  EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(SnapshotIoTest, FutureFormatVersionIsRejected) {
  const std::string dir = TempDir("version");
  const std::string path = WriteValidSnapshot(dir, 1);
  std::string data, error;
  ASSERT_TRUE(ReadFileToString(path, &data, &error));
  // Patch the manifest text and re-seal its CRC, so the *only* defect is
  // the version number.
  const std::string needle = "\"format_version\":1";
  const size_t pos = data.find(needle);
  ASSERT_NE(pos, std::string::npos);
  data[pos + needle.size() - 1] = '9';
  const uint32_t manifest_len =
      ReadLe32(reinterpret_cast<const unsigned char*>(data.data()) + 8);
  std::string crc;
  AppendLe32(crc, Crc32(data.data() + 16, static_cast<size_t>(manifest_len)));
  data.replace(12, 4, crc);
  ASSERT_TRUE(WriteFile(path, data, &error));

  EXPECT_EQ(LoadSnapshot(path, nullptr, &error), nullptr);
  EXPECT_NE(error.find("format_version 9"), std::string::npos) << error;
  EXPECT_NE(error.find("this build reads version"), std::string::npos)
      << error;
}

TEST(SnapshotIoDeathTest, CorruptManifestDiesNamingFileAndOffset) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const std::string dir = TempDir("death");
  const std::string path = dir + "/" + SnapshotFileName(1);
  ASSERT_TRUE(WriteFile(path, "DDCSNAP1garbage manifest follows......."));
  EXPECT_DEATH(LoadSnapshotOrDie(path, nullptr), "snap-0000000000000001");
  EXPECT_DEATH(LoadSnapshotOrDie(path, nullptr), "offset");
}

TEST(SnapshotIoTest, ListSnapshotsSortsBySeq) {
  const std::string dir = TempDir("list");
  WriteValidSnapshot(dir, 300);
  WriteValidSnapshot(dir, 5);
  WriteValidSnapshot(dir, 42);
  ASSERT_TRUE(WriteFile(dir + "/not-a-snapshot.txt", "ignored"));
  std::vector<SnapshotFileInfo> infos;
  std::string error;
  ASSERT_TRUE(ListSnapshots(dir, &infos, &error)) << error;
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].last_seq, 5u);
  EXPECT_EQ(infos[1].last_seq, 42u);
  EXPECT_EQ(infos[2].last_seq, 300u);
}

TEST(SnapshotIoTest, NewestValidSnapshotWinsAndCorruptionIsReported) {
  const std::string dir = TempDir("newest");
  WriteValidSnapshot(dir, 10);
  const std::string newest = WriteValidSnapshot(dir, 20);
  // Corrupt the newest: the loader must fall back to seq 10 and say why.
  std::string data, error;
  ASSERT_TRUE(ReadFileToString(newest, &data, &error));
  data[data.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFile(newest, data, &error));

  SnapshotMeta meta;
  std::vector<std::string> notes;
  std::shared_ptr<const ClusterSnapshot> snap =
      LoadNewestValidSnapshot(dir, &meta, &notes);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(meta.last_seq, 10u);
  ASSERT_FALSE(notes.empty());
  bool named = false;
  for (const std::string& note : notes) {
    if (note.find(SnapshotFileName(20)) != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << "notes never name the corrupt snapshot";
}

TEST(SnapshotIoTest, EmptyDirectoryYieldsNoSnapshot) {
  const std::string dir = TempDir("none");
  SnapshotMeta meta;
  std::vector<std::string> notes;
  EXPECT_EQ(LoadNewestValidSnapshot(dir, &meta, &notes), nullptr);
  EXPECT_TRUE(notes.empty());
}

}  // namespace
}  // namespace ddc
