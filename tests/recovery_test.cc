#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/clusterer.h"
#include "core/method_registry.h"
#include "core/static_dbscan.h"
#include "persist/fault_file.h"
#include "persist/recovery.h"
#include "persist/snapshot_io.h"
#include "persist/wal.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

// Recovery torture: randomized crash points, bit flips, and torn tails,
// 114 trials in all. Every trial checks the acknowledgment contract —
// recovery replays some prefix of the applied op stream no shorter than
// what the WAL acknowledged — and that the recovered clusterer answers
// QueryAll bit-identically to an uncrashed reference that applied the same
// prefix. The rho > 0 trials additionally check the recovered clustering
// against the Theorem 3 sandwich oracles.

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ddc_rec_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One planned update. Inserts consume points in insertion order, so the
/// insertion index doubles as the id every clusterer here will assign.
struct PlanOp {
  bool insert = true;
  int target = 0;  // Insertion index: the point to insert / the id to delete.
};

std::vector<PlanOp> MakePlan(Rng& rng, int n) {
  std::vector<PlanOp> plan;
  std::vector<int> alive;
  int inserted = 0;
  for (int i = 0; i < n; ++i) {
    if (alive.size() > 10 && rng.NextBernoulli(0.25)) {
      const size_t j = rng.NextBelow(alive.size());
      plan.push_back({false, alive[j]});
      alive[j] = alive.back();
      alive.pop_back();
    } else {
      plan.push_back({true, inserted});
      alive.push_back(inserted++);
    }
  }
  return plan;
}

struct TrialResult {
  int applied = 0;  // Ops applied to the live clusterer before the crash.
  int acked = 0;    // Ops whose WAL append succeeded (acknowledged).
  bool crashed = false;
  std::vector<WalOp> applied_ops;  // In order, inserts carrying their ids.
};

/// Runs `plan` against a live clusterer, WAL-logging each applied op
/// through a fault-injected factory, until the plan ends or the WAL dies.
TrialResult RunFaultedTrial(const std::string& dir, const std::string& spec,
                            const DbscanParams& params,
                            const std::vector<PlanOp>& plan,
                            const std::vector<Point>& points,
                            const FaultPlan& fault, int64_t segment_bytes,
                            int snapshot_every) {
  TrialResult out;
  RunMeta meta;
  meta.method = spec;
  meta.scenario = "torture";
  meta.seed = 0;
  meta.params = params;
  std::string error;
  EXPECT_TRUE(WriteRunMeta(dir, meta, &error)) << error;

  FaultInjector injector(fault);
  WalWriter::Options wopts;
  wopts.segment_bytes = segment_bytes;
  wopts.factory = injector.WrapFactory(DefaultFileFactory());
  WalWriter wal(dir, wopts);
  EXPECT_TRUE(wal.ok()) << wal.error();

  std::unique_ptr<Clusterer> c = MakeMethod(spec, params);
  for (const PlanOp& op : plan) {
    WalOp logged;
    if (op.insert) {
      logged.type = WalOp::Type::kInsert;
      logged.id = c->Insert(points[op.target]);
      EXPECT_EQ(logged.id, op.target) << "id assignment not monotone";
      logged.dim = params.dim;
      logged.point = points[op.target];
    } else {
      logged.type = WalOp::Type::kDelete;
      logged.id = op.target;
      c->Delete(op.target);
    }
    ++out.applied;
    if (!wal.Append(logged)) {
      out.crashed = true;
      out.applied_ops.push_back(logged);  // Applied but never acknowledged.
      break;
    }
    ++out.acked;
    out.applied_ops.push_back(logged);  // seq assigned by Append.
    if (snapshot_every > 0 && out.acked % snapshot_every == 0) {
      if (!wal.Sync()) {  // A snapshot must never outrun the durable log.
        out.crashed = true;
        break;
      }
      const uint64_t seq = wal.next_seq() - 1;
      std::string serr;
      EXPECT_TRUE(SaveSnapshot(*c->Snapshot(), params, seq,
                               dir + "/" + SnapshotFileName(seq), &serr))
          << serr;
    }
  }
  wal.Close();
  return out;
}

/// Recovers `dir` and checks every invariant of the acknowledgment
/// contract against the trial's ground truth. `min_replayed` is the floor
/// on the replayed prefix: t.acked after a crash (a crash cannot lose
/// acknowledged ops), but lower when the test corrupted already-durable
/// bytes post-hoc (media damage legitimately shortens the final segment).
void VerifyRecovered(const std::string& dir, const std::string& spec,
                     const DbscanParams& params, const TrialResult& t,
                     const std::vector<Point>& points, bool check_sandwich,
                     int min_replayed = -1) {
  RecoveryResult r;
  RunMeta meta;
  std::string error;
  ASSERT_TRUE(RecoverFromDir(dir, &r, &meta, &error)) << error;

  const int k = static_cast<int>(r.ops.size());
  ASSERT_GE(k, min_replayed >= 0 ? min_replayed : t.acked)
      << "recovery lost acknowledged ops";
  ASSERT_LE(k, t.applied) << "recovery invented ops";
  for (int i = 0; i < k; ++i) {
    const WalOp& got = r.ops[i];
    const WalOp& want = t.applied_ops[i];
    ASSERT_EQ(got.seq, static_cast<uint64_t>(i) + 1);
    ASSERT_EQ(got.type, want.type) << "op " << i;
    ASSERT_EQ(got.id, want.id) << "op " << i;
    if (want.type == WalOp::Type::kInsert) {
      ASSERT_EQ(got.dim, want.dim) << "op " << i;
      ASSERT_TRUE(got.point == want.point) << "op " << i;
    }
  }

  // The uncrashed reference: a fresh clusterer fed the same k-op prefix.
  std::unique_ptr<Clusterer> ref = MakeMethod(spec, params);
  for (int i = 0; i < k; ++i) {
    const WalOp& op = t.applied_ops[i];
    if (op.type == WalOp::Type::kInsert) {
      ref->Insert(op.point);
    } else {
      ref->Delete(op.id);
    }
  }
  ref->Flush();
  CGroupByResult want = ref->QueryAll();
  CGroupByResult got = r.clusterer->QueryAll();
  want.Canonicalize();
  got.Canonicalize();
  ASSERT_TRUE(got == want)
      << "recovered clustering diverged from the uncrashed reference";

  if (r.snapshot != nullptr) {
    EXPECT_LE(r.snapshot_meta.last_seq, static_cast<uint64_t>(k))
        << "snapshot claims coverage beyond the replayed log";
    EXPECT_LE(r.snapshot->size(), static_cast<int64_t>(points.size()));
  }

  if (check_sandwich) {
    // Theorem 3: exact-at-eps clusters refine the recovered clustering,
    // which refines exact-at-(1+rho)eps clusters (ids are insertion
    // indices on both sides by monotone assignment).
    std::vector<PointId> ids(points.size(), kInvalidPoint);
    for (int i = 0; i < k; ++i) {
      const WalOp& op = t.applied_ops[i];
      ids[op.id] = op.type == WalOp::Type::kInsert ? op.id : kInvalidPoint;
    }
    const CGroupByResult lower = OracleOverAlive(points, ids, params);
    DbscanParams outer = params;
    outer.eps = params.eps_outer();
    outer.rho = 0;
    const CGroupByResult upper = OracleOverAlive(points, ids, outer);
    std::string why;
    EXPECT_TRUE(CheckSandwich(lower, got, upper, &why)) << why;
  }
}

DbscanParams TortureParams(double rho) {
  DbscanParams params;
  params.dim = 2;
  params.eps = 2.0;
  params.min_pts = 5;
  params.rho = rho;
  return params;
}

/// One crash-budget trial: run until the injected device failure, recover,
/// verify. `budget` must sit inside the log (the op stream of `n` ops
/// always writes more than the budgets the tests pick).
void CrashTrial(const std::string& tag, const std::string& spec, double rho,
                int n, uint64_t seed, int64_t budget, int snapshot_every) {
  SCOPED_TRACE(tag + " seed=" + std::to_string(seed) +
               " budget=" + std::to_string(budget));
  const std::string dir = TempDir(tag + std::to_string(seed));
  const DbscanParams params = TortureParams(rho);
  Rng plan_rng(seed);
  const std::vector<PlanOp> plan = MakePlan(plan_rng, n);
  Rng pt_rng(seed ^ 0xABCD);
  const std::vector<Point> points = BlobPoints(pt_rng, n, 2, 60.0, 3, 2.0);

  FaultPlan fault;
  fault.crash_after_bytes = budget;
  const TrialResult t = RunFaultedTrial(dir, spec, params, plan, points,
                                        fault, /*segment_bytes=*/512,
                                        snapshot_every);
  EXPECT_TRUE(t.crashed) << "budget " << budget << " outran the log";
  EXPECT_LT(t.acked, n);
  VerifyRecovered(dir, spec, params, t, points, rho > 0);
}

TEST(RecoveryTortureTest, CrashPointsExactGrid) {
  // 25 randomized crash budgets at rho = 0: recovered state must be
  // bit-identical to the uncrashed reference over the replayed prefix.
  Rng rng(1001);
  for (int trial = 0; trial < 25; ++trial) {
    CrashTrial("exact", "double-approx", 0.0, 140, 9000 + trial,
               rng.NextInRange(21, 3500), /*snapshot_every=*/0);
  }
}

TEST(RecoveryTortureTest, CrashPointsExactGridWithSnapshots) {
  // 15 crash budgets with periodic snapshot saves racing the crash: the
  // newest valid snapshot must never claim coverage beyond the log.
  Rng rng(2002);
  for (int trial = 0; trial < 15; ++trial) {
    CrashTrial("snap", "double-approx", 0.0, 140, 7000 + trial,
               rng.NextInRange(200, 3500), /*snapshot_every=*/40);
  }
}

TEST(RecoveryTortureTest, CrashPointsApproximate) {
  // 30 crash budgets at rho > 0: bit-identical to the reference AND
  // sandwich-conforming against the static oracles.
  Rng rng(3003);
  for (int trial = 0; trial < 30; ++trial) {
    CrashTrial("rho", "double-approx", 0.001, 130, 5000 + trial,
               rng.NextInRange(21, 3200), /*snapshot_every=*/0);
  }
}

TEST(RecoveryTortureTest, CrashPointsSharded) {
  // The sharded engine logs and recovers through the same contract.
  Rng rng(4004);
  for (int trial = 0; trial < 4; ++trial) {
    CrashTrial("sharded", "sharded-double-approx:shards=2,threads=2",
               trial < 2 ? 0.0 : 0.001, 100, 600 + trial,
               rng.NextInRange(100, 2200), /*snapshot_every=*/0);
  }
}

TEST(RecoveryTortureTest, RandomBitFlips) {
  // 20 trials: complete a clean run, flip one random bit somewhere in the
  // log, recover. A flip in the final segment truncates to a verified
  // prefix; a flip anywhere earlier is a hard error naming the file. A
  // flipped log must never replay as if nothing happened.
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t seed = 6000 + trial;
    SCOPED_TRACE("flip seed=" + std::to_string(seed));
    const std::string dir = TempDir("flip" + std::to_string(trial));
    const DbscanParams params = TortureParams(0.0);
    Rng plan_rng(seed);
    const std::vector<PlanOp> plan = MakePlan(plan_rng, 120);
    Rng pt_rng(seed ^ 0xABCD);
    const std::vector<Point> points = BlobPoints(pt_rng, 120, 2, 60.0, 3, 2.0);
    const TrialResult t = RunFaultedTrial(dir, "double-approx", params, plan,
                                          points, FaultPlan{}, 512, 0);
    ASSERT_FALSE(t.crashed);
    ASSERT_EQ(t.acked, t.applied);

    std::vector<std::string> segments;
    std::string error;
    ASSERT_TRUE(ListWalSegments(dir, &segments, &error)) << error;
    Rng flip_rng(seed * 31);
    const std::string victim =
        segments[flip_rng.NextBelow(segments.size())];
    std::string data;
    ASSERT_TRUE(ReadFileToString(victim, &data, &error)) << error;
    const size_t byte = flip_rng.NextBelow(data.size());
    data[byte] ^= static_cast<char>(1u << flip_rng.NextBelow(8));
    ASSERT_TRUE(WriteFile(victim, data, &error)) << error;

    RecoveryResult r;
    RunMeta meta;
    if (!RecoverFromDir(dir, &r, &meta, &error)) {
      // Hard error path: must name the damaged file, never be vague.
      EXPECT_NE(error.find(dir), std::string::npos) << error;
    } else {
      // Truncation path: only legal when the flip hit the final segment,
      // and the surviving prefix must still verify bit-identically.
      EXPECT_EQ(victim, segments.back()) << "silently skipped corruption";
      EXPECT_TRUE(r.wal.truncated);
      EXPECT_LT(r.ops.size(), static_cast<size_t>(t.applied));
      VerifyRecovered(dir, "double-approx", params, t, points, false,
                      /*min_replayed=*/0);
    }
  }
}

TEST(RecoveryTortureTest, TornTails) {
  // 20 trials: chop a random number of bytes off the final segment — the
  // shape an OS crash leaves — and require clean prefix recovery.
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t seed = 8000 + trial;
    SCOPED_TRACE("torn seed=" + std::to_string(seed));
    const std::string dir = TempDir("torn" + std::to_string(trial));
    const DbscanParams params = TortureParams(0.0);
    Rng plan_rng(seed);
    const std::vector<PlanOp> plan = MakePlan(plan_rng, 120);
    Rng pt_rng(seed ^ 0xABCD);
    const std::vector<Point> points = BlobPoints(pt_rng, 120, 2, 60.0, 3, 2.0);
    const TrialResult t = RunFaultedTrial(dir, "double-approx", params, plan,
                                          points, FaultPlan{}, 512, 0);
    ASSERT_FALSE(t.crashed);

    std::vector<std::string> segments;
    std::string error;
    ASSERT_TRUE(ListWalSegments(dir, &segments, &error)) << error;
    const std::string last = segments.back();
    std::string data;
    ASSERT_TRUE(ReadFileToString(last, &data, &error)) << error;
    Rng cut_rng(seed * 17);
    const size_t strip = 1 + cut_rng.NextBelow(
        std::min<size_t>(data.size(), 150));
    data.resize(data.size() - strip);
    ASSERT_TRUE(WriteFile(last, data, &error)) << error;

    VerifyRecovered(dir, "double-approx", params, t, points, false,
                    /*min_replayed=*/0);
  }
}

TEST(RecoveryTest, SnapshotNewerThanWalIsFatal) {
  // A snapshot covering seqs the log cannot replay proves the WAL lost
  // acknowledged records — recovery must refuse, not quietly under-replay.
  const std::string dir = TempDir("newer");
  const DbscanParams params = TortureParams(0.0);
  Rng plan_rng(42);
  const std::vector<PlanOp> plan = MakePlan(plan_rng, 80);
  Rng pt_rng(43);
  const std::vector<Point> points = BlobPoints(pt_rng, 80, 2, 60.0, 3, 2.0);
  const TrialResult t = RunFaultedTrial(dir, "double-approx", params, plan,
                                        points, FaultPlan{}, 1 << 20,
                                        /*snapshot_every=*/40);
  ASSERT_FALSE(t.crashed);

  // Lose the log but keep the snapshots.
  std::vector<std::string> segments;
  std::string error;
  ASSERT_TRUE(ListWalSegments(dir, &segments, &error));
  for (const std::string& s : segments) std::filesystem::remove(s);

  RecoveryResult r;
  RunMeta meta;
  EXPECT_FALSE(RecoverFromDir(dir, &r, &meta, &error));
  EXPECT_NE(error.find("lost acknowledged"), std::string::npos) << error;
}

TEST(RecoveryTest, RunMetaRoundTripsBitExactly) {
  const std::string dir = TempDir("runmeta");
  RunMeta meta;
  meta.method = "sharded-double-approx:shards=4,threads=2";
  meta.scenario = "burst:n=4000";
  meta.seed = 0xFEEDFACE;
  meta.params.dim = 5;
  meta.params.eps = 0.1;
  meta.params.min_pts = 7;
  meta.params.rho = 1e-300;
  std::string error;
  ASSERT_TRUE(WriteRunMeta(dir, meta, &error)) << error;
  RunMeta got;
  ASSERT_TRUE(ReadRunMeta(dir, &got, &error)) << error;
  EXPECT_EQ(got.method, meta.method);
  EXPECT_EQ(got.scenario, meta.scenario);
  EXPECT_EQ(got.seed, meta.seed);
  EXPECT_EQ(got.params.dim, meta.params.dim);
  EXPECT_EQ(got.params.min_pts, meta.params.min_pts);
  EXPECT_EQ(got.params.eps, meta.params.eps);
  EXPECT_EQ(got.params.rho, meta.params.rho);  // 1e-300 survives exactly.

  RunMeta missing;
  EXPECT_FALSE(ReadRunMeta(dir + "/nope", &missing, &error));
  EXPECT_NE(error.find("nope"), std::string::npos) << error;
}

TEST(RecoveryTest, RefusesAMethodThisBuildRejects) {
  const std::string dir = TempDir("method");
  RunMeta meta;
  meta.method = "no-such-method";
  meta.params = TortureParams(0.0);
  std::string error;
  ASSERT_TRUE(WriteRunMeta(dir, meta, &error)) << error;
  RecoveryResult r;
  EXPECT_FALSE(Recover(dir, meta, &r, &error));
  EXPECT_NE(error.find("no-such-method"), std::string::npos) << error;
  EXPECT_EQ(r.clusterer, nullptr);
}

TEST(RecoveryTest, EmptyDirectoryRecoversToAnEmptyClusterer) {
  const std::string dir = TempDir("fresh");
  RunMeta meta;
  meta.method = "double-approx";
  meta.params = TortureParams(0.001);
  std::string error;
  ASSERT_TRUE(WriteRunMeta(dir, meta, &error)) << error;
  RecoveryResult r;
  ASSERT_TRUE(Recover(dir, meta, &r, &error)) << error;
  EXPECT_EQ(r.ops.size(), 0u);
  EXPECT_EQ(r.clusterer->AlivePoints().size(), 0u);
  EXPECT_EQ(r.snapshot, nullptr);
}

}  // namespace
}  // namespace ddc
