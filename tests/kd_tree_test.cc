#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "grid/grid.h"
#include "spatial/kd_tree.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

const Point& GridCoords(const void* ctx, PointId id) {
  return static_cast<const Grid*>(ctx)->point(id);
}

class KdTreeTest : public ::testing::Test {
 protected:
  KdTreeTest() : grid_(3, 100.0), tree_(&grid_, &GridCoords, 3) {}

  PointId Add(double x, double y, double z) {
    const PointId id = grid_.Insert(Point{x, y, z}).id;
    tree_.Insert(id);
    return id;
  }

  Grid grid_;
  KdTree tree_;
};

TEST_F(KdTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.size(), 0);
  EXPECT_EQ(tree_.FindWithin(Point{0, 0, 0}, 10.0), kInvalidPoint);
  tree_.CheckInvariants();
}

TEST_F(KdTreeTest, SinglePoint) {
  const PointId a = Add(1, 2, 3);
  EXPECT_EQ(tree_.size(), 1);
  EXPECT_EQ(tree_.FindWithin(Point{1, 2, 3.5}, 1.0), a);
  EXPECT_EQ(tree_.FindWithin(Point{10, 10, 10}, 1.0), kInvalidPoint);
  tree_.Remove(a);
  EXPECT_EQ(tree_.size(), 0);
  EXPECT_EQ(tree_.FindWithin(Point{1, 2, 3}, 1.0), kInvalidPoint);
  tree_.CheckInvariants();
}

TEST_F(KdTreeTest, DuplicateCoordinatesRemoveCorrectly) {
  // The (coordinate, id) tie-break must route every duplicate findably,
  // including across rebuilds.
  std::vector<PointId> dups;
  for (int i = 0; i < 20; ++i) dups.push_back(Add(5, 5, 5));
  for (int i = 0; i < 8; ++i) Add(1 + i, 2, 3);
  tree_.CheckInvariants();
  // Remove duplicates in a scrambled order; removals trigger rebuilds.
  Rng rng(3);
  while (!dups.empty()) {
    const size_t i = rng.NextBelow(dups.size());
    tree_.Remove(dups[i]);
    dups[i] = dups.back();
    dups.pop_back();
    tree_.CheckInvariants();
  }
  EXPECT_EQ(tree_.size(), 8);
  EXPECT_EQ(tree_.FindWithin(Point{5, 5, 5}, 0.5), kInvalidPoint);
}

TEST_F(KdTreeTest, ForEachVisitsAlive) {
  std::set<PointId> want;
  for (int i = 0; i < 30; ++i) want.insert(Add(i, -i, 2 * i));
  const PointId gone = *want.begin();
  tree_.Remove(gone);
  want.erase(gone);
  std::set<PointId> got;
  tree_.ForEach([&](PointId p) { got.insert(p); });
  EXPECT_EQ(got, want);
}

TEST(KdTreeFuzzTest, FindWithinMatchesBruteForce) {
  for (const int dim : {1, 2, 3, 5}) {
    Grid grid(dim, 100.0);
    KdTree tree(&grid, &GridCoords, dim);
    Rng rng(7000 + dim);
    std::vector<PointId> alive;

    for (int step = 0; step < 1500; ++step) {
      if (alive.empty() || rng.NextBernoulli(0.6)) {
        const PointId id = grid.Insert(UniformPoints(rng, 1, dim, 20.0)[0]).id;
        tree.Insert(id);
        alive.push_back(id);
      } else {
        const size_t i = rng.NextBelow(alive.size());
        tree.Remove(alive[i]);
        grid.Delete(alive[i]);
        alive[i] = alive.back();
        alive.pop_back();
      }
      ASSERT_EQ(tree.size(), static_cast<int>(alive.size()));

      if (step % 40 != 0) continue;
      tree.CheckInvariants();
      for (int probe = 0; probe < 10; ++probe) {
        const Point q = UniformPoints(rng, 1, dim, 22.0)[0];
        const double r = rng.NextDouble(0.5, 6.0);
        double best = 1e100;
        for (const PointId id : alive) {
          best = std::min(best, Distance(q, grid.point(id), dim));
        }
        const PointId got = tree.FindWithin(q, r);
        if (best <= r) {
          ASSERT_NE(got, kInvalidPoint) << "dim=" << dim << " step=" << step;
          ASSERT_LE(Distance(q, grid.point(got), dim), r * (1 + 1e-12));
        } else {
          ASSERT_EQ(got, kInvalidPoint);
        }
      }
    }
  }
}

TEST(KdTreeRebuildTest, HeavyDeletionCompacts) {
  Grid grid(2, 100.0);
  KdTree tree(&grid, &GridCoords, 2);
  Rng rng(9);
  std::vector<PointId> ids;
  for (const Point& p : UniformPoints(rng, 2000, 2, 50.0)) {
    const PointId id = grid.Insert(p).id;
    tree.Insert(id);
    ids.push_back(id);
  }
  // Delete 90%: rebuilds must keep the structure consistent and queries
  // correct for the survivors.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) tree.Remove(ids[i]);
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 200);
  for (size_t i = 0; i < ids.size(); i += 10) {
    EXPECT_NE(tree.FindWithin(grid.point(ids[i]), 1e-9), kInvalidPoint);
  }
}

}  // namespace
}  // namespace ddc
