#include <gtest/gtest.h>

#include "common/check.h"

namespace ddc {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  DDC_CHECK(1 + 1 == 2);
  DDC_DCHECK(2 + 2 == 4);
}

TEST(CheckTest, CheckEvaluatesConditionExactlyOnce) {
  int evaluations = 0;
  DDC_CHECK(++evaluations == 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(DDC_CHECK(1 == 2), "DDC_CHECK failed");
}

TEST(CheckDeathTest, MessageNamesSourceLocationAndCondition) {
  // The abort message must carry enough to debug from a CI log alone: the
  // file, and the literal condition text.
  EXPECT_DEATH(DDC_CHECK(false && "reactor overheated"),
               "check_test\\.cc.*false && \"reactor overheated\"");
}

TEST(CheckDeathTest, DcheckFollowsBuildType) {
#ifdef NDEBUG
  DDC_DCHECK(1 == 2);  // Compiled out in optimized builds: must not abort.
#else
  EXPECT_DEATH(DDC_DCHECK(1 == 2), "DDC_CHECK failed");
#endif
}

#ifdef NDEBUG
TEST(CheckTest, DcheckDoesNotEvaluateConditionWhenDisabled) {
  int evaluations = 0;
  DDC_DCHECK(++evaluations == 1);
  EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
}  // namespace ddc
