#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/static_dbscan.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

using Options = FullyDynamicClusterer::Options;

/// Replays a random insert/delete sequence, verifying the full clustering
/// against the static oracle (rho == 0) or the sandwich guarantee (rho > 0)
/// at regular checkpoints.
void RunMixedWorkload(const DbscanParams& params, const Options& options,
                      uint64_t seed, int steps, double p_insert,
                      int check_every) {
  Rng rng(seed);
  FullyDynamicClusterer clusterer(params, options);
  std::vector<PointId> alive;

  for (int step = 0; step < steps; ++step) {
    if (alive.empty() || rng.NextBernoulli(p_insert)) {
      const Point p =
          BlobPoints(rng, 1, params.dim, 7.0, 1, 1.2, 0.25)[0];
      alive.push_back(clusterer.Insert(p));
    } else {
      const size_t i = rng.NextBelow(alive.size());
      clusterer.Delete(alive[i]);
      alive[i] = alive.back();
      alive.pop_back();
    }

    if (step % check_every != check_every - 1) continue;

    // Materialize the alive points in id order for the oracle.
    std::vector<PointId> ids = clusterer.AlivePoints();
    std::vector<Point> pts;
    pts.reserve(ids.size());
    for (const PointId id : ids) pts.push_back(clusterer.grid().point(id));

    auto got = clusterer.QueryAll();
    got.Canonicalize();

    if (params.rho == 0) {
      const auto want = StaticDbscan(pts, params).ToGroups(ids);
      ASSERT_EQ(got, want) << "step " << step << " n=" << ids.size();
    } else {
      const auto lower = StaticDbscan(pts, params).ToGroups(ids);
      DbscanParams outer = params;
      outer.eps = params.eps_outer();
      outer.rho = 0;
      const auto upper = StaticDbscan(pts, outer).ToGroups(ids);
      std::string why;
      ASSERT_TRUE(CheckSandwich(lower, got, upper, &why))
          << why << " at step " << step;
    }
  }
}

struct FullCase {
  const char* name;
  DbscanParams params;
  Options options;
};

class FullyDynamicOracleTest : public ::testing::TestWithParam<FullCase> {};

TEST_P(FullyDynamicOracleTest, MixedWorkloadChecksOut) {
  const auto& c = GetParam();
  RunMixedWorkload(c.params, c.options, /*seed=*/777, /*steps=*/900,
                   /*p_insert=*/0.7, /*check_every=*/60);
}

// Exact configurations (rho = 0) must reproduce exact DBSCAN; approximate
// ones must stay inside the sandwich. Both connectivity structures and all
// counter/emptiness combinations are exercised.
INSTANTIATE_TEST_SUITE_P(
    Cases, FullyDynamicOracleTest,
    ::testing::Values(
        FullCase{"exact2d_hdt",
                 {.dim = 2, .eps = 0.8, .min_pts = 4, .rho = 0.0},
                 {}},
        FullCase{"exact2d_bfs",
                 {.dim = 2, .eps = 0.8, .min_pts = 4, .rho = 0.0},
                 {.connectivity = ConnectivityKind::kBfs}},
        FullCase{"exact3d_hdt",
                 {.dim = 3, .eps = 1.1, .min_pts = 5, .rho = 0.0},
                 {}},
        FullCase{"exact1d_minpts1",
                 {.dim = 1, .eps = 0.4, .min_pts = 1, .rho = 0.0},
                 {}},
        FullCase{"approx2d_tiny_rho",
                 {.dim = 2, .eps = 0.8, .min_pts = 4, .rho = 0.001},
                 {}},
        FullCase{"approx3d_big_rho",
                 {.dim = 3, .eps = 1.1, .min_pts = 5, .rho = 0.4},
                 {}},
        FullCase{"approx2d_subgrid_structures",
                 {.dim = 2, .eps = 0.8, .min_pts = 4, .rho = 0.2},
                 {.emptiness = EmptinessKind::kSubGrid,
                  .counter = CounterKind::kSubGrid}},
        FullCase{"exact2d_kdtree",
                 {.dim = 2, .eps = 0.8, .min_pts = 4, .rho = 0.0},
                 {.emptiness = EmptinessKind::kKdTree}},
        FullCase{"approx5d_bfs",
                 {.dim = 5, .eps = 1.8, .min_pts = 4, .rho = 0.25},
                 {.connectivity = ConnectivityKind::kBfs,
                  .counter = CounterKind::kSubGrid}}),
    [](const auto& info) { return info.param.name; });

TEST(FullyDynamicTest, DeleteReversesInsert) {
  // Figure 1's reverse direction: deleting the bridge points splits the
  // merged cluster back in two.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.0};
  FullyDynamicClusterer c(params);
  PointId l0 = kInvalidPoint, r0 = kInvalidPoint;
  for (int i = 0; i < 5; ++i) {
    const PointId id = c.Insert(Point{0.3 * i, 0.0});
    if (i == 0) l0 = id;
  }
  for (int i = 0; i < 5; ++i) {
    const PointId id = c.Insert(Point{6 + 0.3 * i, 0.0});
    if (i == 0) r0 = id;
  }
  std::vector<PointId> bridge;
  for (const double x : {2.0, 2.9, 3.8, 4.7, 5.4}) {
    bridge.push_back(c.Insert(Point{x, 0}));
  }
  auto r = c.Query({l0, r0});
  ASSERT_EQ(r.groups.size(), 1u);

  for (const PointId b : bridge) c.Delete(b);
  r = c.Query({l0, r0});
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_TRUE(r.noise.empty());
}

TEST(FullyDynamicTest, DrainToEmpty) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.1};
  FullyDynamicClusterer c(params);
  Rng rng(5);
  std::vector<PointId> ids;
  for (const Point& p : UniformPoints(rng, 120, 2, 3.0)) {
    ids.push_back(c.Insert(p));
  }
  EXPECT_GT(c.num_graph_edges(), 0);
  for (const PointId id : ids) c.Delete(id);
  EXPECT_EQ(c.size(), 0);
  EXPECT_EQ(c.num_graph_edges(), 0);
  EXPECT_EQ(c.num_abcp_instances(), 0);
  const auto r = c.QueryAll();
  EXPECT_TRUE(r.groups.empty());
  EXPECT_TRUE(r.noise.empty());
  // The structure remains usable after draining.
  c.Insert(Point{0, 0});
  EXPECT_EQ(c.size(), 1);
}

TEST(FullyDynamicTest, ReinsertAfterDeleteSameSpot) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 2, .rho = 0.0};
  FullyDynamicClusterer c(params);
  const PointId a = c.Insert(Point{0, 0});
  const PointId b = c.Insert(Point{0.5, 0});
  auto r = c.Query({a, b});
  ASSERT_EQ(r.groups.size(), 1u);
  c.Delete(b);
  r = c.Query({a});
  EXPECT_TRUE(r.groups.empty());
  EXPECT_EQ(r.noise.size(), 1u);
  const PointId b2 = c.Insert(Point{0.5, 0});
  r = c.Query({a, b2});
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].size(), 2u);
}

TEST(FullyDynamicTest, DeletionHeavyRegime) {
  // Mostly deletions after a build-up phase: stresses demotions, witness
  // repairs and connectivity splits.
  DbscanParams params{.dim = 2, .eps = 0.9, .min_pts = 4, .rho = 0.0};
  RunMixedWorkload(params, Options{}, /*seed=*/31337, /*steps=*/700,
                   /*p_insert=*/0.45, /*check_every=*/50);
}

}  // namespace
}  // namespace ddc
