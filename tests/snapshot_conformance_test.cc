#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster_snapshot.h"
#include "core/clusterer.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/incremental_dbscan.h"
#include "core/semi_dynamic_clusterer.h"
#include "core/static_dbscan.h"
#include "engine/sharded_clusterer.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// Concurrent-reader conformance: a published ClusterSnapshot must answer
/// queries from any number of threads — while the main thread keeps
/// applying updates — with results that are (a) bit-identical to the
/// single-threaded Query() at the same epoch and (b) Theorem-3-sandwich
/// correct against the static oracles of that epoch (verbatim-exact at
/// rho == 0). Run under TSan in CI, this is the proof that the read path
/// shares no mutable state with the write path.

struct Combo {
  std::string name;
  bool supports_delete;
  std::function<std::unique_ptr<Clusterer>(const DbscanParams&)> make;
};

/// A representative slice of the full conformance matrix: both connectivity
/// structures, every emptiness kind, IncDBSCAN at rho == 0, the
/// semi-dynamic clusterer on insert-only streams, and the sharded engine
/// (whose snapshots additionally compose per-shard state across real
/// worker threads).
std::vector<Combo> SnapshotCombos(double rho) {
  std::vector<Combo> combos;
  for (const auto& [kind, name] : EmptinessKinds(rho)) {
    FullyDynamicClusterer::Options options;
    options.emptiness = kind;
    options.connectivity = kind == EmptinessKind::kBruteForce
                               ? ConnectivityKind::kBfs
                               : ConnectivityKind::kHdt;
    combos.push_back({std::string("full/") + name, true,
                      [options](const DbscanParams& p) {
                        return std::make_unique<FullyDynamicClusterer>(
                            p, options);
                      }});
  }
  combos.push_back({"semi/bf", false, [](const DbscanParams& p) {
                      return std::make_unique<SemiDynamicClusterer>(p);
                    }});
  if (rho == 0) {
    combos.push_back({"inc", true, [](const DbscanParams& p) {
                        return std::make_unique<IncrementalDbscan>(p);
                      }});
  }
  for (const int shards : {1, 4}) {
    ShardedClusterer::Options options;
    options.shards = shards;
    options.threads = shards;
    options.batch = 16;
    options.warmup = 64;
    combos.push_back({"sharded/s" + std::to_string(shards), true,
                      [options](const DbscanParams& p) {
                        return std::make_unique<ShardedClusterer>(p, options);
                      }});
  }
  return combos;
}

struct CheckpointOracles {
  CGroupByResult lower;
  CGroupByResult upper;
};

/// One checkpoint's published snapshot with its reader crew in flight. The
/// readers hammer the frozen epoch while the main thread applies the next
/// segment of updates; Finish() joins them and verifies every result.
struct InFlight {
  std::shared_ptr<const ClusterSnapshot> snap;
  std::vector<PointId> qids;
  CGroupByResult baseline;        // Canonical remapped Query() at the epoch.
  std::vector<PointId> ids_at;    // Insertion-index translation, frozen.
  const CheckpointOracles* oracles = nullptr;
  double rho = 0;
  std::vector<std::thread> threads;
  std::vector<CGroupByResult> results;

  void Finish() {
    for (std::thread& t : threads) t.join();
    threads.clear();
    if (snap == nullptr) return;
    for (size_t r = 0; r < results.size(); ++r) {
      SCOPED_TRACE("reader " + std::to_string(r));
      const CGroupByResult got =
          RemapToInsertionIndex(results[r], ids_at);
      EXPECT_EQ(got, baseline)
          << "concurrent reader diverged from the single-threaded Query()"
             " of the same epoch";
      std::string why;
      EXPECT_TRUE(CheckSandwich(oracles->lower, got, oracles->upper, &why))
          << why;
      if (rho == 0) EXPECT_EQ(got, oracles->lower);
    }
    snap = nullptr;
  }
};

void RunSnapshotConformance(const Workload& w, const DbscanParams& params,
                            int64_t check_every, int num_readers,
                            int reads_per_reader) {
  // Static oracles per checkpoint, shared across combos.
  std::vector<CheckpointOracles> oracles;
  {
    std::vector<PointId> ids(w.points.size(), kInvalidPoint);
    int64_t updates = 0;
    for (const Operation& op : w.ops) {
      if (op.type == Operation::Type::kQuery) continue;
      ids[op.target] = op.type == Operation::Type::kInsert
                           ? static_cast<PointId>(op.target)
                           : kInvalidPoint;
      ++updates;
      if (updates % check_every == 0 || updates == w.num_updates) {
        CheckpointOracles cp;
        cp.lower = OracleOverAlive(w.points, ids, params);
        if (params.rho == 0) {
          cp.upper = cp.lower;
        } else {
          DbscanParams outer = params;
          outer.eps = params.eps_outer();
          outer.rho = 0;
          cp.upper = OracleOverAlive(w.points, ids, outer);
        }
        oracles.push_back(std::move(cp));
      }
    }
  }

  for (const Combo& combo : SnapshotCombos(params.rho)) {
    if (!combo.supports_delete && w.num_deletes > 0) continue;
    SCOPED_TRACE(combo.name);
    std::unique_ptr<Clusterer> c = combo.make(params);
    std::vector<PointId> ids(w.points.size(), kInvalidPoint);
    int64_t updates = 0;
    size_t checkpoint = 0;
    InFlight flight;
    uint64_t last_epoch = 0;
    bool have_epoch = false;

    for (const Operation& op : w.ops) {
      if (op.type == Operation::Type::kQuery) continue;
      ApplyOp(*c, w, op, ids);
      ++updates;
      if (updates % check_every != 0 && updates != w.num_updates) continue;

      // Verify the previous crew (they ran while the segment above was
      // being applied), then publish this checkpoint's epoch and launch
      // the next crew against it.
      flight.Finish();
      if (::testing::Test::HasFailure()) return;

      flight.snap = c->Snapshot();
      ASSERT_NE(flight.snap, nullptr);
      EXPECT_EQ(c->CurrentSnapshot(), flight.snap)
          << "Snapshot() must publish what CurrentSnapshot() serves";
      if (have_epoch) {
        EXPECT_GT(flight.snap->epoch(), last_epoch)
            << "epochs must advance across applied updates";
      }
      last_epoch = flight.snap->epoch();
      have_epoch = true;

      flight.qids.clear();
      for (const PointId k : AliveInsertionIndices(ids)) {
        flight.qids.push_back(ids[k]);
      }
      flight.ids_at = ids;
      flight.baseline =
          RemapToInsertionIndex(c->Query(flight.qids), flight.ids_at);
      flight.oracles = &oracles[checkpoint++];
      flight.rho = params.rho;
      flight.results.assign(num_readers, CGroupByResult{});
      for (int r = 0; r < num_readers; ++r) {
        flight.threads.emplace_back(
            [&flight, r, reads_per_reader] {
              CGroupByResult last;
              for (int i = 0; i < reads_per_reader; ++i) {
                last = flight.snap->Query(flight.qids);
              }
              flight.results[r] = std::move(last);
            });
      }
    }
    flight.Finish();
    if (::testing::Test::HasFailure()) return;
  }
}

Workload MakeWorkload(double insert_fraction, uint64_t seed) {
  WorkloadConfig config;
  config.num_updates = 360;
  config.insert_fraction = insert_fraction;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.spreader.extent = 2500.0;
  config.seed = seed;
  return BuildWorkload(config);
}

DbscanParams MakeParams(double rho) {
  return DbscanParams{.dim = 2, .eps = 110.0, .min_pts = 5, .rho = rho};
}

class SnapshotConformanceTest : public ::testing::TestWithParam<double> {};

TEST_P(SnapshotConformanceTest, ConcurrentReadersWhileUpdatesFlow) {
  RunSnapshotConformance(MakeWorkload(0.75, 5), MakeParams(GetParam()), 120,
                         /*num_readers=*/4, /*reads_per_reader=*/3);
}

TEST_P(SnapshotConformanceTest, InsertOnlyIncludesSemiDynamic) {
  RunSnapshotConformance(MakeWorkload(1.0, 6), MakeParams(GetParam()), 120,
                         /*num_readers=*/4, /*reads_per_reader=*/3);
}

INSTANTIATE_TEST_SUITE_P(Rho, SnapshotConformanceTest,
                         ::testing::Values(0.0, 0.001, 0.1),
                         [](const auto& info) {
                           return info.param == 0.0     ? "Exact"
                                  : info.param == 0.001 ? "TinyRho"
                                                        : "WideRho";
                         });

/// The freeze contract itself, independent of threads: a snapshot keeps
/// answering for its own epoch no matter how the live clusterer moves on.
TEST(SnapshotSemanticsTest, SnapshotIsImmuneToLaterUpdates) {
  const DbscanParams params{.dim = 2, .eps = 1.5, .min_pts = 3, .rho = 0};
  FullyDynamicClusterer c(params);
  std::vector<PointId> cluster;
  for (int i = 0; i < 5; ++i) {
    cluster.push_back(c.Insert(Point{static_cast<double>(i) * 0.5, 0.0}));
  }
  const std::shared_ptr<const ClusterSnapshot> snap = c.Snapshot();
  CGroupByResult before = snap->Query(cluster);
  before.Canonicalize();
  ASSERT_EQ(before.groups.size(), 1u);

  // Demolish the cluster and insert fresh points; the frozen epoch must
  // not notice, and ids born later must be invisible to it.
  for (const PointId p : cluster) c.Delete(p);
  const PointId later = c.Insert(Point{40.0, 40.0});
  EXPECT_FALSE(snap->alive(later));
  std::vector<PointId> with_later = cluster;
  with_later.push_back(later);
  CGroupByResult after = snap->Query(with_later);
  after.Canonicalize();
  EXPECT_EQ(after, before);
  EXPECT_EQ(snap->size(), 5);
  EXPECT_EQ(c.size(), 1);
}

TEST(SnapshotSemanticsTest, SnapshotIsCachedBetweenUpdates) {
  const DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 2, .rho = 0};
  FullyDynamicClusterer c(params);
  c.Insert(Point{0.0, 0.0});
  const auto first = c.Snapshot();
  EXPECT_EQ(c.Snapshot(), first) << "no updates -> same cached snapshot";
  c.Insert(Point{0.1, 0.0});
  const auto second = c.Snapshot();
  EXPECT_NE(second, first);
  EXPECT_GT(second->epoch(), first->epoch());
}

}  // namespace
}  // namespace ddc
