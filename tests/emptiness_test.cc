#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/emptiness.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

struct EmptinessCase {
  EmptinessKind kind;
  double rho;
};

class EmptinessContractTest : public ::testing::TestWithParam<EmptinessCase> {};

// The ρ-approximate ε-emptiness contract (Section 4.2): a query must find a
// proof when some member is within ε, must find none when no member is
// within (1+ρ)ε, and any returned proof must be within (1+ρ)ε.
TEST_P(EmptinessContractTest, ContractHolds) {
  const auto [kind, rho] = GetParam();
  const int dim = 3;
  DbscanParams params{.dim = dim, .eps = 1.0, .min_pts = 3, .rho = rho};
  Rng rng(42);

  Grid grid(dim, params.eps);
  auto structure = MakeEmptinessStructure(kind, &grid, params);

  std::vector<PointId> members;
  for (const Point& p : UniformPoints(rng, 120, dim, 2.5)) {
    const PointId id = grid.Insert(p).id;
    members.push_back(id);
    structure->Insert(id);
  }
  ASSERT_EQ(structure->size(), 120);

  for (int probe = 0; probe < 300; ++probe) {
    const Point q = UniformPoints(rng, 1, dim, 4.0)[0];
    double best = 1e100;
    for (const PointId m : members) {
      best = std::min(best, Distance(q, grid.point(m), dim));
    }
    const PointId proof = structure->Query(q);
    if (best <= params.eps) {
      ASSERT_NE(proof, kInvalidPoint) << "must-find violated, best=" << best;
    }
    if (best > params.eps_outer()) {
      ASSERT_EQ(proof, kInvalidPoint) << "must-miss violated, best=" << best;
    }
    if (proof != kInvalidPoint) {
      ASSERT_LE(Distance(q, grid.point(proof), dim),
                params.eps_outer() * (1 + 1e-12));
    }
  }
}

TEST_P(EmptinessContractTest, RemoveWorks) {
  const auto [kind, rho] = GetParam();
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = rho};
  Grid grid(2, params.eps);
  auto s = MakeEmptinessStructure(kind, &grid, params);

  const PointId a = grid.Insert(Point{0, 0}).id;
  const PointId b = grid.Insert(Point{0.1, 0.1}).id;
  s->Insert(a);
  s->Insert(b);
  EXPECT_EQ(s->size(), 2);

  s->Remove(a);
  EXPECT_EQ(s->size(), 1);
  const PointId proof = s->Query(Point{0, 0});
  EXPECT_EQ(proof, b);  // Only b remains.

  s->Remove(b);
  EXPECT_EQ(s->size(), 0);
  EXPECT_EQ(s->Query(Point{0, 0}), kInvalidPoint);
}

TEST_P(EmptinessContractTest, ForEachVisitsAllMembers) {
  const auto [kind, rho] = GetParam();
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = rho};
  Rng rng(7);
  Grid grid(2, params.eps);
  auto s = MakeEmptinessStructure(kind, &grid, params);

  std::set<PointId> want;
  for (const Point& p : UniformPoints(rng, 37, 2, 1.0)) {
    const PointId id = grid.Insert(p).id;
    s->Insert(id);
    want.insert(id);
  }
  std::set<PointId> got;
  s->ForEach([&](PointId p) { got.insert(p); });
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EmptinessContractTest,
    ::testing::Values(EmptinessCase{EmptinessKind::kBruteForce, 0.0},
                      EmptinessCase{EmptinessKind::kBruteForce, 0.001},
                      EmptinessCase{EmptinessKind::kBruteForce, 0.5},
                      EmptinessCase{EmptinessKind::kKdTree, 0.0},
                      EmptinessCase{EmptinessKind::kKdTree, 0.2},
                      EmptinessCase{EmptinessKind::kSubGrid, 0.001},
                      EmptinessCase{EmptinessKind::kSubGrid, 0.1},
                      EmptinessCase{EmptinessKind::kSubGrid, 0.5}));

// Randomized mixed insert/remove fuzz against a naive mirror.
TEST(EmptinessFuzzTest, MixedUpdatesKeepContract) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.2};
  Rng rng(99);
  for (const EmptinessKind kind :
       {EmptinessKind::kBruteForce, EmptinessKind::kSubGrid,
        EmptinessKind::kKdTree}) {
    Grid grid(2, params.eps);
    auto s = MakeEmptinessStructure(kind, &grid, params);
    std::vector<PointId> members;

    for (int step = 0; step < 2000; ++step) {
      if (members.empty() || rng.NextBernoulli(0.6)) {
        const PointId id = grid.Insert(UniformPoints(rng, 1, 2, 3.0)[0]).id;
        s->Insert(id);
        members.push_back(id);
      } else {
        const size_t i = rng.NextBelow(members.size());
        s->Remove(members[i]);
        members[i] = members.back();
        members.pop_back();
      }
      ASSERT_EQ(s->size(), static_cast<int>(members.size()));
      if (step % 20 == 0) {
        const Point q = UniformPoints(rng, 1, 2, 3.0)[0];
        double best = 1e100;
        for (const PointId m : members) {
          best = std::min(best, Distance(q, grid.point(m), 2));
        }
        const PointId proof = s->Query(q);
        if (best <= params.eps) {
          ASSERT_NE(proof, kInvalidPoint);
        }
        if (best > params.eps_outer()) {
          ASSERT_EQ(proof, kInvalidPoint);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ddc
