#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/static_approx_dbscan.h"
#include "core/static_dbscan.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

// At rho == 0 the approximate algorithm degenerates to exact DBSCAN
// (Section 2, Remark).
TEST(StaticApproxTest, RhoZeroIsExact) {
  Rng rng(21);
  for (const int dim : {1, 2, 3, 5}) {
    const auto pts = BlobPoints(rng, 200, dim, 7.0, 4, 0.9, 0.12);
    DbscanParams params{.dim = dim, .eps = 0.9, .min_pts = 4, .rho = 0.0};
    const auto got = StaticApproxDbscan(pts, params);
    const auto want = OracleGroups(pts, params);
    ASSERT_EQ(got, want) << "dim=" << dim;
  }
}

// For rho > 0 the result must satisfy the sandwich guarantee.
class StaticApproxSandwichTest : public ::testing::TestWithParam<double> {};

TEST_P(StaticApproxSandwichTest, Sandwiched) {
  const double rho = GetParam();
  Rng rng(22 + static_cast<int>(rho * 1000));
  for (const int dim : {2, 3}) {
    const auto pts = BlobPoints(rng, 250, dim, 7.0, 4, 0.9, 0.15);
    DbscanParams params{.dim = dim, .eps = 0.9, .min_pts = 4, .rho = rho};
    const auto got = StaticApproxDbscan(pts, params);
    const auto lower = OracleGroups(pts, params);
    const auto upper = OracleGroupsOuter(pts, params);
    std::string why;
    ASSERT_TRUE(CheckSandwich(lower, got, upper, &why))
        << why << " dim=" << dim << " rho=" << rho;
  }
}

INSTANTIATE_TEST_SUITE_P(Rhos, StaticApproxSandwichTest,
                         ::testing::Values(0.001, 0.1, 0.5));

TEST(StaticApproxTest, EmptyAndTinyInputs) {
  DbscanParams params{.dim = 2, .eps = 1, .min_pts = 2, .rho = 0.1};
  EXPECT_TRUE(StaticApproxDbscan({}, params).groups.empty());
  const auto one = StaticApproxDbscan({Point{0, 0}}, params);
  EXPECT_TRUE(one.groups.empty());
  EXPECT_EQ(one.noise.size(), 1u);
  const auto pair =
      StaticApproxDbscan({Point{0, 0}, Point{0.1, 0}}, params);
  ASSERT_EQ(pair.groups.size(), 1u);
  EXPECT_EQ(pair.groups[0].size(), 2u);
}

}  // namespace
}  // namespace ddc
