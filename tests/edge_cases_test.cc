#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/semi_dynamic_clusterer.h"
#include "core/static_dbscan.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

// Degenerate and adversarial inputs across the clusterers.

TEST(EdgeCaseTest, DuplicatePointsCount) {
  // min_pts identical points at one location are all core, one cluster.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = 0.0};
  FullyDynamicClusterer c(params);
  std::vector<PointId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(c.Insert(Point{4.2, 4.2}));
  auto r = c.QueryAll();
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].size(), 3u);
  // Deleting one leaves two identical non-core points: noise.
  c.Delete(ids[0]);
  r = c.QueryAll();
  EXPECT_TRUE(r.groups.empty());
  EXPECT_EQ(r.noise.size(), 2u);
}

TEST(EdgeCaseTest, MinPtsOneNeverHasNoise) {
  DbscanParams params{.dim = 3, .eps = 0.5, .min_pts = 1, .rho = 0.0};
  Rng rng(44);
  FullyDynamicClusterer c(params);
  for (const Point& p : UniformPoints(rng, 60, 3, 10.0)) c.Insert(p);
  const auto r = c.QueryAll();
  EXPECT_TRUE(r.noise.empty());
  size_t members = 0;
  for (const auto& g : r.groups) members += g.size();
  EXPECT_EQ(members, 60u);
}

TEST(EdgeCaseTest, NegativeAndLargeCoordinates) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 2, .rho = 0.0};
  SemiDynamicClusterer c(params);
  const PointId a = c.Insert(Point{-1e7, -1e7});
  const PointId b = c.Insert(Point{-1e7 + 0.5, -1e7});
  const PointId far = c.Insert(Point{1e7, 1e7});
  auto r = c.Query({a, b, far});
  r.Canonicalize();
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0], (std::vector<PointId>{a, b}));
  EXPECT_EQ(r.noise, (std::vector<PointId>{far}));
}

TEST(EdgeCaseTest, PointsOnCellBoundaries) {
  // Points exactly on grid lines (side = eps/sqrt(2) ≈ 0.7071) must behave
  // per the half-open cell convention and still cluster correctly.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 2, .rho = 0.0};
  const double side = 1.0 / std::sqrt(2.0);
  FullyDynamicClusterer c(params);
  const PointId a = c.Insert(Point{side, side});          // Cell (1,1) corner.
  const PointId b = c.Insert(Point{side - 1e-9, side});   // Cell (0,1).
  const PointId d = c.Insert(Point{side, side - 1e-9});   // Cell (1,0).
  auto r = c.Query({a, b, d});
  r.Canonicalize();
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].size(), 3u);
}

TEST(EdgeCaseTest, EmptyQueryOnEmptyClusterer) {
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 2, .rho = 0.1};
  FullyDynamicClusterer c(params);
  const auto r = c.Query({});
  EXPECT_TRUE(r.groups.empty());
  EXPECT_TRUE(r.noise.empty());
  EXPECT_TRUE(c.QueryAll().groups.empty());
}

TEST(EdgeCaseTest, RepeatedInsertDeleteChurnAtOneLocation) {
  // Pathological churn: the same spot flips between core and non-core,
  // exercising aBCP instance creation/destruction and log growth.
  DbscanParams params{.dim = 2, .eps = 1.0, .min_pts = 2, .rho = 0.0};
  FullyDynamicClusterer c(params);
  const PointId anchor = c.Insert(Point{0, 0});
  // A neighbor in the adjacent cell so cross-cell edges churn too.
  for (int round = 0; round < 200; ++round) {
    const PointId p = c.Insert(Point{0.8, 0.0});
    auto r = c.Query({anchor, p});
    ASSERT_EQ(r.groups.size(), 1u);
    c.Delete(p);
    r = c.Query({anchor});
    ASSERT_TRUE(r.groups.empty());
  }
  EXPECT_EQ(c.size(), 1);
}

TEST(EdgeCaseTest, HighDimensionalSmoke) {
  // d = kMaxDim end to end against the oracle.
  DbscanParams params{.dim = 8, .eps = 2.5, .min_pts = 3, .rho = 0.0};
  Rng rng(88);
  FullyDynamicClusterer c(params);
  const auto pts = BlobPoints(rng, 80, 8, 6.0, 3, 1.0, 0.1);
  std::vector<PointId> ids;
  for (const auto& p : pts) ids.push_back(c.Insert(p));
  for (int i = 0; i < 20; ++i) c.Delete(ids[i]);

  std::vector<PointId> alive = c.AlivePoints();
  std::vector<Point> alive_pts;
  for (const PointId id : alive) alive_pts.push_back(c.grid().point(id));
  auto got = c.QueryAll();
  got.Canonicalize();
  const auto want = StaticDbscan(alive_pts, params).ToGroups(alive);
  EXPECT_EQ(got, want);
}

TEST(EdgeCaseTest, RhoNearOneStillSandwiches) {
  // Extreme slack rho = 0.9: results may be very coarse but must stay
  // inside the sandwich.
  DbscanParams params{.dim = 2, .eps = 0.5, .min_pts = 3, .rho = 0.9};
  Rng rng(55);
  FullyDynamicClusterer c(params);
  const auto pts = BlobPoints(rng, 150, 2, 8.0, 4, 0.7, 0.2);
  std::vector<PointId> ids;
  for (const auto& p : pts) ids.push_back(c.Insert(p));
  for (int i = 0; i < 50; ++i) c.Delete(ids[i]);

  std::vector<PointId> alive = c.AlivePoints();
  std::vector<Point> alive_pts;
  for (const PointId id : alive) alive_pts.push_back(c.grid().point(id));
  auto got = c.QueryAll();
  got.Canonicalize();
  const auto lower = StaticDbscan(alive_pts, params).ToGroups(alive);
  DbscanParams outer = params;
  outer.eps = params.eps_outer();
  const auto upper = StaticDbscan(alive_pts, outer).ToGroups(alive);
  std::string why;
  EXPECT_TRUE(CheckSandwich(lower, got, upper, &why)) << why;
}

}  // namespace
}  // namespace ddc
