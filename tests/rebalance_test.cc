#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/static_dbscan.h"
#include "engine/sharded_clusterer.h"
#include "persist/snapshot_io.h"
#include "scenario/scenario.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// Elastic shard rebalancing: correctness of live split/merge against the
/// exact oracle, the lock-free routing-map swap under concurrent readers
/// (run under TSan in CI), persistence of post-split snapshots, and the
/// stable-id gauge keying that keeps telemetry truthful across reshapes.

/// Aggressive controller settings so the small test workloads cross split
/// and merge epochs quickly: one-epoch trigger streaks, no cooldown, a tiny
/// activation floor.
ShardedClusterer::Options RebalancingOptions(int shards) {
  ShardedClusterer::Options options;
  options.shards = shards;
  options.threads = shards;
  options.batch = 16;
  options.warmup = 64;
  options.rebalance.enabled = true;
  options.rebalance.split_imbalance = 1.3;
  options.rebalance.epochs = 1;
  options.rebalance.cooldown = 0;
  options.rebalance.min_points = 32;
  // A tight ceiling: once the drifting hot band has split its way up to 6
  // slabs, further splits must first merge a cold pair to free budget, so
  // every run exercises both reshape directions.
  options.rebalance.max_shards = 6;
  return options;
}

/// A migrating hotspot: the hot band drifts along dim 0 every `period`
/// updates, so slabs heat up, split, cool down and merge over one run.
Workload MigratingHotspot(int n, int period, uint64_t seed) {
  const std::string spec =
      "hotspot-migrate:n=" + std::to_string(n) +
      ",period=" + std::to_string(period) +
      ",hot=0.9,band=0.1,clusters=3,cold=3,dim=2,extent=2500,qevery=0";
  return BuildScenarioWorkload(spec, seed);
}

/// The sandwich harness from conformance_test, inlined for one engine: at
/// every checkpoint the reported clustering refines exact DBSCAN at
/// (1+rho)·eps and is refined by exact DBSCAN at eps; verbatim equality at
/// rho == 0. Split/merge epochs give the engine every chance to corrupt
/// routing, ghost replication or the stitch — the oracle does not care how
/// the points are sharded.
class RebalanceConformanceTest : public ::testing::TestWithParam<double> {};

TEST_P(RebalanceConformanceTest, SplitAndMergeTrackTheOracleAcrossEpochs) {
  const double rho = GetParam();
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5, .rho = rho};
  const Workload w = MigratingHotspot(1800, 300, 47);

  ShardedClusterer engine(params, RebalancingOptions(4));
  std::vector<PointId> ids(w.points.size(), kInvalidPoint);
  int64_t updates = 0;
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    ApplyOp(engine, w, op, ids);
    // Flush often: every dirty Flush is a stitch epoch and thus a chance
    // for the controller to act, so the checkpoints below genuinely land
    // on both sides of split/merge boundaries.
    if (++updates % 40 == 0) engine.Flush();
    if (updates % 150 != 0 && updates != w.num_updates) continue;

    const CGroupByResult reported =
        RemapToInsertionIndex(engine.QueryAll(), ids);
    const CGroupByResult lower = OracleOverAlive(w.points, ids, params);
    if (rho == 0) {
      ASSERT_EQ(reported, lower)
          << "rho == 0 must reproduce exact DBSCAN verbatim (update "
          << updates << ", " << engine.rebalance_splits() << " splits, "
          << engine.rebalance_merges() << " merges so far)";
      continue;
    }
    DbscanParams outer = params;
    outer.eps = params.eps_outer();
    outer.rho = 0;
    const CGroupByResult upper = OracleOverAlive(w.points, ids, outer);
    std::string why;
    ASSERT_TRUE(CheckSandwich(lower, reported, upper, &why))
        << why << " (update " << updates << ", "
        << engine.rebalance_splits() << " splits, "
        << engine.rebalance_merges() << " merges so far)";
  }

  // The run must actually have exercised the machinery under test: the
  // drifting hot band forces splits, and the slabs it abandons cool down
  // below the merge threshold.
  EXPECT_GT(engine.rebalance_splits(), 0);
  EXPECT_GT(engine.rebalance_merges(), 0);
  EXPECT_EQ(engine.size(), w.num_inserts - w.num_deletes);
  EXPECT_EQ(engine.shard_map().shards(),
            static_cast<int>(engine.shard_map().cuts().size()) + 1);
}

INSTANTIATE_TEST_SUITE_P(Rho, RebalanceConformanceTest,
                         ::testing::Values(0.0, 0.001, 0.1),
                         [](const auto& info) {
                           return info.param == 0.0     ? "Exact"
                                  : info.param == 0.001 ? "TinyRho"
                                                        : "WideRho";
                         });

/// The routing-map swap must be invisible to concurrent readers: four
/// threads hammer CurrentSnapshot() while the ingest thread drives
/// aggressive split/merge cycles. Each reader checks every snapshot is
/// internally consistent — the queried alive set is partitioned exactly by
/// groups + noise — which a torn routing map or a snapshot referencing a
/// destroyed shard would break. This is the CI TSan target for the
/// rebalance data-race surface.
TEST(RebalanceTest, RoutingSwapIsInvisibleToConcurrentReaders) {
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5,
                            .rho = 0.001};
  const Workload w = MigratingHotspot(1500, 250, 53);

  ShardedClusterer engine(params, RebalancingOptions(4));
  std::atomic<PointId> max_id{-1};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  std::vector<int64_t> reads(4, 0);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = engine.CurrentSnapshot();
        if (snap == nullptr) continue;
        const PointId hi = max_id.load(std::memory_order_acquire);
        std::vector<PointId> q;
        for (PointId id = 0; id <= hi; ++id) {
          if (snap->alive(id)) q.push_back(id);
        }
        if (q.empty()) continue;
        const CGroupByResult result = snap->Query(q);
        size_t covered = result.noise.size();
        std::set<PointId> seen(result.noise.begin(), result.noise.end());
        for (const auto& g : result.groups) {
          covered += g.size();
          seen.insert(g.begin(), g.end());
        }
        // Exactly the queried ids, each exactly once — over the whole
        // group-by result, whatever epoch this snapshot belongs to.
        ASSERT_EQ(covered, q.size());
        ASSERT_EQ(seen.size(), q.size());
        ++reads[r];
      }
    });
  }

  std::vector<PointId> ids(w.points.size(), kInvalidPoint);
  int64_t updates = 0;
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    if (op.type == Operation::Type::kInsert) {
      ids[op.target] = engine.Insert(w.points[op.target]);
      max_id.store(std::max(max_id.load(std::memory_order_relaxed),
                            ids[op.target]),
                   std::memory_order_release);
    } else {
      engine.Delete(ids[op.target]);
      ids[op.target] = kInvalidPoint;
    }
    if (++updates % 30 == 0) engine.Flush();
  }
  engine.Flush();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GT(engine.rebalance_splits(), 0);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(reads[r], 0) << "reader " << r << " never completed a query";
  }
}

/// A post-split (and post-merge) ShardedSnapshot must survive the disk
/// round-trip bit-identically: the reshaped routing records, per-shard
/// snapshots and stitch table all serialize, and the loaded copy answers
/// Query exactly like the live one.
TEST(RebalanceTest, PostSplitSnapshotRoundTripsThroughDisk) {
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5,
                            .rho = 0.001};
  const Workload w = MigratingHotspot(1000, 250, 59);

  ShardedClusterer engine(params, RebalancingOptions(4));
  std::vector<PointId> ids(w.points.size(), kInvalidPoint);
  int64_t updates = 0;
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    ApplyOp(engine, w, op, ids);
    if (++updates % 40 == 0) engine.Flush();
  }
  const auto live = engine.Snapshot();
  ASSERT_GT(engine.rebalance_splits(), 0)
      << "workload failed to trigger a split; nothing under test";

  const std::string path =
      (std::filesystem::temp_directory_path() / "ddc_rebalance_snap.snap")
          .string();
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*live, params, 0, path, &error)) << error;
  SnapshotMeta meta;
  const auto loaded = LoadSnapshot(path, &meta, &error);
  std::filesystem::remove(path);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(meta.kind, "sharded");

  std::vector<PointId> q;
  for (PointId id = 0; id < static_cast<PointId>(w.points.size()); ++id) {
    if (live->alive(id)) q.push_back(id);
  }
  ASSERT_EQ(static_cast<int64_t>(q.size()), engine.size());
  EXPECT_EQ(loaded->size(), live->size());
  CGroupByResult a = live->Query(q);
  CGroupByResult b = loaded->Query(q);
  a.Canonicalize();
  b.Canonicalize();
  EXPECT_EQ(a, b) << "loaded snapshot diverged from the live one";
}

/// Gauges key on stable shard ids, so a reshape must (a) zero every retired
/// shard's gauges — stale occupancy would double-count — and (b) keep the
/// live gauges summing to the alive population. This is the telemetry
/// contract PublishShardMetrics documents.
TEST(RebalanceTest, RetiredShardGaugesAreZeroedAndLiveOnesSum) {
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5,
                            .rho = 0.001};
  const Workload w = MigratingHotspot(1000, 250, 61);

  ShardedClusterer engine(params, RebalancingOptions(4));
  std::vector<PointId> ids(w.points.size(), kInvalidPoint);
  int64_t updates = 0;
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    ApplyOp(engine, w, op, ids);
    if (++updates % 40 == 0) {
      engine.Flush();
      // Publish mid-run too: retired ids must be zeroed at the *next*
      // publish after the reshape, not only at the end.
      if (updates % 200 == 0) engine.PublishShardMetrics();
    }
  }
  engine.PublishShardMetrics();
  ASSERT_GT(engine.rebalance_splits(), 0);
  const int live_shards = engine.shard_map().shards();

  const MetricsRegistry& registry = MetricsRegistry::Instance();
  EXPECT_EQ(registry.ValueOf("engine.shards", -1), live_shards);
  EXPECT_EQ(registry.ValueOf("engine.shard_imbalance", -1),
            engine.shard_imbalance_milli());

  // Splits/merges retire ids, so more ids exist than live shards. Absent
  // gauges read as 0 here; stale (unretired) gauges would break the sum.
  int64_t owned_sum = 0;
  int ids_with_occupancy = 0;
  std::set<int64_t> slabs_seen;
  for (int id = 0; id < ShardedClusterer::kMaxShards; ++id) {
    const int64_t owned =
        registry.ValueOf(ShardedClusterer::ShardMetricName(id, "owned"), 0);
    owned_sum += owned;
    if (owned > 0) {
      ++ids_with_occupancy;
      slabs_seen.insert(
          registry.ValueOf(ShardedClusterer::ShardMetricName(id, "slab"),
                           -1));
    }
  }
  EXPECT_EQ(owned_sum, engine.size())
      << "per-id owned gauges must partition the alive set; a stale "
         "retired-shard gauge double-counts";
  EXPECT_LE(ids_with_occupancy, live_shards);
  // Occupied shards sit at distinct slab positions within the live range.
  for (const int64_t slab : slabs_seen) {
    EXPECT_GE(slab, 0);
    EXPECT_LT(slab, live_shards);
  }
  EXPECT_EQ(static_cast<int>(slabs_seen.size()), ids_with_occupancy);
}

/// Disabled controller: the imbalance gauge is still maintained (operators
/// can see the skew they are not yet acting on) but the topology never
/// changes.
TEST(RebalanceTest, DisabledControllerOnlyObserves) {
  const DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5,
                            .rho = 0.001};
  const Workload w = MigratingHotspot(600, 200, 67);

  ShardedClusterer::Options options = RebalancingOptions(4);
  options.rebalance.enabled = false;
  ShardedClusterer engine(params, options);
  std::vector<PointId> ids(w.points.size(), kInvalidPoint);
  int64_t updates = 0;
  for (const Operation& op : w.ops) {
    if (op.type == Operation::Type::kQuery) continue;
    ApplyOp(engine, w, op, ids);
    if (++updates % 50 == 0) engine.Flush();
  }
  engine.Flush();
  EXPECT_EQ(engine.rebalance_splits(), 0);
  EXPECT_EQ(engine.rebalance_merges(), 0);
  EXPECT_EQ(engine.shard_map().shards(), 4);
  // The migrating hot band leaves a genuinely skewed static partition.
  EXPECT_GT(engine.shard_imbalance_milli(), 1000);
}

}  // namespace
}  // namespace ddc
