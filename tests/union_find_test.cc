#include <gtest/gtest.h>

#include "common/random.h"
#include "unionfind/union_find.h"

namespace ddc {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // Already merged.
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_components(), 3);
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_TRUE(uf.Union(0, 3));
  EXPECT_TRUE(uf.Connected(1, 2));
  EXPECT_EQ(uf.num_components(), 1);
}

TEST(UnionFindTest, EnsureSizeGrows) {
  UnionFind uf;
  uf.EnsureSize(2);
  uf.Union(0, 1);
  uf.EnsureSize(4);
  EXPECT_EQ(uf.num_components(), 3);
  EXPECT_FALSE(uf.Connected(1, 3));
}

// Randomized cross-check against a naive labeling.
TEST(UnionFindTest, MatchesNaiveLabels) {
  const int n = 200;
  Rng rng(123);
  UnionFind uf(n);
  std::vector<int> label(n);
  for (int i = 0; i < n; ++i) label[i] = i;

  for (int step = 0; step < 500; ++step) {
    const int a = static_cast<int>(rng.NextBelow(n));
    const int b = static_cast<int>(rng.NextBelow(n));
    uf.Union(a, b);
    const int la = label[a], lb = label[b];
    if (la != lb) {
      for (int i = 0; i < n; ++i) {
        if (label[i] == lb) label[i] = la;
      }
    }
    // Spot-check a few pairs.
    for (int probe = 0; probe < 10; ++probe) {
      const int x = static_cast<int>(rng.NextBelow(n));
      const int y = static_cast<int>(rng.NextBelow(n));
      EXPECT_EQ(uf.Connected(x, y), label[x] == label[y]);
    }
  }
}

}  // namespace
}  // namespace ddc
