#include <vector>

#include <gtest/gtest.h>

#include "core/cluster_query.h"
#include "grid/grid.h"

namespace ddc {
namespace {

// Drives RunCGroupByQuery directly with scripted hooks, independent of any
// clusterer, to pin down the Section 4.2 semantics.
class ClusterQueryTest : public ::testing::Test {
 protected:
  ClusterQueryTest() : grid_(2, 1.0) {}

  PointId Add(double x, double y) { return grid_.Insert(Point{x, y}).id; }

  Grid grid_;
};

TEST_F(ClusterQueryTest, CorePointsGroupByComponentId) {
  const PointId a = Add(0, 0);
  const PointId b = Add(5, 5);
  const PointId c = Add(5.1, 5.1);

  QueryHooks hooks;
  hooks.is_core = [](PointId) { return true; };
  hooks.is_core_cell = [](CellId) { return true; };
  // Component = cell of b/c vs cell of a.
  hooks.cc_id = [&](CellId cell) -> uint64_t {
    return cell == grid_.cell_of(a) ? 1 : 2;
  };
  hooks.empty = [](const Point&, CellId) { return kInvalidPoint; };

  auto r = RunCGroupByQuery(grid_, {a, b, c}, hooks);
  r.Canonicalize();
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0], (std::vector<PointId>{a}));
  EXPECT_EQ(r.groups[1], (std::vector<PointId>{b, c}));
  EXPECT_TRUE(r.noise.empty());
}

TEST_F(ClusterQueryTest, NonCoreSnapsToMultipleClusters) {
  // A non-core point whose emptiness query succeeds against two ε-close
  // core cells with different CC ids joins both groups.
  const PointId left = Add(0.0, 0.0);
  const PointId right = Add(1.2, 0.0);  // Different cell (side ≈ 0.707).
  const PointId border = Add(0.6, 0.0);

  const CellId cl = grid_.cell_of(left);
  const CellId cr = grid_.cell_of(right);

  QueryHooks hooks;
  hooks.is_core = [&](PointId p) { return p != border; };
  hooks.is_core_cell = [&](CellId c) { return c == cl || c == cr; };
  hooks.cc_id = [&](CellId c) -> uint64_t { return c == cl ? 10 : 20; };
  hooks.empty = [&](const Point&, CellId c) {
    return c == cl ? left : (c == cr ? right : kInvalidPoint);
  };

  auto r = RunCGroupByQuery(grid_, {left, right, border}, hooks);
  r.Canonicalize();
  ASSERT_EQ(r.groups.size(), 2u);
  // border appears in both groups.
  EXPECT_EQ(r.groups[0], (std::vector<PointId>{left, border}));
  EXPECT_EQ(r.groups[1], (std::vector<PointId>{right, border}));
}

TEST_F(ClusterQueryTest, NonCoreWithNoProofIsNoise) {
  const PointId lonely = Add(9, 9);
  QueryHooks hooks;
  hooks.is_core = [](PointId) { return false; };
  hooks.is_core_cell = [](CellId) { return false; };
  hooks.cc_id = [](CellId) -> uint64_t { return 0; };
  hooks.empty = [](const Point&, CellId) { return kInvalidPoint; };

  const auto r = RunCGroupByQuery(grid_, {lonely}, hooks);
  EXPECT_TRUE(r.groups.empty());
  EXPECT_EQ(r.noise, (std::vector<PointId>{lonely}));
}

TEST_F(ClusterQueryTest, DeadPointsAreSkipped) {
  const PointId a = Add(0, 0);
  const PointId b = Add(0.1, 0);
  grid_.Delete(b);

  QueryHooks hooks;
  hooks.is_core = [](PointId) { return true; };
  hooks.is_core_cell = [](CellId) { return true; };
  hooks.cc_id = [](CellId) -> uint64_t { return 1; };
  hooks.empty = [](const Point&, CellId) { return kInvalidPoint; };

  auto r = RunCGroupByQuery(grid_, {a, b}, hooks);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0], (std::vector<PointId>{a}));
}

TEST(CanonicalizeTest, SortsGroupsAndMembers) {
  CGroupByResult r;
  r.groups = {{5, 3}, {2, 9, 1}};
  r.noise = {7, 0};
  r.Canonicalize();
  EXPECT_EQ(r.groups, (std::vector<std::vector<PointId>>{{1, 2, 9}, {3, 5}}));
  EXPECT_EQ(r.noise, (std::vector<PointId>{0, 7}));
}

}  // namespace
}  // namespace ddc
