#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/static_dbscan.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

TEST(StaticDbscanTest, EmptyInput) {
  const auto c = StaticDbscan({}, DbscanParams{.dim = 2, .eps = 1, .min_pts = 2});
  EXPECT_EQ(c.num_clusters, 0);
}

TEST(StaticDbscanTest, SinglePointIsNoise) {
  const auto c = StaticDbscan({Point{0, 0}},
                              DbscanParams{.dim = 2, .eps = 1, .min_pts = 2});
  EXPECT_EQ(c.num_clusters, 0);
  EXPECT_FALSE(c.is_core[0]);
  EXPECT_TRUE(c.cluster_ids[0].empty());
}

TEST(StaticDbscanTest, MinPtsOneMakesEverythingCore) {
  const std::vector<Point> pts = {Point{0, 0}, Point{10, 10}};
  const auto c =
      StaticDbscan(pts, DbscanParams{.dim = 2, .eps = 1, .min_pts = 1});
  EXPECT_EQ(c.num_clusters, 2);
  EXPECT_TRUE(c.is_core[0]);
  EXPECT_TRUE(c.is_core[1]);
}

TEST(StaticDbscanTest, TwoClustersAndNoise) {
  // Cluster A around (0,0), cluster B around (10,0), one stray point.
  std::vector<Point> pts;
  for (int i = 0; i < 5; ++i) pts.push_back(Point{0.1 * i, 0.0});
  for (int i = 0; i < 5; ++i) pts.push_back(Point{10 + 0.1 * i, 0.0});
  pts.push_back(Point{5, 5});

  const auto c =
      StaticDbscan(pts, DbscanParams{.dim = 2, .eps = 0.5, .min_pts = 3});
  EXPECT_EQ(c.num_clusters, 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(c.is_core[i]) << i;
    ASSERT_EQ(c.cluster_ids[i].size(), 1u);
  }
  EXPECT_EQ(c.cluster_ids[0], c.cluster_ids[4]);
  EXPECT_EQ(c.cluster_ids[5], c.cluster_ids[9]);
  EXPECT_NE(c.cluster_ids[0][0], c.cluster_ids[5][0]);
  EXPECT_TRUE(c.cluster_ids[10].empty());  // Noise.
}

TEST(StaticDbscanTest, BorderPointInTwoClusters) {
  // Two tight quads, and a border point within eps of exactly one core
  // point of each quad but itself non-core: DBSCAN assigns it to both
  // clusters (clusters need not be disjoint).
  std::vector<Point> pts = {
      Point{0, 0},   Point{0.1, 0},   Point{0, 0.1},   Point{0.1, 0.1},  // A
      Point{2.2, 0}, Point{2.1, 0},   Point{2.2, 0.1}, Point{2.1, 0.1},  // B
      Point{1.1, 0},                                   // border point
  };
  // eps = 1.002: border reaches (0.1, 0) and (2.1, 0) at distance 1.0; every
  // other quad member is at distance >= 1.005. So B(border, eps) holds only 3
  // points < min_pts = 4 => non-core; each quad member covers its 4 mates
  // (distances <= 0.15) => core.
  const auto c =
      StaticDbscan(pts, DbscanParams{.dim = 2, .eps = 1.002, .min_pts = 4});
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(c.is_core[i]) << i;
  EXPECT_FALSE(c.is_core[8]);
  ASSERT_EQ(c.num_clusters, 2);
  EXPECT_EQ(c.cluster_ids[8].size(), 2u);  // Member of both clusters.
}

TEST(StaticDbscanTest, ChainTransitivity) {
  // A chain of points each within eps of the next forms one cluster even
  // though the endpoints are far apart ("transitivity of proximity").
  std::vector<Point> pts;
  for (int i = 0; i < 20; ++i) pts.push_back(Point{0.9 * i, 0.0});
  const auto c =
      StaticDbscan(pts, DbscanParams{.dim = 2, .eps = 1.0, .min_pts = 2});
  EXPECT_EQ(c.num_clusters, 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c.cluster_ids[i].size(), 1u);
}

TEST(StaticDbscanTest, GroupsRoundTrip) {
  Rng rng(3);
  const auto pts = BlobPoints(rng, 120, 2, 10.0, 3, 0.6, 0.1);
  const DbscanParams params{.dim = 2, .eps = 0.7, .min_pts = 4};
  const auto c = StaticDbscan(pts, params);
  const CGroupByResult groups = c.ToGroups();
  // Every non-noise point appears in as many groups as it has cluster ids.
  size_t members = 0;
  for (const auto& g : groups.groups) members += g.size();
  size_t want = 0;
  for (const auto& ids : c.cluster_ids) want += ids.size();
  EXPECT_EQ(members, want);
  EXPECT_EQ(groups.groups.size(), static_cast<size_t>(c.num_clusters));
}

TEST(StaticDbscanTest, MonotoneInEps) {
  // Growing eps can only merge/grow clusters: the sandwich checker with
  // identical lower==reported must accept (lower at eps, upper at 2*eps).
  Rng rng(17);
  const auto pts = BlobPoints(rng, 150, 3, 8.0, 4, 0.9, 0.15);
  DbscanParams lo{.dim = 3, .eps = 0.8, .min_pts = 4, .rho = 0.0};
  DbscanParams hi = lo;
  hi.eps = 1.6;
  const auto lower = StaticDbscan(pts, lo).ToGroups();
  const auto upper = StaticDbscan(pts, hi).ToGroups();
  std::string why;
  EXPECT_TRUE(CheckSandwich(lower, lower, upper, &why)) << why;
}

TEST(CheckSandwichTest, DetectsViolation) {
  // lower = {0,1} together; reported splits them; must fail.
  CGroupByResult lower;
  lower.groups = {{0, 1}};
  CGroupByResult reported;
  reported.groups = {{0}, {1}};
  CGroupByResult upper;
  upper.groups = {{0, 1}};
  std::string why;
  EXPECT_FALSE(CheckSandwich(lower, reported, upper, &why));
  EXPECT_FALSE(why.empty());
  // And the reverse direction: reported merges what upper separates.
  CGroupByResult upper2;
  upper2.groups = {{0}, {1}};
  EXPECT_FALSE(CheckSandwich(reported, lower, upper2, &why));
}

}  // namespace
}  // namespace ddc
