#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/histogram.h"

namespace ddc {
namespace {

using Hist = LatencyHistogram;

TEST(HistogramTest, EmptyHistogram) {
  const Hist h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0);
}

TEST(HistogramTest, BucketEdgesAreGeometric) {
  // Consecutive edges differ by exactly 2^(1/8); eight buckets per octave.
  const double ratio = Hist::BucketUpperEdge(1) / Hist::BucketUpperEdge(0);
  EXPECT_NEAR(ratio, std::exp2(1.0 / Hist::kBucketsPerOctave), 1e-12);
  EXPECT_NEAR(Hist::BucketUpperEdge(Hist::kBucketsPerOctave),
              2.0 * Hist::BucketUpperEdge(0), 1e-12);
  EXPECT_DOUBLE_EQ(Hist::BucketUpperEdge(0), Hist::kMinValue);
}

TEST(HistogramTest, BucketIndexMapsIntoCoveringBucket) {
  // Bucket i covers (UpperEdge(i-1), UpperEdge(i)].
  for (const double v : {0.002, 0.5, 1.0, 3.7, 1000.0, 123456.0}) {
    const int i = Hist::BucketIndex(v);
    ASSERT_GE(i, 0);
    EXPECT_LE(v, Hist::BucketUpperEdge(i) * (1 + 1e-12)) << v;
    if (i > 0) {
      EXPECT_GT(v, Hist::BucketUpperEdge(i - 1) * (1 - 1e-12)) << v;
    }
  }
  // Tiny, zero, negative, and NaN samples land in bucket 0 instead of UB.
  EXPECT_EQ(Hist::BucketIndex(0.0), 0);
  EXPECT_EQ(Hist::BucketIndex(1e-9), 0);
  EXPECT_EQ(Hist::BucketIndex(-3.0), 0);
  EXPECT_EQ(Hist::BucketIndex(std::nan("")), 0);
  // Absurdly large samples clamp into the last bucket.
  EXPECT_EQ(Hist::BucketIndex(1e300), Hist::kNumBuckets - 1);
}

TEST(HistogramTest, ExactAggregatesOnSyntheticSamples) {
  Hist h;
  const std::vector<double> samples = {4.0, 1.0, 9.0, 1.0, 25.0};
  for (const double v : samples) h.Record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 40.0);
  EXPECT_DOUBLE_EQ(h.mean(), 8.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
}

TEST(HistogramTest, QuantileExactSemanticsOnSyntheticSamples) {
  // Quantile(q) is defined as the upper edge of the bucket holding the
  // ceil(q * count)-th smallest sample, capped at the exact maximum — so on
  // known samples the expected value is computable exactly.
  Hist h;
  const std::vector<double> sorted = {1.0, 2.0, 4.0, 8.0, 16.0,
                                      32.0, 64.0, 128.0, 256.0, 512.0};
  for (const double v : sorted) h.Record(v);

  auto expected = [&](double q) {
    const int64_t rank = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(q * 10)));
    const double sample = sorted[rank - 1];
    return std::min(Hist::BucketUpperEdge(Hist::BucketIndex(sample)),
                    h.max());
  };
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), expected(q)) << "q=" << q;
  }
  // The top quantiles are capped at the true maximum, never a bucket edge
  // beyond it.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 512.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.999), 512.0);
}

TEST(HistogramTest, QuantileRelativeErrorIsBoundedByBucketWidth) {
  // 10k distinct samples 1..10000: every quantile must come back within one
  // bucket width (2^(1/8) ≈ +9%) of the true order statistic.
  Hist h;
  for (int i = 1; i <= 10000; ++i) h.Record(static_cast<double>(i));
  const double width = std::exp2(1.0 / Hist::kBucketsPerOctave);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double truth = std::ceil(q * 10000);
    const double est = h.Quantile(q);
    EXPECT_GE(est * width, truth) << "q=" << q;
    EXPECT_LE(est, truth * width) << "q=" << q;
  }
}

TEST(HistogramTest, SingleValueHistogramReportsThatValueEverywhere) {
  Hist h;
  h.Record(7.25);
  for (const double q : {0.0, 0.5, 1.0}) {
    // Capped at max == the value itself (the bucket edge is above it).
    EXPECT_DOUBLE_EQ(h.Quantile(q), 7.25);
  }
}

TEST(HistogramTest, MergeFromCombinesCountsAndExtremes) {
  Hist a, b;
  a.Record(1.0);
  a.Record(10.0);
  b.Record(100.0);
  b.Record(0.5);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.sum(), 111.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), 100.0);

  // Merging an empty histogram is a no-op; merging into empty copies.
  Hist empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 4);
  Hist c;
  c.MergeFrom(a);
  EXPECT_EQ(c.count(), 4);
  EXPECT_DOUBLE_EQ(c.min(), 0.5);
}

}  // namespace
}  // namespace ddc
