#include <gtest/gtest.h>

#include "common/flags.h"
#include "core/params.h"

namespace ddc {
namespace {

Flags MakeFlags(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags(static_cast<int>(argv.size()),
               const_cast<char**>(argv.data()));
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = MakeFlags({"--n=500", "--rho=0.25", "--name=fig8"});
  EXPECT_EQ(f.GetInt("n", 0), 500);
  EXPECT_DOUBLE_EQ(f.GetDouble("rho", 0), 0.25);
  EXPECT_EQ(f.GetString("name", ""), "fig8");
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = MakeFlags({"--n", "42", "--verbose"});
  EXPECT_EQ(f.GetInt("n", 0), 42);
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = MakeFlags({});
  EXPECT_EQ(f.GetInt("n", 77), 77);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(f.GetBool("b", false));
  EXPECT_FALSE(f.Has("n"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags f = MakeFlags({"--fast"});
  EXPECT_TRUE(f.Has("fast"));
  EXPECT_TRUE(f.GetBool("fast", false));
}

TEST(ParamsTest, ValidateAcceptsPaperDefaults) {
  DbscanParams p{.dim = 3, .eps = 300, .min_pts = 10, .rho = 0.001};
  p.Validate();  // Must not abort.
  EXPECT_DOUBLE_EQ(p.eps_outer(), 300 * 1.001);
  EXPECT_NE(p.ToString().find("eps=300"), std::string::npos);
}

TEST(ParamsDeathTest, RejectsBadValues) {
  EXPECT_DEATH(DbscanParams({.dim = 0}).Validate(), "dim");
  EXPECT_DEATH(DbscanParams({.dim = 2, .eps = -1}).Validate(), "eps");
  EXPECT_DEATH(DbscanParams({.dim = 2, .eps = 1, .min_pts = 0}).Validate(),
               "min_pts");
  EXPECT_DEATH(
      DbscanParams({.dim = 2, .eps = 1, .min_pts = 1, .rho = 1.5}).Validate(),
      "rho");
}

}  // namespace
}  // namespace ddc
