#include <gtest/gtest.h>

#include "common/flags.h"
#include "core/params.h"

namespace ddc {
namespace {

Flags MakeFlags(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Flags(static_cast<int>(argv.size()),
               const_cast<char**>(argv.data()));
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = MakeFlags({"--n=500", "--rho=0.25", "--name=fig8"});
  EXPECT_EQ(f.GetInt("n", 0), 500);
  EXPECT_DOUBLE_EQ(f.GetDouble("rho", 0), 0.25);
  EXPECT_EQ(f.GetString("name", ""), "fig8");
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = MakeFlags({"--n", "42", "--verbose"});
  EXPECT_EQ(f.GetInt("n", 0), 42);
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = MakeFlags({});
  EXPECT_EQ(f.GetInt("n", 77), 77);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(f.GetBool("b", false));
  EXPECT_FALSE(f.Has("n"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  const Flags f = MakeFlags({"--fast"});
  EXPECT_TRUE(f.Has("fast"));
  EXPECT_TRUE(f.GetBool("fast", false));
}

TEST(FlagsTest, UnknownFlagsAreKeptAndReadable) {
  // The parser is schema-free: flags nothing registered are still stored, so
  // a bench can probe experimental knobs without declaring them.
  const Flags f = MakeFlags({"--totally-unknown=7"});
  EXPECT_TRUE(f.Has("totally-unknown"));
  EXPECT_EQ(f.GetInt("totally-unknown", 0), 7);
  EXPECT_FALSE(f.Has("totally_unknown"));  // No name normalization.
}

TEST(FlagsTest, MalformedNumericValuesFallBackToZeroNotDefault) {
  // strtoll/strtod semantics: a present-but-unparsable value reads as 0,
  // not as the caller's default — the flag *was* provided.
  const Flags f = MakeFlags({"--n=abc", "--x=fast", "--b=yes"});
  EXPECT_EQ(f.GetInt("n", 42), 0);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 1.5), 0.0);
  EXPECT_FALSE(f.GetBool("b", true));  // Only "true"/"1" parse as true.
}

TEST(FlagsTest, PartiallyNumericValuesParsePrefix) {
  const Flags f = MakeFlags({"--n=12abc", "--x=2.5km"});
  EXPECT_EQ(f.GetInt("n", 0), 12);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0), 2.5);
}

TEST(FlagsTest, EqualsAndSpaceSyntaxAreEquivalent) {
  const Flags a = MakeFlags({"--n=500", "--name=fig8"});
  const Flags b = MakeFlags({"--n", "500", "--name", "fig8"});
  EXPECT_EQ(a.GetInt("n", 0), b.GetInt("n", 0));
  EXPECT_EQ(a.GetString("name", ""), b.GetString("name", ""));
}

TEST(FlagsTest, EmptyEqualsValueIsPresentButEmpty) {
  const Flags f = MakeFlags({"--name="});
  EXPECT_TRUE(f.Has("name"));
  EXPECT_EQ(f.GetString("name", "dflt"), "");
  EXPECT_EQ(f.GetInt("name", 42), 0);
}

TEST(FlagsTest, SpaceSyntaxDoesNotConsumeFollowingFlag) {
  // `--a --b=1`: the next token starts with '-', so `a` becomes a bare
  // boolean instead of swallowing `--b=1` as its value.
  const Flags f = MakeFlags({"--a", "--b=1"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_EQ(f.GetInt("b", 0), 1);
}

TEST(FlagsTest, LastOccurrenceWins) {
  const Flags f = MakeFlags({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

TEST(FlagsDeathTest, SingleDashArgumentAborts) {
  EXPECT_DEATH(MakeFlags({"-n", "5"}), "DDC_CHECK failed");
}

TEST(FlagsDeathTest, BarePositionalArgumentAborts) {
  EXPECT_DEATH(MakeFlags({"value"}), "DDC_CHECK failed");
}

TEST(FlagsDeathTest, NegativeNumberAsSpaceSeparatedValueAborts) {
  // Known sharp edge: `--n -5` does not parse as n = -5. The leading '-'
  // makes `-5` look like the next flag, `n` becomes bare-true, and `-5`
  // itself fails the `--`-prefix check. Negative values need `--n=-5`.
  EXPECT_DEATH(MakeFlags({"--n", "-5"}), "DDC_CHECK failed");
  const Flags f = MakeFlags({"--n=-5"});
  EXPECT_EQ(f.GetInt("n", 0), -5);
}

TEST(ParseKeyValueListTest, EmptyStringYieldsEmptyList) {
  EXPECT_TRUE(ParseKeyValueList("").empty());
}

TEST(ParseKeyValueListTest, SingleAndMultipleEntries) {
  const auto one = ParseKeyValueList("n=200000");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].first, "n");
  EXPECT_EQ(one[0].second, "200000");

  const auto many = ParseKeyValueList("n=200000,dup=0.3,name=burst");
  ASSERT_EQ(many.size(), 3u);
  EXPECT_EQ(many[1].first, "dup");
  EXPECT_EQ(many[1].second, "0.3");
  EXPECT_EQ(many[2].second, "burst");
}

TEST(ParseKeyValueListTest, EmptyValueAndDocumentOrderKept) {
  const auto entries = ParseKeyValueList("b=,a=1,b=2");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "b");
  EXPECT_EQ(entries[0].second, "");  // Empty value is legal.
  EXPECT_EQ(entries[1].first, "a");
  EXPECT_EQ(entries[2].second, "2");  // Duplicates preserved, not merged.
}

TEST(ParseKeyValueListTest, ValueMayContainEquals) {
  // Only the first '=' splits, so values like base64 payloads survive.
  const auto entries = ParseKeyValueList("expr=a=b");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "expr");
  EXPECT_EQ(entries[0].second, "a=b");
}

TEST(ParseKeyValueListDeathTest, MalformedSpecsAbort) {
  EXPECT_DEATH(ParseKeyValueList("novalue"), "missing '='");
  EXPECT_DEATH(ParseKeyValueList("n=1,novalue"), "missing '='");
  EXPECT_DEATH(ParseKeyValueList("=5"), "empty key");
  EXPECT_DEATH(ParseKeyValueList(","), "empty item");
  EXPECT_DEATH(ParseKeyValueList("n=1,"), "empty item");
  EXPECT_DEATH(ParseKeyValueList(",n=1"), "empty item");
  EXPECT_DEATH(ParseKeyValueList("n=1,,m=2"), "empty item");
}

TEST(ParamsTest, ValidateAcceptsPaperDefaults) {
  DbscanParams p{.dim = 3, .eps = 300, .min_pts = 10, .rho = 0.001};
  p.Validate();  // Must not abort.
  EXPECT_DOUBLE_EQ(p.eps_outer(), 300 * 1.001);
  EXPECT_NE(p.ToString().find("eps=300"), std::string::npos);
}

TEST(ParamsDeathTest, RejectsBadValues) {
  EXPECT_DEATH(DbscanParams({.dim = 0}).Validate(), "dim");
  EXPECT_DEATH(DbscanParams({.dim = 2, .eps = -1}).Validate(), "eps");
  EXPECT_DEATH(DbscanParams({.dim = 2, .eps = 1, .min_pts = 0}).Validate(),
               "min_pts");
  EXPECT_DEATH(
      DbscanParams({.dim = 2, .eps = 1, .min_pts = 1, .rho = 1.5}).Validate(),
      "rho");
}

}  // namespace
}  // namespace ddc
