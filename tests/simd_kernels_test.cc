// Kernel-equivalence regression suite: the scalar reference
// (WithinSquared / WithinSquaredPacked), the dispatched batch kernel, and
// every SIMD variant the host can run must return *identical* verdicts —
// including at exact r_sq boundary ties — for the rho = 0 conformance
// guarantee (verbatim equality with the exact oracle) to survive the SIMD
// rewrite. Both the raw mask form and the wrapper forms (ForEach / Count /
// FindLast / Any) are fuzzed differentially against the scalar kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "geom/point.h"
#include "geom/simd_kernels.h"

namespace ddc {
namespace {

/// Every level the host CPU (and this build) can actually run. Always
/// contains kScalar; contains kAvx2/kAvx512 when dispatchable.
std::vector<SimdLevel> RunnableLevels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (FilterKernelForLevel(level) != nullptr) levels.push_back(level);
  }
  return levels;
}

/// A packed coordinate block of `n` rows of `dim` doubles around `q`, with
/// distances spread across hit / miss / near-boundary.
std::vector<double> RandomRows(Rng& rng, const Point& q, int n, int dim,
                               double spread) {
  std::vector<double> rows;
  rows.reserve(static_cast<size_t>(n) * dim);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < dim; ++i) {
      rows.push_back(q[i] + rng.NextDouble(-spread, spread));
    }
  }
  return rows;
}

TEST(SimdKernelsTest, ScalarLevelAlwaysRunnable) {
  ASSERT_NE(FilterKernelForLevel(SimdLevel::kScalar), nullptr);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx512), "avx512");
  // The dispatcher must have picked a runnable kernel.
  EXPECT_NE(FilterKernelForLevel(ActiveSimdLevel()), nullptr);
}

TEST(SimdKernelsTest, ForceScalarKnobPinsScalar) {
  // ResolveSimdLevel re-reads the environment on every call (the cached
  // ActiveSimdLevel resolved long ago), so the knob logic is testable
  // in-process.
  setenv("DDC_FORCE_SCALAR", "1", /*overwrite=*/1);
  EXPECT_EQ(simd_internal::ResolveSimdLevel(), SimdLevel::kScalar);
  setenv("DDC_FORCE_SCALAR", "0", 1);
  const SimdLevel unforced = simd_internal::ResolveSimdLevel();
  unsetenv("DDC_FORCE_SCALAR");
  EXPECT_EQ(simd_internal::ResolveSimdLevel(), unforced);
  // Whatever the CPU offers, the unforced pick must be runnable.
  EXPECT_NE(FilterKernelForLevel(unforced), nullptr);
}

TEST(SimdKernelsTest, MaskMatchesScalarKernelAcrossDims) {
  Rng rng(20240801);
  for (const SimdLevel level : RunnableLevels()) {
    const FilterWithinFn kernel = FilterKernelForLevel(level);
    for (int dim = 2; dim <= kMaxDim; ++dim) {
      for (int trial = 0; trial < 50; ++trial) {
        // Sizes straddle every lane boundary (4 and 8) and the chunk size.
        const int n = static_cast<int>(rng.NextBelow(40));
        Point q;
        for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(-100, 100);
        const std::vector<double> rows = RandomRows(rng, q, n, dim, 10.0);
        const double r = rng.NextDouble(0, 20.0);
        const double r_sq = r * r;

        std::vector<uint8_t> mask(n + 1, 0xAB);
        kernel(q.data(), rows.data(), n, dim, r_sq, mask.data());
        for (int j = 0; j < n; ++j) {
          EXPECT_EQ(mask[j] != 0,
                    WithinSquaredPacked(q, rows.data() + j * dim, dim, r_sq))
              << SimdLevelName(level) << " dim=" << dim << " j=" << j;
          EXPECT_TRUE(mask[j] == 0 || mask[j] == 1);
        }
        EXPECT_EQ(mask[n], 0xAB);  // No overwrite past n.
      }
    }
  }
}

TEST(SimdKernelsTest, ExactBoundaryTiesAgreeAcrossAllKernels) {
  // r_sq == the exact accumulated squared distance (same summation order as
  // every kernel lane) is a hit; one ulp below is a miss — for every
  // runnable variant, at every lane position.
  Rng rng(7);
  for (int dim = 2; dim <= kMaxDim; ++dim) {
    for (int trial = 0; trial < 30; ++trial) {
      const int n = 1 + static_cast<int>(rng.NextBelow(20));
      Point q;
      for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(-50, 50);
      const std::vector<double> rows = RandomRows(rng, q, n, dim, 5.0);
      // Tie against a random row: every row at that exact distance must
      // report "within" from every kernel.
      const int tie = static_cast<int>(rng.NextBelow(n));
      const double tie_sq =
          SquaredDistancePacked(q, rows.data() + tie * dim, dim);
      const double below_sq = std::nextafter(tie_sq, -1.0);
      for (const SimdLevel level : RunnableLevels()) {
        const FilterWithinFn kernel = FilterKernelForLevel(level);
        std::vector<uint8_t> at_tie(n), below(n);
        kernel(q.data(), rows.data(), n, dim, tie_sq, at_tie.data());
        kernel(q.data(), rows.data(), n, dim, below_sq, below.data());
        EXPECT_EQ(at_tie[tie], 1)
            << SimdLevelName(level) << " dim=" << dim << ": exact tie missed";
        for (int j = 0; j < n; ++j) {
          EXPECT_EQ(at_tie[j] != 0, WithinSquaredPacked(q, rows.data() + j * dim,
                                                        dim, tie_sq));
          EXPECT_EQ(below[j] != 0, WithinSquaredPacked(
                                       q, rows.data() + j * dim, dim, below_sq));
        }
      }
      // Point-form and packed-form scalar kernels agree at the tie too.
      Point tied;
      for (int i = 0; i < dim; ++i) tied[i] = rows[tie * dim + i];
      EXPECT_TRUE(WithinSquared(q, tied, dim, tie_sq));
      EXPECT_EQ(SquaredDistance(q, tied, dim), tie_sq);
    }
  }
}

TEST(SimdKernelsTest, DifferentialFuzzWrapperForms) {
  // The wrapper entry points (ForEach / Count / FindLast / Any) run on the
  // dispatched kernel; fuzz them against a scalar reference over randomized
  // d in {2..8}, sizes crossing the chunk boundary, and caps.
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const int dim = 2 + static_cast<int>(rng.NextBelow(kMaxDim - 1));
    const int n = static_cast<int>(rng.NextBelow(kSimdFilterChunk + 70));
    Point q;
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(-100, 100);
    const std::vector<double> rows = RandomRows(rng, q, n, dim, 8.0);
    const double r = rng.NextDouble(0, 16.0);
    const double r_sq = r * r;

    // Scalar reference.
    std::vector<int> hits;
    for (int j = 0; j < n; ++j) {
      if (WithinSquaredPacked(q, rows.data() + j * dim, dim, r_sq)) {
        hits.push_back(j);
      }
    }

    std::vector<int> got;
    ForEachWithinPacked(q, rows.data(), n, dim, r_sq,
                        [&](size_t j) { got.push_back(static_cast<int>(j)); });
    EXPECT_EQ(got, hits) << "dim=" << dim << " n=" << n;

    const int total = static_cast<int>(hits.size());
    for (const int cap : {0, 1, 3, total, total + 5, 1 << 28}) {
      EXPECT_EQ(CountWithinPacked(q, rows.data(), n, dim, r_sq, cap),
                std::min(total, std::max(cap, 0)))
          << "dim=" << dim << " n=" << n << " cap=" << cap;
    }

    EXPECT_EQ(FindLastWithinPacked(q, rows.data(), n, dim, r_sq),
              hits.empty() ? -1 : hits.back());
    EXPECT_EQ(AnyWithinPacked(q, rows.data(), n, dim, r_sq), !hits.empty());
  }
}

TEST(SimdKernelsTest, EmptyAndDegenerateInputs) {
  Point q{1, 2};
  const double rows[2] = {1, 2};
  uint8_t mask = 0xCD;
  for (const SimdLevel level : RunnableLevels()) {
    FilterKernelForLevel(level)(q.data(), rows, 0, 2, 1.0, &mask);
    EXPECT_EQ(mask, 0xCD) << SimdLevelName(level);
  }
  EXPECT_EQ(CountWithinPacked(q, rows, 0, 2, 1.0, 10), 0);
  EXPECT_EQ(FindLastWithinPacked(q, rows, 0, 2, 1.0), -1);
  EXPECT_FALSE(AnyWithinPacked(q, rows, 0, 2, 1.0));
  // Zero radius: a coincident point is still a hit (<=).
  EXPECT_TRUE(AnyWithinPacked(q, rows, 1, 2, 0.0));
  EXPECT_EQ(FindLastWithinPacked(q, rows, 1, 2, 0.0), 0);
}

}  // namespace
}  // namespace ddc
