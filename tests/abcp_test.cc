#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/abcp.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

// Harness owning two adjacent cells' core states, mirroring what the
// fully-dynamic clusterer does, plus a brute-force oracle.
class AbcpHarness {
 public:
  AbcpHarness(double rho, uint64_t seed)
      : params_{.dim = 2, .eps = 1.0, .min_pts = 3, .rho = rho},
        grid_(2, params_.eps),
        rng_(seed),
        inst_(0, 1) {
    for (CellCoreState* s : {&s1_, &s2_}) {
      s->core_set =
          MakeEmptinessStructure(EmptinessKind::kBruteForce, &grid_, params_);
    }
    // Two adjacent cells: [0,side)^2 and [side,2*side)x[0,side).
    side_ = grid_.side();
    inst_.Initialize(grid_, s1_, s2_);
  }

  PointId InsertInto(int which) {
    CellCoreState& s = which == 0 ? s1_ : s2_;
    Point p;
    p[0] = rng_.NextDouble(0, side_) + (which == 0 ? 0.0 : side_);
    p[1] = rng_.NextDouble(0, side_);
    const PointId id = grid_.Insert(p).id;
    s.core_set->Insert(id);
    s.log.push_back(id);
    inst_.OnCoreInsert(grid_, s1_, s2_);
    return id;
  }

  void Remove(int which, PointId id) {
    CellCoreState& s = which == 0 ? s1_ : s2_;
    ASSERT_TRUE(s.core_set->Contains(id));
    s.core_set->Remove(id);
    inst_.OnCoreRemove(grid_, s1_, s2_, which == 0 ? 0 : 1, id);
  }

  static std::vector<PointId> Members(const CellCoreState& s) {
    std::vector<PointId> out;
    s.core_set->ForEach([&](PointId p) { out.push_back(p); });
    return out;
  }

  /// True when some cross pair is within eps (the "must have witness" case).
  bool OracleHasClosePair() const {
    for (const PointId a : Members(s1_)) {
      for (const PointId b : Members(s2_)) {
        if (WithinDistance(grid_.point(a), grid_.point(b), 2, params_.eps)) {
          return true;
        }
      }
    }
    return false;
  }

  /// Checks Lemma 3's contract right now.
  void CheckContract() const {
    if (inst_.has_witness()) {
      // Witness endpoints must be current members within (1+rho)*eps.
      ASSERT_TRUE(s1_.core_set->Contains(inst_.w1()));
      ASSERT_TRUE(s2_.core_set->Contains(inst_.w2()));
      ASSERT_LE(Distance(grid_.point(inst_.w1()), grid_.point(inst_.w2()), 2),
                params_.eps_outer() * (1 + 1e-12));
    } else {
      ASSERT_FALSE(OracleHasClosePair())
          << "witness empty while an eps-close pair exists";
    }
  }

  const AbcpInstance& inst() const { return inst_; }
  CellCoreState& s1() { return s1_; }
  CellCoreState& s2() { return s2_; }
  Rng& rng() { return rng_; }

 private:
  DbscanParams params_;
  Grid grid_;
  Rng rng_;
  double side_;
  CellCoreState s1_, s2_;
  AbcpInstance inst_;
};

TEST(AbcpTest, EmptyCellsHaveNoWitness) {
  AbcpHarness h(0.1, 1);
  EXPECT_FALSE(h.inst().has_witness());
}

TEST(AbcpTest, InsertionCreatesWitness) {
  AbcpHarness h(0.1, 2);
  h.InsertInto(0);
  EXPECT_FALSE(h.inst().has_witness());  // One side empty.
  h.InsertInto(1);
  // Adjacent cells of side eps/sqrt(2): any cross pair is within ~1.58*eps,
  // not necessarily within eps; the contract only *requires* a witness when
  // a pair is within eps.
  h.CheckContract();
}

TEST(AbcpTest, RemovalRepairsOrEmpties) {
  AbcpHarness h(0.05, 3);
  std::vector<PointId> a, b;
  for (int i = 0; i < 5; ++i) a.push_back(h.InsertInto(0));
  for (int i = 0; i < 5; ++i) b.push_back(h.InsertInto(1));
  h.CheckContract();
  for (const PointId p : a) {
    h.Remove(0, p);
    h.CheckContract();
  }
  EXPECT_FALSE(h.inst().has_witness());  // Side 1 empty.
}

// Randomized fuzz: arbitrary insert/remove interleavings keep the contract.
TEST(AbcpFuzzTest, ContractUnderRandomUpdates) {
  for (const double rho : {0.0, 0.01, 0.3}) {
    AbcpHarness h(rho, 1000 + static_cast<int>(rho * 100));
    std::vector<std::pair<int, PointId>> alive;
    for (int step = 0; step < 1200; ++step) {
      if (alive.empty() || h.rng().NextBernoulli(0.55)) {
        const int which = static_cast<int>(h.rng().NextBelow(2));
        alive.emplace_back(which, h.InsertInto(which));
      } else {
        const size_t i = h.rng().NextBelow(alive.size());
        h.Remove(alive[i].first, alive[i].second);
        alive[i] = alive.back();
        alive.pop_back();
      }
      h.CheckContract();
    }
  }
}

}  // namespace
}  // namespace ddc
