#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/io.h"
#include "persist/fault_file.h"

namespace ddc {
namespace {

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "ddc_io_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string Slurp(const std::string& path) {
  std::string data;
  std::string error;
  EXPECT_TRUE(ReadFileToString(path, &data, &error)) << error;
  return data;
}

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32 (IEEE 802.3, reflected 0xEDB88320) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, SeedChainsAcrossSplits) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32(data.data(), split);
    EXPECT_EQ(Crc32(data.data() + split, data.size() - split, first), whole);
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(64, '\x5a');
  const uint32_t clean = Crc32(data);
  for (int bit : {0, 7, 100, 511}) {
    std::string flipped = data;
    flipped[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32(flipped), clean) << "bit " << bit;
  }
}

TEST(EndianTest, RoundTripsAllWidths) {
  std::string buf;
  AppendLe32(buf, 0x01020304u);
  AppendLe64(buf, 0xDEADBEEFCAFEF00DULL);
  AppendLeDouble(buf, -0.1);
  AppendLeDouble(buf, 0.0);
  const unsigned char* p = reinterpret_cast<const unsigned char*>(buf.data());
  EXPECT_EQ(ReadLe32(p), 0x01020304u);
  EXPECT_EQ(ReadLe64(p + 4), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(ReadLeDouble(p + 12), -0.1);
  EXPECT_EQ(ReadLeDouble(p + 20), 0.0);
  // The byte order on disk is little-endian by construction.
  EXPECT_EQ(p[0], 0x04);
  EXPECT_EQ(p[3], 0x01);
}

TEST(BufferedFileTest, WritesBeyondTheBufferAndReadsBack) {
  const std::string dir = TempDir("buffered");
  const std::string path = dir + "/big.bin";
  std::string expected;
  {
    std::string error;
    std::unique_ptr<BufferedFile> f = BufferedFile::Open(path,
                                                         BufferedFile::Mode::kTruncate,
                                                         &error);
    ASSERT_NE(f, nullptr) << error;
    // Several small appends plus one larger than the 64 KiB buffer.
    for (int i = 0; i < 100; ++i) {
      std::string chunk(123, static_cast<char>('a' + i % 26));
      ASSERT_TRUE(f->Append(chunk));
      expected += chunk;
    }
    std::string big(200 * 1024, 'Z');
    ASSERT_TRUE(f->Append(big));
    expected += big;
    EXPECT_EQ(f->bytes_written(), static_cast<int64_t>(expected.size()));
    ASSERT_TRUE(f->Sync());
    ASSERT_TRUE(f->Close());
    EXPECT_TRUE(f->ok());
  }
  EXPECT_EQ(Slurp(path), expected);
}

TEST(BufferedFileTest, AppendModeExtends) {
  const std::string dir = TempDir("append");
  const std::string path = dir + "/log.txt";
  ASSERT_TRUE(WriteFile(path, "first."));
  std::string error;
  std::unique_ptr<BufferedFile> f =
      BufferedFile::Open(path, BufferedFile::Mode::kAppend, &error);
  ASSERT_NE(f, nullptr) << error;
  ASSERT_TRUE(f->Append(std::string_view("second.")));
  ASSERT_TRUE(f->Close());
  EXPECT_EQ(Slurp(path), "first.second.");
}

TEST(BufferedFileTest, OpenFailureNamesPathAndCause) {
  std::string error;
  std::unique_ptr<BufferedFile> f = BufferedFile::Open(
      TempDir("missing") + "/no/such/dir/file", BufferedFile::Mode::kTruncate,
      &error);
  EXPECT_EQ(f, nullptr);
  EXPECT_NE(error.find("no/such/dir/file"), std::string::npos) << error;
}

TEST(DefaultFileFactoryTest, FailedOpenYieldsLatchedFailingFile) {
  // The factory never returns null — a bad path yields a file whose every
  // operation fails with the open error, so call sites check ok() once.
  std::unique_ptr<WritableFile> f =
      DefaultFileFactory()(TempDir("factory") + "/nope/file");
  ASSERT_NE(f, nullptr);
  EXPECT_FALSE(f->ok());
  EXPECT_FALSE(f->Append(std::string_view("x")));
  EXPECT_FALSE(f->Flush());
  EXPECT_FALSE(f->Sync());
  EXPECT_NE(f->error().find("nope"), std::string::npos) << f->error();
}

TEST(WriteFileAtomicTest, ReplacesWithoutLeavingTempFiles) {
  const std::string dir = TempDir("atomic");
  const std::string path = dir + "/manifest.json";
  ASSERT_TRUE(WriteFileAtomic(path, "old"));
  ASSERT_TRUE(WriteFileAtomic(path, "new contents"));
  EXPECT_EQ(Slurp(path), "new contents");
  int entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1) << "temp file left behind";
}

TEST(ReadFileToStringTest, MissingFileNamesPath) {
  std::string data;
  std::string error;
  EXPECT_FALSE(ReadFileToString("/definitely/not/here.bin", &data, &error));
  EXPECT_NE(error.find("/definitely/not/here.bin"), std::string::npos);
}

TEST(FaultFileTest, CrashLeavesExactlyTheTornPrefix) {
  const std::string dir = TempDir("fault_crash");
  const std::string path = dir + "/victim.bin";
  FaultPlan plan;
  plan.crash_after_bytes = 10;
  FaultInjector injector(plan);
  WritableFileFactory factory = injector.WrapFactory(DefaultFileFactory());

  std::unique_ptr<WritableFile> f = factory(path);
  ASSERT_TRUE(f->Append(std::string_view("012345")));   // 6 bytes, all land.
  EXPECT_FALSE(injector.crashed());
  EXPECT_FALSE(f->Append(std::string_view("6789AB")));  // Crosses the
                                                        // boundary: torn.
  EXPECT_TRUE(injector.crashed());
  EXPECT_EQ(injector.bytes_passed(), 10);
  EXPECT_FALSE(f->Append(std::string_view("after")));   // Dead stays dead.
  EXPECT_FALSE(f->Sync());
  f->Close();
  EXPECT_EQ(Slurp(path), "0123456789");  // 6 + 4-byte torn prefix.
}

TEST(FaultFileTest, LedgerSpansFiles) {
  // The crash budget is an offset into the whole write stream: rotating to
  // a second file does not reset it.
  const std::string dir = TempDir("fault_ledger");
  FaultPlan plan;
  plan.crash_after_bytes = 12;
  FaultInjector injector(plan);
  WritableFileFactory factory = injector.WrapFactory(DefaultFileFactory());

  std::unique_ptr<WritableFile> a = factory(dir + "/a.bin");
  ASSERT_TRUE(a->Append(std::string_view("eightbyt")));  // 8 of 12.
  a->Close();
  std::unique_ptr<WritableFile> b = factory(dir + "/b.bin");
  EXPECT_FALSE(b->Append(std::string_view("eightbyt")));  // 4 more, torn.
  EXPECT_TRUE(injector.crashed());
  b->Close();
  EXPECT_EQ(Slurp(dir + "/b.bin"), "eigh");
}

TEST(FaultFileTest, FlipsExactlyOneBit) {
  const std::string dir = TempDir("fault_flip");
  const std::string path = dir + "/victim.bin";
  FaultPlan plan;
  plan.flip_bit = 8 * 3 + 1;  // Bit 1 of byte 3.
  FaultInjector injector(plan);
  WritableFileFactory factory = injector.WrapFactory(DefaultFileFactory());

  std::unique_ptr<WritableFile> f = factory(path);
  ASSERT_TRUE(f->Append(std::string_view("AB")));
  ASSERT_TRUE(f->Append(std::string_view("CDEF")));
  ASSERT_TRUE(f->Close());
  EXPECT_FALSE(injector.crashed());
  std::string got = Slurp(path);
  EXPECT_EQ(got.size(), 6u);
  EXPECT_EQ(got[3], 'D' ^ 0x02);
  got[3] ^= 0x02;
  EXPECT_EQ(got, "ABCDEF");
}

}  // namespace
}  // namespace ddc
