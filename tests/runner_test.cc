#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster_snapshot.h"
#include "core/clusterer.h"
#include "core/fully_dynamic_clusterer.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// Runner-semantics tests: the timing-window contract (Flush happens before
/// the window closes; a timed-out run still ends with a terminal
/// checkpoint) and the concurrent-reader bookkeeping.

class EmptySnapshot final : public ClusterSnapshot {
 public:
  EmptySnapshot() : ClusterSnapshot(0) {}
  CGroupByResult Query(const std::vector<PointId>&) const override {
    return CGroupByResult{};
  }
  bool alive(PointId) const override { return false; }
  int64_t size() const override { return 0; }
};

/// A clusterer whose operations burn configurable wall time, for pinning
/// down what the runner measures and when it calls Flush.
class SlowFakeClusterer final : public Clusterer {
 public:
  explicit SlowFakeClusterer(std::chrono::microseconds op_delay,
                             std::chrono::microseconds flush_delay)
      : op_delay_(op_delay),
        flush_delay_(flush_delay),
        snapshot_(std::make_shared<EmptySnapshot>()) {}

  PointId Insert(const Point&) override {
    std::this_thread::sleep_for(op_delay_);
    return next_id_++;
  }
  void Delete(PointId) override { std::this_thread::sleep_for(op_delay_); }
  std::shared_ptr<const ClusterSnapshot> Snapshot() override {
    return snapshot_;
  }
  std::shared_ptr<const ClusterSnapshot> CurrentSnapshot() const override {
    return snapshot_;
  }
  void Flush() override {
    std::this_thread::sleep_for(flush_delay_);
    ++flush_calls_;
  }
  std::vector<PointId> AlivePoints() const override { return {}; }
  const DbscanParams& params() const override { return params_; }
  int64_t size() const override { return next_id_; }

  int flush_calls() const { return flush_calls_; }

 private:
  std::chrono::microseconds op_delay_;
  std::chrono::microseconds flush_delay_;
  std::shared_ptr<const EmptySnapshot> snapshot_;
  DbscanParams params_;
  PointId next_id_ = 0;
  int flush_calls_ = 0;
};

Workload InsertOnlyWorkload(int n) {
  Workload w;
  w.dim = 2;
  for (int i = 0; i < n; ++i) {
    w.points.push_back(Point{static_cast<double>(i), 0.0});
    Operation op;
    op.type = Operation::Type::kInsert;
    op.target = i;
    w.ops.push_back(op);
  }
  w.num_inserts = w.num_updates = n;
  return w;
}

TEST(RunnerTest, TimedOutRunEndsWithTerminalCheckpoint) {
  SlowFakeClusterer c(std::chrono::microseconds(500),
                      std::chrono::microseconds(0));
  const Workload w = InsertOnlyWorkload(10000);
  RunOptions options;
  options.num_checkpoints = 4;
  options.time_budget_seconds = 0.02;
  const RunStats stats = RunWorkload(c, w, options);

  EXPECT_TRUE(stats.timed_out);
  EXPECT_LT(stats.ops_executed, 10000);
  EXPECT_GT(stats.ops_executed, 0);
  // The truncated series still covers exactly the executed prefix: one
  // terminal checkpoint at ops_executed, arrays aligned.
  ASSERT_FALSE(stats.checkpoint_ops.empty());
  EXPECT_EQ(stats.checkpoint_ops.back(), stats.ops_executed);
  EXPECT_EQ(stats.checkpoint_ops.size(), stats.avg_cost_us.size());
  EXPECT_EQ(stats.checkpoint_ops.size(), stats.max_upd_cost_us.size());
}

TEST(RunnerTest, FlushRunsExactlyOnceInsideTheTimingWindow) {
  const auto flush_delay = std::chrono::milliseconds(30);
  SlowFakeClusterer c(std::chrono::microseconds(0), flush_delay);
  const Workload w = InsertOnlyWorkload(50);
  const RunStats stats = RunWorkload(c, w, RunOptions{});

  EXPECT_EQ(c.flush_calls(), 1);
  // total_seconds is read after Flush returns, so enqueued-but-unapplied
  // work can never leak out of the throughput window.
  EXPECT_GE(stats.total_seconds,
            std::chrono::duration<double>(flush_delay).count());
  EXPECT_FALSE(stats.timed_out);
  EXPECT_EQ(stats.ops_executed, 50);
}

TEST(RunnerTest, ReaderStatsAreZeroWithoutQueryThreads) {
  SlowFakeClusterer c(std::chrono::microseconds(0),
                      std::chrono::microseconds(0));
  const Workload w = InsertOnlyWorkload(10);
  const RunStats stats = RunWorkload(c, w, RunOptions{});
  EXPECT_EQ(stats.query_threads, 0);
  EXPECT_EQ(stats.reader_queries_executed, 0);
  EXPECT_EQ(stats.reader_query_latency_us.count(), 0);
  EXPECT_EQ(stats.reader_queries_per_sec, 0);
}

TEST(RunnerTest, ConcurrentReadersMergeIntoRunStats) {
  WorkloadConfig config;
  config.num_updates = 400;
  config.insert_fraction = 0.8;
  config.query_every = 50;
  config.spreader.dim = 2;
  config.spreader.extent = 2000.0;
  config.seed = 11;
  const Workload w = BuildWorkload(config);
  ASSERT_GT(w.num_queries, 0);

  const DbscanParams params{.dim = 2, .eps = 100.0, .min_pts = 5, .rho = 0};
  FullyDynamicClusterer c(params);
  RunOptions options;
  options.query_threads = 2;
  const RunStats stats = RunWorkload(c, w, options);

  EXPECT_EQ(stats.query_threads, 2);
  // Once work is published, every reader completes at least one query
  // before honoring the stop flag.
  EXPECT_GE(stats.reader_queries_executed, 2);
  EXPECT_EQ(stats.reader_query_latency_us.count(),
            stats.reader_queries_executed);
  EXPECT_GT(stats.reader_queries_per_sec, 0);
  // The main thread published one snapshot per query op (its timed cost
  // lands in query_latency_us) and never ran the queries itself.
  EXPECT_EQ(stats.queries_executed, w.num_queries);
  EXPECT_EQ(stats.query_latency_us.count(), w.num_queries);
}

}  // namespace
}  // namespace ddc
