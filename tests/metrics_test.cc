#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace ddc {
namespace {

// The registry is process-global and never shrinks, so every test uses
// names unique to itself — isolation by namespace, not by reset.

TEST(MetricsTest, ConcurrentIncrementsSumExactly) {
  Metric& counter = MetricsRegistry::Instance().GetOrCreate(
      "test.metrics.concurrent", MetricKind::kCounter);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Relaxed per-cell adds must still never lose an increment.
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, MacroRegistersOnceAndAccumulates) {
  for (int i = 0; i < 5; ++i) DDC_COUNTER_INC("test.metrics.macro");
  DDC_COUNTER_ADD("test.metrics.macro", 10);
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.macro"), 15);
}

TEST(MetricsTest, GaugeSetIsLastWins) {
  DDC_GAUGE_SET("test.metrics.gauge_set", 42);
  DDC_GAUGE_SET("test.metrics.gauge_set", 7);
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.gauge_set"), 7);
}

TEST(MetricsTest, GaugeUpdateMaxIsMonotone) {
  DDC_GAUGE_MAX("test.metrics.gauge_max", 5);
  DDC_GAUGE_MAX("test.metrics.gauge_max", 9);
  DDC_GAUGE_MAX("test.metrics.gauge_max", 3);  // Lower: must not regress.
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.gauge_max"), 9);
}

TEST(MetricsTest, ConcurrentUpdateMaxKeepsTheMaximum) {
  Metric& gauge = MetricsRegistry::Instance().GetOrCreate(
      "test.metrics.concurrent_max", MetricKind::kGauge);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 1000; ++i) gauge.UpdateMax(t * 1000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.Value(), (kThreads - 1) * 1000 + 999);
}

TEST(MetricsTest, SnapshotIsNameSortedAndStable) {
  DDC_COUNTER_INC("test.metrics.sorted.b");
  DDC_COUNTER_INC("test.metrics.sorted.a");
  DDC_COUNTER_INC("test.metrics.sorted.c");
  const std::vector<MetricSample> snap = MetricsRegistry::Instance().Snapshot();
  ASSERT_FALSE(snap.empty());
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  // Registering nothing new between snapshots keeps the order identical.
  const std::vector<MetricSample> again =
      MetricsRegistry::Instance().Snapshot();
  ASSERT_EQ(snap.size(), again.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].name, again[i].name);
  }
}

TEST(MetricsTest, ValueOfUnknownNameReturnsFallback) {
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.absent", -7),
            -7);
}

TEST(MetricsTest, DeltaSinceSubtractsCountersAndPassesGaugesThrough) {
  DDC_COUNTER_ADD("test.metrics.delta.counter", 10);
  DDC_GAUGE_SET("test.metrics.delta.gauge", 100);
  const std::vector<MetricSample> before =
      MetricsRegistry::Instance().Snapshot();
  DDC_COUNTER_ADD("test.metrics.delta.counter", 5);
  DDC_GAUGE_SET("test.metrics.delta.gauge", 50);
  DDC_COUNTER_ADD("test.metrics.delta.fresh", 3);  // Absent from `before`.
  const std::vector<MetricSample> delta =
      DeltaSince(before, MetricsRegistry::Instance().Snapshot());

  auto value_of = [&delta](const std::string& name) -> int64_t {
    for (const MetricSample& s : delta) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "missing sample " << name;
    return -1;
  };
  EXPECT_EQ(value_of("test.metrics.delta.counter"), 5);
  EXPECT_EQ(value_of("test.metrics.delta.fresh"), 3);
  // Gauges are point-in-time, not rates: the after value, even when lower.
  EXPECT_EQ(value_of("test.metrics.delta.gauge"), 50);
}

TEST(MetricsTest, ConcurrentHistogramRecordsSumExactly) {
  Metric& hist = MetricsRegistry::Instance().GetOrCreate(
      "test.metrics.hist_concurrent", MetricKind::kHistogram);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(1.0 + (t * kPerThread + i) % 100);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const HistogramData data = hist.HistogramValue();
  EXPECT_EQ(data.count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(hist.Value(), data.count);  // Value() == sample count.
  // Every sample was in [1, 100] µs, integer-valued, so the merged sum,
  // min and max are exact regardless of interleaving.
  int64_t expect_sum_ns = 0;
  for (int s = 0; s < kThreads * kPerThread; ++s) {
    expect_sum_ns += (1 + s % 100) * 1000;
  }
  EXPECT_EQ(data.sum_ns, expect_sum_ns);
  EXPECT_DOUBLE_EQ(data.min_us(), 1.0);
  EXPECT_DOUBLE_EQ(data.max_us(), 100.0);
  int64_t bucket_total = 0;
  for (const int64_t b : data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, data.count);
}

TEST(MetricsTest, HistogramQuantilesWithinOneBucketOfExact) {
  Metric& hist = MetricsRegistry::Instance().GetOrCreate(
      "test.metrics.hist_quantile", MetricKind::kHistogram);
  // 1..1000 µs once each: the exact q-quantile is q*1000.
  for (int v = 1; v <= 1000; ++v) hist.Record(static_cast<double>(v));
  const HistogramData data = hist.HistogramValue();
  ASSERT_EQ(data.count, 1000);
  for (const double q : {0.50, 0.95, 0.99}) {
    const double exact = q * 1000;
    const double approx = data.Quantile(q);
    // Log buckets are 2^(1/8) wide: the reported value sits at most one
    // bucket's relative width above the exact quantile, never below it.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact * std::pow(2.0, 2.0 / 8)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(data.Quantile(1.0), 1000.0);  // Capped at the max.
}

TEST(MetricsTest, HistogramMacroAndScopedTimerRecord) {
  DDC_HISTOGRAM_RECORD("test.metrics.hist_macro", 5.0);
  DDC_HISTOGRAM_RECORD("test.metrics.hist_macro", 7.0);
  {
    DDC_HISTOGRAM_SCOPED("test.metrics.hist_scoped");
  }
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.hist_macro"),
            2);
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.hist_scoped"),
            1);
}

TEST(MetricsTest, DeltaSinceSubtractsHistograms) {
  Metric& hist = MetricsRegistry::Instance().GetOrCreate(
      "test.metrics.hist_delta", MetricKind::kHistogram);
  hist.Record(10.0);
  hist.Record(20.0);
  const std::vector<MetricSample> before =
      MetricsRegistry::Instance().Snapshot();
  hist.Record(40.0);
  const std::vector<MetricSample> delta =
      DeltaSince(before, MetricsRegistry::Instance().Snapshot());

  const MetricSample* sample = nullptr;
  for (const MetricSample& s : delta) {
    if (s.name == "test.metrics.hist_delta") sample = &s;
  }
  ASSERT_NE(sample, nullptr);
  // The interval saw exactly one 40µs record; min/max stay cumulative.
  EXPECT_EQ(sample->hist.count, 1);
  EXPECT_EQ(sample->value, 1);
  EXPECT_DOUBLE_EQ(sample->hist.sum_us(), 40.0);
  EXPECT_DOUBLE_EQ(sample->hist.min_us(), 10.0);
  EXPECT_DOUBLE_EQ(sample->hist.max_us(), 40.0);
  int64_t bucket_total = 0;
  for (const int64_t b : sample->hist.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 1);
}

TEST(MetricsDeathTest, HistogramKindMismatchAborts) {
  MetricsRegistry::Instance().GetOrCreate("test.metrics.hist_kind_clash",
                                          MetricKind::kHistogram);
  EXPECT_DEATH(MetricsRegistry::Instance().GetOrCreate(
                   "test.metrics.hist_kind_clash", MetricKind::kCounter),
               "DDC_CHECK failed");
}

TEST(MetricsDeathTest, KindMismatchAborts) {
  MetricsRegistry::Instance().GetOrCreate("test.metrics.kind_clash",
                                          MetricKind::kCounter);
  EXPECT_DEATH(MetricsRegistry::Instance().GetOrCreate(
                   "test.metrics.kind_clash", MetricKind::kGauge),
               "DDC_CHECK failed");
}

}  // namespace
}  // namespace ddc
