#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace ddc {
namespace {

// The registry is process-global and never shrinks, so every test uses
// names unique to itself — isolation by namespace, not by reset.

TEST(MetricsTest, ConcurrentIncrementsSumExactly) {
  Metric& counter = MetricsRegistry::Instance().GetOrCreate(
      "test.metrics.concurrent", MetricKind::kCounter);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  // Relaxed per-cell adds must still never lose an increment.
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, MacroRegistersOnceAndAccumulates) {
  for (int i = 0; i < 5; ++i) DDC_COUNTER_INC("test.metrics.macro");
  DDC_COUNTER_ADD("test.metrics.macro", 10);
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.macro"), 15);
}

TEST(MetricsTest, GaugeSetIsLastWins) {
  DDC_GAUGE_SET("test.metrics.gauge_set", 42);
  DDC_GAUGE_SET("test.metrics.gauge_set", 7);
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.gauge_set"), 7);
}

TEST(MetricsTest, GaugeUpdateMaxIsMonotone) {
  DDC_GAUGE_MAX("test.metrics.gauge_max", 5);
  DDC_GAUGE_MAX("test.metrics.gauge_max", 9);
  DDC_GAUGE_MAX("test.metrics.gauge_max", 3);  // Lower: must not regress.
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.gauge_max"), 9);
}

TEST(MetricsTest, ConcurrentUpdateMaxKeepsTheMaximum) {
  Metric& gauge = MetricsRegistry::Instance().GetOrCreate(
      "test.metrics.concurrent_max", MetricKind::kGauge);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 1000; ++i) gauge.UpdateMax(t * 1000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.Value(), (kThreads - 1) * 1000 + 999);
}

TEST(MetricsTest, SnapshotIsNameSortedAndStable) {
  DDC_COUNTER_INC("test.metrics.sorted.b");
  DDC_COUNTER_INC("test.metrics.sorted.a");
  DDC_COUNTER_INC("test.metrics.sorted.c");
  const std::vector<MetricSample> snap = MetricsRegistry::Instance().Snapshot();
  ASSERT_FALSE(snap.empty());
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  // Registering nothing new between snapshots keeps the order identical.
  const std::vector<MetricSample> again =
      MetricsRegistry::Instance().Snapshot();
  ASSERT_EQ(snap.size(), again.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].name, again[i].name);
  }
}

TEST(MetricsTest, ValueOfUnknownNameReturnsFallback) {
  EXPECT_EQ(MetricsRegistry::Instance().ValueOf("test.metrics.absent", -7),
            -7);
}

TEST(MetricsTest, DeltaSinceSubtractsCountersAndPassesGaugesThrough) {
  DDC_COUNTER_ADD("test.metrics.delta.counter", 10);
  DDC_GAUGE_SET("test.metrics.delta.gauge", 100);
  const std::vector<MetricSample> before =
      MetricsRegistry::Instance().Snapshot();
  DDC_COUNTER_ADD("test.metrics.delta.counter", 5);
  DDC_GAUGE_SET("test.metrics.delta.gauge", 50);
  DDC_COUNTER_ADD("test.metrics.delta.fresh", 3);  // Absent from `before`.
  const std::vector<MetricSample> delta =
      DeltaSince(before, MetricsRegistry::Instance().Snapshot());

  auto value_of = [&delta](const std::string& name) -> int64_t {
    for (const MetricSample& s : delta) {
      if (s.name == name) return s.value;
    }
    ADD_FAILURE() << "missing sample " << name;
    return -1;
  };
  EXPECT_EQ(value_of("test.metrics.delta.counter"), 5);
  EXPECT_EQ(value_of("test.metrics.delta.fresh"), 3);
  // Gauges are point-in-time, not rates: the after value, even when lower.
  EXPECT_EQ(value_of("test.metrics.delta.gauge"), 50);
}

TEST(MetricsDeathTest, KindMismatchAborts) {
  MetricsRegistry::Instance().GetOrCreate("test.metrics.kind_clash",
                                          MetricKind::kCounter);
  EXPECT_DEATH(MetricsRegistry::Instance().GetOrCreate(
                   "test.metrics.kind_clash", MetricKind::kGauge),
               "DDC_CHECK failed");
}

}  // namespace
}  // namespace ddc
