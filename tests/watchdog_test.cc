#include "telemetry/watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/thread_pool.h"

namespace ddc {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Thread-safe stall collector for watchdog callbacks.
struct StallLog {
  std::mutex mu;
  std::vector<Watchdog::Stall> stalls;

  void Record(const Watchdog::Stall& stall) {
    std::lock_guard<std::mutex> lock(mu);
    stalls.push_back(stall);
  }
  size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return stalls.size();
  }
  Watchdog::Stall First() {
    std::lock_guard<std::mutex> lock(mu);
    return stalls.at(0);
  }
};

/// Polls until `count()` reaches `want` or `budget` elapses.
template <typename Count>
bool WaitForCount(Count count, size_t want, milliseconds budget) {
  const steady_clock::time_point deadline = steady_clock::now() + budget;
  while (count() < want) {
    if (steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return true;
}

TEST(WatchdogTest, DetectsBlockedWorkerWithCorrectIdentity) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();

  // Worker 1 wedges on the future; a second task queues up behind it so the
  // watchdog sees work waiting on a silent worker.
  pool.Submit(1, [released] { released.wait(); });
  pool.Submit(1, [] {});

  Watchdog::Options options;
  options.deadline_ms = 100;
  options.poll_ms = 20;
  StallLog log;
  Watchdog watchdog({&pool.health(0), &pool.health(1)},
                    {"shard=0", "shard=1"}, options,
                    [&log](const Watchdog::Stall& s) { log.Record(s); });

  ASSERT_TRUE(WaitForCount([&log] { return log.Count(); }, 1,
                           milliseconds(5000)))
      << "watchdog never fired for the blocked worker";
  const Watchdog::Stall stall = log.First();
  EXPECT_EQ(stall.worker, 1);
  EXPECT_EQ(stall.label, "shard=1");
  EXPECT_GE(stall.queue_depth, 1);
  EXPECT_GE(stall.quiet_seconds, 0.1);

  // Same episode, same heartbeat: the watchdog must not re-report it no
  // matter how many more polls elapse.
  std::this_thread::sleep_for(milliseconds(400));
  EXPECT_EQ(watchdog.stalls_reported(), 1u);
  EXPECT_EQ(log.Count(), 1u);

  release.set_value();
  pool.Drain();
}

TEST(WatchdogTest, IdleWorkersAreNeverStalls) {
  ThreadPool pool(2);
  Watchdog::Options options;
  options.deadline_ms = 50;
  options.poll_ms = 10;
  StallLog log;
  Watchdog watchdog({&pool.health(0), &pool.health(1)},
                    {"shard=0", "shard=1"}, options,
                    [&log](const Watchdog::Stall& s) { log.Record(s); });

  // Far past the deadline with empty queues: quiet but healthy.
  std::this_thread::sleep_for(milliseconds(300));
  EXPECT_EQ(watchdog.stalls_reported(), 0u);
  EXPECT_EQ(log.Count(), 0u);
}

TEST(WatchdogTest, FreshWorkReArmsTheEpisode) {
  ThreadPool pool(1);
  Watchdog::Options options;
  options.deadline_ms = 100;
  options.poll_ms = 20;
  StallLog log;
  Watchdog watchdog({&pool.health(0)}, {"shard=0"}, options,
                    [&log](const Watchdog::Stall& s) { log.Record(s); });

  // First stall episode.
  {
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    pool.Submit(0, [released] { released.wait(); });
    pool.Submit(0, [] {});
    ASSERT_TRUE(WaitForCount([&log] { return log.Count(); }, 1,
                             milliseconds(5000)));
    release.set_value();
    pool.Drain();
  }
  // The drain beat plus an empty queue closed the episode; a second wedge is
  // a fresh stall and must be reported again.
  {
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    pool.Submit(0, [released] { released.wait(); });
    pool.Submit(0, [] {});
    EXPECT_TRUE(WaitForCount([&log] { return log.Count(); }, 2,
                             milliseconds(5000)))
        << "second stall episode was not re-reported";
    release.set_value();
    pool.Drain();
  }
  EXPECT_EQ(watchdog.stalls_reported(), log.Count());
}

TEST(WatchdogTest, MissingLabelFallsBackToWorkerIndex) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  pool.Submit(0, [released] { released.wait(); });
  pool.Submit(0, [] {});

  Watchdog::Options options;
  options.deadline_ms = 50;
  options.poll_ms = 10;
  StallLog log;
  Watchdog watchdog({&pool.health(0)}, /*labels=*/{}, options,
                    [&log](const Watchdog::Stall& s) { log.Record(s); });
  ASSERT_TRUE(
      WaitForCount([&log] { return log.Count(); }, 1, milliseconds(5000)));
  EXPECT_EQ(log.First().label, "worker=0");

  release.set_value();
  pool.Drain();
}

}  // namespace
}  // namespace ddc
