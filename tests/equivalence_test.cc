#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fully_dynamic_clusterer.h"
#include "core/incremental_dbscan.h"
#include "core/semi_dynamic_clusterer.h"
#include "core/static_dbscan.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// With rho == 0 every algorithm in this library maintains *exact* DBSCAN,
/// so on a shared insertion-only workload all three dynamic clusterers must
/// agree with each other (and transitively with the static oracle, which the
/// per-algorithm suites already check). This is the strongest cross-cutting
/// integration test: one framework (Section 4) behind three different
/// structure stacks, plus an independent 1998 algorithm, one answer.
TEST(EquivalenceTest, AllAlgorithmsAgreeOnInsertions) {
  WorkloadConfig config;
  config.num_updates = 900;
  config.insert_fraction = 1.0;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.spreader.extent = 3000.0;
  config.seed = 99;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 2, .eps = 120.0, .min_pts = 6, .rho = 0.0};
  SemiDynamicClusterer semi(params);
  FullyDynamicClusterer full(params);
  IncrementalDbscan inc(params);

  for (size_t i = 0; i < w.ops.size(); ++i) {
    const Point& p = w.points[w.ops[i].target];
    semi.Insert(p);
    full.Insert(p);
    inc.Insert(p);
    if (i % 150 != 149 && i + 1 != w.ops.size()) continue;

    auto a = semi.QueryAll();
    auto b = full.QueryAll();
    auto c = inc.QueryAll();
    a.Canonicalize();
    b.Canonicalize();
    c.Canonicalize();
    ASSERT_EQ(a, b) << "semi vs fully at op " << i;
    ASSERT_EQ(b, c) << "fully vs inc at op " << i;
  }
}

/// On mixed workloads (deletions included), the fully-dynamic clusterer and
/// IncDBSCAN must agree exactly when rho == 0.
TEST(EquivalenceTest, FullyDynamicMatchesIncDbscanOnMixedWorkload) {
  WorkloadConfig config;
  config.num_updates = 900;
  config.insert_fraction = 2.0 / 3.0;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.spreader.extent = 2500.0;
  config.seed = 100;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5, .rho = 0.0};
  FullyDynamicClusterer full(params);
  IncrementalDbscan inc(params);
  std::vector<PointId> full_id(w.points.size(), kInvalidPoint);
  std::vector<PointId> inc_id(w.points.size(), kInvalidPoint);

  for (size_t i = 0; i < w.ops.size(); ++i) {
    const Operation& op = w.ops[i];
    if (op.type == Operation::Type::kInsert) {
      full_id[op.target] = full.Insert(w.points[op.target]);
      inc_id[op.target] = inc.Insert(w.points[op.target]);
    } else if (op.type == Operation::Type::kDelete) {
      full.Delete(full_id[op.target]);
      inc.Delete(inc_id[op.target]);
    }
    if (i % 120 != 119 && i + 1 != w.ops.size()) continue;

    // Compare in the shared insertion-index space (PointIds diverge once
    // deletions interleave differently with internal id assignment).
    auto remap = [&](CGroupByResult r, const std::vector<PointId>& ids) {
      std::vector<PointId> back(ids.size() + r.groups.size() * 0 + 1);
      std::unordered_map<PointId, int64_t> inv;
      for (size_t k = 0; k < ids.size(); ++k) {
        if (ids[k] != kInvalidPoint) inv[ids[k]] = static_cast<int64_t>(k);
      }
      for (auto& g : r.groups) {
        for (auto& p : g) p = static_cast<PointId>(inv.at(p));
      }
      for (auto& p : r.noise) p = static_cast<PointId>(inv.at(p));
      r.Canonicalize();
      return r;
    };
    const auto a = remap(full.QueryAll(), full_id);
    const auto b = remap(inc.QueryAll(), inc_id);
    ASSERT_EQ(a, b) << "at op " << i;
  }
}

/// The paper's experimental requirement (Section 8.1): with rho = 0.001 the
/// ρ-double-approximate algorithm must return exactly the same clusters as
/// the ρ-approximate one. On insertion-only workloads we can check this
/// directly: Semi-Approx vs Double-Approx, same rho.
TEST(EquivalenceTest, DoubleApproxMatchesSemiApproxAtTinyRho) {
  WorkloadConfig config;
  config.num_updates = 1200;
  config.insert_fraction = 1.0;
  config.query_every = 0;
  config.spreader.dim = 3;
  config.spreader.extent = 4000.0;
  config.seed = 101;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 3, .eps = 200.0, .min_pts = 10, .rho = 0.001};
  SemiDynamicClusterer semi(params);
  FullyDynamicClusterer full(params);

  for (size_t i = 0; i < w.ops.size(); ++i) {
    semi.Insert(w.points[w.ops[i].target]);
    full.Insert(w.points[w.ops[i].target]);
  }
  auto a = semi.QueryAll();
  auto b = full.QueryAll();
  a.Canonicalize();
  b.Canonicalize();
  ASSERT_EQ(a, b);
}

}  // namespace
}  // namespace ddc
