#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fully_dynamic_clusterer.h"
#include "core/incremental_dbscan.h"
#include "core/semi_dynamic_clusterer.h"
#include "core/static_dbscan.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// With rho == 0 every algorithm in this library maintains *exact* DBSCAN,
/// so on a shared insertion-only workload all three dynamic clusterers must
/// agree with each other (and transitively with the static oracle, which the
/// per-algorithm suites already check). This is the strongest cross-cutting
/// integration test: one framework (Section 4) behind three different
/// structure stacks, plus an independent 1998 algorithm, one answer.
TEST(EquivalenceTest, AllAlgorithmsAgreeOnInsertions) {
  WorkloadConfig config;
  config.num_updates = 900;
  config.insert_fraction = 1.0;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.spreader.extent = 3000.0;
  config.seed = 99;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 2, .eps = 120.0, .min_pts = 6, .rho = 0.0};
  SemiDynamicClusterer semi(params);
  FullyDynamicClusterer full(params);
  IncrementalDbscan inc(params);

  for (size_t i = 0; i < w.ops.size(); ++i) {
    const Point& p = w.points[w.ops[i].target];
    semi.Insert(p);
    full.Insert(p);
    inc.Insert(p);
    if (i % 150 != 149 && i + 1 != w.ops.size()) continue;

    auto a = semi.QueryAll();
    auto b = full.QueryAll();
    auto c = inc.QueryAll();
    a.Canonicalize();
    b.Canonicalize();
    c.Canonicalize();
    ASSERT_EQ(a, b) << "semi vs fully at op " << i;
    ASSERT_EQ(b, c) << "fully vs inc at op " << i;
  }
}

/// Shared driver for the full-vs-IncDBSCAN agreement tests: replays `w`
/// through both clusterers at rho == 0, asserting identical clusterings
/// every `check_every` ops and after the last one. Comparison happens in the
/// shared insertion-index space (PointIds diverge once deletions interleave
/// differently with internal id assignment).
void ExpectFullMatchesIncThroughout(const Workload& w,
                                    const DbscanParams& params,
                                    size_t check_every) {
  FullyDynamicClusterer full(params);
  IncrementalDbscan inc(params);
  std::vector<PointId> full_id(w.points.size(), kInvalidPoint);
  std::vector<PointId> inc_id(w.points.size(), kInvalidPoint);

  for (size_t i = 0; i < w.ops.size(); ++i) {
    ApplyOp(full, w, w.ops[i], full_id);
    ApplyOp(inc, w, w.ops[i], inc_id);
    if (i % check_every != check_every - 1 && i + 1 != w.ops.size()) continue;
    const auto a = RemapToInsertionIndex(full.QueryAll(), full_id);
    const auto b = RemapToInsertionIndex(inc.QueryAll(), inc_id);
    ASSERT_EQ(a, b) << "at op " << i;
  }
}

/// On mixed workloads (deletions included), the fully-dynamic clusterer and
/// IncDBSCAN must agree exactly when rho == 0.
TEST(EquivalenceTest, FullyDynamicMatchesIncDbscanOnMixedWorkload) {
  WorkloadConfig config;
  config.num_updates = 900;
  config.insert_fraction = 2.0 / 3.0;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.spreader.extent = 2500.0;
  config.seed = 100;

  DbscanParams params{.dim = 2, .eps = 110.0, .min_pts = 5, .rho = 0.0};
  ExpectFullMatchesIncThroughout(BuildWorkload(config), params, 120);
}

/// Delete-heavy workloads are the fully-dynamic algorithm's entire reason to
/// exist (Theorem 2 shows insertion-only schemes cannot survive deletions):
/// with nearly half the updates deleting points, clusters repeatedly split —
/// IncDBSCAN's expensive BFS path — and at rho == 0 both algorithms must
/// still agree exactly, checkpoint after checkpoint.
TEST(EquivalenceTest, FullyDynamicMatchesIncDbscanOnDeleteHeavyWorkload) {
  WorkloadConfig config;
  config.num_updates = 900;
  config.insert_fraction = 0.55;
  config.query_every = 0;
  config.spreader.dim = 2;
  config.spreader.extent = 2000.0;
  config.seed = 102;
  const Workload w = BuildWorkload(config);
  ASSERT_GT(w.num_deletes, w.num_updates / 3);

  DbscanParams params{.dim = 2, .eps = 100.0, .min_pts = 4, .rho = 0.0};
  ExpectFullMatchesIncThroughout(w, params, 90);
}

/// Mixed insert/delete workload across every FullyDynamicClusterer options
/// stack: at rho == 0 all exact structure combinations must agree with
/// IncDBSCAN on the workload's own subset C-group-by queries, not just on
/// full clusterings.
TEST(EquivalenceTest, AllExactOptionStacksAgreeOnMixedWorkloadQueries) {
  WorkloadConfig config;
  config.num_updates = 600;
  config.insert_fraction = 0.7;
  config.query_every = 75;
  config.spreader.dim = 2;
  config.spreader.extent = 2200.0;
  config.seed = 103;
  const Workload w = BuildWorkload(config);
  ASSERT_GT(w.num_queries, 0);

  DbscanParams params{.dim = 2, .eps = 105.0, .min_pts = 5, .rho = 0.0};
  const std::vector<NamedOptions> stacks = FullyDynamicOptionStacks(0.0);

  IncrementalDbscan inc(params);
  std::vector<PointId> inc_id(w.points.size(), kInvalidPoint);
  std::vector<std::unique_ptr<FullyDynamicClusterer>> fulls;
  std::vector<std::vector<PointId>> full_ids;
  for (const auto& [name, options] : stacks) {
    fulls.push_back(std::make_unique<FullyDynamicClusterer>(params, options));
    full_ids.emplace_back(w.points.size(), kInvalidPoint);
  }

  for (size_t i = 0; i < w.ops.size(); ++i) {
    const Operation& op = w.ops[i];
    if (op.type != Operation::Type::kQuery) {
      ApplyOp(inc, w, op, inc_id);
      for (size_t s = 0; s < fulls.size(); ++s) {
        ApplyOp(*fulls[s], w, op, full_ids[s]);
      }
      continue;
    }
    auto to_pids = [&](const std::vector<PointId>& ids) {
      std::vector<PointId> q;
      q.reserve(op.query.size());
      for (const int64_t k : op.query) q.push_back(ids[k]);
      return q;
    };
    const auto want = RemapToInsertionIndex(inc.Query(to_pids(inc_id)), inc_id);
    for (size_t s = 0; s < fulls.size(); ++s) {
      const auto got = RemapToInsertionIndex(
          fulls[s]->Query(to_pids(full_ids[s])), full_ids[s]);
      ASSERT_EQ(got, want) << stacks[s].name << " at op " << i;
    }
  }
}

/// The paper's experimental requirement (Section 8.1): with rho = 0.001 the
/// ρ-double-approximate algorithm must return exactly the same clusters as
/// the ρ-approximate one. On insertion-only workloads we can check this
/// directly: Semi-Approx vs Double-Approx, same rho.
TEST(EquivalenceTest, DoubleApproxMatchesSemiApproxAtTinyRho) {
  WorkloadConfig config;
  config.num_updates = 1200;
  config.insert_fraction = 1.0;
  config.query_every = 0;
  config.spreader.dim = 3;
  config.spreader.extent = 4000.0;
  config.seed = 101;
  const Workload w = BuildWorkload(config);

  DbscanParams params{.dim = 3, .eps = 200.0, .min_pts = 10, .rho = 0.001};
  SemiDynamicClusterer semi(params);
  FullyDynamicClusterer full(params);

  for (size_t i = 0; i < w.ops.size(); ++i) {
    semi.Insert(w.points[w.ops[i].target]);
    full.Insert(w.points[w.ops[i].target]);
  }
  auto a = semi.QueryAll();
  auto b = full.QueryAll();
  a.Canonicalize();
  b.Canonicalize();
  ASSERT_EQ(a, b);
}

}  // namespace
}  // namespace ddc
