#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/box.h"
#include "grid/grid.h"
#include "grid/neighbor_offsets.h"
#include "tests/test_util.h"

namespace ddc {
namespace {

TEST(CellKeyTest, OfUsesFloor) {
  const double side = 2.0;
  const CellKey k = CellKey::Of(Point{3.5, -0.5}, 2, side);
  EXPECT_EQ(k[0], 1);
  EXPECT_EQ(k[1], -1);
}

TEST(CellKeyTest, ShiftAndEquality) {
  const CellKey a = CellKey::Of(Point{0.5, 0.5}, 2, 1.0);
  std::array<int32_t, kMaxDim> off{};
  off[0] = 2;
  off[1] = -1;
  const CellKey b = a.Shifted(off, 2);
  EXPECT_EQ(b[0], 2);
  EXPECT_EQ(b[1], -1);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Hash(), b.Hash());  // Overwhelmingly likely.
}

// The offset table must contain exactly the offsets whose box-to-box gap is
// at most eps — cross-checked against explicit Box geometry.
class NeighborOffsetsTest : public ::testing::TestWithParam<int> {};

TEST_P(NeighborOffsetsTest, MatchesBoxDistance) {
  const int dim = GetParam();
  const double eps = 3.7;
  const double side = eps / std::sqrt(static_cast<double>(dim));
  NeighborOffsets table(dim, side, eps);

  std::set<std::array<int32_t, kMaxDim>> got(table.offsets().begin(),
                                             table.offsets().end());
  // No duplicates.
  EXPECT_EQ(got.size(), table.offsets().size());
  // Origin excluded.
  EXPECT_EQ(got.count(std::array<int32_t, kMaxDim>{}), 0u);

  // Brute-force enumeration over a generous radius.
  const int radius = static_cast<int>(std::ceil(std::sqrt(dim))) + 2;
  Point zero_lo, zero_hi;
  for (int i = 0; i < dim; ++i) {
    zero_lo[i] = 0;
    zero_hi[i] = side;
  }
  const Box origin(zero_lo, zero_hi);

  std::array<int32_t, kMaxDim> z{};
  int checked = 0;
  std::vector<int> stack(dim, -radius);
  for (;;) {
    for (int i = 0; i < dim; ++i) z[i] = stack[i];
    bool zero = std::all_of(stack.begin(), stack.end(),
                            [](int v) { return v == 0; });
    Point lo, hi;
    for (int i = 0; i < dim; ++i) {
      lo[i] = z[i] * side;
      hi[i] = (z[i] + 1) * side;
    }
    const bool close =
        origin.MinSquaredDistance(Box(lo, hi), dim) <= eps * eps * (1 + 1e-12);
    if (!zero) {
      EXPECT_EQ(got.count(z) > 0, close) << "offset mismatch at dim=" << dim;
    }
    ++checked;
    int i = 0;
    while (i < dim && stack[i] == radius) stack[i++] = -radius;
    if (i == dim) break;
    ++stack[i];
  }
  EXPECT_GT(checked, 1);
}

INSTANTIATE_TEST_SUITE_P(Dims, NeighborOffsetsTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(GridTest, InsertDeleteBookkeeping) {
  Grid grid(2, 1.0);
  const auto r1 = grid.Insert(Point{0.1, 0.1});
  const auto r2 = grid.Insert(Point{0.2, 0.2});
  EXPECT_TRUE(r1.cell_created);
  EXPECT_FALSE(r2.cell_created);   // Same cell (side ≈ 0.707).
  EXPECT_EQ(r1.cell, r2.cell);
  EXPECT_EQ(grid.size(), 2);
  EXPECT_EQ(grid.cell(r1.cell).size(), 2);

  grid.Delete(r1.id);
  EXPECT_FALSE(grid.alive(r1.id));
  EXPECT_TRUE(grid.alive(r2.id));
  EXPECT_EQ(grid.size(), 1);
  EXPECT_EQ(grid.cell(r1.cell).size(), 1);
  EXPECT_EQ(grid.cell(r1.cell).points[0], r2.id);

  // The cell object survives emptiness.
  grid.Delete(r2.id);
  EXPECT_EQ(grid.cell(r1.cell).size(), 0);
  EXPECT_EQ(grid.num_cells(), 1);

  // Reinsertion reuses the materialized cell.
  const auto r3 = grid.Insert(Point{0.3, 0.3});
  EXPECT_FALSE(r3.cell_created);
  EXPECT_EQ(r3.cell, r1.cell);
}

TEST(GridTest, NeighborLinksAreSymmetricAndClose) {
  Rng rng(77);
  Grid grid(3, 2.0);
  for (const Point& p : UniformPoints(rng, 300, 3, 12.0)) grid.Insert(p);

  for (CellId c = 0; c < grid.num_cells(); ++c) {
    const Box cb = grid.cell_box(c);
    for (const CellId nb : grid.cell(c).neighbors) {
      EXPECT_NE(nb, c);
      // ε-close by geometry.
      EXPECT_LE(cb.MinSquaredDistance(grid.cell_box(nb), 3),
                grid.eps() * grid.eps() * (1 + 1e-9));
      // Symmetric.
      const auto& back = grid.cell(nb).neighbors;
      EXPECT_NE(std::find(back.begin(), back.end(), c), back.end());
    }
  }
}

TEST(GridTest, NeighborLinksAreComplete) {
  // Every pair of materialized cells within eps must be linked.
  Rng rng(78);
  Grid grid(2, 1.5);
  for (const Point& p : UniformPoints(rng, 200, 2, 10.0)) grid.Insert(p);
  const double eps_sq = grid.eps() * grid.eps();
  for (CellId a = 0; a < grid.num_cells(); ++a) {
    for (CellId b = a + 1; b < grid.num_cells(); ++b) {
      const double gap_sq =
          grid.cell_box(a).MinSquaredDistance(grid.cell_box(b), 2);
      // Ties at exactly eps (e.g. diagonal offsets on a side of ε/√d) are
      // resolved by the offset table with a tolerance; skip the knife edge.
      if (std::abs(gap_sq - eps_sq) <= 1e-9 * eps_sq) continue;
      const bool close = gap_sq < eps_sq;
      const auto& nbs = grid.cell(a).neighbors;
      const bool linked = std::find(nbs.begin(), nbs.end(), b) != nbs.end();
      EXPECT_EQ(linked, close) << "cells " << a << "," << b;
    }
  }
}

class GridRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(GridRangeTest, RangeMatchesBruteForce) {
  const int dim = GetParam();
  Rng rng(100 + dim);
  const double eps = 1.3;
  Grid grid(dim, eps);
  std::vector<Point> pts = UniformPoints(rng, 400, dim, 8.0);
  std::vector<PointId> ids;
  for (const Point& p : pts) ids.push_back(grid.Insert(p).id);

  // Delete a third of them.
  std::vector<bool> alive(pts.size(), true);
  for (size_t i = 0; i < pts.size(); i += 3) {
    grid.Delete(ids[i]);
    alive[i] = false;
  }

  for (int probe = 0; probe < 50; ++probe) {
    const Point q = UniformPoints(rng, 1, dim, 8.0)[0];
    std::set<PointId> got;
    grid.ForEachPointInRange(q, eps, [&](PointId p) { got.insert(p); });
    std::set<PointId> want;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (alive[i] && WithinDistance(q, pts[i], dim, eps)) {
        want.insert(ids[i]);
      }
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GridRangeTest, ::testing::Values(1, 2, 3, 5, 7));

TEST(GridTest, FindCell) {
  Grid grid(2, 1.0);
  EXPECT_EQ(grid.FindCell(Point{5, 5}), kInvalidCell);
  const auto r = grid.Insert(Point{5, 5});
  EXPECT_EQ(grid.FindCell(Point{5, 5}), r.cell);
  EXPECT_EQ(grid.FindCell(Point{50, 50}), kInvalidCell);
}

TEST(GridTest, CellBoxContainsItsPoints) {
  Rng rng(5);
  Grid grid(4, 2.2);
  for (const Point& p : UniformPoints(rng, 200, 4, 9.0)) {
    const auto r = grid.Insert(p);
    EXPECT_TRUE(grid.cell_box(r.cell).Contains(p, 4));
  }
}

TEST(GridTest, NegativeCoordinates) {
  Grid grid(2, 1.0);
  const auto a = grid.Insert(Point{-0.1, -0.1});
  const auto b = grid.Insert(Point{0.1, 0.1});
  EXPECT_NE(a.cell, b.cell);
  int found = 0;
  grid.ForEachPointInRange(Point{0, 0}, 1.0, [&](PointId) { ++found; });
  EXPECT_EQ(found, 2);
}

}  // namespace
}  // namespace ddc
