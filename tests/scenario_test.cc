#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/scenario.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// Tiny-size specs exercising every registered scenario; kept in sync with
/// the registry by the RegistryIsFullyCovered test below.
const char* kTinySpecs[] = {
    "paper-mixed:n=600,qevery=100",
    "sliding-window:n=600,window=150,qevery=100",
    "burst:n=600,burst=80,dup=0.4,qevery=100",
    "zipf:n=600,clusters=8,alpha=1.2,ins=0.8,qevery=100",
    "drift:n=600,clusters=4,window=200,qevery=100",
    "hotspot:n=600,clusters=4,cold=6,band=0.1,qevery=100",
    "hotspot-migrate:n=600,period=150,clusters=4,cold=6,band=0.1,qevery=100",
    "query-storm:n=600,clusters=4,qevery=10,qmin=8,qmax=32",
    "split-merge:n=600,eps=150,qevery=100",
};

/// Structural invariants every generated workload must satisfy: update
/// counts match the ops stream, deletes hit only alive points, queries
/// reference only alive points without duplicates.
void ExpectValidWorkload(const Workload& w) {
  EXPECT_GT(w.dim, 0);
  EXPECT_EQ(w.num_updates, w.num_inserts + w.num_deletes);

  std::set<int64_t> alive;
  int64_t inserts = 0, deletes = 0, queries = 0;
  for (const Operation& op : w.ops) {
    switch (op.type) {
      case Operation::Type::kInsert:
        ASSERT_GE(op.target, 0);
        ASSERT_LT(op.target, static_cast<int64_t>(w.points.size()));
        ASSERT_TRUE(alive.insert(op.target).second) << "double insert";
        ++inserts;
        break;
      case Operation::Type::kDelete:
        ASSERT_EQ(alive.erase(op.target), 1u) << "delete of dead point";
        ++deletes;
        break;
      case Operation::Type::kQuery: {
        ASSERT_FALSE(op.query.empty());
        std::set<int64_t> uniq;
        for (const int64_t idx : op.query) {
          ASSERT_TRUE(alive.count(idx)) << "query references dead point";
          ASSERT_TRUE(uniq.insert(idx).second) << "duplicate in query";
        }
        ++queries;
        break;
      }
    }
  }
  EXPECT_EQ(inserts, w.num_inserts);
  EXPECT_EQ(deletes, w.num_deletes);
  EXPECT_EQ(queries, w.num_queries);
}

bool SameWorkload(const Workload& a, const Workload& b) {
  if (a.points.size() != b.points.size() || a.ops.size() != b.ops.size() ||
      a.dim != b.dim) {
    return false;
  }
  for (size_t i = 0; i < a.points.size(); ++i) {
    if (!(a.points[i] == b.points[i])) return false;
  }
  for (size_t i = 0; i < a.ops.size(); ++i) {
    if (a.ops[i].type != b.ops[i].type || a.ops[i].target != b.ops[i].target ||
        a.ops[i].query != b.ops[i].query) {
      return false;
    }
  }
  return true;
}

TEST(ScenarioSpecTest, NameOnly) {
  const ScenarioSpec spec = ScenarioSpec::Parse("burst");
  EXPECT_EQ(spec.name(), "burst");
  EXPECT_EQ(spec.GetInt("n", 123), 123);
  spec.CheckAllKeysConsumed();  // Nothing to consume.
}

TEST(ScenarioSpecTest, TypedParameterAccess) {
  const ScenarioSpec spec = ScenarioSpec::Parse("burst:n=200000,dup=0.3");
  EXPECT_EQ(spec.name(), "burst");
  EXPECT_EQ(spec.text(), "burst:n=200000,dup=0.3");
  EXPECT_EQ(spec.GetInt("n", 0), 200000);
  EXPECT_DOUBLE_EQ(spec.GetDouble("dup", 0), 0.3);
  EXPECT_DOUBLE_EQ(spec.GetDouble("absent", 2.5), 2.5);
  spec.CheckAllKeysConsumed();
}

TEST(ScenarioSpecTest, LastOccurrenceWins) {
  const ScenarioSpec spec = ScenarioSpec::Parse("burst:n=1,n=2");
  EXPECT_EQ(spec.GetInt("n", 0), 2);
}

TEST(ScenarioSpecTest, SeedParameterBeatsInstalledDefault) {
  ScenarioSpec with = ScenarioSpec::Parse("burst:seed=99");
  with.set_seed(5);
  EXPECT_EQ(with.seed(), 99u);
  with.CheckAllKeysConsumed();  // `seed` counts as consumed.

  ScenarioSpec without = ScenarioSpec::Parse("burst");
  without.set_seed(5);
  EXPECT_EQ(without.seed(), 5u);
}

TEST(ScenarioSpecDeathTest, MalformedSpecsAbort) {
  EXPECT_DEATH(ScenarioSpec::Parse(""), "DDC_CHECK failed");
  EXPECT_DEATH(ScenarioSpec::Parse(":n=1"), "DDC_CHECK failed");
  EXPECT_DEATH(ScenarioSpec::Parse("burst:n"), "missing '='");
  EXPECT_DEATH(ScenarioSpec::Parse("burst:n=1,"), "empty item");
  EXPECT_DEATH(ScenarioSpec::Parse("burst:seed=abc"), "unsigned integer");
  EXPECT_DEATH(ScenarioSpec::Parse("burst:seed=7x"), "unsigned integer");
  EXPECT_DEATH(ScenarioSpec::Parse("burst:seed=-1"), "unsigned integer");
  const ScenarioSpec bad = ScenarioSpec::Parse("burst:n=abc");
  EXPECT_DEATH(bad.GetInt("n", 0), "not an integer");
}

TEST(ScenarioRegistryTest, LookupAndHelp) {
  EXPECT_NE(FindScenario("paper-mixed"), nullptr);
  EXPECT_NE(FindScenario("split-merge"), nullptr);
  EXPECT_EQ(FindScenario("no-such-scenario"), nullptr);
  for (const auto& s : AllScenarios()) {
    EXPECT_FALSE(s->help().empty());
    EXPECT_NE(ScenarioHelp().find(s->name()), std::string::npos);
  }
}

TEST(ScenarioRegistryTest, RegistryIsFullyCovered) {
  // Every registered scenario appears in kTinySpecs, so the determinism and
  // validity loops below cover new scenarios the moment they register (this
  // test fails until the spec list is extended).
  std::set<std::string> covered;
  for (const char* spec : kTinySpecs) {
    covered.insert(ScenarioSpec::Parse(spec).name());
  }
  for (const auto& s : AllScenarios()) {
    EXPECT_TRUE(covered.count(s->name())) << "no tiny spec for " << s->name();
  }
  EXPECT_EQ(covered.size(), AllScenarios().size());
}

TEST(ScenarioRegistryDeathTest, UnknownScenarioAndUnknownKeyAbort) {
  EXPECT_DEATH(BuildScenarioWorkload("no-such-scenario", 1),
               "unknown scenario");
  // Typos in parameter names must fail loudly, not silently run defaults.
  EXPECT_DEATH(BuildScenarioWorkload("burst:n=100,windw=5", 1),
               "unknown .*parameter");
}

TEST(ScenarioWorkloadsTest, EveryScenarioProducesAValidWorkload) {
  for (const char* spec : kTinySpecs) {
    SCOPED_TRACE(spec);
    const Workload w = BuildScenarioWorkload(spec, 42);
    ExpectValidWorkload(w);
    EXPECT_EQ(w.num_updates, 600);
    EXPECT_GT(w.num_queries, 0);
    EXPECT_EQ(w.seed, 42u);  // Effective-seed provenance.
  }
}

TEST(ScenarioWorkloadsTest, SpecSeedWinsAndIsRecorded) {
  const Workload w = BuildScenarioWorkload("burst:n=200,seed=99", 42);
  EXPECT_EQ(w.seed, 99u);
  const Workload same = BuildScenarioWorkload("burst:n=200", 99);
  EXPECT_TRUE(SameWorkload(w, same)) << "seed=99 must equal --seed 99";
}

TEST(ScenarioWorkloadsTest, DeterministicGivenSeed) {
  for (const char* spec : kTinySpecs) {
    SCOPED_TRACE(spec);
    const Workload a = BuildScenarioWorkload(spec, 42);
    const Workload b = BuildScenarioWorkload(spec, 42);
    EXPECT_TRUE(SameWorkload(a, b)) << "same seed must reproduce verbatim";
    const Workload c = BuildScenarioWorkload(spec, 43);
    EXPECT_FALSE(SameWorkload(a, c)) << "different seed must differ";
  }
}

TEST(ScenarioWorkloadsTest, ScenarioShapesMatchTheirContracts) {
  // sliding-window: alive set never exceeds the window.
  {
    const Workload w =
        BuildScenarioWorkload("sliding-window:n=600,window=100,qevery=0", 1);
    int64_t alive = 0, peak = 0;
    for (const Operation& op : w.ops) {
      if (op.type == Operation::Type::kInsert) ++alive;
      if (op.type == Operation::Type::kDelete) --alive;
      peak = std::max(peak, alive);
    }
    EXPECT_LE(peak, 101);  // Window plus the in-flight insert.
    EXPECT_GT(w.num_deletes, 0);
  }
  // split-merge: deletions target exactly the bridge points, so delete
  // count is a large fraction of updates after the blobs are built.
  {
    const Workload w =
        BuildScenarioWorkload("split-merge:n=600,blob=30,qevery=0", 1);
    EXPECT_GT(w.num_deletes, 600 / 4);
  }
  // paper-mixed honors the insert fraction.
  {
    const Workload w = BuildScenarioWorkload("paper-mixed:n=600,ins=1.0", 1);
    EXPECT_EQ(w.num_deletes, 0);
    EXPECT_EQ(w.num_inserts, 600);
  }
  // zipf: dim key propagates to the workload.
  {
    const Workload w = BuildScenarioWorkload("zipf:n=200,dim=5", 1);
    EXPECT_EQ(w.dim, 5);
  }
  // hotspot-migrate: the hot band actually moves — with every insert forced
  // into the band, the dim-0 spread across the run far exceeds one band
  // width (stationary hotspot would stay within band_w + 2*radius = 4200).
  {
    const Workload w = BuildScenarioWorkload(
        "hotspot-migrate:n=900,period=300,hot=1.0,noise=0,cold=1,qevery=0",
        1);
    EXPECT_GT(w.num_deletes, 0);
    double lo = 1e18, hi = -1e18;
    for (const Operation& op : w.ops) {
      if (op.type != Operation::Type::kInsert) continue;
      lo = std::min(lo, w.points[op.target][0]);
      hi = std::max(hi, w.points[op.target][0]);
    }
    EXPECT_GT(hi - lo, 6000.0);
  }
  // query-storm: queries dominate the op stream (one every qevery=5
  // updates by default), with the configured |Q| bounds, and the trickle
  // includes genuine churn.
  {
    const Workload w =
        BuildScenarioWorkload("query-storm:n=1000,qevery=5,qmin=8,qmax=16", 1);
    EXPECT_GE(w.num_queries, 1000 / 5 - 1);
    EXPECT_GT(w.num_deletes, 0);
    for (const Operation& op : w.ops) {
      if (op.type == Operation::Type::kQuery) {
        EXPECT_LE(op.query.size(), 16u);
      }
    }
  }
}

}  // namespace
}  // namespace ddc
