#include <gtest/gtest.h>

#include "geom/box.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {
namespace {

TEST(PointTest, DistanceBasics) {
  const Point a{0, 0, 0};
  const Point b{3, 4, 0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 3), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, 3), 5.0);
  EXPECT_TRUE(WithinDistance(a, b, 3, 5.0));
  EXPECT_FALSE(WithinDistance(a, b, 3, 4.999));
}

TEST(PointTest, DistanceRespectsDimension) {
  const Point a{0, 0, 7};
  const Point b{1, 0, -9};
  // In 2D the third coordinate is ignored.
  EXPECT_DOUBLE_EQ(Distance(a, b, 2), 1.0);
  EXPECT_GT(Distance(a, b, 3), 16.0);
}

TEST(PointTest, DefaultIsOrigin) {
  const Point p;
  for (int i = 0; i < kMaxDim; ++i) EXPECT_EQ(p[i], 0.0);
}

TEST(PointTest, ToString) {
  const Point p{1.5, -2};
  EXPECT_EQ(p.ToString(2), "(1.5, -2)");
}

TEST(PointTest, PaddingIsZero) {
  Point p{1, 2};
  EXPECT_TRUE(PaddingIsZero(p, 2));
  EXPECT_TRUE(PaddingIsZero(p, kMaxDim));
  p[5] = 0.25;  // Poison an unused dimension.
  EXPECT_FALSE(PaddingIsZero(p, 2));
  EXPECT_FALSE(PaddingIsZero(p, 5));
  EXPECT_TRUE(PaddingIsZero(p, 6));  // The poisoned dim now counts as used.
  p[5] = 0;
  EXPECT_TRUE(PaddingIsZero(p, 2));
  // -0.0 == 0.0: a negative zero does not violate the invariant.
  p[7] = -0.0;
  EXPECT_TRUE(PaddingIsZero(p, 2));
}

#ifndef NDEBUG
TEST(PointPaddingDeathTest, GridInsertRejectsPoisonedPadding) {
  // The documented "unused coordinates must be zero" contract is enforced on
  // the insert path in debug builds: the non-const operator[] lets callers
  // stage arbitrary coordinates, but a poisoned point must never enter a
  // grid (cell keys, packed mirrors, and equality all assume the padding).
  Point p{1, 2};
  p[4] = 3.5;
  Grid grid(2, 1.0);
  EXPECT_DEATH(grid.Insert(p), "PaddingIsZero");
}
#endif

TEST(BoxTest, Contains) {
  const Box box(Point{0, 0}, Point{1, 2});
  EXPECT_TRUE(box.Contains(Point{0.5, 1.0}, 2));
  EXPECT_TRUE(box.Contains(Point{0, 0}, 2));   // Boundary inclusive.
  EXPECT_TRUE(box.Contains(Point{1, 2}, 2));
  EXPECT_FALSE(box.Contains(Point{1.01, 1}, 2));
}

TEST(BoxTest, MinDistanceToPoint) {
  const Box box(Point{0, 0}, Point{1, 1});
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(Point{0.5, 0.5}, 2), 0.0);
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(Point{2, 0.5}, 2), 1.0);
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(Point{2, 2}, 2), 2.0);
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(Point{-3, -4}, 2), 25.0);
}

TEST(BoxTest, MinDistanceToBox) {
  const Box a(Point{0, 0}, Point{1, 1});
  const Box overlapping(Point{0.5, 0.5}, Point{2, 2});
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(overlapping, 2), 0.0);
  const Box right(Point{3, 0}, Point{4, 1});
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(right, 2), 4.0);
  const Box diagonal(Point{2, 2}, Point{3, 3});
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(diagonal, 2), 2.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(diagonal.MinSquaredDistance(a, 2), 2.0);
}

}  // namespace
}  // namespace ddc
