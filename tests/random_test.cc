#include <gtest/gtest.h>

#include "common/random.h"

namespace ddc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  // Bound 1 always yields 0.
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // Rough uniformity.
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace ddc
