#ifndef DDC_TESTS_TEST_UTIL_H_
#define DDC_TESTS_TEST_UTIL_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "core/clusterer.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/params.h"
#include "core/static_dbscan.h"
#include "geom/point.h"
#include "workload/workload.h"

namespace ddc {

/// n points uniform in [0, extent)^dim.
inline std::vector<Point> UniformPoints(Rng& rng, int n, int dim,
                                        double extent) {
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    for (int i = 0; i < dim; ++i) p[i] = rng.NextDouble(0, extent);
  }
  return pts;
}

/// n points drawn from `blobs` clusters of the given radius placed uniformly
/// in [0, extent)^dim, plus a fraction of uniform noise. Produces the kind
/// of density structure DBSCAN is designed for.
inline std::vector<Point> BlobPoints(Rng& rng, int n, int dim, double extent,
                                     int blobs, double radius,
                                     double noise_fraction = 0.05) {
  std::vector<Point> centers = UniformPoints(rng, blobs, dim, extent);
  std::vector<Point> pts;
  pts.reserve(n);
  for (int k = 0; k < n; ++k) {
    if (rng.NextBernoulli(noise_fraction)) {
      pts.push_back(UniformPoints(rng, 1, dim, extent)[0]);
      continue;
    }
    const Point& c = centers[rng.NextBelow(blobs)];
    Point p;
    for (int i = 0; i < dim; ++i) {
      p[i] = c[i] + rng.NextDouble(-radius, radius);
    }
    pts.push_back(p);
  }
  return pts;
}

/// Ground-truth clustering of `points` as canonical groups (ids = positions).
inline CGroupByResult OracleGroups(const std::vector<Point>& points,
                                   const DbscanParams& params) {
  return StaticDbscan(points, params).ToGroups();
}

/// Exact-DBSCAN groups at radius (1+rho)*eps — the sandwich upper bound.
inline CGroupByResult OracleGroupsOuter(const std::vector<Point>& points,
                                        DbscanParams params) {
  params.eps = params.eps_outer();
  params.rho = 0;
  return StaticDbscan(points, params).ToGroups();
}

/// The id-translation idiom shared by the cross-algorithm tests: workloads
/// address points by *insertion index*, each clusterer assigns its own
/// PointIds, and `ids[k]` records the live PointId of insertion index k
/// (kInvalidPoint while not inserted or after deletion).

/// Applies one workload update to `c`, maintaining the `ids` translation
/// table. Query operations are ignored (tests issue their own queries).
inline void ApplyOp(Clusterer& c, const Workload& w, const Operation& op,
                    std::vector<PointId>& ids) {
  if (op.type == Operation::Type::kInsert) {
    ids[op.target] = c.Insert(w.points[op.target]);
  } else if (op.type == Operation::Type::kDelete) {
    DDC_CHECK(ids[op.target] != kInvalidPoint);
    c.Delete(ids[op.target]);
    ids[op.target] = kInvalidPoint;
  }
}

/// The insertion indices currently alive under `ids`, ascending.
inline std::vector<PointId> AliveInsertionIndices(
    const std::vector<PointId>& ids) {
  std::vector<PointId> alive;
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] != kInvalidPoint) alive.push_back(static_cast<PointId>(k));
  }
  return alive;
}

/// Remaps a query result from clusterer-assigned PointIds back to insertion
/// indices, so results from different clusterers (whose id streams diverge
/// once deletions interleave with id assignment) become comparable.
/// Canonicalized.
inline CGroupByResult RemapToInsertionIndex(CGroupByResult r,
                                            const std::vector<PointId>& ids) {
  std::unordered_map<PointId, PointId> inv;
  for (size_t k = 0; k < ids.size(); ++k) {
    if (ids[k] != kInvalidPoint) inv[ids[k]] = static_cast<PointId>(k);
  }
  for (auto& g : r.groups) {
    for (auto& p : g) p = inv.at(p);
  }
  for (auto& p : r.noise) p = inv.at(p);
  r.Canonicalize();
  return r;
}

/// Exact-DBSCAN oracle over the alive subset of the workload's points,
/// labeled by insertion index (rho is ignored by StaticDbscan, so pass
/// params with eps = eps_outer() for the sandwich upper bound).
inline CGroupByResult OracleOverAlive(const std::vector<Point>& points,
                                      const std::vector<PointId>& ids,
                                      const DbscanParams& params) {
  const std::vector<PointId> alive = AliveInsertionIndices(ids);
  std::vector<Point> alive_points;
  alive_points.reserve(alive.size());
  for (const PointId k : alive) alive_points.push_back(points[k]);
  return StaticDbscan(alive_points, params).ToGroups(alive);
}

/// The emptiness kinds valid at the given rho (kSubGrid buckets at side
/// ρε/(2√d), so it exists only for rho > 0), with display names.
inline std::vector<std::pair<EmptinessKind, const char*>> EmptinessKinds(
    double rho) {
  std::vector<std::pair<EmptinessKind, const char*>> kinds = {
      {EmptinessKind::kBruteForce, "bf"}, {EmptinessKind::kKdTree, "kdtree"}};
  if (rho > 0) kinds.push_back({EmptinessKind::kSubGrid, "subgrid"});
  return kinds;
}

/// One named FullyDynamicClusterer::Options structure stack.
struct NamedOptions {
  std::string name;
  FullyDynamicClusterer::Options options;
};

/// Every options combination valid at the given rho — the single source the
/// cross-algorithm tests enumerate from, so adding a structure kind widens
/// every suite at once. The kSubGrid emptiness and counter structures bucket
/// at side ρε/(2√d), so they exist only for rho > 0.
inline std::vector<NamedOptions> FullyDynamicOptionStacks(double rho) {
  const std::pair<ConnectivityKind, const char*> connectivity[] = {
      {ConnectivityKind::kHdt, "hdt"}, {ConnectivityKind::kBfs, "bfs"}};
  const std::pair<CounterKind, const char*> counters[] = {
      {CounterKind::kExact, "exact"}, {CounterKind::kSubGrid, "subgrid"}};

  std::vector<NamedOptions> stacks;
  for (const auto& [e, e_name] : EmptinessKinds(rho)) {
    for (const auto& [c, c_name] : connectivity) {
      for (const auto& [k, k_name] : counters) {
        if (rho == 0 && k == CounterKind::kSubGrid) continue;
        FullyDynamicClusterer::Options options;
        options.emptiness = e;
        options.connectivity = c;
        options.counter = k;
        stacks.push_back({std::string(e_name) + "+" + c_name + "+" + k_name,
                          options});
      }
    }
  }
  return stacks;
}

}  // namespace ddc

#endif  // DDC_TESTS_TEST_UTIL_H_
