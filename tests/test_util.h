#ifndef DDC_TESTS_TEST_UTIL_H_
#define DDC_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/random.h"
#include "core/clusterer.h"
#include "core/params.h"
#include "core/static_dbscan.h"
#include "geom/point.h"

namespace ddc {

/// n points uniform in [0, extent)^dim.
inline std::vector<Point> UniformPoints(Rng& rng, int n, int dim,
                                        double extent) {
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    for (int i = 0; i < dim; ++i) p[i] = rng.NextDouble(0, extent);
  }
  return pts;
}

/// n points drawn from `blobs` clusters of the given radius placed uniformly
/// in [0, extent)^dim, plus a fraction of uniform noise. Produces the kind
/// of density structure DBSCAN is designed for.
inline std::vector<Point> BlobPoints(Rng& rng, int n, int dim, double extent,
                                     int blobs, double radius,
                                     double noise_fraction = 0.05) {
  std::vector<Point> centers = UniformPoints(rng, blobs, dim, extent);
  std::vector<Point> pts;
  pts.reserve(n);
  for (int k = 0; k < n; ++k) {
    if (rng.NextBernoulli(noise_fraction)) {
      pts.push_back(UniformPoints(rng, 1, dim, extent)[0]);
      continue;
    }
    const Point& c = centers[rng.NextBelow(blobs)];
    Point p;
    for (int i = 0; i < dim; ++i) {
      p[i] = c[i] + rng.NextDouble(-radius, radius);
    }
    pts.push_back(p);
  }
  return pts;
}

/// Ground-truth clustering of `points` as canonical groups (ids = positions).
inline CGroupByResult OracleGroups(const std::vector<Point>& points,
                                   const DbscanParams& params) {
  return StaticDbscan(points, params).ToGroups();
}

/// Exact-DBSCAN groups at radius (1+rho)*eps — the sandwich upper bound.
inline CGroupByResult OracleGroupsOuter(const std::vector<Point>& points,
                                        DbscanParams params) {
  params.eps = params.eps_outer();
  params.rho = 0;
  return StaticDbscan(points, params).ToGroups();
}

}  // namespace ddc

#endif  // DDC_TESTS_TEST_UTIL_H_
