#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "connectivity/euler_tour_tree.h"
#include "unionfind/union_find.h"

namespace ddc {
namespace {

TEST(EulerTourForestTest, SingletonBasics) {
  EulerTourForest f;
  f.EnsureVertices(3);
  EXPECT_TRUE(f.Connected(0, 0));
  EXPECT_FALSE(f.Connected(0, 1));
  EXPECT_EQ(f.TreeSize(0), 1);
  EXPECT_NE(f.Representative(0), f.Representative(1));
}

TEST(EulerTourForestTest, LinkCutRoundTrip) {
  EulerTourForest f;
  f.EnsureVertices(4);
  const auto ab = f.Link(0, 1);
  EXPECT_TRUE(f.Connected(0, 1));
  EXPECT_EQ(f.TreeSize(0), 2);

  const auto cd = f.Link(2, 3);
  const auto bc = f.Link(1, 2);
  EXPECT_TRUE(f.Connected(0, 3));
  EXPECT_EQ(f.TreeSize(3), 4);
  EXPECT_EQ(f.Representative(0), f.Representative(3));

  f.Cut(bc);
  EXPECT_FALSE(f.Connected(0, 3));
  EXPECT_TRUE(f.Connected(0, 1));
  EXPECT_TRUE(f.Connected(2, 3));
  EXPECT_EQ(f.TreeSize(0), 2);
  EXPECT_EQ(f.TreeSize(2), 2);

  f.Cut(ab);
  f.Cut(cd);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(f.TreeSize(i), 1);
}

TEST(EulerTourForestTest, StarAndPathShapes) {
  // A star cut at the center leaf-by-leaf, and a long path cut in the
  // middle, exercise both extreme tour shapes.
  EulerTourForest f;
  f.EnsureVertices(20);
  std::vector<EulerTourForest::ArcPair> star;
  for (int i = 1; i <= 9; ++i) star.push_back(f.Link(0, i));
  EXPECT_EQ(f.TreeSize(0), 10);
  for (int i = 9; i >= 1; --i) {
    f.Cut(star[i - 1]);
    EXPECT_EQ(f.TreeSize(0), i);
    EXPECT_FALSE(f.Connected(0, i));
  }

  std::vector<EulerTourForest::ArcPair> path;
  for (int i = 10; i < 19; ++i) path.push_back(f.Link(i, i + 1));
  EXPECT_EQ(f.TreeSize(15), 10);
  f.Cut(path[4]);  // Between 14 and 15.
  EXPECT_TRUE(f.Connected(10, 14));
  EXPECT_TRUE(f.Connected(15, 19));
  EXPECT_FALSE(f.Connected(14, 15));
  EXPECT_EQ(f.TreeSize(10), 5);
  EXPECT_EQ(f.TreeSize(19), 5);
}

TEST(EulerTourForestTest, RepresentativeStableAcrossQueries) {
  EulerTourForest f;
  f.EnsureVertices(6);
  f.Link(0, 1);
  f.Link(1, 2);
  const EttNode* r1 = f.Representative(2);
  const EttNode* r2 = f.Representative(0);
  const EttNode* r3 = f.Representative(1);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r2, r3);
}

TEST(EulerTourForestTest, VertexFlagsAreSearchable) {
  EulerTourForest f;
  f.EnsureVertices(8);
  for (int i = 0; i < 7; ++i) f.Link(i, i + 1);
  EXPECT_EQ(f.FindFlaggedVertex(0), -1);
  f.SetVertexFlag(5, true);
  EXPECT_EQ(f.FindFlaggedVertex(0), 5);
  f.SetVertexFlag(2, true);
  // Drain flags: must surface exactly {2, 5}.
  std::set<int> found;
  for (int x = f.FindFlaggedVertex(0); x != -1; x = f.FindFlaggedVertex(0)) {
    EXPECT_TRUE(found.insert(x).second);
    f.SetVertexFlag(x, false);
  }
  EXPECT_EQ(found, (std::set<int>{2, 5}));
}

TEST(EulerTourForestTest, ArcFlagsAreSearchable) {
  EulerTourForest f;
  f.EnsureVertices(5);
  std::vector<EulerTourForest::ArcPair> arcs;
  for (int i = 0; i < 4; ++i) arcs.push_back(f.Link(i, i + 1));
  EXPECT_EQ(f.FindFlaggedArc(0), nullptr);
  f.SetArcFlag(arcs[2].uv, true);
  EttNode* got = f.FindFlaggedArc(4);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got, arcs[2].uv);
  // Flag visible from any vertex of the tree, not others.
  EXPECT_EQ(f.FindFlaggedArc(0), arcs[2].uv);
  f.SetArcFlag(arcs[2].uv, false);
  EXPECT_EQ(f.FindFlaggedArc(0), nullptr);
}

// Randomized link/cut fuzz against union-find recomputation.
TEST(EulerTourForestFuzzTest, MatchesRecomputedConnectivity) {
  const int n = 60;
  Rng rng(2024);
  EulerTourForest f;
  f.EnsureVertices(n);
  // Current tree edges (a spanning forest by construction).
  std::map<std::pair<int, int>, EulerTourForest::ArcPair> tree;

  auto recompute = [&]() {
    UnionFind uf(n);
    for (const auto& [e, arcs] : tree) uf.Union(e.first, e.second);
    return uf;
  };

  for (int step = 0; step < 3000; ++step) {
    const int u = static_cast<int>(rng.NextBelow(n));
    const int v = static_cast<int>(rng.NextBelow(n));
    if (u == v) continue;
    if (!f.Connected(u, v)) {
      tree[{std::min(u, v), std::max(u, v)}] = f.Link(u, v);
    } else if (!tree.empty() && rng.NextBernoulli(0.5)) {
      // Cut a random existing tree edge.
      auto it = tree.begin();
      std::advance(it, rng.NextBelow(tree.size()));
      f.Cut(it->second);
      tree.erase(it);
    }
    if (step % 50 == 0) {
      UnionFind uf = recompute();
      for (int probe = 0; probe < 30; ++probe) {
        const int a = static_cast<int>(rng.NextBelow(n));
        const int b = static_cast<int>(rng.NextBelow(n));
        ASSERT_EQ(f.Connected(a, b), uf.Connected(a, b))
            << "step " << step << " pair " << a << "," << b;
      }
      // Tree sizes and representatives consistent.
      for (int a = 0; a < n; ++a) {
        int sz = 0;
        for (int b = 0; b < n; ++b) sz += uf.Connected(a, b);
        ASSERT_EQ(f.TreeSize(a), sz);
        for (int b = 0; b < n; ++b) {
          if (uf.Connected(a, b)) {
            ASSERT_EQ(f.Representative(a), f.Representative(b));
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ddc
