#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"

namespace ddc {
namespace {

using trace_internal::TraceEvent;
using trace_internal::TraceRing;

TraceEvent Event(const char* name, uint64_t start, uint64_t end) {
  TraceEvent e;
  e.name = name;
  e.start_ns = start;
  e.end_ns = end;
  return e;
}

/// Tracing state is process-global; every test starts disabled and empty.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Disable();
    Trace::ClearForTest();
  }
  void TearDown() override {
    Trace::Disable();
    Trace::ClearForTest();
  }
};

TEST(TraceRingTest, KeepsEverythingUnderCapacity) {
  TraceRing ring(4);
  ring.Record(Event("a", 1, 2));
  ring.Record(Event("b", 3, 4));
  const std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(ring.total_recorded(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, WrapDropsOldestKeepsNewest) {
  TraceRing ring(4);
  const char* names[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    ring.Record(Event(names[i], i * 10, i * 10 + 1));
  }
  const std::vector<TraceEvent> events = ring.Events();
  // 6 into 4: e0 and e1 are gone, survivors come back oldest first.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "e2");
  EXPECT_STREQ(events[1].name, "e3");
  EXPECT_STREQ(events[2].name, "e4");
  EXPECT_STREQ(events[3].name, "e5");
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Trace::enabled());
  { DDC_TRACE_SPAN("trace_test.disabled"); }
  const std::string json = Trace::ChromeTraceJson();
  EXPECT_EQ(json.find("trace_test.disabled"), std::string::npos);
}

TEST_F(TraceTest, SpansNestAndJsonParses) {
  Trace::Enable();
  {
    DDC_TRACE_SPAN("trace_test.outer");
    DDC_TRACE_SPAN("trace_test.inner");
  }
  Trace::Disable();

  std::string error;
  const std::optional<JsonValue> doc =
      JsonParse(Trace::ChromeTraceJson(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  for (const JsonValue& e : events->items) {
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    // Every event is a complete-span record with the Chrome keys.
    EXPECT_EQ(e.Find("ph")->string_value, "X");
    EXPECT_NE(e.Find("ts"), nullptr);
    EXPECT_NE(e.Find("dur"), nullptr);
    EXPECT_NE(e.Find("tid"), nullptr);
    if (name->string_value == "trace_test.outer") outer = &e;
    if (name->string_value == "trace_test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // RAII nesting: the inner span starts no earlier and ends no later.
  const double outer_ts = outer->Find("ts")->number_value;
  const double outer_end = outer_ts + outer->Find("dur")->number_value;
  const double inner_ts = inner->Find("ts")->number_value;
  const double inner_end = inner_ts + inner->Find("dur")->number_value;
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  Trace::Enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] { DDC_TRACE_SPAN("trace_test.threaded"); });
  }
  for (std::thread& t : threads) t.join();
  Trace::Disable();

  std::string error;
  const std::optional<JsonValue> doc =
      JsonParse(Trace::ChromeTraceJson(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  std::set<double> tids;
  for (const JsonValue& e : doc->Find("traceEvents")->items) {
    if (e.Find("name")->string_value == "trace_test.threaded") {
      tids.insert(e.Find("tid")->number_value);
    }
  }
  EXPECT_EQ(tids.size(), 3u);
}

TEST_F(TraceTest, EnableMidSpanDoesNotRecordIt) {
  // The enabled check happens at span construction, so a span opened while
  // disabled stays silent even if tracing turns on before it closes.
  {
    TraceSpan span("trace_test.straddler");
    Trace::Enable();
  }
  Trace::Disable();
  EXPECT_EQ(Trace::ChromeTraceJson().find("trace_test.straddler"),
            std::string::npos);
}

}  // namespace
}  // namespace ddc
