#!/usr/bin/env python3
"""Compare two sets of BENCH JSON files emitted by ddc_driver.

Usage:
    tools/bench_compare.py BASELINE_DIR CANDIDATE_DIR [--threshold=R]
                           [--key=full|base] [--metrics[=N]]

Pairs files by (scenario, method), prints per-pair throughput ratios
(candidate / baseline, > 1 is faster) plus p50/p99 update-latency ratios,
and a geometric-mean summary per method. A key present on only one side is
reported as a missing pair and not compared; directories with entirely
non-overlapping method sets are legal input (every key reports as missing
and the run says so instead of crashing or silently passing).

--metrics[=N] adds a report of the v3 `metrics` sections: for every metric
name present in both sides of a pair it computes the candidate/baseline
ratio, aggregates per name across pairs (geometric mean), and prints the N
(default 10) largest relative shifts in either direction. Purely
informational — it never affects the exit status; pairs or sides without a
metrics section are skipped.

--key=base pairs on the method's *base name* (the spec before ':'), for
comparing runs of one method at different knob settings — e.g. a
bench/sharded shards=1 directory against a shards=8 directory. With
--key=base each directory must hold at most one spec per (scenario, base
name); duplicates abort.

Exit status: 0 on a normal report, 1 when --threshold is given and a pair
falls below it, 2 on unusable input (no files, no comparable pairs, or
unreadable documents). The default CI wiring runs without a threshold as a
non-blocking report.
"""

import argparse
import json
import math
import sys
from pathlib import Path


# Every field this tool reads exists unchanged in both versions, so v2
# baselines (the committed trajectory dirs) compare against v3 candidates
# transparently; v3 merely adds run.interrupted and a metrics section.
ACCEPTED_SCHEMAS = (2, 3)


def load_bench_dir(path, key_mode):
    """(scenario, method-key) -> parsed BENCH document."""
    docs = {}
    for f in sorted(Path(path).glob("BENCH_*.json")):
        try:
            with open(f) as fh:
                doc = json.load(fh)
            schema = doc["schema_version"]
            scenario = doc["scenario"]
            method = doc["method"]
            doc["run"]["throughput_ops_per_sec"]
            doc["workload"]["num_updates"]
        except (json.JSONDecodeError, KeyError, TypeError) as err:
            print(f"skipping {f}: not a valid BENCH document ({err})",
                  file=sys.stderr)
            continue
        if schema not in ACCEPTED_SCHEMAS:
            print(f"skipping {f}: schema_version {schema} not in "
                  f"{ACCEPTED_SCHEMAS}", file=sys.stderr)
            continue
        if key_mode == "base":
            method = method.split(":", 1)[0]
        key = (scenario, method)
        if key in docs:
            print(f"{f}: duplicate key {key} under --key={key_mode}; "
                  "keep one spec per (scenario, method) and directory",
                  file=sys.stderr)
            sys.exit(2)
        docs[key] = doc
    return docs


def latency_quantile(doc, op, q):
    hist = doc.get("latency_us", {}).get(op)
    if not hist or not hist.get("count"):
        return None
    return hist.get(q)


def fmt_ratio(r):
    return "     n/a" if r is None else f"{r:7.2f}x"


def report_metric_shifts(base, cand, common, top_n):
    """Top-N relative shifts across the pairs' v3 `metrics` sections.

    Informational only: counters that doubled or latency quantiles that
    collapsed stand out here long before they move the throughput gate.
    """
    ratios = {}  # metric name -> [candidate/baseline ratio per pair]
    for key in common:
        bm = base[key].get("metrics")
        cm = cand[key].get("metrics")
        if not isinstance(bm, dict) or not isinstance(cm, dict):
            continue
        for name in bm.keys() & cm.keys():
            b, c = bm[name], cm[name]
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                continue
            if b > 0 and c > 0:
                ratios.setdefault(name, []).append(c / b)

    print()
    if not ratios:
        print("metric shifts: no overlapping numeric metrics "
              "(need schema v3 on both sides)")
        return
    shifts = []
    for name, rs in ratios.items():
        geo = math.exp(sum(math.log(r) for r in rs) / len(rs))
        shifts.append((abs(math.log(geo)), geo, name, len(rs)))
    shifts.sort(reverse=True)

    print(f"top {min(top_n, len(shifts))} metric shifts "
          f"(candidate/baseline geomean, {len(ratios)} comparable metrics; "
          "informational)")
    for _, geo, name, pairs in shifts[:top_n]:
        print(f"  {name:<44} {geo:9.3f}x over {pairs} pair(s)")


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH JSON directories.")
    parser.add_argument("baseline", help="directory with baseline BENCH_*.json")
    parser.add_argument("candidate",
                        help="directory with candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=None,
                        help="fail if any throughput ratio is below this")
    parser.add_argument("--key", choices=("full", "base"), default="full",
                        help="pair on the full method spec (default) or on "
                             "the base method name before ':'")
    parser.add_argument("--metrics", nargs="?", type=int, const=10,
                        default=None, metavar="N",
                        help="also report the top-N relative shifts in the "
                             "v3 metrics sections (default N=10; never "
                             "affects the exit status)")
    args = parser.parse_args()

    base = load_bench_dir(args.baseline, args.key)
    cand = load_bench_dir(args.candidate, args.key)
    if not base:
        print(f"no BENCH_*.json files in {args.baseline}", file=sys.stderr)
        return 2
    if not cand:
        print(f"no BENCH_*.json files in {args.candidate}", file=sys.stderr)
        return 2

    common = sorted(base.keys() & cand.keys())
    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())

    print(f"baseline : {args.baseline} ({len(base)} files)")
    print(f"candidate: {args.candidate} ({len(cand)} files)")
    print()
    header = (f"{'scenario':<16} {'method':<16} {'thru-ratio':>10} "
              f"{'p50-upd':>8} {'p99-upd':>8}  note")
    print(header)
    print("-" * len(header))

    failures = []
    per_method = {}
    for key in common:
        scenario, method = key
        b, c = base[key], cand[key]
        bt = b["run"]["throughput_ops_per_sec"]
        ct = c["run"]["throughput_ops_per_sec"]
        ratio = ct / bt if bt > 0 else None

        # Latency ratios are baseline/candidate so that > 1 is faster, like
        # the throughput ratio.
        lat = []
        for q in ("p50", "p99"):
            bq = latency_quantile(b, "insert", q)
            cq = latency_quantile(c, "insert", q)
            lat.append(bq / cq if bq and cq else None)

        notes = []
        if b["run"]["timed_out"] or c["run"]["timed_out"]:
            notes.append("TIMEOUT")
        # v3: a signal truncated the run; the prefix is still comparable
        # but the note flags the short measurement.
        if b["run"].get("interrupted") or c["run"].get("interrupted"):
            notes.append("INTERRUPTED")
        if b.get("params") != c.get("params"):
            notes.append("params differ")
        if b.get("seed") != c.get("seed"):
            notes.append("seeds differ")
        if (b["workload"]["num_updates"] != c["workload"]["num_updates"]):
            notes.append("N differs")

        print(f"{scenario:<16} {method:<16} {fmt_ratio(ratio):>10} "
              f"{fmt_ratio(lat[0]):>8} {fmt_ratio(lat[1]):>8}  "
              f"{' '.join(notes)}")

        if ratio is not None:
            if ratio > 0:  # keep log() defined in the geomean
                per_method.setdefault(method, []).append(ratio)
            if args.threshold is not None and ratio < args.threshold:
                failures.append((scenario, method, ratio))

    for key in only_base:
        print(f"{key[0]:<16} {key[1]:<16}  missing pair (baseline only)")
    for key in only_cand:
        print(f"{key[0]:<16} {key[1]:<16}  missing pair (candidate only)")

    print()
    for method, ratios in sorted(per_method.items()):
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print(f"geomean {method}: {geo:.2f}x over {len(ratios)} scenario(s)")

    if args.metrics is not None and common:
        report_metric_shifts(base, cand, common, args.metrics)

    if not common:
        print("no comparable pairs: the method sets do not overlap "
              f"({len(only_base)} baseline-only, {len(only_cand)} "
              "candidate-only keys; try --key=base to pair method specs "
              "by base name)", file=sys.stderr)
        return 2

    if failures:
        print(f"\nFAIL: {len(failures)} pair(s) below threshold "
              f"{args.threshold}:", file=sys.stderr)
        for scenario, method, ratio in failures:
            print(f"  {scenario}/{method}: {ratio:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
