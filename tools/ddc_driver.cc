// Unified benchmark driver: runs --methods × --scenario combinations under a
// time budget and writes one machine-readable BENCH_<scenario>_<method>.json
// per pair — the repo's perf-trajectory format (schema_version'd; see the
// "Benchmark driver" section of README.md).
//
// Usage:
//   ddc_driver                                # all scenarios × default methods
//   ddc_driver --scenario='burst:n=200000,dup=0.3;zipf'
//              --methods=double-approx,inc-dbscan
//              --rho=0.001 --minpts=10 --budget=30 --seed=1 --out-dir=bench-out
//   ddc_driver --list                         # print the scenario library
//
// Flags:
//   --scenario    ';'-separated scenario specs (grammar: name[:k=v,k=v...]).
//                 Default: every registered scenario with default parameters.
//   --methods     ';'- or ','-separated method specs from
//                 core/method_registry.h (same grammar as scenarios, e.g.
//                 sharded-double-approx:shards=8,threads=8). ';' is the
//                 outer separator when any spec carries knobs.
//                 Default: double-approx,inc-dbscan (the fully-dynamic pair;
//                 semi-dynamic methods are skipped on workloads with deletes).
//   --threads     Default worker-thread count for sharded methods: appended
//                 as threads=N to every sharded-* spec that does not set it.
//   --rebalance   Default for the sharded engine's elastic split/merge
//                 controller (0/1): appended as rebalance=N to every
//                 sharded-* spec that does not set it. The companion knobs
//                 --rb-split, --rb-merge, --rb-epochs, --rb-cooldown,
//                 --rb-max-shards and --rb-min-points pass through the same
//                 way (spec knobs always win; see --list for their meaning).
//   --query-threads
//                 Closed-loop snapshot reader threads (default 0 = queries
//                 run on the main thread). With N > 0 the main thread
//                 publishes a snapshot at each query op and N readers hammer
//                 the latest one; BENCH records reader count, query total
//                 and aggregate reader throughput (run.reader_*).
//   --eps         Absolute epsilon. Default: --eps-over-d (100) * dim.
//   --minpts      MinPts (default 10).
//   --rho         Approximation slack (default 0.001; exact methods force 0).
//   --budget      Per-run time budget in seconds (default 30; <= 0 unlimited).
//   --checkpoints Number of avgcost/maxupdcost checkpoints (default 10).
//   --seed        Workload seed (default 1; a spec's seed= key wins).
//   --out-dir     Output directory for BENCH_*.json (default ".").
//   --metrics-out Write a standalone dump of the full metrics registry
//                 (counters + gauges, absolute values) to this path at exit.
//   --trace-out   Enable span tracing for the whole invocation and write the
//                 Chrome trace_event JSON to this path at exit (load it in
//                 chrome://tracing or ui.perfetto.dev).
//
// Live monitoring (see the "Monitoring" section of README.md):
//   --stats-port  Serve GET /metrics (Prometheus text), /varz (JSON) and
//                 /healthz on 127.0.0.1:<port>. 0 binds an ephemeral port;
//                 the chosen port is printed as
//                 "stats: listening on 127.0.0.1:<port>". Unset = no
//                 listener, no overhead beyond the metrics themselves.
//   --stats-interval-ms
//                 Background sampler tick (default 250): every tick the
//                 registry delta lands in a bounded in-memory ring.
//   --stats-ring-out
//                 Write the sampled ring as a JSON time series to this path
//                 at exit/SIGINT (implies the sampler even without
//                 --stats-port).
//
// Durability (see the "Durability" section of README.md):
//   --wal-dir     Log every applied update to a write-ahead log before it
//                 leaves the timing window. Each scenario×method run logs
//                 into its own subdirectory <wal-dir>/<scenario>_<method>/
//                 (RUNMETA.json + wal-*.log + snap-*.snap); a directory that
//                 already holds a log is refused, never appended to.
//   --wal-sync    fsync policy: 0 = never (default; a SIGKILL still loses
//                 nothing — only power failure can), 1 = every record,
//                 N > 1 = group commit every N records.
//   --snapshot-every
//                 Save a queryable snapshot into the run's WAL directory
//                 every N applied updates (0 = never; requires --wal-dir).
//   --oplog-out   Record the applied op stream (WAL record format, single
//                 file) for offline analysis/replay; with several runs in
//                 one invocation each gets <oplog-out>.<scenario>_<method>.
//   --recover     Recover from a --wal-dir run subdirectory: load the newest
//                 valid snapshot, replay the log tail into a fresh clusterer
//                 of the logged method (truncating a torn tail, refusing
//                 corruption anywhere else), report, and exit.
//   --recover-verify
//                 After --recover, rebuild the scenario from RUNMETA and
//                 check the recovered clustering is bit-identical to an
//                 uncrashed in-process replay of the same logged prefix.
//
// SIGINT/SIGTERM end the current run at the next operation boundary: the
// truncated run still writes a valid BENCH file (run.interrupted=true,
// terminal checkpoint included), remaining runs are skipped, and the
// metrics/trace dumps are flushed before exit (status 130).

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/json.h"
#include "core/method_registry.h"
#include "engine/sharded_clusterer.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "scenario/scenario.h"
#include "telemetry/metrics.h"
#include "telemetry/report.h"
#include "telemetry/resource.h"
#include "telemetry/sampler.h"
#include "telemetry/stats_server.h"
#include "telemetry/trace.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int sig) {
  g_stop = 1;
  // Second signal: default disposition, i.e. die immediately.
  std::signal(sig, SIG_DFL);
}

/// Writes `text` + newline to `path` (truncating) through the error-checked
/// io helper; best-effort, complains on stderr with the failing call's
/// errno.
bool WriteFileOrWarn(const std::string& path, const std::string& text) {
  std::string error;
  if (!ddc::WriteFile(path, text + "\n", &error)) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

/// Standalone metrics dump: the full registry, absolute values.
std::string MetricsDumpJson() {
  ddc::JsonWriter j;
  j.BeginObject();
  j.Key("tool").String("ddc_driver");
  j.Key("kind").String("metrics_dump");
  j.Key("metrics");
  ddc::WriteMetrics(j, ddc::MetricsRegistry::Instance().Snapshot());
  j.EndObject();
  return j.str();
}

/// The --recover entry point: reassemble the clustering from a durability
/// directory, optionally cross-check it against an uncrashed in-process
/// replay, report, and exit.
int RunRecover(const std::string& dir, bool verify) {
  ddc::RecoveryResult result;
  ddc::RunMeta meta;
  std::string error;
  if (!ddc::RecoverFromDir(dir, &result, &meta, &error)) {
    std::fprintf(stderr, "recovery failed: %s\n", error.c_str());
    return 1;
  }
  for (const std::string& note : result.notes) {
    std::printf("[recover] %s\n", note.c_str());
  }
  std::printf(
      "[recover] method=%s scenario=%s seed=%llu -> %lld alive points\n",
      meta.method.c_str(), meta.scenario.c_str(),
      static_cast<unsigned long long>(meta.seed),
      static_cast<long long>(result.clusterer->size()));
  if (!verify) return 0;

  // Rebuild the scenario the log came from and replay its update stream —
  // queries skipped — op for op against the log. The recovered clusterer
  // must (a) have logged exactly this prefix and (b) answer QueryAll
  // bit-identically to the uncrashed reference.
  const ddc::Workload workload =
      ddc::BuildScenarioWorkload(meta.scenario, meta.seed);
  if (workload.dim != meta.params.dim) {
    std::fprintf(stderr,
                 "recover-verify: scenario %s builds dim %d but RUNMETA says"
                 " dim %d\n",
                 meta.scenario.c_str(), workload.dim, meta.params.dim);
    return 1;
  }
  std::unique_ptr<ddc::Clusterer> reference =
      ddc::MakeMethod(meta.method, meta.params);
  std::vector<ddc::PointId> id_of(workload.points.size(), ddc::kInvalidPoint);
  size_t applied = 0;
  for (const ddc::Operation& op : workload.ops) {
    if (applied == result.ops.size()) break;
    if (op.type == ddc::Operation::Type::kQuery) continue;
    const ddc::WalOp& logged = result.ops[applied];
    ++applied;
    if (op.type == ddc::Operation::Type::kInsert) {
      const ddc::PointId id = reference->Insert(workload.points[op.target]);
      id_of[op.target] = id;
      if (logged.type != ddc::WalOp::Type::kInsert || logged.id != id ||
          !(logged.point == workload.points[op.target])) {
        std::fprintf(stderr,
                     "recover-verify: wal seq %llu does not match the"
                     " scenario's update %zu (insert id %d)\n",
                     static_cast<unsigned long long>(logged.seq), applied,
                     id);
        return 1;
      }
    } else {
      if (logged.type != ddc::WalOp::Type::kDelete ||
          logged.id != id_of[op.target]) {
        std::fprintf(stderr,
                     "recover-verify: wal seq %llu does not match the"
                     " scenario's update %zu (delete id %d)\n",
                     static_cast<unsigned long long>(logged.seq), applied,
                     id_of[op.target]);
        return 1;
      }
      reference->Delete(id_of[op.target]);
      id_of[op.target] = ddc::kInvalidPoint;
    }
  }
  if (applied != result.ops.size()) {
    std::fprintf(stderr,
                 "recover-verify: log holds %zu updates but the scenario"
                 " only has %zu\n",
                 result.ops.size(), applied);
    return 1;
  }
  reference->Flush();
  ddc::CGroupByResult expected = reference->QueryAll();
  ddc::CGroupByResult recovered = result.clusterer->QueryAll();
  expected.Canonicalize();
  recovered.Canonicalize();
  if (!(expected == recovered)) {
    std::fprintf(stderr,
                 "recover-verify: recovered clustering differs from the"
                 " uncrashed replay (%zu vs %zu groups)\n",
                 recovered.groups.size(), expected.groups.size());
    return 1;
  }
  std::printf(
      "[recover] verify OK: %zu replayed updates, clustering bit-identical"
      " (%zu groups, %zu noise)\n",
      applied, expected.groups.size(), expected.noise.size());
  return 0;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    if (end > start) parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string SpecName(const std::string& spec) {
  return spec.substr(0, spec.find(':'));
}

// Method lists split on ';' (the outer separator once specs carry ,-joined
// knobs); a ';'-piece without knobs still splits on ',' so the historical
// --methods=double-approx,inc-dbscan form keeps working.
std::vector<std::string> SplitMethods(const std::string& text) {
  std::vector<std::string> methods;
  for (const std::string& piece : Split(text, ';')) {
    if (piece.find(':') == std::string::npos) {
      for (const std::string& m : Split(piece, ',')) methods.push_back(m);
    } else {
      methods.push_back(piece);
    }
  }
  return methods;
}

}  // namespace

int main(int argc, char** argv) {
  ddc::Flags flags(argc, argv);

  if (flags.GetBool("list", false)) {
    std::printf("Scenarios (spec grammar: name[:key=value,key=value...]):\n%s",
                ddc::ScenarioHelp().c_str());
    std::printf("%s", ddc::MethodHelp().c_str());
    return 0;
  }

  const std::string recover_dir = flags.GetString("recover", "");
  if (!recover_dir.empty()) {
    return RunRecover(recover_dir, flags.GetBool("recover-verify", false));
  }

  std::string default_scenarios;
  for (const auto& s : ddc::AllScenarios()) {
    if (!default_scenarios.empty()) default_scenarios += ';';
    default_scenarios += s->name();
  }
  const std::vector<std::string> specs =
      Split(flags.GetString("scenario", default_scenarios), ';');
  std::vector<std::string> methods =
      SplitMethods(flags.GetString("methods", "double-approx,inc-dbscan"));
  DDC_CHECK(!specs.empty() && !methods.empty());

  // --threads=N is the default thread count for sharded methods: appended to
  // every sharded-* spec that does not pin threads= itself. The rebalance
  // flags work the same way — defaults for every sharded-* spec, overridden
  // by a spec's own knob (e.g. --rebalance=1 --rb-epochs=2 turns the elastic
  // split/merge controller on across the whole sweep).
  {
    struct SharedKnob {
      const char* flag;
      const char* knob;
    };
    static constexpr SharedKnob kSharedKnobs[] = {
        {"threads", "threads="},         {"rebalance", "rebalance="},
        {"rb-split", "rb_split="},       {"rb-merge", "rb_merge="},
        {"rb-epochs", "rb_epochs="},     {"rb-cooldown", "rb_cooldown="},
        {"rb-max-shards", "rb_max_shards="},
        {"rb-min-points", "rb_min_points="}};
    for (const SharedKnob& k : kSharedKnobs) {
      if (!flags.Has(k.flag)) continue;
      const std::string value = flags.GetString(k.flag, "");
      for (std::string& m : methods) {
        if (ddc::MethodBaseName(m).rfind("sharded-", 0) != 0) continue;
        if (m.find(k.knob) != std::string::npos) continue;
        m += (m.find(':') == std::string::npos ? ':' : ',');
        m += k.knob + value;
      }
    }
  }

  for (const std::string& m : methods) {
    std::string why;
    if (!ddc::ValidateMethodSpec(m, &why)) {
      std::fprintf(stderr, "bad method spec '%s': %s\n%s\n(see --list)\n",
                   m.c_str(), why.c_str(), ddc::MethodHelp().c_str());
      return 1;
    }
  }

  const double budget = flags.GetDouble("budget", 30.0);
  const int checkpoints = static_cast<int>(flags.GetInt("checkpoints", 10));
  const int query_threads =
      static_cast<int>(flags.GetInt("query-threads", 0));
  DDC_CHECK(query_threads >= 0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out_dir = flags.GetString("out-dir", ".");
  std::filesystem::create_directories(out_dir);

  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) ddc::Trace::Enable();

  const std::string wal_dir = flags.GetString("wal-dir", "");
  const int wal_sync = static_cast<int>(flags.GetInt("wal-sync", 0));
  const int64_t snapshot_every = flags.GetInt("snapshot-every", 0);
  const std::string oplog_out = flags.GetString("oplog-out", "");
  if (snapshot_every > 0 && wal_dir.empty()) {
    std::fprintf(stderr, "--snapshot-every requires --wal-dir\n");
    return 1;
  }
  const bool single_run = specs.size() == 1 && methods.size() == 1;

  // Live monitoring: the sampler runs whenever anything consumes it — a
  // ring dump or the stats server; the server additionally needs a port.
  const bool has_stats_port = flags.Has("stats-port");
  const int stats_port = static_cast<int>(flags.GetInt("stats-port", 0));
  const int stats_interval_ms =
      static_cast<int>(flags.GetInt("stats-interval-ms", 250));
  const std::string stats_ring_out = flags.GetString("stats-ring-out", "");

  std::unique_ptr<ddc::StatsSampler> sampler;
  if (has_stats_port || !stats_ring_out.empty()) {
    ddc::StatsSampler::Options sampler_options;
    sampler_options.interval_ms = stats_interval_ms;
    sampler = std::make_unique<ddc::StatsSampler>(sampler_options);
    sampler->Start();
  }
  std::unique_ptr<ddc::StatsServer> stats_server;
  if (has_stats_port) {
    ddc::StatsServer::Options server_options;
    server_options.port = stats_port;
    server_options.build_info = "ddc_driver";
    stats_server =
        std::make_unique<ddc::StatsServer>(server_options, sampler.get());
    if (!stats_server->Start()) {
      std::fprintf(stderr, "stats: %s\n", stats_server->error().c_str());
      return 1;
    }
    std::printf("stats: listening on 127.0.0.1:%d\n", stats_server->port());
    std::fflush(stdout);
  }

  // A first Ctrl-C ends the current run at the next operation boundary and
  // still flushes every output; a second one gets the default disposition
  // (set by the handler itself) and kills the process.
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  int written = 0;
  std::set<std::string> written_paths;
  for (const std::string& spec : specs) {
    if (g_stop != 0) break;
    const ddc::Workload workload = ddc::BuildScenarioWorkload(spec, seed);
    const std::string scenario = SpecName(spec);

    ddc::DbscanParams params;
    params.dim = workload.dim;
    params.eps = flags.Has("eps")
                     ? flags.GetDouble("eps", 0)
                     : flags.GetDouble("eps-over-d", 100.0) * workload.dim;
    params.min_pts = static_cast<int>(flags.GetInt("minpts", 10));
    params.rho = flags.GetDouble("rho", 0.001);
    params.Validate();

    for (const std::string& method : methods) {
      if (workload.num_deletes > 0 && !ddc::MethodSupportsDeletes(method)) {
        std::fprintf(stderr,
                     "[skip] %s on %s: insert-only method, workload has %lld"
                     " deletes\n",
                     method.c_str(), scenario.c_str(),
                     static_cast<long long>(workload.num_deletes));
        continue;
      }
      std::printf("[run ] %s on %s (N=%lld ops=%zu)...\n", method.c_str(),
                  spec.c_str(), static_cast<long long>(workload.num_updates),
                  workload.ops.size());
      std::fflush(stdout);

      // Best-effort HWM reset so peak_rss_bytes is per-run, not the
      // cumulative maximum across everything this process ran before.
      ddc::ResetPeakRss();
      std::unique_ptr<ddc::Clusterer> clusterer =
          ddc::MakeMethod(method, params);
      ddc::RunOptions options;
      options.num_checkpoints = checkpoints;
      options.time_budget_seconds = budget;
      options.query_threads = query_threads;
      options.stop_requested = &g_stop;

      // Durability side: each run logs into its own subdirectory so one
      // invocation's scenario×method sweep leaves one recoverable directory
      // per run. RUNMETA goes down before the first logged op — recovery
      // must never find a log it cannot interpret.
      std::unique_ptr<ddc::WalWriter> wal;
      if (!wal_dir.empty()) {
        const std::string run_dir = wal_dir + "/" +
                                    ddc::SanitizeForFilename(scenario) + "_" +
                                    ddc::SanitizeForFilename(method);
        std::filesystem::create_directories(run_dir);
        ddc::RunMeta run_meta;
        run_meta.method = method;
        run_meta.scenario = spec;
        run_meta.seed = workload.seed;
        run_meta.params = ddc::EffectiveParams(method, params);
        std::string error;
        if (!ddc::WriteRunMeta(run_dir, run_meta, &error)) {
          std::fprintf(stderr, "cannot write RUNMETA: %s\n", error.c_str());
          return 1;
        }
        ddc::WalWriter::Options wal_options;
        wal_options.sync_every = wal_sync;
        wal = std::make_unique<ddc::WalWriter>(run_dir, wal_options);
        if (!wal->ok()) {
          std::fprintf(stderr, "cannot open wal: %s\n", wal->error().c_str());
          return 1;
        }
        options.wal = wal.get();
        options.snapshot_every = snapshot_every;
        options.snapshot_dir = run_dir;
      }
      std::unique_ptr<ddc::WalWriter> oplog;
      if (!oplog_out.empty()) {
        const std::string path =
            single_run ? oplog_out
                       : oplog_out + "." + ddc::SanitizeForFilename(scenario) +
                             "_" + ddc::SanitizeForFilename(method);
        oplog = ddc::WalWriter::OpenSingleFile(path, {});
        if (!oplog->ok()) {
          std::fprintf(stderr, "cannot open oplog %s: %s\n", path.c_str(),
                       oplog->error().c_str());
          return 1;
        }
        options.oplog = oplog.get();
      }

      const std::vector<ddc::MetricSample> metrics_before =
          ddc::MetricsRegistry::Instance().Snapshot();
      const ddc::RunStats stats =
          ddc::RunWorkload(*clusterer, workload, options);
      if (wal != nullptr && !wal->Close()) {
        std::fprintf(stderr, "wal close failed: %s\n", wal->error().c_str());
        return 1;
      }
      if (oplog != nullptr && !oplog->Close()) {
        std::fprintf(stderr, "oplog close failed: %s\n",
                     oplog->error().c_str());
        return 1;
      }

      // Per-shard occupancy telemetry for the sharded engine: imbalance and
      // replication overhead are invisible in aggregate throughput. The
      // gauges land in the registry (and thus in this run's BENCH metrics);
      // the console echo keeps them visible in interactive runs.
      if (auto* sharded =
              dynamic_cast<ddc::ShardedClusterer*>(clusterer.get())) {
        sharded->PublishShardMetrics();
        ddc::PrintMetrics("engine.");
      }

      ddc::BenchRecord record;
      record.scenario = scenario;
      record.scenario_spec = spec;
      record.method = method;
      // Provenance must match the executed run: exact methods force rho to
      // 0, and a spec seed= key beats --seed.
      record.params = ddc::EffectiveParams(method, params);
      record.seed = workload.seed;
      record.peak_rss_bytes = ddc::PeakRssBytes();
      record.workload = &workload;
      record.stats = &stats;
      // Counters as deltas over this run, gauges as point-in-time values.
      record.metrics = ddc::DeltaSince(
          metrics_before, ddc::MetricsRegistry::Instance().Snapshot());
      const std::string json = ddc::BenchJson(record);

      // Never ship a document this build can't read back.
      std::string why;
      if (!ddc::ValidateBenchJson(json, &why)) {
        std::fprintf(stderr, "BENCH JSON self-validation failed: %s\n",
                     why.c_str());
        return 1;
      }

      const std::string path = out_dir + "/BENCH_" +
                               ddc::SanitizeForFilename(scenario) + "_" +
                               ddc::SanitizeForFilename(method) + ".json";
      if (!written_paths.insert(path).second) {
        // Filenames key on (scenario, method) only; two specs of the same
        // scenario would silently clobber each other — refuse instead.
        std::fprintf(stderr,
                     "refusing to overwrite %s already written by this"
                     " invocation; run same-name scenario specs with"
                     " separate --out-dir\n",
                     path.c_str());
        return 1;
      }
      std::string write_error;
      if (!ddc::WriteFile(path, json + "\n", &write_error)) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     write_error.c_str());
        return 1;
      }
      ++written;

      char readers[96] = "";
      if (stats.query_threads > 0) {
        std::snprintf(readers, sizeof(readers),
                      " readers=%d qps=%.0f p99=%.1fus", stats.query_threads,
                      stats.reader_queries_per_sec,
                      stats.reader_query_latency_us.Quantile(0.99));
      }
      std::printf(
          "[done] %s  avg=%.2fus maxupd=%.1fus thru=%.0f ops/s%s%s -> %s\n",
          method.c_str(), stats.avg_workload_cost_us, stats.max_update_cost_us,
          stats.total_seconds > 0
              ? static_cast<double>(stats.ops_executed) / stats.total_seconds
              : 0,
          readers,
          stats.interrupted ? " [INTERRUPTED]"
                            : (stats.timed_out ? " [TIMEOUT]" : ""),
          path.c_str());
      std::fflush(stdout);

      if (g_stop != 0) break;
    }
    if (g_stop != 0) break;
  }

  // Terminal flush: both dumps are written even (especially) when a signal
  // truncated the sweep, so an interrupted invocation still leaves valid
  // observability artifacts behind.
  bool flush_ok = true;
  if (stats_server != nullptr) stats_server->Stop();
  if (sampler != nullptr) {
    // One last tick so the ring always covers the run's tail, then dump.
    sampler->SampleNow();
    sampler->Stop();
    if (!stats_ring_out.empty()) {
      flush_ok &= WriteFileOrWarn(stats_ring_out, sampler->RingJson());
    }
  }
  if (!metrics_out.empty()) {
    flush_ok &= WriteFileOrWarn(metrics_out, MetricsDumpJson());
  }
  if (!trace_out.empty()) {
    flush_ok &= WriteFileOrWarn(trace_out, ddc::Trace::ChromeTraceJson());
  }

  std::printf("wrote %d BENCH file(s) to %s%s\n", written, out_dir.c_str(),
              g_stop != 0 ? " [interrupted]" : "");
  if (g_stop != 0) return 130;
  if (!flush_ok) return 1;
  return written > 0 ? 0 : 1;
}
