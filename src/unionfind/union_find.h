#ifndef DDC_UNIONFIND_UNION_FIND_H_
#define DDC_UNIONFIND_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace ddc {

/// Disjoint-set forest with union by rank and path compression (Tarjan [23]).
/// This is the paper's CC structure for the semi-dynamic scheme (Theorem 1):
/// EdgeInsert becomes Union and CC-Id becomes Find, both in O~(1) amortized.
/// Elements are dense integer ids and can be added on the fly.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(int n) { EnsureSize(n); }

  /// Grows the universe so ids [0, n) are valid, each new id a singleton.
  void EnsureSize(int n);

  /// Number of elements in the universe.
  int size() const { return static_cast<int>(parent_.size()); }

  /// Representative of x's set, with path compression.
  int Find(int x);

  /// Representative of x's set without path compression: a mutation-free
  /// walk to the root, for const-safe lookups from frozen snapshots. Same
  /// result as Find(x), amortization aside.
  int FindReadOnly(int x) const;

  /// Merges the sets of a and b; returns true when they were distinct.
  bool Union(int a, int b);

  /// True when a and b share a set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Number of distinct sets among existing elements.
  int num_components() const { return components_; }

 private:
  std::vector<int32_t> parent_;
  std::vector<int8_t> rank_;
  int components_ = 0;
};

}  // namespace ddc

#endif  // DDC_UNIONFIND_UNION_FIND_H_
