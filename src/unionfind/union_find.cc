#include "unionfind/union_find.h"

#include "common/check.h"

namespace ddc {

void UnionFind::EnsureSize(int n) {
  while (size() < n) {
    parent_.push_back(static_cast<int32_t>(parent_.size()));
    rank_.push_back(0);
    ++components_;
  }
}

int UnionFind::Find(int x) {
  DDC_DCHECK(x >= 0 && x < size());
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

int UnionFind::FindReadOnly(int x) const {
  DDC_DCHECK(x >= 0 && x < size());
  while (parent_[x] != x) x = parent_[x];
  return x;
}

bool UnionFind::Union(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  --components_;
  return true;
}

}  // namespace ddc
