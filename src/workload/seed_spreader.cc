#include "workload/seed_spreader.h"

#include <cmath>

#include "common/check.h"

namespace ddc {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Standard normal via Box–Muller.
double Gaussian(Rng& rng) {
  const double u1 = 1.0 - rng.NextDouble();  // (0, 1]
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

/// A uniformly random unit direction.
Point RandomDirection(int dim, Rng& rng) {
  Point d;
  double norm_sq = 0;
  do {
    norm_sq = 0;
    for (int i = 0; i < dim; ++i) {
      d[i] = Gaussian(rng);
      norm_sq += d[i] * d[i];
    }
  } while (norm_sq < 1e-12);
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (int i = 0; i < dim; ++i) d[i] *= inv;
  return d;
}

Point RandomLocation(double extent, int dim, Rng& rng) {
  Point p;
  for (int i = 0; i < dim; ++i) p[i] = rng.NextDouble(0, extent);
  return p;
}

}  // namespace

Point UniformInBall(const Point& center, double radius, int dim, Rng& rng) {
  const Point dir = RandomDirection(dim, rng);
  // Radius r with density ∝ r^(dim-1) => r = R * U^(1/dim).
  const double r =
      radius * std::pow(rng.NextDouble(), 1.0 / static_cast<double>(dim));
  Point p = center;
  for (int i = 0; i < dim; ++i) p[i] += r * dir[i];
  return p;
}

std::vector<Point> GenerateSeedSpreader(const SeedSpreaderConfig& config,
                                        Rng& rng) {
  DDC_CHECK(config.dim >= 1 && config.dim <= kMaxDim);
  DDC_CHECK(config.num_points > 0);
  const int64_t total = config.num_points;
  const int64_t cluster_points = static_cast<int64_t>(
      std::llround(static_cast<double>(total) * (1.0 - config.noise_fraction)));
  const int64_t noise_points = total - cluster_points;
  const double restart_prob =
      cluster_points > 0
          ? config.expected_restarts / static_cast<double>(cluster_points)
          : 0;

  std::vector<Point> out;
  out.reserve(total);

  Point station = RandomLocation(config.extent, config.dim, rng);
  int at_station = 0;
  for (int64_t tick = 0; tick < cluster_points; ++tick) {
    out.push_back(UniformInBall(station, config.ball_radius, config.dim, rng));
    if (++at_station == config.points_per_station) {
      // Forced move: step away in a random direction.
      const Point dir = RandomDirection(config.dim, rng);
      for (int i = 0; i < config.dim; ++i) {
        station[i] += config.step * dir[i];
      }
      at_station = 0;
    }
    if (rng.NextBernoulli(restart_prob)) {
      station = RandomLocation(config.extent, config.dim, rng);
      at_station = 0;
    }
  }
  for (int64_t i = 0; i < noise_points; ++i) {
    out.push_back(RandomLocation(config.extent, config.dim, rng));
  }
  return out;
}

}  // namespace ddc
