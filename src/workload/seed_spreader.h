#ifndef DDC_WORKLOAD_SEED_SPREADER_H_
#define DDC_WORKLOAD_SEED_SPREADER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geom/point.h"

namespace ddc {

/// Configuration of the seed-spreader generator of Gan & Tao [10], used by
/// the paper's experiments (Section 8.1, Step 1). Defaults are the paper's
/// values: a spreader walks through [0, 100000]^d dropping points uniformly
/// in a radius-25 ball, steps 50 away after every 100 points, restarts at a
/// random location with probability 10/(0.9999 I) per tick (≈10 clusters),
/// and 0.01% uniform noise is appended.
struct SeedSpreaderConfig {
  int dim = 3;
  int64_t num_points = 100000;  // I
  double extent = 100000.0;
  double ball_radius = 25.0;
  double step = 50.0;
  int points_per_station = 100;
  double expected_restarts = 10.0;
  double noise_fraction = 0.0001;
};

/// Generates the static dataset (cluster points followed by noise points).
/// Deterministic given `rng`'s state.
std::vector<Point> GenerateSeedSpreader(const SeedSpreaderConfig& config,
                                        Rng& rng);

/// A point uniform in the ball B(center, radius) ∩ first `dim` dims
/// (Gaussian direction, radial CDF inversion). Exposed for tests.
Point UniformInBall(const Point& center, double radius, int dim, Rng& rng);

}  // namespace ddc

#endif  // DDC_WORKLOAD_SEED_SPREADER_H_
