#ifndef DDC_WORKLOAD_RUNNER_H_
#define DDC_WORKLOAD_RUNNER_H_

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "core/clusterer.h"
#include "persist/wal.h"
#include "telemetry/histogram.h"
#include "workload/workload.h"

namespace ddc {

/// Metrics of one workload execution, matching Section 8.2's definitions:
/// avgcost(t) averages over all operations (updates and queries) up to t;
/// maxupdcost(t) maximizes over updates only.
struct RunStats {
  /// Checkpoint positions (operation counts) and the two time series. A run
  /// that hits its time budget still ends with a terminal checkpoint at
  /// ops_executed, so truncated series stay aligned with the aggregates.
  std::vector<int64_t> checkpoint_ops;
  std::vector<double> avg_cost_us;
  std::vector<double> max_upd_cost_us;

  /// Full latency distributions per operation type (microseconds). Only the
  /// clusterer call is timed — runner bookkeeping (query-id resolution,
  /// checkpointing) stays outside the measured window. With query_threads
  /// > 0 the main thread publishes a snapshot instead of executing query
  /// ops, and query_latency_us records that publication cost.
  LatencyHistogram insert_latency_us;
  LatencyHistogram delete_latency_us;
  LatencyHistogram query_latency_us;

  /// Concurrent read side (populated when RunOptions::query_threads > 0):
  /// the merged latency distribution of every closed-loop reader query,
  /// their total count, and the aggregate reader throughput over the run.
  int query_threads = 0;
  LatencyHistogram reader_query_latency_us;
  int64_t reader_queries_executed = 0;
  double reader_queries_per_sec = 0;

  /// Final aggregates: "average workload cost" = avgcost(W).
  double avg_workload_cost_us = 0;
  double max_update_cost_us = 0;
  double avg_update_cost_us = 0;
  double avg_query_cost_us = 0;

  int64_t ops_executed = 0;
  int64_t updates_executed = 0;
  int64_t queries_executed = 0;
  double total_seconds = 0;

  /// True when the run hit the time budget before finishing (the paper
  /// terminated IncDBSCAN after 3 hours in 5D/7D; we do the same, scaled).
  bool timed_out = false;

  /// True when RunOptions::stop_requested fired mid-run (SIGINT/SIGTERM in
  /// the driver): the stats cover the executed prefix, exactly like a
  /// timeout, but the two causes are reported apart.
  bool interrupted = false;

  /// Durability accounting (zero unless RunOptions wires a WAL/snapshots):
  /// the WAL seq of the last logged update and how many snapshots the run
  /// checkpointed.
  uint64_t wal_last_seq = 0;
  int64_t snapshots_saved = 0;
};

struct RunOptions {
  /// Record avgcost/maxupdcost at this many evenly spaced checkpoints.
  int num_checkpoints = 10;
  /// Abort the run when it exceeds this budget (<= 0: unlimited).
  double time_budget_seconds = 0;
  /// Closed-loop snapshot reader threads. 0 (the default) replays queries
  /// on the main thread, exactly as before. N > 0 moves the read side off
  /// the update path: the main thread drives the update stream and, at
  /// every query operation, publishes a fresh ClusterSnapshot plus that
  /// operation's resolved query ids; the N readers loop over the latest
  /// published work, each timing its own queries into a local histogram
  /// (merged into RunStats at the end). Readers never synchronize with the
  /// updater beyond the atomic work handle — the measurement of the
  /// lock-free read path.
  int query_threads = 0;
  /// When non-null, checked once per operation: a non-zero value ends the
  /// run cleanly (terminal checkpoint, aggregates over the executed prefix,
  /// stats.interrupted = true). sig_atomic_t so a signal handler may be the
  /// writer.
  const volatile std::sig_atomic_t* stop_requested = nullptr;

  /// When non-null, every applied update is appended to this WAL *inside
  /// the timed window*, between the clusterer call and the closing
  /// timestamp: the op is durable (per the writer's fsync policy) before it
  /// counts as done, so measured update cost includes the durability bill.
  /// A WAL write error aborts the run (durability is not best-effort).
  WalWriter* wal = nullptr;

  /// When non-null, the applied update stream is also recorded here (the
  /// `--oplog-out` satellite) — same record format, written *outside* the
  /// timed window: it is observability, not durability.
  WalWriter* oplog = nullptr;

  /// Save a snapshot into `snapshot_dir` every `snapshot_every` applied
  /// updates (0 = never). Saves run outside the per-op timed window — they
  /// are checkpoint cost, not operation latency — but inside the run's wall
  /// clock. Requires `wal` (snapshots are named by the WAL seq they cover).
  int64_t snapshot_every = 0;
  std::string snapshot_dir;
};

/// Replays `workload` against `clusterer`, timing every operation.
RunStats RunWorkload(Clusterer& clusterer, const Workload& workload,
                     const RunOptions& options);

}  // namespace ddc

#endif  // DDC_WORKLOAD_RUNNER_H_
