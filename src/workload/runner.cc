#include "workload/runner.h"

#include <chrono>

#include "common/check.h"

namespace ddc {

RunStats RunWorkload(Clusterer& clusterer, const Workload& workload,
                     const RunOptions& options) {
  using Clock = std::chrono::steady_clock;
  RunStats stats;
  const int64_t total_ops = static_cast<int64_t>(workload.ops.size());
  const int64_t checkpoint_stride =
      options.num_checkpoints > 0
          ? std::max<int64_t>(1, total_ops / options.num_checkpoints)
          : total_ops + 1;

  // Insertion index -> live PointId.
  std::vector<PointId> id_of(workload.points.size(), kInvalidPoint);
  std::vector<PointId> query_ids;

  double total_cost_us = 0;
  double update_cost_us = 0;
  double query_cost_us = 0;
  const Clock::time_point run_start = Clock::now();

  int64_t until_checkpoint = checkpoint_stride;
  for (const Operation& op : workload.ops) {
    // Resolve query insertion indices to live PointIds *before* starting the
    // clock: this loop is runner overhead, and timing it would bias
    // avg_query_cost_us by O(|Q|) per query. The per-type histogram is also
    // picked here, outside the timed window.
    LatencyHistogram* hist;
    if (op.type == Operation::Type::kQuery) {
      query_ids.clear();
      for (const int64_t idx : op.query) {
        if (id_of[idx] != kInvalidPoint) query_ids.push_back(id_of[idx]);
      }
      hist = &stats.query_latency_us;
    } else {
      hist = op.type == Operation::Type::kInsert ? &stats.insert_latency_us
                                                 : &stats.delete_latency_us;
    }

    const Clock::time_point t0 = Clock::now();
    switch (op.type) {
      case Operation::Type::kInsert:
        id_of[op.target] = clusterer.Insert(workload.points[op.target]);
        break;
      case Operation::Type::kDelete:
        DDC_CHECK(id_of[op.target] != kInvalidPoint);
        clusterer.Delete(id_of[op.target]);
        id_of[op.target] = kInvalidPoint;
        break;
      case Operation::Type::kQuery: {
        const CGroupByResult r = clusterer.Query(query_ids);
        // Keep the optimizer honest.
        DDC_CHECK(r.groups.size() + r.noise.size() + 1 > 0);
        break;
      }
    }
    // One timestamp ends the op measurement *and* feeds the budget check
    // below — the runner pays two clock reads per op, not three.
    const Clock::time_point t1 = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    total_cost_us += us;
    ++stats.ops_executed;
    hist->Record(us);
    if (op.type == Operation::Type::kQuery) {
      query_cost_us += us;
      ++stats.queries_executed;
    } else {
      update_cost_us += us;
      ++stats.updates_executed;
      stats.max_update_cost_us = std::max(stats.max_update_cost_us, us);
    }

    if (--until_checkpoint == 0 || stats.ops_executed == total_ops) {
      until_checkpoint = checkpoint_stride;
      stats.checkpoint_ops.push_back(stats.ops_executed);
      stats.avg_cost_us.push_back(total_cost_us /
                                  static_cast<double>(stats.ops_executed));
      stats.max_upd_cost_us.push_back(stats.max_update_cost_us);
    }

    if (options.time_budget_seconds > 0 &&
        std::chrono::duration<double>(t1 - run_start).count() >
            options.time_budget_seconds) {
      stats.timed_out = true;
      break;
    }
  }

  // Asynchronous engines may still hold enqueued updates; the barrier keeps
  // them inside the timing window so throughput reflects applied work.
  clusterer.Flush();

  // A truncated run still ends with a terminal checkpoint at ops_executed,
  // so the series covers exactly the executed prefix.
  if (stats.ops_executed > 0 &&
      (stats.checkpoint_ops.empty() ||
       stats.checkpoint_ops.back() != stats.ops_executed)) {
    stats.checkpoint_ops.push_back(stats.ops_executed);
    stats.avg_cost_us.push_back(total_cost_us /
                                static_cast<double>(stats.ops_executed));
    stats.max_upd_cost_us.push_back(stats.max_update_cost_us);
  }

  stats.total_seconds =
      std::chrono::duration<double>(Clock::now() - run_start).count();
  if (stats.ops_executed > 0) {
    stats.avg_workload_cost_us =
        total_cost_us / static_cast<double>(stats.ops_executed);
  }
  if (stats.updates_executed > 0) {
    stats.avg_update_cost_us =
        update_cost_us / static_cast<double>(stats.updates_executed);
  }
  if (stats.queries_executed > 0) {
    stats.avg_query_cost_us =
        query_cost_us / static_cast<double>(stats.queries_executed);
  }
  return stats;
}

}  // namespace ddc
