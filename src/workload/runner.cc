#include "workload/runner.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/check.h"
#include "core/cluster_snapshot.h"
#include "persist/snapshot_io.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ddc {

namespace {

/// One published unit of read-side work: a frozen snapshot and the query
/// ids resolved for it. Readers pick up whatever is latest; the updater
/// swaps in a fresh one at every query operation.
struct ReaderWork {
  std::shared_ptr<const ClusterSnapshot> snapshot;
  std::vector<PointId> qids;
};

}  // namespace

RunStats RunWorkload(Clusterer& clusterer, const Workload& workload,
                     const RunOptions& options) {
  using Clock = std::chrono::steady_clock;
  DDC_TRACE_SPAN("runner.run");
  RunStats stats;
  stats.query_threads = options.query_threads;

  // The read side: N closed-loop readers over the latest published
  // {snapshot, qids}. Communication is one published shared_ptr slot —
  // readers never block the updater and vice versa, and no lock is held
  // while a query runs. Each reader times into its own histogram; a reader
  // that saw work runs at least one query before honoring the stop flag,
  // so reader stats are never silently empty.
  SharedPtrSlot<const ReaderWork> reader_work;
  std::atomic<bool> reader_stop{false};
  std::vector<std::thread> readers;
  std::vector<LatencyHistogram> reader_hist(
      std::max(options.query_threads, 0));
  std::vector<int64_t> reader_count(reader_hist.size(), 0);
  const bool concurrent_readers =
      options.query_threads > 0 && workload.num_queries > 0;
  if (concurrent_readers) {
    readers.reserve(options.query_threads);
    for (int r = 0; r < options.query_threads; ++r) {
      readers.emplace_back([&, r] {
        // Epoch of the previous queried snapshot: how far the published
        // stream advanced between two consecutive queries of this reader is
        // its lag (1 = kept up; more = epochs it never saw).
        uint64_t prev_epoch = 0;
        bool has_prev = false;
        for (;;) {
          const std::shared_ptr<const ReaderWork> w = reader_work.Load();
          if (w == nullptr) {
            if (reader_stop.load(std::memory_order_acquire)) break;
            std::this_thread::yield();
            continue;
          }
          const uint64_t epoch = w->snapshot->epoch();
          if (has_prev && epoch > prev_epoch) {
            DDC_GAUGE_MAX("runner.reader_epoch_lag",
                          static_cast<int64_t>(epoch - prev_epoch));
          }
          prev_epoch = epoch;
          has_prev = true;
          DDC_TRACE_SPAN("runner.reader_query");
          const Clock::time_point t0 = Clock::now();
          const CGroupByResult result = w->snapshot->Query(w->qids);
          const Clock::time_point t1 = Clock::now();
          // Keep the optimizer honest.
          DDC_CHECK(result.groups.size() + result.noise.size() + 1 > 0);
          reader_hist[r].Record(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          ++reader_count[r];
          if (reader_stop.load(std::memory_order_acquire)) break;
        }
      });
    }
  }
  const int64_t total_ops = static_cast<int64_t>(workload.ops.size());
  const int64_t checkpoint_stride =
      options.num_checkpoints > 0
          ? std::max<int64_t>(1, total_ops / options.num_checkpoints)
          : total_ops + 1;

  // Insertion index -> live PointId.
  std::vector<PointId> id_of(workload.points.size(), kInvalidPoint);
  std::vector<PointId> query_ids;

  DDC_CHECK(options.snapshot_every <= 0 || options.wal != nullptr);
  int64_t until_snapshot = options.snapshot_every;

  double total_cost_us = 0;
  double update_cost_us = 0;
  double query_cost_us = 0;
  const Clock::time_point run_start = Clock::now();

  int64_t until_checkpoint = checkpoint_stride;
  for (const Operation& op : workload.ops) {
    // Resolve query insertion indices to live PointIds *before* starting the
    // clock: this loop is runner overhead, and timing it would bias
    // avg_query_cost_us by O(|Q|) per query. The per-type histogram is also
    // picked here, outside the timed window.
    LatencyHistogram* hist;
    if (op.type == Operation::Type::kQuery) {
      query_ids.clear();
      for (const int64_t idx : op.query) {
        if (id_of[idx] != kInvalidPoint) query_ids.push_back(id_of[idx]);
      }
      hist = &stats.query_latency_us;
    } else {
      hist = op.type == Operation::Type::kInsert ? &stats.insert_latency_us
                                                 : &stats.delete_latency_us;
    }

    // Durability record of this op, filled by the update cases below.
    WalOp logged;
    const bool is_update = op.type != Operation::Type::kQuery;

    const Clock::time_point t0 = Clock::now();
    switch (op.type) {
      case Operation::Type::kInsert: {
        const PointId id = clusterer.Insert(workload.points[op.target]);
        id_of[op.target] = id;
        logged.type = WalOp::Type::kInsert;
        logged.id = id;
        logged.dim = workload.dim;
        logged.point = workload.points[op.target];
        break;
      }
      case Operation::Type::kDelete:
        DDC_CHECK(id_of[op.target] != kInvalidPoint);
        logged.type = WalOp::Type::kDelete;
        logged.id = id_of[op.target];
        clusterer.Delete(id_of[op.target]);
        id_of[op.target] = kInvalidPoint;
        break;
      case Operation::Type::kQuery: {
        if (concurrent_readers) {
          // Publish: freeze the clustering as of this operation and hand
          // {snapshot, qids} to the readers. The timed cost is snapshot
          // construction + the pointer swap — the updater's entire query
          // bill in concurrent mode.
          DDC_TRACE_SPAN("runner.publish");
          auto work = std::make_shared<ReaderWork>();
          work->snapshot = clusterer.Snapshot();
          work->qids = query_ids;
          reader_work.Store(std::move(work));
          break;
        }
        const CGroupByResult r = clusterer.Query(query_ids);
        // Keep the optimizer honest.
        DDC_CHECK(r.groups.size() + r.noise.size() + 1 > 0);
        break;
      }
    }
    // Durability before acknowledgment: the record is appended (and synced,
    // per the writer's policy) inside the timed window, so an update only
    // counts as done once it would survive a crash. A WAL failure aborts —
    // silently continuing would acknowledge ops recovery cannot replay.
    if (is_update && options.wal != nullptr && !options.wal->Append(logged)) {
      std::fprintf(stderr, "runner: wal append failed: %s\n",
                   options.wal->error().c_str());
      std::abort();
    }
    // One timestamp ends the op measurement *and* feeds the budget check
    // below — the runner pays two clock reads per op, not three.
    const Clock::time_point t1 = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    if (is_update) {
      // Outside the timed window: the oplog is observability, and snapshot
      // saves are checkpoint cost, not operation latency.
      if (options.oplog != nullptr && !options.oplog->Append(logged)) {
        std::fprintf(stderr, "runner: oplog append failed: %s\n",
                     options.oplog->error().c_str());
        std::abort();
      }
      if (options.snapshot_every > 0 && --until_snapshot <= 0) {
        until_snapshot = options.snapshot_every;
        DDC_TRACE_SPAN("runner.snapshot_save");
        DDC_HISTOGRAM_SCOPED("runner.snapshot_save");
        // The log must be on stable storage before a snapshot claims to
        // cover it: recovery treats a snapshot newer than the replayable
        // log as lost acknowledged data.
        if (!options.wal->Sync()) {
          std::fprintf(stderr, "runner: wal sync failed: %s\n",
                       options.wal->error().c_str());
          std::abort();
        }
        const uint64_t last_seq = options.wal->next_seq() - 1;
        const std::string path =
            options.snapshot_dir + "/" + SnapshotFileName(last_seq);
        std::string save_error;
        if (SaveSnapshot(*clusterer.Snapshot(), clusterer.params(), last_seq,
                         path, &save_error)) {
          ++stats.snapshots_saved;
        } else {
          // Snapshots only accelerate cold starts — the WAL alone recovers
          // everything — so a failed save warns instead of aborting.
          std::fprintf(stderr, "runner: snapshot save failed: %s\n",
                       save_error.c_str());
          DDC_COUNTER_INC("persist.snapshot_save_failures");
        }
      }
    }

    total_cost_us += us;
    ++stats.ops_executed;
    hist->Record(us);
    if (op.type == Operation::Type::kQuery) {
      query_cost_us += us;
      ++stats.queries_executed;
    } else {
      update_cost_us += us;
      ++stats.updates_executed;
      stats.max_update_cost_us = std::max(stats.max_update_cost_us, us);
    }

    if (--until_checkpoint == 0 || stats.ops_executed == total_ops) {
      until_checkpoint = checkpoint_stride;
      stats.checkpoint_ops.push_back(stats.ops_executed);
      stats.avg_cost_us.push_back(total_cost_us /
                                  static_cast<double>(stats.ops_executed));
      stats.max_upd_cost_us.push_back(stats.max_update_cost_us);
    }

    if (options.time_budget_seconds > 0 &&
        std::chrono::duration<double>(t1 - run_start).count() >
            options.time_budget_seconds) {
      stats.timed_out = true;
      break;
    }
    if (options.stop_requested != nullptr && *options.stop_requested != 0) {
      stats.interrupted = true;
      break;
    }
  }

  // Asynchronous engines may still hold enqueued updates; the barrier keeps
  // them inside the timing window so throughput reflects applied work.
  clusterer.Flush();

  // Leave everything logged durable at run end, whatever the group-commit
  // cadence was mid-run.
  if (options.wal != nullptr) {
    if (!options.wal->Sync()) {
      std::fprintf(stderr, "runner: final wal sync failed: %s\n",
                   options.wal->error().c_str());
      std::abort();
    }
    stats.wal_last_seq = options.wal->next_seq() - 1;
  }
  if (options.oplog != nullptr && !options.oplog->Sync()) {
    std::fprintf(stderr, "runner: final oplog sync failed: %s\n",
                 options.oplog->error().c_str());
    std::abort();
  }

  // Stop the read side inside the timing window too — reader throughput is
  // measured against the same wall clock as the update stream.
  if (concurrent_readers) {
    reader_stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();
    for (size_t r = 0; r < reader_hist.size(); ++r) {
      stats.reader_query_latency_us.MergeFrom(reader_hist[r]);
      stats.reader_queries_executed += reader_count[r];
    }
  }

  // A truncated run still ends with a terminal checkpoint at ops_executed,
  // so the series covers exactly the executed prefix.
  if (stats.ops_executed > 0 &&
      (stats.checkpoint_ops.empty() ||
       stats.checkpoint_ops.back() != stats.ops_executed)) {
    stats.checkpoint_ops.push_back(stats.ops_executed);
    stats.avg_cost_us.push_back(total_cost_us /
                                static_cast<double>(stats.ops_executed));
    stats.max_upd_cost_us.push_back(stats.max_update_cost_us);
  }

  stats.total_seconds =
      std::chrono::duration<double>(Clock::now() - run_start).count();
  if (stats.ops_executed > 0) {
    stats.avg_workload_cost_us =
        total_cost_us / static_cast<double>(stats.ops_executed);
  }
  if (stats.updates_executed > 0) {
    stats.avg_update_cost_us =
        update_cost_us / static_cast<double>(stats.updates_executed);
  }
  if (stats.queries_executed > 0) {
    stats.avg_query_cost_us =
        query_cost_us / static_cast<double>(stats.queries_executed);
  }
  if (stats.total_seconds > 0) {
    stats.reader_queries_per_sec =
        static_cast<double>(stats.reader_queries_executed) /
        stats.total_seconds;
  }
  return stats;
}

}  // namespace ddc
