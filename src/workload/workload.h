#ifndef DDC_WORKLOAD_WORKLOAD_H_
#define DDC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "geom/point.h"
#include "workload/seed_spreader.h"

namespace ddc {

/// One operation of a benchmark workload. Deletions and queries reference
/// points by their *insertion index* (position in the insertion order); the
/// runner resolves those to live PointIds.
struct Operation {
  enum class Type { kInsert, kDelete, kQuery };
  Type type;
  /// kInsert: index into Workload::points of the point to insert (which is
  /// also the insertion index other operations refer to).
  /// kDelete: insertion index of the point to delete.
  int64_t target = -1;
  /// kQuery: insertion indices forming Q.
  std::vector<int64_t> query;
};

/// A generated mixed workload (Section 8.1): a permuted seed-spreader
/// insertion stream, interleaved deletions ("tokens" filled with random
/// alive points, under the good-prefix condition), and a C-group-by query
/// with |Q| ~ U[2,100] after every `query_every` updates.
struct Workload {
  std::vector<Point> points;  // In insertion order.
  std::vector<Operation> ops;

  /// Generation provenance: dimensionality the points were generated in
  /// (consumers build matching DbscanParams from it) and the seed that
  /// reproduces this workload verbatim.
  int dim = 0;
  uint64_t seed = 0;

  int64_t num_updates = 0;
  int64_t num_inserts = 0;
  int64_t num_deletes = 0;
  int64_t num_queries = 0;
};

struct WorkloadConfig {
  /// Total number of updates N (inserts + deletes).
  int64_t num_updates = 100000;
  /// Fraction of updates that are insertions (%ins). 1.0 = semi-dynamic.
  double insert_fraction = 1.0;
  /// Issue one C-group-by query after this many updates (0 = no queries).
  int64_t query_every = 1000;
  /// Bounds for the uniform |Q| draw.
  int query_min = 2;
  int query_max = 100;
  /// Underlying static dataset generator; its num_points is overridden with
  /// N * insert_fraction.
  SeedSpreaderConfig spreader;
  uint64_t seed = 1;
};

/// Builds a workload per the paper's three-step recipe.
Workload BuildWorkload(const WorkloadConfig& config);

}  // namespace ddc

#endif  // DDC_WORKLOAD_WORKLOAD_H_
