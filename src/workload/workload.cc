#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ddc {
namespace {

/// Fisher–Yates shuffle driven by our deterministic Rng.
template <typename T>
void Shuffle(std::vector<T>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.NextBelow(i)]);
  }
}

}  // namespace

Workload BuildWorkload(const WorkloadConfig& config) {
  DDC_CHECK(config.num_updates > 0);
  DDC_CHECK(config.insert_fraction > 0 && config.insert_fraction <= 1.0);
  Rng rng(config.seed);

  Workload w;
  w.dim = config.spreader.dim;
  w.seed = config.seed;
  const int64_t inserts = static_cast<int64_t>(
      std::llround(static_cast<double>(config.num_updates) *
                   config.insert_fraction));
  const int64_t deletes = config.num_updates - inserts;
  w.num_updates = config.num_updates;
  w.num_inserts = inserts;
  w.num_deletes = deletes;

  // Step 1 — insertions: a seed-spreader dataset in random order, so that
  // clusters form up early in the workload.
  SeedSpreaderConfig spreader = config.spreader;
  spreader.num_points = inserts;
  w.points = GenerateSeedSpreader(spreader, rng);
  Shuffle(w.points, rng);

  // Step 2 — deletions: interleave delete tokens so that every prefix has
  // at least as many inserts as deletes ("good" permutation, retried until
  // it holds), then fill each token with a random currently-alive point.
  std::vector<int8_t> is_insert(config.num_updates);
  for (;;) {
    std::fill(is_insert.begin(), is_insert.begin() + inserts, 1);
    std::fill(is_insert.begin() + inserts, is_insert.end(), 0);
    Shuffle(is_insert, rng);
    int64_t balance = 0;
    bool good = true;
    for (const int8_t b : is_insert) {
      balance += b ? 1 : -1;
      if (balance < 0) {
        good = false;
        break;
      }
    }
    if (good) break;
  }

  std::vector<int64_t> alive;  // Insertion indices currently alive.
  alive.reserve(inserts);
  int64_t next_insert = 0;
  int64_t updates_seen = 0;

  auto maybe_emit_query = [&]() {
    if (config.query_every <= 0 || updates_seen == 0 ||
        updates_seen % config.query_every != 0 || alive.empty()) {
      return;
    }
    Operation op;
    op.type = Operation::Type::kQuery;
    const int want = static_cast<int>(
        rng.NextInRange(config.query_min,
                        std::min<int64_t>(config.query_max,
                                          static_cast<int64_t>(alive.size()))));
    // Sample without replacement via partial Fisher–Yates on a copy-free
    // index draw (alive is small to moderate; draw-and-swap on a scratch).
    std::vector<int64_t> scratch(alive);
    for (int k = 0; k < want; ++k) {
      const size_t j = k + rng.NextBelow(scratch.size() - k);
      std::swap(scratch[k], scratch[j]);
      op.query.push_back(scratch[k]);
    }
    w.ops.push_back(std::move(op));
    ++w.num_queries;
  };

  for (int64_t i = 0; i < config.num_updates; ++i) {
    Operation op;
    if (is_insert[i]) {
      op.type = Operation::Type::kInsert;
      op.target = next_insert;
      alive.push_back(next_insert);
      ++next_insert;
    } else {
      op.type = Operation::Type::kDelete;
      DDC_CHECK(!alive.empty());
      const size_t j = rng.NextBelow(alive.size());
      op.target = alive[j];
      alive[j] = alive.back();
      alive.pop_back();
    }
    w.ops.push_back(std::move(op));
    ++updates_seen;
    maybe_emit_query();
  }
  DDC_CHECK(next_insert == inserts);
  return w;
}

}  // namespace ddc
