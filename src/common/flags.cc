#include "common/flags.h"

#include <cstdlib>
#include <string>

#include "common/check.h"

namespace ddc {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DDC_CHECK(arg.size() > 2 && arg[0] == '-' && arg[1] == '-');
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1";
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace ddc
