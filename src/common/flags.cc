#include "common/flags.h"

#include <cstdlib>
#include <string>

#include "common/check.h"

namespace ddc {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DDC_CHECK(arg.size() > 2 && arg[0] == '-' && arg[1] == '-');
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1";
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::pair<std::string, std::string>> ParseKeyValueList(
    const std::string& list) {
  std::vector<std::pair<std::string, std::string>> entries;
  if (list.empty()) return entries;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(start, comma - start);
    DDC_CHECK(!item.empty() && "empty item in key=value list");
    const size_t eq = item.find('=');
    DDC_CHECK(eq != std::string::npos && "key=value item missing '='");
    DDC_CHECK(eq > 0 && "empty key in key=value list");
    entries.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    start = comma + 1;
  }
  return entries;
}

}  // namespace ddc
