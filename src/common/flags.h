#ifndef DDC_COMMON_FLAGS_H_
#define DDC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ddc {

/// Minimal `--key=value` command-line parser used by the benchmark harnesses
/// and examples, so every experiment can be re-run at different scales
/// without editing code.
class Flags {
 public:
  /// Parses argv; entries must look like `--name=value` or `--name value`.
  /// Unknown flags are kept and readable; malformed arguments abort.
  Flags(int argc, char** argv);

  /// Returns the flag value or `def` when the flag is absent.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// True when the flag appeared on the command line.
  bool Has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Parses a comma-separated `key=value` sublist — the payload of compound
/// flag values like `--scenario=burst:n=200000,dup=0.3`. Keys keep document
/// order (duplicates allowed; consumers decide). The empty string yields an
/// empty list; an empty item, an empty key, or an item without '=' aborts
/// via DDC_CHECK with the offending item in the message.
std::vector<std::pair<std::string, std::string>> ParseKeyValueList(
    const std::string& list);

}  // namespace ddc

#endif  // DDC_COMMON_FLAGS_H_
