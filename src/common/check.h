#ifndef DDC_COMMON_CHECK_H_
#define DDC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight invariant-checking macros.
///
/// The library does not throw exceptions across API boundaries (Google style);
/// internal invariant violations abort with a source location so that fuzz and
/// property tests fail loudly.

/// Aborts the process when `cond` is false. Enabled in all build types: the
/// checks guard algorithmic invariants whose cost is negligible next to the
/// geometry work around them.
#define DDC_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "DDC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define DDC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define DDC_DCHECK(cond) DDC_CHECK(cond)
#endif

#endif  // DDC_COMMON_CHECK_H_
