#include "common/io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <filesystem>
#include <utility>

#include "telemetry/metrics.h"

namespace ddc {

namespace {

constexpr size_t kBufferSize = 64 * 1024;

std::string Describe(const char* op, const std::string& path, int err) {
  std::string msg = op;
  msg += ' ';
  msg += path;
  msg += ": ";
  msg += strerror(err);
  return msg;
}

/// A WritableFile whose open already failed: every operation reports the
/// open error, so call sites need no null checks.
class FailedFile final : public WritableFile {
 public:
  explicit FailedFile(std::string error) : error_(std::move(error)) {}

  bool Append(const void*, size_t) override { return false; }
  bool Flush() override { return false; }
  bool Sync() override { return false; }
  bool Close() override { return false; }
  bool ok() const override { return false; }
  const std::string& error() const override { return error_; }
  int64_t bytes_written() const override { return 0; }

 private:
  std::string error_;
};

/// fsync on the directory containing `path`, making a rename into it
/// durable. Best-effort: some filesystems refuse directory fsync.
void SyncDirOf(const std::string& path) {
  const std::filesystem::path dir =
      std::filesystem::path(path).has_parent_path()
          ? std::filesystem::path(path).parent_path()
          : std::filesystem::path(".");
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::unique_ptr<BufferedFile> BufferedFile::Open(const std::string& path,
                                                 Mode mode,
                                                 std::string* error) {
  const int flags =
      O_WRONLY | O_CREAT | (mode == Mode::kTruncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = Describe("open", path, errno);
    return nullptr;
  }
  return std::unique_ptr<BufferedFile>(new BufferedFile(fd, path));
}

BufferedFile::BufferedFile(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {
  buffer_.reserve(kBufferSize);
}

BufferedFile::~BufferedFile() { Close(); }

void BufferedFile::LatchError(const char* op, int err) {
  DDC_COUNTER_INC("io.write_failures");
  if (error_.empty()) error_ = Describe(op, path_, err);
}

bool BufferedFile::WriteFully(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd_, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      LatchError("write", errno);
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool BufferedFile::Append(const void* data, size_t n) {
  if (!ok() || fd_ < 0) return false;
  const char* p = static_cast<const char*>(data);
  // Large appends bypass the buffer once it has been drained.
  if (buffer_.size() + n > kBufferSize) {
    if (!Flush()) return false;
    if (n > kBufferSize) {
      if (!WriteFully(p, n)) return false;
      bytes_written_ += static_cast<int64_t>(n);
      return true;
    }
  }
  buffer_.append(p, n);
  bytes_written_ += static_cast<int64_t>(n);
  return true;
}

bool BufferedFile::Flush() {
  if (!ok() || fd_ < 0) return false;
  if (buffer_.empty()) return true;
  if (!WriteFully(buffer_.data(), buffer_.size())) return false;
  buffer_.clear();
  return true;
}

bool BufferedFile::Sync() {
  if (!Flush()) return false;
  if (::fsync(fd_) != 0) {
    LatchError("fsync", errno);
    return false;
  }
  return true;
}

bool BufferedFile::Close() {
  if (fd_ < 0) return ok();
  const bool flushed = Flush();
  if (::close(fd_) != 0 && flushed) LatchError("close", errno);
  fd_ = -1;
  return ok();
}

WritableFileFactory DefaultFileFactory() {
  return [](const std::string& path) -> std::unique_ptr<WritableFile> {
    std::string error;
    std::unique_ptr<BufferedFile> f =
        BufferedFile::Open(path, BufferedFile::Mode::kTruncate, &error);
    if (f == nullptr) return std::make_unique<FailedFile>(std::move(error));
    return f;
  };
}

bool WriteFile(const std::string& path, std::string_view contents,
               std::string* error) {
  std::string open_error;
  std::unique_ptr<BufferedFile> f =
      BufferedFile::Open(path, BufferedFile::Mode::kTruncate, &open_error);
  if (f == nullptr) {
    if (error != nullptr) *error = open_error;
    return false;
  }
  f->Append(contents);
  if (!f->Close()) {
    if (error != nullptr) *error = f->error();
    return false;
  }
  return true;
}

bool WriteFileAtomic(const std::string& path, std::string_view contents,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  std::string open_error;
  std::unique_ptr<BufferedFile> f =
      BufferedFile::Open(tmp, BufferedFile::Mode::kTruncate, &open_error);
  if (f == nullptr) {
    if (error != nullptr) *error = open_error;
    return false;
  }
  f->Append(contents);
  f->Sync();
  if (!f->Close()) {
    if (error != nullptr) *error = f->error();
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = Describe("rename", path, errno);
    ::unlink(tmp.c_str());
    return false;
  }
  SyncDirOf(path);
  return true;
}

bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = Describe("open", path, errno);
    return false;
  }
  char buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Describe("read", path, errno);
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return true;
}

}  // namespace ddc
