#ifndef DDC_COMMON_FLAT_HASH_H_
#define DDC_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ddc {

/// Header-only open-addressing hash containers for the hot paths.
///
/// Every table the update loop touches per operation (cell index, sub-grid
/// counts, aBCP instances, grid-graph edges, HDT adjacency) was a node-based
/// std::unordered_map: one allocation per entry, a pointer chase per probe,
/// and a modulo per lookup. FlatHashMap/FlatHashSet store entries inline in
/// a single power-of-two array:
///
///   * linear probing — one cache line covers several probes;
///   * tombstone-free backward-shift erase — lookups never scan dead slots,
///     so probe sequences stay short under churn;
///   * the 64-bit hash is stored per slot — rehash never re-hashes keys, and
///     probes compare hashes before touching keys;
///   * heterogeneous lookup by precomputed hash (`FindHashed` & co.) — a
///     caller that already mixed the key (e.g. the grid, which threads one
///     CellKey hash through an entire operation) never pays for it twice.
///
/// Growth doubles the array at 7/8 load. References and iterators are
/// invalidated by any insert or erase (vector semantics, not node
/// semantics); none of the migrated call sites hold references across
/// mutations. Keys are exposed as const through iteration.
namespace flat_hash_internal {

inline uint64_t Mix64(uint64_t z) {
  // splitmix64 finalizer: full-avalanche mixing so that power-of-two masking
  // of the *low* bits is safe for any key distribution.
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Default hasher: integral keys get splitmix64 (std::hash is the identity
/// on libstdc++, which clusters catastrophically under linear probing);
/// everything else defers to the user-provided or std hasher.
template <typename K, typename Hash, typename = void>
struct DispatchHash {
  uint64_t operator()(const K& key) const {
    return static_cast<uint64_t>(Hash{}(key));
  }
};

template <typename K, typename Hash>
struct DispatchHash<K, Hash,
                    std::enable_if_t<std::is_integral_v<K> &&
                                     std::is_same_v<Hash, std::hash<K>>>> {
  uint64_t operator()(const K& key) const {
    return Mix64(static_cast<uint64_t>(key));
  }
};

/// One slot: the stored entry plus its cached hash. `used` makes the empty /
/// full distinction explicit (no reserved hash values).
template <typename Entry>
struct Slot {
  Entry entry;
  uint64_t hash = 0;
  bool used = false;
};

/// Shared open-addressing core. `Entry` is the stored value (K for sets,
/// std::pair<K, V> for maps); `GetKey` projects the key out of an entry.
template <typename Entry, typename Key, typename GetKey, typename HashFn>
class Table {
 public:
  Table() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  void Clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Ensures `n` entries fit without growth.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap - cap / 8 < n) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  uint64_t HashOf(const Key& key) const { return HashFn{}(key); }

  /// Index of the slot holding `key`, or npos. `h` must equal HashOf(key).
  size_t FindSlot(uint64_t h, const Key& key) const {
    if (slots_.empty()) return npos;
    size_t i = h & mask_;
    while (slots_[i].used) {
      if (slots_[i].hash == h && GetKey{}(slots_[i].entry) == key) return i;
      i = (i + 1) & mask_;
    }
    return npos;
  }

  /// Finds or default-creates the slot for `key`; `*inserted` reports which.
  template <typename MakeEntry>
  size_t FindOrInsertSlot(uint64_t h, const Key& key, MakeEntry&& make,
                          bool* inserted) {
    if (slots_.empty()) Rehash(kMinCapacity);
    size_t i = h & mask_;
    while (slots_[i].used) {
      if (slots_[i].hash == h && GetKey{}(slots_[i].entry) == key) {
        if (inserted != nullptr) *inserted = false;
        return i;
      }
      i = (i + 1) & mask_;
    }
    if (size_ + 1 > slots_.size() - slots_.size() / 8) {
      Rehash(slots_.size() * 2);
      i = h & mask_;
      while (slots_[i].used) i = (i + 1) & mask_;
    }
    slots_[i].entry = make();
    slots_[i].hash = h;
    slots_[i].used = true;
    ++size_;
    if (inserted != nullptr) *inserted = true;
    return i;
  }

  /// Backward-shift erase: the probe chain after the hole is compacted so
  /// that no tombstone is ever left behind.
  bool EraseSlot(uint64_t h, const Key& key) {
    size_t i = FindSlot(h, key);
    if (i == npos) return false;
    size_t hole = i;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!slots_[j].used) break;
      const size_t home = slots_[j].hash & mask_;
      // Entry at j may fill the hole iff its probe path passes through it:
      // cyclic distance home->hole must not exceed home->j.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole].entry = std::move(slots_[j].entry);
        slots_[hole].hash = slots_[j].hash;
        hole = j;
      }
    }
    slots_[hole].entry = Entry();
    slots_[hole].used = false;
    --size_;
    return true;
  }

  /// First used slot at or after `i` (== capacity when none); the iteration
  /// primitive.
  size_t NextUsed(size_t i) const {
    while (i < slots_.size() && !slots_[i].used) ++i;
    return i;
  }

  Entry& entry(size_t i) { return slots_[i].entry; }
  const Entry& entry(size_t i) const { return slots_[i].entry; }

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  static constexpr size_t kMinCapacity = 8;

  void Rehash(size_t new_cap) {
    std::vector<Slot<Entry>> old = std::move(slots_);
    slots_.assign(new_cap, Slot<Entry>{});
    mask_ = new_cap - 1;
    for (Slot<Entry>& s : old) {
      if (!s.used) continue;
      size_t i = s.hash & mask_;
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i].entry = std::move(s.entry);
      slots_[i].hash = s.hash;
      slots_[i].used = true;
    }
  }

  std::vector<Slot<Entry>> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

template <typename Table, typename Entry>
class Iterator {
 public:
  Iterator(const Table* table, size_t i) : table_(table), i_(i) {}

  const Entry& operator*() const { return table_->entry(i_); }
  const Entry* operator->() const { return &table_->entry(i_); }

  Iterator& operator++() {
    i_ = table_->NextUsed(i_ + 1);
    return *this;
  }

  friend bool operator==(const Iterator& a, const Iterator& b) {
    return a.i_ == b.i_;
  }
  friend bool operator!=(const Iterator& a, const Iterator& b) {
    return a.i_ != b.i_;
  }

 private:
  const Table* table_;
  size_t i_;
};

}  // namespace flat_hash_internal

/// Open-addressing hash map. See the file comment for the contract; the
/// *Hashed entry points take a caller-precomputed `HashOf(key)` value.
template <typename K, typename V, typename Hash = std::hash<K>>
class FlatHashMap {
  using HashFn = flat_hash_internal::DispatchHash<K, Hash>;
  struct GetKey {
    const K& operator()(const std::pair<K, V>& e) const { return e.first; }
  };
  using Table =
      flat_hash_internal::Table<std::pair<K, V>, K, GetKey, HashFn>;

 public:
  using value_type = std::pair<K, V>;
  using const_iterator = flat_hash_internal::Iterator<Table, value_type>;

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t capacity() const { return table_.capacity(); }
  void Clear() { table_.Clear(); }
  void Reserve(size_t n) { table_.Reserve(n); }

  uint64_t HashOf(const K& key) const { return table_.HashOf(key); }

  V* Find(const K& key) { return FindHashed(HashOf(key), key); }
  const V* Find(const K& key) const { return FindHashed(HashOf(key), key); }

  V* FindHashed(uint64_t h, const K& key) {
    const size_t i = table_.FindSlot(h, key);
    return i == Table::npos ? nullptr : &table_.entry(i).second;
  }
  const V* FindHashed(uint64_t h, const K& key) const {
    const size_t i = table_.FindSlot(h, key);
    return i == Table::npos ? nullptr : &table_.entry(i).second;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  V& operator[](const K& key) { return *EmplaceHashed(HashOf(key), key).first; }

  /// Inserts `value` under `key` unless present; returns {slot value
  /// pointer, inserted}. Like std::unordered_map::emplace, an existing entry
  /// is left untouched.
  template <typename... Args>
  std::pair<V*, bool> Emplace(const K& key, Args&&... args) {
    return EmplaceHashed(HashOf(key), key, std::forward<Args>(args)...);
  }

  template <typename... Args>
  std::pair<V*, bool> EmplaceHashed(uint64_t h, const K& key, Args&&... args) {
    bool inserted = false;
    const size_t i = table_.FindOrInsertSlot(
        h, key,
        [&] { return value_type(key, V(std::forward<Args>(args)...)); },
        &inserted);
    return {&table_.entry(i).second, inserted};
  }

  bool Erase(const K& key) { return EraseHashed(HashOf(key), key); }
  bool EraseHashed(uint64_t h, const K& key) {
    return table_.EraseSlot(h, key);
  }

  /// `fn(const K&, V&)` (or `(const K&, const V&)`) for every entry, in
  /// unspecified order. The table must not be mutated from inside.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = table_.NextUsed(0); i < table_.capacity();
         i = table_.NextUsed(i + 1)) {
      fn(static_cast<const K&>(table_.entry(i).first), table_.entry(i).second);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = table_.NextUsed(0); i < table_.capacity();
         i = table_.NextUsed(i + 1)) {
      fn(static_cast<const K&>(table_.entry(i).first), table_.entry(i).second);
    }
  }

  const_iterator begin() const {
    return const_iterator(&table_, table_.NextUsed(0));
  }
  const_iterator end() const {
    return const_iterator(&table_, table_.capacity());
  }

 private:
  Table table_;
};

/// Open-addressing hash set; same contract as FlatHashMap.
template <typename K, typename Hash = std::hash<K>>
class FlatHashSet {
  using HashFn = flat_hash_internal::DispatchHash<K, Hash>;
  struct GetKey {
    const K& operator()(const K& e) const { return e; }
  };
  using Table = flat_hash_internal::Table<K, K, GetKey, HashFn>;

 public:
  using value_type = K;
  using const_iterator = flat_hash_internal::Iterator<Table, K>;

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t capacity() const { return table_.capacity(); }
  void Clear() { table_.Clear(); }
  void Reserve(size_t n) { table_.Reserve(n); }

  uint64_t HashOf(const K& key) const { return table_.HashOf(key); }

  bool Contains(const K& key) const { return ContainsHashed(HashOf(key), key); }
  bool ContainsHashed(uint64_t h, const K& key) const {
    return table_.FindSlot(h, key) != Table::npos;
  }

  /// Returns true when the key was newly inserted.
  bool Insert(const K& key) { return InsertHashed(HashOf(key), key); }
  bool InsertHashed(uint64_t h, const K& key) {
    bool inserted = false;
    table_.FindOrInsertSlot(h, key, [&] { return key; }, &inserted);
    return inserted;
  }

  bool Erase(const K& key) { return EraseHashed(HashOf(key), key); }
  bool EraseHashed(uint64_t h, const K& key) {
    return table_.EraseSlot(h, key);
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = table_.NextUsed(0); i < table_.capacity();
         i = table_.NextUsed(i + 1)) {
      fn(table_.entry(i));
    }
  }

  const_iterator begin() const {
    return const_iterator(&table_, table_.NextUsed(0));
  }
  const_iterator end() const {
    return const_iterator(&table_, table_.capacity());
  }

 private:
  Table table_;
};

}  // namespace ddc

#endif  // DDC_COMMON_FLAT_HASH_H_
