#ifndef DDC_COMMON_JSON_H_
#define DDC_COMMON_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ddc {

/// Streaming JSON writer used by the telemetry reports and `ddc_driver`'s
/// BENCH output. Commas are inserted automatically; strings are escaped per
/// RFC 8259 (quote, backslash, and control characters; other bytes pass
/// through, so UTF-8 input stays UTF-8). Non-finite doubles become `null`,
/// which keeps every emitted document strictly parseable.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts an object member; must be followed by exactly one value (or
  /// container). Aborts when not inside an object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// The document so far. Aborts unless every container has been closed and
  /// exactly one top-level value was written.
  const std::string& str() const;

  /// Appends `"..."` with escaping to `out` — the escaping core, exposed for
  /// reuse and tests.
  static void AppendEscaped(std::string& out, std::string_view v);

 private:
  void BeforeValue();

  std::string out_;
  /// One frame per open container: 'O' / 'A', plus whether it has members.
  std::vector<std::pair<char, bool>> stack_;
  bool after_key_ = false;
  bool wrote_top_value_ = false;
};

/// Minimal parsed JSON value (null / bool / number / string / array /
/// object). Numbers are doubles — ample for telemetry payloads; object
/// members keep document order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Returns nullopt on malformed input; when `error`
/// is non-null it receives a short description with the byte offset.
std::optional<JsonValue> JsonParse(std::string_view text,
                                   std::string* error = nullptr);

}  // namespace ddc

#endif  // DDC_COMMON_JSON_H_
