#ifndef DDC_COMMON_RANDOM_H_
#define DDC_COMMON_RANDOM_H_

#include <cstdint>

namespace ddc {

/// Deterministic, fast pseudo-random generator (xoshiro256**, seeded through
/// splitmix64). All randomized components of the library (workload
/// generation, treap priorities, sampling) draw from this generator so that
/// experiments are reproducible from a single seed.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 uniform random bits.
  uint64_t Next();

  /// Returns an integer uniform in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Returns an integer uniform in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace ddc

#endif  // DDC_COMMON_RANDOM_H_
