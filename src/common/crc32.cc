#include "common/crc32.h"

#include <array>

namespace ddc {

namespace {

/// The 256-entry lookup table for the reflected polynomial, computed once
/// at first use (constant-initialized would also do, but a lambda-built
/// static keeps the table out of the binary image).
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ddc
