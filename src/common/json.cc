#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ddc {

// ---------------------------------------------------------------------------
// Writer.

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.emplace_back('O', false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  DDC_CHECK(!stack_.empty() && stack_.back().first == 'O' && !after_key_);
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.emplace_back('A', false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  DDC_CHECK(!stack_.empty() && stack_.back().first == 'A');
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  DDC_CHECK(!stack_.empty() && stack_.back().first == 'O' && !after_key_);
  if (stack_.back().second) out_ += ',';
  stack_.back().second = true;
  AppendEscaped(out_, name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  AppendEscaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  if (!std::isfinite(v)) return Null();
  BeforeValue();
  // Shortest representation that round-trips; always valid JSON (to_chars
  // never produces a leading '+' or a bare '.').
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  DDC_CHECK(wrote_top_value_ && stack_.empty() && !after_key_);
  return out_;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) {
    // First (and only) top-level value.
    DDC_CHECK(!wrote_top_value_ && "top-level value already complete");
    wrote_top_value_ = true;
    return;
  }
  DDC_CHECK(stack_.back().first == 'A' && "object members need Key() first");
  if (stack_.back().second) out_ += ',';
  stack_.back().second = true;
}

void JsonWriter::AppendEscaped(std::string& out, std::string_view v) {
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// ---------------------------------------------------------------------------
// Parser.

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue& out, std::string* error) {
    bool ok = ParseValue(out) && (SkipWhitespace(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = error_.empty() ? "trailing garbage" : error_;
      *error += " at offset " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  bool Fail(const char* why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': out.type = JsonValue::Type::kNull; return Literal("null");
      case 't':
        out.type = JsonValue::Type::kBool;
        out.bool_value = true;
        return Literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.bool_value = false;
        return Literal("false");
      case '"':
        out.type = JsonValue::Type::kString;
        return ParseString(out.string_value);
      case '[': return ParseArray(out);
      case '{': return ParseObject(out);
      default: return ParseNumber(out);
    }
  }

  bool ParseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    for (;;) {
      if (!ParseValue(out.items.emplace_back())) return false;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return Fail("expected ',' or ']'");
      ++pos_;
    }
  }

  bool ParseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      auto& [key, value] = out.members.emplace_back();
      if (!ParseString(key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      if (!ParseValue(value)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return Fail("expected ',' or '}'");
      ++pos_;
    }
  }

  bool ParseString(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) return Fail("dangling escape");
      switch (text_[pos_++]) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          uint32_t cp;
          if (!ParseHex4(cp)) return false;
          // Surrogate pair -> one astral code point.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (text_.substr(pos_, 2) != "\\u") return Fail("lone surrogate");
            pos_ += 2;
            uint32_t lo;
            if (!ParseHex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return Fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("bad hex digit");
    }
    return true;
  }

  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseNumber(JsonValue& out) {
    out.type = JsonValue::Type::kNumber;
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     out.number_value);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_ ||
        pos_ == start) {
      return Fail("bad number");
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> JsonParse(std::string_view text, std::string* error) {
  JsonValue value;
  if (!Parser(text).Parse(value, error)) return std::nullopt;
  return value;
}

}  // namespace ddc
