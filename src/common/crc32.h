#ifndef DDC_COMMON_CRC32_H_
#define DDC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ddc {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
/// durability layer stamps on every WAL record and snapshot section. The
/// implementation is the classic 8-entries-per-byte table walk: not the
/// fastest possible, but the checksummed paths are checkpoint/recovery
/// code, never the per-operation hot path.

/// CRC of `n` bytes at `data`, continuing from `seed` (0 for a fresh
/// checksum). Chain calls to checksum discontiguous pieces:
///   crc = Crc32(a, na); crc = Crc32(b, nb, crc);
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace ddc

#endif  // DDC_COMMON_CRC32_H_
