#ifndef DDC_COMMON_IO_H_
#define DDC_COMMON_IO_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace ddc {

/// \file
/// Error-checked file I/O for everything this repo persists: BENCH
/// documents, metrics/trace dumps, the write-ahead log and snapshot files.
/// The std::ofstream idiom the early writers used reports nothing on short
/// writes and swallows ENOSPC until close; these helpers capture errno at
/// the failing call and latch it, so a caller that checks once at the end
/// still learns about the first failure and its cause.

/// Abstract append-only byte sink. Implementations latch their first error:
/// after any call returns false, every later call returns false and
/// `error()` describes the original failure. The write-ahead log writes
/// through this interface so tests can interpose fault injection
/// (persist/fault_file.h) without touching the production code path.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `n` bytes. False on failure (error latched).
  virtual bool Append(const void* data, size_t n) = 0;
  bool Append(std::string_view s) { return Append(s.data(), s.size()); }

  /// Pushes buffered bytes to the OS (no durability guarantee).
  virtual bool Flush() = 0;

  /// Flush + fsync: bytes are on stable storage when this returns true.
  virtual bool Sync() = 0;

  /// Flushes and closes; false when the flush or close fails. Idempotent.
  virtual bool Close() = 0;

  /// False once any operation failed.
  virtual bool ok() const = 0;

  /// Description of the first failure ("" while ok): operation, path, and
  /// strerror of the captured errno.
  virtual const std::string& error() const = 0;

  /// Bytes successfully accepted by Append so far.
  virtual int64_t bytes_written() const = 0;
};

/// Buffered POSIX file writer — the production WritableFile. Writes go
/// through a userspace buffer (default 64 KiB) flushed with full-write
/// loops, so short writes are retried and a true failure (ENOSPC, EIO, …)
/// is reported with its errno instead of vanishing.
class BufferedFile final : public WritableFile {
 public:
  enum class Mode { kTruncate, kAppend };

  /// Opens `path` (O_CREAT); null on failure, with the reason in *error.
  static std::unique_ptr<BufferedFile> Open(const std::string& path,
                                            Mode mode = Mode::kTruncate,
                                            std::string* error = nullptr);

  ~BufferedFile() override;

  bool Append(const void* data, size_t n) override;
  using WritableFile::Append;
  bool Flush() override;
  bool Sync() override;
  bool Close() override;
  bool ok() const override { return error_.empty(); }
  const std::string& error() const override { return error_; }
  int64_t bytes_written() const override { return bytes_written_; }

  const std::string& path() const { return path_; }

 private:
  BufferedFile(int fd, std::string path);

  bool WriteFully(const void* data, size_t n);
  void LatchError(const char* op, int err);

  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  std::string error_;
  int64_t bytes_written_ = 0;
};

/// Opens a WritableFile at `path`, truncating. The indirection point the
/// WAL rotates segments through; tests substitute fault-injecting
/// implementations.
using WritableFileFactory =
    std::function<std::unique_ptr<WritableFile>(const std::string& path)>;

/// The default factory: BufferedFile::Open. A failed open still returns a
/// non-null file whose every operation fails with the open error, so
/// callers only ever check ok().
WritableFileFactory DefaultFileFactory();

/// Writes `contents` to `path` in one error-checked pass (truncating).
/// False on any failure, with the reason in *error (may be null).
bool WriteFile(const std::string& path, std::string_view contents,
               std::string* error = nullptr);

/// Durable atomic replacement: writes to `path.tmp`, fsyncs, renames over
/// `path`, fsyncs the directory. Readers never observe a torn file; a crash
/// leaves either the old content or the new. Used for manifests.
bool WriteFileAtomic(const std::string& path, std::string_view contents,
                     std::string* error = nullptr);

/// Reads the whole of `path` into *out. False (and *error) on failure.
bool ReadFileToString(const std::string& path, std::string* out,
                      std::string* error = nullptr);

/// Little-endian integer append/read helpers shared by the WAL record
/// format and the snapshot blobs: explicit byte composition, so the on-disk
/// format is identical on any host endianness.
inline void AppendLe32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

inline void AppendLe64(std::string& out, uint64_t v) {
  AppendLe32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  AppendLe32(out, static_cast<uint32_t>(v >> 32));
}

inline void AppendLeDouble(std::string& out, double v) {
  AppendLe64(out, std::bit_cast<uint64_t>(v));
}

inline uint32_t ReadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t ReadLe64(const unsigned char* p) {
  return static_cast<uint64_t>(ReadLe32(p)) |
         (static_cast<uint64_t>(ReadLe32(p + 4)) << 32);
}

inline double ReadLeDouble(const unsigned char* p) {
  return std::bit_cast<double>(ReadLe64(p));
}

}  // namespace ddc

#endif  // DDC_COMMON_IO_H_
