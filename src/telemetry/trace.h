#ifndef DDC_TELEMETRY_TRACE_H_
#define DDC_TELEMETRY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ddc {

/// \file
/// Structured tracing: RAII spans recorded into per-thread ring buffers and
/// drained on demand as Chrome `trace_event` JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev). Disabled by default;
/// `DDC_TRACE_SPAN("name")` then costs one relaxed load plus a branch and
/// touches nothing else. When enabled, recording a span is two steady-clock
/// reads plus an uncontended mutex around the calling thread's own ring —
/// tracing is an opt-in diagnosis tool, not part of the always-on budget
/// (that is what telemetry/metrics.h is for).
///
/// Span names must be string literals (or otherwise immortal): the ring
/// stores the pointer, not a copy.

namespace trace_internal {

/// One completed span, [start_ns, end_ns] on the steady clock.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
};

/// Fixed-capacity event ring: when full, a new event overwrites the oldest
/// one — the newest spans always survive, which is what a post-mortem
/// wants. Not thread-safe by itself (the per-thread buffer wraps it in a
/// mutex); exposed here so tests can drive the wrap logic directly.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity) {}

  void Record(const TraceEvent& event);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Total events ever recorded (including overwritten ones).
  uint64_t total_recorded() const { return total_; }
  /// Events lost to wrap-around.
  uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceEvent> ring_;  // Grown lazily up to capacity_.
  uint64_t total_ = 0;            // total_ % capacity_ = next write slot.
};

/// Steady-clock nanoseconds (monotonic; comparable across threads).
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Appends one completed span to the calling thread's ring.
void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns);

}  // namespace trace_internal

/// Process-wide trace control.
class Trace {
 public:
  /// Events each thread's ring holds before wrap (24 bytes apiece; storage
  /// is allocated on a thread's first recorded span, never when disabled).
  static constexpr size_t kRingCapacity = 1u << 15;

  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// The single branch every DDC_TRACE_SPAN pays.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Everything currently buffered, across all threads (including exited
  /// ones), as a Chrome trace_event JSON document:
  /// {"traceEvents":[{"name",...,"ph":"X","ts",...}]}. Timestamps are
  /// steady-clock microseconds; tids are small sequential ids in thread
  /// first-record order.
  static std::string ChromeTraceJson();

  /// Drops all buffered events (test isolation).
  static void ClearForTest();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII span: records [construction, destruction] under `name` when tracing
/// is enabled at construction time. `name` must be immortal (string
/// literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(Trace::enabled() ? name : nullptr) {
    if (name_ != nullptr) start_ns_ = trace_internal::NowNs();
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      trace_internal::RecordSpan(name_, start_ns_, trace_internal::NowNs());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_ = 0;
};

#define DDC_TRACE_CONCAT_INNER(a, b) a##b
#define DDC_TRACE_CONCAT(a, b) DDC_TRACE_CONCAT_INNER(a, b)

/// Scoped span covering the rest of the enclosing block.
#define DDC_TRACE_SPAN(name) \
  ::ddc::TraceSpan DDC_TRACE_CONCAT(ddc_trace_span_, __LINE__)(name)

}  // namespace ddc

#endif  // DDC_TELEMETRY_TRACE_H_
