#ifndef DDC_TELEMETRY_WATCHDOG_H_
#define DDC_TELEMETRY_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ddc {

/// \file
/// Worker-thread heartbeat watchdog: each pool worker stamps a cheap
/// atomic heartbeat around every task it runs; a monitor thread flags
/// workers that have stayed quiet past a deadline *while work is queued
/// for them* — an idle worker is healthy, a silent one with a backlog is
/// wedged (deadlocked task, runaway loop, lost wakeup). The report is an
/// actionable stall event (who, how long, how much is waiting), not a raw
/// metric stream.

/// Heartbeat cell one worker owns. The worker stamps `Beat()` before and
/// after each task; the submitter maintains `queue_depth` (queued + the
/// one running). All fields are relaxed atomics — the watchdog reads are
/// approximate by design.
struct WorkerHealth {
  std::atomic<uint64_t> last_beat_ns{0};
  std::atomic<int64_t> queue_depth{0};
  std::atomic<uint64_t> tasks_completed{0};

  /// Steady-clock nanoseconds, the timebase of `last_beat_ns`.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void Beat() { last_beat_ns.store(NowNs(), std::memory_order_relaxed); }
};

/// Monitor thread over a fixed set of WorkerHealth cells. Fires `on_stall`
/// once per stall episode (a worker re-stalling on the same heartbeat is
/// not re-reported; a fresh beat re-arms it). Also bumps the
/// "watchdog.stalls" counter in the metrics registry. The health cells
/// must outlive the Watchdog.
class Watchdog {
 public:
  struct Options {
    /// A worker quiet this long with queue_depth > 0 is a stall.
    int64_t deadline_ms = 2000;
    /// Monitor poll cadence.
    int64_t poll_ms = 100;
  };

  /// One detected stall, passed to the callback (which runs on the monitor
  /// thread and must not block on the stalled worker).
  struct Stall {
    int worker = 0;        ///< Index into the watched set.
    std::string label;     ///< Caller-supplied label (e.g. "shard=2").
    int64_t queue_depth = 0;
    double quiet_seconds = 0;
    uint64_t tasks_completed = 0;
  };

  /// Watches `workers[i]` under `labels[i]` (labels may be empty or
  /// shorter; missing labels render as "worker=<i>").
  Watchdog(std::vector<const WorkerHealth*> workers,
           std::vector<std::string> labels, const Options& options,
           std::function<void(const Stall&)> on_stall);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stalls reported since construction (monotonic).
  uint64_t stalls_reported() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void Run();

  const std::vector<const WorkerHealth*> workers_;
  const std::vector<std::string> labels_;
  const Options options_;
  const std::function<void(const Stall&)> on_stall_;

  /// Per worker, the heartbeat value already reported as stalled; monitor
  /// thread only.
  std::vector<uint64_t> reported_beat_;
  std::atomic<uint64_t> stalls_{0};

  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread monitor_;
};

}  // namespace ddc

#endif  // DDC_TELEMETRY_WATCHDOG_H_
