#ifndef DDC_TELEMETRY_STATS_SERVER_H_
#define DDC_TELEMETRY_STATS_SERVER_H_

#include <string>
#include <string_view>
#include <vector>

#include "net/listener.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"

namespace ddc {

/// \file
/// Read-only stats/health endpoint over the metrics registry. Three routes:
///
///   GET /metrics   Prometheus text exposition (counters, gauges, and
///                  histograms with cumulative le-buckets in microseconds)
///   GET /varz      JSON snapshot: registry + process/run info
///   GET /healthz   HealthReport: ok / degraded / stalled + one-line cause
///                  (HTTP 503 when stalled, 200 otherwise)
///
/// The health report rolls raw registry values into issues: a live watchdog
/// stall means "stalled", latched write failures or past stall episodes or
/// excessive reader lag mean "degraded". Thresholds live in one place here,
/// not in the collector.

/// Rolled-up process health, derived purely from registry values.
struct HealthReport {
  enum class State {
    kOk = 0,        ///< Nothing latched, nobody stalled.
    kDegraded = 1,  ///< Something went wrong but progress continues.
    kStalled = 2,   ///< A worker is quiet past its deadline with backlog.
  };
  State state = State::kOk;
  std::string cause;  ///< One line; empty when ok.
};

/// "ok" / "degraded" / "stalled".
const char* HealthStateName(HealthReport::State state);

/// Evaluates the health rules against the current registry:
/// stalled   iff watchdog.stalled_workers > 0 (a worker is stuck right now);
/// degraded  iff wal.errors, io.write_failures or
///           persist.snapshot_save_failures latched, a past watchdog stall
///           episode was recorded, or runner.reader_epoch_lag exceeds
///           kMaxHealthyEpochLag;
/// ok        otherwise.
HealthReport EvaluateHealth();

/// Reader snapshots older than this many engine epochs count as degraded.
inline constexpr int64_t kMaxHealthyEpochLag = 64;

/// The registry snapshot as Prometheus text exposition. Metric names are
/// mangled ('.' -> '_') and prefixed with "ddc_"; histogram durations keep
/// the registry's microsecond unit, made explicit with a "_us" name suffix.
/// Empty histogram buckets are skipped (cumulative values stay correct).
std::string PrometheusText(const std::vector<MetricSample>& samples);

/// {"state":"...","cause":"..."} plus the raw inputs the verdict came from.
std::string HealthJson(const HealthReport& report);

/// The HTTP front door: a TcpListener whose handler routes the three GET
/// paths. Start/Stop owns the listener thread.
class StatsServer {
 public:
  struct Options {
    int port = 0;             ///< 0 = ephemeral, read back via port().
    std::string build_info;   ///< Free-form, surfaced in /varz.
  };

  /// `sampler` may be null: /varz then omits the sampler block. Not owned.
  StatsServer(const Options& options, const StatsSampler* sampler);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds and starts serving; false + error() on failure.
  bool Start();
  void Stop();

  int port() const { return listener_.port(); }
  const std::string& error() const { return listener_.error(); }

  /// Routes one raw HTTP request to a full HTTP response — the listener
  /// handler, exposed so tests can exercise routing without sockets.
  std::string HandleRequest(std::string_view request) const;

 private:
  std::string VarzJson() const;

  const Options options_;
  const StatsSampler* sampler_;
  TcpListener listener_;
};

}  // namespace ddc

#endif  // DDC_TELEMETRY_STATS_SERVER_H_
