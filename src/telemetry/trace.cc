#include "telemetry/trace.h"

#include <memory>
#include <mutex>

#include "common/json.h"

namespace ddc {

std::atomic<bool> Trace::enabled_{false};

namespace trace_internal {

void TraceRing::Record(const TraceEvent& event) {
  if (ring_.size() < capacity_) {
    if (ring_.capacity() == 0) ring_.reserve(capacity_);
    ring_.push_back(event);
  } else {
    ring_[total_ % capacity_] = event;  // Overwrite the oldest.
  }
  ++total_;
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // Not yet wrapped: slot order is record order.
    return out;
  }
  // Wrapped: the oldest surviving event sits at the next write slot.
  const size_t head = total_ % capacity_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

void TraceRing::Clear() {
  ring_.clear();
  total_ = 0;
}

namespace {

/// One thread's buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the global registry, so buffers of exited threads stay
/// readable until the next ClearForTest.
struct ThreadBuffer {
  std::mutex mu;
  TraceRing ring{Trace::kRingCapacity};
  int tid = 0;  // Small sequential id, assigned in first-record order.
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();  // Never freed.
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  static thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.ring.Record(TraceEvent{name, start_ns, end_ns});
}

}  // namespace trace_internal

std::string Trace::ChromeTraceJson() {
  JsonWriter j;
  j.BeginObject();
  j.Key("traceEvents").BeginArray();
  auto& reg = trace_internal::Registry();
  std::vector<std::shared_ptr<trace_internal::ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    buffers = reg.buffers;
  }
  for (const auto& buffer : buffers) {
    std::vector<trace_internal::TraceEvent> events;
    int tid = 0;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      events = buffer->ring.Events();
      tid = buffer->tid;
    }
    for (const trace_internal::TraceEvent& e : events) {
      j.BeginObject();
      j.Key("name").String(e.name);
      j.Key("cat").String("ddc");
      j.Key("ph").String("X");
      j.Key("ts").Double(static_cast<double>(e.start_ns) / 1e3);
      j.Key("dur").Double(static_cast<double>(e.end_ns - e.start_ns) / 1e3);
      j.Key("pid").Int(1);
      j.Key("tid").Int(tid);
      j.EndObject();
    }
  }
  j.EndArray();
  j.Key("displayTimeUnit").String("ms");
  j.EndObject();
  return j.str();
}

void Trace::ClearForTest() {
  auto& reg = trace_internal::Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->ring.Clear();
  }
}

}  // namespace ddc
