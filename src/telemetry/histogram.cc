#include "telemetry/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ddc {

void LatencyHistogram::Record(double value) {
  ++counts_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return std::min(BucketUpperEdge(i), max_);
  }
  return max_;  // Unreachable: every sample is in some bucket.
}

int LatencyHistogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // Also catches NaN and negatives.
  const double octaves = std::log2(value / kMinValue);
  const int bucket =
      static_cast<int>(std::ceil(octaves * kBucketsPerOctave - 1e-9));
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double LatencyHistogram::BucketUpperEdge(int bucket) {
  DDC_CHECK(bucket >= 0 && bucket < kNumBuckets);
  return kMinValue *
         std::exp2(static_cast<double>(bucket) / kBucketsPerOctave);
}

}  // namespace ddc
