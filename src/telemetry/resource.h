#ifndef DDC_TELEMETRY_RESOURCE_H_
#define DDC_TELEMETRY_RESOURCE_H_

#include <cstdint>

namespace ddc {

/// Peak resident set size of the current process in bytes (VmHWM on Linux).
/// Returns 0 on platforms where the value is unavailable — callers must
/// treat 0 as "unknown", not "no memory used".
int64_t PeakRssBytes();

/// Resets the peak-RSS high-water mark (writes 5 to /proc/self/clear_refs)
/// so consecutive benchmark runs in one process report their own peaks
/// instead of the cumulative process maximum. Returns false where
/// unsupported — PeakRssBytes then stays monotone over the process.
bool ResetPeakRss();

}  // namespace ddc

#endif  // DDC_TELEMETRY_RESOURCE_H_
