#include "telemetry/resource.h"

#include <cstdio>
#include <cstring>

namespace ddc {

int64_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  long long kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %lld kB", &kib) == 1) break;
  }
  std::fclose(f);
  return static_cast<int64_t>(kib) * 1024;
#else
  return 0;
#endif
}

bool ResetPeakRss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

}  // namespace ddc
