#ifndef DDC_TELEMETRY_REPORT_H_
#define DDC_TELEMETRY_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/params.h"
#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "workload/runner.h"
#include "workload/workload.h"

namespace ddc {

/// Shared run-report rendering for the figure benches and `ddc_driver`:
/// the human-readable tables the paper reproductions print, and the
/// machine-readable BENCH JSON that seeds the repo's perf trajectory.

/// Formats a cost cell ("TIMEOUT" when the run did not finish). Named to
/// avoid colliding with the grid Cell type in unqualified ddc:: scope.
std::string CostCell(const RunStats& stats, double value);

/// Sanitizes a scenario/method spec for use in a BENCH filename: every
/// character outside [A-Za-z0-9._-] becomes '-'. Whitelisting (rather than
/// rewriting the known spec punctuation ':,=') keeps future knob values
/// containing '/', ';', spaces, or shell metacharacters from producing
/// broken or path-escaping filenames.
std::string SanitizeForFilename(const std::string& text);

/// Prints the per-checkpoint avgcost / maxupdcost series of several
/// finished runs (one row per method), in the style of Figures 8/9/12/13.
void PrintSeries(const std::string& title,
                 const std::vector<std::string>& method_names,
                 const std::vector<RunStats>& runs);

/// Prints a parameter-sweep table (one row per x value, one column per
/// method, cell = average workload cost), in the style of Figures 10/11/14/15.
void PrintSweep(const std::string& title, const std::string& x_label,
                const std::vector<std::string>& x_values,
                const std::vector<std::string>& method_names,
                const std::vector<std::vector<RunStats>>& cells);

/// Writes `{"count":..,"mean":..,"p50":..,"p90":..,"p99":..,"p999":..,
/// "max":..}` (microseconds) as the next value of `w`.
void WriteLatencySummary(JsonWriter& w, const LatencyHistogram& h);

/// Writes `{"<name>": <value>, ...}` as the next value of `w` — one flat
/// object, metric names as keys (samples are already name-sorted when they
/// come from MetricsRegistry::Snapshot or DeltaSince).
void WriteMetrics(JsonWriter& w, const std::vector<MetricSample>& samples);

/// Everything identifying one (scenario, method) bench run. The caller owns
/// all measurement: `params` should be the parameters the run actually
/// executed with (EffectiveParams) and `peak_rss_bytes` the caller's RSS
/// capture (0 = unknown) — BenchJson renders, it does not sample state.
struct BenchRecord {
  std::string scenario;       // Registry name, e.g. "burst".
  std::string scenario_spec;  // Full spec string, e.g. "burst:n=1000".
  std::string method;
  DbscanParams params;
  uint64_t seed = 0;
  int64_t peak_rss_bytes = 0;
  const Workload* workload = nullptr;
  const RunStats* stats = nullptr;
  /// Per-run metrics view (counters as deltas over the run, gauges as-is);
  /// rendered as the v3 `metrics` section. See DeltaSince.
  std::vector<MetricSample> metrics;
};

/// Version of the BENCH JSON schema below. Bump on any breaking change to
/// field names, nesting, or units.
///   v2: concurrent read side — run.query_threads, run.reader_queries,
///       run.reader_queries_per_sec, latency_us.reader_query.
///   v3: observability — top-level `metrics` object (per-run counter
///       deltas + gauges from the metrics registry), run.interrupted
///       (true when a signal truncated the run).
inline constexpr int kBenchSchemaVersion = 3;

/// Renders the schema-stable BENCH document: schema_version, scenario,
/// method, params, workload shape, run aggregates (throughput, timed_out,
/// peak RSS), per-op-type latency quantiles, and the checkpoint series.
/// All durations are microseconds unless the key says otherwise.
std::string BenchJson(const BenchRecord& record);

/// Structural check of a BENCH document: parses and verifies the
/// schema_version and every required key. Accepts the current version and
/// v2 (the committed trajectory dirs hold v2 files; v3 additions are
/// required only of v3 documents). `ddc_driver` runs this on its own
/// output before writing, so an emitted file is a validated file. On
/// failure returns false and describes the problem in `*why`.
bool ValidateBenchJson(const std::string& json, std::string* why);

}  // namespace ddc

#endif  // DDC_TELEMETRY_REPORT_H_
