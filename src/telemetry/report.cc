#include "telemetry/report.h"

#include <cstdio>

#include "common/check.h"

namespace ddc {

std::string CostCell(const RunStats& stats, double value) {
  // The paper terminated IncDBSCAN after 3 hours in 5D/7D; a timed-out run
  // is reported the same way rather than with a misleading partial average.
  if (stats.timed_out) return "TIMEOUT";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

std::string SanitizeForFilename(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    const bool allowed = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                         c == '-';
    if (!allowed) c = '-';
  }
  return out;
}

void PrintSeries(const std::string& title,
                 const std::vector<std::string>& method_names,
                 const std::vector<RunStats>& runs) {
  std::printf("\n=== %s ===\n", title.c_str());
  DDC_CHECK(method_names.size() == runs.size());

  // Checkpoint header from the longest finished run.
  size_t ref = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].checkpoint_ops.size() > runs[ref].checkpoint_ops.size()) {
      ref = i;
    }
  }
  std::printf("%-16s", "ops:");
  for (const int64_t t : runs[ref].checkpoint_ops) {
    std::printf("%12lld", static_cast<long long>(t));
  }
  std::printf("\n-- average cost per operation (microsec) --\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::printf("%-16s", method_names[i].c_str());
    for (const double v : runs[i].avg_cost_us) std::printf("%12.2f", v);
    if (runs[i].timed_out) std::printf("   [TIMEOUT]");
    std::printf("\n");
  }
  std::printf("-- maximum update cost (microsec) --\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::printf("%-16s", method_names[i].c_str());
    for (const double v : runs[i].max_upd_cost_us) std::printf("%12.1f", v);
    if (runs[i].timed_out) std::printf("   [TIMEOUT]");
    std::printf("\n");
  }
  std::fflush(stdout);
}

void PrintSweep(const std::string& title, const std::string& x_label,
                const std::vector<std::string>& x_values,
                const std::vector<std::string>& method_names,
                const std::vector<std::vector<RunStats>>& cells) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("-- average workload cost (microsec) --\n");
  std::printf("%-14s", x_label.c_str());
  for (const auto& m : method_names) std::printf("%16s", m.c_str());
  std::printf("\n");
  for (size_t r = 0; r < x_values.size(); ++r) {
    std::printf("%-14s", x_values[r].c_str());
    for (size_t c = 0; c < method_names.size(); ++c) {
      const RunStats& s = cells[r][c];
      std::printf("%16s", CostCell(s, s.avg_workload_cost_us).c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void WriteLatencySummary(JsonWriter& w, const LatencyHistogram& h) {
  w.BeginObject();
  w.Key("count").Int(h.count());
  w.Key("mean").Double(h.mean());
  w.Key("p50").Double(h.Quantile(0.5));
  w.Key("p90").Double(h.Quantile(0.9));
  w.Key("p99").Double(h.Quantile(0.99));
  w.Key("p999").Double(h.Quantile(0.999));
  w.Key("max").Double(h.max());
  w.EndObject();
}

void WriteMetrics(JsonWriter& w, const std::vector<MetricSample>& samples) {
  w.BeginObject();
  for (const MetricSample& s : samples) {
    if (s.kind == MetricKind::kHistogram) {
      // Flattened to dotted numeric keys so the object stays a flat
      // name -> number map (the schema v3 contract bench_compare relies on).
      w.Key(s.name + ".count").Int(s.hist.count);
      w.Key(s.name + ".sum_us").Double(s.hist.sum_us());
      w.Key(s.name + ".min_us").Double(s.hist.min_us());
      w.Key(s.name + ".max_us").Double(s.hist.max_us());
      w.Key(s.name + ".p50_us").Double(s.hist.Quantile(0.50));
      w.Key(s.name + ".p95_us").Double(s.hist.Quantile(0.95));
      w.Key(s.name + ".p99_us").Double(s.hist.Quantile(0.99));
    } else {
      w.Key(s.name).Int(s.value);
    }
  }
  w.EndObject();
}

std::string BenchJson(const BenchRecord& record) {
  DDC_CHECK(record.workload != nullptr && record.stats != nullptr);
  const Workload& w = *record.workload;
  const RunStats& s = *record.stats;

  JsonWriter j;
  j.BeginObject();
  j.Key("schema_version").Int(kBenchSchemaVersion);
  j.Key("tool").String("ddc_driver");
  j.Key("scenario").String(record.scenario);
  j.Key("scenario_spec").String(record.scenario_spec);
  j.Key("method").String(record.method);
  j.Key("seed").Int(static_cast<int64_t>(record.seed));

  j.Key("params").BeginObject();
  j.Key("dim").Int(record.params.dim);
  j.Key("eps").Double(record.params.eps);
  j.Key("min_pts").Int(record.params.min_pts);
  j.Key("rho").Double(record.params.rho);
  j.EndObject();

  j.Key("workload").BeginObject();
  j.Key("num_updates").Int(w.num_updates);
  j.Key("num_inserts").Int(w.num_inserts);
  j.Key("num_deletes").Int(w.num_deletes);
  j.Key("num_queries").Int(w.num_queries);
  j.Key("num_ops").Int(static_cast<int64_t>(w.ops.size()));
  j.EndObject();

  j.Key("run").BeginObject();
  j.Key("ops_executed").Int(s.ops_executed);
  j.Key("updates_executed").Int(s.updates_executed);
  j.Key("queries_executed").Int(s.queries_executed);
  j.Key("total_seconds").Double(s.total_seconds);
  j.Key("throughput_ops_per_sec")
      .Double(s.total_seconds > 0
                  ? static_cast<double>(s.ops_executed) / s.total_seconds
                  : 0);
  j.Key("timed_out").Bool(s.timed_out);
  j.Key("interrupted").Bool(s.interrupted);
  j.Key("avg_workload_cost_us").Double(s.avg_workload_cost_us);
  j.Key("avg_update_cost_us").Double(s.avg_update_cost_us);
  j.Key("avg_query_cost_us").Double(s.avg_query_cost_us);
  j.Key("max_update_cost_us").Double(s.max_update_cost_us);
  j.Key("peak_rss_bytes").Int(record.peak_rss_bytes);
  j.Key("query_threads").Int(s.query_threads);
  j.Key("reader_queries").Int(s.reader_queries_executed);
  j.Key("reader_queries_per_sec").Double(s.reader_queries_per_sec);
  j.EndObject();

  j.Key("latency_us").BeginObject();
  j.Key("insert");
  WriteLatencySummary(j, s.insert_latency_us);
  j.Key("delete");
  WriteLatencySummary(j, s.delete_latency_us);
  j.Key("query");
  WriteLatencySummary(j, s.query_latency_us);
  j.Key("reader_query");
  WriteLatencySummary(j, s.reader_query_latency_us);
  j.EndObject();

  j.Key("metrics");
  WriteMetrics(j, record.metrics);

  j.Key("checkpoints").BeginObject();
  j.Key("ops").BeginArray();
  for (const int64_t t : s.checkpoint_ops) j.Int(t);
  j.EndArray();
  j.Key("avg_cost_us").BeginArray();
  for (const double v : s.avg_cost_us) j.Double(v);
  j.EndArray();
  j.Key("max_upd_cost_us").BeginArray();
  for (const double v : s.max_upd_cost_us) j.Double(v);
  j.EndArray();
  j.EndObject();

  j.EndObject();
  return j.str();
}

bool ValidateBenchJson(const std::string& json, std::string* why) {
  auto fail = [why](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  std::string parse_error;
  const std::optional<JsonValue> doc = JsonParse(json, &parse_error);
  if (!doc.has_value()) return fail("not parseable: " + parse_error);
  if (doc->type != JsonValue::Type::kObject) return fail("not an object");

  const JsonValue* version = doc->Find("schema_version");
  if (version == nullptr || version->type != JsonValue::Type::kNumber) {
    return fail("missing schema_version");
  }
  // v2 documents (the committed bench trajectories) stay valid alongside
  // the current version; the v3-only requirements below are skipped for
  // them.
  const int schema = static_cast<int>(version->number_value);
  if (schema != kBenchSchemaVersion && schema != 2) {
    return fail("unexpected schema_version");
  }
  for (const char* key : {"tool", "scenario", "scenario_spec", "method"}) {
    const JsonValue* v = doc->Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kString) {
      return fail(std::string("missing string key '") + key + "'");
    }
  }
  for (const char* key : {"params", "workload", "run", "latency_us",
                          "checkpoints"}) {
    const JsonValue* v = doc->Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kObject) {
      return fail(std::string("missing object key '") + key + "'");
    }
  }
  const JsonValue* run = doc->Find("run");
  for (const char* key :
       {"ops_executed", "total_seconds", "throughput_ops_per_sec",
        "avg_workload_cost_us", "max_update_cost_us", "peak_rss_bytes",
        "query_threads", "reader_queries", "reader_queries_per_sec"}) {
    const JsonValue* v = run->Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kNumber) {
      return fail(std::string("run missing numeric key '") + key + "'");
    }
  }
  const JsonValue* timed_out = run->Find("timed_out");
  if (timed_out == nullptr || timed_out->type != JsonValue::Type::kBool) {
    return fail("run missing bool key 'timed_out'");
  }
  if (schema >= 3) {
    const JsonValue* interrupted = run->Find("interrupted");
    if (interrupted == nullptr ||
        interrupted->type != JsonValue::Type::kBool) {
      return fail("run missing bool key 'interrupted'");
    }
    const JsonValue* metrics = doc->Find("metrics");
    if (metrics == nullptr || metrics->type != JsonValue::Type::kObject) {
      return fail("missing object key 'metrics'");
    }
    for (const auto& [name, value] : metrics->members) {
      if (value.type != JsonValue::Type::kNumber) {
        return fail("metrics." + name + " is not a number");
      }
    }
  }
  const JsonValue* latency = doc->Find("latency_us");
  for (const char* op : {"insert", "delete", "query", "reader_query"}) {
    const JsonValue* h = latency->Find(op);
    if (h == nullptr || h->type != JsonValue::Type::kObject) {
      return fail(std::string("latency_us missing op '") + op + "'");
    }
    for (const char* key : {"count", "mean", "p50", "p90", "p99", "p999",
                            "max"}) {
      const JsonValue* v = h->Find(key);
      if (v == nullptr || v->type != JsonValue::Type::kNumber) {
        return fail(std::string("latency_us.") + op + " missing '" + key +
                    "'");
      }
    }
  }
  const JsonValue* checkpoints = doc->Find("checkpoints");
  for (const char* key : {"ops", "avg_cost_us", "max_upd_cost_us"}) {
    const JsonValue* v = checkpoints->Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kArray) {
      return fail(std::string("checkpoints missing array '") + key + "'");
    }
  }
  return true;
}

}  // namespace ddc
