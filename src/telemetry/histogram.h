#ifndef DDC_TELEMETRY_HISTOGRAM_H_
#define DDC_TELEMETRY_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace ddc {

/// Log-bucketed latency histogram (HDR-style): fixed buckets at geometric
/// spacing of 2^(1/8) (≈ 9% relative width), covering 1 ns .. ~1 hour when
/// values are microseconds. Recording is O(1) with no allocation, so the
/// workload runner can call it inside the measurement loop; quantiles come
/// back with ≤ one bucket (≈ 9%) of relative error, exact count/sum/min/max.
class LatencyHistogram {
 public:
  /// Buckets per doubling of the value.
  static constexpr int kBucketsPerOctave = 8;
  /// Upper edge of bucket 0; with microsecond samples this is 1 ns.
  static constexpr double kMinValue = 1e-3;
  /// 42 octaves above kMinValue: bucket 335 tops out near 4.4e9 us.
  static constexpr int kNumBuckets = 336;

  /// Records one sample. Values <= kMinValue (including zero) land in
  /// bucket 0; values beyond the last bucket clamp into it. Exact sum, min
  /// and max are kept regardless of bucketing.
  void Record(double value);

  /// Folds another histogram into this one.
  void MergeFrom(const LatencyHistogram& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0; }

  /// The q-quantile (q in [0, 1], clamped): the upper edge of the bucket
  /// holding the ceil(q * count)-th smallest sample, capped at the exact
  /// recorded maximum. 0 when empty.
  double Quantile(double q) const;

  /// Bucket `value` falls into — bucket i covers (UpperEdge(i-1),
  /// UpperEdge(i)]. Exposed so tests can assert quantile semantics exactly.
  static int BucketIndex(double value);
  static double BucketUpperEdge(int bucket);

  /// Raw count of one bucket (tests, serializers).
  int64_t bucket_count(int bucket) const { return counts_[bucket]; }

 private:
  std::array<int64_t, kNumBuckets> counts_{};
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace ddc

#endif  // DDC_TELEMETRY_HISTOGRAM_H_
