#ifndef DDC_TELEMETRY_METRICS_H_
#define DDC_TELEMETRY_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/histogram.h"

namespace ddc {

/// \file
/// Process-wide metrics registry: named monotonic counters, set/max gauges,
/// and latency histograms, cheap enough to leave on in hot paths. A counter
/// increment is a single relaxed fetch_add on one of a small set of
/// cache-line-padded cells (the cell is picked per thread, round-robin, so
/// concurrent incrementers do not ping-pong one line); aggregation sums the
/// cells on read. Registration happens once per call site through a
/// function-local static reference, so the steady-state cost of
/// `DDC_COUNTER_INC` is the static-init guard check plus the atomic add.
///
/// Counters only ever go up (deltas between two snapshots are meaningful);
/// gauges are point-in-time values written with last-wins `Set` or
/// monotone `UpdateMax` (high-water marks). Values are int64 — the
/// reporters convert units, not the hot paths.
///
/// Histograms record microsecond durations into per-thread-striped cells of
/// log-spaced buckets (the LatencyHistogram bucket math, 2^(1/8) spacing);
/// merging on read yields exact count/sum/min/max plus quantiles with ≤ one
/// bucket (≈ 9%) of relative error. A record is a handful of relaxed atomic
/// ops — an order heavier than a counter bump, so histograms belong on
/// coarse operations (an fsync, a snapshot build, a batch apply), never on
/// per-point hot paths.

/// What a metric's value means; fixed at registration.
enum class MetricKind {
  kCounter = 0,    ///< Monotonic sum; report deltas between snapshots.
  kGauge = 1,      ///< Point-in-time value; Set (last wins) or UpdateMax.
  kHistogram = 2,  ///< Distribution of recorded durations (microseconds).
};

/// Merged read-side view of one histogram metric: exact count/sum/min/max
/// over every recorded sample plus the log-spaced bucket counts (indexed
/// exactly like LatencyHistogram — bucket i covers values up to
/// BucketUpperEdge(i) microseconds). Durations are stored in integer
/// nanoseconds so concurrent recording can use plain fetch_add; the
/// accessors convert back to microseconds, the registry's reporting unit.
struct HistogramData {
  int64_t count = 0;
  int64_t sum_ns = 0;
  int64_t min_ns = 0;  ///< Meaningful only when count > 0.
  int64_t max_ns = 0;  ///< Meaningful only when count > 0.
  /// Per-bucket sample counts, trimmed after the last non-empty bucket
  /// (empty vector when count == 0).
  std::vector<int64_t> buckets;

  double sum_us() const { return static_cast<double>(sum_ns) / 1000.0; }
  double min_us() const {
    return count > 0 ? static_cast<double>(min_ns) / 1000.0 : 0;
  }
  double max_us() const {
    return count > 0 ? static_cast<double>(max_ns) / 1000.0 : 0;
  }
  double mean_us() const { return count > 0 ? sum_us() / count : 0; }

  /// The q-quantile in microseconds, same semantics as
  /// LatencyHistogram::Quantile: the upper edge of the bucket holding the
  /// ceil(q * count)-th smallest sample, capped at the recorded maximum.
  double Quantile(double q) const;
};

/// Short name ("counter" / "gauge" / "histogram") for reports.
const char* MetricKindName(MetricKind kind);

/// One named metric. Never constructed directly — obtained from
/// MetricsRegistry::GetOrCreate, which guarantees a stable address for the
/// process lifetime (the macros below cache the reference in a static).
class Metric {
 public:
  /// Sharded counter cells; threads map onto them round-robin, so up to
  /// kCells incrementers proceed without sharing a cache line.
  static constexpr int kCells = 16;

  /// Histogram stripes: each is a full bucket array (~2.7 KB), so fewer of
  /// them than counter cells — histogram records sit on coarse operations
  /// where modest sharing is invisible next to the work being measured.
  static constexpr int kHistCells = 8;

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  /// Counter: adds `delta` (relaxed) to this thread's cell.
  void Add(int64_t delta) {
    cells_[ThreadCellIndex()].value.fetch_add(delta,
                                              std::memory_order_relaxed);
  }

  /// Gauge: last write wins.
  void Set(int64_t value) { gauge_.store(value, std::memory_order_relaxed); }

  /// Gauge: raises the value to `value` if it is higher (high-water mark).
  void UpdateMax(int64_t value) {
    int64_t cur = gauge_.load(std::memory_order_relaxed);
    while (cur < value && !gauge_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  /// Histogram: records one duration (microseconds; sub-microsecond values
  /// keep full bucket resolution down to 1 ns) into this thread's stripe.
  /// A handful of relaxed atomic ops, lock-free and allocation-free.
  void Record(double us);

  /// Aggregated value: sum of the cells for counters, the stored value for
  /// gauges, the total sample count for histograms. Concurrent writers make
  /// this a momentary approximation; after the writers are joined it is
  /// exact.
  int64_t Value() const;

  /// Merged view of a histogram metric's stripes (empty when nothing was
  /// recorded). Same momentary-approximation caveat as Value().
  HistogramData HistogramValue() const;

  const std::string& name() const { return name_; }
  MetricKind kind() const { return kind_; }

 private:
  friend class MetricsRegistry;

  Metric(std::string name, MetricKind kind);

  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };

  /// One histogram stripe: bucket counts plus exact count/sum/min/max.
  struct alignas(64) HistCell {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum_ns{0};
    std::atomic<int64_t> min_ns{INT64_MAX};
    std::atomic<int64_t> max_ns{INT64_MIN};
    std::atomic<int64_t> buckets[LatencyHistogram::kNumBuckets]{};
  };

  /// This thread's counter cell, assigned once per thread round-robin.
  static int ThreadCellIndex() {
    static thread_local const int index = NextCellIndex();
    return index;
  }
  static int NextCellIndex();

  std::string name_;
  MetricKind kind_;
  Cell cells_[kCells];
  std::atomic<int64_t> gauge_{0};
  /// kHistCells stripes, allocated only for kHistogram metrics (a counter
  /// stays ~1 KB; a histogram costs ~22 KB once, at registration).
  std::unique_ptr<HistCell[]> hist_cells_;
};

/// One metric's name, kind, and aggregated value at snapshot time. For
/// histograms `value` is the sample count and `hist` holds the merged
/// distribution; for counters and gauges `hist` stays empty.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;
  HistogramData hist;
};

/// The process-wide registry. Thread-safe; metrics are never removed, so
/// references returned by GetOrCreate stay valid forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// The metric registered under `name`, created on first use. Aborts when
  /// `name` is already registered with a different kind — a name means one
  /// thing process-wide.
  Metric& GetOrCreate(std::string_view name, MetricKind kind);

  /// Every registered metric, sorted by name — the order is stable across
  /// snapshots (the registry only grows, and names sort the same way every
  /// time).
  std::vector<MetricSample> Snapshot() const;

  /// Aggregated value of `name`, or `fallback` when nothing is registered
  /// under it (reporters and tests; hot paths use the macros).
  int64_t ValueOf(std::string_view name, int64_t fallback = 0) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  /// Name -> metric; unique_ptr keeps addresses stable, std::less<> lets
  /// string_view probe without allocating.
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> metrics_;
};

/// Per-run view between two snapshots: counters report `after - before`
/// (metrics absent from `before` count from zero), gauges report their
/// `after` value unchanged (a gauge is point-in-time, not a rate).
/// Histograms subtract like counters — count/sum/buckets become the
/// interval's own distribution, so quantiles of a delta describe just that
/// window — except min/max, which stay cumulative (`after`'s values): the
/// stripes keep no per-interval extrema.
std::vector<MetricSample> DeltaSince(const std::vector<MetricSample>& before,
                                     const std::vector<MetricSample>& after);

/// Prints "name<TAB>value" lines to stdout for metrics whose name starts
/// with `prefix` (empty prefix prints everything).
void PrintMetrics(std::string_view prefix);

/// Registers (first use) and bumps the named counter. `name` must be a
/// string literal or otherwise immortal; the resolved metric reference is
/// cached in a function-local static, so the hot cost is one relaxed add.
#define DDC_COUNTER_ADD(name, delta)                                        \
  do {                                                                      \
    static ::ddc::Metric& ddc_metric_static =                               \
        ::ddc::MetricsRegistry::Instance().GetOrCreate(                     \
            (name), ::ddc::MetricKind::kCounter);                           \
    ddc_metric_static.Add(delta);                                           \
  } while (0)

#define DDC_COUNTER_INC(name) DDC_COUNTER_ADD(name, 1)

/// Gauge write-through macros, same caching scheme as DDC_COUNTER_ADD.
#define DDC_GAUGE_SET(name, value)                                          \
  do {                                                                      \
    static ::ddc::Metric& ddc_metric_static =                               \
        ::ddc::MetricsRegistry::Instance().GetOrCreate(                     \
            (name), ::ddc::MetricKind::kGauge);                             \
    ddc_metric_static.Set(value);                                           \
  } while (0)

#define DDC_GAUGE_MAX(name, value)                                          \
  do {                                                                      \
    static ::ddc::Metric& ddc_metric_static =                               \
        ::ddc::MetricsRegistry::Instance().GetOrCreate(                     \
            (name), ::ddc::MetricKind::kGauge);                             \
    ddc_metric_static.UpdateMax(value);                                     \
  } while (0)

/// Records one duration (microseconds) into the named histogram, same
/// caching scheme as DDC_COUNTER_ADD. Meant for coarse operations — a
/// record is several relaxed atomic ops, not one.
#define DDC_HISTOGRAM_RECORD(name, us)                                      \
  do {                                                                      \
    static ::ddc::Metric& ddc_metric_static =                               \
        ::ddc::MetricsRegistry::Instance().GetOrCreate(                     \
            (name), ::ddc::MetricKind::kHistogram);                         \
    ddc_metric_static.Record(us);                                           \
  } while (0)

/// RAII helper for DDC_HISTOGRAM_SCOPED: records the scope's elapsed
/// microseconds into `metric` on destruction.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Metric& metric)
      : metric_(metric), start_(std::chrono::steady_clock::now()) {}
  ~ScopedHistogramTimer() {
    metric_.Record(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Metric& metric_;
  std::chrono::steady_clock::time_point start_;
};

#define DDC_METRICS_CONCAT_INNER(a, b) a##b
#define DDC_METRICS_CONCAT(a, b) DDC_METRICS_CONCAT_INNER(a, b)

/// Times the rest of the enclosing block into the named histogram (two
/// steady-clock reads plus one Record).
#define DDC_HISTOGRAM_SCOPED(name)                                          \
  static ::ddc::Metric& DDC_METRICS_CONCAT(ddc_hist_metric_, __LINE__) =    \
      ::ddc::MetricsRegistry::Instance().GetOrCreate(                       \
          (name), ::ddc::MetricKind::kHistogram);                           \
  ::ddc::ScopedHistogramTimer DDC_METRICS_CONCAT(ddc_hist_timer_,           \
                                                 __LINE__)(                 \
      DDC_METRICS_CONCAT(ddc_hist_metric_, __LINE__))

}  // namespace ddc

#endif  // DDC_TELEMETRY_METRICS_H_
