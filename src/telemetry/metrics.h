#ifndef DDC_TELEMETRY_METRICS_H_
#define DDC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ddc {

/// \file
/// Process-wide metrics registry: named monotonic counters and set/max
/// gauges, cheap enough to leave on in hot paths. A counter increment is a
/// single relaxed fetch_add on one of a small set of cache-line-padded
/// cells (the cell is picked per thread, round-robin, so concurrent
/// incrementers do not ping-pong one line); aggregation sums the cells on
/// read. Registration happens once per call site through a function-local
/// static reference, so the steady-state cost of `DDC_COUNTER_INC` is the
/// static-init guard check plus the atomic add.
///
/// Counters only ever go up (deltas between two snapshots are meaningful);
/// gauges are point-in-time values written with last-wins `Set` or
/// monotone `UpdateMax` (high-water marks). Values are int64 — the
/// reporters convert units, not the hot paths.

/// What a metric's value means; fixed at registration.
enum class MetricKind {
  kCounter = 0,  ///< Monotonic sum; report deltas between snapshots.
  kGauge = 1,    ///< Point-in-time value; Set (last wins) or UpdateMax.
};

/// Short name ("counter" / "gauge") for reports.
const char* MetricKindName(MetricKind kind);

/// One named metric. Never constructed directly — obtained from
/// MetricsRegistry::GetOrCreate, which guarantees a stable address for the
/// process lifetime (the macros below cache the reference in a static).
class Metric {
 public:
  /// Sharded counter cells; threads map onto them round-robin, so up to
  /// kCells incrementers proceed without sharing a cache line.
  static constexpr int kCells = 16;

  Metric(const Metric&) = delete;
  Metric& operator=(const Metric&) = delete;

  /// Counter: adds `delta` (relaxed) to this thread's cell.
  void Add(int64_t delta) {
    cells_[ThreadCellIndex()].value.fetch_add(delta,
                                              std::memory_order_relaxed);
  }

  /// Gauge: last write wins.
  void Set(int64_t value) { gauge_.store(value, std::memory_order_relaxed); }

  /// Gauge: raises the value to `value` if it is higher (high-water mark).
  void UpdateMax(int64_t value) {
    int64_t cur = gauge_.load(std::memory_order_relaxed);
    while (cur < value && !gauge_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  /// Aggregated value: sum of the cells for counters, the stored value for
  /// gauges. Concurrent writers make this a momentary approximation; after
  /// the writers are joined it is exact.
  int64_t Value() const;

  const std::string& name() const { return name_; }
  MetricKind kind() const { return kind_; }

 private:
  friend class MetricsRegistry;

  Metric(std::string name, MetricKind kind)
      : name_(std::move(name)), kind_(kind) {}

  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };

  /// This thread's counter cell, assigned once per thread round-robin.
  static int ThreadCellIndex() {
    static thread_local const int index = NextCellIndex();
    return index;
  }
  static int NextCellIndex();

  std::string name_;
  MetricKind kind_;
  Cell cells_[kCells];
  std::atomic<int64_t> gauge_{0};
};

/// One metric's name, kind, and aggregated value at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;
};

/// The process-wide registry. Thread-safe; metrics are never removed, so
/// references returned by GetOrCreate stay valid forever.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// The metric registered under `name`, created on first use. Aborts when
  /// `name` is already registered with a different kind — a name means one
  /// thing process-wide.
  Metric& GetOrCreate(std::string_view name, MetricKind kind);

  /// Every registered metric, sorted by name — the order is stable across
  /// snapshots (the registry only grows, and names sort the same way every
  /// time).
  std::vector<MetricSample> Snapshot() const;

  /// Aggregated value of `name`, or `fallback` when nothing is registered
  /// under it (reporters and tests; hot paths use the macros).
  int64_t ValueOf(std::string_view name, int64_t fallback = 0) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  /// Name -> metric; unique_ptr keeps addresses stable, std::less<> lets
  /// string_view probe without allocating.
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> metrics_;
};

/// Per-run view between two snapshots: counters report `after - before`
/// (metrics absent from `before` count from zero), gauges report their
/// `after` value unchanged (a gauge is point-in-time, not a rate).
std::vector<MetricSample> DeltaSince(const std::vector<MetricSample>& before,
                                     const std::vector<MetricSample>& after);

/// Prints "name<TAB>value" lines to stdout for metrics whose name starts
/// with `prefix` (empty prefix prints everything).
void PrintMetrics(std::string_view prefix);

/// Registers (first use) and bumps the named counter. `name` must be a
/// string literal or otherwise immortal; the resolved metric reference is
/// cached in a function-local static, so the hot cost is one relaxed add.
#define DDC_COUNTER_ADD(name, delta)                                        \
  do {                                                                      \
    static ::ddc::Metric& ddc_metric_static =                               \
        ::ddc::MetricsRegistry::Instance().GetOrCreate(                     \
            (name), ::ddc::MetricKind::kCounter);                           \
    ddc_metric_static.Add(delta);                                           \
  } while (0)

#define DDC_COUNTER_INC(name) DDC_COUNTER_ADD(name, 1)

/// Gauge write-through macros, same caching scheme as DDC_COUNTER_ADD.
#define DDC_GAUGE_SET(name, value)                                          \
  do {                                                                      \
    static ::ddc::Metric& ddc_metric_static =                               \
        ::ddc::MetricsRegistry::Instance().GetOrCreate(                     \
            (name), ::ddc::MetricKind::kGauge);                             \
    ddc_metric_static.Set(value);                                           \
  } while (0)

#define DDC_GAUGE_MAX(name, value)                                          \
  do {                                                                      \
    static ::ddc::Metric& ddc_metric_static =                               \
        ::ddc::MetricsRegistry::Instance().GetOrCreate(                     \
            (name), ::ddc::MetricKind::kGauge);                             \
    ddc_metric_static.UpdateMax(value);                                     \
  } while (0)

}  // namespace ddc

#endif  // DDC_TELEMETRY_METRICS_H_
