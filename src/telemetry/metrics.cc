#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ddc {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count))));
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return std::min(
          LatencyHistogram::BucketUpperEdge(static_cast<int>(i)), max_us());
    }
  }
  return max_us();  // Unreachable: every sample is in some bucket.
}

Metric::Metric(std::string name, MetricKind kind)
    : name_(std::move(name)), kind_(kind) {
  if (kind_ == MetricKind::kHistogram) {
    hist_cells_ = std::make_unique<HistCell[]>(kHistCells);
  }
}

int Metric::NextCellIndex() {
  static std::atomic<uint32_t> next{0};
  return static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                          static_cast<uint32_t>(kCells));
}

void Metric::Record(double us) {
  DDC_DCHECK(kind_ == MetricKind::kHistogram);
  HistCell& cell = hist_cells_[ThreadCellIndex() % kHistCells];
  const int bucket = LatencyHistogram::BucketIndex(us);
  const int64_t ns = std::llround(us * 1000.0);
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  int64_t cur = cell.min_ns.load(std::memory_order_relaxed);
  while (ns < cur && !cell.min_ns.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
  cur = cell.max_ns.load(std::memory_order_relaxed);
  while (ns > cur && !cell.max_ns.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
}

HistogramData Metric::HistogramValue() const {
  DDC_CHECK(kind_ == MetricKind::kHistogram);
  HistogramData out;
  int last_nonzero = -1;
  std::vector<int64_t> buckets(LatencyHistogram::kNumBuckets, 0);
  for (int c = 0; c < kHistCells; ++c) {
    const HistCell& cell = hist_cells_[c];
    const int64_t n = cell.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    const int64_t lo = cell.min_ns.load(std::memory_order_relaxed);
    const int64_t hi = cell.max_ns.load(std::memory_order_relaxed);
    if (out.count == 0 || lo < out.min_ns) out.min_ns = lo;
    if (out.count == 0 || hi > out.max_ns) out.max_ns = hi;
    out.count += n;
    out.sum_ns += cell.sum_ns.load(std::memory_order_relaxed);
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      const int64_t b = cell.buckets[i].load(std::memory_order_relaxed);
      if (b == 0) continue;
      buckets[i] += b;
      if (i > last_nonzero) last_nonzero = i;
    }
  }
  buckets.resize(last_nonzero + 1);
  out.buckets = std::move(buckets);
  return out;
}

int64_t Metric::Value() const {
  if (kind_ == MetricKind::kGauge) {
    return gauge_.load(std::memory_order_relaxed);
  }
  if (kind_ == MetricKind::kHistogram) {
    int64_t n = 0;
    for (int c = 0; c < kHistCells; ++c) {
      n += hist_cells_[c].count.load(std::memory_order_relaxed);
    }
    return n;
  }
  int64_t sum = 0;
  for (const Cell& cell : cells_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never freed.
  return *registry;
}

Metric& MetricsRegistry::GetOrCreate(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    std::string key(name);
    it = metrics_
             .emplace(key, std::unique_ptr<Metric>(new Metric(key, kind)))
             .first;
  }
  DDC_CHECK(it->second->kind() == kind);  // One meaning per name.
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = metric->kind();
    if (metric->kind() == MetricKind::kHistogram) {
      sample.hist = metric->HistogramValue();
      sample.value = sample.hist.count;
    } else {
      sample.value = metric->Value();
    }
    out.push_back(std::move(sample));
  }
  return out;  // std::map iteration order == sorted by name.
}

int64_t MetricsRegistry::ValueOf(std::string_view name,
                                 int64_t fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? fallback : it->second->Value();
}

std::vector<MetricSample> DeltaSince(const std::vector<MetricSample>& before,
                                     const std::vector<MetricSample>& after) {
  std::map<std::string_view, const MetricSample*> base;
  for (const MetricSample& s : before) {
    if (s.kind != MetricKind::kGauge) base.emplace(s.name, &s);
  }
  std::vector<MetricSample> out;
  out.reserve(after.size());
  for (const MetricSample& s : after) {
    MetricSample d = s;
    const auto it = base.find(s.name);
    if (it != base.end()) {
      if (s.kind == MetricKind::kCounter) {
        d.value -= it->second->value;
      } else if (s.kind == MetricKind::kHistogram) {
        const HistogramData& b = it->second->hist;
        d.hist.count -= b.count;
        d.hist.sum_ns -= b.sum_ns;
        d.value = d.hist.count;
        for (size_t i = 0; i < b.buckets.size() && i < d.hist.buckets.size();
             ++i) {
          d.hist.buckets[i] -= b.buckets[i];
        }
        // min/max stay cumulative (after's values); the stripes keep no
        // per-interval extrema. An empty interval reports all zeros.
        if (d.hist.count == 0) d.hist = HistogramData{};
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

void PrintMetrics(std::string_view prefix) {
  for (const MetricSample& s : MetricsRegistry::Instance().Snapshot()) {
    if (s.name.size() < prefix.size() ||
        std::string_view(s.name).substr(0, prefix.size()) != prefix) {
      continue;
    }
    if (s.kind == MetricKind::kHistogram) {
      std::printf(
          "  %-44s %12lld  p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus\n",
          s.name.c_str(), static_cast<long long>(s.value),
          s.hist.Quantile(0.50), s.hist.Quantile(0.95), s.hist.Quantile(0.99),
          s.hist.max_us());
    } else {
      std::printf("  %-44s %12lld\n", s.name.c_str(),
                  static_cast<long long>(s.value));
    }
  }
}

}  // namespace ddc
