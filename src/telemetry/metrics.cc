#include "telemetry/metrics.h"

#include <cstdio>

#include "common/check.h"

namespace ddc {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
  }
  return "unknown";
}

int Metric::NextCellIndex() {
  static std::atomic<uint32_t> next{0};
  return static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                          static_cast<uint32_t>(kCells));
}

int64_t Metric::Value() const {
  if (kind_ == MetricKind::kGauge) {
    return gauge_.load(std::memory_order_relaxed);
  }
  int64_t sum = 0;
  for (const Cell& cell : cells_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never freed.
  return *registry;
}

Metric& MetricsRegistry::GetOrCreate(std::string_view name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    std::string key(name);
    it = metrics_
             .emplace(key, std::unique_ptr<Metric>(new Metric(key, kind)))
             .first;
  }
  DDC_CHECK(it->second->kind() == kind);  // One meaning per name.
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    out.push_back(MetricSample{name, metric->kind(), metric->Value()});
  }
  return out;  // std::map iteration order == sorted by name.
}

int64_t MetricsRegistry::ValueOf(std::string_view name,
                                 int64_t fallback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? fallback : it->second->Value();
}

std::vector<MetricSample> DeltaSince(const std::vector<MetricSample>& before,
                                     const std::vector<MetricSample>& after) {
  std::map<std::string_view, int64_t> base;
  for (const MetricSample& s : before) {
    if (s.kind == MetricKind::kCounter) base.emplace(s.name, s.value);
  }
  std::vector<MetricSample> out;
  out.reserve(after.size());
  for (const MetricSample& s : after) {
    MetricSample d = s;
    if (s.kind == MetricKind::kCounter) {
      const auto it = base.find(s.name);
      if (it != base.end()) d.value -= it->second;
    }
    out.push_back(std::move(d));
  }
  return out;
}

void PrintMetrics(std::string_view prefix) {
  for (const MetricSample& s : MetricsRegistry::Instance().Snapshot()) {
    if (s.name.size() < prefix.size() ||
        std::string_view(s.name).substr(0, prefix.size()) != prefix) {
      continue;
    }
    std::printf("  %-44s %12lld\n", s.name.c_str(),
                static_cast<long long>(s.value));
  }
}

}  // namespace ddc
