#include "telemetry/sampler.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "telemetry/report.h"
#include "telemetry/resource.h"

namespace ddc {

StatsSampler::StatsSampler(const Options& options) : options_(options) {
  DDC_CHECK(options_.interval_ms > 0);
  DDC_CHECK(options_.ring_capacity > 0);
}

StatsSampler::~StatsSampler() { Stop(); }

void StatsSampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  // Baseline snapshot so the first tick reports its own interval, not the
  // whole pre-Start() history.
  prev_ = MetricsRegistry::Instance().Snapshot();
  thread_ = std::thread([this] { Run(); });
}

void StatsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stop_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

int64_t StatsSampler::UptimeMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) return 0;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void StatsSampler::SampleNow() {
  std::unique_lock<std::mutex> lock(mu_);
  CaptureLocked(lock);
}

void StatsSampler::CaptureLocked(std::unique_lock<std::mutex>& lock) {
  // Process vitals are published as gauges *before* the snapshot so they
  // ride along in every sample (and in /metrics) without the reader knowing
  // about telemetry/resource.h.
  const int64_t uptime_ms =
      started_ ? std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start_time_)
                     .count()
               : 0;
  DDC_GAUGE_SET("process.rss_bytes", PeakRssBytes());
  DDC_GAUGE_SET("process.uptime_ms", uptime_ms);

  std::vector<MetricSample> now = MetricsRegistry::Instance().Snapshot();
  StatsSample sample;
  sample.uptime_ms = uptime_ms;
  sample.delta = DeltaSince(prev_, now);
  prev_ = std::move(now);
  if (static_cast<int>(ring_.size()) >= options_.ring_capacity) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(sample));
  (void)lock;
}

void StatsSampler::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [this] { return stop_; });
    if (stop_) return;
    CaptureLocked(lock);
  }
}

std::string StatsSampler::RingJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter j;
  j.BeginObject();
  j.Key("interval_ms").Int(options_.interval_ms);
  j.Key("ring_capacity").Int(options_.ring_capacity);
  j.Key("dropped").Int(dropped_);
  j.Key("samples").BeginArray();
  for (const StatsSample& s : ring_) {
    j.BeginObject();
    j.Key("uptime_ms").Int(s.uptime_ms);
    j.Key("metrics");
    WriteMetrics(j, s.delta);
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();
  return j.str();
}

int StatsSampler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(ring_.size());
}

int64_t StatsSampler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace ddc
