#ifndef DDC_TELEMETRY_SHARD_STATS_H_
#define DDC_TELEMETRY_SHARD_STATS_H_

#include <cstdint>
#include <vector>

namespace ddc {

/// Per-shard occupancy and load snapshot of the sharded engine, for the
/// driver's telemetry report: exposes imbalance (hotspot scenarios pile
/// owned points and ops onto one slab) and replication overhead (ghost
/// fraction grows as slabs narrow toward the halo width).
struct ShardOccupancy {
  int shard = 0;
  int worker = 0;             // Pinned thread-pool worker.
  int64_t owned = 0;          // Alive points this shard owns.
  int64_t ghosts = 0;         // Alive halo replicas from neighbor slabs.
  int64_t core = 0;           // Locally core points (owned + ghost).
  int64_t boundary_core = 0;  // Owned core points in the stitch registry.
  int64_t ops_applied = 0;    // Updates applied by the worker.
  int64_t batches = 0;        // Batches the worker consumed.
  double busy_seconds = 0;    // Wall time the worker spent applying them.
};

/// Prints one row per shard plus a totals line to stdout.
void PrintShardOccupancy(const std::vector<ShardOccupancy>& shards);

}  // namespace ddc

#endif  // DDC_TELEMETRY_SHARD_STATS_H_
