#include "telemetry/shard_stats.h"

#include <cstdio>

namespace ddc {

void PrintShardOccupancy(const std::vector<ShardOccupancy>& shards) {
  std::printf(
      "  shard worker     owned    ghosts      core  boundary       ops"
      "   batches   busy_s\n");
  ShardOccupancy total;
  for (const ShardOccupancy& s : shards) {
    std::printf("  %5d %6d %9lld %9lld %9lld %9lld %9lld %9lld %8.2f\n",
                s.shard, s.worker, static_cast<long long>(s.owned),
                static_cast<long long>(s.ghosts),
                static_cast<long long>(s.core),
                static_cast<long long>(s.boundary_core),
                static_cast<long long>(s.ops_applied),
                static_cast<long long>(s.batches), s.busy_seconds);
    total.owned += s.owned;
    total.ghosts += s.ghosts;
    total.core += s.core;
    total.boundary_core += s.boundary_core;
    total.ops_applied += s.ops_applied;
    total.batches += s.batches;
    total.busy_seconds += s.busy_seconds;
  }
  std::printf("  total        %9lld %9lld %9lld %9lld %9lld %9lld %8.2f\n",
              static_cast<long long>(total.owned),
              static_cast<long long>(total.ghosts),
              static_cast<long long>(total.core),
              static_cast<long long>(total.boundary_core),
              static_cast<long long>(total.ops_applied),
              static_cast<long long>(total.batches), total.busy_seconds);
}

}  // namespace ddc
