#include "telemetry/watchdog.h"

#include "telemetry/metrics.h"

namespace ddc {

Watchdog::Watchdog(std::vector<const WorkerHealth*> workers,
                   std::vector<std::string> labels, const Options& options,
                   std::function<void(const Stall&)> on_stall)
    : workers_(std::move(workers)),
      labels_(std::move(labels)),
      options_(options),
      on_stall_(std::move(on_stall)),
      reported_beat_(workers_.size(), 0) {
  monitor_ = std::thread([this] { Run(); });
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  monitor_.join();
  // A dead watchdog watches nothing: don't leave a stale "stalled" reading
  // behind for the health report.
  DDC_GAUGE_SET("watchdog.stalled_workers", 0);
}

void Watchdog::Run() {
  const uint64_t deadline_ns =
      static_cast<uint64_t>(options_.deadline_ms) * 1000000ull;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                      [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    const uint64_t now = WorkerHealth::NowNs();
    int64_t stalled_now = 0;
    for (size_t i = 0; i < workers_.size(); ++i) {
      const WorkerHealth& health = *workers_[i];
      const int64_t depth = health.queue_depth.load(std::memory_order_relaxed);
      const uint64_t beat =
          health.last_beat_ns.load(std::memory_order_relaxed);
      if (depth <= 0) {
        // Idle is healthy; a later backlog starts a fresh episode.
        reported_beat_[i] = 0;
        continue;
      }
      const uint64_t quiet_ns = now > beat ? now - beat : 0;
      if (quiet_ns < deadline_ns) continue;
      ++stalled_now;
      if (reported_beat_[i] == beat) continue;  // Episode already reported.
      reported_beat_[i] = beat;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      DDC_COUNTER_INC("watchdog.stalls");
      if (on_stall_) {
        Stall stall;
        stall.worker = static_cast<int>(i);
        stall.label = i < labels_.size() && !labels_[i].empty()
                          ? labels_[i]
                          : "worker=" + std::to_string(i);
        stall.queue_depth = depth;
        stall.quiet_seconds = static_cast<double>(quiet_ns) / 1e9;
        stall.tasks_completed =
            health.tasks_completed.load(std::memory_order_relaxed);
        on_stall_(stall);
      }
    }
    // Live count of workers currently quiet past the deadline with backlog
    // — the /healthz "stalled right now" signal, distinct from the
    // cumulative watchdog.stalls episode counter.
    DDC_GAUGE_SET("watchdog.stalled_workers", stalled_now);
    lock.lock();
  }
}

}  // namespace ddc
