#include "telemetry/stats_server.h"

#include <cinttypes>
#include <cstdio>

#include "common/json.h"
#include "telemetry/report.h"
#include "telemetry/resource.h"

namespace ddc {

namespace {

/// "wal.fsync" -> "ddc_wal_fsync".
std::string PrometheusName(const std::string& name) {
  std::string out = "ddc_";
  for (const char c : name) {
    const bool allowed = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         (c >= '0' && c <= '9');
    out.push_back(allowed ? c : '_');
  }
  return out;
}

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

const char* HealthStateName(HealthReport::State state) {
  switch (state) {
    case HealthReport::State::kOk:
      return "ok";
    case HealthReport::State::kDegraded:
      return "degraded";
    case HealthReport::State::kStalled:
      return "stalled";
  }
  return "unknown";
}

HealthReport EvaluateHealth() {
  const MetricsRegistry& reg = MetricsRegistry::Instance();
  HealthReport report;
  char cause[160];

  // Stalled beats degraded: a worker stuck *right now* is the actionable
  // emergency regardless of what else is latched.
  const int64_t stalled_now = reg.ValueOf("watchdog.stalled_workers");
  if (stalled_now > 0) {
    report.state = HealthReport::State::kStalled;
    std::snprintf(cause, sizeof(cause),
                  "%" PRId64 " worker(s) quiet past deadline with backlog",
                  stalled_now);
    report.cause = cause;
    return report;
  }

  const int64_t wal_errors = reg.ValueOf("wal.errors");
  const int64_t io_failures = reg.ValueOf("io.write_failures");
  const int64_t save_failures = reg.ValueOf("persist.snapshot_save_failures");
  const int64_t stall_episodes = reg.ValueOf("watchdog.stalls");
  const int64_t epoch_lag = reg.ValueOf("runner.reader_epoch_lag");
  if (wal_errors > 0) {
    std::snprintf(cause, sizeof(cause), "wal latched %" PRId64 " error(s)",
                  wal_errors);
  } else if (io_failures > 0) {
    std::snprintf(cause, sizeof(cause),
                  "%" PRId64 " file write failure(s) latched", io_failures);
  } else if (save_failures > 0) {
    std::snprintf(cause, sizeof(cause),
                  "%" PRId64 " snapshot save(s) failed", save_failures);
  } else if (stall_episodes > 0) {
    std::snprintf(cause, sizeof(cause),
                  "%" PRId64 " past watchdog stall episode(s)",
                  stall_episodes);
  } else if (epoch_lag > kMaxHealthyEpochLag) {
    std::snprintf(cause, sizeof(cause),
                  "reader snapshot %" PRId64 " epochs behind (max healthy %"
                  PRId64 ")",
                  epoch_lag, kMaxHealthyEpochLag);
  } else {
    return report;  // ok
  }
  report.state = HealthReport::State::kDegraded;
  report.cause = cause;
  return report;
}

std::string PrometheusText(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(4096);
  for (const MetricSample& s : samples) {
    const std::string name = PrometheusName(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(s.value) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(s.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        const std::string hist_name = name + "_us";
        out += "# TYPE " + hist_name + " histogram\n";
        int64_t cumulative = 0;
        for (size_t i = 0; i < s.hist.buckets.size(); ++i) {
          if (s.hist.buckets[i] == 0) continue;  // le stays cumulative.
          cumulative += s.hist.buckets[i];
          out += hist_name + "_bucket{le=\"";
          AppendDouble(out,
                       LatencyHistogram::BucketUpperEdge(static_cast<int>(i)));
          out += "\"} " + std::to_string(cumulative) + "\n";
        }
        out += hist_name + "_bucket{le=\"+Inf\"} " +
               std::to_string(s.hist.count) + "\n";
        out += hist_name + "_sum ";
        AppendDouble(out, s.hist.sum_us());
        out += "\n";
        out += hist_name + "_count " + std::to_string(s.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string HealthJson(const HealthReport& report) {
  const MetricsRegistry& reg = MetricsRegistry::Instance();
  JsonWriter j;
  j.BeginObject();
  j.Key("state").String(HealthStateName(report.state));
  j.Key("cause").String(report.cause);
  j.Key("inputs").BeginObject();
  j.Key("watchdog.stalled_workers")
      .Int(reg.ValueOf("watchdog.stalled_workers"));
  j.Key("watchdog.stalls").Int(reg.ValueOf("watchdog.stalls"));
  j.Key("wal.errors").Int(reg.ValueOf("wal.errors"));
  j.Key("io.write_failures").Int(reg.ValueOf("io.write_failures"));
  j.Key("persist.snapshot_save_failures")
      .Int(reg.ValueOf("persist.snapshot_save_failures"));
  j.Key("runner.reader_epoch_lag")
      .Int(reg.ValueOf("runner.reader_epoch_lag"));
  j.EndObject();
  j.EndObject();
  return j.str();
}

StatsServer::StatsServer(const Options& options, const StatsSampler* sampler)
    : options_(options), sampler_(sampler) {}

StatsServer::~StatsServer() { Stop(); }

bool StatsServer::Start() {
  return listener_.Start(options_.port, [this](std::string_view request) {
    return HandleRequest(request);
  });
}

void StatsServer::Stop() { listener_.Stop(); }

std::string StatsServer::VarzJson() const {
  JsonWriter j;
  j.BeginObject();
  j.Key("build_info").String(options_.build_info);
  j.Key("process").BeginObject();
  j.Key("rss_bytes").Int(PeakRssBytes());
  j.Key("uptime_ms").Int(sampler_ != nullptr ? sampler_->UptimeMs() : 0);
  j.Key("stats_port").Int(listener_.port());
  j.Key("connections_handled").Int(listener_.connections_handled());
  j.EndObject();
  if (sampler_ != nullptr) {
    j.Key("sampler").BeginObject();
    j.Key("ring_size").Int(sampler_->size());
    j.Key("dropped").Int(sampler_->dropped());
    j.EndObject();
  }
  j.Key("metrics");
  WriteMetrics(j, MetricsRegistry::Instance().Snapshot());
  j.EndObject();
  return j.str();
}

std::string StatsServer::HandleRequest(std::string_view request) const {
  // Just enough HTTP: "GET <path> ..." on the first line; everything else
  // in the request is ignored.
  std::string_view path;
  if (request.substr(0, 4) == "GET ") {
    const std::string_view rest = request.substr(4);
    const size_t end = rest.find_first_of(" \r\n?");
    path = rest.substr(0, end);
  }

  int status = 200;
  const char* status_text = "OK";
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    // The exposition format's version suffix is part of the contract
    // Prometheus scrapers negotiate on.
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = PrometheusText(MetricsRegistry::Instance().Snapshot());
  } else if (path == "/varz") {
    content_type = "application/json";
    body = VarzJson();
  } else if (path == "/healthz") {
    content_type = "application/json";
    const HealthReport report = EvaluateHealth();
    if (report.state == HealthReport::State::kStalled) {
      status = 503;
      status_text = "Service Unavailable";
    }
    body = HealthJson(report);
    body.push_back('\n');
  } else {
    status = 404;
    status_text = "Not Found";
    body = "404: try /metrics, /varz or /healthz\n";
  }

  std::string response = "HTTP/1.1 " + std::to_string(status) + " " +
                         status_text + "\r\n";
  response += "Content-Type: " + std::string(content_type) + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace ddc
