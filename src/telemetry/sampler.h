#ifndef DDC_TELEMETRY_SAMPLER_H_
#define DDC_TELEMETRY_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace ddc {

/// \file
/// Background time-series sampler over the metrics registry: every interval
/// it snapshots the whole registry, computes DeltaSince the previous tick
/// (counter and histogram values become per-interval rates/distributions,
/// gauges pass through), and pushes the result into a bounded in-memory
/// ring. A run's trajectory over time, not just its endpoint — dumped as a
/// JSON time series at exit and scraped live through the stats server.

/// One captured tick: wall-clock offset from sampler start plus the
/// per-interval registry delta.
struct StatsSample {
  int64_t uptime_ms = 0;
  std::vector<MetricSample> delta;
};

/// Periodic registry sampler. Start() spawns the thread; the destructor (or
/// Stop()) joins it. Thread-safe readers: RingJson/SampleNow may be called
/// concurrently with the sampler tick.
class StatsSampler {
 public:
  struct Options {
    int interval_ms = 250;   ///< Tick period.
    int ring_capacity = 512; ///< Oldest samples are dropped beyond this.
  };

  explicit StatsSampler(const Options& options);
  ~StatsSampler();

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  /// Spawns the sampling thread (idempotent).
  void Start();

  /// Joins the sampling thread (idempotent; also called by the destructor).
  void Stop();

  /// Takes one sample immediately — used for the final tick at shutdown so
  /// the ring always covers the run's tail, and by tests.
  void SampleNow();

  /// Milliseconds since Start() (0 before Start()).
  int64_t UptimeMs() const;

  /// The ring as a JSON document:
  /// {"interval_ms":..,"dropped":..,"samples":[{"uptime_ms":..,
  ///  "metrics":{name:value,...}},...]} — histogram deltas flattened to
  /// dotted numeric keys exactly like the BENCH metrics object.
  std::string RingJson() const;

  /// Number of samples currently buffered.
  int size() const;

  /// Samples evicted because the ring was full.
  int64_t dropped() const;

 private:
  void Run();
  void CaptureLocked(std::unique_lock<std::mutex>& lock);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point start_time_;
  std::vector<MetricSample> prev_;  ///< Snapshot at the previous tick.
  std::deque<StatsSample> ring_;
  int64_t dropped_ = 0;
};

}  // namespace ddc

#endif  // DDC_TELEMETRY_SAMPLER_H_
