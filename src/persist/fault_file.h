#ifndef DDC_PERSIST_FAULT_FILE_H_
#define DDC_PERSIST_FAULT_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/io.h"

namespace ddc {

/// Programmable storage faults for the recovery torture tests: what the
/// bytes on disk look like after a kill -9 (an arbitrary prefix of the
/// write stream, possibly ending mid-record) or after latent media
/// corruption (a flipped bit). The injector wraps a WritableFileFactory so
/// its byte ledger spans segment rotations — the crash point is an offset
/// into the *whole* write stream, not one file.
struct FaultPlan {
  /// Accept exactly this many bytes across the injector's lifetime, then
  /// "crash": the write that crosses the boundary lands only its prefix (a
  /// torn write) and every later operation fails. -1 = never.
  int64_t crash_after_bytes = -1;

  /// Flip this bit (index into the cumulative write stream) as it passes
  /// through, corrupting the stored data *after* its CRC was computed.
  /// -1 = none.
  int64_t flip_bit = -1;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// A factory producing fault-wrapped files over `inner`'s files, all
  /// sharing this injector's ledger.
  WritableFileFactory WrapFactory(WritableFileFactory inner);

  /// True once the crash point was reached: the simulated process is dead,
  /// the bytes written so far are what recovery gets to see.
  bool crashed() const { return state_->crashed; }

  /// Bytes accepted onto "disk" so far (including any torn prefix).
  int64_t bytes_passed() const { return state_->bytes_passed; }

 private:
  struct State {
    FaultPlan plan;
    int64_t bytes_passed = 0;
    bool crashed = false;
    std::string error;
  };

  friend class FaultFile;
  std::shared_ptr<State> state_;
};

/// The WritableFile a FaultInjector hands out: forwards to `inner`,
/// enforcing the fault plan on the way through.
class FaultFile final : public WritableFile {
 public:
  FaultFile(std::unique_ptr<WritableFile> inner,
            std::shared_ptr<FaultInjector::State> state);

  bool Append(const void* data, size_t n) override;
  using WritableFile::Append;
  bool Flush() override;
  bool Sync() override;
  bool Close() override;
  bool ok() const override;
  const std::string& error() const override;
  int64_t bytes_written() const override { return inner_->bytes_written(); }

 private:
  std::unique_ptr<WritableFile> inner_;
  std::shared_ptr<FaultInjector::State> state_;
};

}  // namespace ddc

#endif  // DDC_PERSIST_FAULT_FILE_H_
