#ifndef DDC_PERSIST_RECOVERY_H_
#define DDC_PERSIST_RECOVERY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/clusterer.h"
#include "core/params.h"
#include "persist/snapshot_io.h"
#include "persist/wal.h"

namespace ddc {

/// \file
/// Crash recovery: reassembling the pre-crash clustering from a durability
/// directory (WAL segments + periodic snapshots + RUNMETA.json).
///
/// Two artifacts come back, serving different callers:
///   * a *fresh clusterer* with the full WAL replayed into it — the live
///     structures (grids, CC forests, IncDBSCAN graphs) are not
///     serializable, but every algorithm here is deterministic in its op
///     stream and assigns ids monotonically, so replay reproduces the
///     pre-crash clustering bit-identically and the writer can resume
///     appending where the log ends;
///   * the *newest valid snapshot*, loaded directly — the instant cold
///     start for the query side, valid as of its recorded WAL seq.
/// A torn record at the tail of the last segment is truncated (those ops
/// were never acknowledged); corruption anywhere earlier is a hard error —
/// recovery never skips over acknowledged data or accepts a bad CRC.

/// Provenance of a durability directory, stored as RUNMETA.json next to the
/// WAL segments so `--recover` is self-contained: it tells recovery which
/// method and parameters produced the log it is about to replay.
struct RunMeta {
  std::string method;    // Full method spec.
  std::string scenario;  // Scenario spec the run executed (provenance).
  uint64_t seed = 0;     // Workload seed (lets --recover-verify rebuild it).
  DbscanParams params;   // Effective params (bit-exact round trip).
};

/// Writes `dir`/RUNMETA.json atomically. False (with *error) on failure.
bool WriteRunMeta(const std::string& dir, const RunMeta& meta,
                  std::string* error);

/// Reads `dir`/RUNMETA.json. False with an actionable *error on a missing
/// file, unparsable JSON, or missing fields.
bool ReadRunMeta(const std::string& dir, RunMeta* meta, std::string* error);

struct RecoveryResult {
  /// Fresh clusterer of the run's method with every logged op re-applied.
  std::unique_ptr<Clusterer> clusterer;
  /// The replayed ops, in order (inserts carry their validated ids).
  std::vector<WalOp> ops;
  WalReplayReport wal;

  /// Newest snapshot in the directory that validated; null when none.
  std::shared_ptr<const ClusterSnapshot> snapshot;
  SnapshotMeta snapshot_meta;

  /// Human-readable recovery log: snapshots skipped as invalid, tail
  /// truncation, replay extent.
  std::vector<std::string> notes;
};

/// Recovers from `dir` (which holds RUNMETA.json, wal-*.log and snap-*.snap
/// files): replays the WAL into a fresh clusterer of `meta.method`, loads
/// the newest valid snapshot, and cross-checks replayed inserts against the
/// logged id assignment (a mismatch means the log does not belong to this
/// method/params and is a hard error). False (with *error) when the log is
/// unusable; snapshot problems alone are never fatal.
bool Recover(const std::string& dir, const RunMeta& meta,
             RecoveryResult* result, std::string* error);

/// ReadRunMeta + Recover in one step.
bool RecoverFromDir(const std::string& dir, RecoveryResult* result,
                    RunMeta* meta, std::string* error);

}  // namespace ddc

#endif  // DDC_PERSIST_RECOVERY_H_
