#ifndef DDC_PERSIST_WAL_H_
#define DDC_PERSIST_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "geom/point.h"

namespace ddc {

/// \file
/// Write-ahead log of the applied update stream: an append-only,
/// segment-rotating sequence of length-prefixed, CRC-checksummed records.
/// One record per applied insert/delete, written *after* the clusterer
/// applied the op (so an insert record carries the id the clusterer
/// assigned) and made durable per the configured fsync policy before the op
/// is acknowledged. Replaying the logged prefix into a fresh clusterer of
/// the same method reproduces the pre-crash clustering bit-identically —
/// ids are assigned monotonically by insertion order, and every algorithm
/// in this repo is deterministic in its op stream.
///
/// On-disk layout (all integers little-endian):
///
///   segment file  wal-<first_seq, 16 hex digits>.log
///     [8]  magic "DDCWAL01"
///     [8]  first_seq of this segment
///     [4]  CRC32 of the first_seq field
///     records...
///
///   record
///     [4]  payload length (<= kWalMaxRecordBytes)
///     [4]  CRC32 of the payload
///     [n]  payload (EncodeWalOp)
///
/// A torn tail — a record whose length field, payload, or CRC the crash cut
/// short — is detected by the reader and cleanly truncated; a corrupt
/// record anywhere *before* the tail is a hard error (recovery refuses to
/// skip over acknowledged data). A bad CRC is never silently applied.

/// One logged operation.
struct WalOp {
  enum class Type : uint8_t { kInsert = 1, kDelete = 2 };

  Type type = Type::kInsert;
  /// Position in the logged stream, 1-based, assigned by the writer.
  uint64_t seq = 0;
  /// Insert: the PointId the clusterer assigned (replay validates against
  /// it). Delete: the id being deleted.
  PointId id = kInvalidPoint;
  /// Insert only.
  int dim = 0;
  Point point;

  friend bool operator==(const WalOp& a, const WalOp& b) {
    return a.type == b.type && a.seq == b.seq && a.id == b.id &&
           a.dim == b.dim && (a.type == Type::kDelete || a.point == b.point);
  }
};

/// Upper bound on a record payload; a length field beyond it is corruption,
/// not a huge record (the largest legitimate payload is an insert at
/// kMaxDim, well under 100 bytes).
inline constexpr uint32_t kWalMaxRecordBytes = 4096;

/// Serializes `op` into the record payload format.
std::string EncodeWalOp(const WalOp& op);

/// Parses a record payload; false on malformed input (bad type, dim out of
/// [1, kMaxDim], length mismatch).
bool DecodeWalOp(std::string_view payload, WalOp* op);

/// Appends one framed record (length + CRC + payload) to `file`.
bool AppendWalRecord(WritableFile& file, std::string_view payload);

/// Segment file name for the segment starting at `first_seq`.
std::string WalSegmentName(uint64_t first_seq);

class WalWriter {
 public:
  struct Options {
    /// Rotate to a new segment once the current one reaches this size.
    int64_t segment_bytes = 1 << 20;
    /// fsync policy: 0 = never (buffered writes still reach the OS per
    /// append, so a SIGKILL loses nothing — only a power failure can);
    /// 1 = fsync every record; N > 1 = group commit, fsync once every N
    /// records (and on Close).
    int sync_every = 0;
    /// First sequence number this writer assigns.
    uint64_t start_seq = 1;
    /// Segment file opener; tests interpose fault injection here.
    WritableFileFactory factory;
  };

  /// Logs into `dir` (created if missing). Refuses a directory that already
  /// contains WAL segments — a writer never appends to a log it did not
  /// write (recovery owns old logs). Check ok() after construction.
  WalWriter(const std::string& dir, const Options& options);

  /// Single-file mode: all records go to exactly `path` (no rotation, no
  /// directory scan) — the `--oplog-out` format, replayable by ReplayWalFile.
  static std::unique_ptr<WalWriter> OpenSingleFile(const std::string& path,
                                                   const Options& options);

  ~WalWriter();

  /// Assigns the next seq to `op` (in place), appends the record, and
  /// applies the durability policy. True when the record is accepted and —
  /// under sync_every == 1 — durable. False latches the first error.
  bool Append(WalOp& op);

  /// Forces buffered records to stable storage (group-commit flush point).
  bool Sync();

  /// Sync + close the current segment. Idempotent.
  bool Close();

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  /// Sequence number the next Append will assign.
  uint64_t next_seq() const { return next_seq_; }
  int64_t bytes_written() const { return total_bytes_; }
  int segments_opened() const { return segments_opened_; }

 private:
  WalWriter(std::string path, bool single_file, const Options& options);

  bool OpenSegment(uint64_t first_seq);
  void Latch(const std::string& error);

  Options options_;
  std::string dir_;
  std::string single_path_;
  bool single_file_ = false;

  std::unique_ptr<WritableFile> file_;
  uint64_t next_seq_ = 1;
  int unsynced_records_ = 0;
  int64_t total_bytes_ = 0;
  int segments_opened_ = 0;
  std::string error_;
};

/// What a replay saw: how far it got and how (or whether) the tail ended.
struct WalReplayReport {
  int64_t records = 0;
  int segments = 0;
  /// Sequence number of the last applied record (0 when none).
  uint64_t last_seq = 0;

  /// True when a torn/corrupt tail was cleanly truncated. The fields below
  /// name the cut: file, byte offset of the offending record, and why.
  bool truncated = false;
  std::string truncated_file;
  int64_t truncated_offset = 0;
  std::string truncation_reason;
};

/// Replays every valid record of the log in `dir`, in sequence order,
/// through `fn`. A torn/corrupt record in the *last* segment truncates the
/// tail (reported, not an error); corruption anywhere else — a bad CRC in a
/// non-final segment, a missing or duplicated segment, a header that does
/// not match its file name — returns false with an actionable description
/// in *error naming the file and offset. An empty directory replays zero
/// records successfully.
bool ReplayWal(const std::string& dir,
               const std::function<void(const WalOp&)>& fn,
               WalReplayReport* report, std::string* error);

/// Replays a single segment/oplog file. `expect_first_seq` (0 = accept the
/// header's value) pins the header; `is_last` selects tail-truncation
/// semantics (true) or hard-error-on-corruption (false).
bool ReplayWalFile(const std::string& path, uint64_t expect_first_seq,
                   bool is_last, const std::function<void(const WalOp&)>& fn,
                   WalReplayReport* report, std::string* error);

/// The wal-*.log segment files in `dir`, sorted by first_seq parsed from
/// the name. False on an unparsable segment name or duplicate first_seq.
bool ListWalSegments(const std::string& dir, std::vector<std::string>* paths,
                     std::string* error);

}  // namespace ddc

#endif  // DDC_PERSIST_WAL_H_
