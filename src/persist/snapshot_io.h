#ifndef DDC_PERSIST_SNAPSHOT_IO_H_
#define DDC_PERSIST_SNAPSHOT_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster_snapshot.h"
#include "core/params.h"

namespace ddc {

/// \file
/// Versioned on-disk serialization of the epoch-frozen cluster snapshots —
/// the engine's cold-start and replica-shipping format. One file per
/// snapshot:
///
///   [8]  magic "DDCSNAP1"
///   [4]  manifest length (little-endian)
///   [4]  CRC32 of the manifest bytes
///   [..] manifest — a JSON document (common/json.h): format version, kind
///        ("grid" / "sharded"), epoch, the WAL sequence number the snapshot
///        covers, DbscanParams provenance, per-shard metadata and routing
///        shape, and the section table (name, offset, length, CRC32 of
///        every binary section; offsets relative to the end of the
///        manifest)
///   [..] sections — raw little-endian blobs: packed coordinates, alive /
///        core bits, cell records, boxes, adjacency, routing records,
///        local-id maps, and the stitch label table
///
/// Scalar doubles that must round-trip bit-identically (eps, rho, the
/// squared query radius) are stored in the manifest as hexadecimal bit
/// patterns, not JSON numbers. Every section is CRC32-checksummed
/// individually, so a flipped bit names the section it hit. Load rebuilds a
/// snapshot whose Query() is bit-identical to the saved one's.

inline constexpr int kSnapshotFormatVersion = 1;

/// Identity of a saved snapshot, from its manifest.
struct SnapshotMeta {
  int format_version = 0;
  std::string kind;  // "grid" or "sharded"
  uint64_t epoch = 0;
  /// WAL sequence number of the last op this snapshot includes (0 = none):
  /// recovery replays the tail strictly after it.
  uint64_t last_seq = 0;
  DbscanParams params;
};

/// Serializes `snap` (a GridSnapshot or ShardedSnapshot) to `path` via an
/// atomic temp-file + rename, so a crash mid-save never leaves a partial
/// snapshot under the final name. False (with *error) on failure.
bool SaveSnapshot(const ClusterSnapshot& snap, const DbscanParams& params,
                  uint64_t last_seq, const std::string& path,
                  std::string* error);

/// Loads a snapshot file. Null on any validation failure — bad magic,
/// corrupt or version-skewed manifest, section CRC mismatch, inconsistent
/// section shapes — with an actionable description in *error naming the
/// file and byte offset. `meta` (optional) receives the manifest identity.
std::shared_ptr<const ClusterSnapshot> LoadSnapshot(const std::string& path,
                                                    SnapshotMeta* meta,
                                                    std::string* error);

/// LoadSnapshot that aborts (DDC_CHECK) with the error on failure — the
/// strict path for tools that cannot proceed without the snapshot.
std::shared_ptr<const ClusterSnapshot> LoadSnapshotOrDie(
    const std::string& path, SnapshotMeta* meta);

/// Canonical file name of the snapshot covering WAL prefix `last_seq`.
std::string SnapshotFileName(uint64_t last_seq);

/// One snapshot file found in a directory (identity parsed from the name).
struct SnapshotFileInfo {
  std::string path;
  uint64_t last_seq = 0;
};

/// The snap-*.snap files in `dir`, sorted by last_seq ascending.
bool ListSnapshots(const std::string& dir,
                   std::vector<SnapshotFileInfo>* snapshots,
                   std::string* error);

/// Loads the newest snapshot in `dir` that validates, scanning backwards;
/// each invalid file is recorded in *notes (never silently accepted, never
/// fatal — older valid snapshots still give a cold start). Null when the
/// directory holds no valid snapshot.
std::shared_ptr<const ClusterSnapshot> LoadNewestValidSnapshot(
    const std::string& dir, SnapshotMeta* meta,
    std::vector<std::string>* notes);

}  // namespace ddc

#endif  // DDC_PERSIST_SNAPSHOT_IO_H_
