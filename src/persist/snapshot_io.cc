#include "persist/snapshot_io.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "common/io.h"
#include "common/json.h"
#include "engine/sharded_snapshot.h"
#include "telemetry/metrics.h"

namespace ddc {

namespace {

constexpr char kSnapshotMagic[8] = {'D', 'D', 'C', 'S', 'N', 'A', 'P', '1'};
constexpr size_t kFileHeaderBytes = 8 + 4 + 4;  // magic + len + crc

/// Doubles that must survive bit-identically cross the manifest as hex bit
/// patterns — JSON number round-trips may not preserve the last ulp.
std::string HexBits(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, std::bit_cast<uint64_t>(v));
  return buf;
}

bool ParseHexBits(const std::string& s, double* out) {
  uint64_t bits = 0;
  if (s.rfind("0x", 0) != 0 ||
      std::sscanf(s.c_str() + 2, "%16" SCNx64, &bits) != 1) {
    return false;
  }
  *out = std::bit_cast<double>(bits);
  return true;
}

// ---- Little-endian blob encoding. On a little-endian host the arrays are
// memcpy'd wholesale; the element-wise fallback keeps the format portable.

void AppendI32s(std::string& out, const int32_t* v, size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    out.append(reinterpret_cast<const char*>(v), n * 4);
  } else {
    for (size_t i = 0; i < n; ++i) {
      AppendLe32(out, static_cast<uint32_t>(v[i]));
    }
  }
}

void AppendF64s(std::string& out, const double* v, size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    out.append(reinterpret_cast<const char*>(v), n * 8);
  } else {
    for (size_t i = 0; i < n; ++i) AppendLeDouble(out, v[i]);
  }
}

void ReadI32s(const unsigned char* p, size_t n, int32_t* out) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, p, n * 4);
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<int32_t>(ReadLe32(p + i * 4));
    }
  }
}

void ReadF64s(const unsigned char* p, size_t n, double* out) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, p, n * 8);
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = ReadLeDouble(p + i * 8);
  }
}

/// Accumulates named binary sections; offsets are assigned relative to the
/// end of the manifest (the manifest cannot contain offsets that depend on
/// its own length).
class SectionBuilder {
 public:
  void Add(std::string name, std::string payload) {
    sections_.push_back({std::move(name), std::move(payload)});
  }

  void WriteTable(JsonWriter& j) const {
    int64_t offset = 0;
    j.BeginArray();
    for (const auto& s : sections_) {
      j.BeginObject();
      j.Key("name").String(s.name);
      j.Key("offset").Int(offset);
      j.Key("len").Int(static_cast<int64_t>(s.payload.size()));
      j.Key("crc").Int(static_cast<int64_t>(Crc32(s.payload)));
      j.EndObject();
      offset += static_cast<int64_t>(s.payload.size());
    }
    j.EndArray();
  }

  void AppendPayloads(std::string& out) const {
    for (const auto& s : sections_) out.append(s.payload);
  }

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// Resolves and CRC-verifies sections of a loaded file against its manifest
/// table. Every failure names the file, the section, and the byte offset.
class SectionReader {
 public:
  SectionReader(const std::string& path, std::string_view file_data,
                size_t base_offset)
      : path_(path), data_(file_data), base_(base_offset) {}

  bool Init(const JsonValue& table, std::string* error) {
    if (table.type != JsonValue::Type::kArray) {
      *error = "snapshot manifest of " + path_ +
               " has no section table (expected \"sections\" array)";
      return false;
    }
    for (const JsonValue& s : table.items) {
      const JsonValue* name = s.Find("name");
      const JsonValue* offset = s.Find("offset");
      const JsonValue* len = s.Find("len");
      const JsonValue* crc = s.Find("crc");
      if (name == nullptr || name->type != JsonValue::Type::kString ||
          offset == nullptr || offset->type != JsonValue::Type::kNumber ||
          len == nullptr || len->type != JsonValue::Type::kNumber ||
          crc == nullptr || crc->type != JsonValue::Type::kNumber) {
        *error = "malformed section table entry in snapshot manifest of " +
                 path_;
        return false;
      }
      Entry e;
      e.offset = static_cast<int64_t>(offset->number_value);
      e.len = static_cast<int64_t>(len->number_value);
      e.crc = static_cast<uint32_t>(crc->number_value);
      if (e.offset < 0 || e.len < 0 ||
          base_ + static_cast<size_t>(e.offset + e.len) > data_.size()) {
        *error = "section " + name->string_value + " of " + path_ +
                 " extends past end of file (offset " +
                 std::to_string(base_ + static_cast<size_t>(e.offset)) +
                 ", len " + std::to_string(e.len) + ", file size " +
                 std::to_string(data_.size()) + ")";
        return false;
      }
      entries_.emplace_back(name->string_value, e);
    }
    return true;
  }

  /// The verified bytes of section `name`; nullopt (with *error) when the
  /// section is absent or its CRC does not match.
  std::optional<std::string_view> Get(const std::string& name,
                                      std::string* error) const {
    for (const auto& [n, e] : entries_) {
      if (n != name) continue;
      const std::string_view payload =
          data_.substr(base_ + static_cast<size_t>(e.offset),
                       static_cast<size_t>(e.len));
      if (Crc32(payload) != e.crc) {
        *error = "section " + name + " of " + path_ +
                 " failed its CRC32 check at offset " +
                 std::to_string(base_ + static_cast<size_t>(e.offset)) +
                 " (len " + std::to_string(e.len) + "): corrupt snapshot";
        return std::nullopt;
      }
      return payload;
    }
    *error = "snapshot " + path_ + " is missing section " + name;
    return std::nullopt;
  }

 private:
  struct Entry {
    int64_t offset = 0;
    int64_t len = 0;
    uint32_t crc = 0;
  };
  std::string path_;
  std::string_view data_;
  size_t base_;
  std::vector<std::pair<std::string, Entry>> entries_;
};

// ---- Manifest JSON field access with actionable errors.

bool GetNum(const JsonValue& obj, const char* key, double* out,
            const std::string& path, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    *error = "snapshot manifest of " + path + " is missing numeric field \"" +
             key + "\"";
    return false;
  }
  *out = v->number_value;
  return true;
}

bool GetInt64(const JsonValue& obj, const char* key, int64_t* out,
              const std::string& path, std::string* error) {
  double d = 0;
  if (!GetNum(obj, key, &d, path, error)) return false;
  *out = static_cast<int64_t>(d);
  return true;
}

bool GetBits(const JsonValue& obj, const char* key, double* out,
             const std::string& path, std::string* error) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString ||
      !ParseHexBits(v->string_value, out)) {
    *error = "snapshot manifest of " + path +
             " is missing or has a malformed bit-pattern field \"" + key +
             "\"";
    return false;
  }
  return true;
}

}  // namespace

/// Friend of GridSnapshot / ShardedSnapshot / BoundaryStitcher::LabelTable:
/// the one place allowed to take their frozen representation apart and put
/// it back together.
class SnapshotIO {
 public:
  // -- Save ----------------------------------------------------------------

  static void GridMeta(JsonWriter& j, const GridSnapshot& g) {
    j.BeginObject();
    j.Key("dim").Int(g.dim_);
    j.Key("epoch").Int(static_cast<int64_t>(g.epoch()));
    j.Key("alive").Int(g.alive_);
    j.Key("eps_outer_sq_bits").String(HexBits(g.eps_outer_sq_));
    j.Key("num_points").Int(static_cast<int64_t>(g.cell_of_.size()));
    j.Key("num_cells").Int(static_cast<int64_t>(g.cells_.size()));
    j.EndObject();
  }

  static void GridSections(SectionBuilder& b, const std::string& prefix,
                           const GridSnapshot& g) {
    {
      std::string s;
      AppendI32s(s, g.cell_of_.data(), g.cell_of_.size());
      b.Add(prefix + "cell_of", std::move(s));
    }
    b.Add(prefix + "point_core",
          std::string(reinterpret_cast<const char*>(g.point_core_.data()),
                      g.point_core_.size()));
    {
      std::string s;
      AppendF64s(s, g.point_coords_.data(), g.point_coords_.size());
      b.Add(prefix + "point_coords", std::move(s));
    }
    {
      // CellRec: u64 label + 4x i32, 24 bytes, explicitly composed (never
      // memcpy'd as a struct — padding and field order stay nailed down).
      std::string s;
      s.reserve(g.cells_.size() * 24);
      for (const auto& c : g.cells_) {
        AppendLe64(s, c.label);
        AppendLe32(s, static_cast<uint32_t>(c.members_begin));
        AppendLe32(s, static_cast<uint32_t>(c.members_end));
        AppendLe32(s, static_cast<uint32_t>(c.nbr_begin));
        AppendLe32(s, static_cast<uint32_t>(c.nbr_end));
      }
      b.Add(prefix + "cells", std::move(s));
    }
    {
      // Box: lo then hi, all kMaxDim coordinates (padding included — the
      // round trip is bit-exact by construction).
      std::string s;
      s.reserve(g.cell_boxes_.size() * 2 * kMaxDim * 8);
      for (const Box& box : g.cell_boxes_) {
        AppendF64s(s, box.lo().data(), kMaxDim);
        AppendF64s(s, box.hi().data(), kMaxDim);
      }
      b.Add(prefix + "cell_boxes", std::move(s));
    }
    {
      std::string s;
      AppendF64s(s, g.member_coords_.data(), g.member_coords_.size());
      b.Add(prefix + "member_coords", std::move(s));
    }
    {
      std::string s;
      AppendI32s(s, g.core_neighbors_.data(), g.core_neighbors_.size());
      b.Add(prefix + "core_neighbors", std::move(s));
    }
  }

  static void SaveGrid(JsonWriter& j, SectionBuilder& b,
                       const GridSnapshot& g) {
    j.Key("grid");
    GridMeta(j, g);
    GridSections(b, "", g);
  }

  static void SaveSharded(JsonWriter& j, SectionBuilder& b,
                          const ShardedSnapshot& s) {
    j.Key("alive").Int(s.alive_);
    j.Key("num_points").Int(static_cast<int64_t>(s.points_.size()));
    j.Key("num_shards").Int(static_cast<int64_t>(s.shards_.size()));
    j.Key("shards");
    j.BeginArray();
    for (const auto& shard : s.shards_) GridMeta(j, *shard);
    j.EndArray();

    {
      std::string routing;
      routing.reserve(s.points_.size() * 4);
      for (const auto& rec : s.points_) {
        routing.push_back(static_cast<char>(rec.owner));
        routing.push_back(static_cast<char>(rec.first_holder));
        routing.push_back(static_cast<char>(rec.last_holder));
        routing.push_back(static_cast<char>(rec.alive ? 1 : 0));
      }
      b.Add("routing", std::move(routing));
    }
    for (size_t k = 0; k < s.shards_.size(); ++k) {
      const std::string prefix = "shard" + std::to_string(k) + ".";
      GridSections(b, prefix, *s.shards_[k]);
      // global id -> local id, sorted by gid so the blob is deterministic
      // regardless of hash-table iteration order.
      std::vector<std::pair<PointId, PointId>> pairs;
      pairs.reserve(s.local_of_[k].size());
      s.local_of_[k].ForEach([&](const PointId& gid, const PointId& local) {
        pairs.emplace_back(gid, local);
      });
      std::sort(pairs.begin(), pairs.end());
      std::string blob;
      blob.reserve(pairs.size() * 8);
      for (const auto& [gid, local] : pairs) {
        AppendLe32(blob, static_cast<uint32_t>(gid));
        AppendLe32(blob, static_cast<uint32_t>(local));
      }
      b.Add(prefix + "local_of", std::move(blob));
    }

    // The stitch label table: (shard, cc) -> union-find index, plus the
    // resolved root per index. Entries sorted for determinism.
    const BoundaryStitcher::LabelTable& t = *s.stitch_;
    std::vector<std::pair<BoundaryStitcher::LabelKey, int32_t>> entries;
    entries.reserve(t.index_.size());
    t.index_.ForEach(
        [&](const BoundaryStitcher::LabelKey& key, const int32_t& idx) {
          entries.emplace_back(key, idx);
        });
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                return a.first.shard != b.first.shard
                           ? a.first.shard < b.first.shard
                           : a.first.cc < b.first.cc;
              });
    std::string index_blob;
    index_blob.reserve(entries.size() * 16);
    for (const auto& [key, idx] : entries) {
      AppendLe32(index_blob, static_cast<uint32_t>(key.shard));
      AppendLe64(index_blob, key.cc);
      AppendLe32(index_blob, static_cast<uint32_t>(idx));
    }
    b.Add("stitch.index", std::move(index_blob));
    std::string root_blob;
    AppendI32s(root_blob, t.root_.data(), t.root_.size());
    b.Add("stitch.root", std::move(root_blob));
  }

  // -- Load ----------------------------------------------------------------

  static std::shared_ptr<const GridSnapshot> LoadGrid(
      const JsonValue& meta, const SectionReader& sections,
      const std::string& prefix, const std::string& path,
      std::string* error) {
    int64_t dim = 0, epoch = 0, alive = 0, num_points = 0, num_cells = 0;
    double eps_outer_sq = 0;
    if (!GetInt64(meta, "dim", &dim, path, error) ||
        !GetInt64(meta, "epoch", &epoch, path, error) ||
        !GetInt64(meta, "alive", &alive, path, error) ||
        !GetBits(meta, "eps_outer_sq_bits", &eps_outer_sq, path, error) ||
        !GetInt64(meta, "num_points", &num_points, path, error) ||
        !GetInt64(meta, "num_cells", &num_cells, path, error)) {
      return nullptr;
    }
    if (dim < 1 || dim > kMaxDim || num_points < 0 || num_cells < 0 ||
        alive < 0) {
      *error = "snapshot manifest of " + path +
               " carries out-of-range grid metadata (dim " +
               std::to_string(dim) + ", points " +
               std::to_string(num_points) + ", cells " +
               std::to_string(num_cells) + ")";
      return nullptr;
    }

    std::shared_ptr<GridSnapshot> g(
        new GridSnapshot(static_cast<uint64_t>(epoch)));
    g->dim_ = static_cast<int>(dim);
    g->eps_outer_sq_ = eps_outer_sq;
    g->alive_ = alive;

    auto section = [&](const char* name,
                       size_t elem_bytes) -> std::optional<std::string_view> {
      std::optional<std::string_view> payload =
          sections.Get(prefix + name, error);
      if (!payload.has_value()) return std::nullopt;
      if (payload->size() % elem_bytes != 0) {
        *error = "section " + prefix + name + " of " + path + " has length " +
                 std::to_string(payload->size()) +
                 ", not a multiple of its element size " +
                 std::to_string(elem_bytes);
        return std::nullopt;
      }
      return payload;
    };
    auto expect_count = [&](const char* name, std::string_view payload,
                            size_t elem_bytes, int64_t count) {
      if (payload.size() == static_cast<size_t>(count) * elem_bytes) {
        return true;
      }
      *error = "section " + prefix + name + " of " + path + " holds " +
               std::to_string(payload.size() / elem_bytes) +
               " elements where the manifest promises " +
               std::to_string(count);
      return false;
    };

    const unsigned char* p = nullptr;
    {
      auto s = section("cell_of", 4);
      if (!s || !expect_count("cell_of", *s, 4, num_points)) return nullptr;
      g->cell_of_.resize(static_cast<size_t>(num_points));
      p = reinterpret_cast<const unsigned char*>(s->data());
      ReadI32s(p, g->cell_of_.size(), g->cell_of_.data());
    }
    {
      auto s = section("point_core", 1);
      if (!s || !expect_count("point_core", *s, 1, num_points)) {
        return nullptr;
      }
      g->point_core_.assign(s->begin(), s->end());
    }
    {
      auto s = section("point_coords", 8);
      if (!s || !expect_count("point_coords", *s, 8, num_points * dim)) {
        return nullptr;
      }
      g->point_coords_.resize(static_cast<size_t>(num_points * dim));
      p = reinterpret_cast<const unsigned char*>(s->data());
      ReadF64s(p, g->point_coords_.size(), g->point_coords_.data());
    }
    {
      auto s = section("cells", 24);
      if (!s || !expect_count("cells", *s, 24, num_cells)) return nullptr;
      g->cells_.resize(static_cast<size_t>(num_cells));
      p = reinterpret_cast<const unsigned char*>(s->data());
      for (size_t i = 0; i < g->cells_.size(); ++i) {
        auto& c = g->cells_[i];
        c.label = ReadLe64(p + i * 24);
        c.members_begin = static_cast<int32_t>(ReadLe32(p + i * 24 + 8));
        c.members_end = static_cast<int32_t>(ReadLe32(p + i * 24 + 12));
        c.nbr_begin = static_cast<int32_t>(ReadLe32(p + i * 24 + 16));
        c.nbr_end = static_cast<int32_t>(ReadLe32(p + i * 24 + 20));
      }
    }
    {
      auto s = section("cell_boxes", 2 * kMaxDim * 8);
      if (!s || !expect_count("cell_boxes", *s, 2 * kMaxDim * 8, num_cells)) {
        return nullptr;
      }
      g->cell_boxes_.resize(static_cast<size_t>(num_cells));
      p = reinterpret_cast<const unsigned char*>(s->data());
      for (size_t i = 0; i < g->cell_boxes_.size(); ++i) {
        Point lo, hi;
        for (int k = 0; k < kMaxDim; ++k) {
          lo[k] = ReadLeDouble(p + (i * 2 * kMaxDim + k) * 8);
          hi[k] = ReadLeDouble(p + (i * 2 * kMaxDim + kMaxDim + k) * 8);
        }
        g->cell_boxes_[i] = Box(lo, hi);
      }
    }
    {
      auto s = section("member_coords", 8);
      if (!s) return nullptr;
      if (s->size() % (static_cast<size_t>(dim) * 8) != 0) {
        *error = "section " + prefix + "member_coords of " + path +
                 " is not a whole number of dim-" + std::to_string(dim) +
                 " rows";
        return nullptr;
      }
      g->member_coords_.resize(s->size() / 8);
      p = reinterpret_cast<const unsigned char*>(s->data());
      ReadF64s(p, g->member_coords_.size(), g->member_coords_.data());
    }
    {
      auto s = section("core_neighbors", 4);
      if (!s) return nullptr;
      g->core_neighbors_.resize(s->size() / 4);
      p = reinterpret_cast<const unsigned char*>(s->data());
      ReadI32s(p, g->core_neighbors_.size(), g->core_neighbors_.data());
    }

    // Structural sanity: every cell's ranges must lie inside the arrays
    // they index (the CRC already vouches for integrity; this guards
    // against a manifest/section mismatch assembled from mixed files).
    const int32_t num_members =
        static_cast<int32_t>(g->member_coords_.size() /
                             static_cast<size_t>(dim));
    const int32_t num_nbrs = static_cast<int32_t>(g->core_neighbors_.size());
    for (const auto& c : g->cells_) {
      if (c.members_begin < 0 || c.members_begin > c.members_end ||
          c.members_end > num_members || c.nbr_begin < 0 ||
          c.nbr_begin > c.nbr_end || c.nbr_end > num_nbrs) {
        *error = "snapshot " + path + " (" + prefix +
                 "cells) indexes outside its member/neighbor sections: "
                 "inconsistent snapshot";
        return nullptr;
      }
    }
    for (const int32_t c : g->cell_of_) {
      if (c < -1 || c >= static_cast<int32_t>(g->cells_.size())) {
        *error = "snapshot " + path + " (" + prefix +
                 "cell_of) references cell " + std::to_string(c) +
                 " outside the cell table";
        return nullptr;
      }
    }
    return g;
  }

  static std::shared_ptr<const ClusterSnapshot> LoadSharded(
      const JsonValue& manifest, const SectionReader& sections,
      uint64_t epoch, const std::string& path, std::string* error) {
    int64_t alive = 0, num_points = 0, num_shards = 0;
    if (!GetInt64(manifest, "alive", &alive, path, error) ||
        !GetInt64(manifest, "num_points", &num_points, path, error) ||
        !GetInt64(manifest, "num_shards", &num_shards, path, error)) {
      return nullptr;
    }
    const JsonValue* shard_metas = manifest.Find("shards");
    if (shard_metas == nullptr ||
        shard_metas->type != JsonValue::Type::kArray ||
        static_cast<int64_t>(shard_metas->items.size()) != num_shards) {
      *error = "snapshot manifest of " + path +
               " promises " + std::to_string(num_shards) +
               " shards but its \"shards\" array disagrees";
      return nullptr;
    }

    std::vector<ShardedSnapshot::GidRec> points;
    {
      std::optional<std::string_view> s = sections.Get("routing", error);
      if (!s.has_value()) return nullptr;
      if (s->size() != static_cast<size_t>(num_points) * 4) {
        *error = "section routing of " + path + " holds " +
                 std::to_string(s->size() / 4) +
                 " records where the manifest promises " +
                 std::to_string(num_points);
        return nullptr;
      }
      points.resize(static_cast<size_t>(num_points));
      const unsigned char* p =
          reinterpret_cast<const unsigned char*>(s->data());
      for (size_t i = 0; i < points.size(); ++i) {
        points[i].owner = p[i * 4];
        points[i].first_holder = p[i * 4 + 1];
        points[i].last_holder = p[i * 4 + 2];
        points[i].alive = p[i * 4 + 3] != 0;
      }
    }

    std::vector<std::shared_ptr<const GridSnapshot>> shards;
    std::vector<FlatHashMap<PointId, PointId>> local_of(
        static_cast<size_t>(num_shards));
    for (int64_t k = 0; k < num_shards; ++k) {
      const std::string prefix = "shard" + std::to_string(k) + ".";
      std::shared_ptr<const GridSnapshot> g = LoadGrid(
          shard_metas->items[static_cast<size_t>(k)], sections, prefix, path,
          error);
      if (g == nullptr) return nullptr;
      shards.push_back(std::move(g));

      std::optional<std::string_view> s =
          sections.Get(prefix + "local_of", error);
      if (!s.has_value()) return nullptr;
      if (s->size() % 8 != 0) {
        *error = "section " + prefix + "local_of of " + path +
                 " is not a whole number of (gid, local) pairs";
        return nullptr;
      }
      const unsigned char* p =
          reinterpret_cast<const unsigned char*>(s->data());
      FlatHashMap<PointId, PointId>& m = local_of[static_cast<size_t>(k)];
      m.Reserve(s->size() / 8);
      for (size_t i = 0; i < s->size() / 8; ++i) {
        const PointId gid = static_cast<PointId>(ReadLe32(p + i * 8));
        const PointId local = static_cast<PointId>(ReadLe32(p + i * 8 + 4));
        m.Emplace(gid, local);
      }
    }

    auto table = std::make_shared<BoundaryStitcher::LabelTable>();
    {
      std::optional<std::string_view> idx = sections.Get("stitch.index",
                                                         error);
      if (!idx.has_value()) return nullptr;
      if (idx->size() % 16 != 0) {
        *error = "section stitch.index of " + path +
                 " is not a whole number of 16-byte entries";
        return nullptr;
      }
      std::optional<std::string_view> root = sections.Get("stitch.root",
                                                          error);
      if (!root.has_value()) return nullptr;
      if (root->size() % 4 != 0) {
        *error = "section stitch.root of " + path +
                 " is not a whole number of 4-byte roots";
        return nullptr;
      }
      table->root_.resize(root->size() / 4);
      ReadI32s(reinterpret_cast<const unsigned char*>(root->data()),
               table->root_.size(), table->root_.data());
      const unsigned char* p =
          reinterpret_cast<const unsigned char*>(idx->data());
      table->index_.Reserve(idx->size() / 16);
      for (size_t i = 0; i < idx->size() / 16; ++i) {
        BoundaryStitcher::LabelKey key;
        key.shard = static_cast<int32_t>(ReadLe32(p + i * 16));
        key.cc = ReadLe64(p + i * 16 + 4);
        const int32_t index = static_cast<int32_t>(ReadLe32(p + i * 16 + 12));
        if (index < 0 ||
            index >= static_cast<int32_t>(table->root_.size())) {
          *error = "section stitch.index of " + path +
                   " references root " + std::to_string(index) +
                   " outside stitch.root (" +
                   std::to_string(table->root_.size()) + " entries)";
          return nullptr;
        }
        table->index_.Emplace(key, index);
      }
    }

    return std::make_shared<ShardedSnapshot>(
        epoch, std::move(points), alive, std::move(shards),
        std::move(local_of), std::move(table));
  }
};

std::string SnapshotFileName(uint64_t last_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%016" PRIx64 ".snap", last_seq);
  return buf;
}

bool SaveSnapshot(const ClusterSnapshot& snap, const DbscanParams& params,
                  uint64_t last_seq, const std::string& path,
                  std::string* error) {
  const GridSnapshot* grid = dynamic_cast<const GridSnapshot*>(&snap);
  const ShardedSnapshot* sharded =
      dynamic_cast<const ShardedSnapshot*>(&snap);
  if (grid == nullptr && sharded == nullptr) {
    if (error != nullptr) {
      *error = "SaveSnapshot: unsupported ClusterSnapshot type";
    }
    return false;
  }

  JsonWriter j;
  SectionBuilder b;
  j.BeginObject();
  j.Key("format_version").Int(kSnapshotFormatVersion);
  j.Key("kind").String(grid != nullptr ? "grid" : "sharded");
  j.Key("epoch").Int(static_cast<int64_t>(snap.epoch()));
  j.Key("last_seq").Int(static_cast<int64_t>(last_seq));
  j.Key("params");
  j.BeginObject();
  j.Key("dim").Int(params.dim);
  j.Key("min_pts").Int(params.min_pts);
  j.Key("eps_bits").String(HexBits(params.eps));
  j.Key("rho_bits").String(HexBits(params.rho));
  j.EndObject();
  if (grid != nullptr) {
    SnapshotIO::SaveGrid(j, b, *grid);
  } else {
    SnapshotIO::SaveSharded(j, b, *sharded);
  }
  j.Key("sections");
  b.WriteTable(j);
  j.EndObject();

  const std::string& manifest = j.str();
  std::string file;
  file.reserve(kFileHeaderBytes + manifest.size());
  file.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendLe32(file, static_cast<uint32_t>(manifest.size()));
  AppendLe32(file, Crc32(manifest));
  file.append(manifest);
  b.AppendPayloads(file);

  if (!WriteFileAtomic(path, file, error)) return false;
  DDC_COUNTER_INC("persist.snapshot_saves");
  DDC_COUNTER_ADD("persist.snapshot_bytes_written",
                  static_cast<int64_t>(file.size()));
  return true;
}

std::shared_ptr<const ClusterSnapshot> LoadSnapshot(const std::string& path,
                                                    SnapshotMeta* meta,
                                                    std::string* error) {
  std::string local_error;
  if (error == nullptr) error = &local_error;
  std::string data;
  if (!ReadFileToString(path, &data, error)) return nullptr;

  if (data.size() < kFileHeaderBytes ||
      std::string_view(data.data(), 8) !=
          std::string_view(kSnapshotMagic, 8)) {
    *error = "not a snapshot file (bad magic): " + path + " at offset 0";
    return nullptr;
  }
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());
  const uint32_t manifest_len = ReadLe32(bytes + 8);
  const uint32_t manifest_crc = ReadLe32(bytes + 12);
  if (kFileHeaderBytes + static_cast<size_t>(manifest_len) > data.size()) {
    *error = "truncated snapshot manifest in " + path + " at offset 8: " +
             "manifest length " + std::to_string(manifest_len) +
             " exceeds file size " + std::to_string(data.size());
    return nullptr;
  }
  const std::string_view manifest_text(data.data() + kFileHeaderBytes,
                                       manifest_len);
  if (Crc32(manifest_text) != manifest_crc) {
    *error = "corrupt snapshot manifest in " + path + " at offset " +
             std::to_string(kFileHeaderBytes) + ": CRC32 mismatch over " +
             std::to_string(manifest_len) + " manifest bytes";
    return nullptr;
  }
  std::string parse_error;
  std::optional<JsonValue> manifest =
      JsonParse(manifest_text, &parse_error);
  if (!manifest.has_value()) {
    *error = "unparsable snapshot manifest in " + path + " at offset " +
             std::to_string(kFileHeaderBytes) + ": " + parse_error;
    return nullptr;
  }

  int64_t version = 0, epoch = 0, last_seq = 0;
  if (!GetInt64(*manifest, "format_version", &version, path, error) ||
      !GetInt64(*manifest, "epoch", &epoch, path, error) ||
      !GetInt64(*manifest, "last_seq", &last_seq, path, error)) {
    return nullptr;
  }
  if (version != kSnapshotFormatVersion) {
    *error = "snapshot " + path + " has format_version " +
             std::to_string(version) + "; this build reads version " +
             std::to_string(kSnapshotFormatVersion);
    return nullptr;
  }
  const JsonValue* kind = manifest->Find("kind");
  if (kind == nullptr || kind->type != JsonValue::Type::kString) {
    *error = "snapshot manifest of " + path + " is missing \"kind\"";
    return nullptr;
  }

  SnapshotMeta parsed;
  parsed.format_version = static_cast<int>(version);
  parsed.kind = kind->string_value;
  parsed.epoch = static_cast<uint64_t>(epoch);
  parsed.last_seq = static_cast<uint64_t>(last_seq);
  const JsonValue* params = manifest->Find("params");
  if (params == nullptr || params->type != JsonValue::Type::kObject) {
    *error = "snapshot manifest of " + path + " is missing \"params\"";
    return nullptr;
  }
  int64_t pdim = 0, pmin = 0;
  if (!GetInt64(*params, "dim", &pdim, path, error) ||
      !GetInt64(*params, "min_pts", &pmin, path, error) ||
      !GetBits(*params, "eps_bits", &parsed.params.eps, path, error) ||
      !GetBits(*params, "rho_bits", &parsed.params.rho, path, error)) {
    return nullptr;
  }
  parsed.params.dim = static_cast<int>(pdim);
  parsed.params.min_pts = static_cast<int>(pmin);

  const JsonValue* table = manifest->Find("sections");
  SectionReader sections(path, data,
                         kFileHeaderBytes + static_cast<size_t>(manifest_len));
  if (table == nullptr || !sections.Init(*table, error)) return nullptr;

  std::shared_ptr<const ClusterSnapshot> snap;
  if (parsed.kind == "grid") {
    const JsonValue* grid_meta = manifest->Find("grid");
    if (grid_meta == nullptr ||
        grid_meta->type != JsonValue::Type::kObject) {
      *error = "snapshot manifest of " + path + " is missing \"grid\"";
      return nullptr;
    }
    snap = SnapshotIO::LoadGrid(*grid_meta, sections, "", path, error);
  } else if (parsed.kind == "sharded") {
    snap = SnapshotIO::LoadSharded(*manifest, sections, parsed.epoch, path,
                                   error);
  } else {
    *error = "snapshot " + path + " has unknown kind \"" + parsed.kind +
             "\"";
    return nullptr;
  }
  if (snap == nullptr) return nullptr;
  if (meta != nullptr) *meta = parsed;
  DDC_COUNTER_INC("persist.snapshot_loads");
  return snap;
}

std::shared_ptr<const ClusterSnapshot> LoadSnapshotOrDie(
    const std::string& path, SnapshotMeta* meta) {
  std::string error;
  std::shared_ptr<const ClusterSnapshot> snap =
      LoadSnapshot(path, meta, &error);
  if (snap == nullptr) {
    std::fprintf(stderr, "LoadSnapshot failed: %s\n", error.c_str());
    std::abort();
  }
  return snap;
}

bool ListSnapshots(const std::string& dir,
                   std::vector<SnapshotFileInfo>* snapshots,
                   std::string* error) {
  snapshots->clear();
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return true;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0 || name.size() != 5 + 16 + 5 ||
        name.substr(21) != ".snap") {
      continue;
    }
    SnapshotFileInfo info;
    info.path = entry.path().string();
    if (std::sscanf(name.substr(5, 16).c_str(), "%16" SCNx64,
                    &info.last_seq) != 1) {
      continue;
    }
    snapshots->push_back(std::move(info));
  }
  if (ec) {
    if (error != nullptr) *error = "cannot list " + dir + ": " + ec.message();
    return false;
  }
  std::sort(snapshots->begin(), snapshots->end(),
            [](const SnapshotFileInfo& a, const SnapshotFileInfo& b) {
              return a.last_seq < b.last_seq;
            });
  return true;
}

std::shared_ptr<const ClusterSnapshot> LoadNewestValidSnapshot(
    const std::string& dir, SnapshotMeta* meta,
    std::vector<std::string>* notes) {
  std::vector<SnapshotFileInfo> files;
  std::string error;
  if (!ListSnapshots(dir, &files, &error)) {
    if (notes != nullptr) notes->push_back(error);
    return nullptr;
  }
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::shared_ptr<const ClusterSnapshot> snap =
        LoadSnapshot(it->path, meta, &error);
    if (snap != nullptr) return snap;
    // Never silently accepted: every rejected file is reported, and an
    // older valid snapshot still provides the cold start.
    if (notes != nullptr) {
      notes->push_back("skipping invalid snapshot: " + error);
    }
    DDC_COUNTER_INC("persist.snapshot_load_failures");
  }
  return nullptr;
}

}  // namespace ddc
