#include "persist/fault_file.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace ddc {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : state_(std::make_shared<State>()) {
  state_->plan = plan;
  state_->error = "simulated crash (fault injection)";
}

WritableFileFactory FaultInjector::WrapFactory(WritableFileFactory inner) {
  std::shared_ptr<State> state = state_;
  return [state, inner = std::move(inner)](
             const std::string& path) -> std::unique_ptr<WritableFile> {
    return std::make_unique<FaultFile>(inner(path), state);
  };
}

FaultFile::FaultFile(std::unique_ptr<WritableFile> inner,
                     std::shared_ptr<FaultInjector::State> state)
    : inner_(std::move(inner)), state_(std::move(state)) {}

bool FaultFile::Append(const void* data, size_t n) {
  if (state_->crashed) return false;
  size_t accept = n;
  const int64_t budget = state_->plan.crash_after_bytes;
  if (budget >= 0) {
    const int64_t remaining = budget - state_->bytes_passed;
    if (static_cast<int64_t>(n) > remaining) {
      // The write crossing the crash point lands only its prefix — exactly
      // the torn write a power cut mid-write leaves behind.
      accept = static_cast<size_t>(std::max<int64_t>(remaining, 0));
      state_->crashed = true;
    }
  }
  if (accept > 0) {
    const int64_t flip = state_->plan.flip_bit;
    const int64_t lo_bit = state_->bytes_passed * 8;
    if (flip >= lo_bit && flip < lo_bit + static_cast<int64_t>(accept) * 8) {
      std::vector<unsigned char> copy(
          static_cast<const unsigned char*>(data),
          static_cast<const unsigned char*>(data) + accept);
      const int64_t rel = flip - lo_bit;
      copy[static_cast<size_t>(rel / 8)] ^=
          static_cast<unsigned char>(1u << (rel % 8));
      if (!inner_->Append(copy.data(), accept)) return false;
    } else if (!inner_->Append(data, accept)) {
      return false;
    }
    state_->bytes_passed += static_cast<int64_t>(accept);
    // The torn prefix must actually be on "disk" for recovery to see it.
    if (state_->crashed) inner_->Flush();
  }
  return !state_->crashed;
}

bool FaultFile::Flush() { return !state_->crashed && inner_->Flush(); }

bool FaultFile::Sync() { return !state_->crashed && inner_->Sync(); }

bool FaultFile::Close() {
  // Closing flushes the inner file even after a simulated crash so the test
  // can inspect the bytes; the result still reports the crash.
  const bool inner_ok = inner_->Close();
  return !state_->crashed && inner_ok;
}

bool FaultFile::ok() const { return !state_->crashed && inner_->ok(); }

const std::string& FaultFile::error() const {
  return state_->crashed ? state_->error : inner_->error();
}

}  // namespace ddc
