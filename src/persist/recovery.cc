#include "persist/recovery.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <utility>

#include "common/io.h"
#include "common/json.h"
#include "core/method_registry.h"
#include "telemetry/metrics.h"

namespace ddc {

namespace {

constexpr char kRunMetaName[] = "RUNMETA.json";

std::string HexBits(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, std::bit_cast<uint64_t>(v));
  return buf;
}

bool ParseHexBits(const std::string& s, double* out) {
  uint64_t bits = 0;
  if (s.rfind("0x", 0) != 0 ||
      std::sscanf(s.c_str() + 2, "%16" SCNx64, &bits) != 1) {
    return false;
  }
  *out = std::bit_cast<double>(bits);
  return true;
}

}  // namespace

bool WriteRunMeta(const std::string& dir, const RunMeta& meta,
                  std::string* error) {
  JsonWriter j;
  j.BeginObject();
  j.Key("method").String(meta.method);
  j.Key("scenario").String(meta.scenario);
  j.Key("seed").Int(static_cast<int64_t>(meta.seed));
  j.Key("params");
  j.BeginObject();
  j.Key("dim").Int(meta.params.dim);
  j.Key("min_pts").Int(meta.params.min_pts);
  j.Key("eps_bits").String(HexBits(meta.params.eps));
  j.Key("rho_bits").String(HexBits(meta.params.rho));
  // Readability duplicates; the bit patterns above are authoritative.
  j.Key("eps").Double(meta.params.eps);
  j.Key("rho").Double(meta.params.rho);
  j.EndObject();
  j.EndObject();
  return WriteFileAtomic(dir + "/" + kRunMetaName, j.str(), error);
}

bool ReadRunMeta(const std::string& dir, RunMeta* meta, std::string* error) {
  const std::string path = dir + "/" + kRunMetaName;
  std::string text;
  if (!ReadFileToString(path, &text, error)) return false;
  std::string parse_error;
  std::optional<JsonValue> doc = JsonParse(text, &parse_error);
  if (!doc.has_value()) {
    *error = "unparsable " + path + ": " + parse_error;
    return false;
  }
  const JsonValue* method = doc->Find("method");
  const JsonValue* scenario = doc->Find("scenario");
  const JsonValue* seed = doc->Find("seed");
  const JsonValue* params = doc->Find("params");
  if (method == nullptr || method->type != JsonValue::Type::kString ||
      scenario == nullptr || scenario->type != JsonValue::Type::kString ||
      seed == nullptr || seed->type != JsonValue::Type::kNumber ||
      params == nullptr || params->type != JsonValue::Type::kObject) {
    *error = path + " is missing method/scenario/seed/params fields";
    return false;
  }
  const JsonValue* dim = params->Find("dim");
  const JsonValue* min_pts = params->Find("min_pts");
  const JsonValue* eps_bits = params->Find("eps_bits");
  const JsonValue* rho_bits = params->Find("rho_bits");
  if (dim == nullptr || dim->type != JsonValue::Type::kNumber ||
      min_pts == nullptr || min_pts->type != JsonValue::Type::kNumber ||
      eps_bits == nullptr || eps_bits->type != JsonValue::Type::kString ||
      rho_bits == nullptr || rho_bits->type != JsonValue::Type::kString) {
    *error = path + " has a malformed params object";
    return false;
  }
  meta->method = method->string_value;
  meta->scenario = scenario->string_value;
  meta->seed = static_cast<uint64_t>(seed->number_value);
  meta->params.dim = static_cast<int>(dim->number_value);
  meta->params.min_pts = static_cast<int>(min_pts->number_value);
  if (!ParseHexBits(eps_bits->string_value, &meta->params.eps) ||
      !ParseHexBits(rho_bits->string_value, &meta->params.rho)) {
    *error = path + " has malformed eps_bits/rho_bits";
    return false;
  }
  return true;
}

bool Recover(const std::string& dir, const RunMeta& meta,
             RecoveryResult* result, std::string* error) {
  std::string why;
  if (!ValidateMethodSpec(meta.method, &why)) {
    *error = "cannot recover " + dir + ": RUNMETA names method \"" +
             meta.method + "\" this build rejects: " + why;
    return false;
  }
  result->clusterer = MakeMethod(meta.method, meta.params);
  result->ops.clear();
  result->notes.clear();

  // Collect first, apply after: a hard replay error must not leave a
  // half-replayed clusterer in the result.
  if (!ReplayWal(
          dir, [&](const WalOp& op) { result->ops.push_back(op); },
          &result->wal, error)) {
    return false;
  }
  if (result->wal.truncated) {
    result->notes.push_back(
        "wal tail truncated at " + result->wal.truncated_file + " offset " +
        std::to_string(result->wal.truncated_offset) + ": " +
        result->wal.truncation_reason +
        " (ops past this point were never acknowledged)");
  }

  for (const WalOp& op : result->ops) {
    if (op.type == WalOp::Type::kInsert) {
      if (op.dim != meta.params.dim) {
        *error = "wal record seq " + std::to_string(op.seq) +
                 " carries a dim-" + std::to_string(op.dim) +
                 " point but RUNMETA says dim " +
                 std::to_string(meta.params.dim) +
                 ": log does not belong to this run";
        return false;
      }
      const PointId got = result->clusterer->Insert(op.point);
      if (got != op.id) {
        *error = "replay divergence at wal seq " + std::to_string(op.seq) +
                 ": log says insert was assigned id " +
                 std::to_string(op.id) + " but method \"" + meta.method +
                 "\" assigned " + std::to_string(got) +
                 "; the log was not produced by this method/params";
        return false;
      }
    } else {
      result->clusterer->Delete(op.id);
    }
  }
  result->clusterer->Flush();
  DDC_COUNTER_ADD("persist.recovery_replayed_ops",
                  static_cast<int64_t>(result->ops.size()));
  DDC_COUNTER_INC("persist.recoveries");
  result->notes.push_back(
      "replayed " + std::to_string(result->ops.size()) + " ops from " +
      std::to_string(result->wal.segments) + " wal segment(s), last seq " +
      std::to_string(result->wal.last_seq));

  // The snapshot side: best-effort, never fatal. A snapshot newer than the
  // replayed log would mean the log lost acknowledged data — that *is*
  // fatal, because the snapshot proves those ops were applied.
  result->snapshot =
      LoadNewestValidSnapshot(dir, &result->snapshot_meta, &result->notes);
  if (result->snapshot != nullptr) {
    if (result->snapshot_meta.last_seq > result->wal.last_seq) {
      *error = "snapshot covers wal seq " +
               std::to_string(result->snapshot_meta.last_seq) +
               " but the log only replays to seq " +
               std::to_string(result->wal.last_seq) +
               ": wal lost acknowledged records";
      return false;
    }
    result->notes.push_back(
        "loaded snapshot " + SnapshotFileName(result->snapshot_meta.last_seq) +
        " (" + result->snapshot_meta.kind + ", epoch " +
        std::to_string(result->snapshot_meta.epoch) + ", covers seq " +
        std::to_string(result->snapshot_meta.last_seq) + ")");
  }
  return true;
}

bool RecoverFromDir(const std::string& dir, RecoveryResult* result,
                    RunMeta* meta, std::string* error) {
  RunMeta local;
  if (meta == nullptr) meta = &local;
  if (!ReadRunMeta(dir, meta, error)) return false;
  return Recover(dir, *meta, result, error);
}

}  // namespace ddc
