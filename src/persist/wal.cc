#include "persist/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "telemetry/metrics.h"

namespace ddc {

namespace {

constexpr char kSegmentMagic[8] = {'D', 'D', 'C', 'W', 'A', 'L', '0', '1'};
constexpr size_t kSegmentHeaderBytes = 8 + 8 + 4;  // magic + first_seq + crc
constexpr size_t kRecordHeaderBytes = 4 + 4;       // length + crc

std::string At(const std::string& file, int64_t offset) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " at offset %lld",
                static_cast<long long>(offset));
  return file + buf;
}

}  // namespace

std::string EncodeWalOp(const WalOp& op) {
  std::string out;
  out.push_back(static_cast<char>(op.type));
  AppendLe64(out, op.seq);
  AppendLe32(out, static_cast<uint32_t>(op.id));
  if (op.type == WalOp::Type::kInsert) {
    DDC_CHECK(op.dim >= 1 && op.dim <= kMaxDim);
    out.push_back(static_cast<char>(op.dim));
    for (int k = 0; k < op.dim; ++k) AppendLeDouble(out, op.point[k]);
  }
  return out;
}

bool DecodeWalOp(std::string_view payload, WalOp* op) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  if (payload.size() < 1 + 8 + 4) return false;
  const uint8_t type = p[0];
  if (type != static_cast<uint8_t>(WalOp::Type::kInsert) &&
      type != static_cast<uint8_t>(WalOp::Type::kDelete)) {
    return false;
  }
  op->type = static_cast<WalOp::Type>(type);
  op->seq = ReadLe64(p + 1);
  op->id = static_cast<PointId>(ReadLe32(p + 9));
  op->dim = 0;
  op->point = Point();
  if (op->type == WalOp::Type::kDelete) {
    return payload.size() == 1 + 8 + 4;
  }
  if (payload.size() < 1 + 8 + 4 + 1) return false;
  op->dim = p[13];
  if (op->dim < 1 || op->dim > kMaxDim) return false;
  if (payload.size() != 1 + 8 + 4 + 1 + static_cast<size_t>(op->dim) * 8) {
    return false;
  }
  for (int k = 0; k < op->dim; ++k) {
    op->point[k] = ReadLeDouble(p + 14 + static_cast<size_t>(k) * 8);
  }
  return true;
}

bool AppendWalRecord(WritableFile& file, std::string_view payload) {
  DDC_CHECK(payload.size() <= kWalMaxRecordBytes);
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  AppendLe32(frame, static_cast<uint32_t>(payload.size()));
  AppendLe32(frame, Crc32(payload));
  frame.append(payload);
  return file.Append(frame);
}

std::string WalSegmentName(uint64_t first_seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%016" PRIx64 ".log", first_seq);
  return buf;
}

WalWriter::WalWriter(std::string path, bool single_file,
                     const Options& options)
    : options_(options), single_file_(single_file) {
  if (!options_.factory) options_.factory = DefaultFileFactory();
  next_seq_ = options_.start_seq;
  if (single_file_) {
    single_path_ = std::move(path);
  } else {
    dir_ = std::move(path);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // A writer never appends to (or clobbers) a log it did not write:
    // recovery owns pre-existing segments.
    std::vector<std::string> existing;
    std::string list_error;
    if (!ListWalSegments(dir_, &existing, &list_error)) {
      Latch("wal dir unusable: " + list_error);
      return;
    }
    if (!existing.empty()) {
      Latch("wal dir " + dir_ + " already contains " +
            std::to_string(existing.size()) +
            " segment(s); refusing to append (recover or use a fresh dir)");
      return;
    }
  }
  OpenSegment(next_seq_);
}

WalWriter::WalWriter(const std::string& dir, const Options& options)
    : WalWriter(dir, /*single_file=*/false, options) {}

std::unique_ptr<WalWriter> WalWriter::OpenSingleFile(const std::string& path,
                                                     const Options& options) {
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, /*single_file=*/true, options));
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Latch(const std::string& error) {
  DDC_COUNTER_INC("wal.errors");
  if (error_.empty()) error_ = error;
}

bool WalWriter::OpenSegment(uint64_t first_seq) {
  const std::string path =
      single_file_ ? single_path_ : dir_ + "/" + WalSegmentName(first_seq);
  file_ = options_.factory(path);
  std::string header;
  header.append(kSegmentMagic, sizeof(kSegmentMagic));
  AppendLe64(header, first_seq);
  AppendLe32(header, Crc32(header.data() + 8, 8));
  if (!file_->Append(header) || !file_->Flush()) {
    Latch("wal segment open failed: " + file_->error());
    return false;
  }
  ++segments_opened_;
  DDC_COUNTER_INC("wal.segments_opened");
  return true;
}

bool WalWriter::Append(WalOp& op) {
  if (!ok()) return false;
  DDC_HISTOGRAM_SCOPED("wal.append");
  op.seq = next_seq_;
  // Rotate before the record so a segment never splits one.
  if (!single_file_ && file_->bytes_written() >= options_.segment_bytes) {
    if (!file_->Sync() || !file_->Close()) {
      Latch("wal rotation failed: " + file_->error());
      return false;
    }
    DDC_COUNTER_INC("wal.rotations");
    if (!OpenSegment(next_seq_)) return false;
    unsynced_records_ = 0;
  }
  const std::string payload = EncodeWalOp(op);
  if (!AppendWalRecord(*file_, payload)) {
    Latch("wal append failed: " + file_->error());
    return false;
  }
  ++next_seq_;
  total_bytes_ += static_cast<int64_t>(kRecordHeaderBytes + payload.size());
  DDC_COUNTER_INC("wal.records");
  DDC_COUNTER_ADD("wal.bytes",
                  static_cast<int64_t>(kRecordHeaderBytes + payload.size()));
  ++unsynced_records_;
  if (options_.sync_every > 0 && unsynced_records_ >= options_.sync_every) {
    return Sync();
  }
  // No-fsync mode still pushes every record to the OS: a SIGKILL (or any
  // process death) loses nothing, only a kernel/power failure can.
  if (!file_->Flush()) {
    Latch("wal flush failed: " + file_->error());
    return false;
  }
  return true;
}

bool WalWriter::Sync() {
  if (!ok()) return false;
  if (unsynced_records_ == 0) return true;
  {
    DDC_HISTOGRAM_SCOPED("wal.fsync");
    if (!file_->Sync()) {
      Latch("wal sync failed: " + file_->error());
      return false;
    }
  }
  unsynced_records_ = 0;
  DDC_COUNTER_INC("wal.syncs");
  return true;
}

bool WalWriter::Close() {
  if (file_ == nullptr) return ok();
  Sync();
  if (!file_->Close()) Latch("wal close failed: " + file_->error());
  file_.reset();
  return ok();
}

bool ListWalSegments(const std::string& dir, std::vector<std::string>* paths,
                     std::string* error) {
  paths->clear();
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) return true;
  std::map<uint64_t, std::string> by_seq;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0 || name.size() != 4 + 16 + 4 ||
        name.substr(20) != ".log") {
      continue;
    }
    uint64_t first_seq = 0;
    const std::string hex = name.substr(4, 16);
    if (std::sscanf(hex.c_str(), "%16" SCNx64, &first_seq) != 1) {
      if (error != nullptr) {
        *error = "unparsable wal segment name: " + entry.path().string();
      }
      return false;
    }
    auto [it, inserted] = by_seq.emplace(first_seq, entry.path().string());
    if (!inserted) {
      if (error != nullptr) {
        *error = "duplicated wal segment first_seq " +
                 std::to_string(first_seq) + ": " + it->second + " and " +
                 entry.path().string();
      }
      return false;
    }
  }
  if (ec) {
    if (error != nullptr) *error = "cannot list " + dir + ": " + ec.message();
    return false;
  }
  for (auto& [seq, path] : by_seq) paths->push_back(std::move(path));
  return true;
}

bool ReplayWalFile(const std::string& path, uint64_t expect_first_seq,
                   bool is_last, const std::function<void(const WalOp&)>& fn,
                   WalReplayReport* report, std::string* error) {
  std::string data;
  std::string read_error;
  if (!ReadFileToString(path, &data, &read_error)) {
    if (error != nullptr) *error = read_error;
    return false;
  }
  ++report->segments;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());

  // Header. A final segment shorter than the header is a rotation the crash
  // cut off before any record could have been acknowledged into it.
  if (data.size() < kSegmentHeaderBytes) {
    if (is_last) {
      report->truncated = true;
      report->truncated_file = path;
      report->truncated_offset = 0;
      report->truncation_reason = "torn segment header";
      return true;
    }
    if (error != nullptr) {
      *error = "torn segment header in non-final segment " + At(path, 0);
    }
    return false;
  }
  if (std::string_view(data.data(), 8) !=
      std::string_view(kSegmentMagic, 8)) {
    if (error != nullptr) *error = "bad wal magic in " + At(path, 0);
    return false;
  }
  const uint64_t first_seq = ReadLe64(bytes + 8);
  if (ReadLe32(bytes + 16) != Crc32(data.data() + 8, 8)) {
    if (error != nullptr) *error = "corrupt wal header CRC in " + At(path, 8);
    return false;
  }
  if (expect_first_seq != 0 && first_seq != expect_first_seq) {
    if (error != nullptr) {
      *error = "wal segment " + path + " header claims first_seq " +
               std::to_string(first_seq) + ", expected " +
               std::to_string(expect_first_seq) +
               " (renamed, duplicated, or missing segment)";
    }
    return false;
  }

  uint64_t expect_seq = first_seq;
  size_t off = kSegmentHeaderBytes;
  while (off < data.size()) {
    // The record header, payload, or CRC may be cut short by a torn write;
    // in the final segment that is the legitimate crash tail.
    std::string reason;
    WalOp op;
    if (off + kRecordHeaderBytes > data.size()) {
      reason = "torn record header";
    } else {
      const uint32_t len = ReadLe32(bytes + off);
      const uint32_t crc = ReadLe32(bytes + off + 4);
      if (len > kWalMaxRecordBytes) {
        reason = "record length " + std::to_string(len) +
                 " exceeds maximum (corrupt length field)";
      } else if (off + kRecordHeaderBytes + len > data.size()) {
        reason = "torn record payload";
      } else {
        const std::string_view payload(data.data() + off + kRecordHeaderBytes,
                                       len);
        if (Crc32(payload) != crc) {
          reason = "payload CRC mismatch";
        } else if (!DecodeWalOp(payload, &op)) {
          reason = "undecodable payload";
        } else if (op.seq != expect_seq) {
          // A well-checksummed record with the wrong sequence number is not
          // a torn write — it is a reordered or duplicated record, and
          // skipping it would silently drop acknowledged data.
          if (error != nullptr) {
            *error = "wal record seq " + std::to_string(op.seq) +
                     " where " + std::to_string(expect_seq) +
                     " was expected in " + At(path, static_cast<int64_t>(off));
          }
          return false;
        }
      }
    }
    if (!reason.empty()) {
      if (is_last) {
        report->truncated = true;
        report->truncated_file = path;
        report->truncated_offset = static_cast<int64_t>(off);
        report->truncation_reason = reason;
        DDC_COUNTER_INC("wal.replay_truncations");
        return true;
      }
      if (error != nullptr) {
        *error = reason + " in non-final segment " +
                 At(path, static_cast<int64_t>(off));
      }
      return false;
    }
    fn(op);
    ++report->records;
    report->last_seq = op.seq;
    DDC_COUNTER_INC("wal.replay_records");
    ++expect_seq;
    off += kRecordHeaderBytes + ReadLe32(bytes + off);
  }
  return true;
}

bool ReplayWal(const std::string& dir,
               const std::function<void(const WalOp&)>& fn,
               WalReplayReport* report, std::string* error) {
  *report = WalReplayReport();
  std::vector<std::string> segments;
  if (!ListWalSegments(dir, &segments, error)) return false;
  uint64_t expect_first = 0;  // First segment: accept the header's value.
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool is_last = i + 1 == segments.size();
    const int64_t records_before = report->records;
    if (!ReplayWalFile(segments[i], expect_first, is_last, fn, report,
                       error)) {
      return false;
    }
    if (report->truncated) break;
    if (is_last) break;
    // A record-free segment is only legitimate as the crash tail (rotation
    // creates a segment immediately before appending into it).
    if (report->records == records_before) {
      if (error != nullptr) {
        *error = "empty non-final wal segment " + segments[i];
      }
      return false;
    }
    // Continuity: the next segment must pick up exactly after this one.
    expect_first = report->last_seq + 1;
  }
  return true;
}

}  // namespace ddc
