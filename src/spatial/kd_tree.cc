#include "spatial/kd_tree.h"

#include <algorithm>

#include "common/check.h"
#include "geom/box.h"

namespace ddc {

struct KdTree::Node {
  PointId id;
  int axis;
  bool dead = false;
  int32_t total = 1;  // Subtree node count, tombstones included.
  int32_t alive = 1;
  // Bounding box of all subtree points (tombstones included: conservative
  // but always valid for pruning; rebuilds drop the slack).
  Point lo, hi;
  Node* left = nullptr;
  Node* right = nullptr;
};

KdTree::KdTree(const void* ctx, CoordFn coords, int dim)
    : ctx_(ctx), coords_(coords), dim_(dim) {
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
}

KdTree::~KdTree() { FreeTree(root_); }

void KdTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  FreeTree(n->left);
  FreeTree(n->right);
  delete n;
}

namespace {

/// Total order on (coordinate, id): duplicates are routed deterministically,
/// so insert, rebuild and remove always agree on which side a point lives.
bool GoesLeft(double coord, PointId id, double split_coord, PointId split_id) {
  return coord < split_coord || (coord == split_coord && id < split_id);
}

}  // namespace

void KdTree::Insert(PointId id) {
  const Point& p = At(id);
  Node** slot = &root_;
  int axis = 0;
  while (*slot != nullptr) {
    Node* n = *slot;
    ++n->total;
    ++n->alive;
    for (int i = 0; i < dim_; ++i) {
      n->lo[i] = std::min(n->lo[i], p[i]);
      n->hi[i] = std::max(n->hi[i], p[i]);
    }
    slot = GoesLeft(p[n->axis], id, At(n->id)[n->axis], n->id) ? &n->left
                                                               : &n->right;
    axis = (n->axis + 1) % dim_;
  }
  Node* leaf = new Node;
  leaf->id = id;
  leaf->axis = axis;
  leaf->lo = p;
  leaf->hi = p;
  *slot = leaf;
  ++alive_;
}

void KdTree::Remove(PointId id) {
  const Point& p = At(id);
  std::vector<Node**> path;
  Node** slot = &root_;
  Node* target = nullptr;
  while (*slot != nullptr) {
    Node* n = *slot;
    path.push_back(slot);
    if (n->id == id) {
      DDC_CHECK(!n->dead);
      target = n;
      break;
    }
    slot = GoesLeft(p[n->axis], id, At(n->id)[n->axis], n->id) ? &n->left
                                                               : &n->right;
  }
  DDC_CHECK(target != nullptr && "id not present");
  target->dead = true;
  for (Node** s : path) --(*s)->alive;
  --alive_;
  MaybeRebuild(path);
}

void KdTree::Collect(Node* n, std::vector<PointId>* out) const {
  if (n == nullptr) return;
  Collect(n->left, out);
  if (!n->dead) out->push_back(n->id);
  Collect(n->right, out);
}

KdTree::Node* KdTree::Build(std::vector<PointId>& ids, int lo, int hi,
                            int axis) {
  if (lo >= hi) return nullptr;
  const int mid = (lo + hi) / 2;
  std::nth_element(ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
                   [&](PointId a, PointId b) {
                     return GoesLeft(At(a)[axis], a, At(b)[axis], b);
                   });
  Node* n = new Node;
  n->id = ids[mid];
  n->axis = axis;
  n->lo = At(n->id);
  n->hi = At(n->id);
  n->left = Build(ids, lo, mid, (axis + 1) % dim_);
  n->right = Build(ids, mid + 1, hi, (axis + 1) % dim_);
  n->total = 1;
  n->alive = 1;
  for (Node* c : {n->left, n->right}) {
    if (c == nullptr) continue;
    n->total += c->total;
    n->alive += c->alive;
    for (int i = 0; i < dim_; ++i) {
      n->lo[i] = std::min(n->lo[i], c->lo[i]);
      n->hi[i] = std::max(n->hi[i], c->hi[i]);
    }
  }
  return n;
}

void KdTree::MaybeRebuild(std::vector<Node**>& path) {
  // Rebuild the topmost subtree whose tombstones outnumber its alive
  // points: every node pays O(log) per removal and each rebuild halves the
  // slack, so the cost amortizes. Ancestors above the rebuilt subtree keep
  // counting the dropped tombstones unless adjusted.
  for (size_t k = 0; k < path.size(); ++k) {
    Node* n = *path[k];
    if (n->alive * 2 > n->total) continue;
    std::vector<PointId> ids;
    ids.reserve(n->alive);
    Collect(n, &ids);
    const int axis = n->axis;
    const int32_t dropped = n->total - static_cast<int32_t>(ids.size());
    FreeTree(n);
    *path[k] = Build(ids, 0, static_cast<int>(ids.size()), axis);
    for (size_t j = 0; j < k; ++j) (*path[j])->total -= dropped;
    return;
  }
}

PointId KdTree::FindWithin(const Point& q, double outer_radius) const {
  const double r_sq = outer_radius * outer_radius;
  // Iterative DFS with box pruning; any hit is a valid proof.
  std::vector<Node*> stack;
  if (root_ != nullptr) stack.push_back(root_);
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->alive == 0) continue;
    if (Box(n->lo, n->hi).MinSquaredDistance(q, dim_) > r_sq) continue;
    if (!n->dead && SquaredDistance(q, At(n->id), dim_) <= r_sq) return n->id;
    if (n->left != nullptr) stack.push_back(n->left);
    if (n->right != nullptr) stack.push_back(n->right);
  }
  return kInvalidPoint;
}

void KdTree::ForEach(const std::function<void(PointId)>& fn) const {
  std::vector<PointId> ids;
  Collect(root_, &ids);
  for (const PointId id : ids) fn(id);
}

namespace {

struct CheckStats {
  int total = 0;
  int alive = 0;
};

}  // namespace

void KdTree::CheckInvariants() const {
  // Recursive structural audit (test helper; not on any hot path).
  struct Auditor {
    const KdTree* tree;
    int dim;
    CheckStats Audit(Node* n) {
      CheckStats s;
      if (n == nullptr) return s;
      const Point& p = tree->At(n->id);
      // Box containment: own point and child boxes nest inside this box.
      for (int i = 0; i < dim; ++i) {
        DDC_CHECK(p[i] >= n->lo[i] && p[i] <= n->hi[i]);
        for (Node* c : {n->left, n->right}) {
          if (c == nullptr) continue;
          DDC_CHECK(c->lo[i] >= n->lo[i] && c->hi[i] <= n->hi[i]);
        }
      }
      // Split discipline on the routing order.
      if (n->left != nullptr) {
        DDC_CHECK(n->left->lo[n->axis] <= p[n->axis]);
      }
      if (n->right != nullptr) {
        DDC_CHECK(n->right->hi[n->axis] >= p[n->axis]);
      }
      const CheckStats l = Audit(n->left);
      const CheckStats r = Audit(n->right);
      DDC_CHECK(n->total == 1 + l.total + r.total);
      DDC_CHECK(n->alive == (n->dead ? 0 : 1) + l.alive + r.alive);
      s.total = n->total;
      s.alive = n->alive;
      return s;
    }
  };
  Auditor auditor{this, dim_};
  const CheckStats s = auditor.Audit(root_);
  DDC_CHECK(s.alive == alive_);
}

}  // namespace ddc
