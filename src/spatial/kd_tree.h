#ifndef DDC_SPATIAL_KD_TREE_H_
#define DDC_SPATIAL_KD_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/point.h"

namespace ddc {

/// A dynamic kd-tree over point ids, our stand-in for the approximate
/// nearest-neighbor structures the paper plugs into the emptiness queries
/// (Arya et al. [2]; Chan [5] for exact 2D — see DESIGN.md).
///
/// Coordinates live outside the tree (in the Grid); the tree stores ids and
/// resolves positions through an accessor, so points are never copied.
///
/// Dynamics: insertions descend cyclically by split dimension; deletions
/// tombstone the node and a subtree is rebuilt (scapegoat-style) whenever
/// its dead fraction exceeds 1/2, giving amortized O(log n) updates.
/// Queries maintain per-node subtree bounding boxes for pruning.
class KdTree {
 public:
  /// `coords(id)` must return a stable reference to the point's
  /// coordinates; `dim` is the dimensionality used for splits/distances.
  using CoordFn = const Point& (*)(const void* ctx, PointId id);

  KdTree(const void* ctx, CoordFn coords, int dim);
  ~KdTree();

  KdTree(const KdTree&) = delete;
  KdTree& operator=(const KdTree&) = delete;

  /// Adds a point id (must not be present).
  void Insert(PointId id);

  /// Removes a point id (must be present).
  void Remove(PointId id);

  /// Number of (alive) points.
  int size() const { return alive_; }

  /// Some alive point within `outer_radius` of q, or kInvalidPoint;
  /// guaranteed to find one when some alive point is within `must_radius`
  /// (must_radius <= outer_radius). Matches the ρ-approximate emptiness
  /// contract with must_radius = ε and outer_radius = (1+ρ)ε.
  PointId FindWithin(const Point& q, double outer_radius) const;

  /// Every alive id (rebuild order; for iteration).
  void ForEach(const std::function<void(PointId)>& fn) const;

  /// Internal consistency check (tests): sizes, boxes, split invariants.
  void CheckInvariants() const;

 private:
  struct Node;

  const Point& At(PointId id) const { return coords_(ctx_, id); }

  Node* Build(std::vector<PointId>& ids, int lo, int hi, int axis);
  void Collect(Node* n, std::vector<PointId>* out) const;
  void FreeTree(Node* n);
  /// Rebuilds the highest ancestor on `path` whose dead fraction crossed
  /// the threshold.
  void MaybeRebuild(std::vector<Node**>& path);

  const void* ctx_;
  CoordFn coords_;
  int dim_;
  Node* root_ = nullptr;
  int alive_ = 0;
};

}  // namespace ddc

#endif  // DDC_SPATIAL_KD_TREE_H_
