#include "scenario/scenario.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/flags.h"

namespace ddc {

ScenarioSpec ScenarioSpec::Parse(const std::string& text) {
  ScenarioSpec spec;
  spec.text_ = text;
  const size_t colon = text.find(':');
  spec.name_ = text.substr(0, colon);
  DDC_CHECK(!spec.name_.empty() && "scenario spec needs a name");
  if (colon != std::string::npos) {
    spec.params_ = ParseKeyValueList(text.substr(colon + 1));
  }
  if (const std::string* raw = spec.FindRaw("seed")) {
    // strtoull would silently wrap "-1"; require a plain unsigned integer.
    char* end = nullptr;
    errno = 0;
    spec.seed_ = static_cast<uint64_t>(std::strtoull(raw->c_str(), &end, 10));
    DDC_CHECK(end != raw->c_str() && *end == '\0' && (*raw)[0] != '-' &&
              errno == 0 && "scenario seed is not an unsigned integer");
    spec.seed_from_spec_ = true;
    spec.consumed_.insert("seed");
  }
  return spec;
}

const std::string* ScenarioSpec::FindRaw(const std::string& key) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : params_) {
    if (k == key) found = &v;  // Last occurrence wins.
  }
  return found;
}

int64_t ScenarioSpec::GetInt(const std::string& key, int64_t def) const {
  consumed_.insert(key);
  const std::string* raw = FindRaw(key);
  if (raw == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  const int64_t value = std::strtoll(raw->c_str(), &end, 10);
  DDC_CHECK(end != raw->c_str() && *end == '\0' && errno == 0 &&
            "scenario parameter is not an integer");
  return value;
}

double ScenarioSpec::GetDouble(const std::string& key, double def) const {
  consumed_.insert(key);
  const std::string* raw = FindRaw(key);
  if (raw == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(raw->c_str(), &end);
  DDC_CHECK(end != raw->c_str() && *end == '\0' && errno == 0 &&
            "scenario parameter is not a number");
  return value;
}

void ScenarioSpec::CheckAllKeysConsumed() const {
  for (const auto& [k, v] : params_) {
    if (consumed_.count(k) == 0) {
      std::fprintf(stderr, "scenario '%s': unknown parameter '%s=%s'\n",
                   name_.c_str(), k.c_str(), v.c_str());
      DDC_CHECK(false && "unknown scenario parameter");
    }
  }
}

const Scenario* FindScenario(const std::string& name) {
  for (const auto& s : AllScenarios()) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

Workload BuildScenarioWorkload(const std::string& spec_text,
                               uint64_t default_seed) {
  ScenarioSpec spec = ScenarioSpec::Parse(spec_text);
  const Scenario* scenario = FindScenario(spec.name());
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; available:\n%s",
                 spec.name().c_str(), ScenarioHelp().c_str());
    DDC_CHECK(false && "unknown scenario");
  }
  spec.set_seed(default_seed);
  Workload w = scenario->Generate(spec);
  spec.CheckAllKeysConsumed();
  DDC_CHECK(w.dim > 0 && "scenario must set Workload::dim");
  w.seed = spec.seed();  // Effective seed (a spec seed= key beats the flag).
  return w;
}

std::string ScenarioHelp() {
  std::string out;
  for (const auto& s : AllScenarios()) {
    out += "  " + s->name() + "\n      " + s->help() + "\n";
  }
  return out;
}

}  // namespace ddc
