#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "geom/point.h"
#include "scenario/scenario.h"
#include "workload/seed_spreader.h"
#include "workload/workload.h"

namespace ddc {
namespace {

/// Emits operations while tracking the alive set, so every generator gets
/// delete-only-alive and query-only-alive invariants (and the paper's query
/// cadence: one C-group-by with |Q| ~ U[qmin, qmax] every `query_every`
/// updates) for free.
class WorkloadBuilder {
 public:
  WorkloadBuilder(Rng& rng, int dim, int64_t query_every, int query_min,
                  int query_max)
      : rng_(rng),
        query_every_(query_every),
        query_min_(query_min),
        query_max_(query_max) {
    w_.dim = dim;
  }

  /// Registers a point and immediately emits its insertion.
  int64_t InsertNew(const Point& p) {
    const int64_t idx = static_cast<int64_t>(w_.points.size());
    w_.points.push_back(p);
    pos_.push_back(static_cast<int64_t>(alive_.size()));
    alive_.push_back(idx);
    Operation op;
    op.type = Operation::Type::kInsert;
    op.target = idx;
    w_.ops.push_back(std::move(op));
    ++w_.num_inserts;
    AfterUpdate();
    return idx;
  }

  /// Deletes a specific alive insertion index.
  void Delete(int64_t idx) {
    DDC_CHECK(idx >= 0 && idx < static_cast<int64_t>(pos_.size()) &&
              pos_[idx] >= 0);
    const int64_t slot = pos_[idx];
    const int64_t last = alive_.back();
    alive_[slot] = last;
    pos_[last] = slot;
    alive_.pop_back();
    pos_[idx] = kDeleted;
    Operation op;
    op.type = Operation::Type::kDelete;
    op.target = idx;
    w_.ops.push_back(std::move(op));
    ++w_.num_deletes;
    AfterUpdate();
  }

  void DeleteRandomAlive() {
    DDC_CHECK(!alive_.empty());
    Delete(alive_[rng_.NextBelow(alive_.size())]);
  }

  /// Deletes the alive point with the smallest insertion index (FIFO
  /// expiry for sliding-window / drifting streams).
  void DeleteOldestAlive() {
    DDC_CHECK(!alive_.empty());
    while (oldest_ < static_cast<int64_t>(pos_.size()) && pos_[oldest_] < 0) {
      ++oldest_;
    }
    DDC_CHECK(oldest_ < static_cast<int64_t>(pos_.size()));
    Delete(oldest_);
  }

  int64_t alive_count() const { return static_cast<int64_t>(alive_.size()); }
  int64_t updates() const { return w_.num_inserts + w_.num_deletes; }

  Workload Finish() {
    w_.num_updates = w_.num_inserts + w_.num_deletes;
    return std::move(w_);
  }

 private:
  static constexpr int64_t kDeleted = -2;  // pos_: -1 = never alive yet.

  void AfterUpdate() {
    if (query_every_ <= 0 || updates() % query_every_ != 0 ||
        alive_.empty()) {
      return;
    }
    const int64_t hi =
        std::min<int64_t>(query_max_, static_cast<int64_t>(alive_.size()));
    const int64_t lo = std::min<int64_t>(query_min_, hi);
    const int want = static_cast<int>(rng_.NextInRange(lo, hi));
    Operation op;
    op.type = Operation::Type::kQuery;
    std::vector<int64_t> scratch(alive_);
    for (int k = 0; k < want; ++k) {
      const size_t j = k + rng_.NextBelow(scratch.size() - k);
      std::swap(scratch[k], scratch[j]);
      op.query.push_back(scratch[k]);
    }
    w_.ops.push_back(std::move(op));
    ++w_.num_queries;
  }

  Rng& rng_;
  Workload w_;
  std::vector<int64_t> alive_;  // Insertion indices, unordered.
  std::vector<int64_t> pos_;    // Insertion index -> slot in alive_.
  int64_t oldest_ = 0;
  int64_t query_every_;
  int64_t query_min_;
  int64_t query_max_;
};

/// The query-cadence keys every builder-based scenario shares.
struct CommonKeys {
  int64_t n;
  int dim;
  int64_t query_every;
  int query_min;
  int query_max;
};

CommonKeys ReadCommonKeys(const ScenarioSpec& spec, int64_t default_n,
                          int default_dim, int64_t default_qevery) {
  CommonKeys keys;
  keys.n = spec.GetInt("n", default_n);
  keys.dim = static_cast<int>(spec.GetInt("dim", default_dim));
  keys.query_every = spec.GetInt("qevery", default_qevery);
  keys.query_min = static_cast<int>(spec.GetInt("qmin", 2));
  keys.query_max = static_cast<int>(spec.GetInt("qmax", 100));
  DDC_CHECK(keys.n > 0);
  DDC_CHECK(keys.dim >= 1 && keys.dim <= kMaxDim);
  return keys;
}

/// A point uniform in [0, extent)^dim.
Point UniformPoint(Rng& rng, int dim, double extent) {
  Point p;
  for (int i = 0; i < dim; ++i) p[i] = rng.NextDouble(0, extent);
  return p;
}

// ---------------------------------------------------------------------------
// paper-mixed — the paper's Section 8.1 recipe, wrapped.

class PaperMixedScenario : public Scenario {
 public:
  std::string name() const override { return "paper-mixed"; }
  std::string help() const override {
    return "Section 8.1 seed-spreader workload (shuffled inserts, good-prefix"
           " deletes). Keys: n=100000, ins=0.8333, dim=3, qevery=1000,"
           " qmin=2, qmax=100, extent=100000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    WorkloadConfig config;
    config.num_updates = spec.GetInt("n", 100000);
    config.insert_fraction = spec.GetDouble("ins", 5.0 / 6.0);
    config.query_every = spec.GetInt("qevery", 1000);
    config.query_min = static_cast<int>(spec.GetInt("qmin", 2));
    config.query_max = static_cast<int>(spec.GetInt("qmax", 100));
    config.spreader.dim = static_cast<int>(spec.GetInt("dim", 3));
    config.spreader.extent = spec.GetDouble("extent", 100000.0);
    config.seed = spec.seed();
    return BuildWorkload(config);
  }
};

// ---------------------------------------------------------------------------
// sliding-window — a streaming window over a seed-spreader walk.

class SlidingWindowScenario : public Scenario {
 public:
  std::string name() const override { return "sliding-window"; }
  std::string help() const override {
    return "Stream over a spreader walk: insert in walk order, expire the"
           " oldest point once the window fills (FIFO churn, clusters decay"
           " behind the walker). Keys: n=100000, window=n/4, dim=3,"
           " qevery=1000, qmin, qmax, extent=20000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    const CommonKeys keys = ReadCommonKeys(spec, 100000, 3, 1000);
    const int64_t window =
        std::max<int64_t>(1, spec.GetInt("window", keys.n / 4));
    const double extent = spec.GetDouble("extent", 20000.0);

    Rng rng(spec.seed());
    // Once the window is full every further step costs two updates
    // (insert + expiry), so k inserts produce 2k - window updates.
    const int64_t inserts =
        window >= keys.n ? keys.n : (keys.n + window + 1) / 2;
    SeedSpreaderConfig spreader;
    spreader.dim = keys.dim;
    spreader.extent = extent;
    spreader.num_points = inserts;
    // Walk order, deliberately NOT shuffled: the stream has locality.
    const std::vector<Point> stream = GenerateSeedSpreader(spreader, rng);

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    for (const Point& p : stream) {
      if (b.updates() >= keys.n) break;
      b.InsertNew(p);
      if (b.alive_count() > window && b.updates() < keys.n) {
        b.DeleteOldestAlive();
      }
    }
    return b.Finish();
  }
};

// ---------------------------------------------------------------------------
// burst — insert waves into random hotspots, partial delete waves after.

class BurstScenario : public Scenario {
 public:
  std::string name() const override { return "burst"; }
  std::string help() const override {
    return "Bursty waves: insert a burst into a random hotspot, then delete"
           " a dup-fraction wave of random points. Keys: n=100000,"
           " burst=1000, dup=0.3, clusters=10, radius=100, noise=0.05,"
           " dim=3, qevery=1000, qmin, qmax, extent=20000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    const CommonKeys keys = ReadCommonKeys(spec, 100000, 3, 1000);
    const int64_t burst = std::max<int64_t>(1, spec.GetInt("burst", 1000));
    const double dup = spec.GetDouble("dup", 0.3);
    const int clusters =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("clusters", 10)));
    const double radius = spec.GetDouble("radius", 100.0);
    const double noise = spec.GetDouble("noise", 0.05);
    const double extent = spec.GetDouble("extent", 20000.0);
    DDC_CHECK(dup >= 0 && dup < 1);

    Rng rng(spec.seed());
    std::vector<Point> centers;
    for (int c = 0; c < clusters; ++c) {
      centers.push_back(UniformPoint(rng, keys.dim, extent));
    }

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    while (b.updates() < keys.n) {
      const Point& center = centers[rng.NextBelow(centers.size())];
      const int64_t wave = std::min(burst, keys.n - b.updates());
      for (int64_t i = 0; i < wave; ++i) {
        b.InsertNew(rng.NextBernoulli(noise)
                        ? UniformPoint(rng, keys.dim, extent)
                        : UniformInBall(center, radius, keys.dim, rng));
      }
      int64_t deletes = static_cast<int64_t>(
          std::floor(dup * static_cast<double>(wave)));
      deletes = std::min({deletes, b.alive_count() - 1,
                          keys.n - b.updates()});
      for (int64_t i = 0; i < deletes; ++i) b.DeleteRandomAlive();
    }
    return b.Finish();
  }
};

// ---------------------------------------------------------------------------
// zipf — Zipf-skewed cluster sizes: a few giants, a long tail.

class ZipfScenario : public Scenario {
 public:
  std::string name() const override { return "zipf"; }
  std::string help() const override {
    return "Mixed updates whose inserts pick a cluster Zipf(alpha)-skewed by"
           " rank, so a few clusters grow huge while the tail stays sparse."
           " Keys: n=100000, clusters=50, alpha=1.0, ins=0.9, radius=100,"
           " noise=0.02, dim=3, qevery=1000, qmin, qmax, extent=50000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    const CommonKeys keys = ReadCommonKeys(spec, 100000, 3, 1000);
    const int clusters =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("clusters", 50)));
    const double alpha = spec.GetDouble("alpha", 1.0);
    const double ins = spec.GetDouble("ins", 0.9);
    const double radius = spec.GetDouble("radius", 100.0);
    const double noise = spec.GetDouble("noise", 0.02);
    const double extent = spec.GetDouble("extent", 50000.0);
    DDC_CHECK(ins > 0 && ins <= 1);

    Rng rng(spec.seed());
    std::vector<Point> centers;
    for (int c = 0; c < clusters; ++c) {
      centers.push_back(UniformPoint(rng, keys.dim, extent));
    }
    // Cumulative Zipf weights over cluster ranks: weight(r) = 1/(r+1)^alpha.
    std::vector<double> cdf(clusters);
    double total = 0;
    for (int r = 0; r < clusters; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
      cdf[r] = total;
    }
    for (double& v : cdf) v /= total;

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    while (b.updates() < keys.n) {
      const bool do_insert =
          b.alive_count() <= 1 || rng.NextBernoulli(ins);
      if (!do_insert) {
        b.DeleteRandomAlive();
        continue;
      }
      if (rng.NextBernoulli(noise)) {
        b.InsertNew(UniformPoint(rng, keys.dim, extent));
        continue;
      }
      const double u = rng.NextDouble();
      const int rank = static_cast<int>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      b.InsertNew(UniformInBall(centers[std::min(rank, clusters - 1)], radius,
                                keys.dim, rng));
    }
    return b.Finish();
  }
};

// ---------------------------------------------------------------------------
// drift — cluster centers wander; points expire, so clusters really move.

class DriftScenario : public Scenario {
 public:
  std::string name() const override { return "drift"; }
  std::string help() const override {
    return "Drifting clusters: centers random-walk (step `drift` per update,"
           " reflecting at the extent walls), inserts land near current"
           " centers, points expire FIFO once `window` fills — clusters"
           " physically migrate. Keys: n=100000, clusters=10, drift=2.0,"
           " window=n/4, radius=100, dim=3, qevery=1000, qmin, qmax,"
           " extent=20000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    const CommonKeys keys = ReadCommonKeys(spec, 100000, 3, 1000);
    const int clusters =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("clusters", 10)));
    const double drift = spec.GetDouble("drift", 2.0);
    const int64_t window =
        std::max<int64_t>(1, spec.GetInt("window", keys.n / 4));
    const double radius = spec.GetDouble("radius", 100.0);
    const double extent = spec.GetDouble("extent", 20000.0);

    Rng rng(spec.seed());
    std::vector<Point> centers;
    std::vector<Point> velocity(clusters);
    for (int c = 0; c < clusters; ++c) {
      centers.push_back(UniformPoint(rng, keys.dim, extent));
      // A random direction scaled to `drift` per update.
      const Point dir = UniformInBall(Point{}, 1.0, keys.dim, rng);
      double norm = 0;
      for (int i = 0; i < keys.dim; ++i) norm += dir[i] * dir[i];
      norm = std::sqrt(std::max(norm, 1e-12));
      for (int i = 0; i < keys.dim; ++i) {
        velocity[c][i] = dir[i] / norm * drift;
      }
    }

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    while (b.updates() < keys.n) {
      for (int c = 0; c < clusters; ++c) {
        for (int i = 0; i < keys.dim; ++i) {
          double x = centers[c][i] + velocity[c][i];
          if (x < 0 || x > extent) {
            velocity[c][i] = -velocity[c][i];
            x = std::clamp(x, 0.0, extent);
          }
          centers[c][i] = x;
        }
      }
      const int c = static_cast<int>(rng.NextBelow(clusters));
      b.InsertNew(UniformInBall(centers[c], radius, keys.dim, rng));
      if (b.alive_count() > window && b.updates() < keys.n) {
        b.DeleteOldestAlive();
      }
    }
    return b.Finish();
  }
};

// ---------------------------------------------------------------------------
// hotspot — spatially skewed stream hammering one thin slab of space.

class HotspotScenario : public Scenario {
 public:
  std::string name() const override { return "hotspot"; }
  std::string help() const override {
    return "Spatially skewed mixed stream: a `hot` fraction of inserts lands"
           " in a thin band ([0, band*extent) along dimension 0) packed with"
           " dense blobs, the rest spreads over sparse blobs in the remaining"
           " space; deletes hit random alive points, so churn concentrates"
           " where the points are. Built to expose shard imbalance in the"
           " sharded engine (one slab absorbs most of the load). Keys:"
           " n=100000, hot=0.85, band=0.08, clusters=8, cold=20, ins=0.85,"
           " radius=100, noise=0.03, dim=3, qevery=1000, qmin, qmax,"
           " extent=50000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    const CommonKeys keys = ReadCommonKeys(spec, 100000, 3, 1000);
    const double hot = spec.GetDouble("hot", 0.85);
    const double band = spec.GetDouble("band", 0.08);
    const int clusters =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("clusters", 8)));
    const int cold =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("cold", 20)));
    const double ins = spec.GetDouble("ins", 0.85);
    const double radius = spec.GetDouble("radius", 100.0);
    const double noise = spec.GetDouble("noise", 0.03);
    const double extent = spec.GetDouble("extent", 50000.0);
    DDC_CHECK(hot >= 0 && hot <= 1);
    DDC_CHECK(band > 0 && band <= 1);
    DDC_CHECK(ins > 0 && ins <= 1);

    Rng rng(spec.seed());
    const double band_hi = band * extent;
    // Hot blob centers squeeze into the band along dim 0 (full extent on the
    // other dimensions); cold centers go anywhere outside it.
    std::vector<Point> hot_centers, cold_centers;
    for (int c = 0; c < clusters; ++c) {
      Point p = UniformPoint(rng, keys.dim, extent);
      p[0] = rng.NextDouble(0, band_hi);
      hot_centers.push_back(p);
    }
    for (int c = 0; c < cold; ++c) {
      Point p = UniformPoint(rng, keys.dim, extent);
      p[0] = band_hi + rng.NextDouble(0, extent - band_hi);
      cold_centers.push_back(p);
    }

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    while (b.updates() < keys.n) {
      const bool do_insert = b.alive_count() <= 1 || rng.NextBernoulli(ins);
      if (!do_insert) {
        // Random-alive deletes inherit the spatial skew: most alive points
        // sit in the band, so most churn lands there too.
        b.DeleteRandomAlive();
        continue;
      }
      const bool in_band = rng.NextBernoulli(hot);
      if (rng.NextBernoulli(noise)) {
        Point p = UniformPoint(rng, keys.dim, extent);
        p[0] = in_band ? rng.NextDouble(0, band_hi)
                       : band_hi + rng.NextDouble(0, extent - band_hi);
        b.InsertNew(p);
        continue;
      }
      const std::vector<Point>& centers =
          in_band ? hot_centers : cold_centers;
      b.InsertNew(UniformInBall(centers[rng.NextBelow(centers.size())],
                                radius, keys.dim, rng));
    }
    return b.Finish();
  }
};

// ---------------------------------------------------------------------------
// hotspot-migrate — a hot band whose center jumps around the space.

class HotspotMigrateScenario : public Scenario {
 public:
  std::string name() const override { return "hotspot-migrate"; }
  std::string help() const override {
    return "Moving hotspot: like `hotspot`, but the hot band (width"
           " band*extent along dimension 0) jumps to a fresh random location"
           " every `period` updates and its dense blobs are re-drawn inside"
           " the new band; deletes expire the oldest alive point (FIFO), so"
           " abandoned bands actually drain. Built to force repeated"
           " split/merge cycles in the elastic sharded engine: wherever the"
           " band sits turns hot, wherever it left goes cold. Keys: n=100000,"
           " period=n/6, hot=0.85, band=0.08, clusters=8, cold=12, ins=0.7,"
           " radius=100, noise=0.03, dim=3, qevery=1000, qmin, qmax,"
           " extent=50000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    const CommonKeys keys = ReadCommonKeys(spec, 100000, 3, 1000);
    const int64_t period =
        std::max<int64_t>(1, spec.GetInt("period", keys.n / 6));
    const double hot = spec.GetDouble("hot", 0.85);
    const double band = spec.GetDouble("band", 0.08);
    const int clusters =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("clusters", 8)));
    const int cold =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("cold", 12)));
    const double ins = spec.GetDouble("ins", 0.7);
    const double radius = spec.GetDouble("radius", 100.0);
    const double noise = spec.GetDouble("noise", 0.03);
    const double extent = spec.GetDouble("extent", 50000.0);
    DDC_CHECK(hot >= 0 && hot <= 1);
    DDC_CHECK(band > 0 && band <= 1);
    DDC_CHECK(ins > 0 && ins <= 1);

    Rng rng(spec.seed());
    const double band_w = band * extent;
    // Cold blobs are fixed for the whole run: a sparse background the band
    // wanders across.
    std::vector<Point> cold_centers;
    for (int c = 0; c < cold; ++c) {
      cold_centers.push_back(UniformPoint(rng, keys.dim, extent));
    }

    double band_lo = 0;
    std::vector<Point> hot_centers;
    const auto rehome = [&] {
      band_lo = rng.NextDouble(0, std::max(extent - band_w, 0.0));
      hot_centers.clear();
      for (int c = 0; c < clusters; ++c) {
        Point p = UniformPoint(rng, keys.dim, extent);
        p[0] = band_lo + rng.NextDouble(0, band_w);
        hot_centers.push_back(p);
      }
    };
    rehome();

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    int64_t next_hop = period;
    while (b.updates() < keys.n) {
      if (b.updates() >= next_hop) {
        rehome();
        next_hop += period;
      }
      const bool do_insert = b.alive_count() <= 1 || rng.NextBernoulli(ins);
      if (!do_insert) {
        // FIFO expiry drains the previous band once the hotspot moves on —
        // the abandoned slab goes genuinely cold instead of lingering.
        b.DeleteOldestAlive();
        continue;
      }
      const bool in_band = rng.NextBernoulli(hot);
      if (rng.NextBernoulli(noise)) {
        Point p = UniformPoint(rng, keys.dim, extent);
        if (in_band) p[0] = band_lo + rng.NextDouble(0, band_w);
        b.InsertNew(p);
        continue;
      }
      const std::vector<Point>& centers =
          in_band ? hot_centers : cold_centers;
      b.InsertNew(UniformInBall(centers[rng.NextBelow(centers.size())],
                                radius, keys.dim, rng));
    }
    return b.Finish();
  }
};

// ---------------------------------------------------------------------------
// query-storm — update trickle under a heavy C-group-by query mix.

class QueryStormScenario : public Scenario {
 public:
  std::string name() const override { return "query-storm"; }
  std::string help() const override {
    return "Serving-shaped load: a blob population builds up, then churns"
           " slowly (ins-fraction inserts into Zipf-free random blobs,"
           " deletes of random alive points) while large C-group-by queries"
           " fire every qevery updates — the read-heavy inverse of the"
           " update-heavy scenarios, built for the snapshot read path and"
           " --query-threads. Keys: n=40000, clusters=12, ins=0.6,"
           " radius=100, noise=0.02, dim=3, qevery=5, qmin=32, qmax=128,"
           " extent=20000, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    CommonKeys keys;
    keys.n = spec.GetInt("n", 40000);
    keys.dim = static_cast<int>(spec.GetInt("dim", 3));
    keys.query_every = spec.GetInt("qevery", 5);
    keys.query_min = static_cast<int>(spec.GetInt("qmin", 32));
    keys.query_max = static_cast<int>(spec.GetInt("qmax", 128));
    DDC_CHECK(keys.n > 0);
    DDC_CHECK(keys.dim >= 1 && keys.dim <= kMaxDim);
    const int clusters =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("clusters", 12)));
    const double ins = spec.GetDouble("ins", 0.6);
    const double radius = spec.GetDouble("radius", 100.0);
    const double noise = spec.GetDouble("noise", 0.02);
    const double extent = spec.GetDouble("extent", 20000.0);
    DDC_CHECK(ins > 0 && ins <= 1);

    Rng rng(spec.seed());
    std::vector<Point> centers;
    for (int c = 0; c < clusters; ++c) {
      centers.push_back(UniformPoint(rng, keys.dim, extent));
    }

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    while (b.updates() < keys.n) {
      const bool do_insert = b.alive_count() <= 1 || rng.NextBernoulli(ins);
      if (!do_insert) {
        b.DeleteRandomAlive();
        continue;
      }
      if (rng.NextBernoulli(noise)) {
        b.InsertNew(UniformPoint(rng, keys.dim, extent));
        continue;
      }
      b.InsertNew(UniformInBall(centers[rng.NextBelow(centers.size())],
                                radius, keys.dim, rng));
    }
    return b.Finish();
  }
};

// ---------------------------------------------------------------------------
// split-merge — adversarial bridge oscillation between two dense blobs.

class SplitMergeScenario : public Scenario {
 public:
  std::string name() const override { return "split-merge"; }
  std::string help() const override {
    return "Two dense blobs joined by a bridge of points inserted and"
           " deleted cyclically, so the cluster merges and splits every"
           " cycle — worst case for aBCP edge witnesses and HDT replacement"
           "-edge search. Keys: n=10000, eps=200 (geometry scale; match the"
           " clusterer's eps), bridge=8, blob=60, dim=2, qevery=100, qmin,"
           " qmax, seed";
  }

  Workload Generate(const ScenarioSpec& spec) const override {
    const CommonKeys keys = ReadCommonKeys(spec, 10000, 2, 100);
    const double eps = spec.GetDouble("eps", 200.0);
    const int bridge =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("bridge", 8)));
    const int blob =
        static_cast<int>(std::max<int64_t>(1, spec.GetInt("blob", 60)));
    DDC_CHECK(eps > 0);

    Rng rng(spec.seed());
    // Bridge hops of 0.75 eps chain the two blobs into one cluster whenever
    // the bridge is present; without it the blob gap is far beyond eps.
    const double gap = 0.75 * eps;
    const double blob_radius = 0.25 * eps;
    Point a, bcenter;
    for (int i = 0; i < keys.dim; ++i) a[i] = 2.0 * eps;
    bcenter = a;
    bcenter[0] += static_cast<double>(bridge + 1) * gap;

    WorkloadBuilder b(rng, keys.dim, keys.query_every, keys.query_min,
                      keys.query_max);
    // Both blobs, interleaved so neither is fully formed before the other.
    for (int i = 0; i < blob && b.updates() < keys.n; ++i) {
      b.InsertNew(UniformInBall(a, blob_radius, keys.dim, rng));
      if (b.updates() < keys.n) {
        b.InsertNew(UniformInBall(bcenter, blob_radius, keys.dim, rng));
      }
    }
    // Oscillate the bridge until the update budget is spent.
    std::vector<int64_t> live_bridge;
    while (b.updates() < keys.n) {
      live_bridge.clear();
      for (int k = 1; k <= bridge && b.updates() < keys.n; ++k) {
        Point base = a;
        base[0] += static_cast<double>(k) * gap;
        // A little jitter so every cycle stresses fresh witness pairs.
        live_bridge.push_back(
            b.InsertNew(UniformInBall(base, 0.05 * eps, keys.dim, rng)));
      }
      for (const int64_t idx : live_bridge) {
        if (b.updates() >= keys.n) break;
        b.Delete(idx);
      }
    }
    return b.Finish();
  }
};

}  // namespace

const std::vector<std::unique_ptr<Scenario>>& AllScenarios() {
  static const std::vector<std::unique_ptr<Scenario>>* const scenarios = [] {
    auto* all = new std::vector<std::unique_ptr<Scenario>>();
    all->push_back(std::make_unique<PaperMixedScenario>());
    all->push_back(std::make_unique<SlidingWindowScenario>());
    all->push_back(std::make_unique<BurstScenario>());
    all->push_back(std::make_unique<ZipfScenario>());
    all->push_back(std::make_unique<DriftScenario>());
    all->push_back(std::make_unique<HotspotScenario>());
    all->push_back(std::make_unique<HotspotMigrateScenario>());
    all->push_back(std::make_unique<QueryStormScenario>());
    all->push_back(std::make_unique<SplitMergeScenario>());
    return all;
  }();
  return *scenarios;
}

}  // namespace ddc
