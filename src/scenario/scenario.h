#ifndef DDC_SCENARIO_SCENARIO_H_
#define DDC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "workload/workload.h"

namespace ddc {

/// A parsed workload-scenario spec. The mini-grammar is
///
///   spec   := name [ ':' params ]
///   params := key '=' value ( ',' key '=' value )*
///
/// e.g. `burst:n=200000,dup=0.3` or plain `paper-mixed`. Every generator
/// reads its parameters through the typed getters, which record the keys
/// they consumed; the registry then rejects specs containing keys no getter
/// asked for, so typos fail loudly instead of silently running defaults.
class ScenarioSpec {
 public:
  /// Parses `text`; aborts on a malformed spec (empty name, bad key=value
  /// list). The reserved key `seed` is consumed here and overrides whatever
  /// `set_seed` installs.
  static ScenarioSpec Parse(const std::string& text);

  const std::string& name() const { return name_; }
  /// The original spec string, for provenance in BENCH output.
  const std::string& text() const { return text_; }

  /// The workload seed: the spec's `seed=` parameter when present, else the
  /// value installed by `set_seed` (driver --seed), else 1.
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) {
    if (!seed_from_spec_) seed_ = seed;
  }

  /// Typed parameter access; returns `def` when the key is absent. The last
  /// occurrence wins when a key repeats.
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;

  /// Aborts when the spec carries a key no getter consumed.
  void CheckAllKeysConsumed() const;

 private:
  const std::string* FindRaw(const std::string& key) const;

  std::string name_;
  std::string text_;
  uint64_t seed_ = 1;
  bool seed_from_spec_ = false;
  std::vector<std::pair<std::string, std::string>> params_;
  mutable std::set<std::string> consumed_;
};

/// A named, seeded workload generator. Implementations must be
/// deterministic: the same spec (including seed) yields an identical
/// Workload, operation for operation.
class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Registry key, e.g. "sliding-window".
  virtual std::string name() const = 0;

  /// One-line description plus the accepted keys, for --list-scenarios.
  virtual std::string help() const = 0;

  virtual Workload Generate(const ScenarioSpec& spec) const = 0;
};

/// All built-in scenarios, in registry order.
const std::vector<std::unique_ptr<Scenario>>& AllScenarios();

/// Lookup by name; nullptr when unknown.
const Scenario* FindScenario(const std::string& name);

/// One-stop shop: parse `spec_text`, look up the scenario (abort when
/// unknown), install `default_seed` (spec `seed=` wins), generate, and abort
/// on unconsumed keys.
Workload BuildScenarioWorkload(const std::string& spec_text,
                               uint64_t default_seed);

/// Human-readable list of every scenario and its keys.
std::string ScenarioHelp();

}  // namespace ddc

#endif  // DDC_SCENARIO_SCENARIO_H_
