#ifndef DDC_GEOM_BOX_H_
#define DDC_GEOM_BOX_H_

#include "geom/point.h"

namespace ddc {

/// Relative slack applied by the cell-box miss prefilters (emptiness
/// queries, exact range counting): skip a cell only when its box distance
/// exceeds radius² * (1 + slack), absorbing the ~1ulp rounding of both the
/// box-distance arithmetic and the cell-assignment floor so a qualifying
/// point is never mis-skipped. One constant shared by every prefilter —
/// they must agree on boundary cells.
inline constexpr double kBoxPrefilterSlack = 1e-9;

/// Axis-parallel box [lo, hi] in R^d. Used for cell geometry: minimum
/// box-to-box and point-to-box distances decide ε-closeness (Section 4.1 of
/// the paper).
class Box {
 public:
  Box() = default;
  Box(const Point& lo, const Point& hi) : lo_(lo), hi_(hi) {}

  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// True when `p` lies inside the box (inclusive boundaries).
  bool Contains(const Point& p, int dim) const;

  /// Squared minimum distance from `p` to the box (0 when inside).
  double MinSquaredDistance(const Point& p, int dim) const;

  /// Squared minimum distance between this box and `other` (0 on overlap).
  double MinSquaredDistance(const Box& other, int dim) const;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace ddc

#endif  // DDC_GEOM_BOX_H_
