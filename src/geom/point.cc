#include "geom/point.h"

#include <sstream>

namespace ddc {

std::string Point::ToString(int dim) const {
  std::ostringstream out;
  out << "(";
  for (int i = 0; i < dim; ++i) {
    if (i > 0) out << ", ";
    out << c_[i];
  }
  out << ")";
  return out.str();
}

}  // namespace ddc
