#include "geom/point.h"

#include <cmath>
#include <sstream>

namespace ddc {

std::string Point::ToString(int dim) const {
  std::ostringstream out;
  out << "(";
  for (int i = 0; i < dim; ++i) {
    if (i > 0) out << ", ";
    out << c_[i];
  }
  out << ")";
  return out.str();
}

double SquaredDistance(const Point& a, const Point& b, int dim) {
  double s = 0;
  for (int i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double Distance(const Point& a, const Point& b, int dim) {
  return std::sqrt(SquaredDistance(a, b, dim));
}

bool WithinDistance(const Point& a, const Point& b, int dim, double r) {
  return SquaredDistance(a, b, dim) <= r * r;
}

}  // namespace ddc
