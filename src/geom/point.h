#ifndef DDC_GEOM_POINT_H_
#define DDC_GEOM_POINT_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace ddc {

/// Maximum dimensionality supported by the library. The paper targets low
/// dimensionality (its experiments run d = 2..7); 8 gives headroom while
/// keeping points in a single cache line pair.
inline constexpr int kMaxDim = 8;

/// Identifier of a point inside a clusterer instance. Ids are assigned
/// monotonically by `Insert` and remain valid until the point is deleted.
using PointId = int32_t;

/// Sentinel for "no point".
inline constexpr PointId kInvalidPoint = -1;

/// A point in R^d, d <= kMaxDim. The dimensionality is carried by the
/// surrounding context (DbscanParams::dim); unused coordinates must be zero
/// so that distance computations may loop over kMaxDim-independent `dim`.
class Point {
 public:
  /// Zero-initialized point.
  Point() : c_{} {}

  /// Point from the first `dim` values of `coords`.
  Point(std::initializer_list<double> coords) : c_{} {
    DDC_CHECK(coords.size() <= kMaxDim);
    int i = 0;
    for (double v : coords) c_[i++] = v;
  }

  double operator[](int i) const { return c_[i]; }
  double& operator[](int i) { return c_[i]; }

  /// Exact equality on all kMaxDim coordinates.
  friend bool operator==(const Point& a, const Point& b) { return a.c_ == b.c_; }

  /// Human-readable "(x, y, ...)" rendering of the first `dim` coordinates.
  std::string ToString(int dim) const;

 private:
  std::array<double, kMaxDim> c_;
};

/// Squared Euclidean distance over the first `dim` coordinates.
double SquaredDistance(const Point& a, const Point& b, int dim);

/// Euclidean distance over the first `dim` coordinates.
double Distance(const Point& a, const Point& b, int dim);

/// True when dist(a, b) <= r, computed without a square root.
bool WithinDistance(const Point& a, const Point& b, int dim, double r);

}  // namespace ddc

#endif  // DDC_GEOM_POINT_H_
