#ifndef DDC_GEOM_POINT_H_
#define DDC_GEOM_POINT_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace ddc {

/// Maximum dimensionality supported by the library. The paper targets low
/// dimensionality (its experiments run d = 2..7); 8 gives headroom while
/// keeping points in a single cache line pair.
inline constexpr int kMaxDim = 8;

/// Identifier of a point inside a clusterer instance. Ids are assigned
/// monotonically by `Insert` and remain valid until the point is deleted.
using PointId = int32_t;

/// Sentinel for "no point".
inline constexpr PointId kInvalidPoint = -1;

/// A point in R^d, d <= kMaxDim. The dimensionality is carried by the
/// surrounding context (DbscanParams::dim); unused coordinates must be zero
/// so that distance computations may loop over kMaxDim-independent `dim`.
class Point {
 public:
  /// Zero-initialized point.
  Point() : c_{} {}

  /// Point from the first `dim` values of `coords`.
  Point(std::initializer_list<double> coords) : c_{} {
    DDC_CHECK(coords.size() <= kMaxDim);
    int i = 0;
    for (double v : coords) c_[i++] = v;
  }

  double operator[](int i) const { return c_[i]; }
  double& operator[](int i) { return c_[i]; }

  /// Exact equality on all kMaxDim coordinates.
  friend bool operator==(const Point& a, const Point& b) { return a.c_ == b.c_; }

  /// Human-readable "(x, y, ...)" rendering of the first `dim` coordinates.
  std::string ToString(int dim) const;

  /// Raw coordinate storage (kMaxDim doubles, unused dims zero).
  const double* data() const { return c_.data(); }

 private:
  std::array<double, kMaxDim> c_;
};

/// The distance kernels live here, inline: they are the innermost loop of
/// every ε-range scan, emptiness query and vicinity count, and an
/// out-of-line call per candidate point costs more than the arithmetic.
/// The *Packed variants read `dim` contiguous doubles (the per-cell
/// coordinate layout the Grid maintains) instead of a Point.

/// Squared Euclidean distance over the first `dim` coordinates.
inline double SquaredDistance(const Point& a, const Point& b, int dim) {
  double s = 0;
  for (int i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Squared distance between `a` and the `dim` doubles at `b`.
inline double SquaredDistancePacked(const Point& a, const double* b, int dim) {
  double s = 0;
  for (int i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// True when dist(a, b)^2 <= r_sq, exiting as soon as the partial sum
/// exceeds r_sq. Partial sums are monotone under IEEE rounding (each added
/// term is non-negative), so the verdict is bit-identical to comparing the
/// full SquaredDistance — only cheaper when the answer is "no".
inline bool WithinSquared(const Point& a, const Point& b, int dim,
                          double r_sq) {
  double s = 0;
  for (int i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
    if (s > r_sq) return false;
  }
  return true;
}

/// WithinSquared against packed coordinates.
inline bool WithinSquaredPacked(const Point& a, const double* b, int dim,
                                double r_sq) {
  double s = 0;
  for (int i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
    if (s > r_sq) return false;
  }
  return true;
}

/// True when every coordinate of `p` at index >= `dim` is exactly zero —
/// the padding invariant the Point class documents. The non-const
/// `operator[]` cannot enforce it (callers may legitimately stage
/// coordinates in any order), so the insert paths DDC_DCHECK this instead;
/// kernels that read fixed-width lanes rely on it.
inline bool PaddingIsZero(const Point& p, int dim) {
  for (int i = dim; i < kMaxDim; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

/// Euclidean distance over the first `dim` coordinates.
inline double Distance(const Point& a, const Point& b, int dim) {
  return std::sqrt(SquaredDistance(a, b, dim));
}

/// True when dist(a, b) <= r, computed without a square root.
inline bool WithinDistance(const Point& a, const Point& b, int dim, double r) {
  return WithinSquared(a, b, dim, r * r);
}

}  // namespace ddc

#endif  // DDC_GEOM_POINT_H_
