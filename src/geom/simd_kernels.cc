#include "geom/simd_kernels.h"

#include <cstdlib>
#include <string>

#include "telemetry/metrics.h"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define DDC_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ddc {
namespace {

/// The portable fallback: per candidate, the exact op sequence of
/// WithinSquaredPacked (including the monotone early exit).
void FilterScalar(const double* q, const double* coords, int n, int dim,
                  double r_sq, uint8_t* out_mask) {
  for (int j = 0; j < n; ++j, coords += dim) {
    double s = 0;
    uint8_t within = 1;
    for (int i = 0; i < dim; ++i) {
      const double d = q[i] - coords[i];
      s += d * d;
      if (s > r_sq) {
        within = 0;
        break;
      }
    }
    out_mask[j] = within;
  }
}

#ifdef DDC_SIMD_X86

// The vector kernels test 4 (AVX2) / 8 (AVX-512) candidates per iteration,
// one lane per candidate. Within a lane the per-dimension accumulation runs
// in the same sequential `i` order as the scalar loop, with separate
// multiply and add (no FMA contraction: an fmadd rounds once where the
// scalar rounds twice, which could flip a verdict at an exact r_sq
// boundary). The compare is !(acc > r_sq) — _CMP_NGT_UQ — the literal
// negation of the scalar early-exit predicate, so even non-finite inputs
// agree. Full-sum vs early-exit agreement is the monotone-partial-sum
// argument in point.h.
//
// Candidate rows are strided `dim` doubles apart; the per-dimension lane
// load is a gather-by-insert (_mm256_set_pd of 4 strided scalars), which
// for d <= 8 stays cheaper than transposing rows.

__attribute__((target("avx2"))) void FilterAvx2(const double* q,
                                                const double* coords, int n,
                                                int dim, double r_sq,
                                                uint8_t* out_mask) {
  const __m256d vr = _mm256_set1_pd(r_sq);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const double* p0 = coords + static_cast<size_t>(j) * dim;
    const double* p1 = p0 + dim;
    const double* p2 = p1 + dim;
    const double* p3 = p2 + dim;
    __m256d acc = _mm256_setzero_pd();
    for (int i = 0; i < dim; ++i) {
      const __m256d vq = _mm256_set1_pd(q[i]);
      const __m256d vc = _mm256_set_pd(p3[i], p2[i], p1[i], p0[i]);
      const __m256d d = _mm256_sub_pd(vq, vc);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(acc, vr, _CMP_NGT_UQ));
    out_mask[j + 0] = m & 1;
    out_mask[j + 1] = (m >> 1) & 1;
    out_mask[j + 2] = (m >> 2) & 1;
    out_mask[j + 3] = (m >> 3) & 1;
  }
  if (j < n) {
    FilterScalar(q, coords + static_cast<size_t>(j) * dim, n - j, dim, r_sq,
                 out_mask + j);
  }
}

__attribute__((target("avx512f"))) void FilterAvx512(const double* q,
                                                     const double* coords,
                                                     int n, int dim,
                                                     double r_sq,
                                                     uint8_t* out_mask) {
  const __m512d vr = _mm512_set1_pd(r_sq);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const double* p = coords + static_cast<size_t>(j) * dim;
    __m512d acc = _mm512_setzero_pd();
    for (int i = 0; i < dim; ++i) {
      const __m512d vq = _mm512_set1_pd(q[i]);
      const __m512d vc = _mm512_set_pd(
          p[7 * dim + i], p[6 * dim + i], p[5 * dim + i], p[4 * dim + i],
          p[3 * dim + i], p[2 * dim + i], p[1 * dim + i], p[i]);
      const __m512d d = _mm512_sub_pd(vq, vc);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
    }
    const __mmask8 m = _mm512_cmp_pd_mask(acc, vr, _CMP_NGT_UQ);
    for (int l = 0; l < 8; ++l) out_mask[j + l] = (m >> l) & 1;
  }
  if (j < n) {
    FilterScalar(q, coords + static_cast<size_t>(j) * dim, n - j, dim, r_sq,
                 out_mask + j);
  }
}

#endif  // DDC_SIMD_X86

bool ForceScalarFromEnv() {
  const char* v = std::getenv("DDC_FORCE_SCALAR");
  // Set and not the literal "0" => forced.
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

FilterWithinFn FilterKernelForLevel(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return FilterScalar;
#ifdef DDC_SIMD_X86
    case SimdLevel::kAvx2:
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx2") ? FilterAvx2 : nullptr;
    case SimdLevel::kAvx512:
      __builtin_cpu_init();
      return __builtin_cpu_supports("avx512f") ? FilterAvx512 : nullptr;
#else
    case SimdLevel::kAvx2:
    case SimdLevel::kAvx512:
      return nullptr;
#endif
  }
  return nullptr;
}

namespace simd_internal {

void CountBatchCall() {
  // Named after the tier dispatch picked, so a metrics dump answers "which
  // kernel ran, and how often" in one line. The reference resolves once.
  static Metric& metric = MetricsRegistry::Instance().GetOrCreate(
      std::string("simd.batch_calls.") + SimdLevelName(ActiveSimdLevel()),
      MetricKind::kCounter);
  metric.Add(1);
}

SimdLevel ResolveSimdLevel() {
  if (ForceScalarFromEnv()) return SimdLevel::kScalar;
#ifdef DDC_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace simd_internal

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = simd_internal::ResolveSimdLevel();
  return level;
}

}  // namespace ddc
