#include "geom/box.h"

namespace ddc {

bool Box::Contains(const Point& p, int dim) const {
  for (int i = 0; i < dim; ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

double Box::MinSquaredDistance(const Point& p, int dim) const {
  double s = 0;
  for (int i = 0; i < dim; ++i) {
    double d = 0;
    if (p[i] < lo_[i]) {
      d = lo_[i] - p[i];
    } else if (p[i] > hi_[i]) {
      d = p[i] - hi_[i];
    }
    s += d * d;
  }
  return s;
}

double Box::MinSquaredDistance(const Box& other, int dim) const {
  double s = 0;
  for (int i = 0; i < dim; ++i) {
    double d = 0;
    if (other.hi()[i] < lo_[i]) {
      d = lo_[i] - other.hi()[i];
    } else if (other.lo()[i] > hi_[i]) {
      d = other.lo()[i] - hi_[i];
    }
    s += d * d;
  }
  return s;
}

}  // namespace ddc
