#ifndef DDC_GEOM_SIMD_KERNELS_H_
#define DDC_GEOM_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "geom/point.h"

namespace ddc {

/// \file
/// Batched distance predicates over the packed per-cell coordinate layout
/// (see Cell::coords): one query point tested against `n` candidates stored
/// as contiguous `dim`-double rows. The batch kernel is selected once at
/// startup by runtime CPU dispatch — AVX-512 where the host has it, else
/// AVX2, else the scalar loop — and every variant is *verdict-identical* to
/// `WithinSquaredPacked`:
///
///   * lanes run across points, never across dimensions, so each candidate
///     accumulates its per-dimension terms in the same sequential `i` order
///     as the scalar kernel;
///   * the vector kernels use separate multiply and add (no FMA contraction),
///     so each lane executes bit-for-bit the scalar op sequence; and
///   * the scalar early exit does not change the verdict (partial sums are
///     monotone under IEEE rounding — the argument documented in point.h),
///     so comparing the full sum in the vector lanes agrees exactly.
///
/// rho = 0 conformance (verbatim equality with the exact oracle) depends on
/// this parity; tests/simd_kernels_test.cc fuzzes it differentially.
///
/// Setting DDC_FORCE_SCALAR=1 in the environment pins the scalar fallback
/// (checked once, at first use).

/// Signature of the batch verdict kernel: writes `out_mask[j] = 1` iff
/// dist(q, coords + j*dim)² <= r_sq for j in [0, n), 0 otherwise.
using FilterWithinFn = void (*)(const double* q, const double* coords, int n,
                                int dim, double r_sq, uint8_t* out_mask);

/// Instruction-set tiers the dispatcher can pick from.
enum class SimdLevel {
  kScalar = 0,  ///< Portable loop; always available.
  kAvx2 = 1,    ///< 4 candidates per iteration (256-bit doubles).
  kAvx512 = 2,  ///< 8 candidates per iteration (512-bit doubles).
};

/// Human-readable level name ("scalar", "avx2", "avx512").
const char* SimdLevelName(SimdLevel level);

/// The kernel compiled for `level`, or nullptr when this build or the host
/// CPU cannot run it. kScalar never returns nullptr. Exposed so tests can
/// cross-check every runnable variant regardless of which one dispatch
/// picked.
FilterWithinFn FilterKernelForLevel(SimdLevel level);

/// The tier the runtime dispatcher selected (highest supported level, or
/// kScalar when DDC_FORCE_SCALAR is set). Resolved once per process.
SimdLevel ActiveSimdLevel();

namespace simd_internal {

/// Uncached resolution (re-reads the environment); ActiveSimdLevel caches
/// its first result. Split out so tests can exercise the knob logic without
/// forking.
SimdLevel ResolveSimdLevel();

/// Bumps the "simd.batch_calls.<tier>" counter (tier = the dispatched
/// level's name) in the process metrics registry — one relaxed add; the
/// metric is resolved once per process. Out-of-line so this header stays
/// free of the telemetry dependency.
void CountBatchCall();

/// The dispatched kernel, resolved on first use. Every fetch is one batch
/// dispatch, which is what the per-tier counter measures — the small-n
/// scalar fast paths in the helpers below intentionally bypass both.
inline FilterWithinFn ActiveFilterKernel() {
  static const FilterWithinFn kernel = FilterKernelForLevel(ActiveSimdLevel());
  CountBatchCall();
  return kernel;
}

}  // namespace simd_internal

/// Batched WithinSquaredPacked: `out_mask[j]` = the verdict for the `dim`
/// doubles at `coords + j*dim`, for j in [0, n). Verdicts are bit-identical
/// to the scalar kernel (see file comment).
inline void FilterWithinPacked(const Point& q, const double* coords, int n,
                               int dim, double r_sq, uint8_t* out_mask) {
  simd_internal::ActiveFilterKernel()(q.data(), coords, n, dim, r_sq,
                                      out_mask);
}

/// Chunk size of the mask-buffered helpers below: big enough to amortize the
/// dispatch indirection and keep the vector units streaming, small enough
/// for a stack buffer.
inline constexpr int kSimdFilterChunk = 256;

/// Below this many candidates the helpers skip the dispatched kernel and run
/// the inlined scalar predicate directly: an eps-grid cell often holds only a
/// handful of points, and for those the function-pointer call plus the
/// mask-then-scan second pass cost more than the whole scan. Verdicts are
/// unaffected — the fast path *is* the scalar kernel.
inline constexpr int kSimdSmallN = 16;

/// Invokes `fn(j)` for every candidate j in [0, n) within √r_sq of `q`, in
/// ascending j order — the batched drop-in for the scalar
/// filter-as-you-scan loops over a cell's packed coordinates.
template <typename Fn>
void ForEachWithinPacked(const Point& q, const double* coords, size_t n,
                         int dim, double r_sq, Fn&& fn) {
  if (n < static_cast<size_t>(kSimdSmallN)) {
    for (size_t j = 0; j < n; ++j) {
      if (WithinSquaredPacked(q, coords + j * static_cast<size_t>(dim), dim,
                              r_sq)) {
        fn(j);
      }
    }
    return;
  }
  const FilterWithinFn kernel = simd_internal::ActiveFilterKernel();
  uint8_t mask[kSimdFilterChunk];
  for (size_t base = 0; base < n; base += kSimdFilterChunk) {
    const int m = n - base < static_cast<size_t>(kSimdFilterChunk)
                      ? static_cast<int>(n - base)
                      : kSimdFilterChunk;
    kernel(q.data(), coords + base * static_cast<size_t>(dim), m, dim, r_sq,
           mask);
    for (int j = 0; j < m; ++j) {
      if (mask[j]) fn(base + static_cast<size_t>(j));
    }
  }
}

/// Number of candidates within √r_sq of `q`, truncated at `cap` (a result of
/// `cap` means "at least cap") — the batched form of the capped counting
/// loops. `cap` <= 0 returns 0.
inline int CountWithinPacked(const Point& q, const double* coords, int n,
                             int dim, double r_sq, int cap) {
  if (cap <= 0) return 0;
  // Two scalar-early-exit cases: tiny candidate sets (kSimdSmallN, as in the
  // other helpers), and tight caps over dense cells — a capped count with
  // cap ≈ MinPts usually saturates within the first ~cap candidates, and
  // that early exit beats even a vector kernel that must finish its chunk
  // (measured on the double-approx ExactCount hot path).
  if (n < kSimdSmallN || cap <= 32) {
    int count = 0;
    for (int j = 0; j < n; ++j) {
      if (WithinSquaredPacked(q, coords + static_cast<size_t>(j) * dim, dim,
                              r_sq)) {
        if (++count >= cap) return cap;
      }
    }
    return count;
  }
  const FilterWithinFn kernel = simd_internal::ActiveFilterKernel();
  uint8_t mask[kSimdFilterChunk];
  int count = 0;
  // Graduated chunks: bounded overshoot when the cap bites early, full
  // streaming when it doesn't.
  int chunk = 32;
  for (int base = 0; base < n; base += chunk, chunk = chunk < kSimdFilterChunk
                                                          ? chunk * 2
                                                          : kSimdFilterChunk) {
    const int m = n - base < chunk ? n - base : chunk;
    kernel(q.data(), coords + static_cast<size_t>(base) * dim, m, dim, r_sq,
           mask);
    for (int j = 0; j < m; ++j) count += mask[j];
    if (count >= cap) return cap;
  }
  return count;
}

/// Highest candidate index within √r_sq of `q`, or -1 — the batched form of
/// the newest-first emptiness witness probe. Scans blockwise from the tail
/// (small blocks: witness probes that hit usually hit within the newest few
/// members, while all-miss probes stream the whole array through the vector
/// units anyway).
inline int FindLastWithinPacked(const Point& q, const double* coords, int n,
                                int dim, double r_sq) {
  if (n < kSimdSmallN) {
    for (int j = n; j-- > 0;) {
      if (WithinSquaredPacked(q, coords + static_cast<size_t>(j) * dim, dim,
                              r_sq)) {
        return j;
      }
    }
    return -1;
  }
  const FilterWithinFn kernel = simd_internal::ActiveFilterKernel();
  uint8_t mask[kSimdFilterChunk];
  // Graduated tail-first blocks: witness probes that hit usually hit within
  // the newest few members, so probe small first and double outward; all-miss
  // probes still stream the whole array through the vector units.
  int chunk = 8;
  int end = n;
  while (end > 0) {
    const int m = end < chunk ? end : chunk;
    const int base = end - m;
    chunk = chunk < kSimdFilterChunk ? chunk * 2 : kSimdFilterChunk;
    kernel(q.data(), coords + static_cast<size_t>(base) * dim, m, dim, r_sq,
           mask);
    for (int j = m; j-- > 0;) {
      if (mask[j]) return base + j;
    }
    end = base;
  }
  return -1;
}

/// True when any candidate is within √r_sq of `q` — the batched emptiness
/// membership test (hit/miss only, no witness index needed).
inline bool AnyWithinPacked(const Point& q, const double* coords, int n,
                            int dim, double r_sq) {
  if (n < kSimdSmallN) {
    for (int j = 0; j < n; ++j) {
      if (WithinSquaredPacked(q, coords + static_cast<size_t>(j) * dim, dim,
                              r_sq)) {
        return true;
      }
    }
    return false;
  }
  const FilterWithinFn kernel = simd_internal::ActiveFilterKernel();
  uint8_t mask[kSimdFilterChunk];
  // Graduated chunks, same rationale as CountWithinPacked: membership hits
  // tend to land early, misses stream the whole array regardless.
  int chunk = 32;
  for (int base = 0; base < n; base += chunk, chunk = chunk < kSimdFilterChunk
                                                          ? chunk * 2
                                                          : kSimdFilterChunk) {
    const int m = n - base < chunk ? n - base : chunk;
    kernel(q.data(), coords + static_cast<size_t>(base) * dim, m, dim, r_sq,
           mask);
    for (int j = 0; j < m; ++j) {
      if (mask[j]) return true;
    }
  }
  return false;
}

}  // namespace ddc

#endif  // DDC_GEOM_SIMD_KERNELS_H_
