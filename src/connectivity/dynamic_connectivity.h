#ifndef DDC_CONNECTIVITY_DYNAMIC_CONNECTIVITY_H_
#define DDC_CONNECTIVITY_DYNAMIC_CONNECTIVITY_H_

#include <cstdint>
#include <memory>

namespace ddc {

/// The CC structure of the paper's framework (Section 4.2): maintains the
/// connected components of the grid graph under EdgeInsert / EdgeRemove and
/// answers CC-Id. Vertices are dense integer ids (cell ids in the clusterer).
///
/// Implementations:
///   * HdtConnectivity — Holm–de Lichtenberg–Thorup [14], O~(1) amortized
///     per update, the structure Theorem 4 plugs in;
///   * BfsConnectivity — label maintenance with alternating BFS on edge
///     removal; simple and fast on the small, sparse grid graphs, used as
///     an ablation baseline (bench/ablation_connectivity).
class DynamicConnectivity {
 public:
  virtual ~DynamicConnectivity() = default;

  /// Grows the vertex universe so ids [0, n) are valid (new ids isolated).
  virtual void EnsureVertices(int n) = 0;

  /// Adds edge {u, v}. The edge must not be present; u != v.
  virtual void AddEdge(int u, int v) = 0;

  /// Removes edge {u, v}. The edge must be present.
  virtual void RemoveEdge(int u, int v) = 0;

  /// True when u and v are in the same component.
  virtual bool Connected(int u, int v) = 0;

  /// An identifier of v's component. Two vertices share a component iff
  /// their ids are equal. Ids are stable between modifications but may be
  /// reassigned by any AddEdge/RemoveEdge.
  virtual uint64_t ComponentId(int v) = 0;

  /// ComponentId as a mutation-free lookup (no splaying, no lazy
  /// materialization): safe to call while building a frozen snapshot.
  /// Agrees with ComponentId(v) between modifications.
  virtual uint64_t ComponentIdReadOnly(int v) const = 0;

  /// Number of vertices currently in the universe.
  virtual int num_vertices() const = 0;
};

/// Which CC structure a fully-dynamic clusterer uses.
enum class ConnectivityKind { kHdt, kBfs };

std::unique_ptr<DynamicConnectivity> MakeConnectivity(ConnectivityKind kind);

}  // namespace ddc

#endif  // DDC_CONNECTIVITY_DYNAMIC_CONNECTIVITY_H_
