#ifndef DDC_CONNECTIVITY_BFS_CONNECTIVITY_H_
#define DDC_CONNECTIVITY_BFS_CONNECTIVITY_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "connectivity/dynamic_connectivity.h"

namespace ddc {

/// CC maintenance by explicit component labels.
///
/// AddEdge merging two components relabels the smaller one (weighted quick
/// union); RemoveEdge runs two alternating BFS threads from the endpoints —
/// the same device IncDBSCAN uses on points [8], but here on the grid graph,
/// whose size is O(#cells) — and relabels the side that exhausts first.
/// No sublinear worst-case guarantee (a split can cost O(component)), which
/// is exactly the trade-off bench/ablation_connectivity quantifies against
/// HdtConnectivity.
class BfsConnectivity : public DynamicConnectivity {
 public:
  void EnsureVertices(int n) override;
  void AddEdge(int u, int v) override;
  void RemoveEdge(int u, int v) override;
  bool Connected(int u, int v) override;
  uint64_t ComponentId(int v) override;
  uint64_t ComponentIdReadOnly(int v) const override { return label_[v]; }
  int num_vertices() const override { return static_cast<int>(adj_.size()); }

 private:
  /// Relabels every vertex reachable from `start` with `label`.
  /// Returns the number of vertices relabeled.
  int Relabel(int start, uint64_t label);

  std::vector<std::unordered_set<int>> adj_;
  std::vector<uint64_t> label_;
  std::vector<int64_t> comp_size_;  // indexed by label (labels are dense)
  uint64_t next_label_ = 0;
};

}  // namespace ddc

#endif  // DDC_CONNECTIVITY_BFS_CONNECTIVITY_H_
