#include "connectivity/hdt.h"

#include "common/check.h"
#include "telemetry/metrics.h"

namespace ddc {

HdtConnectivity::HdtConnectivity() {
  forests_.push_back(std::make_unique<EulerTourForest>());
  nontree_.emplace_back();
}

uint64_t HdtConnectivity::Key(int u, int v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

EulerTourForest& HdtConnectivity::Forest(int level) {
  while (static_cast<int>(forests_.size()) <= level) {
    forests_.push_back(std::make_unique<EulerTourForest>());
    nontree_.emplace_back();
  }
  EulerTourForest& f = *forests_[level];
  f.EnsureVertices(n_);
  return f;
}

FlatHashSet<int>& HdtConnectivity::NontreeSet(int level, int v) {
  return nontree_[level][v];
}

void HdtConnectivity::EnsureVertices(int n) {
  if (n > n_) {
    n_ = n;
    forests_[0]->EnsureVertices(n_);
  }
}

void HdtConnectivity::AddNontree(int level, int u, int v) {
  EulerTourForest& f = Forest(level);
  // NB: the second NontreeSet call may grow the level's adjacency table and
  // invalidate the first reference, so each side is finished before the next
  // lookup.
  auto& su = NontreeSet(level, u);
  const bool u_was_empty = su.empty();
  su.Insert(v);
  if (u_was_empty) f.SetVertexFlag(u, true);
  auto& sv = NontreeSet(level, v);
  const bool v_was_empty = sv.empty();
  sv.Insert(u);
  if (v_was_empty) f.SetVertexFlag(v, true);
}

void HdtConnectivity::RemoveNontree(int level, int u, int v) {
  EulerTourForest& f = Forest(level);
  auto& su = NontreeSet(level, u);
  DDC_CHECK(su.Erase(v));
  if (su.empty()) f.SetVertexFlag(u, false);
  auto& sv = NontreeSet(level, v);
  DDC_CHECK(sv.Erase(u));
  if (sv.empty()) f.SetVertexFlag(v, false);
}

void HdtConnectivity::LinkTree(int u, int v, int level, EdgeInfo* info) {
  info->tree = true;
  info->level = level;
  info->arcs.clear();
  info->arcs.reserve(level + 1);
  for (int i = 0; i <= level; ++i) {
    info->arcs.push_back(Forest(i).Link(u, v));
  }
  Forest(level).SetArcFlag(info->arcs[level].uv, true);
}

void HdtConnectivity::AddEdge(int u, int v) {
  DDC_CHECK(u != v && u >= 0 && v >= 0 && u < n_ && v < n_);
  const uint64_t key = Key(u, v);
  DDC_CHECK(!edges_.Contains(key));
  EdgeInfo info;
  if (!forests_[0]->Connected(u, v)) {
    LinkTree(u, v, /*level=*/0, &info);
  } else {
    info.tree = false;
    info.level = 0;
    AddNontree(0, u, v);
  }
  edges_.Emplace(key, std::move(info));
}

void HdtConnectivity::RemoveEdge(int u, int v) {
  const uint64_t key = Key(u, v);
  EdgeInfo* stored = edges_.Find(key);
  DDC_CHECK(stored != nullptr);
  const EdgeInfo info = std::move(*stored);
  edges_.Erase(key);

  if (!info.tree) {
    RemoveNontree(info.level, u, v);
    return;
  }
  // Cut the tree edge out of every forest it participates in, top-down so
  // lower forests stay super-sets of higher ones throughout.
  for (int i = info.level; i >= 0; --i) {
    Forest(i).Cut(info.arcs[i]);
  }
  SearchReplacement(u, v, info.level);
}

void HdtConnectivity::SearchReplacement(int u, int v, int level) {
  DDC_COUNTER_INC("hdt.replacement_searches");
  int64_t edges_pushed = 0;
  for (int i = level; i >= 0; --i) {
    EulerTourForest& f = Forest(i);
    // Work on the smaller side; call it the u-side.
    int su = u, sv = v;
    if (f.TreeSize(su) > f.TreeSize(sv)) std::swap(su, sv);

    // 1. Push all level-i tree edges of the small tree to level i+1 — its
    // size is at most half the pre-cut tree, preserving the invariant.
    for (EttNode* arc = f.FindFlaggedArc(su); arc != nullptr;
         arc = f.FindFlaggedArc(su)) {
      const int a = arc->u;
      const int b = arc->v;
      EdgeInfo* found = edges_.Find(Key(a, b));
      DDC_CHECK(found != nullptr);
      EdgeInfo& e = *found;
      DDC_CHECK(e.tree && e.level == i);
      f.SetArcFlag(arc, false);
      e.level = i + 1;
      e.arcs.push_back(Forest(i + 1).Link(a, b));
      Forest(i + 1).SetArcFlag(e.arcs[i + 1].uv, true);
      ++edges_pushed;
    }

    // 2. Scan non-tree level-i edges incident to the small tree: a neighbor
    // on the v-side is a replacement; an internal edge is pushed up.
    for (int x = f.FindFlaggedVertex(su); x != -1;
         x = f.FindFlaggedVertex(su)) {
      auto& set = NontreeSet(i, x);
      DDC_CHECK(!set.empty());
      const int y = *set.begin();
      RemoveNontree(i, x, y);
      if (f.Connected(y, sv)) {
        // Replacement found: it becomes a tree edge at level i, restoring
        // connectivity in forests [0, i] (levels above i stay split — their
        // components legitimately shrank).
        EdgeInfo* replacement = edges_.Find(Key(x, y));
        DDC_CHECK(replacement != nullptr);
        DDC_CHECK(!replacement->tree && replacement->level == i);
        LinkTree(x, y, i, replacement);
        DDC_COUNTER_INC("hdt.replacements_found");
        DDC_COUNTER_ADD("hdt.edges_pushed", edges_pushed);
        return;
      }
      // Both endpoints inside the small tree: push to level i+1.
      EdgeInfo* pushed = edges_.Find(Key(x, y));
      DDC_CHECK(pushed != nullptr);
      pushed->level = i + 1;
      Forest(i + 1);  // Materialize before AddNontree touches its sets.
      AddNontree(i + 1, x, y);
      ++edges_pushed;
    }
  }
  // No replacement at any level: the component stays split.
  DDC_COUNTER_ADD("hdt.edges_pushed", edges_pushed);
}

bool HdtConnectivity::Connected(int u, int v) {
  DDC_CHECK(u >= 0 && v >= 0 && u < n_ && v < n_);
  return forests_[0]->Connected(u, v);
}

uint64_t HdtConnectivity::ComponentId(int v) {
  DDC_CHECK(v >= 0 && v < n_);
  return reinterpret_cast<uint64_t>(forests_[0]->Representative(v));
}

uint64_t HdtConnectivity::ComponentIdReadOnly(int v) const {
  DDC_CHECK(v >= 0 && v < n_);
  const EttNode* head = forests_[0]->RepresentativeReadOnly(v);
  if (head != nullptr) return reinterpret_cast<uint64_t>(head);
  // Never-touched singleton: synthesize an odd label — EttNode pointers are
  // aligned, so the two label families can't collide, and the value agrees
  // with itself across lookups until an edge first touches v.
  return (static_cast<uint64_t>(static_cast<uint32_t>(v)) << 1) | 1;
}

}  // namespace ddc
