#include "connectivity/dynamic_connectivity.h"

#include "common/check.h"
#include "connectivity/bfs_connectivity.h"
#include "connectivity/hdt.h"

namespace ddc {

std::unique_ptr<DynamicConnectivity> MakeConnectivity(ConnectivityKind kind) {
  switch (kind) {
    case ConnectivityKind::kHdt:
      return std::make_unique<HdtConnectivity>();
    case ConnectivityKind::kBfs:
      return std::make_unique<BfsConnectivity>();
  }
  DDC_CHECK(false);
  return nullptr;
}

}  // namespace ddc
