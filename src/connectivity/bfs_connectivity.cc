#include "connectivity/bfs_connectivity.h"

#include <deque>

#include "common/check.h"

namespace ddc {

void BfsConnectivity::EnsureVertices(int n) {
  while (num_vertices() < n) {
    adj_.emplace_back();
    label_.push_back(next_label_);
    comp_size_.push_back(1);
    ++next_label_;
  }
}

int BfsConnectivity::Relabel(int start, uint64_t label) {
  std::deque<int> frontier{start};
  const uint64_t old = label_[start];
  label_[start] = label;
  int count = 1;
  while (!frontier.empty()) {
    const int x = frontier.front();
    frontier.pop_front();
    for (const int y : adj_[x]) {
      if (label_[y] == old) {
        label_[y] = label;
        ++count;
        frontier.push_back(y);
      }
    }
  }
  return count;
}

void BfsConnectivity::AddEdge(int u, int v) {
  DDC_CHECK(u != v && u >= 0 && v >= 0 && u < num_vertices() &&
            v < num_vertices());
  DDC_CHECK(adj_[u].insert(v).second);
  adj_[v].insert(u);
  const uint64_t lu = label_[u], lv = label_[v];
  if (lu == lv) return;
  // Relabel the smaller component into the larger.
  if (comp_size_[lu] < comp_size_[lv]) {
    comp_size_[lv] += Relabel(u, lv);
  } else {
    comp_size_[lu] += Relabel(v, lu);
  }
}

void BfsConnectivity::RemoveEdge(int u, int v) {
  DDC_CHECK(adj_[u].erase(v) == 1);
  DDC_CHECK(adj_[v].erase(u) == 1);
  // Alternating BFS from both endpoints: whichever exhausts first is a
  // complete (possibly new) component; if the threads meet, no split.
  struct Thread {
    std::deque<int> frontier;
    std::unordered_set<int> seen;
    int other_start;
  };
  Thread a{{u}, {u}, v};
  Thread b{{v}, {v}, u};
  Thread* t[2] = {&a, &b};
  for (;;) {
    for (int k = 0; k < 2; ++k) {
      Thread& th = *t[k];
      if (th.frontier.empty()) {
        // th's side is a full component, split off. Relabel it (it is no
        // larger than the other side plus one BFS step; good enough).
        const uint64_t old = label_[k == 0 ? u : v];
        comp_size_.push_back(0);
        const uint64_t fresh = next_label_++;
        const int moved = Relabel(k == 0 ? u : v, fresh);
        comp_size_[fresh] = moved;
        comp_size_[old] -= moved;
        return;
      }
      const int x = th.frontier.front();
      th.frontier.pop_front();
      for (const int y : adj_[x]) {
        if (y == th.other_start) return;  // Still connected.
        if (th.seen.insert(y).second) th.frontier.push_back(y);
      }
    }
  }
}

bool BfsConnectivity::Connected(int u, int v) {
  return label_[u] == label_[v];
}

uint64_t BfsConnectivity::ComponentId(int v) { return label_[v]; }

}  // namespace ddc
