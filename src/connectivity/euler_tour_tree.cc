#include "connectivity/euler_tour_tree.h"

#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace ddc {
namespace {

void Update(EttNode* x) {
  const bool self = x->is_self();
  x->cnt_total = 1;
  x->cnt_vertices = self ? 1 : 0;
  x->cnt_nontree = (self && x->vertex_has_nontree) ? 1 : 0;
  x->cnt_level = (!self && x->edge_is_level) ? 1 : 0;
  for (EttNode* c : {x->left, x->right}) {
    if (c == nullptr) continue;
    x->cnt_total += c->cnt_total;
    x->cnt_vertices += c->cnt_vertices;
    x->cnt_nontree += c->cnt_nontree;
    x->cnt_level += c->cnt_level;
  }
}

/// Rotates x above its parent, keeping aggregates valid.
void RotateUp(EttNode* x) {
  EttNode* p = x->parent;
  EttNode* g = p->parent;
  if (p->left == x) {
    p->left = x->right;
    if (x->right != nullptr) x->right->parent = p;
    x->right = p;
  } else {
    p->right = x->left;
    if (x->left != nullptr) x->left->parent = p;
    x->left = p;
  }
  p->parent = x;
  x->parent = g;
  if (g != nullptr) {
    if (g->left == p) {
      g->left = x;
    } else {
      g->right = x;
    }
  }
  Update(p);
  Update(x);
}

void Splay(EttNode* x) {
  while (x->parent != nullptr) {
    EttNode* p = x->parent;
    EttNode* g = p->parent;
    if (g != nullptr) {
      const bool zigzig = (g->left == p) == (p->left == x);
      RotateUp(zigzig ? p : x);
    }
    RotateUp(x);
  }
}

/// Sequence position of x (0-based), splaying x to the root.
int PositionOf(EttNode* x) {
  Splay(x);
  return x->left == nullptr ? 0 : x->left->cnt_total;
}

/// Concatenates two tours (either may be null); returns the new root.
EttNode* Concat(EttNode* a, EttNode* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  DDC_DCHECK(a->parent == nullptr && b->parent == nullptr);
  // Splay the rightmost node of a; then b hangs off its right.
  EttNode* r = a;
  while (r->right != nullptr) r = r->right;
  Splay(r);
  r->right = b;
  b->parent = r;
  Update(r);
  return r;
}

/// Detaches everything before x; returns the detached prefix (x becomes the
/// head of its tree).
EttNode* DetachPrefix(EttNode* x) {
  Splay(x);
  EttNode* prefix = x->left;
  if (prefix != nullptr) {
    prefix->parent = nullptr;
    x->left = nullptr;
    Update(x);
  }
  return prefix;
}

/// Detaches everything after x; returns the detached suffix.
EttNode* DetachSuffix(EttNode* x) {
  Splay(x);
  EttNode* suffix = x->right;
  if (suffix != nullptr) {
    suffix->parent = nullptr;
    x->right = nullptr;
    Update(x);
  }
  return suffix;
}

void DeleteSubtree(EttNode* x) {
  if (x == nullptr) return;
  DeleteSubtree(x->left);
  DeleteSubtree(x->right);
  delete x;
}

}  // namespace

EulerTourForest::~EulerTourForest() {
  // Every node is reachable from some self-arc's root (each tree holds at
  // least one vertex).
  std::unordered_set<EttNode*> roots;
  for (EttNode* s : self_) {
    if (s == nullptr) continue;
    EttNode* r = s;
    while (r->parent != nullptr) r = r->parent;
    roots.insert(r);
  }
  for (EttNode* r : roots) DeleteSubtree(r);
}

void EulerTourForest::EnsureVertices(int n) {
  if (static_cast<int>(self_.size()) < n) self_.resize(n, nullptr);
}

EttNode* EulerTourForest::Self(int v) {
  DDC_DCHECK(v >= 0 && v < num_vertices());
  if (self_[v] == nullptr) {
    EttNode* s = new EttNode;
    s->u = s->v = v;
    Update(s);
    self_[v] = s;
  }
  return self_[v];
}

void EulerTourForest::Reroot(EttNode* self_node) {
  EttNode* prefix = DetachPrefix(self_node);
  Concat(self_node, prefix);
}

EulerTourForest::ArcPair EulerTourForest::Link(int u, int v) {
  DDC_DCHECK(!Connected(u, v));
  EttNode* su = Self(u);
  EttNode* sv = Self(v);
  Reroot(su);
  Reroot(sv);

  ArcPair arcs;
  arcs.uv = new EttNode;
  arcs.uv->u = u;
  arcs.uv->v = v;
  Update(arcs.uv);
  arcs.vu = new EttNode;
  arcs.vu->u = v;
  arcs.vu->v = u;
  Update(arcs.vu);

  // Tour(u-tree from u) + (u,v) + Tour(v-tree from v) + (v,u).
  Splay(su);
  Splay(sv);
  EttNode* t = Concat(su, arcs.uv);
  t = Concat(t, sv);
  Concat(t, arcs.vu);
  return arcs;
}

void EulerTourForest::Cut(const ArcPair& arcs) {
  EttNode* first = arcs.uv;
  EttNode* second = arcs.vu;
  if (PositionOf(first) > PositionOf(second)) std::swap(first, second);

  // Sequence = A first M second C. The subtree tour is M; the rest of the
  // tree keeps A + C.
  EttNode* a = DetachPrefix(first);
  EttNode* c = DetachSuffix(second);
  // Now the remaining sequence is: first M second.
  EttNode* m = DetachSuffix(first);  // m = M second
  delete first;
  Splay(second);
  DDC_DCHECK(second->right == nullptr);
  EttNode* middle = second->left;
  if (middle != nullptr) {
    middle->parent = nullptr;
    second->left = nullptr;
  }
  (void)m;
  delete second;
  Concat(a, c);
}

bool EulerTourForest::Connected(int u, int v) {
  if (u == v) return true;
  EttNode* su = Self(u);
  EttNode* sv = Self(v);
  Splay(su);
  Splay(sv);
  return su->parent != nullptr;
}

int EulerTourForest::TreeSize(int u) {
  EttNode* s = Self(u);
  Splay(s);
  return s->cnt_vertices;
}

const EttNode* EulerTourForest::Representative(int u) {
  EttNode* s = Self(u);
  Splay(s);
  EttNode* head = s;
  while (head->left != nullptr) head = head->left;
  Splay(head);
  return head;
}

const EttNode* EulerTourForest::RepresentativeReadOnly(int u) const {
  DDC_DCHECK(u >= 0 && u < num_vertices());
  const EttNode* node = self_[u];
  if (node == nullptr) return nullptr;  // Untouched singleton.
  while (node->parent != nullptr) node = node->parent;
  while (node->left != nullptr) node = node->left;
  return node;
}

void EulerTourForest::SetVertexFlag(int u, bool flag) {
  EttNode* s = Self(u);
  Splay(s);
  s->vertex_has_nontree = flag;
  Update(s);
}

void EulerTourForest::SetArcFlag(EttNode* arc, bool flag) {
  Splay(arc);
  arc->edge_is_level = flag;
  Update(arc);
}

int EulerTourForest::FindFlaggedVertex(int u) {
  EttNode* s = Self(u);
  Splay(s);
  if (s->cnt_nontree == 0) return -1;
  EttNode* x = s;
  for (;;) {
    if (x->left != nullptr && x->left->cnt_nontree > 0) {
      x = x->left;
    } else if (x->is_self() && x->vertex_has_nontree) {
      Splay(x);
      return x->u;
    } else {
      DDC_DCHECK(x->right != nullptr && x->right->cnt_nontree > 0);
      x = x->right;
    }
  }
}

EttNode* EulerTourForest::FindFlaggedArc(int u) {
  EttNode* s = Self(u);
  Splay(s);
  if (s->cnt_level == 0) return nullptr;
  EttNode* x = s;
  for (;;) {
    if (x->left != nullptr && x->left->cnt_level > 0) {
      x = x->left;
    } else if (!x->is_self() && x->edge_is_level) {
      Splay(x);
      return x;
    } else {
      DDC_DCHECK(x->right != nullptr && x->right->cnt_level > 0);
      x = x->right;
    }
  }
}

}  // namespace ddc
