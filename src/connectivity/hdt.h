#ifndef DDC_CONNECTIVITY_HDT_H_
#define DDC_CONNECTIVITY_HDT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "connectivity/dynamic_connectivity.h"
#include "connectivity/euler_tour_tree.h"

namespace ddc {

/// Holm–de Lichtenberg–Thorup fully dynamic connectivity [14]: the CC
/// structure behind Theorem 4. Poly-logarithmic amortized time per edge
/// insertion/deletion and per query.
///
/// Every edge carries a level; F_i is a spanning forest of the edges with
/// level >= i, F_0 spans the graph. A deleted tree edge at level ℓ triggers
/// a replacement search from level ℓ downward; edges examined without
/// yielding a replacement are pushed one level up (the amortization), with
/// the invariant that a level-i tree has at most n/2^i vertices — the
/// smaller side of the cut is always the one whose edges get pushed.
class HdtConnectivity : public DynamicConnectivity {
 public:
  HdtConnectivity();

  void EnsureVertices(int n) override;
  void AddEdge(int u, int v) override;
  void RemoveEdge(int u, int v) override;
  bool Connected(int u, int v) override;
  uint64_t ComponentId(int v) override;
  uint64_t ComponentIdReadOnly(int v) const override;
  int num_vertices() const override { return n_; }

  /// Total number of edges currently stored (tree + non-tree).
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Highest level currently in use (diagnostics; bounded by log2 n).
  int max_level() const { return static_cast<int>(forests_.size()) - 1; }

 private:
  struct EdgeInfo {
    int level = 0;
    bool tree = false;
    /// When tree: arcs[i] is the edge's arc pair in forest i, 0 <= i <= level.
    std::vector<EulerTourForest::ArcPair> arcs;
  };

  static uint64_t Key(int u, int v);

  EulerTourForest& Forest(int level);

  /// Adjacency sets of *non-tree* edges at `level`.
  FlatHashSet<int>& NontreeSet(int level, int v);

  void AddNontree(int level, int u, int v);
  void RemoveNontree(int level, int u, int v);

  /// Links (u, v) as a tree edge in forests [0, level] and flags it.
  void LinkTree(int u, int v, int level, EdgeInfo* info);

  /// Replacement search after deleting a tree edge of level `level` whose
  /// endpoints were u, v (already cut from all forests).
  void SearchReplacement(int u, int v, int level);

  int n_ = 0;
  std::vector<std::unique_ptr<EulerTourForest>> forests_;
  /// nontree_[level][v] — neighbors of v via non-tree edges of that level.
  std::vector<FlatHashMap<int, FlatHashSet<int>>> nontree_;
  FlatHashMap<uint64_t, EdgeInfo> edges_;
};

}  // namespace ddc

#endif  // DDC_CONNECTIVITY_HDT_H_
