#ifndef DDC_CONNECTIVITY_EULER_TOUR_TREE_H_
#define DDC_CONNECTIVITY_EULER_TOUR_TREE_H_

#include <cstdint>
#include <vector>

namespace ddc {

/// One node of the Euler-tour sequence: either a vertex's self-arc (u == v,
/// exactly one per vertex per tree) or one of the two directed arcs of a
/// tree edge. Nodes form a splay tree keyed by tour position, with subtree
/// aggregates used by the HDT search routines.
struct EttNode {
  EttNode* left = nullptr;
  EttNode* right = nullptr;
  EttNode* parent = nullptr;

  int32_t u = -1;
  int32_t v = -1;

  /// Self-arc flag payloads (meaningful when u == v):
  bool vertex_has_nontree = false;
  /// Arc flag payload: this arc's edge is a tree edge whose HDT level equals
  /// this forest's level (set on one arc of the pair only).
  bool edge_is_level = false;

  /// Subtree aggregates.
  int32_t cnt_total = 0;     // all nodes in subtree (tour positions)
  int32_t cnt_vertices = 0;  // self-arcs in subtree
  int32_t cnt_nontree = 0;   // flagged self-arcs in subtree
  int32_t cnt_level = 0;     // flagged arcs in subtree

  bool is_self() const { return u == v; }
};

/// A forest of Euler-tour trees over dense vertex ids, supporting Link, Cut,
/// Connected, tree sizes, flag maintenance and flagged-node search — the
/// engine under HdtConnectivity. All operations are amortized O(log n).
///
/// Representation: each tree's Euler tour is a linear sequence of nodes in a
/// splay tree; the tour of a single vertex is just its self-arc. Linking
/// reroots both tours and concatenates them around the two new arcs.
class EulerTourForest {
 public:
  EulerTourForest() = default;
  ~EulerTourForest();

  EulerTourForest(const EulerTourForest&) = delete;
  EulerTourForest& operator=(const EulerTourForest&) = delete;

  /// Handle of a linked edge: its two arc nodes.
  struct ArcPair {
    EttNode* uv = nullptr;
    EttNode* vu = nullptr;
  };

  /// Makes vertex ids [0, n) valid; new vertices start as singletons with
  /// no self-arc materialized until first touched.
  void EnsureVertices(int n);

  int num_vertices() const { return static_cast<int>(self_.size()); }

  /// Links the trees of u and v with edge {u, v}; they must be in different
  /// trees. Returns the created arcs.
  ArcPair Link(int u, int v);

  /// Removes the edge whose arcs are `arcs`, splitting its tree in two.
  void Cut(const ArcPair& arcs);

  bool Connected(int u, int v);

  /// Number of vertices in u's tree.
  int TreeSize(int u);

  /// A canonical node of u's tree: the head of its tour sequence. Stable
  /// between Link/Cut operations.
  const EttNode* Representative(int u);

  /// Representative without splaying: a mutation-free parent walk to the
  /// splay root, then left-spine descent to the tour head. Returns the same
  /// node as Representative(u) (the head is a property of the tour, not of
  /// the splay shape). A vertex whose self-arc was never materialized is a
  /// singleton; it is reported as nullptr so the caller can synthesize a
  /// label without mutating the forest.
  const EttNode* RepresentativeReadOnly(int u) const;

  /// Marks whether u carries non-tree edges at this forest's level.
  void SetVertexFlag(int u, bool flag);

  /// Marks whether this arc's edge is a level tree edge.
  void SetArcFlag(EttNode* arc, bool flag);

  /// Some vertex in u's tree with the non-tree flag set, or -1.
  int FindFlaggedVertex(int u);

  /// Some arc in u's tree with the level flag set, or nullptr.
  EttNode* FindFlaggedArc(int u);

 private:
  EttNode* Self(int v);

  /// Rotates the tour of v's tree so it starts at Self(v).
  void Reroot(EttNode* self_node);

  std::vector<EttNode*> self_;
};

}  // namespace ddc

#endif  // DDC_CONNECTIVITY_EULER_TOUR_TREE_H_
