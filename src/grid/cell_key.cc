#include "grid/cell_key.h"

#include <cmath>
#include <sstream>

namespace ddc {

CellKey CellKey::Of(const Point& p, int dim, double side) {
  CellKey k;
  for (int i = 0; i < dim; ++i) {
    k.c_[i] = static_cast<int32_t>(std::floor(p[i] / side));
  }
  return k;
}

CellKey CellKey::Shifted(const std::array<int32_t, kMaxDim>& offset,
                         int dim) const {
  CellKey k = *this;
  for (int i = 0; i < dim; ++i) k.c_[i] += offset[i];
  return k;
}

uint64_t CellKey::Hash() const {
  // splitmix64-style mixing of each coordinate.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < kMaxDim; ++i) {
    uint64_t z = h + 0x9e3779b97f4a7c15ULL * (static_cast<uint32_t>(c_[i]) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

std::string CellKey::ToString(int dim) const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < dim; ++i) {
    if (i > 0) out << ", ";
    out << c_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace ddc
