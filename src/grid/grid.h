#ifndef DDC_GRID_GRID_H_
#define DDC_GRID_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "grid/cell_key.h"
#include "grid/neighbor_offsets.h"

namespace ddc {

/// Index of a cell inside a Grid. Cells are created on first use and are
/// never destroyed (a cell that loses all its points keeps its identity and
/// its neighbor links), so indices are stable for the grid's lifetime.
using CellId = int32_t;
inline constexpr CellId kInvalidCell = -1;

/// One grid cell: its key, the alive points it covers, and the ε-close cells
/// that have ever been materialized. Neighbor links are symmetric and are
/// filtered for emptiness by the caller where it matters.
struct Cell {
  CellKey key;
  std::vector<PointId> points;
  std::vector<CellId> neighbors;

  bool empty() const { return points.empty(); }
  int size() const { return static_cast<int>(points.size()); }
};

/// The uniform grid of Section 4.1: cells of side ε/√d over R^d, holding a
/// dynamic point set. The grid provides
///   * point storage with stable ids across insertions and deletions,
///   * cell lookup and lazy cell materialization,
///   * cached ε-close neighbor links (built once per cell from the
///     precomputed offset table), and
///   * ε-range enumeration, the primitive that both our clusterers and the
///     IncDBSCAN baseline build on.
class Grid {
 public:
  /// A grid for dimension `dim` with closeness threshold `eps`; the cell
  /// side is eps/√dim as the paper prescribes.
  Grid(int dim, double eps);

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  /// Outcome of an insertion.
  struct InsertResult {
    PointId id;
    CellId cell;
    bool cell_created;
  };

  /// Adds `p`, materializing its cell (and neighbor links) if needed.
  InsertResult Insert(const Point& p);

  /// Removes point `id`; returns the cell it occupied. The id must be alive.
  CellId Delete(PointId id);

  int dim() const { return dim_; }
  double eps() const { return eps_; }
  double side() const { return side_; }

  /// Number of alive points.
  int64_t size() const { return alive_; }

  /// Total points ever inserted (== upper bound on PointId).
  int64_t total_inserted() const { return static_cast<int64_t>(records_.size()); }

  /// Coordinates of point `id` (valid also for recently deleted points).
  const Point& point(PointId id) const { return records_[id].point; }

  /// True when the point has been inserted and not deleted.
  bool alive(PointId id) const {
    return id >= 0 && id < static_cast<PointId>(records_.size()) &&
           records_[id].cell != kInvalidCell;
  }

  /// Cell currently holding point `id`; kInvalidCell when deleted.
  CellId cell_of(PointId id) const { return records_[id].cell; }

  const Cell& cell(CellId c) const { return cells_[c]; }

  /// Number of cells ever materialized.
  int num_cells() const { return static_cast<int>(cells_.size()); }

  /// Geometric bounds of cell `c`.
  Box cell_box(CellId c) const;

  /// Cell covering `p` if it has been materialized, else kInvalidCell.
  CellId FindCell(const Point& p) const;

  /// Invokes `fn(PointId)` for every alive point within distance `r` of `q`.
  /// Requires r <= eps (the cached neighbor links only cover ε-closeness).
  template <typename Fn>
  void ForEachPointInRange(const Point& q, double r, Fn&& fn) const;

  /// Invokes `fn(CellId)` for `q`'s cell (if materialized) and every
  /// materialized ε-close cell of it. Cells may be empty.
  template <typename Fn>
  void ForEachNearbyCell(const Point& q, Fn&& fn) const;

 private:
  struct PointRecord {
    Point point;
    CellId cell = kInvalidCell;
    int32_t index_in_cell = -1;
  };

  CellId GetOrCreateCell(const CellKey& key, bool* created);

  /// True when cells with these keys are ε-close (same criterion as the
  /// offset table).
  bool KeysAreEpsClose(const CellKey& a, const CellKey& b) const;

  int dim_;
  double eps_;
  double side_;
  NeighborOffsets offsets_;
  std::vector<PointRecord> records_;
  std::vector<Cell> cells_;
  std::unordered_map<CellKey, CellId, CellKeyHash> cell_index_;
  int64_t alive_ = 0;
};

template <typename Fn>
void Grid::ForEachNearbyCell(const Point& q, Fn&& fn) const {
  const CellKey key = CellKey::Of(q, dim_, side_);
  const auto it = cell_index_.find(key);
  if (it != cell_index_.end()) {
    fn(it->second);
    for (const CellId nb : cells_[it->second].neighbors) fn(nb);
    return;
  }
  // The query point's own cell was never materialized: fall back to probing
  // the offset table.
  for (const auto& off : offsets_.offsets()) {
    const auto nb = cell_index_.find(key.Shifted(off, dim_));
    if (nb != cell_index_.end()) fn(nb->second);
  }
}

template <typename Fn>
void Grid::ForEachPointInRange(const Point& q, double r, Fn&& fn) const {
  DDC_DCHECK(r <= eps_ * (1 + 1e-9));
  const double r_sq = r * r;
  ForEachNearbyCell(q, [&](CellId c) {
    for (const PointId pid : cells_[c].points) {
      if (SquaredDistance(q, records_[pid].point, dim_) <= r_sq) fn(pid);
    }
  });
}

}  // namespace ddc

#endif  // DDC_GRID_GRID_H_
