#ifndef DDC_GRID_GRID_H_
#define DDC_GRID_GRID_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "geom/box.h"
#include "geom/point.h"
#include "geom/simd_kernels.h"
#include "grid/cell_key.h"
#include "grid/neighbor_offsets.h"

namespace ddc {

/// Index of a cell inside a Grid. Cells are created on first use and are
/// never destroyed (a cell that loses all its points keeps its identity and
/// its neighbor links), so indices are stable for the grid's lifetime.
using CellId = int32_t;
inline constexpr CellId kInvalidCell = -1;

/// One grid cell: its key, the alive points it covers, and the ε-close cells
/// that have ever been materialized. Neighbor links are symmetric and are
/// filtered for emptiness by the caller where it matters.
///
/// Coordinates of the cell's alive points are mirrored in `coords`, packed
/// as `dim` doubles per point in `points` order (swap-with-last on delete,
/// like the id vector) — an ε-range scan streams this array sequentially
/// instead of chasing each id through the grid's point records.
///
/// `neighbors` is kept sorted by box-to-box gap to this cell (ascending,
/// mirrored in `neighbor_gaps`): capped scans that visit nearest cells
/// first reach their early-exit threshold sooner. Truncated counts are
/// order-independent, so results don't change — only cycles.
struct Cell {
  CellKey key;
  std::vector<PointId> points;
  std::vector<double> coords;
  std::vector<CellId> neighbors;
  std::vector<double> neighbor_gaps;

  bool empty() const { return points.empty(); }
  int size() const { return static_cast<int>(points.size()); }
};

/// The uniform grid of Section 4.1: cells of side ε/√d over R^d, holding a
/// dynamic point set. The grid provides
///   * point storage with stable ids across insertions and deletions,
///   * cell lookup and lazy cell materialization,
///   * cached ε-close neighbor links (built once per cell from the
///     precomputed offset table), and
///   * ε-range enumeration, the primitive that both our clusterers and the
///     IncDBSCAN baseline build on.
///
/// Hot-path layout: the key → cell index is a flat open-addressing table,
/// each operation computes its CellKey and hash exactly once and threads the
/// hash through every probe, and range scans read the per-cell packed
/// coordinate arrays (see Cell).
class Grid {
 public:
  /// A grid for dimension `dim` with closeness threshold `eps`; the cell
  /// side is eps/√dim as the paper prescribes.
  Grid(int dim, double eps);

  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  /// Outcome of an insertion.
  struct InsertResult {
    PointId id;
    CellId cell;
    bool cell_created;
  };

  /// Adds `p`, materializing its cell (and neighbor links) if needed.
  InsertResult Insert(const Point& p);

  /// Removes point `id`; returns the cell it occupied. The id must be alive.
  CellId Delete(PointId id);

  int dim() const { return dim_; }
  double eps() const { return eps_; }
  double side() const { return side_; }

  /// Number of alive points.
  int64_t size() const { return alive_; }

  /// Total points ever inserted (== upper bound on PointId).
  int64_t total_inserted() const { return static_cast<int64_t>(records_.size()); }

  /// Coordinates of point `id` (valid also for recently deleted points).
  const Point& point(PointId id) const { return records_[id].point; }

  /// True when the point has been inserted and not deleted.
  bool alive(PointId id) const {
    return id >= 0 && id < static_cast<PointId>(records_.size()) &&
           records_[id].cell != kInvalidCell;
  }

  /// Cell currently holding point `id`; kInvalidCell when deleted.
  CellId cell_of(PointId id) const { return records_[id].cell; }

  const Cell& cell(CellId c) const { return cells_[c]; }

  /// Alive-point count of cell `c`, served from a compact side array: scan
  /// loops that filter cells by occupancy touch 16 counts per cache line
  /// instead of one Cell struct each.
  int cell_size(CellId c) const { return sizes_[c]; }

  /// Key of cell `c` from the packed key mirror (box prefilters read these
  /// without pulling in the full Cell).
  const CellKey& cell_key(CellId c) const { return keys_[c]; }

  /// Number of cells ever materialized.
  int num_cells() const { return static_cast<int>(cells_.size()); }

  /// Geometric bounds of cell `c`.
  Box cell_box(CellId c) const;

  /// Cell covering `p` if it has been materialized, else kInvalidCell.
  CellId FindCell(const Point& p) const;

  /// Invokes `fn(PointId)` for every alive point within distance `r` of `q`.
  /// Requires r <= eps (the cached neighbor links only cover ε-closeness).
  template <typename Fn>
  void ForEachPointInRange(const Point& q, double r, Fn&& fn) const;

  /// Invokes `fn(CellId)` for `q`'s cell (if materialized) and every
  /// materialized ε-close cell of it. Cells may be empty.
  template <typename Fn>
  void ForEachNearbyCell(const Point& q, Fn&& fn) const;

  /// ForEachNearbyCell variant reporting which cell is `q`'s own:
  /// `fn(CellId, bool is_own)`. Callers use it to exploit the same-cell
  /// guarantee (side ε/√d ⇒ any two points of one cell are within ε).
  template <typename Fn>
  void ForEachNearbyCellTagged(const Point& q, Fn&& fn) const;

  /// ForEachNearbyCellTagged for a query whose cell is already known (any
  /// alive point's cell_of): skips the key derivation, hash, and index
  /// probe entirely.
  template <typename Fn>
  void ForEachNearbyCellOfTagged(CellId home, Fn&& fn) const {
    fn(home, true);
    for (const CellId nb : cells_[home].neighbors) fn(nb, false);
  }

 private:
  struct PointRecord {
    Point point;
    CellId cell = kInvalidCell;
    int32_t index_in_cell = -1;
  };

  /// Upper bound on NeighborOffsets::radius() for side = eps/√dim,
  /// dim <= kMaxDim (floor(√8) + 1): sizes the stack-allocated delta tables
  /// in ForEachMaterializedShifted.
  static constexpr int kMaxOffsetRadius = 3;

  CellId GetOrCreateCell(const CellKey& key, uint64_t key_hash, bool* created);

  /// CellKey::Hash with the constant contribution of the unused dimensions
  /// (coordinates pinned to 0) precomputed — `dim` mixes instead of kMaxDim.
  uint64_t HashKey(const CellKey& key) const {
    uint64_t h = zero_tail_hash_;
    for (int i = 0; i < dim_; ++i) h += CellKey::DimTerm(i, key[i]);
    return h;
  }

  /// Invokes `fn(CellId)` for every materialized cell at `key` + a
  /// neighbor-table offset. `key_hash` must equal key.Hash(); each shifted
  /// key's hash is derived from it through per-dimension delta tables (d
  /// adds per offset) instead of a full re-mix per offset.
  template <typename Fn>
  void ForEachMaterializedShifted(const CellKey& key, uint64_t key_hash,
                                  Fn&& fn) const;

  /// True when cells with these keys are ε-close (same criterion as the
  /// offset table).
  bool KeysAreEpsClose(const CellKey& a, const CellKey& b) const;

  /// Squared minimum distance between the boxes of cells with these keys.
  double KeyGapSq(const CellKey& a, const CellKey& b) const;

  /// Records the symmetric ε-close link a <-> b, keeping both neighbor
  /// lists sorted by gap.
  void LinkNeighbors(CellId a, CellId b);

  int dim_;
  double eps_;
  double side_;
  uint64_t zero_tail_hash_ = 0;  // Σ_{i >= dim} DimTerm(i, 0).
  NeighborOffsets offsets_;
  std::vector<PointRecord> records_;
  std::vector<Cell> cells_;
  std::vector<int32_t> sizes_;  // Mirror of cells_[c].points.size().
  std::vector<CellKey> keys_;   // Mirror of cells_[c].key.
  FlatHashMap<CellKey, CellId, CellKeyHash> cell_index_;
  int64_t alive_ = 0;
};

template <typename Fn>
void Grid::ForEachMaterializedShifted(const CellKey& key, uint64_t key_hash,
                                      Fn&& fn) const {
  // delta[i][off + R]: hash delta of translating dimension i by off. The
  // tables cost dim * (2R+1) mixes once; each of the O((2R+1)^d) offsets
  // then reconstructs its key hash with d wrapping adds.
  const int radius = offsets_.radius();
  DDC_DCHECK(radius <= kMaxOffsetRadius);
  uint64_t delta[kMaxDim][2 * kMaxOffsetRadius + 1];
  for (int i = 0; i < dim_; ++i) {
    const uint64_t base = CellKey::DimTerm(i, key[i]);
    for (int off = -radius; off <= radius; ++off) {
      delta[i][off + radius] = CellKey::DimTerm(i, key[i] + off) - base;
    }
  }
  for (const auto& off : offsets_.offsets()) {
    CellKey shifted = key;
    uint64_t h = key_hash;
    for (int i = 0; i < dim_; ++i) {
      shifted[i] += off[i];
      h += delta[i][off[i] + radius];
    }
    const CellId* c = cell_index_.FindHashed(h, shifted);
    if (c != nullptr) fn(*c);
  }
}

template <typename Fn>
void Grid::ForEachNearbyCell(const Point& q, Fn&& fn) const {
  ForEachNearbyCellTagged(q, [&](CellId c, bool) { fn(c); });
}

template <typename Fn>
void Grid::ForEachNearbyCellTagged(const Point& q, Fn&& fn) const {
  const CellKey key = CellKey::Of(q, dim_, side_);
  const uint64_t h = HashKey(key);
  const CellId* own = cell_index_.FindHashed(h, key);
  if (own != nullptr) {
    fn(*own, true);
    for (const CellId nb : cells_[*own].neighbors) fn(nb, false);
    return;
  }
  // The query point's own cell was never materialized: fall back to probing
  // the offset table.
  ForEachMaterializedShifted(key, h, [&](CellId c) { fn(c, false); });
}

template <typename Fn>
void Grid::ForEachPointInRange(const Point& q, double r, Fn&& fn) const {
  DDC_DCHECK(r <= eps_ * (1 + 1e-9));
  const double r_sq = r * r;
  const int dim = dim_;
  ForEachNearbyCell(q, [&](CellId c) {
    const Cell& cell = cells_[c];
    // Batched predicate over the cell's packed coordinates (SIMD where the
    // host supports it); verdicts are bit-identical to the scalar kernel.
    ForEachWithinPacked(q, cell.coords.data(), cell.points.size(), dim, r_sq,
                        [&](size_t i) { fn(cell.points[i]); });
  });
}

}  // namespace ddc

#endif  // DDC_GRID_GRID_H_
