#ifndef DDC_GRID_CELL_KEY_H_
#define DDC_GRID_CELL_KEY_H_

#include <array>
#include <cstdint>
#include <string>

#include "geom/point.h"

namespace ddc {

/// Integer coordinates of a grid cell. The grid (Section 4.1 of the paper)
/// tiles R^d with axis-parallel cells of side ε/√d, so that any two points in
/// the same cell are within ε of each other. Cell (k_1, ..., k_d) covers the
/// half-open box [k_i * side, (k_i + 1) * side) on each dimension.
class CellKey {
 public:
  CellKey() : c_{} {}

  /// Key of the cell covering `p` on a grid with the given side length.
  static CellKey Of(const Point& p, int dim, double side);

  int32_t operator[](int i) const { return c_[i]; }
  int32_t& operator[](int i) { return c_[i]; }

  friend bool operator==(const CellKey& a, const CellKey& b) {
    return a.c_ == b.c_;
  }

  /// Key translated by `offset` (component-wise, first `dim` coordinates).
  CellKey Shifted(const std::array<int32_t, kMaxDim>& offset, int dim) const;

  /// 64-bit mixing hash over all coordinates.
  uint64_t Hash() const;

  std::string ToString(int dim) const;

 private:
  std::array<int32_t, kMaxDim> c_;
};

/// Hash functor for unordered containers.
struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

}  // namespace ddc

#endif  // DDC_GRID_CELL_KEY_H_
