#ifndef DDC_GRID_CELL_KEY_H_
#define DDC_GRID_CELL_KEY_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "geom/point.h"

namespace ddc {

/// Integer coordinates of a grid cell. The grid (Section 4.1 of the paper)
/// tiles R^d with axis-parallel cells of side ε/√d, so that any two points in
/// the same cell are within ε of each other. Cell (k_1, ..., k_d) covers the
/// half-open box [k_i * side, (k_i + 1) * side) on each dimension.
class CellKey {
 public:
  CellKey() : c_{} {}

  /// Key of the cell covering `p` on a grid with the given side length.
  static CellKey Of(const Point& p, int dim, double side) {
    CellKey k;
    for (int i = 0; i < dim; ++i) {
      k.c_[i] = static_cast<int32_t>(std::floor(p[i] / side));
    }
    return k;
  }

  int32_t operator[](int i) const { return c_[i]; }
  int32_t& operator[](int i) { return c_[i]; }

  friend bool operator==(const CellKey& a, const CellKey& b) {
    return a.c_ == b.c_;
  }

  /// Key translated by `offset` (component-wise, first `dim` coordinates).
  CellKey Shifted(const std::array<int32_t, kMaxDim>& offset, int dim) const {
    CellKey k = *this;
    for (int i = 0; i < dim; ++i) k.c_[i] += offset[i];
    return k;
  }

  /// Independent hash contribution of coordinate value `c` on dimension `i`.
  /// The full hash is the wrapping sum of the per-dimension terms — a
  /// *decomposable* design: the hash of a translated key is the base hash
  /// plus the term deltas of the changed dimensions, which is how the grid
  /// probes its whole neighbor-offset table without re-mixing every key
  /// (see Grid::ForEachMaterializedShifted).
  static uint64_t DimTerm(int i, int32_t c) {
    // splitmix64 finalizer over (dimension, coordinate); each dimension gets
    // its own stream via the high 32 bits.
    uint64_t z = (static_cast<uint64_t>(static_cast<uint32_t>(i + 1)) << 32) ^
                 static_cast<uint32_t>(c);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// 64-bit hash: wrapping sum of DimTerm over all kMaxDim coordinates.
  uint64_t Hash() const {
    uint64_t h = 0;
    for (int i = 0; i < kMaxDim; ++i) h += DimTerm(i, c_[i]);
    return h;
  }

  std::string ToString(int dim) const;

 private:
  std::array<int32_t, kMaxDim> c_;
};

/// Hash functor for hash containers.
struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

}  // namespace ddc

#endif  // DDC_GRID_CELL_KEY_H_
