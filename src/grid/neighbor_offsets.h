#ifndef DDC_GRID_NEIGHBOR_OFFSETS_H_
#define DDC_GRID_NEIGHBOR_OFFSETS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace ddc {

/// Precomputed table of the integer offsets of all ε-close cells.
///
/// Two cells are ε-close when the minimum distance between their boundaries
/// is at most ε (Section 4.1). On a uniform grid of side ε/√d this is a
/// translation-invariant property of the coordinate offset, so the set of
/// candidate offsets — O((√d)^d) of them, the constant the paper explicitly
/// accepts for low dimensionality — is enumerated once per (dim, ε) and
/// reused for every cell.
class NeighborOffsets {
 public:
  /// Builds the table for dimension `dim` and cell side `side`, with
  /// closeness threshold `eps`. Requires side > 0 and eps > 0.
  NeighborOffsets(int dim, double side, double eps);

  /// All offsets z (excluding the zero vector) with
  /// minBoxDist(c, c + z) <= eps.
  const std::vector<std::array<int32_t, kMaxDim>>& offsets() const {
    return offsets_;
  }

  int dim() const { return dim_; }

  /// Every offset component lies in [-radius(), radius()].
  int radius() const { return radius_; }

 private:
  int dim_;
  int radius_;
  std::vector<std::array<int32_t, kMaxDim>> offsets_;
};

}  // namespace ddc

#endif  // DDC_GRID_NEIGHBOR_OFFSETS_H_
