#include "grid/grid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace ddc {

Grid::Grid(int dim, double eps)
    : dim_(dim),
      eps_(eps),
      side_(eps / std::sqrt(static_cast<double>(dim))),
      offsets_(dim, side_, eps) {
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(eps > 0);
  DDC_CHECK(offsets_.radius() <= kMaxOffsetRadius);
  for (int i = dim_; i < kMaxDim; ++i) {
    zero_tail_hash_ += CellKey::DimTerm(i, 0);
  }
}

double Grid::KeyGapSq(const CellKey& a, const CellKey& b) const {
  double gap_sq = 0;
  for (int i = 0; i < dim_; ++i) {
    const int g = std::abs(a[i] - b[i]) - 1;
    if (g > 0) gap_sq += static_cast<double>(g) * g * side_ * side_;
  }
  return gap_sq;
}

bool Grid::KeysAreEpsClose(const CellKey& a, const CellKey& b) const {
  // Same gap formula (and fp tolerance) as NeighborOffsets, so the two
  // discovery strategies in GetOrCreateCell agree exactly.
  return KeyGapSq(a, b) <= eps_ * eps_ * (1 + 1e-12);
}

void Grid::LinkNeighbors(CellId a, CellId b) {
  const double gap = KeyGapSq(cells_[a].key, cells_[b].key);
  for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    Cell& cell = cells_[from];
    const auto it = std::upper_bound(cell.neighbor_gaps.begin(),
                                     cell.neighbor_gaps.end(), gap);
    const size_t pos = static_cast<size_t>(it - cell.neighbor_gaps.begin());
    cell.neighbor_gaps.insert(it, gap);
    cell.neighbors.insert(cell.neighbors.begin() + pos, to);
  }
}

Grid::InsertResult Grid::Insert(const Point& p) {
  // Unused coordinates must be zero (the Point padding invariant): poisoned
  // padding would corrupt cell keys, packed mirrors, and equality tests.
  DDC_DCHECK(PaddingIsZero(p, dim_));
  const PointId id = static_cast<PointId>(records_.size());
  const CellKey key = CellKey::Of(p, dim_, side_);
  bool created = false;
  const CellId c = GetOrCreateCell(key, HashKey(key), &created);
  Cell& cell = cells_[c];
  records_.push_back(
      PointRecord{p, c, static_cast<int32_t>(cell.points.size())});
  cell.points.push_back(id);
  cell.coords.insert(cell.coords.end(), p.data(), p.data() + dim_);
  ++sizes_[c];
  ++alive_;
  return InsertResult{id, c, created};
}

CellId Grid::Delete(PointId id) {
  DDC_CHECK(alive(id));
  PointRecord& rec = records_[id];
  const CellId c = rec.cell;
  Cell& cell = cells_[c];
  // Swap-remove from the cell's point list and the mirrored coords.
  const int32_t pos = rec.index_in_cell;
  const PointId last = cell.points.back();
  cell.points[pos] = last;
  records_[last].index_in_cell = pos;
  cell.points.pop_back();
  double* coords = cell.coords.data();
  const size_t last_start = cell.coords.size() - dim_;
  for (int i = 0; i < dim_; ++i) {
    coords[pos * dim_ + i] = coords[last_start + i];
  }
  cell.coords.resize(last_start);
  rec.cell = kInvalidCell;
  rec.index_in_cell = -1;
  --sizes_[c];
  --alive_;
  return c;
}

Box Grid::cell_box(CellId c) const {
  const CellKey& key = cells_[c].key;
  Point lo, hi;
  for (int i = 0; i < dim_; ++i) {
    lo[i] = key[i] * side_;
    hi[i] = (key[i] + 1) * side_;
  }
  return Box(lo, hi);
}

CellId Grid::FindCell(const Point& p) const {
  const CellKey key = CellKey::Of(p, dim_, side_);
  const CellId* c = cell_index_.FindHashed(HashKey(key), key);
  return c == nullptr ? kInvalidCell : *c;
}

CellId Grid::GetOrCreateCell(const CellKey& key, uint64_t key_hash,
                             bool* created) {
  if (const CellId* found = cell_index_.FindHashed(key_hash, key)) {
    *created = false;
    return *found;
  }
  const CellId c = static_cast<CellId>(cells_.size());
  cells_.push_back(Cell{key, {}, {}, {}, {}});
  sizes_.push_back(0);
  keys_.push_back(key);
  DDC_COUNTER_INC("grid.cells_created");
  // The flat-hash index rehashes by reallocating its slot array; a capacity
  // change across the insert is exactly one rehash (counted here so the hash
  // table itself stays telemetry-free).
  const size_t index_capacity = cell_index_.capacity();
  cell_index_.EmplaceHashed(key_hash, key, c);
  if (cell_index_.capacity() != index_capacity) {
    DDC_COUNTER_INC("grid.index_rehashes");
  }
  // Link with every already-materialized ε-close cell; links are symmetric
  // and permanent (cells are never destroyed). Two discovery strategies with
  // identical outcomes: probing the translation-independent offset table, or
  // scanning all existing cells — the offset table grows like (2√d+3)^d
  // (~260k entries at d=7), so whichever side is smaller wins.
  if (cells_.size() - 1 < offsets_.offsets().size()) {
    for (CellId other = 0; other < c; ++other) {
      if (KeysAreEpsClose(key, cells_[other].key)) LinkNeighbors(c, other);
    }
  } else {
    ForEachMaterializedShifted(key, key_hash, [&](CellId nb) {
      if (nb != c) LinkNeighbors(c, nb);
    });
  }
  *created = true;
  return c;
}

}  // namespace ddc
