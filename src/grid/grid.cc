#include "grid/grid.h"

#include <cmath>

#include "common/check.h"

namespace ddc {

Grid::Grid(int dim, double eps)
    : dim_(dim),
      eps_(eps),
      side_(eps / std::sqrt(static_cast<double>(dim))),
      offsets_(dim, side_, eps) {
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(eps > 0);
}

bool Grid::KeysAreEpsClose(const CellKey& a, const CellKey& b) const {
  // Same gap formula (and fp tolerance) as NeighborOffsets, so the two
  // discovery strategies in GetOrCreateCell agree exactly.
  double gap_sq = 0;
  for (int i = 0; i < dim_; ++i) {
    const int g = std::abs(a[i] - b[i]) - 1;
    if (g > 0) gap_sq += static_cast<double>(g) * g * side_ * side_;
  }
  return gap_sq <= eps_ * eps_ * (1 + 1e-12);
}

Grid::InsertResult Grid::Insert(const Point& p) {
  const PointId id = static_cast<PointId>(records_.size());
  const CellKey key = CellKey::Of(p, dim_, side_);
  bool created = false;
  const CellId c = GetOrCreateCell(key, &created);
  records_.push_back(PointRecord{p, c, static_cast<int32_t>(cells_[c].points.size())});
  cells_[c].points.push_back(id);
  ++alive_;
  return InsertResult{id, c, created};
}

CellId Grid::Delete(PointId id) {
  DDC_CHECK(alive(id));
  PointRecord& rec = records_[id];
  const CellId c = rec.cell;
  Cell& cell = cells_[c];
  // Swap-remove from the cell's point list.
  const int32_t pos = rec.index_in_cell;
  const PointId last = cell.points.back();
  cell.points[pos] = last;
  records_[last].index_in_cell = pos;
  cell.points.pop_back();
  rec.cell = kInvalidCell;
  rec.index_in_cell = -1;
  --alive_;
  return c;
}

Box Grid::cell_box(CellId c) const {
  const CellKey& key = cells_[c].key;
  Point lo, hi;
  for (int i = 0; i < dim_; ++i) {
    lo[i] = key[i] * side_;
    hi[i] = (key[i] + 1) * side_;
  }
  return Box(lo, hi);
}

CellId Grid::FindCell(const Point& p) const {
  const auto it = cell_index_.find(CellKey::Of(p, dim_, side_));
  return it == cell_index_.end() ? kInvalidCell : it->second;
}

CellId Grid::GetOrCreateCell(const CellKey& key, bool* created) {
  const auto it = cell_index_.find(key);
  if (it != cell_index_.end()) {
    *created = false;
    return it->second;
  }
  const CellId c = static_cast<CellId>(cells_.size());
  cells_.push_back(Cell{key, {}, {}});
  cell_index_.emplace(key, c);
  // Link with every already-materialized ε-close cell; links are symmetric
  // and permanent (cells are never destroyed). Two discovery strategies with
  // identical outcomes: probing the translation-independent offset table, or
  // scanning all existing cells — the offset table grows like (2√d+3)^d
  // (~260k entries at d=7), so whichever side is smaller wins.
  Cell& me = cells_[c];
  if (cells_.size() - 1 < offsets_.offsets().size()) {
    for (CellId other = 0; other < c; ++other) {
      if (KeysAreEpsClose(key, cells_[other].key)) {
        me.neighbors.push_back(other);
        cells_[other].neighbors.push_back(c);
      }
    }
  } else {
    for (const auto& off : offsets_.offsets()) {
      const auto nb = cell_index_.find(key.Shifted(off, dim_));
      if (nb != cell_index_.end() && nb->second != c) {
        me.neighbors.push_back(nb->second);
        cells_[nb->second].neighbors.push_back(c);
      }
    }
  }
  *created = true;
  return c;
}

}  // namespace ddc
