#include "grid/neighbor_offsets.h"

#include <cmath>

#include "common/check.h"

namespace ddc {

NeighborOffsets::NeighborOffsets(int dim, double side, double eps) : dim_(dim) {
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(side > 0 && eps > 0);
  // Offsets beyond R in any coordinate are separated by more than eps:
  // an offset of |z| contributes boundary gap (|z| - 1) * side.
  const int radius = static_cast<int>(std::floor(eps / side)) + 1;
  radius_ = radius;
  const double eps_sq = eps * eps * (1 + 1e-12);  // Tolerate fp noise on ties.

  std::array<int32_t, kMaxDim> z{};
  // Iterative odometer over [-radius, radius]^dim.
  for (int i = 0; i < dim; ++i) z[i] = -radius;
  for (;;) {
    double gap_sq = 0;
    bool zero = true;
    for (int i = 0; i < dim; ++i) {
      if (z[i] != 0) zero = false;
      const int a = std::abs(z[i]) - 1;
      if (a > 0) gap_sq += static_cast<double>(a) * a * side * side;
    }
    if (!zero && gap_sq <= eps_sq) offsets_.push_back(z);
    // Advance odometer.
    int i = 0;
    while (i < dim && z[i] == radius) z[i++] = -radius;
    if (i == dim) break;
    ++z[i];
  }
}

}  // namespace ddc
