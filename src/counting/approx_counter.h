#ifndef DDC_COUNTING_APPROX_COUNTER_H_
#define DDC_COUNTING_APPROX_COUNTER_H_

#include <vector>

#include "common/flat_hash.h"
#include "core/params.h"
#include "geom/point.h"
#include "grid/cell_key.h"
#include "grid/grid.h"

namespace ddc {

/// Which counting implementation backs the relaxed core predicate.
enum class CounterKind {
  /// Exact |B(q, ε)| with early exit at the cap. Exact counts trivially lie
  /// in [|B(q,ε)|, |B(q,(1+ρ)ε)|], so this is a conforming (if
  /// worst-case-slower) implementation.
  kExact,
  /// Points bucketed on a sub-grid of side ρε/(2√d) per cell; a bucket whose
  /// center is within ε(1+ρ/2) of q is counted wholesale, others not at all.
  /// Every point within ε has its bucket center within ε(1+ρ/4) (counted),
  /// and every counted point is within ε(1+3ρ/4) < (1+ρ)ε — conforming.
  /// This is our stand-in for the Mount–Park structure [16] (see DESIGN.md).
  kSubGrid,
};

/// Dynamic approximate range counting (Section 7.3): returns an integer k
/// with |B(q, ε)| <= k <= |B(q, (1+ρ)ε)|, the primitive deciding the relaxed
/// (ρ-double-approximate) core predicate. Under that predicate only the
/// comparison k >= MinPts matters, so queries take a cap and may stop early.
class ApproxRangeCounter {
 public:
  /// `grid` must outlive the counter. For kSubGrid the counter maintains
  /// per-cell bucket maps, updated through OnInsert/OnDelete.
  ApproxRangeCounter(const Grid* grid, const DbscanParams& params,
                     CounterKind kind);

  /// Must be called right after `grid`->Insert(p) / before Delete(p) effects
  /// are needed. No-ops for kExact.
  void OnInsert(PointId p, CellId cell);
  void OnDelete(PointId p, CellId cell);

  /// A conforming count, truncated at `cap`: when the true answer is >= cap
  /// the query may return exactly `cap`.
  int Count(const Point& q, int cap) const;

  /// Count for a query point whose (materialized) cell is already known —
  /// the core trackers always have it — saving the key/hash/index work.
  int CountFromCell(const Point& q, CellId home, int cap) const;

  CounterKind kind() const { return kind_; }

 private:
  struct BucketMap {
    FlatHashMap<CellKey, int32_t, CellKeyHash> counts;
  };

  CellKey SubKey(const Point& p) const;

  /// Shared bodies: `home` is the query's cell when known, kInvalidCell to
  /// locate it from the coordinates.
  int ExactCount(const Point& q, CellId home, int cap) const;
  int SubGridCount(const Point& q, CellId home, int cap) const;

  const Grid* grid_;
  DbscanParams params_;
  CounterKind kind_;
  double sub_side_ = 0;
  double test_radius_sq_ = 0;
  double eps_sq_;
  /// Indexed by CellId (grown lazily); only for kSubGrid.
  std::vector<BucketMap> buckets_;
};

}  // namespace ddc

#endif  // DDC_COUNTING_APPROX_COUNTER_H_
