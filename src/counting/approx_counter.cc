#include "counting/approx_counter.h"

#include <cmath>

#include "common/check.h"

namespace ddc {

ApproxRangeCounter::ApproxRangeCounter(const Grid* grid,
                                       const DbscanParams& params,
                                       CounterKind kind)
    : grid_(grid),
      params_(params),
      kind_(kind),
      eps_sq_(params.eps * params.eps) {
  if (kind_ == CounterKind::kSubGrid && params_.rho > 0) {
    sub_side_ = params_.rho * params_.eps /
                (2.0 * std::sqrt(static_cast<double>(params_.dim)));
    const double t = params_.eps * (1 + params_.rho / 2);
    test_radius_sq_ = t * t;
  } else {
    // Exact semantics (rho == 0 has no don't-care band to exploit).
    kind_ = CounterKind::kExact;
  }
}

CellKey ApproxRangeCounter::SubKey(const Point& p) const {
  return CellKey::Of(p, params_.dim, sub_side_);
}

void ApproxRangeCounter::OnInsert(PointId p, CellId cell) {
  if (kind_ != CounterKind::kSubGrid) return;
  if (static_cast<size_t>(cell) >= buckets_.size()) {
    buckets_.resize(grid_->num_cells());
  }
  ++buckets_[cell].counts[SubKey(grid_->point(p))];
}

void ApproxRangeCounter::OnDelete(PointId p, CellId cell) {
  if (kind_ != CounterKind::kSubGrid) return;
  DDC_CHECK(static_cast<size_t>(cell) < buckets_.size());
  auto& counts = buckets_[cell].counts;
  const auto it = counts.find(SubKey(grid_->point(p)));
  DDC_CHECK(it != counts.end() && it->second > 0);
  if (--it->second == 0) counts.erase(it);
}

int ApproxRangeCounter::Count(const Point& q, int cap) const {
  int count = 0;
  if (kind_ == CounterKind::kExact) {
    grid_->ForEachNearbyCell(q, [&](CellId c) {
      if (count >= cap) return;
      for (const PointId pid : grid_->cell(c).points) {
        if (SquaredDistance(q, grid_->point(pid), params_.dim) <= eps_sq_) {
          if (++count >= cap) return;
        }
      }
    });
    return count;
  }
  // Sub-grid mode: test bucket centers.
  grid_->ForEachNearbyCell(q, [&](CellId c) {
    if (count >= cap || static_cast<size_t>(c) >= buckets_.size()) return;
    for (const auto& [key, n] : buckets_[c].counts) {
      Point center;
      for (int i = 0; i < params_.dim; ++i) {
        center[i] = (key[i] + 0.5) * sub_side_;
      }
      if (SquaredDistance(q, center, params_.dim) <= test_radius_sq_) {
        count += n;
        if (count >= cap) return;
      }
    }
  });
  return std::min(count, cap);
}

}  // namespace ddc
