#include "counting/approx_counter.h"

#include <cmath>

#include "common/check.h"
#include "geom/simd_kernels.h"

namespace ddc {

ApproxRangeCounter::ApproxRangeCounter(const Grid* grid,
                                       const DbscanParams& params,
                                       CounterKind kind)
    : grid_(grid),
      params_(params),
      kind_(kind),
      eps_sq_(params.eps * params.eps) {
  if (kind_ == CounterKind::kSubGrid && params_.rho > 0) {
    sub_side_ = params_.rho * params_.eps /
                (2.0 * std::sqrt(static_cast<double>(params_.dim)));
    const double t = params_.eps * (1 + params_.rho / 2);
    test_radius_sq_ = t * t;
  } else {
    // Exact semantics (rho == 0 has no don't-care band to exploit).
    kind_ = CounterKind::kExact;
  }
}

CellKey ApproxRangeCounter::SubKey(const Point& p) const {
  return CellKey::Of(p, params_.dim, sub_side_);
}

void ApproxRangeCounter::OnInsert(PointId p, CellId cell) {
  if (kind_ != CounterKind::kSubGrid) return;
  if (static_cast<size_t>(cell) >= buckets_.size()) {
    buckets_.resize(grid_->num_cells());
  }
  const CellKey key = SubKey(grid_->point(p));
  ++*buckets_[cell].counts.EmplaceHashed(key.Hash(), key).first;
}

void ApproxRangeCounter::OnDelete(PointId p, CellId cell) {
  if (kind_ != CounterKind::kSubGrid) return;
  DDC_CHECK(static_cast<size_t>(cell) < buckets_.size());
  auto& counts = buckets_[cell].counts;
  const CellKey key = SubKey(grid_->point(p));
  const uint64_t hash = key.Hash();
  int32_t* n = counts.FindHashed(hash, key);
  DDC_CHECK(n != nullptr && *n > 0);
  if (--*n == 0) counts.EraseHashed(hash, key);
}

int ApproxRangeCounter::Count(const Point& q, int cap) const {
  return kind_ == CounterKind::kExact ? ExactCount(q, kInvalidCell, cap)
                                      : SubGridCount(q, kInvalidCell, cap);
}

int ApproxRangeCounter::CountFromCell(const Point& q, CellId home,
                                      int cap) const {
  return kind_ == CounterKind::kExact ? ExactCount(q, home, cap)
                                      : SubGridCount(q, home, cap);
}

int ApproxRangeCounter::ExactCount(const Point& q, CellId home,
                                   int cap) const {
  int count = 0;
  const int dim = params_.dim;
  const auto visit = [&](CellId c, bool own) {
    if (count >= cap) return;
    const int n = grid_->cell_size(c);
    if (own) {
      // Same-cell points are within ε of q by the grid geometry (side
      // ε/√d) — the invariant the core trackers already build on — so the
      // whole cell counts without a distance test.
      count = std::min(count + n, cap);
      return;
    }
    if (n == 0) return;
    // Whole-cell prefilter: when even the nearest point of the cell's box
    // is beyond ε, no resident can qualify (kBoxPrefilterSlack guards the
    // boundary). Key and size come from the grid's packed mirrors; the
    // cell struct itself is only pulled in for a real scan.
    const double side = grid_->side();
    const CellKey& key = grid_->cell_key(c);
    double box_sq = 0;
    for (int i = 0; i < dim; ++i) {
      const double lo = key[i] * side;
      double d = 0;
      if (q[i] < lo) {
        d = lo - q[i];
      } else if (q[i] > lo + side) {
        d = q[i] - (lo + side);
      }
      box_sq += d * d;
    }
    if (box_sq > eps_sq_ * (1 + kBoxPrefilterSlack)) return;
    // Batched capped count over the cell's packed coordinates; identical to
    // the scalar count-with-early-exit (both clamp at cap).
    count += CountWithinPacked(q, grid_->cell(c).coords.data(), n, dim,
                               eps_sq_, cap - count);
  };
  if (home != kInvalidCell) {
    grid_->ForEachNearbyCellOfTagged(home, visit);
  } else {
    grid_->ForEachNearbyCellTagged(q, visit);
  }
  return count;
}

int ApproxRangeCounter::SubGridCount(const Point& q, CellId home,
                                     int cap) const {
  int count = 0;
  const int dim = params_.dim;
  const auto visit = [&](CellId c, bool) {
    if (count >= cap || static_cast<size_t>(c) >= buckets_.size()) return;
    for (const auto& [key, n] : buckets_[c].counts) {
      Point center;
      for (int i = 0; i < dim; ++i) {
        center[i] = (key[i] + 0.5) * sub_side_;
      }
      if (WithinSquared(q, center, dim, test_radius_sq_)) {
        count += n;
        if (count >= cap) return;
      }
    }
  };
  if (home != kInvalidCell) {
    grid_->ForEachNearbyCellOfTagged(home, visit);
  } else {
    grid_->ForEachNearbyCellTagged(q, visit);
  }
  return std::min(count, cap);
}

}  // namespace ddc
