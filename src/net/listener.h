#ifndef DDC_NET_LISTENER_H_
#define DDC_NET_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

namespace ddc {

/// \file
/// The repo's first networking code, deliberately minimal and read-only: a
/// localhost-only TCP listener that accepts one connection at a time, reads
/// a single request, hands the raw bytes to a handler, writes the returned
/// bytes back, and closes. Enough for a stats scrape; nothing else. No
/// TLS, no keep-alive, no concurrency — the stats endpoints it carries are
/// cheap and the client is a collector polling every few seconds.

/// Localhost TCP listener running an accept loop on its own thread.
///
/// The handler receives the request bytes read from the connection (up to
/// one read buffer — fine for the one-line GETs this serves) and returns
/// the full response bytes to write back. It runs on the listener thread;
/// it must not block indefinitely.
class TcpListener {
 public:
  using Handler = std::function<std::string(std::string_view request)>;

  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port), starts the
  /// accept thread, and returns true. On failure returns false with the
  /// reason in error(). Call once.
  bool Start(int port, Handler handler);

  /// Stops the accept loop and joins the thread (idempotent; also called by
  /// the destructor). In-flight requests finish first.
  void Stop();

  /// The bound port (the actual one when Start was given 0); 0 before
  /// Start().
  int port() const { return port_; }

  /// Empty when healthy; the bind/listen failure reason otherwise.
  const std::string& error() const { return error_; }

  /// Connections accepted so far (monotone; for tests and /varz).
  int64_t connections_handled() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void Run();

  int listen_fd_ = -1;
  int port_ = 0;
  std::string error_;
  Handler handler_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> connections_{0};
};

}  // namespace ddc

#endif  // DDC_NET_LISTENER_H_
