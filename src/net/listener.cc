#include "net/listener.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

namespace ddc {

namespace {

std::string Describe(const char* op, int err) {
  return std::string(op) + " failed: " + ::strerror(err);
}

}  // namespace

TcpListener::~TcpListener() { Stop(); }

bool TcpListener::Start(int port, Handler handler) {
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = Describe("socket", errno);
    return false;
  }
  const int one = 1;
  // Tests restart listeners quickly; without SO_REUSEADDR a TIME_WAIT
  // remnant would make the re-bind flaky.
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Localhost only.
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = Describe("bind", errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    error_ = Describe("listen", errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    error_ = Describe("getsockname", errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void TcpListener::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpListener::Run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // poll with a short timeout instead of a blocking accept: the stop flag
    // gets checked every pass, so Stop() never waits on a connection that
    // will never come.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check stop flag.

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);

    // A stuck or malicious client must not wedge the accept loop: bound
    // both directions with socket timeouts.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    char buf[4096];
    const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
    if (n > 0) {
      const std::string response =
          handler_(std::string_view(buf, static_cast<size_t>(n)));
      size_t off = 0;
      while (off < response.size()) {
        const ssize_t w =
            ::send(conn, response.data() + off, response.size() - off,
                   MSG_NOSIGNAL);
        if (w <= 0) break;  // Timeout or client gone: drop the rest.
        off += static_cast<size_t>(w);
      }
    }
    ::close(conn);
  }
}

}  // namespace ddc
