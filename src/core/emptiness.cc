#include "core/emptiness.h"

#include <cmath>

#include "common/check.h"
#include "grid/cell_key.h"
#include "spatial/kd_tree.h"

namespace ddc {
namespace {

/// Flat vector of members with an id->position map for O(1) swap-removal.
class BruteForceEmptiness final : public EmptinessStructure {
 public:
  BruteForceEmptiness(const Grid* grid, const DbscanParams& params)
      : grid_(grid),
        dim_(params.dim),
        outer_sq_(params.eps_outer() * params.eps_outer()) {}

  void Insert(PointId p) override {
    DDC_DCHECK(pos_.count(p) == 0);
    pos_[p] = static_cast<int>(members_.size());
    members_.push_back(p);
  }

  void Remove(PointId p) override {
    const auto it = pos_.find(p);
    DDC_CHECK(it != pos_.end());
    const int i = it->second;
    const PointId last = members_.back();
    members_[i] = last;
    pos_[last] = i;
    members_.pop_back();
    pos_.erase(it);
  }

  int size() const override { return static_cast<int>(members_.size()); }

  PointId Query(const Point& q) const override {
    for (const PointId p : members_) {
      if (SquaredDistance(q, grid_->point(p), dim_) <= outer_sq_) return p;
    }
    return kInvalidPoint;
  }

  void ForEach(const std::function<void(PointId)>& fn) const override {
    for (const PointId p : members_) fn(p);
  }

 private:
  const Grid* grid_;
  int dim_;
  double outer_sq_;
  std::vector<PointId> members_;
  std::unordered_map<PointId, int> pos_;
};

/// Members bucketed on a sub-grid of side ρε/(2√d). A bucket has diameter at
/// most ρε/2, so testing one representative against radius ε(1+ρ/2) is a
/// conforming approximate emptiness query (see header).
class SubGridEmptiness final : public EmptinessStructure {
 public:
  SubGridEmptiness(const Grid* grid, const DbscanParams& params)
      : grid_(grid),
        dim_(params.dim),
        sub_side_(params.rho * params.eps /
                  (2.0 * std::sqrt(static_cast<double>(params.dim)))),
        test_radius_sq_(params.eps * (1 + params.rho / 2) * params.eps *
                        (1 + params.rho / 2)) {
    DDC_CHECK(params.rho > 0);
  }

  void Insert(PointId p) override {
    buckets_[SubKey(p)].push_back(p);
    ++size_;
  }

  void Remove(PointId p) override {
    const CellKey key = SubKey(p);
    const auto it = buckets_.find(key);
    DDC_CHECK(it != buckets_.end());
    auto& v = it->second;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == p) {
        v[i] = v.back();
        v.pop_back();
        if (v.empty()) buckets_.erase(it);
        --size_;
        return;
      }
    }
    DDC_CHECK(false);  // Member not found.
  }

  int size() const override { return size_; }

  PointId Query(const Point& q) const override {
    for (const auto& [key, members] : buckets_) {
      DDC_DCHECK(!members.empty());
      if (SquaredDistance(q, grid_->point(members[0]), dim_) <=
          test_radius_sq_) {
        return members[0];
      }
    }
    return kInvalidPoint;
  }

  void ForEach(const std::function<void(PointId)>& fn) const override {
    for (const auto& [key, members] : buckets_) {
      for (const PointId p : members) fn(p);
    }
  }

 private:
  CellKey SubKey(PointId p) const {
    return CellKey::Of(grid_->point(p), dim_, sub_side_);
  }

  const Grid* grid_;
  int dim_;
  double sub_side_;
  double test_radius_sq_;
  std::unordered_map<CellKey, std::vector<PointId>, CellKeyHash> buckets_;
  int size_ = 0;
};

/// Emptiness through the dynamic kd-tree: FindWithin at radius (1+ρ)ε is a
/// conforming query (any hit is a valid proof; a miss certifies no member
/// within (1+ρ)ε, in particular none within ε).
class KdTreeEmptiness final : public EmptinessStructure {
 public:
  KdTreeEmptiness(const Grid* grid, const DbscanParams& params)
      : outer_(params.eps_outer()),
        tree_(grid, &KdTreeEmptiness::Coords, params.dim) {}

  void Insert(PointId p) override { tree_.Insert(p); }
  void Remove(PointId p) override { tree_.Remove(p); }
  int size() const override { return tree_.size(); }

  PointId Query(const Point& q) const override {
    return tree_.FindWithin(q, outer_);
  }

  void ForEach(const std::function<void(PointId)>& fn) const override {
    tree_.ForEach(fn);
  }

 private:
  static const Point& Coords(const void* ctx, PointId id) {
    return static_cast<const Grid*>(ctx)->point(id);
  }

  double outer_;
  KdTree tree_;
};

}  // namespace

std::unique_ptr<EmptinessStructure> MakeEmptinessStructure(
    EmptinessKind kind, const Grid* grid, const DbscanParams& params) {
  switch (kind) {
    case EmptinessKind::kSubGrid:
      if (params.rho > 0) {
        return std::make_unique<SubGridEmptiness>(grid, params);
      }
      break;  // No don't-care band to bucket on: fall back to brute force.
    case EmptinessKind::kKdTree:
      return std::make_unique<KdTreeEmptiness>(grid, params);
    case EmptinessKind::kBruteForce:
      break;
  }
  return std::make_unique<BruteForceEmptiness>(grid, params);
}

}  // namespace ddc
