#include "core/emptiness.h"

#include <cmath>

#include "common/check.h"
#include "common/flat_hash.h"
#include "geom/simd_kernels.h"
#include "grid/cell_key.h"
#include "spatial/kd_tree.h"

namespace ddc {
namespace {

/// Shared cell-box prefilter: true when the query provably misses every
/// point inside `box` at radius² `r_sq` (see kBoxPrefilterSlack).
inline bool BoxMiss(const Box* box, bool has_box, const Point& q, int dim,
                    double r_sq) {
  return has_box &&
         box->MinSquaredDistance(q, dim) > r_sq * (1 + kBoxPrefilterSlack);
}

/// Flat vector of members with an id->position map for O(1) swap-removal.
/// Member coordinates are mirrored in a packed array (`dim` doubles per
/// member, same order), so Query — the aBCP witness probe, the hottest
/// emptiness call — streams memory sequentially.
class BruteForceEmptiness final : public EmptinessStructure {
 public:
  BruteForceEmptiness(const Grid* grid, const DbscanParams& params,
                      const Box* cell_box, std::vector<int32_t>* slots)
      : grid_(grid),
        dim_(params.dim),
        outer_sq_(params.eps_outer() * params.eps_outer()),
        has_box_(cell_box != nullptr),
        box_(cell_box != nullptr ? *cell_box : Box()),
        slots_(slots) {}

  void Insert(PointId p) override {
    const int32_t i = static_cast<int32_t>(members_.size());
    if (slots_ != nullptr) {
      if (static_cast<size_t>(p) >= slots_->size()) slots_->resize(p + 1);
      (*slots_)[p] = i;
    } else {
      DDC_DCHECK(!pos_.Contains(p));
      pos_[p] = i;
    }
    members_.push_back(p);
    const Point& pt = grid_->point(p);
    for (int k = 0; k < dim_; ++k) coords_.push_back(pt[k]);
  }

  void Remove(PointId p) override {
    int32_t i;
    if (slots_ != nullptr) {
      i = (*slots_)[p];
      DDC_DCHECK(static_cast<size_t>(i) < members_.size() &&
                 members_[i] == p);
    } else {
      int32_t* slot = pos_.Find(p);
      DDC_CHECK(slot != nullptr);
      i = *slot;
    }
    const PointId last = members_.back();
    members_[i] = last;
    if (slots_ != nullptr) {
      (*slots_)[last] = i;
    } else {
      pos_[last] = i;
      pos_.Erase(p);
    }
    members_.pop_back();
    const size_t last_start = coords_.size() - dim_;
    for (int k = 0; k < dim_; ++k) {
      coords_[i * dim_ + k] = coords_[last_start + k];
    }
    coords_.resize(last_start);
  }

  int size() const override { return static_cast<int>(members_.size()); }

  bool Contains(PointId p) const override {
    if (slots_ != nullptr) {
      // Stale registry entries are harmless: the slot is validated against
      // the member list (a non-member can never pass — members_ holds only
      // members).
      if (static_cast<size_t>(p) >= slots_->size()) return false;
      const int32_t i = (*slots_)[p];
      return static_cast<size_t>(i) < members_.size() && members_[i] == p;
    }
    return pos_.Contains(p);
  }

  PointId Query(const Point& q) const override {
    if (BoxMiss(&box_, has_box_, q, dim_, outer_sq_)) return kInvalidPoint;
    // Newest-first: any member within range is a valid proof, and recently
    // promoted members make longer-lived aBCP witnesses under FIFO churn
    // (the oldest member is the next one to expire). The batched tail-first
    // probe preserves that order.
    const int i = FindLastWithinPacked(q, coords_.data(),
                                       static_cast<int>(members_.size()),
                                       dim_, outer_sq_);
    return i >= 0 ? members_[i] : kInvalidPoint;
  }

  void ForEach(const std::function<void(PointId)>& fn) const override {
    for (const PointId p : members_) fn(p);
  }

 private:
  const Grid* grid_;
  int dim_;
  double outer_sq_;
  bool has_box_;
  Box box_;
  std::vector<int32_t>* slots_;  // Shared registry; nullptr -> use pos_.
  std::vector<PointId> members_;
  std::vector<double> coords_;
  FlatHashMap<PointId, int32_t> pos_;
};

/// Members bucketed on a sub-grid of side ρε/(2√d). A bucket has diameter at
/// most ρε/2, so testing one representative against radius ε(1+ρ/2) is a
/// conforming approximate emptiness query (see header).
class SubGridEmptiness final : public EmptinessStructure {
 public:
  SubGridEmptiness(const Grid* grid, const DbscanParams& params,
                   const Box* cell_box)
      : grid_(grid),
        dim_(params.dim),
        sub_side_(params.rho * params.eps /
                  (2.0 * std::sqrt(static_cast<double>(params.dim)))),
        test_radius_sq_(params.eps * (1 + params.rho / 2) * params.eps *
                        (1 + params.rho / 2)),
        has_box_(cell_box != nullptr),
        box_(cell_box != nullptr ? *cell_box : Box()) {
    DDC_CHECK(params.rho > 0);
  }

  void Insert(PointId p) override {
    const CellKey key = SubKey(p);
    buckets_.EmplaceHashed(key.Hash(), key).first->push_back(p);
    ++size_;
  }

  void Remove(PointId p) override {
    const CellKey key = SubKey(p);
    const uint64_t hash = key.Hash();
    std::vector<PointId>* v = buckets_.FindHashed(hash, key);
    DDC_CHECK(v != nullptr);
    for (size_t i = 0; i < v->size(); ++i) {
      if ((*v)[i] == p) {
        (*v)[i] = v->back();
        v->pop_back();
        if (v->empty()) buckets_.EraseHashed(hash, key);
        --size_;
        return;
      }
    }
    DDC_CHECK(false);  // Member not found.
  }

  int size() const override { return size_; }

  bool Contains(PointId p) const override {
    const CellKey key = SubKey(p);
    const std::vector<PointId>* v = buckets_.FindHashed(key.Hash(), key);
    if (v == nullptr) return false;
    for (const PointId m : *v) {
      if (m == p) return true;
    }
    return false;
  }

  PointId Query(const Point& q) const override {
    // Bucket representatives are members, hence inside the cell box.
    if (BoxMiss(&box_, has_box_, q, dim_, test_radius_sq_)) {
      return kInvalidPoint;
    }
    for (const auto& [key, members] : buckets_) {
      DDC_DCHECK(!members.empty());
      // Testing one representative per bucket is what makes this conforming
      // (see header); returning the newest keeps witnesses longer-lived
      // under FIFO churn.
      if (WithinSquared(q, grid_->point(members[0]), dim_, test_radius_sq_)) {
        return members.back();
      }
    }
    return kInvalidPoint;
  }

  void ForEach(const std::function<void(PointId)>& fn) const override {
    for (const auto& [key, members] : buckets_) {
      for (const PointId p : members) fn(p);
    }
  }

 private:
  CellKey SubKey(PointId p) const {
    return CellKey::Of(grid_->point(p), dim_, sub_side_);
  }

  const Grid* grid_;
  int dim_;
  double sub_side_;
  double test_radius_sq_;
  bool has_box_;
  Box box_;
  FlatHashMap<CellKey, std::vector<PointId>, CellKeyHash> buckets_;
  int size_ = 0;
};

/// Emptiness through the dynamic kd-tree: FindWithin at radius (1+ρ)ε is a
/// conforming query (any hit is a valid proof; a miss certifies no member
/// within (1+ρ)ε, in particular none within ε).
class KdTreeEmptiness final : public EmptinessStructure {
 public:
  KdTreeEmptiness(const Grid* grid, const DbscanParams& params)
      : outer_(params.eps_outer()),
        tree_(grid, &KdTreeEmptiness::Coords, params.dim) {}

  void Insert(PointId p) override {
    tree_.Insert(p);
    members_.Insert(p);
  }
  void Remove(PointId p) override {
    tree_.Remove(p);
    members_.Erase(p);
  }
  int size() const override { return tree_.size(); }

  bool Contains(PointId p) const override { return members_.Contains(p); }

  PointId Query(const Point& q) const override {
    return tree_.FindWithin(q, outer_);
  }

  void ForEach(const std::function<void(PointId)>& fn) const override {
    tree_.ForEach(fn);
  }

 private:
  static const Point& Coords(const void* ctx, PointId id) {
    return static_cast<const Grid*>(ctx)->point(id);
  }

  double outer_;
  KdTree tree_;
  FlatHashSet<PointId> members_;  // The tree has no id lookup of its own.
};

}  // namespace

std::unique_ptr<EmptinessStructure> MakeEmptinessStructure(
    EmptinessKind kind, const Grid* grid, const DbscanParams& params,
    const Box* cell_box, std::vector<int32_t>* slot_registry) {
  switch (kind) {
    case EmptinessKind::kSubGrid:
      if (params.rho > 0) {
        return std::make_unique<SubGridEmptiness>(grid, params, cell_box);
      }
      break;  // No don't-care band to bucket on: fall back to brute force.
    case EmptinessKind::kKdTree:
      // The kd-tree prunes with its own node bounding boxes already.
      return std::make_unique<KdTreeEmptiness>(grid, params);
    case EmptinessKind::kBruteForce:
      break;
  }
  return std::make_unique<BruteForceEmptiness>(grid, params, cell_box,
                                               slot_registry);
}

}  // namespace ddc
