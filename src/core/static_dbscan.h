#ifndef DDC_CORE_STATIC_DBSCAN_H_
#define DDC_CORE_STATIC_DBSCAN_H_

#include <string>
#include <vector>

#include "core/clusterer.h"
#include "core/params.h"
#include "geom/point.h"

namespace ddc {

/// A full static clustering: the reference output of exact DBSCAN [9].
struct StaticClustering {
  /// is_core[i] — whether input point i is a core point.
  std::vector<bool> is_core;

  /// cluster_ids[i] — distinct cluster ids point i belongs to (exactly one
  /// for core points; zero or more for non-core points; empty means noise).
  /// Ids are dense in [0, num_clusters).
  std::vector<std::vector<int>> cluster_ids;

  int num_clusters = 0;

  /// The clustering as groups of ids, mapping input position i to ids[i]
  /// (pass the identity to keep positions). Canonicalized.
  CGroupByResult ToGroups(const std::vector<PointId>& ids) const;

  /// ToGroups with the identity mapping 0..n-1.
  CGroupByResult ToGroups() const;
};

/// Runs exact DBSCAN on `points` with (params.eps, params.min_pts); rho is
/// ignored. Grid-accelerated but otherwise direct from the definition, so it
/// serves as the ground-truth oracle for every dynamic algorithm in this
/// repository (with ρ = 0 the dynamic algorithms must match it exactly).
StaticClustering StaticDbscan(const std::vector<Point>& points,
                              const DbscanParams& params);

/// Verifies the sandwich guarantee (Theorem 3) over a common id space:
/// every group of `lower` (clusters of exact DBSCAN at ε) must be contained
/// in some group of `reported`, and every group of `reported` must be
/// contained in some group of `upper` (clusters of exact DBSCAN at (1+ρ)ε).
/// Returns true when both inclusions hold; otherwise fills `*why` (if
/// non-null) with an explanation.
bool CheckSandwich(const CGroupByResult& lower, const CGroupByResult& reported,
                   const CGroupByResult& upper, std::string* why);

}  // namespace ddc

#endif  // DDC_CORE_STATIC_DBSCAN_H_
