#ifndef DDC_CORE_RELAXED_CORE_TRACKER_H_
#define DDC_CORE_RELAXED_CORE_TRACKER_H_

#include <functional>
#include <vector>

#include "core/params.h"
#include "counting/approx_counter.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {

/// The fully-dynamic core-status structure (Section 7.3) for the relaxed,
/// ρ-double-approximate core predicate of Section 6.2: a point is declared
/// core iff an approximate range count returns k >= MinPts, where k lies in
/// [|B(p,ε)|, |B(p,(1+ρ)ε)|]. Points whose true counts fall in the
/// don't-care band may be declared either way; the declared statuses define
/// one consistent legal clustering.
///
/// Status can change only for points in sparse cells: a dense cell pins all
/// of its residents to "definitely core" (any two same-cell points are
/// within ε). Each update therefore re-examines the O(1) ε-close sparse
/// cells (each holding < MinPts points) plus the own cell when it is not
/// dense — O~(1) work per update with an O~(1) counter.
class RelaxedCoreTracker {
 public:
  RelaxedCoreTracker(const Grid* grid, const ApproxRangeCounter* counter,
                     const DbscanParams& params);

  /// Processes the insertion of `pid` into `cell` (grid and counter already
  /// updated). Emits `on_promote(q, cell_of_q)` for every point that turned
  /// core, possibly including `pid`.
  void OnInsert(PointId pid, CellId cell,
                const std::function<void(PointId, CellId)>& on_promote);

  /// Processes a deletion out of `cell` (grid and counter already updated;
  /// the deleted point's own demotion, if it was core, must be handled by
  /// the caller beforehand). Emits `on_demote(q, cell_of_q)` for every
  /// remaining point that lost core status.
  void OnDelete(CellId cell,
                const std::function<void(PointId, CellId)>& on_demote);

  bool is_core(PointId pid) const { return is_core_[pid]; }

  /// Clears the flag of a point being deleted (caller handles GUM fallout).
  void ClearCore(PointId pid) { is_core_[pid] = false; }

 private:
  bool QueryCore(PointId pid) const;

  const Grid* grid_;
  const ApproxRangeCounter* counter_;
  DbscanParams params_;
  std::vector<bool> is_core_;
};

}  // namespace ddc

#endif  // DDC_CORE_RELAXED_CORE_TRACKER_H_
