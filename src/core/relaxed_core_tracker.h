#ifndef DDC_CORE_RELAXED_CORE_TRACKER_H_
#define DDC_CORE_RELAXED_CORE_TRACKER_H_

#include <utility>
#include <vector>

#include "common/check.h"
#include "core/params.h"
#include "counting/approx_counter.h"
#include "geom/point.h"
#include "grid/grid.h"
#include "telemetry/metrics.h"

namespace ddc {

/// The fully-dynamic core-status structure (Section 7.3) for the relaxed,
/// ρ-double-approximate core predicate of Section 6.2: a point is declared
/// core iff an approximate range count returns k >= MinPts, where k lies in
/// [|B(p,ε)|, |B(p,(1+ρ)ε)|]. Points whose true counts fall in the
/// don't-care band may be declared either way; the declared statuses define
/// one consistent legal clustering.
///
/// Status can change only for points in sparse cells: a dense cell pins all
/// of its residents to "definitely core" (any two same-cell points are
/// within ε). Each update therefore re-examines the O(1) ε-close sparse
/// cells (each holding < MinPts points) plus the own cell when it is not
/// dense — O~(1) work per update with an O~(1) counter.
class RelaxedCoreTracker {
 public:
  RelaxedCoreTracker(const Grid* grid, const ApproxRangeCounter* counter,
                     const DbscanParams& params);

  /// Processes the insertion of `pid` into `cell` (grid and counter already
  /// updated). Emits `on_promote(q, cell_of_q)` for every point that turned
  /// core, possibly including `pid`. Templated on the callback so the
  /// per-update path never materializes a std::function.
  template <typename Fn>
  void OnInsert(PointId pid, CellId cell, Fn&& on_promote);

  /// Processes the deletion of `deleted` out of `cell` (grid and counter
  /// already updated; the deleted point's own demotion, if it was core, must
  /// be handled by the caller beforehand). Emits `on_demote(q, cell_of_q)`
  /// for every remaining point that lost core status.
  template <typename Fn>
  void OnDelete(PointId deleted, CellId cell, Fn&& on_demote);

  bool is_core(PointId pid) const { return is_core_[pid]; }

  /// Clears the flag of a point being deleted (caller handles GUM fallout).
  void ClearCore(PointId pid) { is_core_[pid] = false; }

 private:
  bool QueryCore(PointId pid) const;

  const Grid* grid_;
  const ApproxRangeCounter* counter_;
  DbscanParams params_;
  /// Re-query filter radius², (1+ρ)ε squared: an update farther than this
  /// from a point cannot change any conforming count for it, so its declared
  /// status stays valid without a counter query.
  double filter_sq_;
  std::vector<bool> is_core_;
  /// Scratch for the deferred promotion/demotion lists (OnInsert/OnDelete
  /// are not reentrant); reused to keep the per-update path allocation-free.
  std::vector<std::pair<PointId, CellId>> scratch_;
};

template <typename Fn>
void RelaxedCoreTracker::OnInsert(PointId pid, CellId cell, Fn&& on_promote) {
  DDC_CHECK(pid == static_cast<PointId>(is_core_.size()));
  is_core_.push_back(false);

  std::vector<std::pair<PointId, CellId>>& promoted = scratch_;
  promoted.clear();

  // Cascade accounting, flushed once per update: every candidate either
  // re-queried the counter (requeries) or was skipped by the (1+ρ)ε
  // distance filter (prune_skips). Dense-cell and core-flag skips are free
  // and not counted — the interesting ratio is filter vs. counter.
  int64_t requeries = 0;
  int64_t prune_skips = 0;

  // The new point itself: dense own cell => core outright.
  const Cell& own = grid_->cell(cell);
  if (own.size() >= params_.min_pts) {
    is_core_[pid] = true;
    promoted.emplace_back(pid, cell);
  } else {
    ++requeries;
    if (QueryCore(pid)) {
      is_core_[pid] = true;
      promoted.emplace_back(pid, cell);
    }
  }

  // Insertions can only promote. Candidates live in sparse ε-close cells —
  // and in the own cell, which may have just crossed the density threshold
  // (its residents then become "definitely core" without a count query).
  // Only points within (1+ρ)ε of the arrival can see their count change, so
  // everyone farther keeps their status query-free (same-cell points are
  // within ε by the grid geometry — no test needed).
  const Point& p = grid_->point(pid);
  const int dim = params_.dim;
  auto scan = [&](CellId c, bool same_cell) {
    const Cell& cc = grid_->cell(c);
    const bool now_dense = cc.size() >= params_.min_pts;
    auto recheck = [&](PointId q) {
      if (q == pid || is_core_[q]) return;
      if (!now_dense) ++requeries;
      if (now_dense || QueryCore(q)) {
        is_core_[q] = true;
        promoted.emplace_back(q, c);
      }
    };
    if (same_cell) {
      // Same-cell points are within ε by the grid geometry: no filter.
      for (const PointId q : cc.points) recheck(q);
      return;
    }
    // Neighbor cells are always sparse here (< MinPts points), and most of
    // their residents are skipped by the O(1) core-flag test — so the cheap
    // checks run first and the (1+ρ)ε filter only on survivors. A batched
    // filter-first scan would invert that selectivity for no vector win at
    // these sizes (see kSimdSmallN in geom/simd_kernels.h).
    const double* coords = cc.coords.data();
    const size_t n = cc.points.size();
    for (size_t i = 0; i < n; ++i) {
      const PointId q = cc.points[i];
      if (q == pid || is_core_[q]) continue;
      if (WithinSquaredPacked(p, coords + i * dim, dim, filter_sq_)) {
        recheck(q);
      } else {
        ++prune_skips;
      }
    }
  };

  if (own.size() <= params_.min_pts) scan(cell, /*same_cell=*/true);
  for (const CellId nb : own.neighbors) {
    const int nb_size = grid_->cell_size(nb);
    if (nb_size > 0 && nb_size < params_.min_pts) {
      scan(nb, /*same_cell=*/false);
    }
  }
  DDC_COUNTER_ADD("core.requeries", requeries);
  DDC_COUNTER_ADD("core.prune_skips", prune_skips);

  for (const auto& [q, c] : promoted) on_promote(q, c);
}

template <typename Fn>
void RelaxedCoreTracker::OnDelete(PointId deleted, CellId cell,
                                  Fn&& on_demote) {
  std::vector<std::pair<PointId, CellId>>& demoted = scratch_;
  demoted.clear();

  // Cascade accounting, mirroring OnInsert.
  int64_t requeries = 0;
  int64_t prune_skips = 0;

  // Deletions can only demote, and only points in cells that are sparse now
  // (a still-dense cell keeps its residents definitely core) whose ε-ball
  // could actually have lost the departed point — the distance filter again.
  const Point& p = grid_->point(deleted);  // Valid after deletion.
  const int dim = params_.dim;
  auto scan = [&](CellId c, bool same_cell) {
    const Cell& cc = grid_->cell(c);
    auto recheck = [&](PointId q) {
      if (!is_core_[q]) return;
      ++requeries;
      if (!QueryCore(q)) {
        is_core_[q] = false;
        demoted.emplace_back(q, c);
      }
    };
    if (same_cell) {
      for (const PointId q : cc.points) recheck(q);
      return;
    }
    // Sparse neighbor cells, core-flag skip first — same rationale as
    // OnInsert above.
    const double* coords = cc.coords.data();
    const size_t n = cc.points.size();
    for (size_t i = 0; i < n; ++i) {
      const PointId q = cc.points[i];
      if (!is_core_[q]) continue;
      if (WithinSquaredPacked(p, coords + i * dim, dim, filter_sq_)) {
        recheck(q);
      } else {
        ++prune_skips;
      }
    }
  };

  if (grid_->cell_size(cell) < params_.min_pts) {
    scan(cell, /*same_cell=*/true);
  }
  for (const CellId nb : grid_->cell(cell).neighbors) {
    const int nb_size = grid_->cell_size(nb);
    if (nb_size > 0 && nb_size < params_.min_pts) {
      scan(nb, /*same_cell=*/false);
    }
  }
  DDC_COUNTER_ADD("core.requeries", requeries);
  DDC_COUNTER_ADD("core.prune_skips", prune_skips);

  for (const auto& [q, c] : demoted) on_demote(q, c);
}

}  // namespace ddc

#endif  // DDC_CORE_RELAXED_CORE_TRACKER_H_
