#ifndef DDC_CORE_ABCP_H_
#define DDC_CORE_ABCP_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "core/emptiness.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {

/// Per-cell state shared by all aBCP instances of that cell: the current
/// core members (with their emptiness structure) and the append-only log of
/// core arrivals. The log realizes the paper's remark after Lemma 3: the
/// conceptual de-listing list L is never materialized — every instance keeps
/// one cursor per side into this log, and "alive" entries are those whose
/// point is still a core member of the cell.
struct CellCoreState {
  std::unique_ptr<EmptinessStructure> core_set;
  std::vector<PointId> log;

  /// ε-close core cells this cell currently runs an aBCP instance with,
  /// each with the instance's index in the owner's arena — the GUM cascades
  /// (every core arrival/departure feeds all peers) reach instances by
  /// direct index, no hashing.
  struct PeerLink {
    CellId peer;
    int32_t instance;
  };
  std::vector<PeerLink> instance_peers;

  /// Current core members live in core_set (membership, count, and
  /// proximity queries all go through it).
  bool is_core_cell() const { return core_set != nullptr && core_set->size() > 0; }
};

/// One instance of the approximate bichromatic close pair problem (Section
/// 7.1) between the core-point sets of two ε-close cells c1, c2. The
/// maintained witness pair (w1, w2) obeys Lemma 3's contract:
///   * when non-empty, dist(w1, w2) <= (1+ρ)ε;
///   * it is non-empty whenever some core pair is within ε.
/// The grid-graph edge {c1, c2} exists exactly while the witness is
/// non-empty (Section 7.2).
class AbcpInstance {
 public:
  /// Empty instance (flat-table slot filler); not usable until assigned.
  AbcpInstance() : c1_(kInvalidCell), c2_(kInvalidCell) {}

  AbcpInstance(CellId c1, CellId c2) : c1_(c1), c2_(c2) {}

  CellId c1() const { return c1_; }
  CellId c2() const { return c2_; }
  CellId other(CellId c) const { return c == c1_ ? c2_ : c1_; }

  bool has_witness() const { return w1_ != kInvalidPoint; }

  /// Current witness endpoints (kInvalidPoint when empty); w1 in c1, w2 in
  /// c2. Exposed for tests and diagnostics.
  PointId w1() const { return w1_; }
  PointId w2() const { return w2_; }

  /// Builds the initial witness by scanning the smaller member set against
  /// the other side's emptiness structure (O~(min(|S1|, |S2|)) queries), and
  /// fast-forwards both cursors past the current logs. Returns has_witness().
  bool Initialize(const Grid& grid, CellCoreState& s1, CellCoreState& s2);

  /// A core point arrived on either side (already appended to that side's
  /// log). One de-listing if the witness is empty. Returns has_witness().
  bool OnCoreInsert(const Grid& grid, CellCoreState& s1, CellCoreState& s2);

  /// Core point `p` left side `cell` (already removed from members). If `p`
  /// was a witness endpoint, re-establish: first ask the surviving endpoint
  /// against p's side, then de-list until a witness is found or both logs
  /// are exhausted (the amortized payment). Returns has_witness().
  bool OnCoreRemove(const Grid& grid, CellCoreState& s1, CellCoreState& s2,
                    CellId cell, PointId p);

 private:
  /// De-list alive log entries until a witness appears or both logs drain.
  void Refill(const Grid& grid, CellCoreState& s1, CellCoreState& s2);

  CellId c1_;
  CellId c2_;
  PointId w1_ = kInvalidPoint;  // Member of c1.
  PointId w2_ = kInvalidPoint;  // Member of c2.
  size_t cur1_ = 0;             // Log entries before cur are de-listed.
  size_t cur2_ = 0;
};

}  // namespace ddc

#endif  // DDC_CORE_ABCP_H_
