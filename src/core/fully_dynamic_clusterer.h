#ifndef DDC_CORE_FULLY_DYNAMIC_CLUSTERER_H_
#define DDC_CORE_FULLY_DYNAMIC_CLUSTERER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "connectivity/dynamic_connectivity.h"
#include "core/abcp.h"
#include "core/cluster_query.h"
#include "core/cluster_snapshot.h"
#include "core/clusterer.h"
#include "core/emptiness.h"
#include "core/params.h"
#include "core/relaxed_core_tracker.h"
#include "counting/approx_counter.h"
#include "grid/grid.h"

namespace ddc {

/// The paper's fully-dynamic algorithm, Theorem 4: ρ-double-approximate
/// DBSCAN with O~(1) amortized insertions *and* deletions and O~(|Q|)
/// C-group-by queries, for any fixed dimension. With rho == 0 it maintains
/// exact DBSCAN (the "2d-Full-Exact" configuration of the experiments).
///
/// Composition (Sections 7.2–7.4): the relaxed core predicate is decided by
/// an approximate range counter; every pair of ε-close core cells runs an
/// aBCP instance whose witness pair *is* the grid-graph edge; edge
/// appearances/disappearances feed a fully-dynamic connectivity structure
/// (Holm–de Lichtenberg–Thorup by default). No BFS over points ever happens
/// on deletion — the removal of IncDBSCAN's Achilles heel.
class FullyDynamicClusterer : public Clusterer {
 public:
  /// Structure choices, benchmarked against each other in bench/ablation_*.
  struct Options {
    EmptinessKind emptiness = EmptinessKind::kBruteForce;
    ConnectivityKind connectivity = ConnectivityKind::kHdt;
    CounterKind counter = CounterKind::kExact;
  };

  explicit FullyDynamicClusterer(const DbscanParams& params,
                                 const Options& options);

  /// Default options: brute-force emptiness, HDT connectivity, exact
  /// counting.
  explicit FullyDynamicClusterer(const DbscanParams& params)
      : FullyDynamicClusterer(params, Options{}) {}

  PointId Insert(const Point& p) override;
  void Delete(PointId id) override;
  std::shared_ptr<const ClusterSnapshot> Snapshot() override;
  std::shared_ptr<const ClusterSnapshot> CurrentSnapshot() const override {
    return snapshot_cache_.Peek();
  }

  std::vector<PointId> AlivePoints() const override;
  const DbscanParams& params() const override { return params_; }
  int64_t size() const override { return grid_.size(); }

  /// Introspection (tests, benches).
  bool is_core(PointId p) const { return tracker_.is_core(p); }
  int64_t num_graph_edges() const { return num_edges_; }
  int64_t num_abcp_instances() const {
    return static_cast<int64_t>(instances_.size() - free_instances_.size());
  }
  const Grid& grid() const { return grid_; }

  /// Observer of core-status transitions: invoked as `obs(p, now_core)`
  /// immediately after point `p` turns core (true) or loses core status
  /// (false), including the self-demotion of a point being deleted. The
  /// sharded engine uses this to maintain boundary core sets incrementally;
  /// unset (the default) costs nothing on the update path.
  using CoreObserver = std::function<void(PointId, bool)>;
  void set_core_observer(CoreObserver obs) { core_observer_ = std::move(obs); }

  /// CC label of the cluster containing core point `p` (the component id of
  /// its cell in the grid graph). Labels are stable between updates and
  /// compare equal iff two core points share a cluster. `p` must be core.
  /// The sharded engine's stitch rebuild keys on these; non-core
  /// memberships are answered by GridSnapshot::ForEachMembershipLabel.
  uint64_t CoreLabelOf(PointId p);

 private:
  /// GUM (Section 7.4).
  void OnCorePromoted(PointId p, CellId cell);
  void OnCoreDemoted(PointId p, CellId cell);

  CellCoreState& State(CellId c);

  void CreateInstance(CellId a, CellId b);
  void DestroyInstance(CellId a, CellId b, int32_t instance);

  void SetEdge(CellId a, CellId b, bool present);

  DbscanParams params_;
  Options options_;
  Grid grid_;
  ApproxRangeCounter counter_;
  RelaxedCoreTracker tracker_;
  std::unique_ptr<DynamicConnectivity> cc_;
  std::vector<CellCoreState> cells_;
  /// aBCP instance arena; slots are recycled through the free list and
  /// addressed by the PeerLink indices in CellCoreState.
  std::vector<AbcpInstance> instances_;
  std::vector<int32_t> free_instances_;
  /// Shared per-point slot registry for the cells' emptiness structures.
  std::vector<int32_t> core_slots_;
  CoreObserver core_observer_;
  int64_t num_edges_ = 0;
  SnapshotCache snapshot_cache_;
};

}  // namespace ddc

#endif  // DDC_CORE_FULLY_DYNAMIC_CLUSTERER_H_
