#include "core/static_approx_dbscan.h"

#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "grid/grid.h"
#include "unionfind/union_find.h"

namespace ddc {

CGroupByResult StaticApproxDbscan(const std::vector<Point>& points,
                                  const DbscanParams& params) {
  params.Validate();
  const int n = static_cast<int>(points.size());
  const int dim = params.dim;
  const double eps_sq = params.eps * params.eps;
  const double outer_sq = params.eps_outer() * params.eps_outer();

  CGroupByResult result;
  if (n == 0) return result;

  Grid grid(dim, params.eps);
  for (const Point& p : points) grid.Insert(p);

  // Step 0 — exact core points (the 2015 algorithm approximates edges, not
  // the core predicate), with early exit at MinPts.
  std::vector<bool> is_core(n, false);
  for (PointId i = 0; i < n; ++i) {
    int count = 0;
    grid.ForEachPointInRange(points[i], params.eps, [&](PointId) { ++count; });
    is_core[i] = count >= params.min_pts;
  }

  // Step 1 — grid-graph CCs over core cells. An edge must exist when some
  // core pair is within ε; the first core pair found within (1+ρ)ε settles
  // the cell pair either way (don't-care band), which is what makes the
  // pass near-linear in practice.
  std::vector<std::vector<PointId>> cell_cores(grid.num_cells());
  for (PointId i = 0; i < n; ++i) {
    if (is_core[i]) cell_cores[grid.cell_of(i)].push_back(i);
  }
  UnionFind uf(grid.num_cells());
  for (CellId c = 0; c < grid.num_cells(); ++c) {
    if (cell_cores[c].empty()) continue;
    for (const CellId nb : grid.cell(c).neighbors) {
      if (nb < c || cell_cores[nb].empty()) continue;  // Each pair once.
      if (uf.Connected(c, nb)) continue;
      bool linked = false;
      for (const PointId a : cell_cores[c]) {
        for (const PointId b : cell_cores[nb]) {
          if (SquaredDistance(points[a], points[b], dim) <= outer_sq) {
            uf.Union(c, nb);
            linked = true;
            break;
          }
        }
        if (linked) break;
      }
    }
  }

  // Step 2 — assignment. Core points take their cell's CC; a non-core point
  // joins the CC of any ε-close core cell holding a core point within
  // (1+ρ)ε of it (a conforming resolution of the assignment don't-cares).
  std::unordered_map<int, std::vector<PointId>> groups;  // CC root -> pts.
  for (PointId i = 0; i < n; ++i) {
    if (is_core[i]) {
      groups[uf.Find(grid.cell_of(i))].push_back(i);
      continue;
    }
    std::unordered_set<int> mine;
    auto consider = [&](CellId c) {
      if (cell_cores[c].empty() || mine.count(uf.Find(c)) > 0) return;
      for (const PointId b : cell_cores[c]) {
        if (SquaredDistance(points[i], points[b], dim) <= eps_sq) {
          mine.insert(uf.Find(c));
          return;
        }
      }
    };
    const CellId own = grid.cell_of(i);
    consider(own);
    for (const CellId nb : grid.cell(own).neighbors) consider(nb);
    if (mine.empty()) {
      result.noise.push_back(i);
    } else {
      for (const int root : mine) groups[root].push_back(i);
    }
  }

  result.groups.reserve(groups.size());
  for (auto& [root, members] : groups) {
    result.groups.push_back(std::move(members));
  }
  result.Canonicalize();
  return result;
}

}  // namespace ddc
