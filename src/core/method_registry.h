#ifndef DDC_CORE_METHOD_REGISTRY_H_
#define DDC_CORE_METHOD_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/clusterer.h"
#include "core/params.h"

namespace ddc {

/// Name-keyed factory over the algorithm configurations the benches and
/// `ddc_driver` run, extended with the sharded engine. A method is selected
/// by a *spec* in the same mini-grammar the scenarios use:
///
///   spec := name [ ':' key '=' value ( ',' key '=' value )* ]
///
/// Methods (Section 8.1's evaluation plus the engine):
///   "2d-semi-exact"         — Theorem 1 with rho = 0 (exact, insert-only)
///   "semi-approx"           — Theorem 1, ρ-approximate, insert-only
///   "2d-full-exact"         — Theorem 4 with rho = 0 (exact, fully dynamic)
///   "double-approx"         — Theorem 4, ρ-double-approximate, fully dynamic
///   "inc-dbscan"            — the IncDBSCAN baseline [8]
///   "sharded-double-approx" — Theorem 4 sharded over worker threads
///                             (knobs: shards, threads, batch, warmup)
/// Exact methods force rho to 0 regardless of `params.rho`.

/// One tunable of a method spec.
struct MethodKnob {
  std::string key;
  std::string help;
};

/// Registry entry: identity, documentation, and capabilities of one method.
struct MethodInfo {
  std::string name;
  std::string summary;
  std::vector<MethodKnob> knobs;
  bool supports_deletes = true;
  bool forces_exact = false;  // rho pinned to 0
};

/// All registered methods, in registry order.
const std::vector<MethodInfo>& AllMethodInfos();

/// Human-readable listing of every method, its capabilities and knobs —
/// the same text the registry prints before aborting on a bad spec.
std::string MethodHelp();

/// Builds the clusterer a spec describes. Aborts on an unknown method name,
/// an unknown knob, or an out-of-range knob value, after printing the full
/// method/knob listing to stderr (use ValidateMethodSpec to probe first).
std::unique_ptr<Clusterer> MakeMethod(const std::string& spec,
                                      DbscanParams params);

/// Non-aborting spec check: true when MakeMethod would accept `spec`. On
/// failure describes the problem — including the registered methods and the
/// offending method's knobs — in `*why` (may be nullptr).
bool ValidateMethodSpec(const std::string& spec, std::string* why);

/// All registered method names (base names, no knobs), in registry order.
const std::vector<std::string>& MethodNames();

/// The base method name of a spec: everything before the first ':'. The one
/// place the spec-to-name rule lives — every helper below goes through it.
std::string MethodBaseName(const std::string& spec);

/// True when the *base name* of `spec` (the part before ':') is registered.
bool IsMethod(const std::string& spec);

/// False for the semi-dynamic (insertion-only) methods, whose Delete
/// aborts; drivers skip those on workloads containing deletions. Accepts
/// full specs.
bool MethodSupportsDeletes(const std::string& spec);

/// The parameters `spec` actually runs with: identical to `params` except
/// that exact methods force rho to 0. MakeMethod applies this itself;
/// reporting code uses it so recorded provenance matches the executed run.
DbscanParams EffectiveParams(const std::string& spec, DbscanParams params);

/// The paper's default parameters (Table 2): eps = eps_over_d * d,
/// MinPts = 10, rho = 0.001 for approximate methods (forced to 0 for the
/// exact ones inside MakeMethod).
DbscanParams PaperParams(int dim, double eps_over_d = 100.0,
                         double rho = 0.001);

}  // namespace ddc

#endif  // DDC_CORE_METHOD_REGISTRY_H_
