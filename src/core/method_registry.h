#ifndef DDC_CORE_METHOD_REGISTRY_H_
#define DDC_CORE_METHOD_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/clusterer.h"
#include "core/params.h"

namespace ddc {

/// Name-keyed factory over the five algorithm configurations of Section
/// 8.1's evaluation, shared by the figure benches and `ddc_driver`:
///   "2d-semi-exact"  — Theorem 1 with rho = 0 (exact DBSCAN, insert-only)
///   "semi-approx"    — Theorem 1, ρ-approximate, insert-only
///   "2d-full-exact"  — Theorem 4 with rho = 0 (exact DBSCAN, fully dynamic)
///   "double-approx"  — Theorem 4, ρ-double-approximate, fully dynamic
///   "inc-dbscan"     — the IncDBSCAN baseline [8]
/// Exact methods force rho to 0 regardless of `params.rho`. Aborts on an
/// unknown name (use FindMethod/MethodNames to probe first).
std::unique_ptr<Clusterer> MakeMethod(const std::string& name,
                                      DbscanParams params);

/// All registered method names, in the order above.
const std::vector<std::string>& MethodNames();

/// True when `name` is registered.
bool IsMethod(const std::string& name);

/// False for the semi-dynamic (insertion-only) methods, whose Delete
/// aborts; drivers skip those on workloads containing deletions.
bool MethodSupportsDeletes(const std::string& name);

/// The parameters `name` actually runs with: identical to `params` except
/// that exact methods force rho to 0. MakeMethod applies this itself;
/// reporting code uses it so recorded provenance matches the executed run.
DbscanParams EffectiveParams(const std::string& name, DbscanParams params);

/// The paper's default parameters (Table 2): eps = eps_over_d * d,
/// MinPts = 10, rho = 0.001 for approximate methods (forced to 0 for the
/// exact ones inside MakeMethod).
DbscanParams PaperParams(int dim, double eps_over_d = 100.0,
                         double rho = 0.001);

}  // namespace ddc

#endif  // DDC_CORE_METHOD_REGISTRY_H_
