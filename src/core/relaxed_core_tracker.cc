#include "core/relaxed_core_tracker.h"

#include "common/check.h"

namespace ddc {

RelaxedCoreTracker::RelaxedCoreTracker(const Grid* grid,
                                       const ApproxRangeCounter* counter,
                                       const DbscanParams& params)
    : grid_(grid), counter_(counter), params_(params) {
  params_.Validate();
}

bool RelaxedCoreTracker::QueryCore(PointId pid) const {
  return counter_->Count(grid_->point(pid), params_.min_pts) >=
         params_.min_pts;
}

void RelaxedCoreTracker::OnInsert(
    PointId pid, CellId cell,
    const std::function<void(PointId, CellId)>& on_promote) {
  DDC_CHECK(pid == static_cast<PointId>(is_core_.size()));
  is_core_.push_back(false);

  std::vector<std::pair<PointId, CellId>> promoted;

  // The new point itself: dense own cell => core outright.
  const Cell& own = grid_->cell(cell);
  if (own.size() >= params_.min_pts || QueryCore(pid)) {
    is_core_[pid] = true;
    promoted.emplace_back(pid, cell);
  }

  // Insertions can only promote. Candidates live in sparse ε-close cells —
  // and in the own cell, which may have just crossed the density threshold
  // (its residents then become "definitely core" without a count query).
  auto scan = [&](CellId c) {
    const Cell& cc = grid_->cell(c);
    const bool now_dense = cc.size() >= params_.min_pts;
    for (const PointId q : cc.points) {
      if (q == pid || is_core_[q]) continue;
      if (now_dense || QueryCore(q)) {
        is_core_[q] = true;
        promoted.emplace_back(q, c);
      }
    }
  };

  if (own.size() <= params_.min_pts) scan(cell);
  for (const CellId nb : own.neighbors) {
    const Cell& nbc = grid_->cell(nb);
    if (!nbc.empty() && nbc.size() < params_.min_pts) scan(nb);
  }

  for (const auto& [q, c] : promoted) on_promote(q, c);
}

void RelaxedCoreTracker::OnDelete(
    CellId cell, const std::function<void(PointId, CellId)>& on_demote) {
  std::vector<std::pair<PointId, CellId>> demoted;

  // Deletions can only demote, and only points in cells that are sparse now
  // (a still-dense cell keeps its residents definitely core).
  auto scan = [&](CellId c) {
    const Cell& cc = grid_->cell(c);
    if (cc.size() >= params_.min_pts) return;
    for (const PointId q : cc.points) {
      if (!is_core_[q]) continue;
      if (!QueryCore(q)) {
        is_core_[q] = false;
        demoted.emplace_back(q, c);
      }
    }
  };

  scan(cell);
  for (const CellId nb : grid_->cell(cell).neighbors) {
    if (!grid_->cell(nb).empty()) scan(nb);
  }

  for (const auto& [q, c] : demoted) on_demote(q, c);
}

}  // namespace ddc
