#include "core/relaxed_core_tracker.h"

namespace ddc {

RelaxedCoreTracker::RelaxedCoreTracker(const Grid* grid,
                                       const ApproxRangeCounter* counter,
                                       const DbscanParams& params)
    : grid_(grid),
      counter_(counter),
      params_(params),
      filter_sq_(params.eps_outer() * params.eps_outer()) {
  params_.Validate();
}

bool RelaxedCoreTracker::QueryCore(PointId pid) const {
  // Alive points always have a materialized cell: skip the cell lookup.
  return counter_->CountFromCell(grid_->point(pid), grid_->cell_of(pid),
                                 params_.min_pts) >= params_.min_pts;
}

}  // namespace ddc
