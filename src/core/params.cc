#include "core/params.h"

#include <sstream>

#include "common/check.h"
#include "geom/point.h"

namespace ddc {

void DbscanParams::Validate() const {
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(eps > 0);
  DDC_CHECK(min_pts >= 1);
  DDC_CHECK(rho >= 0 && rho < 1);
}

std::string DbscanParams::ToString() const {
  std::ostringstream out;
  out << "{dim=" << dim << " eps=" << eps << " min_pts=" << min_pts
      << " rho=" << rho << "}";
  return out.str();
}

}  // namespace ddc
