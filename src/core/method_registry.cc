#include "core/method_registry.h"

#include "common/check.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/incremental_dbscan.h"
#include "core/semi_dynamic_clusterer.h"

namespace ddc {

std::unique_ptr<Clusterer> MakeMethod(const std::string& name,
                                      DbscanParams params) {
  params = EffectiveParams(name, params);
  if (name == "2d-semi-exact" || name == "semi-approx") {
    return std::make_unique<SemiDynamicClusterer>(params);
  }
  if (name == "2d-full-exact" || name == "double-approx") {
    return std::make_unique<FullyDynamicClusterer>(params);
  }
  if (name == "inc-dbscan") {
    return std::make_unique<IncrementalDbscan>(params);
  }
  DDC_CHECK(false && "unknown method");
  return nullptr;
}

DbscanParams EffectiveParams(const std::string& name, DbscanParams params) {
  if (name == "2d-semi-exact" || name == "2d-full-exact" ||
      name == "inc-dbscan") {
    params.rho = 0;
  }
  return params;
}

const std::vector<std::string>& MethodNames() {
  static const std::vector<std::string>* const names =
      new std::vector<std::string>{"2d-semi-exact", "semi-approx",
                                   "2d-full-exact", "double-approx",
                                   "inc-dbscan"};
  return *names;
}

bool IsMethod(const std::string& name) {
  for (const std::string& m : MethodNames()) {
    if (m == name) return true;
  }
  return false;
}

bool MethodSupportsDeletes(const std::string& name) {
  return name != "2d-semi-exact" && name != "semi-approx";
}

DbscanParams PaperParams(int dim, double eps_over_d, double rho) {
  return DbscanParams{.dim = dim,
                      .eps = eps_over_d * dim,
                      .min_pts = 10,
                      .rho = rho};
}

}  // namespace ddc
