#include "core/method_registry.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "core/fully_dynamic_clusterer.h"
#include "core/incremental_dbscan.h"
#include "core/semi_dynamic_clusterer.h"
#include "engine/sharded_clusterer.h"

namespace ddc {
namespace {

struct ParsedSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> kvs;
};

/// Non-aborting spec split (the scenario grammar: name[:k=v,k=v...]).
bool ParseSpec(const std::string& spec, ParsedSpec* out, std::string* why) {
  const size_t colon = spec.find(':');
  out->name = spec.substr(0, colon);
  out->kvs.clear();
  if (out->name.empty()) {
    if (why != nullptr) *why = "empty method name in spec '" + spec + "'";
    return false;
  }
  if (colon == std::string::npos) return true;
  const std::string params = spec.substr(colon + 1);
  size_t start = 0;
  while (start <= params.size()) {
    size_t end = params.find(',', start);
    if (end == std::string::npos) end = params.size();
    const std::string item = params.substr(start, end - start);
    const size_t eq = item.find('=');
    if (item.empty() || eq == 0 || eq == std::string::npos) {
      if (why != nullptr) {
        *why = "malformed knob '" + item + "' in method spec '" + spec +
               "' (expected key=value)";
      }
      return false;
    }
    out->kvs.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    start = end + 1;
  }
  return true;
}

const MethodInfo* FindInfo(const std::string& name) {
  for (const MethodInfo& info : AllMethodInfos()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

bool KnobExists(const MethodInfo& info, const std::string& key) {
  for (const MethodKnob& knob : info.knobs) {
    if (knob.key == key) return true;
  }
  return false;
}

/// Non-aborting integer parse for knob values.
bool ParseKnobInt(const std::string& value, int64_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

/// Reads an integer knob with a default; false (with `why`) on a
/// non-integer or out-of-range value.
bool ReadIntKnob(const ParsedSpec& spec, const std::string& key, int64_t def,
                 int64_t lo, int64_t hi, int64_t* out, std::string* why) {
  *out = def;
  for (const auto& [k, v] : spec.kvs) {
    if (k != key) continue;
    int64_t parsed = 0;
    if (!ParseKnobInt(v, &parsed)) {
      if (why != nullptr) {
        *why = "method '" + spec.name + "': knob " + key + "=" + v +
               " is not an integer";
      }
      return false;
    }
    *out = parsed;  // Last occurrence wins, like the scenario grammar.
  }
  if (*out < lo || *out > hi) {
    if (why != nullptr) {
      std::ostringstream msg;
      msg << "method '" << spec.name << "': knob " << key << "=" << *out
          << " out of range [" << lo << ", " << hi << "]";
      *why = msg.str();
    }
    return false;
  }
  return true;
}

/// Non-aborting floating-point parse for knob values.
bool ParseKnobDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) return false;
  *out = v;
  return true;
}

/// Reads a floating-point knob with a default; false (with `why`) on a
/// non-numeric or out-of-range value.
bool ReadDoubleKnob(const ParsedSpec& spec, const std::string& key,
                    double def, double lo, double hi, double* out,
                    std::string* why) {
  *out = def;
  for (const auto& [k, v] : spec.kvs) {
    if (k != key) continue;
    double parsed = 0;
    if (!ParseKnobDouble(v, &parsed)) {
      if (why != nullptr) {
        *why = "method '" + spec.name + "': knob " + key + "=" + v +
               " is not a number";
      }
      return false;
    }
    *out = parsed;  // Last occurrence wins, like the scenario grammar.
  }
  if (!(*out >= lo && *out <= hi)) {
    if (why != nullptr) {
      std::ostringstream msg;
      msg << "method '" << spec.name << "': knob " << key << "=" << *out
          << " out of range [" << lo << ", " << hi << "]";
      *why = msg.str();
    }
    return false;
  }
  return true;
}

/// Full spec validation; on success fills the sharded options (meaningful
/// only when the method is the sharded engine).
bool ValidateSpec(const std::string& spec, ParsedSpec* parsed,
                  ShardedClusterer::Options* sharded, std::string* why) {
  if (!ParseSpec(spec, parsed, why)) return false;
  const MethodInfo* info = FindInfo(parsed->name);
  if (info == nullptr) {
    if (why != nullptr) {
      *why = "unknown method '" + parsed->name + "'";
    }
    return false;
  }
  for (const auto& [key, value] : parsed->kvs) {
    if (!KnobExists(*info, key)) {
      if (why != nullptr) {
        *why = "method '" + parsed->name + "' has no knob '" + key + "'" +
               (info->knobs.empty() ? " (it takes none)" : "");
      }
      return false;
    }
  }
  if (parsed->name == "sharded-double-approx") {
    const ShardedClusterer::RebalanceOptions rb_defaults;
    int64_t shards, threads, batch, warmup;
    int64_t rebalance, rb_epochs, rb_cooldown, rb_max_shards, rb_min_points;
    double rb_split, rb_merge;
    if (!ReadIntKnob(*parsed, "shards", 4, 1, ShardedClusterer::kMaxShards,
                     &shards, why) ||
        !ReadIntKnob(*parsed, "threads", 0, 0, ShardedClusterer::kMaxShards,
                     &threads, why) ||
        !ReadIntKnob(*parsed, "batch", 64, 1, 1 << 20, &batch, why) ||
        !ReadIntKnob(*parsed, "warmup", 2048, 0, 1 << 28, &warmup, why) ||
        !ReadIntKnob(*parsed, "rebalance", 0, 0, 1, &rebalance, why) ||
        !ReadDoubleKnob(*parsed, "rb_split", rb_defaults.split_imbalance,
                        1.01, 64.0, &rb_split, why) ||
        !ReadDoubleKnob(*parsed, "rb_merge", rb_defaults.merge_fill, 0.01,
                        2.0, &rb_merge, why) ||
        !ReadIntKnob(*parsed, "rb_epochs", rb_defaults.epochs, 1, 1 << 20,
                     &rb_epochs, why) ||
        !ReadIntKnob(*parsed, "rb_cooldown", rb_defaults.cooldown, 0, 1 << 20,
                     &rb_cooldown, why) ||
        !ReadIntKnob(*parsed, "rb_max_shards", rb_defaults.max_shards, 0,
                     ShardedClusterer::kMaxShards, &rb_max_shards, why) ||
        !ReadIntKnob(*parsed, "rb_min_points", rb_defaults.min_points, 0,
                     int64_t{1} << 40, &rb_min_points, why)) {
      return false;
    }
    sharded->shards = static_cast<int>(shards);
    sharded->threads = static_cast<int>(threads);
    sharded->batch = static_cast<int>(batch);
    sharded->warmup = static_cast<int>(warmup);
    sharded->rebalance.enabled = rebalance != 0;
    sharded->rebalance.split_imbalance = rb_split;
    sharded->rebalance.merge_fill = rb_merge;
    sharded->rebalance.epochs = static_cast<int>(rb_epochs);
    sharded->rebalance.cooldown = static_cast<int>(rb_cooldown);
    sharded->rebalance.max_shards = static_cast<int>(rb_max_shards);
    sharded->rebalance.min_points = rb_min_points;
  }
  return true;
}

}  // namespace

const std::vector<MethodInfo>& AllMethodInfos() {
  static const std::vector<MethodInfo>* const infos = [] {
    auto* all = new std::vector<MethodInfo>();
    all->push_back({"2d-semi-exact",
                    "Theorem 1 with rho = 0 (exact DBSCAN, insert-only)",
                    {},
                    /*supports_deletes=*/false,
                    /*forces_exact=*/true});
    all->push_back({"semi-approx",
                    "Theorem 1, rho-approximate, insert-only",
                    {},
                    /*supports_deletes=*/false,
                    /*forces_exact=*/false});
    all->push_back({"2d-full-exact",
                    "Theorem 4 with rho = 0 (exact DBSCAN, fully dynamic)",
                    {},
                    /*supports_deletes=*/true,
                    /*forces_exact=*/true});
    all->push_back({"double-approx",
                    "Theorem 4, rho-double-approximate, fully dynamic",
                    {},
                    /*supports_deletes=*/true,
                    /*forces_exact=*/false});
    all->push_back({"inc-dbscan",
                    "IncDBSCAN baseline [8] (exact, fully dynamic)",
                    {},
                    /*supports_deletes=*/true,
                    /*forces_exact=*/true});
    all->push_back(
        {"sharded-double-approx",
         "Theorem 4 sharded over spatial slabs with ghost zones, one worker"
         " thread per shard, cross-shard cluster stitching",
         {{"shards", "slab count S in [1, 64] (default 4)"},
          {"threads", "worker threads in [1, 64]; 0 = one per shard"
                      " (default 0)"},
          {"batch", "updates per published shard batch (default 64)"},
          {"warmup", "inserts buffered before the split dimension is chosen"
                     " (default 2048)"},
          {"rebalance", "1 = live shard split/merge under skew (default 0)"},
          {"rb_split", "split when max/mean owned occupancy exceeds this for"
                       " rb_epochs consecutive epochs (default 1.35)"},
          {"rb_merge", "merge an adjacent pair whose combined occupancy is"
                       " below this fraction of the mean (default 0.55)"},
          {"rb_epochs", "consecutive trigger epochs before acting"
                        " (default 3)"},
          {"rb_cooldown", "epochs to sit out after a split/merge"
                          " (default 1)"},
          {"rb_max_shards", "shard-count ceiling; 0 = min(2*shards, 64)"
                            " (default 0)"},
          {"rb_min_points", "no rebalancing below this population"
                            " (default 512)"}},
         /*supports_deletes=*/true,
         /*forces_exact=*/false});
    return all;
  }();
  return *infos;
}

std::string MethodHelp() {
  std::ostringstream out;
  out << "registered methods (spec grammar: name[:key=value,key=value...]):\n";
  for (const MethodInfo& info : AllMethodInfos()) {
    out << "  " << info.name << " — " << info.summary;
    if (!info.supports_deletes) out << " (insert-only)";
    out << "\n";
    for (const MethodKnob& knob : info.knobs) {
      out << "      " << knob.key << ": " << knob.help << "\n";
    }
  }
  return out.str();
}

std::unique_ptr<Clusterer> MakeMethod(const std::string& spec,
                                      DbscanParams params) {
  ParsedSpec parsed;
  ShardedClusterer::Options sharded;
  std::string why;
  if (!ValidateSpec(spec, &parsed, &sharded, &why)) {
    std::fprintf(stderr, "bad method spec '%s': %s\n%s", spec.c_str(),
                 why.c_str(), MethodHelp().c_str());
    DDC_CHECK(false && "bad method spec");
  }
  params = EffectiveParams(spec, params);
  if (parsed.name == "2d-semi-exact" || parsed.name == "semi-approx") {
    return std::make_unique<SemiDynamicClusterer>(params);
  }
  if (parsed.name == "2d-full-exact" || parsed.name == "double-approx") {
    return std::make_unique<FullyDynamicClusterer>(params);
  }
  if (parsed.name == "inc-dbscan") {
    return std::make_unique<IncrementalDbscan>(params);
  }
  DDC_CHECK(parsed.name == "sharded-double-approx");
  return std::make_unique<ShardedClusterer>(params, sharded);
}

bool ValidateMethodSpec(const std::string& spec, std::string* why) {
  ParsedSpec parsed;
  ShardedClusterer::Options sharded;
  std::string local;
  if (ValidateSpec(spec, &parsed, &sharded, &local)) return true;
  if (why != nullptr) *why = local;
  return false;
}

std::string MethodBaseName(const std::string& spec) {
  return spec.substr(0, spec.find(':'));
}

DbscanParams EffectiveParams(const std::string& spec, DbscanParams params) {
  const MethodInfo* info = FindInfo(MethodBaseName(spec));
  if (info != nullptr && info->forces_exact) params.rho = 0;
  return params;
}

const std::vector<std::string>& MethodNames() {
  static const std::vector<std::string>* const names = [] {
    auto* all = new std::vector<std::string>();
    for (const MethodInfo& info : AllMethodInfos()) {
      all->push_back(info.name);
    }
    return all;
  }();
  return *names;
}

bool IsMethod(const std::string& spec) {
  return FindInfo(MethodBaseName(spec)) != nullptr;
}

bool MethodSupportsDeletes(const std::string& spec) {
  const MethodInfo* info = FindInfo(MethodBaseName(spec));
  return info == nullptr || info->supports_deletes;
}

DbscanParams PaperParams(int dim, double eps_over_d, double rho) {
  return DbscanParams{.dim = dim,
                      .eps = eps_over_d * dim,
                      .min_pts = 10,
                      .rho = rho};
}

}  // namespace ddc
