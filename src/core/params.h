#ifndef DDC_CORE_PARAMS_H_
#define DDC_CORE_PARAMS_H_

#include <string>

namespace ddc {

/// Parameters shared by every DBSCAN variant in the paper (Section 4):
/// exact DBSCAN is the special case rho == 0.
struct DbscanParams {
  /// Dimensionality of the data, in [1, kMaxDim]. The paper targets small d
  /// (its experiments run d = 2..7).
  int dim = 2;

  /// Radius ε of the density ball.
  double eps = 1.0;

  /// Density threshold: a point is a core point when B(p, ε) covers at least
  /// min_pts points (including p itself).
  int min_pts = 10;

  /// Approximation slack ρ >= 0. Distances in (ε, (1+ρ)ε] fall in the
  /// "don't care" band; rho == 0 recovers exact DBSCAN semantics.
  double rho = 0.001;

  /// Radius of the outer ball (1+ρ)ε.
  double eps_outer() const { return eps * (1.0 + rho); }

  /// Aborts if any parameter is out of range.
  void Validate() const;

  std::string ToString() const;
};

}  // namespace ddc

#endif  // DDC_CORE_PARAMS_H_
