#ifndef DDC_CORE_SEMI_DYNAMIC_CLUSTERER_H_
#define DDC_CORE_SEMI_DYNAMIC_CLUSTERER_H_

#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "core/cluster_snapshot.h"
#include "core/clusterer.h"
#include "core/emptiness.h"
#include "core/params.h"
#include "core/vicinity_tracker.h"
#include "grid/grid.h"
#include "unionfind/union_find.h"

namespace ddc {

/// The paper's semi-dynamic (insertion-only) algorithm, Theorem 1:
/// ρ-approximate DBSCAN with O~(1) amortized insertion and O~(|Q|)
/// C-group-by queries for any fixed dimension; with rho == 0 it maintains
/// exact DBSCAN (the paper's "2d-Semi-Exact" is the rho == 0, d = 2 case —
/// the implementation works in any dimension, with exactness guaranteed by
/// construction and the O~(1) bound guaranteed only for d = 2).
///
/// Composition, following the framework of Section 4 (Figure 5): point
/// insertions feed the core-status structure (VicinityTracker); new core
/// points feed GUM, which materializes grid-graph edges via per-cell
/// emptiness queries; edges feed the CC structure (union-find, since edges
/// are never removed under insertions).
class SemiDynamicClusterer : public Clusterer {
 public:
  explicit SemiDynamicClusterer(
      const DbscanParams& params,
      EmptinessKind emptiness = EmptinessKind::kBruteForce);

  PointId Insert(const Point& p) override;

  /// Always aborts: the semi-dynamic scheme supports insertions only
  /// (Theorem 2 shows why deletions change the game).
  void Delete(PointId id) override;

  std::shared_ptr<const ClusterSnapshot> Snapshot() override;
  std::shared_ptr<const ClusterSnapshot> CurrentSnapshot() const override {
    return snapshot_cache_.Peek();
  }

  std::vector<PointId> AlivePoints() const override;
  const DbscanParams& params() const override { return params_; }
  int64_t size() const override { return grid_.size(); }

  /// Introspection (tests, benches).
  bool is_core(PointId p) const { return tracker_.is_core(p); }
  int64_t num_graph_edges() const { return static_cast<int64_t>(edges_.size()); }
  const Grid& grid() const { return grid_; }

 private:
  /// GUM (Section 5): a point just became core in `cell`.
  void OnNewCore(PointId p, CellId cell);

  /// Core points of cell `c` (creates the structure on first use).
  EmptinessStructure* CoreSet(CellId c);

  static uint64_t EdgeKey(CellId a, CellId b);

  DbscanParams params_;
  EmptinessKind emptiness_kind_;
  Grid grid_;
  VicinityTracker tracker_;
  UnionFind uf_;
  std::vector<std::unique_ptr<EmptinessStructure>> cell_core_;
  /// Shared per-point slot registry for the cells' emptiness structures.
  std::vector<int32_t> core_slots_;
  FlatHashSet<uint64_t> edges_;
  SnapshotCache snapshot_cache_;
};

}  // namespace ddc

#endif  // DDC_CORE_SEMI_DYNAMIC_CLUSTERER_H_
