#ifndef DDC_CORE_STATIC_APPROX_DBSCAN_H_
#define DDC_CORE_STATIC_APPROX_DBSCAN_H_

#include <vector>

#include "core/clusterer.h"
#include "core/params.h"
#include "geom/point.h"

namespace ddc {

/// Static ρ-approximate DBSCAN — the linear-expected-time algorithm of Gan
/// and Tao (SIGMOD 2015) that the paper builds on (reviewed in its Section
/// 2): exact core points, grid-graph connected components with don't-care
/// edges in the (ε, (1+ρ)ε] band, and approximate non-core assignment.
///
/// Included for completeness of the paper's algorithmic universe and as a
/// second, independently-coded reference for the dynamic algorithms: on any
/// input its result must satisfy the same sandwich guarantee, and at rho ==
/// 0 it degenerates to exact DBSCAN (Section 2, Remark).
///
/// Returns canonicalized groups over input positions (ids = 0..n-1).
CGroupByResult StaticApproxDbscan(const std::vector<Point>& points,
                                  const DbscanParams& params);

}  // namespace ddc

#endif  // DDC_CORE_STATIC_APPROX_DBSCAN_H_
