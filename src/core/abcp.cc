#include "core/abcp.h"

#include "common/check.h"
#include "telemetry/metrics.h"

namespace ddc {

bool AbcpInstance::Initialize(const Grid& grid, CellCoreState& s1,
                              CellCoreState& s2) {
  DDC_CHECK(!has_witness());
  CellCoreState* small = &s1;
  CellCoreState* big = &s2;
  bool small_is_c1 = true;
  if (small->core_set->size() > big->core_set->size()) {
    std::swap(small, big);
    small_is_c1 = false;
  }
  PointId found_small = kInvalidPoint, found_big = kInvalidPoint;
  small->core_set->ForEach([&](PointId p) {
    if (found_small != kInvalidPoint) return;
    const PointId proof = big->core_set->Query(grid.point(p));
    if (proof != kInvalidPoint) {
      found_small = p;
      found_big = proof;
    }
  });
  if (found_small != kInvalidPoint) {
    w1_ = small_is_c1 ? found_small : found_big;
    w2_ = small_is_c1 ? found_big : found_small;
  }
  cur1_ = s1.log.size();
  cur2_ = s2.log.size();
  return has_witness();
}

void AbcpInstance::Refill(const Grid& grid, CellCoreState& s1,
                          CellCoreState& s2) {
  DDC_COUNTER_INC("abcp.witness_refills");
  while (!has_witness()) {
    if (cur1_ < s1.log.size()) {
      const PointId p = s1.log[cur1_++];
      if (!s1.core_set->Contains(p)) continue;  // De-listed lazily.
      const PointId proof = s2.core_set->Query(grid.point(p));
      if (proof != kInvalidPoint) {
        w1_ = p;
        w2_ = proof;
      }
    } else if (cur2_ < s2.log.size()) {
      const PointId p = s2.log[cur2_++];
      if (!s2.core_set->Contains(p)) continue;
      const PointId proof = s1.core_set->Query(grid.point(p));
      if (proof != kInvalidPoint) {
        w2_ = p;
        w1_ = proof;
      }
    } else {
      return;  // Both logs drained: witness legitimately empty.
    }
  }
}

bool AbcpInstance::OnCoreInsert(const Grid& grid, CellCoreState& s1,
                                CellCoreState& s2) {
  // With a witness in hand the newcomer just stays in L (its log suffix).
  if (!has_witness()) Refill(grid, s1, s2);
  return has_witness();
}

bool AbcpInstance::OnCoreRemove(const Grid& grid, CellCoreState& s1,
                                CellCoreState& s2, CellId cell, PointId p) {
  if (!has_witness()) return false;  // L is empty; nothing to do.
  const bool was_w1 = (cell == c1_ && p == w1_);
  const bool was_w2 = (cell == c2_ && p == w2_);
  if (!was_w1 && !was_w2) return true;  // Witness unaffected.

  // Step 1 (appendix, deletion case): ask the surviving endpoint against the
  // departed side — one emptiness query often repairs the pair in place.
  CellCoreState& gone_side = was_w1 ? s1 : s2;
  const PointId survivor = was_w1 ? w2_ : w1_;
  w1_ = w2_ = kInvalidPoint;
  const PointId proof = gone_side.core_set->Query(grid.point(survivor));
  if (proof != kInvalidPoint) {
    // One emptiness query repaired the pair without touching the de-list
    // logs — the cheap path the appendix's amortization counts on.
    DDC_COUNTER_INC("abcp.witness_repairs");
    w1_ = was_w1 ? proof : survivor;
    w2_ = was_w1 ? survivor : proof;
    return true;
  }
  // Step 2: de-list until a witness appears or L drains.
  Refill(grid, s1, s2);
  return has_witness();
}

}  // namespace ddc
