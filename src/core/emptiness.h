#ifndef DDC_CORE_EMPTINESS_H_
#define DDC_CORE_EMPTINESS_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/params.h"
#include "geom/box.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {

/// Per-cell structure over the *core points* of one core cell, answering the
/// ρ-approximate ε-emptiness query of Section 4.2:
///
///   empty(q, c) must return a proof point when some core point of c lies
///   within ε of q, must return "none" when no core point lies within
///   (1+ρ)ε, and may answer either way in between. A returned proof point is
///   always within (1+ρ)ε of q.
///
/// The paper plugs in Arya et al.'s approximate nearest neighbor structure
/// (Chan's structure for exact 2D). The don't-care band makes much simpler
/// structures conforming; this library ships two (see DESIGN.md) and
/// benchmarks them against each other in bench/ablation_emptiness.
class EmptinessStructure {
 public:
  virtual ~EmptinessStructure() = default;

  /// Adds a core point (must not be present).
  virtual void Insert(PointId p) = 0;

  /// Removes a core point (must be present).
  virtual void Remove(PointId p) = 0;

  /// Number of core points in the structure.
  virtual int size() const = 0;

  /// True when `p` is currently a member (the aBCP log de-listing test).
  virtual bool Contains(PointId p) const = 0;

  /// The emptiness query: a core point within (1+ρ)ε of `q`, or
  /// kInvalidPoint. Guaranteed non-invalid when some member is within ε.
  virtual PointId Query(const Point& q) const = 0;

  /// Invokes `fn` on every member (used to seed aBCP witness pairs).
  virtual void ForEach(const std::function<void(PointId)>& fn) const = 0;
};

/// Which emptiness implementation a clusterer uses.
enum class EmptinessKind {
  /// Flat array scan with early exit at the first point within (1+ρ)ε.
  /// Conforming because any such point is a legal proof.
  kBruteForce,
  /// Members bucketed on a sub-grid of side ρε/(2√d); the query tests one
  /// representative per occupied bucket against radius ε(1+ρ/2), which
  /// over-approximates ε by at most half a don't-care band and
  /// under-approximates (1+ρ)ε, hence conforming. Requires rho > 0; collapses
  /// co-located points, which pays off at high densities.
  kSubGrid,
  /// A dynamic kd-tree with bounding-box pruning at radius (1+ρ)ε — the
  /// closest structural analogue of the Arya et al. ANN structure the paper
  /// cites. Exact at rho == 0 (where it is the only sublinear option).
  kKdTree,
};

/// Creates an emptiness structure over core points of one cell. `grid` must
/// outlive the structure and provides point coordinates. When `cell_box`
/// (the bounds of the cell whose members the structure holds) is given, the
/// scan-based implementations answer a query in O(d) whenever even the
/// box's nearest point is beyond (1+ρ)ε — the all-miss witness probes that
/// otherwise scan the entire member set.
///
/// `slot_registry`, when given, is a per-point slot array shared by every
/// structure of one clusterer (a point is a core member of at most one cell
/// at a time), turning the brute-force structure's member bookkeeping into
/// two array writes instead of hash-map operations. It must outlive the
/// structures; stale entries for non-members are never read.
std::unique_ptr<EmptinessStructure> MakeEmptinessStructure(
    EmptinessKind kind, const Grid* grid, const DbscanParams& params,
    const Box* cell_box = nullptr,
    std::vector<int32_t>* slot_registry = nullptr);

}  // namespace ddc

#endif  // DDC_CORE_EMPTINESS_H_
