#ifndef DDC_CORE_VICINITY_TRACKER_H_
#define DDC_CORE_VICINITY_TRACKER_H_

#include <utility>
#include <vector>

#include "common/check.h"
#include "core/params.h"
#include "geom/point.h"
#include "geom/simd_kernels.h"
#include "grid/grid.h"

namespace ddc {

/// The semi-dynamic core-status structure of Section 5: every non-core point
/// p carries a vicinity count vincnt(p) = |B(p, ε)|; when it reaches MinPts
/// the point turns core, permanently (points are never deleted in the
/// semi-dynamic scheme).
///
/// On each insertion the tracker
///   1. decides the new point's core status — immediately core when its cell
///      is dense, else by exact counting over the ε-close cells (early exit
///      at MinPts once all sparse-cell bookkeeping is done), and
///   2. increments the vicinity counts of non-core points in ε-close sparse
///      cells (non-core points can only live in sparse cells, because a
///      dense cell's points are all within ε of each other).
class VicinityTracker {
 public:
  /// `grid` must outlive the tracker and already reflect each insertion when
  /// OnInsert is called.
  VicinityTracker(const Grid* grid, const DbscanParams& params);

  /// Processes the insertion of `pid` into `cell` (grid already updated).
  /// Calls `on_core(q, cell_of_q)` for every point that turned core as a
  /// result — possibly `pid` itself and/or promoted neighbors. Promotions
  /// are emitted after all counts are settled. Templated on the callback so
  /// the per-insert path never materializes a std::function.
  template <typename Fn>
  void OnInsert(PointId pid, CellId cell, Fn&& on_core);

  /// Current core status of a point.
  bool is_core(PointId pid) const { return is_core_[pid]; }

  /// Exact |B(p, ε)| for non-core points (tracked only while non-core).
  int vicinity_count(PointId pid) const { return vincnt_[pid]; }

 private:
  const Grid* grid_;
  DbscanParams params_;
  double eps_sq_;
  std::vector<bool> is_core_;
  std::vector<int32_t> vincnt_;
  /// Scratch buffers (OnInsert is not reentrant); reused so the per-insert
  /// path stays allocation-free.
  std::vector<std::pair<PointId, CellId>> promoted_scratch_;
  std::vector<CellId> dense_scratch_;
};

template <typename Fn>
void VicinityTracker::OnInsert(PointId pid, CellId cell, Fn&& on_core) {
  DDC_CHECK(pid == static_cast<PointId>(is_core_.size()));
  is_core_.push_back(false);
  vincnt_.push_back(1);  // B(p, eps) includes p itself.

  const Point& p = grid_->point(pid);
  const int min_pts = params_.min_pts;
  // Deferred promotions: settle all counts first, then notify, so that the
  // GUM callback observes a consistent core-status state.
  std::vector<std::pair<PointId, CellId>>& promoted = promoted_scratch_;
  promoted.clear();

  // Pass 1 — sparse cells (own + ε-close): update neighbor vicinity counts
  // and accumulate the new point's count. Same-cell points are within ε by
  // the grid geometry (side ε/√d, half-open cells), no distance test needed;
  // neighbor cells go through the batched predicate over their packed
  // coordinates.
  const int dim = params_.dim;
  auto bump = [&](PointId q, CellId c) {
    ++vincnt_[pid];
    if (!is_core_[q]) {
      if (++vincnt_[q] >= min_pts) {
        is_core_[q] = true;
        promoted.emplace_back(q, c);
      }
    }
  };
  auto scan_sparse = [&](CellId c, bool same_cell) {
    const Cell& cc = grid_->cell(c);
    if (same_cell) {
      for (const PointId q : cc.points) {
        if (q != pid) bump(q, c);
      }
      return;
    }
    ForEachWithinPacked(p, cc.coords.data(), cc.points.size(), dim, eps_sq_,
                        [&](size_t i) { bump(cc.points[i], c); });
  };

  const Cell& own = grid_->cell(cell);
  // `own` already contains pid. If the cell was dense before this insertion
  // (size - 1 >= MinPts), all its points are core already and no bookkeeping
  // is needed; otherwise scan it — this also promotes every resident when
  // the cell crosses the density threshold right now.
  const bool was_dense = own.size() - 1 >= min_pts;
  if (!was_dense) scan_sparse(cell, /*same_cell=*/true);

  std::vector<CellId>& dense_neighbors = dense_scratch_;
  dense_neighbors.clear();
  for (const CellId nb : own.neighbors) {
    const int nb_size = grid_->cell_size(nb);
    if (nb_size == 0) continue;
    if (nb_size >= min_pts) {
      dense_neighbors.push_back(nb);
    } else {
      scan_sparse(nb, /*same_cell=*/false);
    }
  }

  // Pass 2 — decide the new point's own status. Dense own cell => core
  // outright. Otherwise finish the count against dense neighbor cells with
  // early exit (their points are all core already, no bookkeeping needed).
  bool self_core = own.size() >= min_pts;
  if (!self_core && vincnt_[pid] < min_pts) {
    for (const CellId nb : dense_neighbors) {
      const Cell& nbc = grid_->cell(nb);
      vincnt_[pid] += CountWithinPacked(p, nbc.coords.data(),
                                        static_cast<int>(nbc.points.size()),
                                        dim, eps_sq_, min_pts - vincnt_[pid]);
      if (vincnt_[pid] >= min_pts) break;
    }
  }
  if (self_core || vincnt_[pid] >= min_pts) {
    is_core_[pid] = true;
    promoted.emplace_back(pid, cell);
  }

  for (const auto& [q, c] : promoted) on_core(q, c);
}

}  // namespace ddc

#endif  // DDC_CORE_VICINITY_TRACKER_H_
