#ifndef DDC_CORE_VICINITY_TRACKER_H_
#define DDC_CORE_VICINITY_TRACKER_H_

#include <functional>
#include <vector>

#include "core/params.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {

/// The semi-dynamic core-status structure of Section 5: every non-core point
/// p carries a vicinity count vincnt(p) = |B(p, ε)|; when it reaches MinPts
/// the point turns core, permanently (points are never deleted in the
/// semi-dynamic scheme).
///
/// On each insertion the tracker
///   1. decides the new point's core status — immediately core when its cell
///      is dense, else by exact counting over the ε-close cells (early exit
///      at MinPts once all sparse-cell bookkeeping is done), and
///   2. increments the vicinity counts of non-core points in ε-close sparse
///      cells (non-core points can only live in sparse cells, because a
///      dense cell's points are all within ε of each other).
class VicinityTracker {
 public:
  /// `grid` must outlive the tracker and already reflect each insertion when
  /// OnInsert is called.
  VicinityTracker(const Grid* grid, const DbscanParams& params);

  /// Processes the insertion of `pid` into `cell` (grid already updated).
  /// Calls `on_core(q, cell_of_q)` for every point that turned core as a
  /// result — possibly `pid` itself and/or promoted neighbors. Promotions
  /// are emitted after all counts are settled.
  void OnInsert(PointId pid, CellId cell,
                const std::function<void(PointId, CellId)>& on_core);

  /// Current core status of a point.
  bool is_core(PointId pid) const { return is_core_[pid]; }

  /// Exact |B(p, ε)| for non-core points (tracked only while non-core).
  int vicinity_count(PointId pid) const { return vincnt_[pid]; }

 private:
  const Grid* grid_;
  DbscanParams params_;
  double eps_sq_;
  std::vector<bool> is_core_;
  std::vector<int32_t> vincnt_;
};

}  // namespace ddc

#endif  // DDC_CORE_VICINITY_TRACKER_H_
