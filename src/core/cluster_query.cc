#include "core/cluster_query.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace ddc {

void CGroupByResult::Canonicalize() {
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end());
  std::sort(noise.begin(), noise.end());
}

CGroupByResult Clusterer::QueryAll() { return Query(AlivePoints()); }

CGroupByResult RunCGroupByQuery(const Grid& grid,
                                const std::vector<PointId>& q,
                                const QueryHooks& hooks) {
  // cluster id -> bucket of query points.
  std::unordered_map<uint64_t, std::vector<PointId>> buckets;
  CGroupByResult result;

  for (const PointId pid : q) {
    if (!grid.alive(pid)) continue;
    bool any = false;
    ForEachMembershipLabel(grid, pid, hooks, [&](uint64_t cc) {
      any = true;
      buckets[cc].push_back(pid);
    });
    if (!any) result.noise.push_back(pid);
  }

  result.groups.reserve(buckets.size());
  for (auto& [cc, members] : buckets) result.groups.push_back(std::move(members));
  return result;
}

}  // namespace ddc
