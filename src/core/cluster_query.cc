#include "core/cluster_query.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace ddc {

void CGroupByResult::Canonicalize() {
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end());
  std::sort(noise.begin(), noise.end());
}

CGroupByResult Clusterer::QueryAll() { return Query(AlivePoints()); }

CGroupByResult RunCGroupByQuery(const Grid& grid,
                                const std::vector<PointId>& q,
                                const QueryHooks& hooks) {
  // cluster id -> bucket of query points.
  std::unordered_map<uint64_t, std::vector<PointId>> buckets;
  CGroupByResult result;

  for (const PointId pid : q) {
    if (!grid.alive(pid)) continue;
    const CellId c = grid.cell_of(pid);
    if (hooks.is_core(pid)) {
      // A core point lives in a core cell; its cluster is the cell's CC.
      DDC_DCHECK(hooks.is_core_cell(c));
      buckets[hooks.cc_id(c)].push_back(pid);
      continue;
    }
    // Non-core: snap to every ε-close core cell (and the own cell) whose
    // emptiness query produces a proof point. Distinct CCs may repeat over
    // cells, hence the local set.
    const Point& p = grid.point(pid);
    std::unordered_set<uint64_t> assigned;
    auto consider = [&](CellId cell) {
      if (!hooks.is_core_cell(cell)) return;
      if (hooks.empty(p, cell) == kInvalidPoint) return;
      assigned.insert(hooks.cc_id(cell));
    };
    consider(c);
    for (const CellId nb : grid.cell(c).neighbors) consider(nb);
    if (assigned.empty()) {
      result.noise.push_back(pid);
    } else {
      for (const uint64_t cc : assigned) buckets[cc].push_back(pid);
    }
  }

  result.groups.reserve(buckets.size());
  for (auto& [cc, members] : buckets) result.groups.push_back(std::move(members));
  return result;
}

}  // namespace ddc
