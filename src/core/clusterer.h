#ifndef DDC_CORE_CLUSTERER_H_
#define DDC_CORE_CLUSTERER_H_

#include <memory>
#include <vector>

#include "core/params.h"
#include "geom/point.h"

namespace ddc {

class ClusterSnapshot;

/// Result of a cluster-group-by (C-group-by) query (Section 3 of the paper):
/// the query points broken into the clusters of the current dataset. Because
/// DBSCAN clusters need not be disjoint, a non-core query point may appear in
/// several groups; a query point in no cluster is reported as noise.
struct CGroupByResult {
  /// One entry per cluster that intersects Q: the ids of the query points in
  /// that cluster. Groups and their members are in no particular order.
  std::vector<std::vector<PointId>> groups;

  /// Query points that belong to no cluster.
  std::vector<PointId> noise;

  /// Canonical form: members sorted within groups, groups sorted
  /// lexicographically, noise sorted. Useful for comparisons in tests.
  void Canonicalize();

  /// True when two canonicalized results are identical.
  friend bool operator==(const CGroupByResult& a, const CGroupByResult& b) {
    return a.groups == b.groups && a.noise == b.noise;
  }
};

/// Common interface of the dynamic clustering algorithms in this library:
/// the paper's semi-dynamic ρ-approximate algorithm (Theorem 1), the
/// fully-dynamic ρ-double-approximate algorithm (Theorem 4), and the
/// IncDBSCAN baseline [8]. Exact DBSCAN is the special case rho == 0.
class Clusterer {
 public:
  virtual ~Clusterer() = default;

  /// Adds a point; returns its id (stable until deletion).
  virtual PointId Insert(const Point& p) = 0;

  /// Removes a previously inserted point. Aborts on clusterers that are
  /// semi-dynamic (insertion-only).
  virtual void Delete(PointId id) = 0;

  /// An immutable, epoch-versioned view of the clustering after every
  /// update submitted so far (asynchronous engines flush first). The
  /// returned snapshot is deep-frozen: it stays valid — and answers queries
  /// about its epoch — no matter how many updates are applied afterwards,
  /// and may be read from any number of threads concurrently. Consecutive
  /// calls with no updates in between return the same (cached) snapshot.
  /// Must be called from the updating thread, like Insert/Delete.
  virtual std::shared_ptr<const ClusterSnapshot> Snapshot() = 0;

  /// The latest *published* snapshot, without flushing: an atomic load that
  /// is safe from any thread, concurrently with updates. May trail the
  /// update stream (it is whatever the last Snapshot()/publication froze)
  /// and is null before the first publication.
  virtual std::shared_ptr<const ClusterSnapshot> CurrentSnapshot() const = 0;

  /// Answers a C-group-by query over the alive points in `q`: a thin
  /// wrapper over Snapshot()->Query(), so the owning thread and concurrent
  /// snapshot readers run the same code over the same frozen state.
  CGroupByResult Query(const std::vector<PointId>& q);

  /// Blocks until every previously submitted update is fully applied.
  /// Synchronous clusterers are always caught up — the default is a no-op.
  /// Batched/asynchronous engines (the sharded clusterer) override it; the
  /// workload runner calls it before closing a run's timing window so
  /// throughput never counts enqueued-but-unapplied work as done.
  virtual void Flush() {}

  /// Convenience: C-group-by with Q = all alive points, i.e., the full
  /// clustering C(P).
  CGroupByResult QueryAll();

  /// All alive point ids.
  virtual std::vector<PointId> AlivePoints() const = 0;

  virtual const DbscanParams& params() const = 0;

  /// Number of alive points.
  virtual int64_t size() const = 0;
};

}  // namespace ddc

#endif  // DDC_CORE_CLUSTERER_H_
