#include "core/vicinity_tracker.h"

namespace ddc {

VicinityTracker::VicinityTracker(const Grid* grid, const DbscanParams& params)
    : grid_(grid), params_(params), eps_sq_(params.eps * params.eps) {
  params_.Validate();
}

}  // namespace ddc
