#include "core/vicinity_tracker.h"

#include "common/check.h"

namespace ddc {

VicinityTracker::VicinityTracker(const Grid* grid, const DbscanParams& params)
    : grid_(grid), params_(params), eps_sq_(params.eps * params.eps) {
  params_.Validate();
}

void VicinityTracker::OnInsert(
    PointId pid, CellId cell,
    const std::function<void(PointId, CellId)>& on_core) {
  DDC_CHECK(pid == static_cast<PointId>(is_core_.size()));
  is_core_.push_back(false);
  vincnt_.push_back(1);  // B(p, eps) includes p itself.

  const Point& p = grid_->point(pid);
  const int min_pts = params_.min_pts;
  // Deferred promotions: settle all counts first, then notify, so that the
  // GUM callback observes a consistent core-status state.
  std::vector<std::pair<PointId, CellId>> promoted;

  // Pass 1 — sparse cells (own + ε-close): update neighbor vicinity counts
  // and accumulate the new point's count. Same-cell points are within ε by
  // the grid geometry (side ε/√d, half-open cells), no distance test needed.
  auto scan_sparse = [&](CellId c, bool same_cell) {
    for (const PointId q : grid_->cell(c).points) {
      if (q == pid) continue;
      if (!same_cell &&
          SquaredDistance(p, grid_->point(q), params_.dim) > eps_sq_) {
        continue;
      }
      ++vincnt_[pid];
      if (!is_core_[q]) {
        if (++vincnt_[q] >= min_pts) {
          is_core_[q] = true;
          promoted.emplace_back(q, c);
        }
      }
    }
  };

  const Cell& own = grid_->cell(cell);
  // `own` already contains pid. If the cell was dense before this insertion
  // (size - 1 >= MinPts), all its points are core already and no bookkeeping
  // is needed; otherwise scan it — this also promotes every resident when
  // the cell crosses the density threshold right now.
  const bool was_dense = own.size() - 1 >= min_pts;
  if (!was_dense) scan_sparse(cell, /*same_cell=*/true);

  std::vector<CellId> dense_neighbors;
  for (const CellId nb : own.neighbors) {
    const Cell& nbc = grid_->cell(nb);
    if (nbc.empty()) continue;
    if (nbc.size() >= min_pts) {
      dense_neighbors.push_back(nb);
    } else {
      scan_sparse(nb, /*same_cell=*/false);
    }
  }

  // Pass 2 — decide the new point's own status. Dense own cell => core
  // outright. Otherwise finish the count against dense neighbor cells with
  // early exit (their points are all core already, no bookkeeping needed).
  bool self_core = own.size() >= min_pts;
  if (!self_core && vincnt_[pid] < min_pts) {
    for (const CellId nb : dense_neighbors) {
      for (const PointId q : grid_->cell(nb).points) {
        if (SquaredDistance(p, grid_->point(q), params_.dim) <= eps_sq_) {
          if (++vincnt_[pid] >= min_pts) break;
        }
      }
      if (vincnt_[pid] >= min_pts) break;
    }
  }
  if (self_core || vincnt_[pid] >= min_pts) {
    is_core_[pid] = true;
    promoted.emplace_back(pid, cell);
  }

  for (const auto& [q, c] : promoted) on_core(q, c);
}

}  // namespace ddc
