#include "core/static_dbscan.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "grid/grid.h"
#include "unionfind/union_find.h"

namespace ddc {

CGroupByResult StaticClustering::ToGroups(const std::vector<PointId>& ids) const {
  DDC_CHECK(ids.size() == cluster_ids.size());
  CGroupByResult result;
  result.groups.resize(num_clusters);
  for (size_t i = 0; i < cluster_ids.size(); ++i) {
    if (cluster_ids[i].empty()) {
      result.noise.push_back(ids[i]);
    } else {
      for (const int cid : cluster_ids[i]) result.groups[cid].push_back(ids[i]);
    }
  }
  // Clusters that intersect Q=P are all of them, but guard against empties.
  std::erase_if(result.groups, [](const auto& g) { return g.empty(); });
  result.Canonicalize();
  return result;
}

CGroupByResult StaticClustering::ToGroups() const {
  std::vector<PointId> ids(cluster_ids.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  return ToGroups(ids);
}

StaticClustering StaticDbscan(const std::vector<Point>& points,
                              const DbscanParams& params) {
  params.Validate();
  const int n = static_cast<int>(points.size());
  const int dim = params.dim;
  const double eps = params.eps;

  StaticClustering out;
  out.is_core.assign(n, false);
  out.cluster_ids.assign(n, {});
  if (n == 0) return out;

  Grid grid(dim, eps);
  for (const Point& p : points) grid.Insert(p);

  // Step 0: core points, straight from the definition.
  for (PointId i = 0; i < n; ++i) {
    int count = 0;
    grid.ForEachPointInRange(points[i], eps, [&](PointId) { ++count; });
    out.is_core[i] = count >= params.min_pts;
  }

  // Step 1: preliminary clusters = connected components of the core graph.
  UnionFind uf(n);
  for (PointId i = 0; i < n; ++i) {
    if (!out.is_core[i]) continue;
    grid.ForEachPointInRange(points[i], eps, [&](PointId j) {
      if (j > i && out.is_core[j]) uf.Union(i, j);
    });
  }

  // Densify component ids over core points.
  std::unordered_map<int, int> dense;
  for (PointId i = 0; i < n; ++i) {
    if (!out.is_core[i]) continue;
    const int root = uf.Find(i);
    const auto [it, inserted] = dense.emplace(root, out.num_clusters);
    if (inserted) ++out.num_clusters;
    out.cluster_ids[i].push_back(it->second);
  }

  // Step 2: non-core assignment — every preliminary cluster with a core
  // point inside B(p, eps) adopts p.
  for (PointId i = 0; i < n; ++i) {
    if (out.is_core[i]) continue;
    std::unordered_set<int> mine;
    grid.ForEachPointInRange(points[i], eps, [&](PointId j) {
      if (out.is_core[j]) mine.insert(dense.at(uf.Find(j)));
    });
    out.cluster_ids[i].assign(mine.begin(), mine.end());
    std::sort(out.cluster_ids[i].begin(), out.cluster_ids[i].end());
  }
  return out;
}

namespace {

/// point -> indices of groups containing it.
std::unordered_map<PointId, std::vector<int>> MembershipIndex(
    const CGroupByResult& r) {
  std::unordered_map<PointId, std::vector<int>> index;
  for (int g = 0; g < static_cast<int>(r.groups.size()); ++g) {
    for (const PointId p : r.groups[g]) index[p].push_back(g);
  }
  return index;
}

/// True when every group of `inner` is a subset of some group of `outer`.
bool EachContained(const CGroupByResult& inner, const CGroupByResult& outer,
                   const char* label, std::string* why) {
  const auto outer_index = MembershipIndex(outer);
  std::vector<std::unordered_set<PointId>> outer_sets;
  outer_sets.reserve(outer.groups.size());
  for (const auto& g : outer.groups)
    outer_sets.emplace_back(g.begin(), g.end());

  for (const auto& g : inner.groups) {
    DDC_CHECK(!g.empty());
    const auto it = outer_index.find(g[0]);
    bool ok = false;
    if (it != outer_index.end()) {
      for (const int candidate : it->second) {
        const auto& set = outer_sets[candidate];
        ok = std::all_of(g.begin(), g.end(),
                         [&](PointId p) { return set.count(p) > 0; });
        if (ok) break;
      }
    }
    if (!ok) {
      if (why != nullptr) {
        std::ostringstream out;
        out << label << ": a group of size " << g.size() << " starting at point "
            << g[0] << " is not contained in any outer group";
        *why = out.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace

bool CheckSandwich(const CGroupByResult& lower, const CGroupByResult& reported,
                   const CGroupByResult& upper, std::string* why) {
  return EachContained(lower, reported, "lower ⊆ reported", why) &&
         EachContained(reported, upper, "reported ⊆ upper", why);
}

}  // namespace ddc
