#include "core/semi_dynamic_clusterer.h"

#include "common/check.h"

namespace ddc {

SemiDynamicClusterer::SemiDynamicClusterer(const DbscanParams& params,
                                           EmptinessKind emptiness)
    : params_(params),
      emptiness_kind_(emptiness),
      grid_(params.dim, params.eps),
      tracker_(&grid_, params) {
  params_.Validate();
}

uint64_t SemiDynamicClusterer::EdgeKey(CellId a, CellId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

EmptinessStructure* SemiDynamicClusterer::CoreSet(CellId c) {
  if (static_cast<size_t>(c) >= cell_core_.size()) {
    cell_core_.resize(grid_.num_cells());
  }
  if (cell_core_[c] == nullptr) {
    const Box box = grid_.cell_box(c);
    cell_core_[c] = MakeEmptinessStructure(emptiness_kind_, &grid_, params_,
                                           &box, &core_slots_);
  }
  return cell_core_[c].get();
}

PointId SemiDynamicClusterer::Insert(const Point& p) {
  const Grid::InsertResult ins = grid_.Insert(p);
  uf_.EnsureSize(grid_.num_cells());
  tracker_.OnInsert(ins.id, ins.cell,
                    [this](PointId q, CellId c) { OnNewCore(q, c); });
  snapshot_cache_.BumpVersion();
  return ins.id;
}

void SemiDynamicClusterer::Delete(PointId /*id*/) {
  DDC_CHECK(false && "SemiDynamicClusterer supports insertions only");
}

void SemiDynamicClusterer::OnNewCore(PointId p, CellId cell) {
  CoreSet(cell)->Insert(p);
  const Point& pt = grid_.point(p);
  // GUM: try to materialize an edge to every ε-close core cell that has no
  // edge to `cell` yet. One emptiness query per missing edge (Section 5).
  for (const CellId nb : grid_.cell(cell).neighbors) {
    if (static_cast<size_t>(nb) >= cell_core_.size() ||
        cell_core_[nb] == nullptr || cell_core_[nb]->size() == 0) {
      continue;  // Not a core cell.
    }
    const uint64_t key = EdgeKey(cell, nb);
    if (edges_.Contains(key)) continue;
    if (cell_core_[nb]->Query(pt) != kInvalidPoint) {
      edges_.Insert(key);
      uf_.Union(cell, nb);
    }
  }
}

std::shared_ptr<const ClusterSnapshot> SemiDynamicClusterer::Snapshot() {
  return snapshot_cache_.GetOrBuild([this](uint64_t epoch) {
    GridSnapshot::Sources sources;
    sources.grid = &grid_;
    sources.is_core = [this](PointId p) { return tracker_.is_core(p); };
    sources.cell_label = [this](CellId c, PointId) {
      return static_cast<uint64_t>(uf_.FindReadOnly(c));
    };
    return GridSnapshot::Build(sources, params_.eps_outer(), epoch);
  });
}

std::vector<PointId> SemiDynamicClusterer::AlivePoints() const {
  std::vector<PointId> ids(grid_.total_inserted());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  return ids;
}

}  // namespace ddc
