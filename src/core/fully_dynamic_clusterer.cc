#include "core/fully_dynamic_clusterer.h"

#include "common/check.h"
#include "core/cluster_query.h"
#include "telemetry/metrics.h"

namespace ddc {

FullyDynamicClusterer::FullyDynamicClusterer(const DbscanParams& params,
                                             const Options& options)
    : params_(params),
      options_(options),
      grid_(params.dim, params.eps),
      counter_(&grid_, params, options.counter),
      tracker_(&grid_, &counter_, params),
      cc_(MakeConnectivity(options.connectivity)) {
  params_.Validate();
}

CellCoreState& FullyDynamicClusterer::State(CellId c) {
  DDC_DCHECK(static_cast<size_t>(c) < cells_.size());
  CellCoreState& s = cells_[c];
  if (s.core_set == nullptr) {
    const Box box = grid_.cell_box(c);
    s.core_set = MakeEmptinessStructure(options_.emptiness, &grid_, params_,
                                        &box, &core_slots_);
  }
  return s;
}

void FullyDynamicClusterer::SetEdge(CellId a, CellId b, bool present) {
  if (present) {
    cc_->AddEdge(a, b);
    ++num_edges_;
  } else {
    cc_->RemoveEdge(a, b);
    --num_edges_;
  }
}

PointId FullyDynamicClusterer::Insert(const Point& p) {
  const Grid::InsertResult ins = grid_.Insert(p);
  // Cells are only materialized here, so GUM callbacks below never resize
  // cells_ (references into it stay valid).
  if (ins.cell_created) {
    cells_.resize(grid_.num_cells());
    cc_->EnsureVertices(grid_.num_cells());
  }
  counter_.OnInsert(ins.id, ins.cell);
  tracker_.OnInsert(ins.id, ins.cell,
                    [this](PointId q, CellId c) { OnCorePromoted(q, c); });
  snapshot_cache_.BumpVersion();
  return ins.id;
}

void FullyDynamicClusterer::Delete(PointId id) {
  DDC_CHECK(grid_.alive(id));
  const CellId cell = grid_.cell_of(id);
  // The departing point first loses its own core status (GUM fallout:
  // aBCP removals, possibly edge removals / cell leaving the grid graph).
  if (tracker_.is_core(id)) {
    tracker_.ClearCore(id);
    OnCoreDemoted(id, cell);
  }
  grid_.Delete(id);
  counter_.OnDelete(id, cell);
  // Remaining points may demote now that the counts dropped.
  tracker_.OnDelete(id, cell,
                    [this](PointId q, CellId c) { OnCoreDemoted(q, c); });
  snapshot_cache_.BumpVersion();
}

void FullyDynamicClusterer::CreateInstance(CellId a, CellId b) {
  int32_t idx;
  if (!free_instances_.empty()) {
    idx = free_instances_.back();
    free_instances_.pop_back();
    instances_[idx] = AbcpInstance(a, b);
  } else {
    idx = static_cast<int32_t>(instances_.size());
    instances_.push_back(AbcpInstance(a, b));
  }
  State(a).instance_peers.push_back({b, idx});
  State(b).instance_peers.push_back({a, idx});
  if (instances_[idx].Initialize(grid_, State(a), State(b))) {
    SetEdge(a, b, true);
  }
}

void FullyDynamicClusterer::DestroyInstance(CellId a, CellId b,
                                            int32_t instance) {
  if (instances_[instance].has_witness()) SetEdge(a, b, false);
  free_instances_.push_back(instance);
  for (const CellId x : {a, b}) {
    auto& peers = State(x).instance_peers;
    for (size_t i = 0; i < peers.size(); ++i) {
      if (peers[i].instance == instance) {
        peers[i] = peers.back();
        peers.pop_back();
        break;
      }
    }
  }
}

void FullyDynamicClusterer::OnCorePromoted(PointId p, CellId cell) {
  DDC_COUNTER_INC("core.promotions");
  if (core_observer_) core_observer_(p, true);
  CellCoreState& s = State(cell);
  const bool was_core_cell = s.is_core_cell();
  s.core_set->Insert(p);
  s.log.push_back(p);

  if (!was_core_cell) {
    // The cell joins the grid graph: start an aBCP instance against every
    // ε-close core cell (initial witness scans are cheap — this cell holds
    // at most MinPts core points right now).
    for (const CellId nb : grid_.cell(cell).neighbors) {
      if (cells_[nb].is_core_cell()) CreateInstance(cell, nb);
    }
    return;
  }
  // Feed the arrival to every *witnessless* instance of this cell; edges
  // may appear. Instances holding a witness ignore arrivals by design (the
  // newcomer just stays in the log suffix), so they are skipped without the
  // call.
  for (const auto& [nb, idx] : s.instance_peers) {
    AbcpInstance& inst = instances_[idx];
    if (inst.has_witness()) continue;
    if (inst.OnCoreInsert(grid_, State(inst.c1()), State(inst.c2()))) {
      SetEdge(cell, nb, true);
    }
  }
}

void FullyDynamicClusterer::OnCoreDemoted(PointId p, CellId cell) {
  DDC_COUNTER_INC("core.demotions");
  if (core_observer_) core_observer_(p, false);
  CellCoreState& s = State(cell);
  s.core_set->Remove(p);

  if (!s.is_core_cell()) {
    // The cell leaves the grid graph: drop all of its instances.
    const std::vector<CellCoreState::PeerLink> peers = s.instance_peers;
    for (const auto& [nb, idx] : peers) DestroyInstance(cell, nb, idx);
    return;
  }
  for (const auto& [nb, idx] : s.instance_peers) {
    AbcpInstance& inst = instances_[idx];
    // Cheap precheck: a departure only matters to an instance whose current
    // witness is exactly the departing point (no witness -> L is empty; a
    // different witness survives untouched). Newest-first witness selection
    // makes this the common case under FIFO churn.
    const bool was_w1 = inst.c1() == cell && inst.w1() == p;
    const bool was_w2 = inst.c2() == cell && inst.w2() == p;
    if (!was_w1 && !was_w2) continue;
    if (!inst.OnCoreRemove(grid_, State(inst.c1()), State(inst.c2()), cell,
                           p)) {
      SetEdge(cell, nb, false);
    }
  }
}

std::shared_ptr<const ClusterSnapshot> FullyDynamicClusterer::Snapshot() {
  return snapshot_cache_.GetOrBuild([this](uint64_t epoch) {
    GridSnapshot::Sources sources;
    sources.grid = &grid_;
    sources.is_core = [this](PointId p) { return tracker_.is_core(p); };
    sources.cell_label = [this](CellId c, PointId) {
      return cc_->ComponentIdReadOnly(c);
    };
    return GridSnapshot::Build(sources, params_.eps_outer(), epoch);
  });
}

uint64_t FullyDynamicClusterer::CoreLabelOf(PointId p) {
  DDC_DCHECK(tracker_.is_core(p));
  return cc_->ComponentId(grid_.cell_of(p));
}

std::vector<PointId> FullyDynamicClusterer::AlivePoints() const {
  std::vector<PointId> ids;
  ids.reserve(grid_.size());
  for (PointId i = 0; i < grid_.total_inserted(); ++i) {
    if (grid_.alive(i)) ids.push_back(i);
  }
  return ids;
}

}  // namespace ddc
