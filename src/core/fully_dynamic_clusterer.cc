#include "core/fully_dynamic_clusterer.h"

#include "common/check.h"
#include "core/cluster_query.h"

namespace ddc {

FullyDynamicClusterer::FullyDynamicClusterer(const DbscanParams& params,
                                             const Options& options)
    : params_(params),
      options_(options),
      grid_(params.dim, params.eps),
      counter_(&grid_, params, options.counter),
      tracker_(&grid_, &counter_, params),
      cc_(MakeConnectivity(options.connectivity)) {
  params_.Validate();
}

uint64_t FullyDynamicClusterer::PairKey(CellId a, CellId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

CellCoreState& FullyDynamicClusterer::State(CellId c) {
  DDC_DCHECK(static_cast<size_t>(c) < cells_.size());
  CellCoreState& s = cells_[c];
  if (s.core_set == nullptr) {
    s.core_set = MakeEmptinessStructure(options_.emptiness, &grid_, params_);
  }
  return s;
}

void FullyDynamicClusterer::SetEdge(CellId a, CellId b, bool present) {
  if (present) {
    cc_->AddEdge(a, b);
    ++num_edges_;
  } else {
    cc_->RemoveEdge(a, b);
    --num_edges_;
  }
}

PointId FullyDynamicClusterer::Insert(const Point& p) {
  const Grid::InsertResult ins = grid_.Insert(p);
  // Cells are only materialized here, so GUM callbacks below never resize
  // cells_ (references into it stay valid).
  cells_.resize(grid_.num_cells());
  cc_->EnsureVertices(grid_.num_cells());
  counter_.OnInsert(ins.id, ins.cell);
  tracker_.OnInsert(ins.id, ins.cell,
                    [this](PointId q, CellId c) { OnCorePromoted(q, c); });
  return ins.id;
}

void FullyDynamicClusterer::Delete(PointId id) {
  DDC_CHECK(grid_.alive(id));
  const CellId cell = grid_.cell_of(id);
  // The departing point first loses its own core status (GUM fallout:
  // aBCP removals, possibly edge removals / cell leaving the grid graph).
  if (tracker_.is_core(id)) {
    tracker_.ClearCore(id);
    OnCoreDemoted(id, cell);
  }
  grid_.Delete(id);
  counter_.OnDelete(id, cell);
  // Remaining points may demote now that the counts dropped.
  tracker_.OnDelete(cell,
                    [this](PointId q, CellId c) { OnCoreDemoted(q, c); });
}

void FullyDynamicClusterer::CreateInstance(CellId a, CellId b) {
  const uint64_t key = PairKey(a, b);
  DDC_DCHECK(instances_.count(key) == 0);
  auto [it, inserted] = instances_.emplace(key, AbcpInstance(a, b));
  State(a).instance_peers.push_back(b);
  State(b).instance_peers.push_back(a);
  if (it->second.Initialize(grid_, State(a), State(b))) {
    SetEdge(a, b, true);
  }
}

void FullyDynamicClusterer::DestroyInstance(CellId a, CellId b) {
  const uint64_t key = PairKey(a, b);
  const auto it = instances_.find(key);
  DDC_CHECK(it != instances_.end());
  if (it->second.has_witness()) SetEdge(a, b, false);
  instances_.erase(it);
  for (const CellId x : {a, b}) {
    auto& peers = State(x).instance_peers;
    const CellId y = (x == a) ? b : a;
    for (size_t i = 0; i < peers.size(); ++i) {
      if (peers[i] == y) {
        peers[i] = peers.back();
        peers.pop_back();
        break;
      }
    }
  }
}

void FullyDynamicClusterer::OnCorePromoted(PointId p, CellId cell) {
  CellCoreState& s = State(cell);
  const bool was_core_cell = s.is_core_cell();
  s.members.insert(p);
  s.core_set->Insert(p);
  s.log.push_back(p);

  if (!was_core_cell) {
    // The cell joins the grid graph: start an aBCP instance against every
    // ε-close core cell (initial witness scans are cheap — this cell holds
    // at most MinPts core points right now).
    for (const CellId nb : grid_.cell(cell).neighbors) {
      if (cells_[nb].is_core_cell()) CreateInstance(cell, nb);
    }
    return;
  }
  // Feed the arrival to every instance of this cell; edges may appear.
  for (const CellId nb : s.instance_peers) {
    AbcpInstance& inst = instances_.at(PairKey(cell, nb));
    const bool had = inst.has_witness();
    const bool has =
        inst.OnCoreInsert(grid_, State(inst.c1()), State(inst.c2()));
    if (has != had) SetEdge(cell, nb, has);
  }
}

void FullyDynamicClusterer::OnCoreDemoted(PointId p, CellId cell) {
  CellCoreState& s = State(cell);
  DDC_CHECK(s.members.erase(p) == 1);
  s.core_set->Remove(p);

  if (!s.is_core_cell()) {
    // The cell leaves the grid graph: drop all of its instances.
    const std::vector<CellId> peers = s.instance_peers;
    for (const CellId nb : peers) DestroyInstance(cell, nb);
    return;
  }
  for (const CellId nb : s.instance_peers) {
    AbcpInstance& inst = instances_.at(PairKey(cell, nb));
    const bool had = inst.has_witness();
    const bool has = inst.OnCoreRemove(grid_, State(inst.c1()),
                                       State(inst.c2()), cell, p);
    if (has != had) SetEdge(cell, nb, has);
  }
}

CGroupByResult FullyDynamicClusterer::Query(const std::vector<PointId>& q) {
  QueryHooks hooks;
  hooks.is_core = [this](PointId p) { return tracker_.is_core(p); };
  hooks.is_core_cell = [this](CellId c) {
    return static_cast<size_t>(c) < cells_.size() &&
           cells_[c].is_core_cell();
  };
  hooks.cc_id = [this](CellId c) { return cc_->ComponentId(c); };
  hooks.empty = [this](const Point& pt, CellId c) {
    return cells_[c].core_set->Query(pt);
  };
  return RunCGroupByQuery(grid_, q, hooks);
}

std::vector<PointId> FullyDynamicClusterer::AlivePoints() const {
  std::vector<PointId> ids;
  ids.reserve(grid_.size());
  for (PointId i = 0; i < grid_.total_inserted(); ++i) {
    if (grid_.alive(i)) ids.push_back(i);
  }
  return ids;
}

}  // namespace ddc
