#include "core/cluster_snapshot.h"

#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ddc {

// The legacy single-threaded entry point: every query is answered from a
// snapshot, so the concurrent readers and the owning thread run the exact
// same code over the exact same frozen state.
CGroupByResult Clusterer::Query(const std::vector<PointId>& q) {
  return Snapshot()->Query(q);
}

std::shared_ptr<const GridSnapshot> GridSnapshot::Build(
    const Sources& sources, double eps_outer, uint64_t epoch) {
  DDC_TRACE_SPAN("core.snapshot_build");
  DDC_HISTOGRAM_SCOPED("core.snapshot_build");
  DDC_COUNTER_INC("core.snapshot_builds");
  DDC_CHECK(sources.grid != nullptr && sources.is_core != nullptr &&
            sources.cell_label != nullptr);
  const Grid& grid = *sources.grid;
  std::shared_ptr<GridSnapshot> snap(new GridSnapshot(epoch));
  const int dim = grid.dim();
  snap->dim_ = dim;
  snap->eps_outer_sq_ = eps_outer * eps_outer;

  // Pass 1 — cells: core members (packed coords), frozen CC label, box.
  const int num_cells = grid.num_cells();
  snap->cells_.resize(num_cells);
  snap->cell_boxes_.resize(num_cells);
  for (CellId c = 0; c < num_cells; ++c) {
    CellRec& rec = snap->cells_[c];
    rec.members_begin = static_cast<int32_t>(snap->member_coords_.size() /
                                             static_cast<size_t>(dim));
    const Cell& cell = grid.cell(c);
    PointId first_core = kInvalidPoint;
    for (size_t i = 0; i < cell.points.size(); ++i) {
      const PointId p = cell.points[i];
      if (!sources.is_core(p)) continue;
      if (first_core == kInvalidPoint) first_core = p;
      const double* coords = cell.coords.data() + i * dim;
      snap->member_coords_.insert(snap->member_coords_.end(), coords,
                                  coords + dim);
    }
    rec.members_end = static_cast<int32_t>(snap->member_coords_.size() /
                                           static_cast<size_t>(dim));
    if (first_core != kInvalidPoint) {
      rec.label = sources.cell_label(c, first_core);
    }
    snap->cell_boxes_[c] = grid.cell_box(c);
  }

  // Pass 2 — adjacency: each cell's ε-close *core* cells (non-core
  // neighbors can never contribute a membership, so they are dropped at
  // freeze time instead of per query).
  for (CellId c = 0; c < num_cells; ++c) {
    CellRec& rec = snap->cells_[c];
    rec.nbr_begin = static_cast<int32_t>(snap->core_neighbors_.size());
    for (const CellId nb : grid.cell(c).neighbors) {
      const CellRec& nrec = snap->cells_[nb];
      if (nrec.members_begin < nrec.members_end) {
        snap->core_neighbors_.push_back(nb);
      }
    }
    rec.nbr_end = static_cast<int32_t>(snap->core_neighbors_.size());
  }

  // Pass 3 — points: alive/core bits, home cell, packed coordinates.
  const int64_t total = grid.total_inserted();
  snap->cell_of_.assign(total, -1);
  snap->point_core_.assign(total, 0);
  snap->point_coords_.resize(static_cast<size_t>(total) * dim);
  snap->alive_ = grid.size();
  for (PointId p = 0; p < total; ++p) {
    if (!grid.alive(p)) continue;
    snap->cell_of_[p] = grid.cell_of(p);
    snap->point_core_[p] = sources.is_core(p) ? 1 : 0;
    const Point& pt = grid.point(p);
    double* out = snap->point_coords_.data() + static_cast<size_t>(p) * dim;
    for (int k = 0; k < dim; ++k) out[k] = pt[k];
  }
  return snap;
}

CGroupByResult GridSnapshot::Query(const std::vector<PointId>& q) const {
  CGroupByResult result;
  FlatHashMap<uint64_t, int32_t> bucket_of;
  for (const PointId pid : q) {
    if (!alive(pid)) continue;
    bool any = false;
    ForEachMembershipLabel(pid, [&](uint64_t cc) {
      any = true;
      auto [idx, inserted] = bucket_of.Emplace(
          cc, static_cast<int32_t>(result.groups.size()));
      if (inserted) result.groups.emplace_back();
      result.groups[*idx].push_back(pid);
    });
    if (!any) result.noise.push_back(pid);
  }
  return result;
}

}  // namespace ddc
