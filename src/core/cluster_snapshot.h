#ifndef DDC_CORE_CLUSTER_SNAPSHOT_H_
#define DDC_CORE_CLUSTER_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/flat_hash.h"
#include "core/cluster_query.h"
#include "core/clusterer.h"
#include "geom/box.h"
#include "geom/point.h"
#include "geom/simd_kernels.h"
#include "grid/grid.h"

namespace ddc {

/// An immutable, epoch-versioned view of one clustering: the read side of
/// the read/write split. A snapshot is deep-frozen at creation — it shares
/// no mutable state with the clusterer that produced it — so any number of
/// threads may Query it concurrently while updates keep flowing into the
/// live structures. Lookups are const and mutation-free by construction
/// (labels are resolved at build time through the read-only find variants;
/// no path compression or splaying ever runs on the read path).
///
/// A snapshot answers queries about the dataset *as of its epoch*: ids
/// inserted later are unknown to it and are silently skipped, exactly as
/// dead ids are.
class ClusterSnapshot {
 public:
  virtual ~ClusterSnapshot() = default;

  /// The C-group-by query of Section 4.2 over the snapshot's dataset. Ids
  /// dead (or unborn) at the snapshot's epoch are ignored. Thread-safe.
  virtual CGroupByResult Query(const std::vector<PointId>& q) const = 0;

  /// True when `id` was alive at the snapshot's epoch.
  virtual bool alive(PointId id) const = 0;

  /// Number of alive points at the snapshot's epoch.
  virtual int64_t size() const = 0;

  /// The update-stream version this snapshot froze: the clusterer's update
  /// counter for the single-threaded clusterers, the stitch epoch for the
  /// sharded engine. Monotone per clusterer.
  uint64_t epoch() const { return epoch_; }

 protected:
  explicit ClusterSnapshot(uint64_t epoch) : epoch_(epoch) {}

 private:
  uint64_t epoch_;
};

/// The frozen single-grid snapshot behind SemiDynamicClusterer,
/// FullyDynamicClusterer and IncrementalDbscan (and, per shard, behind the
/// sharded engine): per-point alive/core bits and packed coordinates, and
/// per-cell CC labels, packed core-member coordinates and ε-close core
/// neighbor lists. Membership follows the paper's query algorithm — a core
/// point takes its cell's CC label; a non-core point takes the label of
/// every ε-close core cell whose frozen emptiness query (brute-force scan
/// with the cell-box miss prefilter, radius (1+ρ)ε) certifies a proof —
/// which is conforming for the Theorem 3 sandwich and exact at rho == 0.
class GridSnapshot final : public ClusterSnapshot {
 public:
  /// What Build reads from the live clusterer. `cell_label(cell, p)` must
  /// return the CC label of core cell `cell` (where `p` is one of its core
  /// members — IncDBSCAN labels clusters through core points, the grid
  /// clusterers through cells); it is called once per core cell and must be
  /// a read-only lookup.
  struct Sources {
    const Grid* grid = nullptr;
    std::function<bool(PointId)> is_core;
    std::function<uint64_t(CellId, PointId)> cell_label;
  };

  /// Deep-freezes the query-relevant state. O(total points + cells + cell
  /// adjacency); runs on the clusterer's owning thread while the structures
  /// are quiescent.
  static std::shared_ptr<const GridSnapshot> Build(const Sources& sources,
                                                   double eps_outer,
                                                   uint64_t epoch);

  CGroupByResult Query(const std::vector<PointId>& q) const override;

  bool alive(PointId id) const override {
    return id >= 0 && id < static_cast<PointId>(cell_of_.size()) &&
           cell_of_[id] >= 0;
  }
  int64_t size() const override { return alive_; }

  bool is_core(PointId id) const {
    DDC_DCHECK(alive(id));
    return point_core_[id] != 0;
  }

  /// CC label of core point `id` (its cell's frozen label).
  uint64_t CoreLabelOf(PointId id) const {
    DDC_DCHECK(is_core(id));
    return cells_[cell_of_[id]].label;
  }

  /// Invokes `fn(label)` once per distinct cluster containing alive point
  /// `pid` — nothing for noise. The snapshot counterpart of the live-path
  /// ForEachMembershipLabel in cluster_query.h; thread-safe.
  template <typename Fn>
  void ForEachMembershipLabel(PointId pid, Fn&& fn) const {
    DDC_DCHECK(alive(pid));
    const int32_t c = cell_of_[pid];
    if (point_core_[pid] != 0) {
      fn(cells_[c].label);
      return;
    }
    Point p;
    const double* pc = point_coords_.data() +
                       static_cast<size_t>(pid) * static_cast<size_t>(dim_);
    for (int k = 0; k < dim_; ++k) p[k] = pc[k];
    MembershipLabelSet assigned;
    auto consider = [&](int32_t cell) {
      const CellRec& r = cells_[cell];
      if (r.members_begin == r.members_end) return;  // Not a core cell.
      if (BoxMiss(cell, p)) return;
      const double* m = member_coords_.data() +
                        static_cast<size_t>(r.members_begin) *
                            static_cast<size_t>(dim_);
      // Batched membership test over the frozen packed core members.
      if (!AnyWithinPacked(p, m, r.members_end - r.members_begin, dim_,
                           eps_outer_sq_)) {
        return;
      }
      if (assigned.Insert(r.label)) fn(r.label);
    };
    consider(c);
    const CellRec& own = cells_[c];
    for (int32_t i = own.nbr_begin; i < own.nbr_end; ++i) {
      consider(core_neighbors_[i]);
    }
  }

 private:
  /// The persistence layer (persist/snapshot_io.cc) serializes and rebuilds
  /// the frozen vectors directly — the on-disk sections mirror them 1:1.
  friend class SnapshotIO;

  struct CellRec {
    uint64_t label = 0;  // Valid when members_begin < members_end.
    int32_t members_begin = 0;
    int32_t members_end = 0;
    int32_t nbr_begin = 0;
    int32_t nbr_end = 0;
  };

  explicit GridSnapshot(uint64_t epoch) : ClusterSnapshot(epoch) {}

  /// The emptiness miss prefilter of the live structures, on the frozen
  /// cell box: O(d) certainty that no member of `cell` is within (1+ρ)ε.
  /// Same formula and slack rule as BoxMiss in core/emptiness.cc.
  bool BoxMiss(int32_t cell, const Point& p) const {
    return cell_boxes_[cell].MinSquaredDistance(p, dim_) >
           eps_outer_sq_ * (1 + kBoxPrefilterSlack);
  }

  int dim_ = 0;
  double eps_outer_sq_ = 0;
  int64_t alive_ = 0;

  // Per point, indexed by PointId in [0, total_inserted at freeze time).
  std::vector<int32_t> cell_of_;  // -1 = dead.
  std::vector<uint8_t> point_core_;
  std::vector<double> point_coords_;  // Packed, dim doubles per point.

  // Per cell (same CellId indexing as the source grid).
  std::vector<CellRec> cells_;
  std::vector<Box> cell_boxes_;
  std::vector<double> member_coords_;  // Core members, grouped by cell.
  std::vector<int32_t> core_neighbors_;  // ε-close core cells, per cell.
};

/// Publication slot for a shared_ptr: Store swaps the pointer in, Load
/// hands a reference-counted copy out, from any thread. The pointer copy
/// sits behind a plain mutex held for a handful of instructions and never
/// across user code — std::atomic<shared_ptr> would express the same
/// semantics (it is lock-based inside libstdc++ too), but its lock-bit
/// protocol is invisible to ThreadSanitizer (GCC PR 104366) and the CI
/// TSan job runs with halt_on_error.
template <typename T>
class SharedPtrSlot {
 public:
  std::shared_ptr<T> Load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }

  void Store(std::shared_ptr<T> p) {
    // Drop the previous value outside the lock (its destructor may do real
    // work).
    std::shared_ptr<T> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old.swap(ptr_);
      ptr_ = std::move(p);
    }
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> ptr_;
};

/// The publication slot of a clusterer's snapshot: a swapped shared_ptr
/// plus a relaxed update counter. The update path pays one relaxed
/// fetch_add (invalidation is implicit — a cached snapshot whose epoch
/// trails the version is stale); the snapshot slot itself is only written
/// by the owning thread's GetOrBuild and read by anyone.
class SnapshotCache {
 public:
  /// Called once per applied update (any thread).
  void BumpVersion() { version_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// The cached snapshot when it is current, else `build(version)` —
  /// published into the slot before returning. Owning thread only, with the
  /// structures quiescent.
  template <typename BuildFn>
  std::shared_ptr<const ClusterSnapshot> GetOrBuild(BuildFn&& build) {
    const uint64_t v = version();
    std::shared_ptr<const ClusterSnapshot> cached = cached_.Load();
    if (cached != nullptr && cached->epoch() == v) return cached;
    std::shared_ptr<const ClusterSnapshot> fresh = build(v);
    DDC_DCHECK(fresh != nullptr);
    cached_.Store(fresh);
    return fresh;
  }

  /// Latest published snapshot, possibly stale or null; any thread.
  std::shared_ptr<const ClusterSnapshot> Peek() const {
    return cached_.Load();
  }

 private:
  std::atomic<uint64_t> version_{0};
  SharedPtrSlot<const ClusterSnapshot> cached_;
};

}  // namespace ddc

#endif  // DDC_CORE_CLUSTER_SNAPSHOT_H_
