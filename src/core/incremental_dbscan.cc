#include "core/incremental_dbscan.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/flat_hash.h"

namespace ddc {

IncrementalDbscan::IncrementalDbscan(const DbscanParams& params)
    : params_(params), grid_(params.dim, params.eps) {
  params_.Validate();
  DDC_CHECK(params_.rho == 0 && "IncDBSCAN maintains exact DBSCAN clusters");
}

std::vector<PointId> IncrementalDbscan::RangeQuery(const Point& center) {
  ++range_queries_;
  std::vector<PointId> out;
  grid_.ForEachPointInRange(center, params_.eps,
                            [&](PointId p) { out.push_back(p); });
  return out;
}

int IncrementalDbscan::ClusterOf(PointId p) {
  DDC_DCHECK(is_core(p));
  return merge_history_.Find(cluster_id_[p]);
}

void IncrementalDbscan::LabelNewCore(PointId p,
                                     const std::vector<PointId>& neighbors) {
  int label = -1;
  for (const PointId r : neighbors) {
    if (r == p || !is_core(r) || cluster_id_[r] < 0) continue;
    const int other = ClusterOf(r);
    if (label < 0) {
      label = other;
    } else if (label != other) {
      merge_history_.Union(label, other);  // Merge, never relabel.
      label = merge_history_.Find(label);
    }
  }
  if (label < 0) {
    // A brand-new cluster is born.
    label = merge_history_.size();
    merge_history_.EnsureSize(label + 1);
  }
  cluster_id_[p] = label;
}

PointId IncrementalDbscan::Insert(const Point& p) {
  const Grid::InsertResult ins = grid_.Insert(p);
  neighbor_count_.push_back(0);
  cluster_id_.push_back(-1);

  // Seed retrieval: one range query, exactly as in [8].
  const std::vector<PointId> seeds = RangeQuery(p);
  neighbor_count_[ins.id] = static_cast<int32_t>(seeds.size());

  // Bump neighbor counts; collect points that just became core.
  std::vector<PointId> new_cores;
  for (const PointId q : seeds) {
    if (q == ins.id) continue;
    if (++neighbor_count_[q] == params_.min_pts) new_cores.push_back(q);
  }
  if (is_core(ins.id)) new_cores.push_back(ins.id);

  // New core-graph edges are all incident to a new core point: label each
  // new core and merge with every surrounding core's cluster. Each new core
  // costs one more range query (IncDBSCAN's UpdSeed retrieval).
  for (const PointId q : new_cores) {
    const std::vector<PointId> around =
        (q == ins.id) ? seeds : RangeQuery(grid_.point(q));
    LabelNewCore(q, around);
  }
  snapshot_cache_.BumpVersion();
  return ins.id;
}

void IncrementalDbscan::Delete(PointId id) {
  DDC_CHECK(grid_.alive(id));
  // Seed retrieval (includes the departing point itself).
  const std::vector<PointId> seeds = RangeQuery(grid_.point(id));

  // Decrement counts; demoted cores keep their stale cluster_id_ for a
  // moment — that is how they are recognized below.
  for (const PointId q : seeds) {
    if (q != id) --neighbor_count_[q];
  }
  grid_.Delete(id);
  neighbor_count_[id] = 0;
  cluster_id_[id] = -1;

  // Every core-graph edge that disappeared is incident to the deleted point
  // or to a demoted core. The surviving cores adjacent to those points seed
  // the split check; any split component must contain one of them.
  std::unordered_map<int, std::vector<PointId>> seeds_by_cluster;
  FlatHashSet<PointId> dedupe;
  auto add_seed = [&](PointId r) {
    if (!is_core(r)) return;
    if (!dedupe.Insert(r)) return;
    seeds_by_cluster[ClusterOf(r)].push_back(r);
  };
  for (const PointId q : seeds) {
    if (q == id) continue;
    if (is_core(q)) {
      add_seed(q);
    } else if (cluster_id_[q] >= 0) {
      // A demoted core: its former core neighbors are boundary seeds.
      for (const PointId r : RangeQuery(grid_.point(q))) add_seed(r);
      cluster_id_[q] = -1;  // Border/noise now; resolved at query time.
    }
  }

  for (auto& [cluster, cluster_seeds] : seeds_by_cluster) {
    if (cluster_seeds.size() >= 2) CheckSplit(cluster_seeds);
  }
  snapshot_cache_.BumpVersion();
}

void IncrementalDbscan::CheckSplit(const std::vector<PointId>& seeds) {
  // Alternating multi-source BFS over the core graph, one range query per
  // expansion. Threads that touch merge; a thread whose frontier drains has
  // swept a whole component and relabels it; when one thread remains, no
  // further split is possible and we stop — exactly the procedure of [8].
  const int k = static_cast<int>(seeds.size());
  std::vector<std::deque<PointId>> frontier(k);
  std::vector<std::vector<PointId>> visited_list(k);
  FlatHashMap<PointId, int> owner;
  UnionFind threads(k);
  std::vector<bool> finished(k, false);

  for (int t = 0; t < k; ++t) {
    frontier[t].push_back(seeds[t]);
    visited_list[t].push_back(seeds[t]);
    owner[seeds[t]] = t;
  }

  auto active_roots = [&]() {
    std::unordered_set<int> roots;
    for (int t = 0; t < k; ++t) {
      const int r = threads.Find(t);
      if (!finished[r]) roots.insert(r);
    }
    return roots;
  };

  for (;;) {
    std::unordered_set<int> roots = active_roots();
    if (roots.size() <= 1) break;  // No (further) split detectable.
    for (const int t : roots) {
      if (threads.Find(t) != t || finished[t]) continue;  // Merged meanwhile.
      if (frontier[t].empty()) {
        // Component fully swept: it split off — relabel with a fresh id.
        const int fresh = merge_history_.size();
        merge_history_.EnsureSize(fresh + 1);
        for (const PointId p : visited_list[t]) {
          if (is_core(p)) cluster_id_[p] = fresh;
        }
        finished[t] = true;
        continue;
      }
      const PointId x = frontier[t].front();
      frontier[t].pop_front();
      for (const PointId r : RangeQuery(grid_.point(x))) {
        if (!is_core(r)) continue;
        const int* owning_thread = owner.Find(r);
        if (owning_thread == nullptr) {
          owner[r] = t;
          frontier[t].push_back(r);
          visited_list[t].push_back(r);
          continue;
        }
        const int other = threads.Find(*owning_thread);
        if (other != t) {
          // Threads meet: coalesce into the surviving root.
          threads.Union(t, other);
          const int root = threads.Find(t);
          const int dead = root == t ? other : t;
          frontier[root].insert(frontier[root].end(), frontier[dead].begin(),
                                frontier[dead].end());
          frontier[dead].clear();
          visited_list[root].insert(visited_list[root].end(),
                                    visited_list[dead].begin(),
                                    visited_list[dead].end());
          visited_list[dead].clear();
          if (root != t) {
            // This thread id no longer exists; hand x's remaining neighbors
            // to the surviving root by re-queuing x for expansion.
            frontier[root].push_back(x);
            break;
          }
        }
      }
    }
  }
}

std::shared_ptr<const ClusterSnapshot> IncrementalDbscan::Snapshot() {
  // The frozen view reproduces IncDBSCAN's query semantics exactly: a core
  // point reports its cluster (through the merging history); a border point
  // reports the clusters of the core points in its ε-ball. The per-cell
  // formulation is equivalent because any two core points sharing a cell
  // (side ε/√d) are within ε of each other and hence share a cluster in
  // exact DBSCAN — one label per cell covers all of its core members.
  return snapshot_cache_.GetOrBuild([this](uint64_t epoch) {
    GridSnapshot::Sources sources;
    sources.grid = &grid_;
    sources.is_core = [this](PointId p) { return is_core(p); };
    sources.cell_label = [this](CellId, PointId first_core) {
      DDC_DCHECK(cluster_id_[first_core] >= 0);
      return static_cast<uint64_t>(
          merge_history_.FindReadOnly(cluster_id_[first_core]));
    };
    return GridSnapshot::Build(sources, params_.eps, epoch);
  });
}

std::vector<PointId> IncrementalDbscan::AlivePoints() const {
  std::vector<PointId> ids;
  ids.reserve(grid_.size());
  for (PointId i = 0; i < grid_.total_inserted(); ++i) {
    if (grid_.alive(i)) ids.push_back(i);
  }
  return ids;
}

}  // namespace ddc
