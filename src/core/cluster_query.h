#ifndef DDC_CORE_CLUSTER_QUERY_H_
#define DDC_CORE_CLUSTER_QUERY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/clusterer.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {

/// The shared C-group-by query algorithm of Section 4.2. All our clusterers
/// answer queries identically; they differ only in how the three callbacks
/// below are backed:
///
///   * `is_core(p)`    — the core-status structure;
///   * `cc_id(cell)`   — CC-Id of a *core cell* in the grid graph;
///   * `empty(q, cell)`— the ρ-approximate ε-emptiness query against the
///                       core points of a core cell, returning a proof point
///                       or kInvalidPoint.
///
/// A core query point takes the CC id of its cell; a non-core point is
/// snapped to every ε-close core cell whose emptiness query returns a proof.
struct QueryHooks {
  std::function<bool(PointId)> is_core;
  std::function<bool(CellId)> is_core_cell;
  std::function<uint64_t(CellId)> cc_id;
  std::function<PointId(const Point&, CellId)> empty;
};

/// Runs the C-group-by query over `q` (ids not alive in `grid` are ignored).
CGroupByResult RunCGroupByQuery(const Grid& grid,
                                const std::vector<PointId>& q,
                                const QueryHooks& hooks);

}  // namespace ddc

#endif  // DDC_CORE_CLUSTER_QUERY_H_
