#ifndef DDC_CORE_CLUSTER_QUERY_H_
#define DDC_CORE_CLUSTER_QUERY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/flat_hash.h"
#include "core/clusterer.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {

/// Dedup set for the cluster labels of one query point. A non-core point
/// belongs to at most one cluster per ε-close core cell, and in practice to
/// one or two, so a fixed inline buffer with linear probing covers the hot
/// path without touching the heap; the rare point adjacent to more distinct
/// clusters spills into a FlatHashSet.
class MembershipLabelSet {
 public:
  /// Records `label`; true when it was not seen before.
  bool Insert(uint64_t label) {
    if (count_ <= kInlineCapacity) {
      for (int i = 0; i < count_; ++i) {
        if (inline_[i] == label) return false;
      }
      if (count_ < kInlineCapacity) {
        inline_[count_++] = label;
        return true;
      }
      // Inline buffer full: migrate to the spill set.
      for (int i = 0; i < kInlineCapacity; ++i) spill_.Insert(inline_[i]);
      ++count_;
    }
    return spill_.Insert(label);
  }

 private:
  static constexpr int kInlineCapacity = 12;
  int count_ = 0;
  uint64_t inline_[kInlineCapacity];
  FlatHashSet<uint64_t> spill_;
};

/// The C-group-by query algorithm of Section 4.2 over scripted callbacks —
/// the executable specification of the query semantics, pinned down by
/// tests/cluster_query_test.cc. The production read path is its frozen
/// counterpart, GridSnapshot::ForEachMembershipLabel in
/// core/cluster_snapshot.h: any semantic change must land in both. The
/// callbacks:
///
///   * `is_core(p)`    — the core-status structure;
///   * `cc_id(cell)`   — CC-Id of a *core cell* in the grid graph;
///   * `empty(q, cell)`— the ρ-approximate ε-emptiness query against the
///                       core points of a core cell, returning a proof point
///                       or kInvalidPoint.
///
/// A core query point takes the CC id of its cell; a non-core point is
/// snapped to every ε-close core cell whose emptiness query returns a proof.
struct QueryHooks {
  std::function<bool(PointId)> is_core;
  std::function<bool(CellId)> is_core_cell;
  std::function<uint64_t(CellId)> cc_id;
  std::function<PointId(const Point&, CellId)> empty;
};

/// Runs the C-group-by query over `q` (ids not alive in `grid` are ignored).
CGroupByResult RunCGroupByQuery(const Grid& grid,
                                const std::vector<PointId>& q,
                                const QueryHooks& hooks);

/// The per-point core of RunCGroupByQuery: invokes `fn(label)` once per
/// distinct cluster (CC id) containing `pid` — nothing for a noise point. A
/// core point contributes exactly its cell's CC; a non-core point
/// contributes the CC of every ε-close core cell whose emptiness query
/// certifies a proof point. `pid` must be alive in `grid`. Exposed so
/// composite engines (the sharded clusterer) can merge memberships computed
/// by several underlying clusterers before grouping. Templated on the
/// callback so the per-point query path never materializes a std::function.
template <typename Fn>
void ForEachMembershipLabel(const Grid& grid, PointId pid,
                            const QueryHooks& hooks, Fn&& fn) {
  DDC_DCHECK(grid.alive(pid));
  const CellId c = grid.cell_of(pid);
  if (hooks.is_core(pid)) {
    // A core point lives in a core cell; its cluster is the cell's CC.
    DDC_DCHECK(hooks.is_core_cell(c));
    fn(hooks.cc_id(c));
    return;
  }
  // Non-core: snap to every ε-close core cell (and the own cell) whose
  // emptiness query produces a proof point. Distinct CCs may repeat over
  // cells, hence the local set (inline-buffered: no per-point allocation).
  const Point& p = grid.point(pid);
  MembershipLabelSet assigned;
  auto consider = [&](CellId cell) {
    if (!hooks.is_core_cell(cell)) return;
    if (hooks.empty(p, cell) == kInvalidPoint) return;
    const uint64_t cc = hooks.cc_id(cell);
    if (assigned.Insert(cc)) fn(cc);
  };
  consider(c);
  for (const CellId nb : grid.cell(c).neighbors) consider(nb);
}

}  // namespace ddc

#endif  // DDC_CORE_CLUSTER_QUERY_H_
