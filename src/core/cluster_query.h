#ifndef DDC_CORE_CLUSTER_QUERY_H_
#define DDC_CORE_CLUSTER_QUERY_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "core/clusterer.h"
#include "geom/point.h"
#include "grid/grid.h"

namespace ddc {

/// The shared C-group-by query algorithm of Section 4.2. All our clusterers
/// answer queries identically; they differ only in how the three callbacks
/// below are backed:
///
///   * `is_core(p)`    — the core-status structure;
///   * `cc_id(cell)`   — CC-Id of a *core cell* in the grid graph;
///   * `empty(q, cell)`— the ρ-approximate ε-emptiness query against the
///                       core points of a core cell, returning a proof point
///                       or kInvalidPoint.
///
/// A core query point takes the CC id of its cell; a non-core point is
/// snapped to every ε-close core cell whose emptiness query returns a proof.
struct QueryHooks {
  std::function<bool(PointId)> is_core;
  std::function<bool(CellId)> is_core_cell;
  std::function<uint64_t(CellId)> cc_id;
  std::function<PointId(const Point&, CellId)> empty;
};

/// Runs the C-group-by query over `q` (ids not alive in `grid` are ignored).
CGroupByResult RunCGroupByQuery(const Grid& grid,
                                const std::vector<PointId>& q,
                                const QueryHooks& hooks);

/// The per-point core of RunCGroupByQuery: invokes `fn(label)` once per
/// distinct cluster (CC id) containing `pid` — nothing for a noise point. A
/// core point contributes exactly its cell's CC; a non-core point
/// contributes the CC of every ε-close core cell whose emptiness query
/// certifies a proof point. `pid` must be alive in `grid`. Exposed so
/// composite engines (the sharded clusterer) can merge memberships computed
/// by several underlying clusterers before grouping. Templated on the
/// callback so the per-point query path never materializes a std::function.
template <typename Fn>
void ForEachMembershipLabel(const Grid& grid, PointId pid,
                            const QueryHooks& hooks, Fn&& fn) {
  DDC_DCHECK(grid.alive(pid));
  const CellId c = grid.cell_of(pid);
  if (hooks.is_core(pid)) {
    // A core point lives in a core cell; its cluster is the cell's CC.
    DDC_DCHECK(hooks.is_core_cell(c));
    fn(hooks.cc_id(c));
    return;
  }
  // Non-core: snap to every ε-close core cell (and the own cell) whose
  // emptiness query produces a proof point. Distinct CCs may repeat over
  // cells, hence the local set.
  const Point& p = grid.point(pid);
  std::unordered_set<uint64_t> assigned;
  auto consider = [&](CellId cell) {
    if (!hooks.is_core_cell(cell)) return;
    if (hooks.empty(p, cell) == kInvalidPoint) return;
    if (assigned.insert(hooks.cc_id(cell)).second) fn(hooks.cc_id(cell));
  };
  consider(c);
  for (const CellId nb : grid.cell(c).neighbors) consider(nb);
}

}  // namespace ddc

#endif  // DDC_CORE_CLUSTER_QUERY_H_
