#ifndef DDC_CORE_INCREMENTAL_DBSCAN_H_
#define DDC_CORE_INCREMENTAL_DBSCAN_H_

#include <vector>

#include "core/cluster_snapshot.h"
#include "core/clusterer.h"
#include "core/params.h"
#include "grid/grid.h"
#include "unionfind/union_find.h"

namespace ddc {

/// IncDBSCAN — the incremental exact-DBSCAN maintenance algorithm of Ester,
/// Kriegel, Sander, Wimmer and Xu (VLDB 1998) [8], the state of the art the
/// paper compares against (Section 3). Reimplemented faithfully:
///
///   * every insertion/deletion starts with an ε-range query for the seed
///     points, and updates exact neighborhood counts;
///   * cluster merging never relabels — cluster ids go through a merging
///     history (a union-find over ids);
///   * a deletion that may split a cluster runs as many alternating BFS
///     threads over the core graph as there are seed points, each expansion
///     being another ε-range query; threads that meet coalesce, and when
///     only one thread is left the split check stops early. Completed
///     threads relabel their side with a fresh id.
///
/// The range queries use the shared grid (at least as fast as the R*-tree
/// the original used, so the baseline is not handicapped — see DESIGN.md).
/// Deletions in dense regions are intentionally expensive: that is the
/// drawback (Section 3, "Drawbacks of IncDBSCAN") the paper's algorithms
/// remove, and what the fully-dynamic benchmarks quantify.
class IncrementalDbscan : public Clusterer {
 public:
  /// rho must be 0: IncDBSCAN maintains exact DBSCAN clusters.
  explicit IncrementalDbscan(const DbscanParams& params);

  PointId Insert(const Point& p) override;
  void Delete(PointId id) override;
  std::shared_ptr<const ClusterSnapshot> Snapshot() override;
  std::shared_ptr<const ClusterSnapshot> CurrentSnapshot() const override {
    return snapshot_cache_.Peek();
  }

  std::vector<PointId> AlivePoints() const override;
  const DbscanParams& params() const override { return params_; }
  int64_t size() const override { return grid_.size(); }

  /// Introspection (tests, benches).
  bool is_core(PointId p) const {
    return neighbor_count_[p] >= params_.min_pts;
  }
  int64_t range_queries_issued() const { return range_queries_; }
  const Grid& grid() const { return grid_; }

 private:
  /// All alive points within eps of `center` (one "range query", the
  /// algorithm's cost unit).
  std::vector<PointId> RangeQuery(const Point& center);

  /// Current cluster id of a core point, following the merging history.
  int ClusterOf(PointId p);

  /// Gives new core point `p` a cluster id, merging with its core neighbors.
  void LabelNewCore(PointId p, const std::vector<PointId>& neighbors);

  /// Split check after a deletion: alternating BFS threads from `seeds`
  /// (all in the same cluster); completed threads get fresh ids.
  void CheckSplit(const std::vector<PointId>& seeds);

  DbscanParams params_;
  Grid grid_;
  std::vector<int32_t> neighbor_count_;  // |B(p, eps)| for alive points.
  std::vector<int32_t> cluster_id_;      // Valid only while core.
  UnionFind merge_history_;              // Over cluster ids.
  int64_t range_queries_ = 0;
  SnapshotCache snapshot_cache_;
};

}  // namespace ddc

#endif  // DDC_CORE_INCREMENTAL_DBSCAN_H_
