#include "engine/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace ddc {

ThreadPool::ThreadPool(int num_workers) {
  DDC_CHECK(num_workers >= 1);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    // A worker that has never run a task is "recently alive" from creation,
    // so a watchdog deadline counts from here, not from the epoch.
    workers_.back()->health.Beat();
  }
  // Threads start only after the vector is fully built, so Run never sees a
  // partially constructed pool.
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { Run(worker); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->wake.notify_one();
  }
  for (auto& w : workers_) w->thread.join();
}

void ThreadPool::Submit(int worker, std::function<void()> task) {
  DDC_CHECK(worker >= 0 && worker < num_workers());
  Worker& w = *workers_[worker];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    DDC_CHECK(!w.stop);
    w.queue.push_back(std::move(task));
    w.health.queue_depth.fetch_add(1, std::memory_order_relaxed);
  }
  w.wake.notify_one();
}

void ThreadPool::Drain() {
  for (auto& w : workers_) {
    std::unique_lock<std::mutex> lock(w->mu);
    w->idle.wait(lock, [&] { return w->queue.empty() && !w->running; });
  }
}

void ThreadPool::Run(Worker* w) {
  std::unique_lock<std::mutex> lock(w->mu);
  for (;;) {
    w->wake.wait(lock, [&] { return !w->queue.empty() || w->stop; });
    if (w->queue.empty()) {
      // stop && drained: exit. Pending tasks always run before shutdown.
      return;
    }
    std::function<void()> task = std::move(w->queue.front());
    w->queue.pop_front();
    w->running = true;
    lock.unlock();
    w->health.Beat();
    task();
    w->health.Beat();
    w->health.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    w->health.tasks_completed.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    w->running = false;
    if (w->queue.empty()) w->idle.notify_all();
  }
}

}  // namespace ddc
