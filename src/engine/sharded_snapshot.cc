#include "engine/sharded_snapshot.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/check.h"

namespace ddc {

ShardedSnapshot::ShardedSnapshot(
    uint64_t epoch, std::vector<GidRec> points, int64_t alive,
    std::vector<std::shared_ptr<const GridSnapshot>> shards,
    std::vector<FlatHashMap<PointId, PointId>> local_of,
    std::shared_ptr<const BoundaryStitcher::LabelTable> stitch)
    : ClusterSnapshot(epoch),
      points_(std::move(points)),
      alive_(alive),
      shards_(std::move(shards)),
      local_of_(std::move(local_of)),
      stitch_(std::move(stitch)) {
  DDC_CHECK(shards_.size() == local_of_.size());
  DDC_CHECK(stitch_ != nullptr);
}

void ShardedSnapshot::Labels(PointId id,
                             std::vector<ClusterLabel>* out) const {
  const GidRec& rec = points_[id];
  const GridSnapshot& owner = *shards_[rec.owner];
  const PointId* owner_local = local_of_[rec.owner].Find(id);
  DDC_CHECK(owner_local != nullptr);

  if (owner.is_core(*owner_local)) {
    // Core status is owned by the owner shard — it alone sees the point's
    // full (1+ρ)ε neighborhood — and a core point belongs to exactly one
    // cluster: its owner-side component, canonicalized through the stitch.
    out->push_back(
        stitch_->Resolve(rec.owner, owner.CoreLabelOf(*owner_local)));
    return;
  }

  // Owner-non-core: union of the memberships every holding shard computes.
  // Each holder sees a (possibly truncated) neighborhood, but every true
  // attachment (core point w within ε) is realized in owner(w)'s shard,
  // which also holds this point — so the union is complete; the stitch
  // collapses the per-shard labels of one cluster into one.
  for (int t = rec.first_holder; t <= rec.last_holder; ++t) {
    const GridSnapshot& s = *shards_[t];
    const PointId* local = local_of_[t].Find(id);
    DDC_CHECK(local != nullptr);
    s.ForEachMembershipLabel(*local, [&](uint64_t cc) {
      out->push_back(stitch_->Resolve(t, cc));
    });
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

CGroupByResult ShardedSnapshot::Query(const std::vector<PointId>& q) const {
  CGroupByResult result;
  std::map<ClusterLabel, std::vector<PointId>> buckets;
  std::vector<ClusterLabel> labels;
  for (const PointId gid : q) {
    if (!alive(gid)) continue;
    labels.clear();
    Labels(gid, &labels);
    if (labels.empty()) {
      result.noise.push_back(gid);
      continue;
    }
    for (const ClusterLabel& label : labels) {
      buckets[label].push_back(gid);
    }
  }
  result.groups.reserve(buckets.size());
  for (auto& [label, members] : buckets) {
    result.groups.push_back(std::move(members));
  }
  return result;
}

ClusterLabel ShardedSnapshot::LabelOf(PointId id) const {
  if (!alive(id)) return kNoCluster;
  std::vector<ClusterLabel> labels;
  Labels(id, &labels);
  return labels.empty() ? kNoCluster : labels.front();
}

bool ShardedSnapshot::SameCluster(PointId a, PointId b) const {
  if (!alive(a) || !alive(b)) return false;
  std::vector<ClusterLabel> la, lb;
  Labels(a, &la);
  Labels(b, &lb);
  // Both sorted; any common label means a shared cluster.
  size_t i = 0, j = 0;
  while (i < la.size() && j < lb.size()) {
    if (la[i] == lb[j]) return true;
    if (la[i] < lb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace ddc
