#include "engine/sharded_clusterer.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ddc {

ShardedClusterer::ShardedClusterer(const DbscanParams& params,
                                   const Options& options)
    : params_(params),
      options_(options),
      map_(options.shards, params.dim, params.eps_outer()),
      stitcher_(params.dim, params.eps) {
  params_.Validate();
  DDC_CHECK(options_.shards >= 1 && options_.shards <= kMaxShards);
  DDC_CHECK(options_.threads >= 0 && options_.threads <= kMaxShards);
  DDC_CHECK(options_.batch >= 1);
  DDC_CHECK(options_.warmup >= 0);
  if (options_.threads == 0) options_.threads = options_.shards;

  shards_.reserve(options_.shards);
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->worker = i % options_.threads;
    shard->clusterer =
        std::make_unique<FullyDynamicClusterer>(params_, options_.inner);
    // The observer runs on the shard's worker thread and only touches
    // worker-side state; Flush's drain hands it to the ingest thread.
    Shard* s = shard.get();
    shard->clusterer->set_core_observer([s](PointId local, bool now_core) {
      s->core_count += now_core ? 1 : -1;
      if (s->is_boundary[local]) {
        s->deltas.push_back(CoreDelta{s->global_of[local], now_core,
                                      s->clusterer->grid().point(local)});
      }
    });
    shards_.push_back(std::move(shard));
  }
  pool_ = std::make_unique<ThreadPool>(options_.threads);

  if (options_.watchdog_deadline_ms > 0) {
    // One label per worker naming the shards pinned to it, so a stall
    // report points at the data, not just the thread.
    std::vector<const WorkerHealth*> health;
    std::vector<std::string> labels(options_.threads);
    for (int w = 0; w < options_.threads; ++w) {
      health.push_back(&pool_->health(w));
      std::string shard_list;
      for (int s = w; s < options_.shards; s += options_.threads) {
        if (!shard_list.empty()) shard_list += ",";
        shard_list += std::to_string(s);
      }
      labels[w] = "shard=" + shard_list;
    }
    Watchdog::Options wd;
    wd.deadline_ms = options_.watchdog_deadline_ms;
    watchdog_ = std::make_unique<Watchdog>(
        std::move(health), std::move(labels), wd,
        [this](const Watchdog::Stall& stall) {
          std::fprintf(stderr,
                       "[ddc watchdog] worker %d (%s) quiet %.1fs with %lld "
                       "batch(es) queued; %llu tasks done, epoch %" PRIu64
                       "\n",
                       stall.worker, stall.label.c_str(), stall.quiet_seconds,
                       static_cast<long long>(stall.queue_depth),
                       static_cast<unsigned long long>(stall.tasks_completed),
                       epoch());
        });
  }
}

ShardedClusterer::~ShardedClusterer() {
  // The watchdog reads worker health cells, so it goes first; then stop the
  // workers before any shard state they touch goes away. The pool
  // destructor runs every queued batch first.
  watchdog_.reset();
  pool_.reset();
}

PointId ShardedClusterer::Insert(const Point& p) {
  const PointId gid = static_cast<PointId>(points_.size());
  points_.push_back(PointRec{});
  points_[gid].alive = true;
  ++alive_;

  if (!map_.initialized()) {
    warmup_buffer_.push_back(Op{gid, true, false, 0, p});
    ++warmup_inserts_;
    if (warmup_inserts_ >= options_.warmup) FinishWarmup();
    return gid;
  }
  RouteInsert(gid, p);
  return gid;
}

void ShardedClusterer::Delete(PointId id) {
  DDC_CHECK(id >= 0 && id < static_cast<PointId>(points_.size()) &&
            points_[id].alive);
  points_[id].alive = false;
  --alive_;

  if (!map_.initialized()) {
    warmup_buffer_.push_back(Op{id, false, false, 0, Point{}});
    return;
  }
  RouteDelete(id);
}

void ShardedClusterer::RouteInsert(PointId gid, const Point& p) {
  PointRec& rec = points_[gid];
  const int owner = map_.OwnerOf(p);
  const ShardMap::Range holders = map_.HoldersOf(p);
  DDC_DCHECK(holders.first <= owner && owner <= holders.last);
  rec.owner = static_cast<uint8_t>(owner);
  rec.first_holder = static_cast<uint8_t>(holders.first);
  rec.last_holder = static_cast<uint8_t>(holders.last);

  Op op;
  op.gid = gid;
  op.is_insert = true;
  op.boundary = map_.NearBoundary(p, owner);
  op.owner = static_cast<uint8_t>(owner);
  op.point = p;
  for (int t = holders.first; t <= holders.last; ++t) {
    EnqueueOp(*shards_[t], op);
  }
}

void ShardedClusterer::RouteDelete(PointId gid) {
  const PointRec& rec = points_[gid];
  Op op;
  op.gid = gid;
  op.is_insert = false;
  op.boundary = false;
  op.owner = rec.owner;
  for (int t = rec.first_holder; t <= rec.last_holder; ++t) {
    EnqueueOp(*shards_[t], op);
  }
}

void ShardedClusterer::EnqueueOp(Shard& shard, const Op& op) {
  shard.open.push_back(op);
  if (static_cast<int>(shard.open.size()) >= options_.batch) {
    PublishShard(shard);
  }
}

void ShardedClusterer::PublishShard(Shard& shard) {
  if (shard.open.empty()) return;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.pending.push_back(std::move(shard.open));
    const int64_t depth = static_cast<int64_t>(shard.pending.size());
    if (depth > shard.queue_hwm) shard.queue_hwm = depth;
  }
  shard.open.clear();
  pool_->Submit(shard.worker, [this, s = &shard] { ProcessShard(s); });
}

void ShardedClusterer::ProcessShard(Shard* shard) {
  // One task is submitted per published batch, so normally this pops exactly
  // one; the loop also mops up if a prior task consumed several.
  for (;;) {
    std::vector<Op> batch;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (shard->pending.empty()) return;
      batch = std::move(shard->pending.front());
      shard->pending.erase(shard->pending.begin());
    }
    DDC_TRACE_SPAN("engine.shard_batch");
    const auto t0 = std::chrono::steady_clock::now();
    for (const Op& op : batch) ApplyOp(*shard, op);
    const double batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    shard->busy_seconds += batch_seconds;
    DDC_HISTOGRAM_RECORD("engine.shard_batch", batch_seconds * 1e6);
    shard->ops_applied += static_cast<int64_t>(batch.size());
    ++shard->batches_applied;
    shard->dirty = true;
  }
}

void ShardedClusterer::ApplyOp(Shard& shard, const Op& op) {
  if (op.is_insert) {
    const bool owned = static_cast<int>(op.owner) == shard.index;
    // The local id the grid will assign; registered before Insert so the
    // core observer can translate it the moment the new point promotes.
    const PointId local =
        static_cast<PointId>(shard.clusterer->grid().total_inserted());
    shard.global_of.push_back(op.gid);
    shard.is_owned.push_back(owned ? 1 : 0);
    shard.is_boundary.push_back(owned && op.boundary ? 1 : 0);
    const PointId got = shard.clusterer->Insert(op.point);
    DDC_CHECK(got == local);
    shard.local_of[op.gid] = local;
    (owned ? shard.owned_alive : shard.ghost_alive) += 1;
    return;
  }
  PointId* local = shard.local_of.Find(op.gid);
  DDC_CHECK(local != nullptr);
  (shard.is_owned[*local] ? shard.owned_alive : shard.ghost_alive) -= 1;
  shard.clusterer->Delete(*local);
  shard.local_of.Erase(op.gid);
}

void ShardedClusterer::FinishWarmup() {
  DDC_TRACE_SPAN("engine.warmup_replay");
  std::vector<Point> sample;
  sample.reserve(warmup_buffer_.size());
  for (const Op& op : warmup_buffer_) {
    if (op.is_insert) sample.push_back(op.point);
  }
  map_.InitFromSample(sample);

  // Replay the buffered prefix verbatim — same op order the caller issued,
  // so shards=1 reproduces the unsharded engine's history exactly.
  std::vector<Op> buffered;
  buffered.swap(warmup_buffer_);
  for (const Op& op : buffered) {
    if (op.is_insert) {
      RouteInsert(op.gid, op.point);
    } else {
      RouteDelete(op.gid);
    }
  }
}

void ShardedClusterer::Flush() {
  DDC_TRACE_SPAN("engine.flush");
  if (!map_.initialized()) FinishWarmup();
  for (auto& shard : shards_) PublishShard(*shard);
  pool_->Drain();

  // Workers are quiescent: fold their boundary transitions into the stitch
  // registry (per-shard order preserved; cross-shard order is irrelevant —
  // adds probe the current registry and removes purge their own edges).
  bool dirty = false;
  for (auto& shard : shards_) {
    for (const CoreDelta& d : shard->deltas) {
      if (d.now_core) {
        stitcher_.AddCore(shard->index, d.gid, d.point);
      } else {
        stitcher_.RemoveCore(d.gid);
      }
    }
    shard->deltas.clear();
    if (shard->dirty) {
      dirty = true;
      shard->dirty = false;
    }
  }
  if (dirty) {
    // Shard-local component labels are stable only between updates, so any
    // applied batch invalidates the previous epoch's label table. The new
    // table goes into a fresh object — snapshots of older epochs keep
    // resolving against theirs.
    DDC_TRACE_SPAN("engine.stitch_rebuild");
    DDC_COUNTER_INC("engine.stitch_rebuilds");
    stitcher_.Rebuild(
        [this](PointId gid, std::vector<BoundaryStitcher::LabelKey>* out) {
          LabelsOf(gid, out);
        });
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  if (dirty || published_.Load() == nullptr) {
    PublishSnapshot();
  }
}

void ShardedClusterer::PublishSnapshot() {
  DDC_TRACE_SPAN("engine.publish_snapshot");
  DDC_HISTOGRAM_SCOPED("engine.snapshot_publish");
  DDC_COUNTER_INC("engine.snapshot_publications");
  // Workers are quiescent (post-drain): freeze each shard's query state —
  // the per-shard snapshot caches make this cheap for shards that applied
  // nothing since their last freeze — plus this epoch's stitch table and
  // the routing records, and swap the composite in atomically.
  std::vector<std::shared_ptr<const GridSnapshot>> shard_snaps;
  std::vector<FlatHashMap<PointId, PointId>> local_of;
  shard_snaps.reserve(shards_.size());
  local_of.reserve(shards_.size());
  for (auto& shard : shards_) {
    shard_snaps.push_back(std::static_pointer_cast<const GridSnapshot>(
        shard->clusterer->Snapshot()));
    local_of.push_back(shard->local_of);
  }
  std::vector<ShardedSnapshot::GidRec> recs(points_.size());
  for (size_t gid = 0; gid < points_.size(); ++gid) {
    const PointRec& rec = points_[gid];
    recs[gid] = ShardedSnapshot::GidRec{rec.owner, rec.first_holder,
                                        rec.last_holder, rec.alive};
  }
  published_.Store(std::make_shared<const ShardedSnapshot>(
      epoch(), std::move(recs), alive_, std::move(shard_snaps),
      std::move(local_of), stitcher_.table()));
}

std::shared_ptr<const ClusterSnapshot> ShardedClusterer::Snapshot() {
  Flush();
  return published_.Load();
}

void ShardedClusterer::LabelsOf(PointId gid,
                                std::vector<BoundaryStitcher::LabelKey>* out) {
  const PointRec& rec = points_[gid];
  auto push = [&](int t) {
    Shard& s = *shards_[t];
    const PointId* local = s.local_of.Find(gid);
    DDC_CHECK(local != nullptr);
    if (s.clusterer->is_core(*local)) {
      out->push_back(BoundaryStitcher::LabelKey{
          t, s.clusterer->CoreLabelOf(*local)});
    }
  };
  push(rec.owner);  // Owner first; owner-core is the registration invariant.
  for (int t = rec.first_holder; t <= rec.last_holder; ++t) {
    if (t != rec.owner) push(t);
  }
}

ClusterLabel ShardedClusterer::ClusterIdOf(PointId id) {
  Flush();
  return published_.Load()->LabelOf(id);
}

bool ShardedClusterer::SameCluster(PointId a, PointId b) {
  Flush();
  return published_.Load()->SameCluster(a, b);
}

std::vector<PointId> ShardedClusterer::AlivePoints() const {
  std::vector<PointId> ids;
  ids.reserve(alive_);
  for (PointId gid = 0; gid < static_cast<PointId>(points_.size()); ++gid) {
    if (points_[gid].alive) ids.push_back(gid);
  }
  return ids;
}

std::string ShardedClusterer::ShardMetricName(int shard, const char* field) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "engine.shard.%02d.%s", shard, field);
  return std::string(buf);
}

void ShardedClusterer::PublishShardMetrics() {
  Flush();
  MetricsRegistry& registry = MetricsRegistry::Instance();
  auto set = [&](int shard, const char* field, int64_t value) {
    registry.GetOrCreate(ShardMetricName(shard, field), MetricKind::kGauge)
        .Set(value);
  };
  for (const auto& shard : shards_) {
    const int i = shard->index;
    set(i, "worker", shard->worker);
    set(i, "owned", shard->owned_alive);
    set(i, "ghosts", shard->ghost_alive);
    set(i, "core", shard->core_count);
    set(i, "boundary_core", stitcher_.boundary_count(i));
    set(i, "ops_applied", shard->ops_applied);
    set(i, "batches", shard->batches_applied);
    set(i, "busy_us", static_cast<int64_t>(shard->busy_seconds * 1e6));
    set(i, "queue_hwm", shard->queue_hwm);
  }
  DDC_GAUGE_SET("engine.shards", static_cast<int64_t>(shards_.size()));
  DDC_GAUGE_SET("engine.epoch", static_cast<int64_t>(epoch()));
}

}  // namespace ddc
