#include "engine/sharded_clusterer.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ddc {

ShardedClusterer::ShardedClusterer(const DbscanParams& params,
                                   const Options& options)
    : params_(params),
      options_(options),
      map_(options.shards, params.dim, params.eps_outer()),
      stitcher_(params.dim, params.eps) {
  params_.Validate();
  DDC_CHECK(options_.shards >= 1 && options_.shards <= kMaxShards);
  DDC_CHECK(options_.threads >= 0 && options_.threads <= kMaxShards);
  DDC_CHECK(options_.batch >= 1);
  DDC_CHECK(options_.warmup >= 0);
  DDC_CHECK(options_.rebalance.split_imbalance > 1.0);
  DDC_CHECK(options_.rebalance.merge_fill > 0);
  DDC_CHECK(options_.rebalance.epochs >= 1);
  DDC_CHECK(options_.rebalance.cooldown >= 0);
  DDC_CHECK(options_.rebalance.max_shards >= 0 &&
            options_.rebalance.max_shards <= kMaxShards);
  DDC_CHECK(options_.rebalance.min_shards >= 0 &&
            options_.rebalance.min_shards <= kMaxShards);
  if (options_.threads == 0) options_.threads = options_.shards;

  shards_.reserve(options_.shards);
  for (int i = 0; i < options_.shards; ++i) shards_.push_back(MakeShard());
  RenumberShards();
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  StartWatchdog();
}

std::unique_ptr<ShardedClusterer::Shard> ShardedClusterer::MakeShard() {
  auto shard = std::make_unique<Shard>();
  shard->id = next_shard_id_++;
  shard->clusterer =
      std::make_unique<FullyDynamicClusterer>(params_, options_.inner);
  // The observer runs on the shard's worker thread and only touches
  // worker-side state; Flush's drain hands it to the ingest thread.
  Shard* s = shard.get();
  shard->clusterer->set_core_observer([s](PointId local, bool now_core) {
    s->core_count += now_core ? 1 : -1;
    if (s->is_boundary[local]) {
      s->deltas.push_back(CoreDelta{s->global_of[local], now_core,
                                    s->clusterer->grid().point(local)});
    }
  });
  return shard;
}

void ShardedClusterer::RenumberShards() {
  for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
    shards_[i]->index = i;
    shards_[i]->worker = i % options_.threads;
  }
}

void ShardedClusterer::StartWatchdog() {
  watchdog_.reset();
  if (options_.watchdog_deadline_ms <= 0) return;
  // One label per worker naming the shards pinned to it, so a stall report
  // points at the data, not just the thread. Rebuilt after every
  // split/merge — the pinning follows the slab indices.
  const int num_shards = static_cast<int>(shards_.size());
  std::vector<const WorkerHealth*> health;
  std::vector<std::string> labels(options_.threads);
  for (int w = 0; w < options_.threads; ++w) {
    health.push_back(&pool_->health(w));
    std::string shard_list;
    for (int s = w; s < num_shards; s += options_.threads) {
      if (!shard_list.empty()) shard_list += ",";
      shard_list += std::to_string(s);
    }
    labels[w] = "shard=" + shard_list;
  }
  Watchdog::Options wd;
  wd.deadline_ms = options_.watchdog_deadline_ms;
  watchdog_ = std::make_unique<Watchdog>(
      std::move(health), std::move(labels), wd,
      [this](const Watchdog::Stall& stall) {
        std::fprintf(stderr,
                     "[ddc watchdog] worker %d (%s) quiet %.1fs with %lld "
                     "batch(es) queued; %llu tasks done, epoch %" PRIu64 "\n",
                     stall.worker, stall.label.c_str(), stall.quiet_seconds,
                     static_cast<long long>(stall.queue_depth),
                     static_cast<unsigned long long>(stall.tasks_completed),
                     epoch());
      });
}

ShardedClusterer::~ShardedClusterer() {
  // The watchdog reads worker health cells, so it goes first; then stop the
  // workers before any shard state they touch goes away. The pool
  // destructor runs every queued batch first.
  watchdog_.reset();
  pool_.reset();
}

PointId ShardedClusterer::Insert(const Point& p) {
  const PointId gid = static_cast<PointId>(points_.size());
  points_.push_back(PointRec{});
  points_[gid].alive = true;
  ++alive_;

  if (!map_.initialized()) {
    warmup_buffer_.push_back(Op{gid, true, false, 0, p});
    ++warmup_inserts_;
    if (warmup_inserts_ >= options_.warmup) FinishWarmup();
    return gid;
  }
  RouteInsert(gid, p);
  return gid;
}

void ShardedClusterer::Delete(PointId id) {
  DDC_CHECK(id >= 0 && id < static_cast<PointId>(points_.size()) &&
            points_[id].alive);
  points_[id].alive = false;
  --alive_;

  if (!map_.initialized()) {
    warmup_buffer_.push_back(Op{id, false, false, 0, Point{}});
    return;
  }
  RouteDelete(id);
}

void ShardedClusterer::RouteInsert(PointId gid, const Point& p) {
  PointRec& rec = points_[gid];
  const int owner = map_.OwnerOf(p);
  const ShardMap::Range holders = map_.HoldersOf(p);
  DDC_DCHECK(holders.first <= owner && owner <= holders.last);
  rec.owner = static_cast<uint8_t>(owner);
  rec.first_holder = static_cast<uint8_t>(holders.first);
  rec.last_holder = static_cast<uint8_t>(holders.last);

  Op op;
  op.gid = gid;
  op.is_insert = true;
  op.boundary = map_.NearBoundary(p, owner);
  op.owner = static_cast<uint8_t>(owner);
  op.point = p;
  for (int t = holders.first; t <= holders.last; ++t) {
    EnqueueOp(*shards_[t], op);
  }
}

void ShardedClusterer::RouteDelete(PointId gid) {
  const PointRec& rec = points_[gid];
  Op op;
  op.gid = gid;
  op.is_insert = false;
  op.boundary = false;
  op.owner = rec.owner;
  for (int t = rec.first_holder; t <= rec.last_holder; ++t) {
    EnqueueOp(*shards_[t], op);
  }
}

void ShardedClusterer::EnqueueOp(Shard& shard, const Op& op) {
  shard.open.push_back(op);
  if (static_cast<int>(shard.open.size()) >= options_.batch) {
    PublishShard(shard);
  }
}

void ShardedClusterer::PublishShard(Shard& shard) {
  if (shard.open.empty()) return;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.pending.push_back(std::move(shard.open));
    const int64_t depth = static_cast<int64_t>(shard.pending.size());
    if (depth > shard.queue_hwm) shard.queue_hwm = depth;
  }
  shard.open.clear();
  pool_->Submit(shard.worker, [this, s = &shard] { ProcessShard(s); });
}

void ShardedClusterer::ProcessShard(Shard* shard) {
  // One task is submitted per published batch, so normally this pops exactly
  // one; the loop also mops up if a prior task consumed several.
  for (;;) {
    std::vector<Op> batch;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (shard->pending.empty()) return;
      batch = std::move(shard->pending.front());
      shard->pending.erase(shard->pending.begin());
    }
    DDC_TRACE_SPAN("engine.shard_batch");
    const auto t0 = std::chrono::steady_clock::now();
    for (const Op& op : batch) ApplyOp(*shard, op);
    const double batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    shard->busy_seconds += batch_seconds;
    DDC_HISTOGRAM_RECORD("engine.shard_batch", batch_seconds * 1e6);
    shard->ops_applied += static_cast<int64_t>(batch.size());
    ++shard->batches_applied;
    shard->dirty = true;
  }
}

void ShardedClusterer::ApplyOp(Shard& shard, const Op& op) {
  if (op.is_insert) {
    const bool owned = static_cast<int>(op.owner) == shard.index;
    // The local id the grid will assign; registered before Insert so the
    // core observer can translate it the moment the new point promotes.
    const PointId local =
        static_cast<PointId>(shard.clusterer->grid().total_inserted());
    shard.global_of.push_back(op.gid);
    shard.is_owned.push_back(owned ? 1 : 0);
    shard.is_boundary.push_back(owned && op.boundary ? 1 : 0);
    const PointId got = shard.clusterer->Insert(op.point);
    DDC_CHECK(got == local);
    shard.local_of[op.gid] = local;
    (owned ? shard.owned_alive : shard.ghost_alive) += 1;
    return;
  }
  PointId* local = shard.local_of.Find(op.gid);
  DDC_CHECK(local != nullptr);
  (shard.is_owned[*local] ? shard.owned_alive : shard.ghost_alive) -= 1;
  shard.clusterer->Delete(*local);
  shard.local_of.Erase(op.gid);
}

void ShardedClusterer::FinishWarmup() {
  DDC_TRACE_SPAN("engine.warmup_replay");
  std::vector<Point> sample;
  sample.reserve(warmup_buffer_.size());
  for (const Op& op : warmup_buffer_) {
    if (op.is_insert) sample.push_back(op.point);
  }
  map_.InitFromSample(sample);

  // Replay the buffered prefix verbatim — same op order the caller issued,
  // so shards=1 reproduces the unsharded engine's history exactly.
  std::vector<Op> buffered;
  buffered.swap(warmup_buffer_);
  for (const Op& op : buffered) {
    if (op.is_insert) {
      RouteInsert(op.gid, op.point);
    } else {
      RouteDelete(op.gid);
    }
  }
}

void ShardedClusterer::Flush() {
  DDC_TRACE_SPAN("engine.flush");
  if (!map_.initialized()) FinishWarmup();
  for (auto& shard : shards_) PublishShard(*shard);
  pool_->Drain();

  // Workers are quiescent: fold their boundary transitions into the stitch
  // registry (per-shard order preserved; cross-shard order is irrelevant —
  // adds probe the current registry and removes purge their own edges).
  bool dirty = false;
  for (auto& shard : shards_) {
    for (const CoreDelta& d : shard->deltas) {
      if (d.now_core) {
        stitcher_.AddCore(shard->index, d.gid, d.point);
      } else {
        stitcher_.RemoveCore(d.gid);
      }
    }
    shard->deltas.clear();
    if (shard->dirty) {
      dirty = true;
      shard->dirty = false;
    }
  }
  if (dirty) {
    RebuildLabels();
    // The rebalance controller acts between the label rebuild and snapshot
    // publication: a topology change replays its migrants, resets the
    // stitcher, and gets a second rebuild, so the snapshot below is always
    // one consistent epoch — readers never see a torn routing map.
    if (MaybeRebalance()) RebuildLabels();
  }
  if (dirty || published_.Load() == nullptr) {
    PublishSnapshot();
  }
}

void ShardedClusterer::RebuildLabels() {
  // Shard-local component labels are stable only between updates, so any
  // applied batch invalidates the previous epoch's label table. The new
  // table goes into a fresh object — snapshots of older epochs keep
  // resolving against theirs.
  DDC_TRACE_SPAN("engine.stitch_rebuild");
  DDC_COUNTER_INC("engine.stitch_rebuilds");
  stitcher_.Rebuild(
      [this](PointId gid, std::vector<BoundaryStitcher::LabelKey>* out) {
        LabelsOf(gid, out);
      });
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// Elastic rebalancing. Everything below runs on the ingest thread with the
// workers quiescent (called from Flush, after the drain barrier).

bool ShardedClusterer::MaybeRebalance() {
  const RebalanceOptions& rb = options_.rebalance;
  const int num_shards = static_cast<int>(shards_.size());

  int64_t max_owned = -1;
  int hot = 0;
  for (int i = 0; i < num_shards; ++i) {
    if (shards_[i]->owned_alive > max_owned) {
      max_owned = shards_[i]->owned_alive;
      hot = i;
    }
  }
  const double mean =
      static_cast<double>(alive_) / static_cast<double>(num_shards);
  const double imbalance =
      mean > 0 ? static_cast<double>(max_owned) / mean : 1.0;
  last_imbalance_milli_ = std::llround(imbalance * 1000.0);
  DDC_GAUGE_SET("engine.shard_imbalance", last_imbalance_milli_);

  if (!rb.enabled || !map_.initialized()) return false;
  if (alive_ < rb.min_points) {
    split_streak_ = merge_streak_ = 0;
    return false;
  }

  const int max_shards =
      rb.max_shards > 0 ? std::min(rb.max_shards, kMaxShards)
                        : std::min(2 * options_.shards, kMaxShards);
  const int min_shards = std::max(1, rb.min_shards);

  // Coldest adjacent pair (merge candidate).
  int cold = -1;
  int64_t cold_sum = 0;
  for (int i = 0; i + 1 < num_shards; ++i) {
    const int64_t sum =
        shards_[i]->owned_alive + shards_[i + 1]->owned_alive;
    if (cold < 0 || sum < cold_sum) {
      cold = i;
      cold_sum = sum;
    }
  }

  split_streak_ = imbalance > rb.split_imbalance ? split_streak_ + 1 : 0;
  const bool merge_wanted = num_shards > min_shards && cold >= 0 &&
                            static_cast<double>(cold_sum) <
                                rb.merge_fill * mean;
  merge_streak_ = merge_wanted ? merge_streak_ + 1 : 0;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return false;
  }

  if (split_streak_ >= rb.epochs) {
    // The merge that stands in for an impossible split: the coldest
    // adjacent pair that excludes the hot shard and stays strictly below
    // it — then the max is unchanged while the mean rises, so max/mean
    // strictly decreases. This is the only lever left when the hot slab
    // cannot be cut: at the shard budget, at the 2·halo floor width, or
    // holding one tight blob the admissible band cannot separate.
    const auto merge_for_headroom = [&]() -> bool {
      int best = -1;
      int64_t best_sum = 0;
      for (int i = 0; i + 1 < num_shards; ++i) {
        if (i == hot || i + 1 == hot) continue;
        const int64_t sum =
            shards_[i]->owned_alive + shards_[i + 1]->owned_alive;
        if (best < 0 || sum < best_sum) {
          best = i;
          best_sum = sum;
        }
      }
      return best >= 0 && num_shards > min_shards && best_sum < max_owned &&
             MergeShards(best);
    };
    if (num_shards < max_shards && SplitShard(hot)) {
      split_streak_ = merge_streak_ = 0;
      cooldown_left_ = rb.cooldown;
      return true;
    }
    if (merge_for_headroom()) {
      split_streak_ = merge_streak_ = 0;
      cooldown_left_ = rb.cooldown;
      return true;
    }
    // Fall through to the ordinary merge branch; a cold-enough pair next
    // to the hot shard may still be mergeable even when the headroom
    // merge is not.
    split_streak_ = 0;
  }

  if (merge_streak_ >= rb.epochs) {
    if (MergeShards(cold)) {
      split_streak_ = merge_streak_ = 0;
      cooldown_left_ = rb.cooldown;
      return true;
    }
    merge_streak_ = 0;
  }
  return false;
}

std::vector<ShardedClusterer::Migrant> ShardedClusterer::CollectLive(
    const Shard& shard) const {
  std::vector<Migrant> out;
  out.reserve(shard.local_of.size());
  // Walk local ids in order (not the hash map) so the replay order — and
  // with it every don't-care decision downstream — is deterministic.
  const PointId n = static_cast<PointId>(shard.global_of.size());
  for (PointId local = 0; local < n; ++local) {
    const PointId gid = shard.global_of[local];
    const PointId* cur = shard.local_of.Find(gid);
    if (cur == nullptr || *cur != local) continue;  // Deleted.
    out.push_back(Migrant{gid, shard.clusterer->grid().point(local)});
  }
  return out;
}

bool ShardedClusterer::ChooseSplitCut(const Shard& shard, double* cut) const {
  std::vector<double> xs;
  xs.reserve(static_cast<size_t>(std::max<int64_t>(shard.owned_alive, 0)));
  const int d = map_.split_dim();
  const PointId n = static_cast<PointId>(shard.global_of.size());
  for (PointId local = 0; local < n; ++local) {
    if (!shard.is_owned[local]) continue;
    const PointId* cur = shard.local_of.Find(shard.global_of[local]);
    if (cur == nullptr || *cur != local) continue;
    xs.push_back(shard.clusterer->grid().point(local)[d]);
  }
  if (xs.size() < 4) return false;

  const size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double c = xs[mid];
  // Clamp into the slab's admissible band: both children must keep the
  // 2·halo minimum width (infinite end sides constrain nothing).
  const double margin = 2 * map_.halo();
  const double lo = map_.slab_lo(shard.index);
  const double hi = map_.slab_hi(shard.index);
  if (std::isfinite(lo)) c = std::max(c, lo + margin);
  if (std::isfinite(hi)) c = std::min(c, hi - margin);
  if (!map_.CanSplitAt(shard.index, c)) return false;

  // A useless cut (nearly everything on one side after clamping) would
  // leave the child immediately hot again; wait instead.
  int64_t below = 0;
  for (const double x : xs) below += x < c ? 1 : 0;
  const int64_t above = static_cast<int64_t>(xs.size()) - below;
  const int64_t min_side =
      std::max<int64_t>(1, static_cast<int64_t>(xs.size()) / 16);
  if (below < min_side || above < min_side) return false;

  *cut = c;
  return true;
}

void ShardedClusterer::ApplyMigration(Shard& shard, PointId gid,
                                      const Point& p) {
  const PointRec& rec = points_[gid];
  Op op;
  op.gid = gid;
  op.is_insert = true;
  op.boundary = map_.NearBoundary(p, rec.owner);
  op.owner = rec.owner;
  op.point = p;
  ApplyOp(shard, op);
}

void ShardedClusterer::ReRoutePoints(
    int pos, int replaced, int delta, const std::vector<Migrant>& migrants,
    const FlatHashMap<PointId, int32_t>& migrant_of) {
  // A point held by any replaced shard is re-routed from its coordinates
  // against the new map; every other live point only index-shifts. Soundness
  // of the shift: slab geometry outside the replaced range is unchanged, so
  // owner/holder sets are the old ones with indices above the range moved
  // by `delta` — and a holder interval never straddles the replaced range
  // without touching it (holder ranges are contiguous).
  const int last_replaced = pos + replaced - 1;
  for (PointId gid = 0; gid < static_cast<PointId>(points_.size()); ++gid) {
    PointRec& rec = points_[gid];
    if (!rec.alive) continue;
    if (rec.first_holder <= last_replaced && pos <= rec.last_holder) {
      const int32_t* mi = migrant_of.Find(gid);
      DDC_CHECK(mi != nullptr);
      const Point& p = migrants[*mi].point;
      const int owner = map_.OwnerOf(p);
      const ShardMap::Range holders = map_.HoldersOf(p);
      DDC_DCHECK(holders.first <= owner && owner <= holders.last);
      rec.owner = static_cast<uint8_t>(owner);
      rec.first_holder = static_cast<uint8_t>(holders.first);
      rec.last_holder = static_cast<uint8_t>(holders.last);
    } else {
      if (rec.owner > last_replaced) {
        rec.owner = static_cast<uint8_t>(static_cast<int>(rec.owner) + delta);
      }
      if (rec.first_holder > last_replaced) {
        rec.first_holder =
            static_cast<uint8_t>(static_cast<int>(rec.first_holder) + delta);
      }
      if (rec.last_holder > last_replaced) {
        rec.last_holder =
            static_cast<uint8_t>(static_cast<int>(rec.last_holder) + delta);
      }
    }
  }
}

bool ShardedClusterer::SplitShard(int hot) {
  if (static_cast<int>(shards_.size()) >= kMaxShards) return false;
  double cut = 0;
  if (!ChooseSplitCut(*shards_[hot], &cut)) return false;

  DDC_TRACE_SPAN("engine.rebalance.split");
  DDC_HISTOGRAM_SCOPED("engine.rebalance.split");
  // Freeze the hot shard: its live points (owned and ghost alike) are
  // exactly the union of what the two children must hold, because any point
  // within halo of either child's slab was within halo of the parent slab.
  const std::vector<Migrant> migrants = CollectLive(*shards_[hot]);
  FlatHashMap<PointId, int32_t> migrant_of;
  for (size_t i = 0; i < migrants.size(); ++i) {
    migrant_of[migrants[i].gid] = static_cast<int32_t>(i);
  }

  map_.SplitSlab(hot, cut);
  retired_shard_ids_.push_back(shards_[hot]->id);
  shards_[hot] = MakeShard();
  shards_.insert(shards_.begin() + hot + 1, MakeShard());
  RenumberShards();
  ReRoutePoints(hot, /*replaced=*/1, /*delta=*/+1, migrants, migrant_of);

  // Replay into the children in frozen order; the workers are idle, so this
  // applies synchronously and deterministically.
  int64_t moved = 0;
  for (const Migrant& m : migrants) {
    const PointRec& rec = points_[m.gid];
    const int first = std::max<int>(rec.first_holder, hot);
    const int last = std::min<int>(rec.last_holder, hot + 1);
    DDC_DCHECK(first <= last);
    for (int t = first; t <= last; ++t) {
      ApplyMigration(*shards_[t], m.gid, m.point);
      ++moved;
    }
  }
  DDC_COUNTER_ADD("engine.rebalance.points_migrated", moved);
  DDC_COUNTER_INC("engine.rebalance.splits");
  ++splits_;
  ResetStitcher();
  StartWatchdog();
  return true;
}

bool ShardedClusterer::MergeShards(int left) {
  DDC_CHECK(left >= 0 && left + 1 < static_cast<int>(shards_.size()));

  DDC_TRACE_SPAN("engine.rebalance.merge");
  DDC_HISTOGRAM_SCOPED("engine.rebalance.merge");
  // The merged shard must hold exactly the union of the pair's live points:
  // a point within halo of the merged slab is within halo of one of the old
  // slabs. Points held by both are replayed once.
  std::vector<Migrant> migrants = CollectLive(*shards_[left]);
  FlatHashMap<PointId, int32_t> migrant_of;
  for (size_t i = 0; i < migrants.size(); ++i) {
    migrant_of[migrants[i].gid] = static_cast<int32_t>(i);
  }
  for (const Migrant& m : CollectLive(*shards_[left + 1])) {
    if (migrant_of.Find(m.gid) == nullptr) {
      migrant_of[m.gid] = static_cast<int32_t>(migrants.size());
      migrants.push_back(m);
    }
  }

  map_.MergeSlabs(left);
  retired_shard_ids_.push_back(shards_[left]->id);
  retired_shard_ids_.push_back(shards_[left + 1]->id);
  shards_[left] = MakeShard();
  shards_.erase(shards_.begin() + left + 1);
  RenumberShards();
  ReRoutePoints(left, /*replaced=*/2, /*delta=*/-1, migrants, migrant_of);

  int64_t moved = 0;
  for (const Migrant& m : migrants) {
    const PointRec& rec = points_[m.gid];
    DDC_DCHECK(rec.first_holder <= left && left <= rec.last_holder);
    ApplyMigration(*shards_[left], m.gid, m.point);
    ++moved;
  }
  DDC_COUNTER_ADD("engine.rebalance.points_migrated", moved);
  DDC_COUNTER_INC("engine.rebalance.merges");
  ++merges_;
  ResetStitcher();
  StartWatchdog();
  return true;
}

void ShardedClusterer::ResetStitcher() {
  // The boundary registry is keyed by slab index and edge geometry, both of
  // which just changed; rebuild it from scratch in deterministic
  // (shard, local id) order. is_boundary flags are refreshed against the
  // new map along the way (a no-op for shards whose own edges did not
  // move, but the registry must match the flags exactly either way).
  stitcher_ = BoundaryStitcher(params_.dim, params_.eps);
  for (auto& shard : shards_) {
    shard->deltas.clear();  // Migration-time observer records; superseded.
    const PointId n = static_cast<PointId>(shard->global_of.size());
    for (PointId local = 0; local < n; ++local) {
      const PointId gid = shard->global_of[local];
      const PointId* cur = shard->local_of.Find(gid);
      if (cur == nullptr || *cur != local) continue;
      if (!shard->is_owned[local]) continue;
      const Point& p = shard->clusterer->grid().point(local);
      const bool boundary = map_.NearBoundary(p, shard->index);
      shard->is_boundary[local] = boundary ? 1 : 0;
      if (boundary && shard->clusterer->is_core(local)) {
        stitcher_.AddCore(shard->index, gid, p);
      }
    }
  }
}

// --------------------------------------------------------------------------

void ShardedClusterer::PublishSnapshot() {
  DDC_TRACE_SPAN("engine.publish_snapshot");
  DDC_HISTOGRAM_SCOPED("engine.snapshot_publish");
  DDC_COUNTER_INC("engine.snapshot_publications");
  // Workers are quiescent (post-drain): freeze each shard's query state —
  // the per-shard snapshot caches make this cheap for shards that applied
  // nothing since their last freeze — plus this epoch's stitch table and
  // the routing records, and swap the composite in atomically.
  std::vector<std::shared_ptr<const GridSnapshot>> shard_snaps;
  std::vector<FlatHashMap<PointId, PointId>> local_of;
  shard_snaps.reserve(shards_.size());
  local_of.reserve(shards_.size());
  for (auto& shard : shards_) {
    shard_snaps.push_back(std::static_pointer_cast<const GridSnapshot>(
        shard->clusterer->Snapshot()));
    local_of.push_back(shard->local_of);
  }
  std::vector<ShardedSnapshot::GidRec> recs(points_.size());
  for (size_t gid = 0; gid < points_.size(); ++gid) {
    const PointRec& rec = points_[gid];
    recs[gid] = ShardedSnapshot::GidRec{rec.owner, rec.first_holder,
                                        rec.last_holder, rec.alive};
  }
  published_.Store(std::make_shared<const ShardedSnapshot>(
      epoch(), std::move(recs), alive_, std::move(shard_snaps),
      std::move(local_of), stitcher_.table()));
}

std::shared_ptr<const ClusterSnapshot> ShardedClusterer::Snapshot() {
  Flush();
  return published_.Load();
}

void ShardedClusterer::LabelsOf(PointId gid,
                                std::vector<BoundaryStitcher::LabelKey>* out) {
  const PointRec& rec = points_[gid];
  auto push = [&](int t) {
    Shard& s = *shards_[t];
    const PointId* local = s.local_of.Find(gid);
    DDC_CHECK(local != nullptr);
    if (s.clusterer->is_core(*local)) {
      out->push_back(BoundaryStitcher::LabelKey{
          t, s.clusterer->CoreLabelOf(*local)});
    }
  };
  push(rec.owner);  // Owner first; owner-core is the registration invariant.
  for (int t = rec.first_holder; t <= rec.last_holder; ++t) {
    if (t != rec.owner) push(t);
  }
}

ClusterLabel ShardedClusterer::ClusterIdOf(PointId id) {
  Flush();
  return published_.Load()->LabelOf(id);
}

bool ShardedClusterer::SameCluster(PointId a, PointId b) {
  Flush();
  return published_.Load()->SameCluster(a, b);
}

std::vector<PointId> ShardedClusterer::AlivePoints() const {
  std::vector<PointId> ids;
  ids.reserve(alive_);
  for (PointId gid = 0; gid < static_cast<PointId>(points_.size()); ++gid) {
    if (points_[gid].alive) ids.push_back(gid);
  }
  return ids;
}

std::string ShardedClusterer::ShardMetricName(int shard_id,
                                              const char* field) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "engine.shard.%02d.%s", shard_id, field);
  return std::string(buf);
}

void ShardedClusterer::PublishShardMetrics() {
  Flush();
  MetricsRegistry& registry = MetricsRegistry::Instance();
  static constexpr const char* kShardFields[] = {
      "worker", "slab",    "owned",       "ghosts",  "core",
      "boundary_core", "ops_applied", "batches", "busy_us", "queue_hwm"};
  auto set = [&](int id, const char* field, int64_t value) {
    registry.GetOrCreate(ShardMetricName(id, field), MetricKind::kGauge)
        .Set(value);
  };
  // A shard retired by a split/merge would otherwise keep reporting its
  // last gauge values forever; zero the whole retired set first. Live
  // shards are keyed by stable id, so an id never changes meaning.
  for (const int id : retired_shard_ids_) {
    for (const char* field : kShardFields) set(id, field, 0);
  }
  retired_shard_ids_.clear();
  for (const auto& shard : shards_) {
    const int id = shard->id;
    set(id, "worker", shard->worker);
    set(id, "slab", shard->index);
    set(id, "owned", shard->owned_alive);
    set(id, "ghosts", shard->ghost_alive);
    set(id, "core", shard->core_count);
    set(id, "boundary_core", stitcher_.boundary_count(shard->index));
    set(id, "ops_applied", shard->ops_applied);
    set(id, "batches", shard->batches_applied);
    set(id, "busy_us", static_cast<int64_t>(shard->busy_seconds * 1e6));
    set(id, "queue_hwm", shard->queue_hwm);
  }
  DDC_GAUGE_SET("engine.shards", static_cast<int64_t>(shards_.size()));
  DDC_GAUGE_SET("engine.epoch", static_cast<int64_t>(epoch()));
  DDC_GAUGE_SET("engine.shard_imbalance", last_imbalance_milli_);
}

}  // namespace ddc
