#ifndef DDC_ENGINE_STITCH_H_
#define DDC_ENGINE_STITCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "geom/point.h"
#include "grid/cell_key.h"
#include "unionfind/union_find.h"

namespace ddc {

/// Identity of a cluster in the sharded engine. Shard-local component
/// labels that participate in cross-shard stitching are canonicalized to a
/// stitched root (shard == kStitchedShard); labels untouched by the stitch
/// keep their (shard, local cc) identity. Two labels compare equal iff they
/// name the same global cluster at the epoch they were resolved in.
struct ClusterLabel {
  /// kStitchedShard for stitched roots, kNoClusterShard for "no cluster",
  /// else the owning shard of a purely shard-local component.
  int32_t shard = -2;
  uint64_t id = 0;

  static constexpr int32_t kStitchedShard = -1;
  static constexpr int32_t kNoClusterShard = -2;

  bool valid() const { return shard != kNoClusterShard; }

  friend bool operator==(const ClusterLabel& a, const ClusterLabel& b) {
    return a.shard == b.shard && a.id == b.id;
  }
  friend bool operator!=(const ClusterLabel& a, const ClusterLabel& b) {
    return !(a == b);
  }
  friend bool operator<(const ClusterLabel& a, const ClusterLabel& b) {
    return a.shard != b.shard ? a.shard < b.shard : a.id < b.id;
  }
};

/// The "no cluster" sentinel (noise / dead point).
inline constexpr ClusterLabel kNoCluster{ClusterLabel::kNoClusterShard, 0};

/// Cross-shard cluster stitching (the engine's GUM complement): maintains
/// the set of *boundary core points* — points that are core in their owner
/// shard and replicated into at least one neighbor — plus the cross-shard
/// core-core edges among them (pairs owned by different shards within ε),
/// and, per epoch, a union-find over shard-local component labels that
/// merges components spanning a shard boundary.
///
/// The point/edge set is updated incrementally from per-shard core-status
/// deltas (AddCore/RemoveCore); the label table is rebuilt by Rebuild once
/// the shards are quiescent, because shard-local component ids are only
/// stable between updates. Two union rules, both sound for the Theorem 3
/// sandwich:
///   * edge rule — both endpoints are owner-core, hence core at radius
///     (1+ρ)ε, and within ε of each other: their clusters coincide in the
///     (1+ρ)ε oracle;
///   * same-point rule — every shard where a boundary point is locally core
///     places its whole local component inside that point's (1+ρ)ε-oracle
///     cluster, so those labels may be identified.
/// Completeness (every exact-ε cross-shard connection is stitched) follows
/// from the halo: two exactly-core points within ε and owned by different
/// shards are both within the halo of the boundary between them, are core
/// in their owner shards (which see their full ε-balls), and so appear here
/// with an edge.
class BoundaryStitcher {
 public:
  /// `eps` is the stitch edge threshold (the inner radius ε — exact-DBSCAN
  /// connectivity must be preserved verbatim at rho == 0).
  BoundaryStitcher(int dim, double eps);

  /// Registers boundary core point `gid`, owned by `shard`, at `p`, and
  /// discovers its cross-shard edges. Strict transition discipline: `gid`
  /// must not be registered.
  void AddCore(int shard, PointId gid, const Point& p);

  /// Unregisters `gid` (owner demoted or deleted it) and drops its edges.
  void RemoveCore(PointId gid);

  bool Contains(PointId gid) const { return points_.Find(gid) != nullptr; }
  int64_t num_points() const { return static_cast<int64_t>(points_.size()); }
  int64_t num_edges() const { return num_edges_; }
  /// Registered boundary core points owned by `shard` (telemetry).
  int64_t boundary_count(int shard) const {
    return shard < static_cast<int>(per_shard_points_.size())
               ? per_shard_points_[shard]
               : 0;
  }

  /// A shard-local component label: `cc` as reported by shard `shard`'s
  /// connectivity structure at the current epoch.
  struct LabelKey {
    int32_t shard = 0;
    uint64_t cc = 0;

    friend bool operator==(const LabelKey& a, const LabelKey& b) {
      return a.shard == b.shard && a.cc == b.cc;
    }
  };

  struct LabelKeyHash {
    size_t operator()(const LabelKey& k) const {
      // splitmix-style mix of both fields; shard in the high bits.
      uint64_t z = (static_cast<uint64_t>(static_cast<uint32_t>(k.shard))
                    << 32) ^
                   (k.cc * 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };

  /// The frozen outcome of one Rebuild: (shard, cc) -> union-find index and
  /// the resolved root per index. Immutable once built, shared by reference
  /// with published cluster snapshots, so readers resolve labels of *their*
  /// epoch no matter how many rebuilds happen afterwards.
  class LabelTable {
   public:
    /// Canonical label for shard-local component `cc` of `shard`: a
    /// stitched root when the component crosses a boundary, else the
    /// (shard, cc) identity itself. Thread-safe (pure lookup).
    ClusterLabel Resolve(int32_t shard, uint64_t cc) const {
      const int32_t* idx = index_.Find(LabelKey{shard, cc});
      if (idx == nullptr) return ClusterLabel{shard, cc};
      return ClusterLabel{ClusterLabel::kStitchedShard,
                          static_cast<uint64_t>(root_[*idx])};
    }

   private:
    friend class BoundaryStitcher;
    /// Snapshot persistence (persist/snapshot_io.cc) serializes the frozen
    /// table and rebuilds it entry for entry.
    friend class SnapshotIO;
    FlatHashMap<LabelKey, int32_t, LabelKeyHash> index_;
    std::vector<int32_t> root_;
  };

  /// Rebuilds the label union-find for the current epoch into a fresh
  /// LabelTable (the previous table object is left untouched for snapshots
  /// still holding it). For every registered point, `labels_of(gid, &keys)`
  /// must append one LabelKey per shard where the point is *currently
  /// locally core* — owner first (owner-core is an invariant of
  /// registration). All of a point's keys are unioned together (same-point
  /// rule), and every cross-shard edge unions its endpoints' owner keys
  /// (edge rule).
  void Rebuild(
      const std::function<void(PointId, std::vector<LabelKey>*)>& labels_of);

  /// Canonical label for shard-local component `cc` of `shard`, as of the
  /// last Rebuild (identity before the first one).
  ClusterLabel Resolve(int32_t shard, uint64_t cc) const {
    return table_->Resolve(shard, cc);
  }

  /// The frozen label table of the last Rebuild; never null.
  std::shared_ptr<const LabelTable> table() const { return table_; }

 private:
  struct PointRec {
    int32_t shard;
    Point point;
    std::vector<PointId> edges;  // Cross-shard partners within eps.
  };

  static int32_t InternKey(LabelTable& table, UnionFind& uf,
                           const LabelKey& key);

  int dim_;
  double eps_;
  double eps_sq_;
  FlatHashMap<PointId, PointRec> points_;
  /// Spatial hash over the registered points, cell side eps: edge discovery
  /// probes the 3^dim surrounding cells.
  FlatHashMap<CellKey, std::vector<PointId>, CellKeyHash> cells_;
  int64_t num_edges_ = 0;
  std::vector<int64_t> per_shard_points_;  // Registered points per shard.

  std::shared_ptr<const LabelTable> table_;
};

}  // namespace ddc

#endif  // DDC_ENGINE_STITCH_H_
