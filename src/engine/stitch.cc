#include "engine/stitch.h"

#include <utility>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace ddc {

BoundaryStitcher::BoundaryStitcher(int dim, double eps)
    : dim_(dim),
      eps_(eps),
      eps_sq_(eps * eps),
      table_(std::make_shared<LabelTable>()) {
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(eps > 0);
}

void BoundaryStitcher::AddCore(int shard, PointId gid, const Point& p) {
  auto [rec, inserted] = points_.Emplace(gid);
  DDC_CHECK(inserted && "AddCore of an already-registered point");
  rec->shard = shard;
  rec->point = p;
  if (shard >= static_cast<int>(per_shard_points_.size())) {
    per_shard_points_.resize(shard + 1, 0);
  }
  ++per_shard_points_[shard];

  // Probe the 3^dim cells around p for cross-shard partners within eps.
  // The hash cell side is eps, so any point within eps lies in one of them.
  const CellKey home = CellKey::Of(p, dim_, eps_);
  CellKey probe = home;
  int offset[kMaxDim] = {};
  for (int i = 0; i < dim_; ++i) {
    offset[i] = -1;
    probe[i] = home[i] - 1;
  }
  for (;;) {
    if (const std::vector<PointId>* bucket = cells_.Find(probe)) {
      for (const PointId other : *bucket) {
        PointRec* orec = points_.Find(other);
        if (orec->shard == shard) continue;
        if (!WithinSquared(p, orec->point, dim_, eps_sq_)) continue;
        orec->edges.push_back(gid);
        rec->edges.push_back(other);
        ++num_edges_;
      }
    }
    // Odometer over {-1, 0, 1}^dim.
    int i = 0;
    while (i < dim_ && offset[i] == 1) {
      offset[i] = -1;
      probe[i] = home[i] - 1;
      ++i;
    }
    if (i == dim_) break;
    ++offset[i];
    probe[i] = home[i] + offset[i];
  }

  cells_[home].push_back(gid);
}

void BoundaryStitcher::RemoveCore(PointId gid) {
  PointRec* rec = points_.Find(gid);
  DDC_CHECK(rec != nullptr && "RemoveCore of an unregistered point");

  for (const PointId partner : rec->edges) {
    std::vector<PointId>& back = points_.Find(partner)->edges;
    for (size_t i = 0; i < back.size(); ++i) {
      if (back[i] == gid) {
        back[i] = back.back();
        back.pop_back();
        break;
      }
    }
    --num_edges_;
  }

  const CellKey home = CellKey::Of(rec->point, dim_, eps_);
  std::vector<PointId>& bucket = *cells_.Find(home);
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == gid) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      break;
    }
  }
  if (bucket.empty()) cells_.Erase(home);

  --per_shard_points_[rec->shard];
  points_.Erase(gid);
}

int32_t BoundaryStitcher::InternKey(LabelTable& table, UnionFind& uf,
                                    const LabelKey& key) {
  auto [idx, inserted] =
      table.index_.Emplace(key, static_cast<int32_t>(table.index_.size()));
  if (inserted) uf.EnsureSize(*idx + 1);
  return *idx;
}

void BoundaryStitcher::Rebuild(
    const std::function<void(PointId, std::vector<LabelKey>*)>& labels_of) {
  DDC_HISTOGRAM_SCOPED("engine.stitch_rebuild");
  // A fresh table per epoch: snapshots holding the previous one keep
  // resolving against their own frozen epoch.
  auto table = std::make_shared<LabelTable>();
  UnionFind uf;

  // Pass 1: same-point rule. Every shard where a registered point is
  // locally core contributes a key; all of one point's keys collapse.
  // Remember each point's owner key index for the edge pass.
  FlatHashMap<PointId, int32_t> owner_key;
  std::vector<LabelKey> keys;
  points_.ForEach([&](const PointId& gid, const PointRec& rec) {
    keys.clear();
    labels_of(gid, &keys);
    // Registered points are core in their owner shard by construction, and
    // labels_of lists the owner first.
    DDC_CHECK(!keys.empty() && keys[0].shard == rec.shard);
    const int32_t first = InternKey(*table, uf, keys[0]);
    owner_key[gid] = first;
    for (size_t i = 1; i < keys.size(); ++i) {
      uf.Union(first, InternKey(*table, uf, keys[i]));
    }
  });

  // Pass 2: edge rule. Each cross-shard core-core pair identifies its
  // endpoints' owner components. Edges appear in both adjacency lists;
  // process each once.
  points_.ForEach([&](const PointId& gid, const PointRec& rec) {
    for (const PointId partner : rec.edges) {
      if (partner < gid) continue;
      uf.Union(*owner_key.Find(gid), *owner_key.Find(partner));
    }
  });

  table->root_.resize(table->index_.size());
  for (int32_t i = 0; i < static_cast<int32_t>(table->root_.size()); ++i) {
    table->root_[i] = uf.Find(i);
  }
  table_ = std::move(table);
}

}  // namespace ddc
