#include "engine/stitch.h"

#include <utility>

#include "common/check.h"

namespace ddc {

BoundaryStitcher::BoundaryStitcher(int dim, double eps)
    : dim_(dim), eps_(eps), eps_sq_(eps * eps) {
  DDC_CHECK(dim >= 1 && dim <= kMaxDim);
  DDC_CHECK(eps > 0);
}

void BoundaryStitcher::AddCore(int shard, PointId gid, const Point& p) {
  auto [rec, inserted] = points_.Emplace(gid);
  DDC_CHECK(inserted && "AddCore of an already-registered point");
  rec->shard = shard;
  rec->point = p;
  if (shard >= static_cast<int>(per_shard_points_.size())) {
    per_shard_points_.resize(shard + 1, 0);
  }
  ++per_shard_points_[shard];

  // Probe the 3^dim cells around p for cross-shard partners within eps.
  // The hash cell side is eps, so any point within eps lies in one of them.
  const CellKey home = CellKey::Of(p, dim_, eps_);
  CellKey probe = home;
  int offset[kMaxDim] = {};
  for (int i = 0; i < dim_; ++i) {
    offset[i] = -1;
    probe[i] = home[i] - 1;
  }
  for (;;) {
    if (const std::vector<PointId>* bucket = cells_.Find(probe)) {
      for (const PointId other : *bucket) {
        PointRec* orec = points_.Find(other);
        if (orec->shard == shard) continue;
        if (!WithinSquared(p, orec->point, dim_, eps_sq_)) continue;
        orec->edges.push_back(gid);
        rec->edges.push_back(other);
        ++num_edges_;
      }
    }
    // Odometer over {-1, 0, 1}^dim.
    int i = 0;
    while (i < dim_ && offset[i] == 1) {
      offset[i] = -1;
      probe[i] = home[i] - 1;
      ++i;
    }
    if (i == dim_) break;
    ++offset[i];
    probe[i] = home[i] + offset[i];
  }

  cells_[home].push_back(gid);
}

void BoundaryStitcher::RemoveCore(PointId gid) {
  PointRec* rec = points_.Find(gid);
  DDC_CHECK(rec != nullptr && "RemoveCore of an unregistered point");

  for (const PointId partner : rec->edges) {
    std::vector<PointId>& back = points_.Find(partner)->edges;
    for (size_t i = 0; i < back.size(); ++i) {
      if (back[i] == gid) {
        back[i] = back.back();
        back.pop_back();
        break;
      }
    }
    --num_edges_;
  }

  const CellKey home = CellKey::Of(rec->point, dim_, eps_);
  std::vector<PointId>& bucket = *cells_.Find(home);
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i] == gid) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      break;
    }
  }
  if (bucket.empty()) cells_.Erase(home);

  --per_shard_points_[rec->shard];
  points_.Erase(gid);
}

int32_t BoundaryStitcher::InternKey(const LabelKey& key) {
  auto [idx, inserted] =
      label_index_.Emplace(key, static_cast<int32_t>(label_index_.size()));
  if (inserted) label_uf_.EnsureSize(*idx + 1);
  return *idx;
}

void BoundaryStitcher::Rebuild(
    const std::function<void(PointId, std::vector<LabelKey>*)>& labels_of) {
  label_index_.Clear();
  label_uf_ = UnionFind();
  label_root_.clear();

  // Pass 1: same-point rule. Every shard where a registered point is
  // locally core contributes a key; all of one point's keys collapse.
  // Remember each point's owner key index for the edge pass.
  FlatHashMap<PointId, int32_t> owner_key;
  std::vector<LabelKey> keys;
  points_.ForEach([&](const PointId& gid, const PointRec& rec) {
    keys.clear();
    labels_of(gid, &keys);
    // Registered points are core in their owner shard by construction, and
    // labels_of lists the owner first.
    DDC_CHECK(!keys.empty() && keys[0].shard == rec.shard);
    const int32_t first = InternKey(keys[0]);
    owner_key[gid] = first;
    for (size_t i = 1; i < keys.size(); ++i) {
      label_uf_.Union(first, InternKey(keys[i]));
    }
  });

  // Pass 2: edge rule. Each cross-shard core-core pair identifies its
  // endpoints' owner components. Edges appear in both adjacency lists;
  // process each once.
  points_.ForEach([&](const PointId& gid, const PointRec& rec) {
    for (const PointId partner : rec.edges) {
      if (partner < gid) continue;
      label_uf_.Union(*owner_key.Find(gid), *owner_key.Find(partner));
    }
  });

  label_root_.resize(label_index_.size());
  for (int32_t i = 0; i < static_cast<int32_t>(label_root_.size()); ++i) {
    label_root_[i] = label_uf_.Find(i);
  }
}

ClusterLabel BoundaryStitcher::Resolve(int32_t shard, uint64_t cc) const {
  const int32_t* idx = label_index_.Find(LabelKey{shard, cc});
  if (idx == nullptr) return ClusterLabel{shard, cc};
  return ClusterLabel{ClusterLabel::kStitchedShard,
                      static_cast<uint64_t>(label_root_[*idx])};
}

}  // namespace ddc
