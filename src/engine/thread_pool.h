#ifndef DDC_ENGINE_THREAD_POOL_H_
#define DDC_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/watchdog.h"

namespace ddc {

/// A fixed pool of worker threads with one FIFO task queue per worker.
/// Tasks are submitted to an explicit worker index — there is no stealing —
/// so every producer that always targets the same worker gets strict
/// in-order execution of its tasks. The sharded engine exploits this by
/// pinning each shard to one worker: shard batches then apply in submission
/// order even when several shards share a thread (threads < shards).
class ThreadPool {
 public:
  /// Starts `num_workers` (>= 1) threads.
  explicit ThreadPool(int num_workers);

  /// Drains every queue, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` on worker `worker` (FIFO per worker).
  void Submit(int worker, std::function<void()> task);

  /// Blocks until every worker's queue is empty and no task is running.
  /// Establishes happens-before with everything those tasks wrote: after
  /// Drain returns, the caller may freely read state the workers touched.
  void Drain();

  /// Heartbeat cell of worker `worker`, stamped around every task it runs
  /// and maintained by Submit — feed these to a telemetry Watchdog. Valid
  /// for the pool's lifetime.
  const WorkerHealth& health(int worker) const {
    return workers_[worker]->health;
  }

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable wake;   // queue became non-empty, or stopping
    std::condition_variable idle;   // queue drained and task finished
    std::deque<std::function<void()>> queue;
    bool running = false;  // A task is executing right now.
    bool stop = false;     // Exit once the queue is empty.
    WorkerHealth health;   // queue_depth counts queued + running tasks.
    std::thread thread;
  };

  void Run(Worker* w);

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace ddc

#endif  // DDC_ENGINE_THREAD_POOL_H_
