#ifndef DDC_ENGINE_SHARDED_SNAPSHOT_H_
#define DDC_ENGINE_SHARDED_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "core/cluster_snapshot.h"
#include "engine/stitch.h"

namespace ddc {

/// The sharded engine's frozen epoch: S per-shard GridSnapshots (in each
/// shard's local id space), the stitch label table of the same epoch, and
/// the routing records translating global ids to owners/holders/local ids.
/// Composed by ShardedClusterer::Flush while the workers are quiescent and
/// published by an atomic shared_ptr swap — readers resolve every query
/// against this object alone, so they never synchronize with ingest,
/// workers, or later stitch rebuilds.
class ShardedSnapshot final : public ClusterSnapshot {
 public:
  /// Frozen routing record of one global id.
  struct GidRec {
    uint8_t owner = 0;
    uint8_t first_holder = 0;
    uint8_t last_holder = 0;
    bool alive = false;
  };

  ShardedSnapshot(
      uint64_t epoch, std::vector<GidRec> points, int64_t alive,
      std::vector<std::shared_ptr<const GridSnapshot>> shards,
      std::vector<FlatHashMap<PointId, PointId>> local_of,
      std::shared_ptr<const BoundaryStitcher::LabelTable> stitch);

  CGroupByResult Query(const std::vector<PointId>& q) const override;

  bool alive(PointId id) const override {
    return id >= 0 && id < static_cast<PointId>(points_.size()) &&
           points_[id].alive;
  }
  int64_t size() const override { return alive_; }

  /// Distinct stitched labels of the clusters containing alive `id`
  /// (sorted; empty for noise): an owner-core point's own component,
  /// canonicalized through the stitch; for an owner-non-core point the
  /// union of the memberships every holding shard computes. Thread-safe.
  void Labels(PointId id, std::vector<ClusterLabel>* out) const;

  /// Least label of the clusters containing `id`; kNoCluster for noise or
  /// ids dead at this epoch.
  ClusterLabel LabelOf(PointId id) const;

  /// True when some cluster contains both points at this epoch.
  bool SameCluster(PointId a, PointId b) const;

 private:
  /// Serialization (persist/snapshot_io.cc) reads the frozen parts out and
  /// reconstructs through the public constructor.
  friend class SnapshotIO;

  std::vector<GidRec> points_;
  int64_t alive_ = 0;
  std::vector<std::shared_ptr<const GridSnapshot>> shards_;
  std::vector<FlatHashMap<PointId, PointId>> local_of_;  // Per shard.
  std::shared_ptr<const BoundaryStitcher::LabelTable> stitch_;
};

}  // namespace ddc

#endif  // DDC_ENGINE_SHARDED_SNAPSHOT_H_
