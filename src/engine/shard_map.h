#ifndef DDC_ENGINE_SHARD_MAP_H_
#define DDC_ENGINE_SHARD_MAP_H_

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "geom/point.h"

namespace ddc {

/// The engine's spatial partition: S half-open slabs along one dimension,
/// chosen as the spread-maximizing dimension of a warmup sample. The slabs
/// are described by an ascending vector of S-1 interior cuts; slab k covers
/// [cut[k-1], cut[k]) with the two end slabs extending to ±infinity, so
/// every point has exactly one owner. InitFromSample lays the cuts out
/// uniformly; SplitSlab/MergeSlabs mutate the partition live (elastic
/// rebalancing), preserving the invariant that adjacent cuts stay at least
/// 2·halo apart — so the replication factor never exceeds 2.
///
/// Sharding is sound because the paper's machinery is spatially local: a
/// point's core status and its grid-graph edges depend only on geometry
/// within (1+ρ)ε. A shard that additionally holds every foreign point whose
/// slab coordinate lies within that halo of its slab therefore computes
/// exact counts and core statuses for all the points it owns. HoldersOf
/// returns that owner-plus-halo shard range (always contiguous).
class ShardMap {
 public:
  /// A map for `shards` slabs with the given halo width ((1+ρ)ε in the
  /// engine). The partition starts uninitialized; all points map to shard 0
  /// with no replication until InitFromSample fixes the geometry.
  ShardMap(int shards, int dim, double halo);

  /// Fixes the slab geometry from a sample of the stream: picks the
  /// dimension with the largest min-max spread and splits [min, max] evenly,
  /// subject to a minimum slab width of 2·halo (so the replication factor
  /// never exceeds 2, even when the sample under-represents the stream's
  /// true extent — upper slabs then simply start out empty). An empty sample
  /// (or one with zero spread) yields a degenerate but valid partition where
  /// shard 0 owns everything near the sample. Must be called at most once.
  void InitFromSample(const std::vector<Point>& sample);

  bool initialized() const { return initialized_; }
  int shards() const { return shards_; }
  int dim() const { return dim_; }
  double halo() const { return halo_; }
  /// The split dimension / initial slab geometry (meaningful once
  /// initialized; slab_width is the uniform width InitFromSample laid out,
  /// before any SplitSlab/MergeSlabs reshaped the partition).
  int split_dim() const { return split_dim_; }
  double lo() const { return lo_; }
  double slab_width() const { return width_; }

  /// The ascending interior cuts (size shards() - 1). cuts()[k] separates
  /// slab k from slab k+1.
  const std::vector<double>& cuts() const { return cuts_; }
  /// Lower/upper edge of `shard`'s slab; -/+infinity for the end slabs.
  double slab_lo(int shard) const;
  double slab_hi(int shard) const;

  /// The shard whose slab covers `p` (end slabs absorb outliers).
  int OwnerOf(const Point& p) const {
    DDC_DCHECK(initialized_);
    return SlabIndexOf(p[split_dim_]);
  }

  /// Contiguous shard range [first, last] that must hold `p`: the owner plus
  /// every shard whose slab lies within `halo` of p's coordinate.
  struct Range {
    int first;
    int last;
  };
  Range HoldersOf(const Point& p) const {
    const double x = p[split_dim_];
    return Range{SlabIndexOf(x - halo_), SlabIndexOf(x + halo_)};
  }

  /// True when `p`, owned by `shard`, lies within `halo` of one of the
  /// shard's finite slab edges — i.e. p is replicated into (or reachable
  /// from) a neighboring shard and participates in cross-shard stitching.
  bool NearBoundary(const Point& p, int shard) const {
    const double x = p[split_dim_];
    if (shard > 0 && x < cuts_[shard - 1] + halo_) return true;
    return shard < shards_ - 1 && x > cuts_[shard] - halo_;
  }

  /// True when slab `shard` may be split at `cut`: both children keep a
  /// width of at least 2·halo against their finite edges (infinite end
  /// slabs only constrain the finite side).
  bool CanSplitAt(int shard, double cut) const;

  /// Splits slab `shard` at `cut` into slabs `shard` and `shard + 1`; every
  /// slab above shifts its index up by one. Requires CanSplitAt.
  void SplitSlab(int shard, double cut);

  /// Merges slabs `left` and `left + 1` into slab `left`; every slab above
  /// shifts its index down by one. Always geometry-legal (widths add).
  void MergeSlabs(int left);

 private:
  /// Index of the slab covering coordinate x: the number of cuts <= x.
  /// Always in [0, shards_-1]; the end slabs are unbounded.
  int SlabIndexOf(double x) const {
    return static_cast<int>(
        std::upper_bound(cuts_.begin(), cuts_.end(), x) - cuts_.begin());
  }

  int shards_;
  int dim_;
  double halo_;
  bool initialized_ = false;
  int split_dim_ = 0;
  double lo_ = 0;
  double width_ = 1;
  std::vector<double> cuts_;
};

}  // namespace ddc

#endif  // DDC_ENGINE_SHARD_MAP_H_
