#ifndef DDC_ENGINE_SHARD_MAP_H_
#define DDC_ENGINE_SHARD_MAP_H_

#include <vector>

#include "common/check.h"
#include "geom/point.h"

namespace ddc {

/// The engine's spatial partition: S half-open slabs of equal width along
/// one dimension, chosen as the spread-maximizing dimension of a warmup
/// sample. The two end slabs extend to ±infinity (owner indices clamp), so
/// every point has exactly one owner.
///
/// Sharding is sound because the paper's machinery is spatially local: a
/// point's core status and its grid-graph edges depend only on geometry
/// within (1+ρ)ε. A shard that additionally holds every foreign point whose
/// slab coordinate lies within that halo of its slab therefore computes
/// exact counts and core statuses for all the points it owns. HoldersOf
/// returns that owner-plus-halo shard range (always contiguous; it may span
/// several shards when slabs are narrower than the halo).
class ShardMap {
 public:
  /// A map for `shards` slabs with the given halo width ((1+ρ)ε in the
  /// engine). The partition starts uninitialized; all points map to shard 0
  /// with no replication until InitFromSample fixes the geometry.
  ShardMap(int shards, int dim, double halo);

  /// Fixes the slab geometry from a sample of the stream: picks the
  /// dimension with the largest min-max spread and splits [min, max] evenly,
  /// subject to a minimum slab width of 2·halo (so the replication factor
  /// never exceeds 2, even when the sample under-represents the stream's
  /// true extent — upper slabs then simply start out empty). An empty sample
  /// (or one with zero spread) yields a degenerate but valid partition where
  /// shard 0 owns everything near the sample. Must be called at most once.
  void InitFromSample(const std::vector<Point>& sample);

  bool initialized() const { return initialized_; }
  int shards() const { return shards_; }
  int dim() const { return dim_; }
  double halo() const { return halo_; }
  /// The split dimension / slab geometry (meaningful once initialized).
  int split_dim() const { return split_dim_; }
  double lo() const { return lo_; }
  double slab_width() const { return width_; }

  /// The shard whose slab covers `p` (end slabs absorb outliers).
  int OwnerOf(const Point& p) const {
    DDC_DCHECK(initialized_);
    return ClampShard(SlabIndex(p[split_dim_]));
  }

  /// Contiguous shard range [first, last] that must hold `p`: the owner plus
  /// every shard whose slab lies within `halo` of p's coordinate.
  struct Range {
    int first;
    int last;
  };
  Range HoldersOf(const Point& p) const {
    const double x = p[split_dim_];
    return Range{ClampShard(SlabIndex(x - halo_)),
                 ClampShard(SlabIndex(x + halo_))};
  }

  /// True when `p`, owned by `shard`, lies within `halo` of one of the
  /// shard's finite slab edges — i.e. p is replicated into (or reachable
  /// from) a neighboring shard and participates in cross-shard stitching.
  bool NearBoundary(const Point& p, int shard) const {
    if (shards_ == 1) return false;
    const double x = p[split_dim_];
    if (shard > 0 && x < lo_ + static_cast<double>(shard) * width_ + halo_) {
      return true;
    }
    return shard < shards_ - 1 &&
           x > lo_ + static_cast<double>(shard + 1) * width_ - halo_;
  }

 private:
  int SlabIndex(double x) const;
  int ClampShard(int s) const {
    return s < 0 ? 0 : (s >= shards_ ? shards_ - 1 : s);
  }

  int shards_;
  int dim_;
  double halo_;
  bool initialized_ = false;
  int split_dim_ = 0;
  double lo_ = 0;
  double width_ = 1;
};

}  // namespace ddc

#endif  // DDC_ENGINE_SHARD_MAP_H_
